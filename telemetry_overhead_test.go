// The telemetry-overhead gate behind `make telemetry-overhead`.
//
// Measuring "telemetry on vs off" with two separate `go test -bench` entries
// is unreliable on this class of host: the whole bench binary speeds up as
// the Go runtime's own heap warms (40%+ between the first and last run), so
// whichever benchmark runs second wins regardless of its real cost, and
// scheduler interference on a 1-CPU box adds ±10% to any sub-second window.
// The gate therefore keeps one long-lived process per configuration and
// alternates short fixed-iteration chunks between them: drift and load hit
// the two interleaved chunk streams equally, and taking each side's minimum
// chunk — its cleanest scheduling window — recovers the fast-path floor that
// the 3% budget is defined against. Several independent process pairs run in
// turn, because a single process can be persistently a percent or two slow
// from heap-layout luck; the floor is taken across all of a configuration's
// processes.
package minesweeper_test

import (
	"math"
	"os"
	"testing"
	"time"

	minesweeper "minesweeper"
)

// TestTelemetryOverheadGate fails if attaching the telemetry registry costs
// more than 3% on the 64-byte malloc/free pair. Skipped unless
// MS_TELEMETRY_GATE is set: it spends a few seconds of wall-clock timing and
// its verdict is only meaningful on an otherwise idle machine.
func TestTelemetryOverheadGate(t *testing.T) {
	if os.Getenv("MS_TELEMETRY_GATE") == "" {
		t.Skip("set MS_TELEMETRY_GATE=1 (or run make telemetry-overhead) to run the overhead gate")
	}
	const (
		opsPerChunk = 100_000
		chunks      = 30 // interleaved off/on chunks per process pair
		pairs       = 3  // independent process pairs
		maxRatio    = 1.03
		attempts    = 3 // re-measure before declaring a regression
	)
	newThread := func(telemetry bool) (*minesweeper.Process, *minesweeper.Thread) {
		p, err := minesweeper.NewProcess(minesweeper.Config{
			Scheme:    minesweeper.SchemeMineSweeper,
			Telemetry: telemetry,
		})
		if err != nil {
			t.Fatal(err)
		}
		th, err := p.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		return p, th
	}
	chunk := func(th *minesweeper.Thread) float64 {
		start := time.Now()
		for i := 0; i < opsPerChunk; i++ {
			a, err := th.Malloc(64)
			if err != nil {
				t.Fatal(err)
			}
			if err := th.Free(a); err != nil {
				t.Fatal(err)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / opsPerChunk
	}
	measure := func() (offMin, onMin float64) {
		offMin, onMin = math.Inf(1), math.Inf(1)
		for p := 0; p < pairs; p++ {
			pOff, thOff := newThread(false)
			pOn, thOn := newThread(true)
			// One discarded chunk each: the first chunks pay the cold-heap
			// cost (page faults, tcache fill) that later chunks reuse.
			chunk(thOff)
			chunk(thOn)
			for c := 0; c < chunks; c++ {
				if v := chunk(thOff); v < offMin {
					offMin = v
				}
				if v := chunk(thOn); v < onMin {
					onMin = v
				}
			}
			thOff.Close()
			thOn.Close()
			pOff.Close()
			pOn.Close()
		}
		return offMin, onMin
	}
	// The gate estimates a floor, so one attempt under budget is evidence
	// enough — an over-budget attempt on a shared host is more often a load
	// burst that kept one side from ever seeing a clean window than a real
	// regression, which would inflate the on-side floor of every attempt.
	var ratio float64
	for a := 0; a < attempts; a++ {
		offMin, onMin := measure()
		ratio = onMin / offMin
		t.Logf("attempt %d: %.1f ns/op (on) vs %.1f ns/op (off) = %.4fx (limit %.2fx, min over %d pairs x %d interleaved chunks of %d ops)",
			a, onMin, offMin, ratio, maxRatio, pairs, chunks, opsPerChunk)
		if ratio <= maxRatio {
			return
		}
	}
	t.Errorf("telemetry overhead %.4fx exceeds %.2fx budget in %d attempts", ratio, maxRatio, attempts)
}
