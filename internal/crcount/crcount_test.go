package crcount

import (
	"errors"
	"testing"

	"minesweeper/internal/alloc"
	"minesweeper/internal/jemalloc"
	"minesweeper/internal/mem"
	"minesweeper/internal/sim"
)

func setup(t *testing.T) (*sim.Program, *sim.Thread, *Heap) {
	t.Helper()
	space := mem.NewAddressSpace()
	h := New(space, jemalloc.DefaultConfig())
	t.Cleanup(h.Shutdown)
	prog, err := sim.NewProgram(space, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	th, err := prog.NewThread(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(th.Close)
	return prog, th, h
}

func TestRefcountTracksStores(t *testing.T) {
	prog, th, h := setup(t)
	a, _ := th.Malloc(64)
	if h.Refcount(a) != 0 {
		t.Fatalf("fresh refcount = %d", h.Refcount(a))
	}
	_ = th.Store(prog.GlobalSlot(0), a)
	if h.Refcount(a) != 1 {
		t.Errorf("refcount after store = %d, want 1", h.Refcount(a))
	}
	_ = th.Store(prog.GlobalSlot(1), a)
	if h.Refcount(a) != 2 {
		t.Errorf("refcount after 2nd store = %d, want 2", h.Refcount(a))
	}
	// Overwriting a slot decrements.
	_ = th.Store(prog.GlobalSlot(0), 0)
	if h.Refcount(a) != 1 {
		t.Errorf("refcount after erase = %d, want 1", h.Refcount(a))
	}
	if h.PtrUpdates() == 0 {
		t.Error("no pointer updates recorded")
	}
}

func TestFreeDeferredUntilCountZero(t *testing.T) {
	prog, th, h := setup(t)
	a, _ := th.Malloc(48)
	_ = th.Store(prog.GlobalSlot(0), a)
	if err := th.Free(a); err != nil {
		t.Fatal(err)
	}
	// Zombie: not deallocated, address must not be reused.
	for i := 0; i < 200; i++ {
		b, _ := th.Malloc(48)
		if b == a {
			t.Fatal("zombie address reused while referenced")
		}
	}
	st := h.Stats()
	if st.Quarantined == 0 || st.FailedFrees == 0 {
		t.Errorf("zombie not accounted: %+v", st)
	}
	// Dropping the last reference releases it immediately.
	_ = th.Store(prog.GlobalSlot(0), 0)
	if got := h.Stats().Quarantined; got != 0 {
		t.Errorf("Quarantined = %d after last decref, want 0", got)
	}
}

func TestUnreferencedFreeIsImmediate(t *testing.T) {
	_, th, h := setup(t)
	a, _ := th.Malloc(48)
	if err := th.Free(a); err != nil {
		t.Fatal(err)
	}
	if h.Stats().Quarantined != 0 {
		t.Error("unreferenced free deferred")
	}
	// Immediate reuse is allowed (count was zero: no dangling pointers).
	b, _ := th.Malloc(48)
	if b != a {
		t.Log("note: address not immediately reused (tcache ordering)")
	}
}

func TestZeroFillRemovesOutgoingRefs(t *testing.T) {
	// a -> b; freeing a must decrement b (a's pointer is zero-filled).
	prog, th, h := setup(t)
	a, _ := th.Malloc(64)
	b, _ := th.Malloc(64)
	_ = th.Store(prog.GlobalSlot(0), a) // keep a referenced? no — free immediately below
	_ = th.Store(a, b)                  // heap pointer inside a
	if h.Refcount(b) != 1 {
		t.Fatalf("refcount(b) = %d, want 1", h.Refcount(b))
	}
	_ = th.Store(prog.GlobalSlot(0), 0)
	if err := th.Free(a); err != nil {
		t.Fatal(err)
	}
	if h.Refcount(b) != 0 {
		t.Errorf("refcount(b) after free(a) = %d, want 0 (zero-fill decref)", h.Refcount(b))
	}
	// Benign UAF read of a returns zero.
	if v, err := th.Load(a); err == nil && v != 0 {
		t.Errorf("freed memory reads %#x, want 0", v)
	}
}

func TestFalsePointerLeaksZombie(t *testing.T) {
	// An integer equal to the address keeps the count elevated: the
	// conservative over-approximation CRCount's paper reports as leaks.
	prog, th, h := setup(t)
	a, _ := th.Malloc(48)
	_ = th.Store(prog.GlobalSlot(0), a) // "unlucky data"
	_ = th.Free(a)
	if h.Stats().Quarantined == 0 {
		t.Error("false pointer did not defer the free")
	}
}

func TestInvalidAndDoubleFree(t *testing.T) {
	prog, th, _ := setup(t)
	if err := th.Free(mem.HeapBase + 64); !errors.Is(err, alloc.ErrInvalidFree) {
		t.Errorf("Free(wild) = %v", err)
	}
	a, _ := th.Malloc(48)
	_ = th.Store(prog.GlobalSlot(0), a)
	_ = th.Free(a) // zombie
	if err := th.Free(a); err != nil {
		t.Errorf("double free of zombie = %v, want nil (idempotent)", err)
	}
}
