package jemalloc

import (
	"math/rand"
	"sync"
	"testing"

	"minesweeper/internal/mem"
)

// fakeExtent builds a metadata-only extent covering pages pages at the given
// heap page number. The rtree never dereferences region or slab state, so
// this is all an oracle test needs.
func fakeExtent(page uint64, pages int) *Extent {
	return &Extent{
		base: mem.HeapBase + page*mem.PageSize,
		size: uint64(pages) * mem.PageSize,
	}
}

// TestRtreeOracle drives the radix tree and a plain map through the same
// randomized sequence of multi-page range inserts, removes and lookups and
// requires identical answers throughout — the seed pageMap's semantics,
// reproduced exactly.
func TestRtreeOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(0x51EE7))
	rt := newRtree()
	oracle := make(map[uint64]*Extent) // page number (heap-relative) -> extent

	const maxPage = 1 << 20 // exercise multiple leaves (2^14 pages each)
	var live []*Extent
	check := func(addr uint64) {
		t.Helper()
		got := rt.lookup(addr)
		var want *Extent
		if addr >= mem.HeapBase && addr < mem.HeapLimit {
			want = oracle[(addr-mem.HeapBase)>>mem.PageShift]
		}
		if got != want {
			t.Fatalf("lookup(%#x) = %p, oracle %p", addr, got, want)
		}
	}

	randAddr := func() uint64 {
		page := uint64(rng.Intn(maxPage + 100))
		return mem.HeapBase + page*mem.PageSize + uint64(rng.Intn(mem.PageSize))
	}

	for i := 0; i < 20000; i++ {
		switch op := rng.Intn(10); {
		case op < 4: // insert a fresh multi-page extent
			pages := 1 + rng.Intn(300)
			if rng.Intn(20) == 0 {
				pages = 1 + rng.Intn(3*rtreeLeafSize) // span leaves
			}
			page := uint64(rng.Intn(maxPage))
			e := fakeExtent(page, pages)
			rt.insert(e)
			for p := uint64(0); p < uint64(pages); p++ {
				oracle[page+p] = e
			}
			live = append(live, e)
		case op < 6 && len(live) > 0: // remove a previously inserted extent
			i := rng.Intn(len(live))
			e := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			rt.remove(e)
			first := (e.base - mem.HeapBase) >> mem.PageShift
			for p := uint64(0); p < uint64(e.pages()); p++ {
				delete(oracle, first+p)
			}
		default: // lookups: random addresses, extent edges, out-of-range
			check(randAddr())
			if len(live) > 0 {
				e := live[rng.Intn(len(live))]
				check(e.base)
				check(e.base + e.size - 1)
				check(e.base + e.size) // one past the end
				if e.base > mem.HeapBase {
					check(e.base - 1)
				}
			}
			check(mem.HeapBase - 1)
			check(mem.HeapLimit)
			check(uint64(rng.Int63())) // arbitrary word, as the sweeper probes
		}
	}
}

func TestRtreeOutOfRangeLookups(t *testing.T) {
	rt := newRtree()
	e := fakeExtent(0, 4)
	rt.insert(e)
	for _, addr := range []uint64{
		0, 1, mem.GlobalsBase, mem.StackBase,
		mem.HeapBase - 1, mem.HeapLimit, mem.HeapLimit + mem.PageSize,
		^uint64(0),
	} {
		if got := rt.lookup(addr); got != nil {
			t.Errorf("lookup(%#x) = %p, want nil", addr, got)
		}
	}
	if got := rt.lookup(mem.HeapBase); got != e {
		t.Errorf("lookup(HeapBase) = %p, want %p", got, e)
	}
}

func TestRtreeFootprintExact(t *testing.T) {
	rt := newRtree()
	root := uint64(rtreeRootSize) * 8
	if got := rt.footprint(); got != root {
		t.Fatalf("empty footprint = %d, want %d", got, root)
	}
	// Two extents in the same leaf: one leaf's worth of metadata.
	rt.insert(fakeExtent(0, 1))
	rt.insert(fakeExtent(10, 4))
	leaf := uint64(rtreeLeafSize) * 8
	if got := rt.footprint(); got != root+leaf {
		t.Fatalf("one-leaf footprint = %d, want %d", got, root+leaf)
	}
	// An extent spanning a leaf boundary: one more leaf.
	rt.insert(fakeExtent(rtreeLeafSize-2, 4))
	if got := rt.footprint(); got != root+2*leaf {
		t.Fatalf("two-leaf footprint = %d, want %d", got, root+2*leaf)
	}
	// Removal retains leaves (like jemalloc's rtree, they are never torn
	// down); footprint is unchanged.
	rt.remove(fakeExtent(0, 1))
	if got := rt.footprint(); got != root+2*leaf {
		t.Fatalf("post-remove footprint = %d, want %d", got, root+2*leaf)
	}
}

// BenchmarkRtreeLookup measures the page-map hit path free() rides: two
// dependent atomic loads plus index arithmetic.
func BenchmarkRtreeLookup(b *testing.B) {
	rt := newRtree()
	const n = 1024
	addrs := make([]uint64, n)
	rng := rand.New(rand.NewSource(1))
	for i := range addrs {
		e := fakeExtent(uint64(rng.Intn(1<<18)), 1+rng.Intn(8))
		rt.insert(e)
		addrs[i] = e.base + uint64(rng.Int63n(int64(e.size)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rt.lookup(addrs[i%n]) == nil {
			b.Fatal("lost mapping")
		}
	}
}

// BenchmarkRtreeLookupParallel is the same hit path under goroutine
// contention — all readers, which the lock-free tree serves without any
// shared writes (the seed's RWMutex bounced a cache line per lookup).
func BenchmarkRtreeLookupParallel(b *testing.B) {
	rt := newRtree()
	const n = 1024
	addrs := make([]uint64, n)
	rng := rand.New(rand.NewSource(1))
	for i := range addrs {
		e := fakeExtent(uint64(rng.Intn(1<<18)), 1+rng.Intn(8))
		rt.insert(e)
		addrs[i] = e.base + uint64(rng.Int63n(int64(e.size)))
	}
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if rt.lookup(addrs[i%n]) == nil {
				b.Fatal("lost mapping")
			}
			i++
		}
	})
}

// BenchmarkRtreeMiss measures probes of unmapped in-range and out-of-range
// addresses — what the sweeper pays per non-pointer word it tests.
func BenchmarkRtreeMiss(b *testing.B) {
	rt := newRtree()
	rt.insert(fakeExtent(0, 4))
	probes := [...]uint64{
		mem.HeapBase + 64*mem.PageSize, // in range, unmapped page
		mem.GlobalsBase,                // below the heap
		^uint64(0) >> 1,                // wild word
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rt.lookup(probes[i%len(probes)]) != nil {
			b.Fatal("phantom mapping")
		}
	}
}

// TestConcurrentMallocFreeLookup hammers the allocator from several
// goroutines — small and large mallocs and frees churning extents in and out
// of the arena's dirty lists — while other goroutines resolve lookups of live,
// freed and arbitrary addresses through the lock-free page map. Run with
// -race (the race-hot make target) this is the radix tree's publication-
// safety proof; without it, a sanity check that concurrent lookups never
// observe torn state.
func TestConcurrentMallocFreeLookup(t *testing.T) {
	h := New(mem.NewAddressSpace(), DefaultConfig())
	const (
		mutators = 4
		ops      = 4000
	)
	var mutWg, hamWg sync.WaitGroup
	stop := make(chan struct{})

	// Lookup hammer: probes addresses across the whole heap span the
	// mutators work in, plus wild words.
	for g := 0; g < 2; g++ {
		hamWg.Add(1)
		go func(seed int64) {
			defer hamWg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < 256; i++ {
					addr := mem.HeapBase + uint64(rng.Int63n(1<<30))
					if a, ref, ok := h.Resolve(addr); ok {
						if ref == nil {
							t.Error("Resolve returned live allocation with nil ref")
							return
						}
						if addr < a.Base || addr >= a.Base+a.Size {
							t.Errorf("Resolve(%#x) returned non-containing allocation [%#x,%#x)", addr, a.Base, a.Base+a.Size)
							return
						}
					}
					_ = h.UsableSize(addr)
				}
				_ = h.Stats() // exercises footprint concurrently
			}
		}(int64(g) + 7)
	}

	for g := 0; g < mutators; g++ {
		mutWg.Add(1)
		go func(seed int64) {
			defer mutWg.Done()
			tid := h.RegisterThread()
			defer h.UnregisterThread(tid)
			rng := rand.New(rand.NewSource(seed))
			livePtr := make([]uint64, 0, 128)
			for i := 0; i < ops; i++ {
				if len(livePtr) > 0 && rng.Intn(2) == 0 {
					j := rng.Intn(len(livePtr))
					addr := livePtr[j]
					livePtr[j] = livePtr[len(livePtr)-1]
					livePtr = livePtr[:len(livePtr)-1]
					if err := h.Free(tid, addr); err != nil {
						t.Errorf("Free(%#x): %v", addr, err)
						return
					}
					continue
				}
				var size uint64
				switch rng.Intn(10) {
				case 0: // large: extent churn through the dirty lists
					size = uint64(1+rng.Intn(8)) * mem.PageSize
				case 1:
					size = SmallMax // whole-slab churn
				default:
					size = uint64(1 + rng.Intn(512))
				}
				addr, err := h.Malloc(tid, size)
				if err != nil {
					t.Errorf("Malloc(%d): %v", size, err)
					return
				}
				livePtr = append(livePtr, addr)
			}
			for _, addr := range livePtr {
				if err := h.Free(tid, addr); err != nil {
					t.Errorf("final Free(%#x): %v", addr, err)
					return
				}
			}
		}(int64(g) + 101)
	}

	// Wait for the mutators, then stop the lookup hammers.
	mutWg.Wait()
	close(stop)
	hamWg.Wait()
}
