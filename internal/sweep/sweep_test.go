package sweep

import (
	"testing"

	"minesweeper/internal/mem"
	"minesweeper/internal/shadow"
)

func setup(t testing.TB, helpers int) (*mem.AddressSpace, *shadow.Bitmap, *Sweeper) {
	t.Helper()
	as := mem.NewAddressSpace()
	marks, err := shadow.New(mem.HeapBase, mem.HeapLimit, 4)
	if err != nil {
		t.Fatal(err)
	}
	return as, marks, New(as, marks, helpers)
}

func TestMarkAllFindsPointers(t *testing.T) {
	as, marks, s := setup(t, 0)
	heap, _ := as.Map(mem.KindHeap, 4*mem.PageSize, true)
	stack, _ := as.Map(mem.KindStack, mem.PageSize, true)
	globals, _ := as.Map(mem.KindGlobals, mem.PageSize, true)

	target1 := heap.Base() + 0x100 // pointed to from stack
	target2 := heap.Base() + 0x800 // pointed to from globals
	target3 := heap.Base() + 0x900 // pointed to from heap itself
	clean := heap.Base() + 0x2000  // no pointers

	if err := as.Store64(stack.Base()+8, target1); err != nil {
		t.Fatal(err)
	}
	if err := as.Store64(globals.Base()+16, target2); err != nil {
		t.Fatal(err)
	}
	if err := as.Store64(heap.Base()+0x1000, target3); err != nil {
		t.Fatal(err)
	}
	// Non-pointer data: small integer and a stack address.
	if err := as.Store64(heap.Base()+0x1100, 12345); err != nil {
		t.Fatal(err)
	}
	if err := as.Store64(heap.Base()+0x1108, stack.Base()); err != nil {
		t.Fatal(err)
	}

	// This test asserts full-coverage byte accounting; disable the known-zero
	// page skip so untouched pages still count as scanned.
	s.SetKnownZeroSkip(false)
	swept := s.MarkAll()
	if want := uint64(6 * mem.PageSize); swept != want {
		t.Errorf("bytes swept = %d, want %d", swept, want)
	}
	for _, target := range []uint64{target1, target2, target3} {
		if !marks.Test(target) {
			t.Errorf("target %#x not marked", target)
		}
	}
	if marks.Test(clean) {
		t.Errorf("clean address %#x marked", clean)
	}
	if s.BytesSwept() != swept {
		t.Errorf("BytesSwept = %d, want %d", s.BytesSwept(), swept)
	}
	if s.BusyTime() <= 0 {
		t.Error("BusyTime not accounted")
	}
}

func TestFalsePointerIsMarked(t *testing.T) {
	// An integer that happens to equal a heap address is conservatively
	// treated as a pointer (paper Figure 4's "false pointer").
	as, marks, s := setup(t, 0)
	heap, _ := as.Map(mem.KindHeap, mem.PageSize, true)
	falsePtr := heap.Base() + 0x40
	if err := as.Store64(heap.Base()+0x200, falsePtr); err != nil {
		t.Fatal(err)
	}
	s.MarkAll()
	if !marks.Test(falsePtr) {
		t.Error("false pointer not conservatively marked")
	}
}

func TestNonResidentPagesSkipped(t *testing.T) {
	as, marks, s := setup(t, 0)
	heap, _ := as.Map(mem.KindHeap, 4*mem.PageSize, true)
	target := heap.Base() + 8
	// Touch every page so none is dismissed as known-zero: this test must
	// observe the residency filter, not the known-zero skip.
	for p := uint64(0); p < 4; p++ {
		if err := as.Store64(heap.Base()+p*mem.PageSize+0x80, 0xdead); err != nil {
			t.Fatal(err)
		}
	}
	// Plant a pointer, then decommit its page: the sweep must skip it.
	if err := as.Store64(heap.Base()+2*mem.PageSize, target); err != nil {
		t.Fatal(err)
	}
	if err := as.Decommit(heap.Base()+2*mem.PageSize, mem.PageSize); err != nil {
		t.Fatal(err)
	}
	swept := s.MarkAll()
	if want := uint64(3 * mem.PageSize); swept != want {
		t.Errorf("bytes swept = %d, want %d (one page decommitted)", swept, want)
	}
	if marks.Test(target) {
		t.Error("pointer on decommitted page was marked")
	}
}

func TestProtectedPagesSkipped(t *testing.T) {
	as, marks, s := setup(t, 0)
	heap, _ := as.Map(mem.KindHeap, 2*mem.PageSize, true)
	target := heap.Base() + 8
	if err := as.Store64(heap.Base()+mem.PageSize, target); err != nil {
		t.Fatal(err)
	}
	if err := as.Protect(heap.Base()+mem.PageSize, mem.PageSize, mem.ProtNone); err != nil {
		t.Fatal(err)
	}
	s.MarkAll()
	if marks.Test(target) {
		t.Error("pointer on PROT_NONE page was marked")
	}
}

func TestMarkDirtyOnlyScansDirtyPages(t *testing.T) {
	as, marks, s := setup(t, 0)
	heap, _ := as.Map(mem.KindHeap, 8*mem.PageSize, true)
	t1 := heap.Base() + 0x10
	t2 := heap.Base() + 0x20

	// Write a pointer, then clear soft-dirty (simulating the state at the
	// start of a mostly-concurrent sweep).
	if err := as.Store64(heap.Base()+mem.PageSize, t1); err != nil {
		t.Fatal(err)
	}
	as.ClearSoftDirty()
	// Mutator writes a new pointer during the "concurrent" pass.
	if err := as.Store64(heap.Base()+4*mem.PageSize, t2); err != nil {
		t.Fatal(err)
	}

	swept := s.MarkDirty()
	if want := uint64(mem.PageSize); swept != want {
		t.Errorf("dirty bytes swept = %d, want %d", swept, want)
	}
	if marks.Test(t1) {
		t.Error("clean page's pointer marked by dirty scan")
	}
	if !marks.Test(t2) {
		t.Error("dirty page's pointer not marked")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// Plant pointers across many pages; a parallel sweep must mark the
	// same set as a serial one.
	build := func() (*mem.AddressSpace, []uint64) {
		as := mem.NewAddressSpace()
		heap, _ := as.Map(mem.KindHeap, 512*mem.PageSize, true)
		rng := uint64(42)
		var targets []uint64
		for i := 0; i < 2000; i++ {
			slot := heap.Base() + uint64(i)*16
			rng = rng*6364136223846793005 + 1442695040888963407
			target := heap.Base() + (rng % heap.Size())
			if err := as.Store64(slot, target); err != nil {
				t.Fatal(err)
			}
			targets = append(targets, target)
		}
		return as, targets
	}

	asA, targetsA := build()
	marksA, _ := shadow.New(mem.HeapBase, mem.HeapLimit, 4)
	New(asA, marksA, 0).MarkAll()

	asB, _ := build()
	marksB, _ := shadow.New(mem.HeapBase, mem.HeapLimit, 4)
	New(asB, marksB, 7).MarkAll()
	_ = asB

	if a, b := marksA.PopCount(), marksB.PopCount(); a != b {
		t.Errorf("serial marked %d granules, parallel %d", a, b)
	}
	for _, tgt := range targetsA {
		if !marksA.Test(tgt) {
			t.Errorf("serial sweep missed %#x", tgt)
		}
	}
}

func TestEmptySpace(t *testing.T) {
	_, _, s := setup(t, 4)
	if n := s.MarkAll(); n != 0 {
		t.Errorf("MarkAll on empty space = %d, want 0", n)
	}
}

func TestConcurrentMutatorDuringSweep(t *testing.T) {
	// Race-detector coverage: a mutator storing while the sweep scans.
	as, _, s := setup(t, 3)
	heap, _ := as.Map(mem.KindHeap, 64*mem.PageSize, true)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10000; i++ {
			addr := heap.Base() + uint64(i*8)%heap.Size()
			if err := as.Store64(addr, heap.Base()); err != nil {
				t.Errorf("Store64: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 5; i++ {
		s.MarkAll()
	}
	<-done
}

func BenchmarkMarkAll64MiB(b *testing.B) {
	as := mem.NewAddressSpace()
	heap, _ := as.Map(mem.KindHeap, (64<<20)/mem.PageSize*mem.PageSize, true)
	// Fill with a mix of pointers and data.
	rng := uint64(1)
	for off := uint64(0); off < heap.Size(); off += 64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		_ = as.Store64(heap.Base()+off, heap.Base()+rng%heap.Size())
	}
	marks, _ := shadow.New(mem.HeapBase, mem.HeapLimit, 4)
	s := New(as, marks, DefaultHelpers)
	b.SetBytes(64 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MarkAll()
		marks.ClearAll()
	}
}
