package fleet

import (
	"testing"

	"minesweeper/internal/control"
	"minesweeper/internal/sim"
)

// TestArbiterFloorsReserved checks admission accounting: floors are
// reserved up front and over-admission fails.
func TestArbiterFloorsReserved(t *testing.T) {
	a := NewArbiter(100, 3)
	if err := a.Admit(0, 60, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Admit(1, 60, 1, 0); err == nil {
		t.Fatal("floors 120 > budget 100 admitted")
	}
	if err := a.Admit(0, 10, 1, 0); err == nil {
		t.Fatal("duplicate tenant admitted")
	}
	a.Evict(0)
	if err := a.Admit(1, 100, 1, 0); err != nil {
		t.Fatalf("eviction did not release the floor: %v", err)
	}
}

// TestArbiterStarvationFloorProperty fuzzes tenant populations and RSS
// trajectories and asserts the two construction invariants on every
// rebalance: each grant is at least the tenant's floor, and grants sum to
// at most the host budget.
func TestArbiterStarvationFloorProperty(t *testing.T) {
	r := sim.NewRand(20260809)
	for trial := 0; trial < 50; trial++ {
		hostBudget := uint64(1<<24) + uint64(r.Intn(1<<26))
		a := NewArbiter(hostBudget, 1+r.Intn(4))
		n := 2 + r.Intn(24)
		floors := make(map[int]uint64, n)
		remaining := hostBudget
		for id := 0; id < n; id++ {
			floor := uint64(r.Intn(int(remaining/uint64(n-id)) + 1))
			weight := 0.25 + 4*r.Float64()
			if err := a.Admit(id, floor, weight, r.Intn(3)); err != nil {
				t.Fatalf("trial %d: admit %d: %v", trial, id, err)
			}
			floors[id] = floor
			remaining -= floor
		}
		rss := make(map[int]uint64, n)
		for round := 0; round < 30; round++ {
			for id := 0; id < n; id++ {
				// Random walk, occasionally pinned at the rail to
				// exercise throttling.
				switch r.Intn(4) {
				case 0:
					rss[id] = a.Budget(id) // exactly at the rail
				default:
					rss[id] = uint64(r.Intn(int(hostBudget/uint64(n)) + 1))
				}
			}
			grants, _ := a.Rebalance(func(id int) uint64 { return rss[id] })
			if len(grants) != n {
				t.Fatalf("trial %d round %d: %d grants for %d tenants", trial, round, len(grants), n)
			}
			var sum uint64
			for _, g := range grants {
				if g.Budget < floors[g.ID] {
					t.Fatalf("trial %d round %d: tenant %d granted %d below floor %d",
						trial, round, g.ID, g.Budget, floors[g.ID])
				}
				sum += g.Budget
			}
			if sum > hostBudget {
				t.Fatalf("trial %d round %d: grants sum %d past host budget %d", trial, round, sum, hostBudget)
			}
		}
	}
}

// TestArbiterNoisyNeighbour is the deterministic scenario: one offender
// pinned at its rail while the host runs hot, three compliant tenants well
// inside theirs. The offender must be flagged and throttled before any
// compliant tenant is touched, and its grant must drop when the throttle
// lands.
func TestArbiterNoisyNeighbour(t *testing.T) {
	const hostBudget = 1 << 20
	a := NewArbiter(hostBudget, 3)
	for id := 0; id < 4; id++ {
		if err := a.Admit(id, hostBudget/16, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	// The offender demands 55% of the host (its RSS always exceeds
	// whatever rail it is granted, so it reads as pinned); compliant
	// tenants idle at 12% each. Total usage holds at 91%, inside the
	// Elevated band, every round.
	rssFor := func(id int) uint64 {
		if id == 0 {
			return hostBudget * 55 / 100
		}
		return hostBudget * 12 / 100
	}
	var offenderThrottledAt int
	preThrottle := uint64(0)
	for round := 1; round <= 12; round++ {
		grants, _ := a.Rebalance(rssFor)
		for _, g := range grants {
			if g.ID != 0 {
				if g.Throttled || g.Noisy {
					t.Fatalf("round %d: compliant tenant %d throttled", round, g.ID)
				}
				continue
			}
			if g.Throttled && offenderThrottledAt == 0 {
				offenderThrottledAt = round
				if preThrottle > 0 && g.Budget >= preThrottle {
					t.Errorf("throttle did not cut the offender's rail: %d -> %d", preThrottle, g.Budget)
				}
			}
			if !g.Throttled {
				preThrottle = g.Budget
			}
		}
		if a.Level() == control.Nominal && round > 1 {
			t.Fatalf("round %d: host fell back to Nominal mid-scenario", round)
		}
	}
	if offenderThrottledAt == 0 {
		t.Fatal("offender never throttled")
	}
	throttles, _ := a.Counters(0)
	if throttles == 0 {
		t.Fatal("offender throttle counter not incremented")
	}
	for id := 1; id < 4; id++ {
		if th, _ := a.Counters(id); th != 0 {
			t.Errorf("compliant tenant %d has %d throttles", id, th)
		}
	}
}

// TestArbiterScaleRecovers checks the AIMD shape: tightness collapses under
// Critical pressure and climbs back additively once the host calms down.
func TestArbiterScaleRecovers(t *testing.T) {
	const hostBudget = 1 << 20
	a := NewArbiter(hostBudget, 3)
	if err := a.Admit(0, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	hot := uint64(hostBudget) // 100% usage: Critical
	for i := 0; i < 4; i++ {
		a.Rebalance(func(int) uint64 { return hot })
	}
	if a.Level() != control.Critical {
		t.Fatalf("level %v after sustained overload", a.Level())
	}
	tightened := a.Scale()
	if tightened >= 0.5 {
		t.Fatalf("scale %v barely tightened under Critical", tightened)
	}
	cold := uint64(hostBudget / 10)
	for i := 0; i < 16; i++ {
		a.Rebalance(func(int) uint64 { return cold })
	}
	if a.Level() != control.Nominal {
		t.Fatalf("level %v after sustained calm", a.Level())
	}
	if a.Scale() != 1 {
		t.Fatalf("scale %v did not recover to 1", a.Scale())
	}
}
