// Command benchjson converts `go test -bench` text output (read from stdin)
// into a JSON array, one object per benchmark result line, so CI and the
// EXPERIMENTS.md tooling can diff runs without scraping free-form text:
//
//	go test -run '^$' -bench BenchmarkMallocFree64 -benchtime=300000x -count=5 . \
//	    | go run ./cmd/benchjson > BENCH_free.json
//
// Repeated -count runs of one benchmark are grouped: each output object
// carries every run plus the median, which is the number EXPERIMENTS.md
// records (medians resist the occasional GC-noise outlier that means would
// absorb).
//
// Gate mode compares two benchmarks from the same input and fails when the
// probe's statistic (-stat median or min) exceeds the base's by more than the
// allowed ratio — an ad-hoc regression check over any bench-json output
// (note that two benchmarks from one binary share warm-up drift; for a
// drift-proof pairing see make telemetry-overhead, which interleaves):
//
//	go test -run '^$' -bench 'BenchmarkMallocFree64_MineSweeper' -count=5 . \
//	    | go run ./cmd/benchjson \
//	        -base BenchmarkMallocFree64_MineSweeper \
//	        -probe BenchmarkMallocFree64_MineSweeperTelemetry \
//	        -max-ratio 1.03 -stat min
//
// Envelope mode compares a fresh run against a checked-in baseline JSON (a
// previous run of this tool) and fails when any matching benchmark's
// statistic exceeds its recorded value by more than the allowed ratio — the
// regression gate over the committed BENCH_free.json numbers:
//
//	go test -run '^$' -bench 'BenchmarkMallocFree64' -benchtime=300000x -count=5 . \
//	    | go run ./cmd/benchjson -baseline BENCH_free.json \
//	        -match 'MallocFree64' -max-ratio 1.10
//
// Benchmarks present in the fresh run but absent from the baseline are
// reported and skipped (a new benchmark is not a regression); benchmarks in
// the baseline but missing from the run are ignored (the run may be scoped).
//
// Quantile mode reads a telemetry snapshot (telemetry.Snapshot JSON, as
// written by msrun -telemetry-json or msstat) instead of bench output and
// fails when a named histogram's quantile exceeds a bound — the pause-tail
// gate behind make pause-gate:
//
//	go run ./cmd/benchjson -snapshot pause.json \
//	    -hist stw_pause_ns -q 0.999 -max-ns 524288
//
// Histogram quantiles are bucket upper bounds (power-of-two buckets), so a
// reported p99.9 ≤ 2^19 ns guarantees the true p99.9 is under 1 ms.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"minesweeper/internal/telemetry"
)

// result is one benchmark name's aggregated runs.
type result struct {
	Name        string    `json:"name"`
	Procs       int       `json:"procs"`
	Runs        int       `json:"runs"`
	Iterations  []int64   `json:"iterations"`
	NsPerOp     []float64 `json:"ns_per_op"`
	MedianNsOp  float64   `json:"median_ns_per_op"`
	BytesPerOp  []int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp []int64   `json:"allocs_per_op,omitempty"`
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// splitName separates the GOMAXPROCS suffix go test appends ("Foo-8" → "Foo",
// 8). Benchmarks whose own name ends in "-<digits>" are not expressible in Go
// identifiers, so the split is unambiguous.
func splitName(s string) (string, int) {
	i := strings.LastIndexByte(s, '-')
	if i < 0 {
		return s, 1
	}
	p, err := strconv.Atoi(s[i+1:])
	if err != nil || p <= 0 {
		return s, 1
	}
	return s[:i], p
}

func main() {
	base := flag.String("base", "", "gate mode: base benchmark name (without -P suffix)")
	probe := flag.String("probe", "", "gate mode: probe benchmark name compared against -base")
	maxRatio := flag.Float64("max-ratio", 1.03, "gate/envelope mode: fail if probe exceeds base(line) by this ratio")
	stat := flag.String("stat", "median", "gate/envelope mode: statistic to compare, median or min (min resists warm-up drift)")
	baseline := flag.String("baseline", "", "envelope mode: baseline JSON file (a previous benchjson run) to compare the fresh run against")
	match := flag.String("match", "", "envelope mode: only check benchmarks whose name contains this substring (empty = all)")
	snapshot := flag.String("snapshot", "", "quantile mode: telemetry snapshot JSON file to read histograms from")
	hist := flag.String("hist", telemetry.HistStw, "quantile mode: histogram name to check")
	quant := flag.Float64("q", 0.999, "quantile mode: quantile to extract (0..1)")
	maxNs := flag.Uint64("max-ns", 0, "quantile mode: fail if the quantile (bucket upper bound, ns) exceeds this; 0 just prints")
	flag.Parse()

	if *snapshot != "" {
		quantileGate(*snapshot, *hist, *quant, *maxNs)
		return
	}

	byName := make(map[string]*result)
	var names []string // first-seen order

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		// A result line: Benchmark<Name>-P  <iters>  <ns> ns/op  [<B> B/op  <allocs> allocs/op]
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || f[3] != "ns/op" {
			continue
		}
		iters, err1 := strconv.ParseInt(f[1], 10, 64)
		ns, err2 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		name, procs := splitName(f[0])
		r, ok := byName[f[0]]
		if !ok {
			r = &result{Name: name, Procs: procs}
			byName[f[0]] = r
			names = append(names, f[0])
		}
		r.Iterations = append(r.Iterations, iters)
		r.NsPerOp = append(r.NsPerOp, ns)
		for i := 4; i+1 < len(f); i += 2 {
			v, err := strconv.ParseInt(f[i], 10, 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "B/op":
				r.BytesPerOp = append(r.BytesPerOp, v)
			case "allocs/op":
				r.AllocsPerOp = append(r.AllocsPerOp, v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	out := make([]*result, 0, len(names))
	for _, n := range names {
		r := byName[n]
		r.Runs = len(r.NsPerOp)
		r.MedianNsOp = median(r.NsPerOp)
		out = append(out, r)
	}

	if *base != "" || *probe != "" {
		if *base == "" || *probe == "" {
			fmt.Fprintln(os.Stderr, "benchjson: gate mode needs both -base and -probe")
			os.Exit(2)
		}
		gate(out, *base, *probe, *maxRatio, *stat)
		return
	}
	if *baseline != "" {
		envelope(out, *baseline, *match, *maxRatio, *stat)
		return
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
}

// quantileGate reads a telemetry snapshot and checks one histogram's quantile
// against a nanosecond bound. Quantiles are bucket upper bounds, so the check
// is conservative: a pass guarantees the true quantile is under the bound.
func quantileGate(file, hist string, q float64, maxNs uint64) {
	f, err := os.Open(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: quantile:", err)
		os.Exit(2)
	}
	defer f.Close()
	snap, err := telemetry.ReadSnapshot(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: quantile:", err)
		os.Exit(2)
	}
	for _, h := range snap.Histograms {
		if h.Name != hist {
			continue
		}
		if h.Count == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: quantile: histogram %s has no samples\n", hist)
			os.Exit(2)
		}
		v := h.Quantile(q)
		fmt.Printf("quantile %s p%g: <%d ns (n=%d, p50<%d p99<%d p99.9<%d max<%d)\n",
			hist, q*100, v, h.Count, h.P50, h.P99, h.P999, h.Max())
		if maxNs > 0 && v > maxNs {
			fmt.Fprintf(os.Stderr, "benchjson: quantile FAILED: %d ns > %d ns bound\n", v, maxNs)
			os.Exit(1)
		}
		if maxNs > 0 {
			fmt.Println("quantile OK")
		}
		return
	}
	fmt.Fprintf(os.Stderr, "benchjson: quantile: histogram %s not in %s\n", hist, file)
	os.Exit(2)
}

// gate compares probe's statistic against base's and exits nonzero on a
// regression beyond maxRatio. stat "min" compares fastest runs — the usual
// estimator when early runs of a process carry warm-up cost that medians
// would count as regression.
func gate(results []*result, base, probe string, maxRatio float64, stat string) {
	pick := func(r *result) float64 { return pickStat(r, stat) }
	find := func(name string) *result {
		for _, r := range results {
			if r.Name == name && len(r.NsPerOp) > 0 {
				return r
			}
		}
		return nil
	}
	b, p := find(base), find(probe)
	if b == nil || p == nil {
		fmt.Fprintf(os.Stderr, "benchjson: gate: missing %s and/or %s in input\n", base, probe)
		os.Exit(2)
	}
	bv, pv := pick(b), pick(p)
	if bv <= 0 {
		fmt.Fprintf(os.Stderr, "benchjson: gate: base %s is %v\n", stat, bv)
		os.Exit(2)
	}
	ratio := pv / bv
	fmt.Printf("gate %s/%s (%s): %.1f ns / %.1f ns = %.4fx (limit %.2fx)\n",
		probe, base, stat, pv, bv, ratio, maxRatio)
	if ratio > maxRatio {
		fmt.Fprintf(os.Stderr, "benchjson: gate FAILED: %.4fx > %.2fx\n", ratio, maxRatio)
		os.Exit(1)
	}
	fmt.Println("gate OK")
}

// pickStat extracts the comparison statistic from a result's runs. Median is
// the committed-number statistic (what BENCH_free.json records); min resists
// the warm-up drift a fresh process's early runs carry.
func pickStat(r *result, stat string) float64 {
	switch stat {
	case "min":
		m := r.NsPerOp[0]
		for _, v := range r.NsPerOp[1:] {
			if v < m {
				m = v
			}
		}
		return m
	case "median":
		return r.MedianNsOp
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown -stat %q\n", stat)
		os.Exit(2)
		return 0
	}
}

// envelope compares every matching fresh result against the same-named entry
// in the baseline file and exits nonzero if any exceeds its recorded
// statistic by more than maxRatio. The baseline's committed medians come
// from the same fixed-iteration protocol, so the ratio is iteration-count
// comparable; the envelope absorbs host noise between sessions.
func envelope(fresh []*result, baselineFile, match string, maxRatio float64, stat string) {
	data, err := os.ReadFile(baselineFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: envelope:", err)
		os.Exit(2)
	}
	var recorded []*result
	if err := json.Unmarshal(data, &recorded); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: envelope: parsing %s: %v\n", baselineFile, err)
		os.Exit(2)
	}
	byName := make(map[string]*result, len(recorded))
	for _, r := range recorded {
		if len(r.NsPerOp) > 0 {
			byName[r.Name] = r
		}
	}
	checked, failed := 0, 0
	for _, f := range fresh {
		if len(f.NsPerOp) == 0 || (match != "" && !strings.Contains(f.Name, match)) {
			continue
		}
		b, ok := byName[f.Name]
		if !ok {
			fmt.Printf("envelope %s: not in %s, skipped (new benchmark)\n", f.Name, baselineFile)
			continue
		}
		bv, fv := pickStat(b, stat), pickStat(f, stat)
		if bv <= 0 {
			fmt.Fprintf(os.Stderr, "benchjson: envelope: baseline %s %s is %v\n", f.Name, stat, bv)
			os.Exit(2)
		}
		ratio := fv / bv
		verdict := "ok"
		if ratio > maxRatio {
			verdict = "FAILED"
			failed++
		}
		checked++
		fmt.Printf("envelope %s (%s): %.1f ns vs recorded %.1f ns = %.4fx (limit %.2fx) %s\n",
			f.Name, stat, fv, bv, ratio, maxRatio, verdict)
	}
	if checked == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: envelope: no benchmarks matched")
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: envelope FAILED: %d of %d benchmarks regressed\n", failed, checked)
		os.Exit(1)
	}
	fmt.Printf("envelope OK: %d benchmarks within %.2fx of %s\n", checked, maxRatio, baselineFile)
}
