package control

import "sync/atomic"

// Decision is one recorded control-plane adjustment: the pressure level
// that was decided, the inputs that triggered it, and the knob values
// before and after. One is recorded per Observe call that changed the level
// or the knobs.
type Decision struct {
	// Seq is the decision's ordinal (1 = first decision recorded).
	Seq uint64 `json:"seq"`
	// Level is the pressure level in force after this decision.
	Level Level `json:"level"`
	// In is the observation that triggered the decision.
	In Inputs `json:"inputs"`
	// Before and After are the knob values around the adjustment.
	Before Knobs `json:"before"`
	After  Knobs `json:"after"`
}

// DefaultRingCap is the default number of decisions retained.
const DefaultRingCap = 256

// DecisionRing is a lock-free ring buffer of the last N decisions, the same
// shape as telemetry.SweepRing: writers claim a slot with one atomic add
// and publish an immutable record with one atomic pointer store; readers
// never block writers.
type DecisionRing struct {
	slots []atomic.Pointer[Decision]
	next  atomic.Uint64
}

// NewDecisionRing returns a ring retaining the last capN decisions, rounded
// up to a power of two (DefaultRingCap if capN <= 0).
func NewDecisionRing(capN int) *DecisionRing {
	if capN <= 0 {
		capN = DefaultRingCap
	}
	n := 1
	for n < capN {
		n <<= 1
	}
	return &DecisionRing{slots: make([]atomic.Pointer[Decision], n)}
}

// Push appends d, overwriting the oldest decision once the ring is full,
// and returns the decision's sequence number (starting at 1). The stored
// copy is private to the ring, so callers may reuse d.
func (r *DecisionRing) Push(d Decision) uint64 {
	seq := r.next.Add(1)
	d.Seq = seq
	c := d
	r.slots[(seq-1)&uint64(len(r.slots)-1)].Store(&c)
	return seq
}

// Len returns the number of decisions currently retained.
func (r *DecisionRing) Len() int {
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Total returns the number of decisions ever pushed.
func (r *DecisionRing) Total() uint64 { return r.next.Load() }

// Snapshot returns the retained decisions, oldest first. Decisions pushed
// while snapshotting may be included or not; each returned record is
// internally consistent (publication is a single pointer store).
func (r *DecisionRing) Snapshot() []Decision {
	hi := r.next.Load()
	lo := uint64(0)
	if hi > uint64(len(r.slots)) {
		lo = hi - uint64(len(r.slots))
	}
	out := make([]Decision, 0, hi-lo)
	for s := lo; s < hi; s++ {
		p := r.slots[s&uint64(len(r.slots)-1)].Load()
		if p == nil {
			continue // claimed but not yet published
		}
		// A slot lapped by a concurrent writer holds a newer record; keep
		// only the record this slot held at sequence s+1 so the result
		// stays ordered oldest-first.
		if p.Seq == s+1 {
			out = append(out, *p)
		}
	}
	return out
}
