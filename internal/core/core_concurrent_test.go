package core

import (
	"sync"
	"testing"

	"minesweeper/internal/jemalloc"
	"minesweeper/internal/mem"
	"minesweeper/internal/sim"
)

// churn runs a correct mutator (pointers erased before free) on one thread.
func churn(t *testing.T, h *Heap, w *sim.World, tid int, iters int) {
	t.Helper()
	id := h.RegisterThread()
	if w != nil {
		w.Register()
		defer w.Unregister()
	}
	rng := uint64(tid)*2654435761 + 1
	var live []uint64
	for i := 0; i < iters; i++ {
		if w != nil {
			w.Safepoint()
		}
		rng = rng*6364136223846793005 + 1442695040888963407
		a, err := h.Malloc(id, rng%2048+16)
		if err != nil {
			t.Error(err)
			return
		}
		if err := h.space.Store64(a, rng&0xFFFF); err != nil {
			t.Error(err)
			return
		}
		live = append(live, a)
		if len(live) > 128 {
			idx := int(rng % uint64(len(live)))
			if err := h.Free(id, live[idx]); err != nil {
				t.Error(err)
				return
			}
			live[idx] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	for _, a := range live {
		if err := h.Free(id, a); err != nil {
			t.Error(err)
			return
		}
	}
	h.FlushThread(id)
}

func TestConcurrentMutatorsFullyConcurrent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufferCap = 8
	h, err := New(mem.NewAddressSpace(), cfg, jemalloc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Shutdown()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			churn(t, h, nil, g, 3000)
		}(g)
	}
	wg.Wait()
	h.Sweep()
	h.Sweep()
	st := h.Stats()
	if st.Quarantined != 0 {
		t.Errorf("Quarantined = %d after final sweeps, want 0", st.Quarantined)
	}
	if st.Allocated != 0 {
		t.Errorf("Allocated = %d at exit, want 0", st.Allocated)
	}
	if st.Sweeps == 0 {
		t.Error("no sweeps ran")
	}
}

func TestConcurrentMutatorsMostlyConcurrentWithWorld(t *testing.T) {
	world := sim.NewWorld()
	cfg := DefaultConfig()
	cfg.Mode = MostlyConcurrent
	cfg.World = world
	cfg.BufferCap = 8
	h, err := New(mem.NewAddressSpace(), cfg, jemalloc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Shutdown()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			churn(t, h, world, g, 3000)
		}(g)
	}
	wg.Wait()
	h.Sweep()
	h.Sweep()
	st := h.Stats()
	if st.Quarantined != 0 {
		t.Errorf("Quarantined = %d after final sweeps, want 0", st.Quarantined)
	}
	if st.Sweeps > 0 && st.STWCycles == 0 {
		t.Error("mostly-concurrent sweeps recorded no STW time")
	}
}

func TestShardedChurnWithConcurrentSweeps(t *testing.T) {
	// 8 mutators over a 4-shard substrate while explicit sweeps run
	// concurrently: the batched release path (FreeBatch) constantly frees
	// into shards other than the sweeping thread's own, and tcache flushes
	// race bin handbacks. Run under -race via make race-hot / make check.
	cfg := DefaultConfig()
	cfg.BufferCap = 8
	jcfg := jemalloc.DefaultConfig()
	jcfg.Arenas = 4
	h, err := New(mem.NewAddressSpace(), cfg, jcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Shutdown()
	done := make(chan struct{})
	sweeperDone := make(chan struct{})
	go func() {
		defer close(sweeperDone)
		for {
			select {
			case <-done:
				return
			default:
				h.Sweep()
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			churn(t, h, nil, g, 2000)
		}(g)
	}
	wg.Wait()
	close(done)
	<-sweeperDone
	h.Sweep()
	h.Sweep()
	st := h.Stats()
	if st.Quarantined != 0 {
		t.Errorf("Quarantined = %d after final sweeps, want 0", st.Quarantined)
	}
	if st.Allocated != 0 {
		t.Errorf("Allocated = %d at exit, want 0", st.Allocated)
	}
	if got := h.sub.(*jemalloc.Heap).NumArenas(); got != 4 {
		t.Errorf("NumArenas = %d, want 4", got)
	}
}

func TestPauseOnOverwhelm(t *testing.T) {
	// An extreme allocation rate with a tiny pause threshold must engage
	// the §5.7 pausing mechanism instead of growing memory unboundedly.
	cfg := DefaultConfig()
	cfg.PauseThreshold = 0.5
	cfg.BufferCap = 1
	h, err := New(mem.NewAddressSpace(), cfg, jemalloc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Shutdown()
	id := h.RegisterThread()
	// Keep one live object so the heap denominator is nonzero.
	keep, _ := h.Malloc(id, 4096)
	for i := 0; i < 5000; i++ {
		a, err := h.Malloc(id, 1024)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Free(id, a); err != nil {
			t.Fatal(err)
		}
	}
	_ = h.Free(id, keep)
	if h.Stats().PauseNanos == 0 {
		t.Error("no pause time recorded under overwhelming churn")
	}
	if h.Stats().Sweeps == 0 {
		t.Error("no sweeps under overwhelming churn")
	}
}

func TestSweepThresholdHonoursFailedFrees(t *testing.T) {
	// Failed frees are subtracted from both sides of the trigger (§3.2):
	// a quarantine made mostly of failed frees must NOT trigger a sweep
	// storm. We verify sweeps stay bounded with a permanently-referenced
	// quarantined object dominating the quarantine.
	cfg := testConfig()
	cfg.SweepThreshold = 0.15
	h, tid := newTestHeap(t, cfg)
	g, _ := h.space.Map(mem.KindGlobals, mem.PageSize, true)
	pinned, _ := h.Malloc(tid, 8192)
	_ = h.space.Store64(g.Base(), pinned)
	keep, _ := h.Malloc(tid, 8192) // live heap
	_ = h.Free(tid, pinned)
	h.Sweep() // fails; pinned stays with Failed flag
	if h.Stats().FailedFrees == 0 {
		t.Fatal("setup: pinned free did not fail")
	}
	sweepsBefore := h.Stats().Sweeps
	// Small frees that, counting the failed bytes, would exceed 15%, but
	// with failed frees subtracted do not.
	for i := 0; i < 20; i++ {
		a, _ := h.Malloc(tid, 16)
		_ = h.Free(tid, a)
	}
	extra := h.Stats().Sweeps - sweepsBefore
	if extra > 2 {
		t.Errorf("%d sweeps triggered by tiny frees; failed-free subtraction broken", extra)
	}
	_ = h.Free(tid, keep)
}

func TestUnmappedFactorCountsOnlyUnmapped(t *testing.T) {
	// The 9x trigger (§4.2) compares UNMAPPED quarantine against RSS;
	// mapped quarantine must not fire it.
	cfg := testConfig()
	cfg.UnmappedFactor = 0.1
	cfg.Unmapping = false // nothing gets unmapped
	h, tid := newTestHeap(t, cfg)
	for i := 0; i < 32; i++ {
		a, _ := h.Malloc(tid, 1<<20)
		if err := h.Free(tid, a); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.Stats().Sweeps; got != 0 {
		t.Errorf("unmapped-factor trigger fired %d times with unmapping disabled", got)
	}
}

func TestEpochIsolation(t *testing.T) {
	// §4.3: "any allocations placed in quarantine between the start and
	// end of a sweep can only be recycled by a future sweep". With
	// synchronous sweeps we emulate the lock-in by freeing after LockIn:
	// a forced sweep must not release entries appended after it started.
	h, tid := newTestHeap(t, testConfig())
	a, _ := h.Malloc(tid, 64)
	b, _ := h.Malloc(tid, 64)
	_ = h.Free(tid, a)
	h.Sweep() // releases a only; b is not yet freed
	_ = h.Free(tid, b)
	st := h.Stats()
	if st.ReleasedFrees != 1 {
		t.Fatalf("ReleasedFrees = %d, want 1", st.ReleasedFrees)
	}
	if st.Quarantined == 0 {
		t.Fatal("b released without a sweep")
	}
	h.Sweep()
	if got := h.Stats().ReleasedFrees; got != 2 {
		t.Errorf("ReleasedFrees = %d after second sweep, want 2", got)
	}
}

func TestZeroingSizeCoversWholeAllocation(t *testing.T) {
	// Zero-on-free must cover the usable size, not just the request:
	// stale pointers at the tail would otherwise survive into quarantine.
	h, tid := newTestHeap(t, testConfig())
	a, _ := h.Malloc(tid, 100) // usable 112
	for off := uint64(0); off < 112; off += 8 {
		if err := h.space.Store64(a+off, 0xFF); err != nil {
			t.Fatal(err)
		}
	}
	_ = h.Free(tid, a)
	for off := uint64(0); off < 112; off += 8 {
		v, err := h.space.Load64(a + off)
		if err != nil {
			t.Fatalf("+%d: %v", off, err)
		}
		if v != 0 {
			t.Errorf("word at +%d = %#x after free, want 0", off, v)
		}
	}
}
