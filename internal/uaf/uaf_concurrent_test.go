package uaf

import (
	"testing"

	"minesweeper/internal/alloc"
	"minesweeper/internal/core"
	"minesweeper/internal/jemalloc"
	"minesweeper/internal/mem"
)

// msConcurrentBuild mirrors msBuild but runs the pipelined mostly-concurrent
// sweep: concurrent mark against the lock-in snapshot, pre-clean rounds, and
// the soft-dirty stop-the-world re-scan. The World stays nil — the scenario
// is single-threaded, so there is nothing to park at a safepoint and the
// re-scan simply runs unstopped — and sweeps stay synchronous so forceSweeps
// is deterministic.
func msConcurrentBuild(space *mem.AddressSpace) alloc.Allocator {
	cfg := core.DefaultConfig()
	cfg.Mode = core.MostlyConcurrent
	cfg.ConcurrentMark = true
	cfg.RescanBudgetPages = core.DefaultRescanBudgetPages
	cfg.SweepThreshold = 1e18
	cfg.PauseThreshold = 0
	cfg.BufferCap = 1
	h, err := core.New(space, cfg, jemalloc.DefaultConfig())
	if err != nil {
		panic(err)
	}
	return h
}

// TestExploitPreventedByMineSweeperConcurrentMark proves the pipelined sweep
// offers the same protection as the synchronous configuration: the paper's
// UAF exploit scenario must end with zero spray hits and no attacker data
// reachable through the dangling pointer.
func TestExploitPreventedByMineSweeperConcurrentMark(t *testing.T) {
	prog, victim, attacker := setup(t, msConcurrentBuild)
	res, err := Run(prog, victim, attacker, DefaultScenario())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == Exploited {
		t.Fatalf("pipelined MineSweeper failed to prevent the exploit (hits=%d)", res.SprayHits)
	}
	if res.SprayHits != 0 {
		t.Errorf("quarantined address handed to attacker %d times", res.SprayHits)
	}
	if res.Outcome == Benign && res.ReadVtable != 0 {
		t.Errorf("benign read = %#x, want 0 (zeroed)", res.ReadVtable)
	}
}

// TestLargeObjectExploitFaultsCleanlyConcurrentMark is the unmapped-large-
// object variant under the pipelined sweep: the dangling dispatch must fault,
// not read attacker-controlled memory.
func TestLargeObjectExploitFaultsCleanlyConcurrentMark(t *testing.T) {
	prog, victim, attacker := setup(t, msConcurrentBuild)
	sc := Scenario{ObjectSize: 1 << 20, SprayCount: 8, Sweeps: 0}
	res, err := Run(prog, victim, attacker, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Faulted {
		t.Errorf("outcome = %v, want clean fault (unmapped quarantined page)", res.Outcome)
	}
	if res.ReadVtable == MaliciousVtable {
		t.Error("dangling dispatch read attacker data under the pipelined sweep")
	}
}
