// Flightrec: the always-on flight recorder catching an anomaly in the act.
//
// Run with:
//
//	go run ./examples/flightrec
//
// It runs an allocation churn under MineSweeper with the event recorder
// attached and a dump sink armed, then trips the recorder manually the way
// an anomaly trigger (STW over budget, governor entering Critical, RSS over
// budget) would: the last few seconds of every per-thread event ring —
// sweep-phase spans, quarantine drains, sampled mallocs and frees — are
// snapshotted into a self-describing binary dump. The dump is then rendered
// two ways: the merged text timeline (msstat -events) and a Chrome
// trace_event file loadable in chrome://tracing or ui.perfetto.dev.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	minesweeper "minesweeper"
	"minesweeper/internal/events"
)

func main() {
	proc, err := minesweeper.NewProcess(minesweeper.Config{
		Scheme:      minesweeper.SchemeMineSweeper,
		Synchronous: true, // deterministic sweep timing for the demo
		BufferCap:   1,
		Events:      true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer proc.Close()

	rec := proc.Events()
	if rec == nil {
		log.Fatal("flight recorder not attached")
	}

	// Arm the sink: any accepted Trip lands here with the captured window.
	dumpPath := filepath.Join(os.TempDir(), "flightrec-example.msev")
	rec.SetSink(func(d *events.Dump) {
		f, err := os.Create(dumpPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if _, err := d.WriteTo(f); err != nil {
			log.Fatal(err)
		}
	})

	th, err := proc.NewThread()
	if err != nil {
		log.Fatal(err)
	}
	defer th.Close()

	// Churn: allocate a working set and free most of it so sweeps trigger
	// naturally and the rings fill with spans, drains and sampled ops.
	var live []minesweeper.Addr
	for i := 0; i < 20000; i++ {
		p, err := th.Malloc(uint64(16 + i%2048))
		if err != nil {
			log.Fatal(err)
		}
		if err := th.Store(p, uint64(i)); err != nil {
			log.Fatal(err)
		}
		live = append(live, p)
		if len(live) > 256 {
			if err := th.Free(live[0]); err != nil {
				log.Fatal(err)
			}
			live = live[1:]
		}
	}
	for _, p := range live {
		if err := th.Free(p); err != nil {
			log.Fatal(err)
		}
	}
	proc.Sweep()

	// Trip the recorder the way an anomaly trigger would.
	if !rec.Trip(events.TripManual) {
		log.Fatal("trip rejected (no sink?)")
	}
	fmt.Printf("flight dump written to %s\n\n", dumpPath)

	// Read it back and render the timeline, as msstat -events does.
	f, err := os.Open(dumpPath)
	if err != nil {
		log.Fatal(err)
	}
	dump, _, err := events.ReadDump(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if err := events.ValidateSpans(dump); err != nil {
		log.Fatal(err)
	}
	if err := events.WriteTimeline(os.Stdout, dump); err != nil {
		log.Fatal(err)
	}

	// And the Chrome trace, for chrome://tracing / Perfetto.
	tracePath := filepath.Join(os.TempDir(), "flightrec-example-trace.json")
	tf, err := os.Create(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	defer tf.Close()
	if err := events.WriteChromeTrace(tf, dump); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchrome trace written to %s\n", tracePath)
}
