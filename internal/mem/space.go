package mem

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
)

// Address-space layout. Each kind of mapping gets its own area so that the
// heap occupies one contiguous reservable range: the shadow map indexes it
// with a constant-time subtract/shift, and the sweeper's "does this word look
// like a heap pointer" filter is two compares, exactly as in the paper.
const (
	// GlobalsBase is where the simulated globals segment is mapped.
	GlobalsBase uint64 = 0x0000_0000_4000_0000
	// GlobalsLimit bounds the globals area.
	GlobalsLimit uint64 = 0x0000_0001_0000_0000
	// HeapBase is the first heap address.
	HeapBase uint64 = 0x0000_1000_0000_0000
	// HeapLimit bounds the heap area (1 TiB of reservable heap VA, enough
	// for FFMalloc's never-reuse-an-address policy).
	HeapLimit uint64 = 0x0000_1100_0000_0000
	// StackBase is where mutator stacks are mapped.
	StackBase uint64 = 0x0000_7000_0000_0000
	// StackLimit bounds the stack area.
	StackLimit uint64 = 0x0000_7100_0000_0000
)

// guardGap is the unmapped gap left between consecutive regions so that
// off-by-one pointer bugs fault instead of silently landing in a neighbour.
const guardGap = PageSize

// Stats is a snapshot of address-space accounting.
type Stats struct {
	// RSS is resident (committed) memory in bytes — the simulated
	// equivalent of the physical footprint psrecord measures in the paper.
	RSS uint64
	// Mapped is total mapped virtual memory in bytes.
	Mapped uint64
	// Regions is the number of live regions.
	Regions int
	// Faults counts invalid accesses observed (each is the simulated
	// equivalent of a SIGSEGV).
	Faults uint64
}

// Radix page-table geometry: lookups resolve a page number (addr >> 12) in
// two steps, L1 indexed by addr bits [47:28] (256 MiB granules) and L2 by
// bits [27:12]. This makes Lookup O(1) like hardware address translation —
// essential because quarantining schemes can pin thousands of extents, and a
// per-access cost that grew with extent count would be a simulator artifact,
// not a property of the schemes under study.
const (
	radixL1Shift = 28
	radixL1Size  = 1 << (47 - radixL1Shift) // covers the 47-bit layout
	radixL2Size  = 1 << (radixL1Shift - PageShift)
)

type radixLeaf [radixL2Size]atomic.Pointer[Region]

// AddressSpace is a sparse simulated 64-bit virtual address space. Mapping
// changes take a mutex; address lookups are lock-free constant-time radix
// walks, so mutator threads and sweeper threads scale without contending.
type AddressSpace struct {
	mu       sync.Mutex
	set      map[uint64]*Region        // live regions by base
	snapshot atomic.Pointer[[]*Region] // sorted by base; rebuilt lazily
	stale    atomic.Bool               // snapshot needs rebuilding
	radix    [radixL1Size]atomic.Pointer[radixLeaf]
	nextHeap uint64
	nextStk  uint64
	nextGbl  uint64

	rss    atomic.Int64 // resident bytes
	mapped atomic.Int64 // mapped bytes
	faults atomic.Uint64

	// Dirty tracking for the pipelined sweep: dirtyPages counts pages whose
	// soft-dirty bit is currently set (every set/clear transition adjusts
	// it), and dirtyRegs lists each region dirtied since the last
	// ClearSoftDirty, appended once per region per window by the store that
	// first dirties it. Together they give the sweep an O(1) budget check
	// and O(dirtied-regions) dirty passes — crucial inside a stop-the-world
	// window, where walking an extent-granular region set that can reach
	// tens of thousands of entries would put the pause back on an O(heap)
	// slope.
	dirtyPages atomic.Int64
	dirtyMu    sync.Mutex
	dirtyRegs  []*Region

	// zeroElided counts bytes whose zeroing was skipped because the target
	// pages were already known-zero — the Zero/commit-side payoff of the
	// known-zero map (the sweep-side payoff is counted by the sweeper).
	zeroElided atomic.Uint64

	// backing pools recycle word-slice backings by size so that extent
	// commit/decommit cycles (quarantine unmapping, purging) do not churn
	// the host garbage collector — the real system's counterpart is the
	// kernel's free-page pool. A plain free stack per size rather than a
	// sync.Pool: the pool is emptied at every GC cycle, so each
	// purge-after-sweep decommit/recommit round trip reallocated the
	// heap's whole backing, and those large zeroed allocations in turn
	// drove the next GC cycle.
	backingMu sync.Mutex
	backing   map[int][][]uint64 // words count -> free backings

	// backingWords bounds the pool: total retained words across all sizes.
	backingWords int
}

// maxBackingWords caps retained backing at 512 MiB worth of words; beyond
// that, dropped backings are left to the garbage collector.
const maxBackingWords = 512 << 20 / 8

// getBacking returns a zeroed backing of the given word count, reusing a
// pooled one when available.
func (as *AddressSpace) getBacking(words int) []uint64 {
	as.backingMu.Lock()
	if list := as.backing[words]; len(list) > 0 {
		s := list[len(list)-1]
		list[len(list)-1] = nil
		as.backing[words] = list[:len(list)-1]
		as.backingWords -= words
		as.backingMu.Unlock()
		clear(s)
		return s
	}
	as.backingMu.Unlock()
	return make([]uint64, words)
}

// putBacking returns a dropped backing to the pool.
func (as *AddressSpace) putBacking(s []uint64) {
	as.backingMu.Lock()
	if as.backingWords+len(s) <= maxBackingWords {
		if as.backing == nil {
			as.backing = make(map[int][][]uint64)
		}
		as.backing[len(s)] = append(as.backing[len(s)], s)
		as.backingWords += len(s)
	}
	as.backingMu.Unlock()
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	as := &AddressSpace{
		set:      make(map[uint64]*Region),
		nextHeap: HeapBase,
		nextStk:  StackBase,
		nextGbl:  GlobalsBase,
	}
	empty := make([]*Region, 0)
	as.snapshot.Store(&empty)
	return as
}

// regions returns a sorted region snapshot, rebuilding it only when the
// region set changed since the last call. Mapping and unmapping are O(pages)
// — allocator-rate operations must not pay O(regions).
func (as *AddressSpace) regions() []*Region {
	if !as.stale.Load() {
		return *as.snapshot.Load()
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	if !as.stale.Load() {
		return *as.snapshot.Load()
	}
	nw := make([]*Region, 0, len(as.set))
	for _, r := range as.set {
		nw = append(nw, r)
	}
	sort.Slice(nw, func(i, j int) bool { return nw[i].base < nw[j].base })
	as.snapshot.Store(&nw)
	as.stale.Store(false)
	return nw
}

// Lookup returns the region containing addr, or nil.
func (as *AddressSpace) Lookup(addr uint64) *Region {
	l1 := addr >> radixL1Shift
	if l1 >= radixL1Size {
		return nil
	}
	leaf := as.radix[l1].Load()
	if leaf == nil {
		return nil
	}
	return leaf[(addr>>PageShift)&(radixL2Size-1)].Load()
}

// radixInsert points every page of r at r. Caller holds as.mu.
func (as *AddressSpace) radixInsert(r *Region) {
	for addr := r.base; addr < r.base+r.size; addr += PageSize {
		l1 := addr >> radixL1Shift
		leaf := as.radix[l1].Load()
		if leaf == nil {
			leaf = new(radixLeaf)
			as.radix[l1].Store(leaf)
		}
		leaf[(addr>>PageShift)&(radixL2Size-1)].Store(r)
	}
}

// radixRemove clears every page of r. Caller holds as.mu.
func (as *AddressSpace) radixRemove(r *Region) {
	for addr := r.base; addr < r.base+r.size; addr += PageSize {
		leaf := as.radix[addr>>radixL1Shift].Load()
		if leaf != nil {
			leaf[(addr>>PageShift)&(radixL2Size-1)].Store(nil)
		}
	}
}

// Map reserves and maps a new region of the given kind. Size is rounded up to
// a whole number of pages. If committed is true all pages are resident with
// ProtRW; otherwise the region is reserved only (no backing, all accesses
// fault until Commit).
func (as *AddressSpace) Map(kind Kind, size uint64, committed bool) (*Region, error) {
	if size == 0 {
		return nil, fmt.Errorf("mem: Map: zero size")
	}
	size = PageCeil(size)

	as.mu.Lock()
	defer as.mu.Unlock()

	var base uint64
	switch kind {
	case KindHeap:
		base = as.nextHeap
		if base+size+guardGap > HeapLimit {
			return nil, fmt.Errorf("mem: Map: heap area exhausted (%d bytes requested)", size)
		}
		as.nextHeap = base + size + guardGap
	case KindStack:
		base = as.nextStk
		if base+size+guardGap > StackLimit {
			return nil, fmt.Errorf("mem: Map: stack area exhausted")
		}
		as.nextStk = base + size + guardGap
	case KindGlobals:
		base = as.nextGbl
		if base+size+guardGap > GlobalsLimit {
			return nil, fmt.Errorf("mem: Map: globals area exhausted")
		}
		as.nextGbl = base + size + guardGap
	default:
		return nil, fmt.Errorf("mem: Map: unknown kind %v", kind)
	}

	r := &Region{
		space:    as,
		base:     base,
		size:     size,
		kind:     kind,
		pages:    make([]atomic.Uint32, size/PageSize),
		dirtySum: make([]atomic.Uint64, (size/PageSize+63)/64),
		zeroSum:  make([]atomic.Uint64, (size/PageSize+63)/64),
	}
	if committed {
		r.ensureBacking()
		// Fresh committed mappings are zero-filled by construction, so
		// every page starts known-zero: untouched pages of a new extent
		// cost the sweeper nothing.
		bits := pageResident | pageRead | pageWrite | pageKnownZero
		for i := range r.pages {
			r.pages[i].Store(bits)
		}
		for i := range r.zeroSum {
			r.zeroSum[i].Store(^uint64(0))
		}
		r.resident.Store(int32(size / PageSize))
		as.rss.Add(int64(size))
	}
	as.mapped.Add(int64(size))

	as.set[base] = r
	as.stale.Store(true)
	as.radixInsert(r)
	return r, nil
}

// Unmap removes a region entirely. Subsequent accesses to its range fault
// with CauseUnmapped, and its host backing becomes collectable.
func (as *AddressSpace) Unmap(r *Region) error {
	as.mu.Lock()
	defer as.mu.Unlock()

	if as.set[r.base] != r {
		return fmt.Errorf("mem: Unmap: region %#x not mapped", r.base)
	}
	// Clear all page state so stale references to the region (e.g. a
	// thread's cached region) fault on access rather than reading freed
	// memory.
	resident := 0
	for p := range r.pages {
		if r.pages[p].Swap(0)&pageResident != 0 {
			resident++
		}
	}
	r.resident.Store(0)
	if r.parent == nil {
		if old := r.words.Swap(nil); old != nil {
			as.putBacking(*old)
		}
		as.rss.Add(-int64(resident * PageSize))
	}
	as.mapped.Add(-int64(r.size))

	delete(as.set, r.base)
	as.stale.Store(true)
	as.radixRemove(r)
	return nil
}

// resolveRange locates the single region containing [addr, addr+n) with page
// alignment checks. All page-granular operations require the range to lie
// within one region, which holds for every caller (extents and pools map one
// region each).
func (as *AddressSpace) resolveRange(op string, addr, n uint64) (*Region, error) {
	if addr&(PageSize-1) != 0 || n&(PageSize-1) != 0 || n == 0 {
		return nil, fmt.Errorf("mem: %s: range %#x+%#x not page-aligned", op, addr, n)
	}
	r := as.Lookup(addr)
	if r == nil || addr+n > r.End() {
		return nil, fmt.Errorf("mem: %s: range %#x+%#x not within one region", op, addr, n)
	}
	return r, nil
}

// Commit makes pages [addr, addr+n) resident with protection prot, zero-filled
// if they were not already resident. It is the simulated mmap-commit half of
// jemalloc's extent hook pair. Alias pages contribute no RSS (the parent's
// frames are the physical memory).
func (as *AddressSpace) Commit(addr, n uint64, prot Prot) error {
	r, err := as.resolveRange("Commit", addr, n)
	if err != nil {
		return err
	}
	newly := r.commit(addr, n, prot)
	if !r.IsAlias() {
		as.rss.Add(int64(newly * PageSize))
	}
	return nil
}

// Decommit releases the physical backing of pages [addr, addr+n): contents are
// discarded, residency is cleared and all access faults. It is the simulated
// madvise(DONTNEED)+mprotect(NONE) pair MineSweeper uses for unmapped
// quarantined pages.
func (as *AddressSpace) Decommit(addr, n uint64) error {
	r, err := as.resolveRange("Decommit", addr, n)
	if err != nil {
		return err
	}
	released := r.decommit(addr, n)
	if !r.IsAlias() {
		as.rss.Add(-int64(released * PageSize))
	}
	return nil
}

// Protect changes the protection of pages [addr, addr+n) without affecting
// residency — the simulated mprotect.
func (as *AddressSpace) Protect(addr, n uint64, prot Prot) error {
	r, err := as.resolveRange("Protect", addr, n)
	if err != nil {
		return err
	}
	r.protect(addr, n, prot)
	return nil
}

// MapAlias maps a new virtual region exposing [offset, offset+size) of
// parent's physical memory in the heap area — the virtual-page aliasing
// page-permission schemes (Oscar) use to give each object its own virtual
// page while co-locating objects physically. offset and size must be
// page-aligned; parent must not itself be an alias. The alias starts
// resident and read-write; its residency is bookkeeping only (no RSS).
func (as *AddressSpace) MapAlias(parent *Region, offset, size uint64) (*Region, error) {
	if parent == nil || parent.IsAlias() {
		return nil, fmt.Errorf("mem: MapAlias: invalid parent")
	}
	if offset%PageSize != 0 || size%PageSize != 0 || size == 0 || offset+size > parent.Size() {
		return nil, fmt.Errorf("mem: MapAlias: window %#x+%#x not page-aligned within parent", offset, size)
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	base := as.nextHeap
	if base+size+guardGap > HeapLimit {
		return nil, fmt.Errorf("mem: MapAlias: heap area exhausted")
	}
	as.nextHeap = base + size + guardGap

	r := &Region{
		space:     as,
		base:      base,
		size:      size,
		kind:      KindHeap,
		pages:     make([]atomic.Uint32, size/PageSize),
		dirtySum:  make([]atomic.Uint64, (size/PageSize+63)/64),
		zeroSum:   make([]atomic.Uint64, (size/PageSize+63)/64),
		parent:    parent,
		parentOff: offset,
	}
	bits := pageResident | pageRead | pageWrite
	for i := range r.pages {
		r.pages[i].Store(bits)
	}
	r.resident.Store(int32(size / PageSize))
	as.mapped.Add(int64(size))
	as.set[base] = r
	as.stale.Store(true)
	as.radixInsert(r)
	return r, nil
}

// Load64 performs a checked, atomic load of the word at addr.
func (as *AddressSpace) Load64(addr uint64) (uint64, error) {
	r := as.Lookup(addr)
	if r == nil {
		as.faults.Add(1)
		return 0, &Fault{Addr: addr, Cause: CauseUnmapped}
	}
	v, err := r.load(addr)
	if err != nil {
		as.faults.Add(1)
	}
	return v, err
}

// Store64 performs a checked, atomic store of v at addr, setting the
// containing page's soft-dirty bit.
func (as *AddressSpace) Store64(addr, v uint64) error {
	r := as.Lookup(addr)
	if r == nil {
		as.faults.Add(1)
		return &Fault{Addr: addr, Write: true, Cause: CauseUnmapped}
	}
	if err := r.store(addr, v); err != nil {
		as.faults.Add(1)
		return err
	}
	return nil
}

// Zero zeroes the word-aligned range [addr, addr+n) without protection
// checks; it is the allocator's memset primitive (zero-on-free, commit fill).
// The range must lie within one region.
func (as *AddressSpace) Zero(addr, n uint64) error {
	if !WordAligned(addr) || n&(WordSize-1) != 0 {
		return fmt.Errorf("mem: Zero: range %#x+%#x not word-aligned", addr, n)
	}
	if n == 0 {
		return nil
	}
	r := as.Lookup(addr)
	if r == nil || addr+n > r.End() {
		return fmt.Errorf("mem: Zero: range %#x+%#x not within one region", addr, n)
	}
	r.zeroRange(addr, n)
	return nil
}

// ZeroRun is one word-aligned range for ZeroBatch.
type ZeroRun struct {
	Addr, Size uint64
}

// ZeroBatch zeroes every range in runs with the same semantics as Zero,
// after sorting them and merging adjacent or overlapping ranges within one
// region into single contiguous clears. A ring drain frees many chunks
// carved from the same slabs, so the merged runs frequently cover whole
// pages that individual chunk-sized Zero calls never could — and a
// whole-page clear both runs once per page and publishes the page's
// known-zero bit, which per-chunk clears cannot. runs is reordered in
// place. The first invalid range aborts the batch with an error; earlier
// runs stay zeroed.
func (as *AddressSpace) ZeroBatch(runs []ZeroRun) error {
	if len(runs) == 0 {
		return nil
	}
	// slices.SortFunc, not sort.Slice: this runs on every ring drain and the
	// reflection-based swapper shows up in malloc/free profiles. Drains push
	// frees in rough address order already, which pdqsort handles in O(n).
	slices.SortFunc(runs, func(a, b ZeroRun) int {
		switch {
		case a.Addr < b.Addr:
			return -1
		case a.Addr > b.Addr:
			return 1
		default:
			return 0
		}
	})
	cur := runs[0]
	for _, run := range runs[1:] {
		if run.Size == 0 {
			continue
		}
		if run.Addr <= cur.Addr+cur.Size {
			if end := run.Addr + run.Size; end > cur.Addr+cur.Size {
				cur.Size = end - cur.Addr
			}
			continue
		}
		if err := as.Zero(cur.Addr, cur.Size); err != nil {
			return err
		}
		cur = run
	}
	if cur.Size == 0 {
		return nil
	}
	return as.Zero(cur.Addr, cur.Size)
}

// ZeroElidedBytes returns the total bytes whose zeroing was skipped because
// the target pages were already known-zero (zero-on-free over fresh or
// re-zeroed pages, commit over purged pages).
func (as *AddressSpace) ZeroElidedBytes() uint64 { return as.zeroElided.Load() }

// ClearSoftDirty clears the soft-dirty bit on every page of every region, the
// analogue of writing "4" to /proc/pid/clear_refs before a mostly-concurrent
// sweep. Only regions on the dirtied list need visiting: a dirty bit is set
// exclusively by store(), which lists the region before completing, so after
// a ClearSoftDirty the only dirty pages anywhere belong to racing writers —
// who are re-listing their regions for the next window. The taken list's
// backing is surrendered (not recycled): concurrent writers append to a
// fresh list while this one is still being walked.
func (as *AddressSpace) ClearSoftDirty() {
	as.dirtyMu.Lock()
	regs := as.dirtyRegs
	as.dirtyRegs = nil
	as.dirtyMu.Unlock()
	for _, r := range regs {
		r.clearSoftDirty()
	}
}

// addDirtyRegion records the first dirtying of r since the last
// ClearSoftDirty. Called once per region per dirty window (store's
// region-listed flag gates it), so the mutex is uncontended in steady state.
func (as *AddressSpace) addDirtyRegion(r *Region) {
	as.dirtyMu.Lock()
	as.dirtyRegs = append(as.dirtyRegs, r)
	as.dirtyMu.Unlock()
}

// DirtyPageCount returns the number of pages whose soft-dirty bit is set,
// maintained exactly by the set/clear transitions. O(1) — safe to call with
// the world stopped.
func (as *AddressSpace) DirtyPageCount() uint64 {
	if n := as.dirtyPages.Load(); n > 0 {
		return uint64(n)
	}
	return 0
}

// DirtyRegions overwrites dst with the regions dirtied since the last
// ClearSoftDirty and returns it, growing it as needed. The result is a
// snapshot: regions dirtied for the first time during a concurrent caller's
// iteration are missing from it (their pages stay flagged for the next
// pass), and listed regions may since have been cleaned or unmapped —
// readers re-check per-page state, which stays the source of truth.
func (as *AddressSpace) DirtyRegions(dst []*Region) []*Region {
	dst = dst[:0]
	as.dirtyMu.Lock()
	dst = append(dst, as.dirtyRegs...)
	as.dirtyMu.Unlock()
	return dst
}

// Regions returns the current region snapshot, sorted by base address. The
// returned slice must not be modified.
func (as *AddressSpace) Regions() []*Region { return as.regions() }

// RSS returns resident (committed) bytes.
func (as *AddressSpace) RSS() uint64 { return uint64(as.rss.Load()) }

// Stats returns an accounting snapshot.
func (as *AddressSpace) Stats() Stats {
	return Stats{
		RSS:     uint64(as.rss.Load()),
		Mapped:  uint64(as.mapped.Load()),
		Regions: len(as.regions()),
		Faults:  as.faults.Load(),
	}
}

// IsHeapAddr reports whether addr lies in the heap area — the sweeper's
// cheap "could this word be a heap pointer" filter.
func IsHeapAddr(addr uint64) bool { return addr >= HeapBase && addr < HeapLimit }
