package sweep

import (
	"testing"

	"minesweeper/internal/mem"
)

// TestCountDirtyPages covers the pre-clean budget heuristic's input.
func TestCountDirtyPages(t *testing.T) {
	as, _, s := setup(t, 0)
	heap, _ := as.Map(mem.KindHeap, 8*mem.PageSize, true)
	as.ClearSoftDirty()
	if n := s.CountDirtyPages(); n != 0 {
		t.Fatalf("CountDirtyPages after clear = %d, want 0", n)
	}
	for _, p := range []int{1, 3, 6} {
		if err := as.Store64(heap.PageAddr(p)+8, 1); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.CountDirtyPages(); n != 3 {
		t.Fatalf("CountDirtyPages = %d, want 3", n)
	}
}

// TestMarkDirtyClearConsumesBits: a pre-clean round marks pointers on dirty
// pages, clears the bits it consumed, and a second round scans nothing.
func TestMarkDirtyClearConsumesBits(t *testing.T) {
	as, marks, s := setup(t, 0)
	heap, _ := as.Map(mem.KindHeap, 4*mem.PageSize, true)
	target := heap.Base() + 0x40
	as.ClearSoftDirty()

	if err := as.Store64(heap.PageAddr(2)+16, target); err != nil {
		t.Fatal(err)
	}
	ps := s.MarkDirtyClearStats()
	if ps.PagesScanned != 1 {
		t.Fatalf("pre-clean scanned %d pages, want 1 (only the written page is dirty)", ps.PagesScanned)
	}
	if !marks.Test(target) {
		t.Fatal("pre-clean round missed pointer on dirty page")
	}
	if n := s.CountDirtyPages(); n != 0 {
		t.Fatalf("dirty pages after pre-clean = %d, want 0", n)
	}
	if ps2 := s.MarkDirtyClearStats(); ps2.PagesScanned != 0 {
		t.Fatalf("second pre-clean scanned %d pages, want 0", ps2.PagesScanned)
	}
	// A fresh write re-dirties the page for the next round.
	if err := as.Store64(heap.PageAddr(2)+24, 1); err != nil {
		t.Fatal(err)
	}
	if ps3 := s.MarkDirtyClearStats(); ps3.PagesScanned != 1 {
		t.Fatalf("post-rewrite pre-clean scanned %d pages, want 1", ps3.PagesScanned)
	}
}

// TestMarkDirtyLeavesBits: the STW variant filters on the dirty bit without
// consuming it (the next sweep's ClearSoftDirty resets the cycle).
func TestMarkDirtyLeavesBits(t *testing.T) {
	as, _, s := setup(t, 0)
	heap, _ := as.Map(mem.KindHeap, 4*mem.PageSize, true)
	as.ClearSoftDirty()
	if err := as.Store64(heap.PageAddr(1)+8, 1); err != nil {
		t.Fatal(err)
	}
	if ps := s.MarkDirtyStats(); ps.PagesScanned != 1 {
		t.Fatalf("MarkDirty scanned %d pages, want 1", ps.PagesScanned)
	}
	if n := s.CountDirtyPages(); n != 1 {
		t.Fatalf("dirty pages after MarkDirty = %d, want 1 (bit must survive)", n)
	}
}
