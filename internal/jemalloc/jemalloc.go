package jemalloc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"minesweeper/internal/alloc"
	"minesweeper/internal/mem"
)

// Config controls the allocator's behaviour.
type Config struct {
	// Hooks manage physical memory for extents. Nil means DefaultHooks.
	Hooks ExtentHooks
	// PadEnd grows every request by one byte so that one-past-the-end
	// pointers lie within the same allocation (the paper's jemalloc
	// modification for C/C++ end() pointer compatibility).
	PadEnd bool
	// DecayCycles is the virtual-time age after which dirty extents are
	// purged on Tick. Zero disables decay purging.
	DecayCycles uint64
	// TcacheEnabled enables per-thread caches.
	TcacheEnabled bool
}

// DefaultConfig mirrors stock jemalloc behaviour: tcache on, decay purging
// of dirty extents (jemalloc's 10-second decay curve, expressed here in
// virtual operation-count time at simulator scale), end-pointer pad on.
func DefaultConfig() Config {
	return Config{
		Hooks:         DefaultHooks{},
		PadEnd:        true,
		DecayCycles:   100_000,
		TcacheEnabled: true,
	}
}

// Heap is a jemalloc-style allocator over a simulated address space. It
// implements alloc.Allocator and is the substrate both the baseline and
// MineSweeper run on.
type Heap struct {
	space *mem.AddressSpace
	cfg   Config
	arena *arena
	bins  []bin

	tcMu     sync.Mutex
	tcaches  atomic.Pointer[[]*tcache]
	nthreads atomic.Int32

	allocated atomic.Int64 // live usable bytes
	largeLive atomic.Int64 // live large usable bytes
	slabBytes atomic.Int64 // bytes in live slabs
	mallocs   atomic.Uint64
	frees     atomic.Uint64
}

var _ alloc.Substrate = (*Heap)(nil)

// New returns a Heap over space.
func New(space *mem.AddressSpace, cfg Config) *Heap {
	if cfg.Hooks == nil {
		cfg.Hooks = DefaultHooks{}
	}
	h := &Heap{
		space: space,
		cfg:   cfg,
		arena: newArena(space, cfg.Hooks, cfg.DecayCycles),
		bins:  make([]bin, NumClasses()),
	}
	for c := range h.bins {
		h.bins[c].class = c
		h.bins[c].size = ClassSize(c)
		h.bins[c].slabBytes = &h.slabBytes
	}
	empty := make([]*tcache, 0)
	h.tcaches.Store(&empty)
	return h
}

// String returns the scheme name.
func (h *Heap) String() string { return "jemalloc" }

// Space returns the underlying address space.
func (h *Heap) Space() *mem.AddressSpace { return h.space }

// RegisterThread implements alloc.Allocator.
func (h *Heap) RegisterThread() alloc.ThreadID {
	h.tcMu.Lock()
	defer h.tcMu.Unlock()
	old := *h.tcaches.Load()
	nw := make([]*tcache, len(old)+1)
	copy(nw, old)
	nw[len(old)] = newTcache()
	h.tcaches.Store(&nw)
	h.nthreads.Add(1)
	return alloc.ThreadID(len(old))
}

// UnregisterThread flushes the thread's caches back to the shared bins and
// retires the cache: the slot is nilled out (copy-on-write, like
// RegisterThread) so a dead thread's cache does not pin its regions forever.
func (h *Heap) UnregisterThread(tid alloc.ThreadID) {
	tc := h.tcacheFor(tid)
	if tc == nil {
		return
	}
	for c := range tc.bins {
		for _, it := range tc.drainAll(c) {
			_ = h.bins[c].freeRegion(h.arena, it.ext, int(it.reg))
		}
	}
	h.tcMu.Lock()
	defer h.tcMu.Unlock()
	old := *h.tcaches.Load()
	if int(tid) < len(old) && old[tid] == tc {
		nw := make([]*tcache, len(old))
		copy(nw, old)
		nw[tid] = nil
		h.tcaches.Store(&nw)
		h.nthreads.Add(-1)
	}
}

func (h *Heap) tcacheFor(tid alloc.ThreadID) *tcache {
	if !h.cfg.TcacheEnabled {
		return nil
	}
	tcs := *h.tcaches.Load()
	if int(tid) < 0 || int(tid) >= len(tcs) {
		return nil
	}
	return tcs[tid]
}

// Malloc implements alloc.Allocator.
func (h *Heap) Malloc(tid alloc.ThreadID, size uint64) (uint64, error) {
	if size == 0 {
		size = 1
	}
	req := size
	if h.cfg.PadEnd {
		req++
	}
	var addr uint64
	var usable uint64
	if IsSmall(req) {
		class := SizeToClass(req)
		usable = ClassSize(class)
		tc := h.tcacheFor(tid)
		if tc != nil {
			addr = tc.pop(class)
		}
		if addr == 0 {
			var err error
			addr, err = h.smallSlow(tc, class)
			if err != nil {
				return 0, err
			}
		}
	} else {
		pages := LargePages(req)
		e, err := h.arena.allocExtent(int(pages))
		if err != nil {
			return 0, fmt.Errorf("%w: %v", alloc.ErrOutOfMemory, err)
		}
		e.initLarge()
		addr = e.base
		usable = e.size
		h.largeLive.Add(int64(usable))
	}
	h.allocated.Add(int64(usable))
	h.mallocs.Add(1)
	return addr, nil
}

// smallSlow refills the tcache from the bin (or allocates one region when
// tcache is disabled).
func (h *Heap) smallSlow(tc *tcache, class int) (uint64, error) {
	b := &h.bins[class]
	want := 1
	if tc != nil {
		want = tc.fillTarget(class)
		if want < 1 {
			want = 1
		}
	}
	var buf []uint64
	var exts []*Extent
	var regs []int32
	if tc != nil {
		if cap(tc.fillAddrs) < want {
			tc.fillAddrs = make([]uint64, want)
			tc.fillExts = make([]*Extent, want)
			tc.fillRegs = make([]int32, want)
		}
		buf, exts, regs = tc.fillAddrs[:want], tc.fillExts[:want], tc.fillRegs[:want]
	} else {
		buf = make([]uint64, want)
		exts = make([]*Extent, want)
		regs = make([]int32, want)
	}
	n, err := b.allocBatch(h.arena, buf, exts, regs)
	if err != nil || n == 0 {
		return 0, fmt.Errorf("%w: %v", alloc.ErrOutOfMemory, err)
	}
	addr := buf[0]
	if tc != nil {
		for i, a := range buf[1:n] {
			tc.push(class, a, exts[1+i], int(regs[1+i]))
		}
	}
	return addr, nil
}

// Free implements alloc.Allocator.
func (h *Heap) Free(tid alloc.ThreadID, addr uint64) error {
	e := h.arena.pm.lookup(addr)
	if e == nil {
		return fmt.Errorf("%w: %#x", alloc.ErrInvalidFree, addr)
	}
	return h.freeInExtent(tid, e, addr)
}

// FreeResolved implements alloc.Substrate: free via a Resolve-obtained extent
// reference, skipping the page-map lookup. The page map never unmaps a page
// once an extent covers it, so a ref resolved while the allocation was live
// names exactly the extent a fresh lookup would find.
func (h *Heap) FreeResolved(tid alloc.ThreadID, ref alloc.Ref, addr uint64) error {
	e, _ := ref.(*Extent)
	if e == nil {
		return h.Free(tid, addr)
	}
	return h.freeInExtent(tid, e, addr)
}

// freeInExtent frees addr, known to lie in extent e.
func (h *Heap) freeInExtent(tid alloc.ThreadID, e *Extent, addr uint64) error {
	if e.isSlab() {
		return h.freeSmall(tid, e, addr)
	}
	if !e.isLarge() || addr != e.base {
		return fmt.Errorf("%w: %#x", alloc.ErrInvalidFree, addr)
	}
	usable := e.size
	h.arena.freeExtent(e)
	h.largeLive.Add(-int64(usable))
	h.allocated.Add(-int64(usable))
	h.frees.Add(1)
	return nil
}

func (h *Heap) freeSmall(tid alloc.ThreadID, e *Extent, addr uint64) error {
	idx := e.regionIndex(addr)
	if e.regionBase(idx) != addr {
		return fmt.Errorf("%w: %#x is interior", alloc.ErrInvalidFree, addr)
	}
	class := int(e.class.Load())
	usable := ClassSize(class)
	tc := h.tcacheFor(tid)
	if tc != nil {
		// O(1) double-free checks: one atomic bit test against every
		// thread's cache (the extent's cachemap), one against the slab
		// freemap.
		if e.regionCached(idx) {
			return fmt.Errorf("%w: %#x", alloc.ErrDoubleFree, addr)
		}
		if e.regionFree(idx) {
			return fmt.Errorf("%w: %#x", alloc.ErrDoubleFree, addr)
		}
		if full := tc.push(class, addr, e, idx); full {
			h.flushTbin(tc, class)
		}
	} else {
		if err := h.bins[class].freeRegion(h.arena, e, idx); err != nil {
			return err
		}
	}
	h.allocated.Add(-int64(usable))
	h.frees.Add(1)
	return nil
}

// flushTbin returns the oldest half of a tcache bin to the shared bin. The
// cached items carry their extents, so no page-map lookups are needed.
func (h *Heap) flushTbin(tc *tcache, class int) {
	b := &h.bins[class]
	for _, it := range tc.drainHalf(class) {
		_ = b.freeRegion(h.arena, it.ext, int(it.reg))
	}
}

// UsableSize implements alloc.Allocator.
func (h *Heap) UsableSize(addr uint64) uint64 {
	a, ok := h.Lookup(addr)
	if !ok || a.Base != addr {
		return 0
	}
	return a.Size
}

// Lookup returns the live allocation containing addr. It underpins
// MineSweeper's free-interception layer: the quarantine validates and sizes
// incoming frees through it.
func (h *Heap) Lookup(addr uint64) (alloc.Allocation, bool) {
	a, _, ok := h.Resolve(addr)
	return a, ok
}

// Resolve implements alloc.Substrate: Lookup plus the owning extent as an
// opaque ref, so the caller's eventual FreeResolved skips the second
// page-map lookup the seed performed on every intercepted free().
func (h *Heap) Resolve(addr uint64) (alloc.Allocation, alloc.Ref, bool) {
	e := h.arena.pm.lookup(addr)
	if e == nil {
		return alloc.Allocation{}, nil, false
	}
	if e.isSlab() {
		idx := e.regionIndex(addr)
		if e.regionFree(idx) {
			return alloc.Allocation{}, nil, false
		}
		return alloc.Allocation{Base: e.regionBase(idx), Size: e.regSize.Load()}, e, true
	}
	if !e.isLarge() {
		return alloc.Allocation{}, nil, false
	}
	return alloc.Allocation{Base: e.base, Size: e.size, Large: true}, e, true
}

// DecommitExtent releases the physical pages of a live large allocation via
// the extent hooks, leaving the allocation itself live. MineSweeper uses it
// to unmap large quarantined allocations (§4.2); the extent is recommitted by
// the hooks when the arena eventually reuses it.
func (h *Heap) DecommitExtent(base uint64) error {
	e := h.arena.pm.lookup(base)
	if e == nil || !e.isLarge() || e.base != base {
		return fmt.Errorf("%w: %#x is not a live large allocation", alloc.ErrInvalidFree, base)
	}
	h.arena.mu.Lock()
	defer h.arena.mu.Unlock()
	if !e.committed {
		return nil
	}
	if err := h.cfg.Hooks.Decommit(h.space, e.base, e.size); err != nil {
		return err
	}
	e.committed = false
	return nil
}

// Tick implements alloc.Allocator (decay purging).
func (h *Heap) Tick(now uint64) { h.arena.Tick(now) }

// PurgeAll decommits all dirty extents now. MineSweeper calls this from the
// sweeper thread after each sweep (§4.5).
func (h *Heap) PurgeAll() { h.arena.PurgeAll() }

// AllocatedBytes returns live usable bytes (the quarantine threshold's
// denominator component).
func (h *Heap) AllocatedBytes() uint64 { return uint64(h.allocated.Load()) }

// Stats implements alloc.Allocator.
func (h *Heap) Stats() alloc.Stats {
	dirtyBytes, ndirty := h.arena.dirtyStats()
	return alloc.Stats{
		Allocated:  uint64(h.allocated.Load()),
		Active:     uint64(h.slabBytes.Load() + h.largeLive.Load()),
		DirtyBytes: dirtyBytes,
		MetaBytes:  h.arena.pm.footprint() + uint64(ndirty)*128,
		Mallocs:    h.mallocs.Load(),
		Frees:      h.frees.Load(),
		Purges:     h.arena.purges.Load(),
	}
}

// Shutdown implements alloc.Allocator. The baseline has no background
// machinery.
func (h *Heap) Shutdown() {}
