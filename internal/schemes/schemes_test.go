package schemes

import (
	"testing"

	"minesweeper/internal/mem"
	"minesweeper/internal/sim"
)

func TestAllKindsBuild(t *testing.T) {
	kinds := []Kind{Baseline, MineSweeper, MineSweeperMostly, MarkUs, FFMalloc, Scudo, Oscar, DangSan, PSweeper, CRCount, Dlmalloc, MineSweeperDlmalloc}
	for _, k := range kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			f := New(k)
			if f.Name != k.String() {
				t.Errorf("factory name %q != kind name %q", f.Name, k.String())
			}
			space := mem.NewAddressSpace()
			world := sim.NewWorld()
			h, err := f.Build(space, world)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			defer h.Shutdown()
			tid := h.RegisterThread()
			a, err := h.Malloc(tid, 128)
			if err != nil {
				t.Fatalf("Malloc: %v", err)
			}
			if err := h.Free(tid, a); err != nil {
				t.Fatalf("Free: %v", err)
			}
			if h.Stats().Mallocs != 1 {
				t.Errorf("Mallocs = %d, want 1", h.Stats().Mallocs)
			}
		})
	}
}

func TestBuildWithNilWorld(t *testing.T) {
	for _, k := range []Kind{MineSweeper, MineSweeperMostly, MarkUs} {
		h, err := New(k).Build(mem.NewAddressSpace(), nil)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		h.Shutdown()
	}
}

func TestKindStrings(t *testing.T) {
	if Kind(99).String() == "" {
		t.Error("unknown kind has empty string")
	}
	seen := map[string]bool{}
	for _, k := range []Kind{Baseline, MineSweeper, MineSweeperMostly, MarkUs, FFMalloc, Scudo, Oscar, DangSan, PSweeper, CRCount, Dlmalloc, MineSweeperDlmalloc} {
		s := k.String()
		if seen[s] {
			t.Errorf("duplicate scheme name %q", s)
		}
		seen[s] = true
	}
}
