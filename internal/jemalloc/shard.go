package jemalloc

// ArenaShard returns the index of the arena shard that owns the extent. The
// field is immutable after creation (extents never migrate between shards),
// so the accessor is safe from any thread without synchronisation. The core
// layer stamps it into quarantine entries so each arena shard's frees can be
// locked in — and hence swept — on the shard's own cadence.
func (e *Extent) ArenaShard() int32 { return e.shard }
