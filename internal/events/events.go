// Package events is MineSweeper's flight recorder: an always-on, lock-free
// stream of fixed-width binary events that answers the question the
// telemetry layer (internal/telemetry) cannot — "what happened in the 200 ms
// around that one 1 ms pause". Telemetry aggregates (histograms, per-sweep
// records); events keep the raw timeline, cheaply enough to leave on, the
// way GWP-ASan keeps cheap always-on recording plus full-fidelity capture of
// the rare event.
//
// The pieces:
//
//   - Ring: one writer thread's private ring of fixed-width events. The
//     writer publishes each event with a single atomic sequence store
//     (seqlock style); readers never block the writer and detect torn slots
//     by re-reading the sequence.
//   - Recorder: the per-process registry of rings plus the wall/monotonic
//     time base every event timestamp is relative to. Attaching a recorder
//     costs hot paths one atomic pointer load and branch; detached, the
//     same — exactly the telemetry registry's cost discipline.
//   - Flight triggers: Trip(cause) snapshots the last Window of every ring
//     into a self-describing dump (dump.go) through an attached sink,
//     rate-limited so an anomaly storm produces one dump per window, not
//     thousands.
//   - Exporters: Chrome trace_event JSON (chrome.go, loads directly in
//     Perfetto / chrome://tracing) and an aligned-text timeline
//     (timeline.go).
//   - Live streaming: an HTTP handler (server.go) serving state snapshots
//     and incremental event batches for msstat -watch.
//
// Event timestamps are nanoseconds since the recorder's epoch (monotonic).
// The on-disk encoding is documented in DESIGN.md §16; it is the format the
// record/replay trace pipeline (ROADMAP item 5) will consume.
package events

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies one event type. Values are stable on disk (DESIGN.md §16);
// add new kinds at the end, never renumber.
type Kind uint8

// Event kinds. Span kinds come in Begin/End pairs nested per ring; the rest
// are instants.
const (
	// KindInvalid marks an unwritten slot; never emitted.
	KindInvalid Kind = iota

	// Sweep-phase spans, emitted on the sweeper's ring in the order the
	// pipeline runs them (§4.3, DESIGN.md §14). SweepBegin/SweepEnd bracket
	// the whole sweep; the phase spans nest inside it.
	KindSweepBegin    // arg0=trigger reason, arg1=entries locked in
	KindSweepEnd      // arg0=released, arg1=retained
	KindMarkBegin     // concurrent (or STW-ablation) full-heap mark
	KindMarkEnd       // arg0=pages scanned, arg1=bytes scanned
	KindPrecleanBegin // one concurrent pre-clean round; arg0=round
	KindPrecleanEnd   // arg0=pages consumed, arg1=round
	KindStwBegin      // stop-the-world window opens; arg0=dirty pages frozen
	KindStwAbort      // pause abort: window over budget; arg0=dirty, arg1=budget
	KindStwEnd        // world restarted; arg0=dirty pages scanned
	KindRecycleBegin  // filter + FreeBatch release phase
	KindRecycleEnd    // arg0=released, arg1=retained
	KindPurgeBegin    // post-sweep allocator purge
	KindPurgeEnd

	// Mutator-side instants and spans, emitted on the owning thread's ring.
	KindPauseBegin // §5.7 allocation pause; arg0=trigger reason
	KindPauseEnd   // arg0=stall ns
	KindDrain      // quarantine ring drain; arg0=entries, arg1=bytes
	KindZeroScrub  // deferred zero-on-free batch; arg0=runs, arg1=bytes
	KindAlloc      // sampled malloc; arg0=size, arg1=latency ns
	KindFree       // sampled free; arg0=size, arg1=latency ns

	// Control-plane instants (sweeper ring).
	KindGovDecision // arg0=new pressure level, arg1=previous level
	KindTrip        // flight-recorder trigger fired; arg0=cause code

	// Fleet-level instants, emitted on the host arbiter's ring
	// (internal/fleet). Tenant ids are the arbiter's stable per-tenant
	// indices; the same ids label the fleet report's rows.
	KindTenantThrottle  // noisy neighbour throttled; arg0=tenant id, arg1=new rail bytes
	KindTenantRebalance // host rebalance tick changed rails; arg0=tenants re-railed, arg1=host RSS
	KindStarveAvert     // floor clamp engaged; arg0=tenant id, arg1=floor bytes
	KindHostLevel       // host pressure level transition; arg0=new level, arg1=previous level

	kindCount
)

// String returns the kind's stable name (also the span/instant name in the
// Chrome trace export).
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var kindNames = [...]string{
	KindInvalid:       "invalid",
	KindSweepBegin:    "sweep",
	KindSweepEnd:      "sweep.end",
	KindMarkBegin:     "mark",
	KindMarkEnd:       "mark.end",
	KindPrecleanBegin: "preclean",
	KindPrecleanEnd:   "preclean.end",
	KindStwBegin:      "stw",
	KindStwAbort:      "stw.abort",
	KindStwEnd:        "stw.end",
	KindRecycleBegin:  "recycle",
	KindRecycleEnd:    "recycle.end",
	KindPurgeBegin:    "purge",
	KindPurgeEnd:      "purge.end",
	KindPauseBegin:    "pause",
	KindPauseEnd:      "pause.end",
	KindDrain:         "drain",
	KindZeroScrub:     "zero-scrub",
	KindAlloc:         "alloc",
	KindFree:          "free",
	KindGovDecision:     "governor",
	KindTrip:            "trip",
	KindTenantThrottle:  "tenant-throttle",
	KindTenantRebalance: "rebalance",
	KindStarveAvert:     "starve-avert",
	KindHostLevel:       "host-level",
}

// spanOpen maps a Begin kind to its End kind (0 for instants).
func spanOpen(k Kind) Kind {
	switch k {
	case KindSweepBegin:
		return KindSweepEnd
	case KindMarkBegin:
		return KindMarkEnd
	case KindPrecleanBegin:
		return KindPrecleanEnd
	case KindStwBegin:
		return KindStwEnd
	case KindRecycleBegin:
		return KindRecycleEnd
	case KindPurgeBegin:
		return KindPurgeEnd
	case KindPauseBegin:
		return KindPauseEnd
	}
	return 0
}

// isEnd reports whether k closes a span.
func isEnd(k Kind) bool {
	switch k {
	case KindSweepEnd, KindMarkEnd, KindPrecleanEnd, KindStwEnd,
		KindRecycleEnd, KindPurgeEnd, KindPauseEnd:
		return true
	}
	return false
}

// Event is one decoded event. Nanos is relative to the recorder epoch.
type Event struct {
	Seq   uint64 `json:"seq"`
	Nanos uint64 `json:"ns"`
	Kind  Kind   `json:"kind"`
	Arg0  uint64 `json:"arg0"`
	Arg1  uint64 `json:"arg1"`
}

// slot is one ring cell. Every field is an atomic word so concurrent
// snapshot reads race with the writer only through atomics (the -race
// contract); seq doubles as the seqlock: the writer zeroes it, stores the
// payload, then publishes the new sequence with the final store. A reader
// that observes the same nonzero seq before and after copying the payload
// holds an untorn event.
type slot struct {
	seq   atomic.Uint64
	nanos atomic.Uint64
	kind  atomic.Uint64
	arg0  atomic.Uint64
	arg1  atomic.Uint64
}

// DefaultRingCap is the default per-ring event capacity. At the observed
// steady-state event rates (every event source is already amortised:
// sampled ops, drains, sweep phases) 4096 events cover minutes of run, far
// past the flight window, for 160 KiB per thread.
const DefaultRingCap = 4096

// Ring is one writer's event ring. Emission is designed for a single owner
// but tolerates occasional foreign writers (the sweeper emits a drain event
// on a mutator's ring inside its quiesce): slots are claimed with one
// fetch-add, so concurrent emitters write disjoint slots. Snapshot may run
// concurrently from any goroutine.
type Ring struct {
	rec   *Recorder
	name  string
	slots []slot
	mask  uint64
	next  atomic.Uint64
}

// Name returns the ring's registered name.
func (r *Ring) Name() string { return r.name }

// Emit appends one event with the current recorder timestamp. Single
// writer; no allocation; the final seq store is the publish point.
func (r *Ring) Emit(k Kind, arg0, arg1 uint64) {
	r.EmitAt(r.rec.Now(), k, arg0, arg1)
}

// EmitAt appends one event with an explicit timestamp (tests; callers that
// already read the clock).
func (r *Ring) EmitAt(nanos uint64, k Kind, arg0, arg1 uint64) {
	seq := r.next.Add(1)
	s := &r.slots[(seq-1)&r.mask]
	s.seq.Store(0) // invalidate: readers discard the slot mid-rewrite
	s.nanos.Store(nanos)
	s.kind.Store(uint64(k))
	s.arg0.Store(arg0)
	s.arg1.Store(arg1)
	s.seq.Store(seq) // publish
}

// Snapshot appends to out every published event with Nanos >= sinceNanos,
// oldest first, and returns the extended slice. It never blocks the writer;
// events overwritten or rewritten mid-copy are skipped (the seqlock check),
// so a snapshot taken during heavy emission is a consistent subsequence.
func (r *Ring) Snapshot(out []Event, sinceNanos uint64) []Event {
	// The writer's cursor is not shared; scan every slot and order by seq.
	// Slot i can only hold seqs congruent to i+1 (mod cap), so collecting
	// valid slots and sorting by seq reconstructs emission order.
	start := len(out)
	for i := range r.slots {
		s := &r.slots[i]
		s1 := s.seq.Load()
		if s1 == 0 {
			continue
		}
		e := Event{
			Seq:   s1,
			Nanos: s.nanos.Load(),
			Kind:  Kind(s.kind.Load()),
			Arg0:  s.arg0.Load(),
			Arg1:  s.arg1.Load(),
		}
		if s.seq.Load() != s1 {
			continue // torn: the writer lapped this slot mid-copy
		}
		if e.Nanos < sinceNanos {
			continue
		}
		out = append(out, e)
	}
	sortEvents(out[start:])
	return out
}

// sortEvents orders by Seq (insertion sort: snapshots are near-sorted
// because slots are scanned in index order and seqs increase by cap per
// lap).
func sortEvents(ev []Event) {
	for i := 1; i < len(ev); i++ {
		for j := i; j > 0 && ev[j].Seq < ev[j-1].Seq; j-- {
			ev[j], ev[j-1] = ev[j-1], ev[j]
		}
	}
}

// DefaultWindow is the default flight-recorder capture window: how far back
// a triggered dump reaches, and the minimum spacing between dumps.
const DefaultWindow = 5 * time.Second

// TripCause codes carried by KindTrip events and dump headers.
type TripCause uint8

// Flight-recorder trigger causes.
const (
	// TripManual is an explicit Recorder.Trip call (examples, shutdown
	// capture).
	TripManual TripCause = iota
	// TripStwOverBudget fires when a stop-the-world re-scan had to proceed
	// with more dirty pages than RescanBudgetPages after exhausting its
	// pause-abort retries — the over-budget pause the pipeline exists to
	// prevent.
	TripStwOverBudget
	// TripGovernorCritical fires when the control plane's pressure level
	// enters Critical.
	TripGovernorCritical
	// TripBudgetRSS fires when resident memory exceeds the governed budget
	// at a sweep boundary.
	TripBudgetRSS
	// TripHostBudget fires when a fleet host's aggregate resident memory
	// exceeds the host budget at an arbiter tick (internal/fleet).
	TripHostBudget
)

// String returns the cause's name.
func (c TripCause) String() string {
	switch c {
	case TripManual:
		return "manual"
	case TripStwOverBudget:
		return "stw-over-budget"
	case TripGovernorCritical:
		return "governor-critical"
	case TripBudgetRSS:
		return "rss-over-budget"
	case TripHostBudget:
		return "host-over-budget"
	default:
		return fmt.Sprintf("TripCause(%d)", int(c))
	}
}

// DumpSink receives one flight-recorder capture per accepted Trip.
type DumpSink func(d *Dump)

// Recorder is one process's event recorder: the ring registry, the time
// base, and the flight-trigger state.
type Recorder struct {
	epoch   time.Time
	ringCap int
	window  time.Duration

	mu    sync.Mutex
	rings []*Ring

	sink     atomic.Pointer[DumpSink]
	lastTrip atomic.Int64 // recorder-nanos of the last accepted Trip
	trips    atomic.Uint64
}

// NewRecorder returns a recorder with per-ring capacity ringCap
// (DefaultRingCap if <= 0) and flight window (DefaultWindow if <= 0).
func NewRecorder(ringCap int, window time.Duration) *Recorder {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	n := 1
	for n < ringCap {
		n <<= 1
	}
	if window <= 0 {
		window = DefaultWindow
	}
	return &Recorder{epoch: time.Now(), ringCap: n, window: window}
}

// Now returns nanoseconds since the recorder epoch (monotonic).
func (r *Recorder) Now() uint64 { return uint64(time.Since(r.epoch)) }

// Epoch returns the recorder's wall-clock epoch.
func (r *Recorder) Epoch() time.Time { return r.epoch }

// Window returns the flight-capture window.
func (r *Recorder) Window() time.Duration { return r.window }

// Ring registers and returns a new named ring. Names label rings in dumps
// and exports ("sweeper", "thread-3"); duplicates are allowed but unhelpful.
func (r *Recorder) Ring(name string) *Ring {
	rg := &Ring{
		rec:   r,
		name:  name,
		slots: make([]slot, r.ringCap),
		mask:  uint64(r.ringCap - 1),
	}
	r.mu.Lock()
	r.rings = append(r.rings, rg)
	r.mu.Unlock()
	return rg
}

// Rings returns the registered rings (snapshot of the registry).
func (r *Recorder) Rings() []*Ring {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Ring(nil), r.rings...)
}

// SetSink attaches the flight-dump sink (nil detaches). The sink runs on
// the goroutine that called Trip; file-writing sinks should be quick or
// hand off.
func (r *Recorder) SetSink(sink DumpSink) {
	if sink == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(&sink)
}

// Trips returns how many Trip calls were accepted (dumped).
func (r *Recorder) Trips() uint64 { return r.trips.Load() }

// Trip fires the flight recorder: if a sink is attached and the last
// accepted trip is at least one window in the past, the last window of
// every ring is captured into a Dump and handed to the sink. Returns
// whether a dump was taken. Cheap when rejected (one or two atomic loads),
// so callers may Trip on every occurrence of an anomaly.
func (r *Recorder) Trip(cause TripCause) bool {
	sp := r.sink.Load()
	if sp == nil {
		return false
	}
	now := int64(r.Now())
	last := r.lastTrip.Load()
	if last != 0 && now-last < int64(r.window) {
		return false
	}
	if !r.lastTrip.CompareAndSwap(last, now) {
		return false // lost the race to a concurrent Trip
	}
	d := r.Capture(cause)
	r.trips.Add(1)
	(*sp)(d)
	return true
}

// Capture snapshots the last window of every ring into a Dump, stamping the
// trigger cause. It does not rate-limit; Trip is the gated entry point.
func (r *Recorder) Capture(cause TripCause) *Dump {
	now := r.Now()
	since := uint64(0)
	if w := uint64(r.window); now > w {
		since = now - w
	}
	d := &Dump{
		Epoch:      r.epoch,
		Cause:      cause,
		TakenNanos: now,
		SinceNanos: since,
	}
	for _, rg := range r.Rings() {
		d.Threads = append(d.Threads, ThreadEvents{
			Name:   rg.name,
			Events: rg.Snapshot(nil, since),
		})
	}
	return d
}

// ThreadEvents is one ring's slice of a dump.
type ThreadEvents struct {
	Name   string  `json:"name"`
	Events []Event `json:"events"`
}

// Dump is one flight-recorder capture: every ring's events from the last
// window, plus the capture metadata. WriteTo/ReadDump (dump.go) give it the
// self-describing binary form.
type Dump struct {
	// Epoch is the recorder's wall-clock zero; event Nanos are relative
	// to it.
	Epoch time.Time `json:"epoch"`
	// Cause is why the dump was taken.
	Cause TripCause `json:"cause"`
	// TakenNanos / SinceNanos bound the captured window in recorder time.
	TakenNanos uint64 `json:"taken_ns"`
	SinceNanos uint64 `json:"since_ns"`
	// Threads holds each ring's events, oldest first per ring.
	Threads []ThreadEvents `json:"threads"`
}

// Len returns the total event count across rings.
func (d *Dump) Len() int {
	n := 0
	for _, t := range d.Threads {
		n += len(t.Events)
	}
	return n
}
