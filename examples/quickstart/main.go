// Quickstart: a protected heap in a dozen lines.
//
// Run with:
//
//	go run ./examples/quickstart
//
// It allocates, stores, frees, demonstrates that freed memory is zeroed and
// quarantined rather than reused, forces a sweep, and prints statistics.
package main

import (
	"fmt"
	"log"

	minesweeper "minesweeper"
)

func main() {
	proc, err := minesweeper.NewProcess(minesweeper.Config{
		Scheme:         minesweeper.SchemeMineSweeper,
		Synchronous:    true, // deterministic for the demo
		BufferCap:      1,
		SweepThreshold: 1, // never self-triggers: sweep only when we ask, for a readable demo
	})
	if err != nil {
		log.Fatal(err)
	}
	defer proc.Close()

	th, err := proc.NewThread()
	if err != nil {
		log.Fatal(err)
	}
	defer th.Close()

	// Allocate and use an object.
	p, err := th.Malloc(64)
	if err != nil {
		log.Fatal(err)
	}
	must(th.Store(p, 0xC0FFEE))
	v, _ := th.Load(p)
	fmt.Printf("allocated %#x, stored and loaded %#x\n", p, v)

	// Free it: the allocation is quarantined and zeroed, not recycled.
	must(th.Free(p))
	v, _ = th.Load(p) // benign use-after-free
	fmt.Printf("after free, a (buggy) read returns %#x — zeroed, not stale\n", v)

	// The address is not reused while quarantined.
	q, _ := th.Malloc(64)
	fmt.Printf("next allocation gets %#x (reuse deferred: %v)\n", q, q != p)
	must(th.Free(q))

	// A sweep proves no dangling pointers remain and releases the memory.
	proc.Sweep()
	st := proc.Stats()
	fmt.Printf("after sweep: quarantined=%d released=%d sweeps=%d\n",
		st.Quarantined, st.ReleasedFrees, st.Sweeps)

	// Double frees are absorbed idempotently.
	r, _ := th.Malloc(32)
	must(th.Free(r))
	if err := th.Free(r); err == nil {
		fmt.Println("double free absorbed (idempotent)")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
