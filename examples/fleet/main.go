// Fleet: hundreds of tenants sharing one host memory budget.
//
// Run with:
//
//	go run ./examples/fleet
//
// It runs the same 48-tenant mix twice — once with an effectively unlimited
// host budget to see the fleet's natural footprint, once squeezed under 70%
// of that peak — and prints what the federated governor did: the host
// pressure level, how the arbiter split the budget into per-class rails, and
// which tenants were throttled as noisy neighbours. Every tenant keeps its
// guaranteed floor in both runs; only the discretionary share shrinks.
package main

import (
	"fmt"
	"log"

	"minesweeper/internal/fleet"
)

func classes(floor uint64) []fleet.Class {
	return []fleet.Class{
		{Name: "gold", Priority: 0, Weight: 4, Tenants: 12, Floor: floor, Workload: "cache", Lambda: 3},
		{Name: "silver", Priority: 1, Weight: 2, Tenants: 18, Floor: floor, Workload: "churn", Lambda: 4},
		{Name: "bronze", Priority: 2, Weight: 1, Tenants: 18, Floor: floor, Workload: "burst", Lambda: 4, Burst: 4},
	}
}

func run(budget, floor uint64) *fleet.Report {
	h, err := fleet.NewHost(fleet.Config{
		HostBudget:   budget,
		Classes:      classes(floor),
		Ticks:        96,
		ArbiterEvery: 4,
		Seed:         20260809,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := h.Run()
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

func main() {
	fmt.Println("== unbounded: natural fleet footprint ==")
	cal := run(1<<40, 0)
	fmt.Printf("48 tenants peaked at %.1f MiB (host level %s)\n\n",
		float64(cal.PeakRSS)/(1<<20), cal.Level)

	budget := cal.PeakRSS * 7 / 10
	floor := budget / uint64(2*cal.TenantCount)
	fmt.Printf("== governed: same fleet under %.1f MiB (70%%) ==\n", float64(budget)/(1<<20))
	gov := run(budget, floor)
	fmt.Printf("peak %.1f MiB (%.0f%% of budget), host level %s, %d rebalances, %d breaches\n",
		float64(gov.PeakRSS)/(1<<20), 100*float64(gov.PeakRSS)/float64(budget),
		gov.Level, gov.Rebalances, gov.Breaches)

	throttled, starved, floors := 0, 0, true
	for _, tr := range gov.Tenants {
		if tr.Throttles > 0 {
			throttled++
		}
		if tr.StarveAverts > 0 {
			starved++
		}
		if !tr.FloorHonoured() {
			floors = false
		}
	}
	fmt.Printf("tenants throttled as noisy: %d, starvation averted by floors: %d, all floors honoured: %v\n",
		throttled, starved, floors)
	fmt.Println("\nThe squeeze comes out of the discretionary share: the arbiter's grants")
	fmt.Println("always sum to at most the host budget, and never dip below a floor.")
}
