package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func accessSpace(t testing.TB) (*AddressSpace, uint64) {
	t.Helper()
	as := NewAddressSpace()
	r, err := as.Map(KindHeap, 4*PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	return as, r.Base()
}

func TestLoadStore8(t *testing.T) {
	as, base := accessSpace(t)
	for i := uint64(0); i < 16; i++ {
		if err := as.Store8(base+i, byte(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 16; i++ {
		b, err := as.Load8(base + i)
		if err != nil {
			t.Fatal(err)
		}
		if b != byte(i)+1 {
			t.Errorf("byte %d = %d, want %d", i, b, i+1)
		}
	}
	// Byte stores must not clobber neighbours in the same word.
	if err := as.Store64(base+64, 0x1111111111111111); err != nil {
		t.Fatal(err)
	}
	if err := as.Store8(base+64+3, 0xFF); err != nil {
		t.Fatal(err)
	}
	v, _ := as.Load64(base + 64)
	if v != 0x11111111FF111111 {
		t.Errorf("word after byte store = %#x", v)
	}
}

func TestStoreLoadBytes(t *testing.T) {
	as, base := accessSpace(t)
	msg := []byte("GET /index.html HTTP/1.1\r\n")
	if err := as.StoreBytes(base+5, msg); err != nil {
		t.Fatal(err)
	}
	got, err := as.LoadBytes(base+5, uint64(len(msg)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("LoadBytes = %q, want %q", got, msg)
	}
}

func TestMemcpyAligned(t *testing.T) {
	as, base := accessSpace(t)
	src, dst := base, base+PageSize
	for i := uint64(0); i < 32; i++ {
		_ = as.Store8(src+i, byte(i)*3)
	}
	if err := as.Memcpy(dst, src, 32); err != nil {
		t.Fatal(err)
	}
	got, _ := as.LoadBytes(dst, 32)
	want, _ := as.LoadBytes(src, 32)
	if !bytes.Equal(got, want) {
		t.Error("aligned Memcpy mismatch")
	}
}

func TestMemcpyUnaligned(t *testing.T) {
	as, base := accessSpace(t)
	src, dst := base+3, base+PageSize+5
	payload := []byte("unaligned copy payload!")
	if err := as.StoreBytes(src, payload); err != nil {
		t.Fatal(err)
	}
	if err := as.Memcpy(dst, src, uint64(len(payload))); err != nil {
		t.Fatal(err)
	}
	got, _ := as.LoadBytes(dst, uint64(len(payload)))
	if !bytes.Equal(got, payload) {
		t.Errorf("unaligned Memcpy = %q", got)
	}
}

func TestByteAccessFaults(t *testing.T) {
	as, base := accessSpace(t)
	if err := as.Decommit(base, PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Load8(base + 3); err == nil {
		t.Error("Load8 of decommitted page succeeded")
	}
	if err := as.Store8(base+3, 1); err == nil {
		t.Error("Store8 of decommitted page succeeded")
	}
}

// Property: StoreBytes then LoadBytes round-trips arbitrary payloads at
// arbitrary in-bounds offsets.
func TestQuickBytesRoundTrip(t *testing.T) {
	as, base := accessSpace(t)
	f := func(off uint16, payload []byte) bool {
		if len(payload) > 1024 {
			payload = payload[:1024]
		}
		addr := base + uint64(off)%PageSize
		if err := as.StoreBytes(addr, payload); err != nil {
			return false
		}
		got, err := as.LoadBytes(addr, uint64(len(payload)))
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
