package jemalloc

// tcache is a per-thread cache of free regions, one stack per small class,
// mirroring jemalloc's tcache: most mallocs and frees touch only thread-local
// state, visiting the shared bin in batches.
//
// Each cached item carries the region's extent alongside its address. That
// pointer costs one word per slot and buys two things on the hot path:
// flushes (and thread teardown) free regions without re-resolving each
// address through the page map, and the double-free membership check becomes
// one atomic bit test on the extent's cachemap instead of a linear scan of
// the cache stack.
type tcache struct {
	bins []tbin

	// Refill and drain scratch, reused across smallSlow/flush calls so
	// neither cache fills nor overflow flushes allocate. Owned by the
	// cache's thread, like the bins.
	fillAddrs []uint64
	fillExts  []*Extent
	fillRegs  []int32
	drain     []tcitem
}

// tcitem is one cached free region. The region index rides along so cache
// hits and flushes never redo the division by region size.
type tcitem struct {
	addr uint64
	ext  *Extent
	reg  int32
}

type tbin struct {
	items []tcitem
	max   int
}

// tcacheCap returns the cache capacity for a class: more slots for small
// objects, fewer for big ones (as in jemalloc).
func tcacheCap(class int) int {
	switch size := ClassSize(class); {
	case size <= 256:
		return 32
	case size <= 2048:
		return 16
	default:
		return 8
	}
}

func newTcache() *tcache {
	tc := &tcache{bins: make([]tbin, NumClasses())}
	for c := range tc.bins {
		m := tcacheCap(c)
		tc.bins[c] = tbin{items: make([]tcitem, 0, m), max: m}
	}
	return tc
}

// pop returns a cached region of the class, or 0 if the cache is empty. The
// region's tcache-residency bit is cleared: it is now allocated to the
// program.
func (tc *tcache) pop(class int) uint64 {
	tb := &tc.bins[class]
	if n := len(tb.items); n > 0 {
		it := tb.items[n-1]
		tb.items = tb.items[:n-1]
		it.ext.uncacheRegion(int(it.reg))
		return it.addr
	}
	return 0
}

// push caches a freed region of e, reporting whether the cache is now at
// capacity (the caller should flush). The region's residency bit is set
// before the item becomes poppable, so a concurrent double free of the same
// region cannot slip past the membership check.
func (tc *tcache) push(class int, addr uint64, e *Extent, reg int) bool {
	e.cacheRegion(reg)
	tb := &tc.bins[class]
	tb.items = append(tb.items, tcitem{addr: addr, ext: e, reg: int32(reg)})
	return len(tb.items) >= tb.max
}

// drainHalf removes the oldest half of the class's cached items and returns
// them for flushing to the shared bin. Residency bits stay set until
// bin.freeRegion returns each region to its slab, so a racing double free is
// still detected while the flush is in flight.
// The returned slice is the cache's drain scratch: valid until the next
// drain call on this cache.
func (tc *tcache) drainHalf(class int) []tcitem {
	tb := &tc.bins[class]
	n := len(tb.items) / 2
	if n == 0 {
		n = len(tb.items)
	}
	tc.drain = append(tc.drain[:0], tb.items[:n]...)
	tb.items = append(tb.items[:0], tb.items[n:]...)
	return tc.drain
}

// drainAll removes and returns every cached item of the class. As with
// drainHalf, residency bits are cleared by bin.freeRegion, not here, and the
// returned slice is only valid until the next drain call.
func (tc *tcache) drainAll(class int) []tcitem {
	tb := &tc.bins[class]
	tc.drain = append(tc.drain[:0], tb.items...)
	tb.items = tb.items[:0]
	return tc.drain
}

// fillTarget returns how many regions a fill should request: half capacity,
// like jemalloc's fill count.
func (tc *tcache) fillTarget(class int) int { return tc.bins[class].max / 2 }
