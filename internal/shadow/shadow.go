// Package shadow implements the sparse shadow bitmaps MineSweeper uses.
//
// The paper's shadow map is "conceptually, an array of bits, containing one
// bit per granule of virtual memory", with one bit per 128 bits — the
// smallest allocation granule. During the marking phase every word of program
// memory is interpreted as a pointer and the bit for its target granule is
// set; during the filtering phase each quarantined allocation's bit range is
// tested, and any set bit keeps the allocation in quarantine.
//
// A flat bitmap over the full reservable heap area would be gigabytes, so the
// map is chunked and chunks are allocated lazily on first mark — the same
// effect as the paper's demand-paged flat shadow space (untouched shadow
// pages cost nothing). All operations are atomic so parallel sweeper threads
// mark concurrently without locks.
package shadow

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// bitsPerChunkShift fixes each chunk at 2^18 bits (32 KiB of backing), so a
// chunk covers 2^(18+granuleShift) bytes of address space.
const bitsPerChunkShift = 18

const (
	bitsPerChunk  = 1 << bitsPerChunkShift
	wordsPerChunk = bitsPerChunk / 64
)

type chunk [wordsPerChunk]uint64

// Bitmap is a sparse atomic bitmap over the address range [base, limit), with
// one bit per 2^granuleShift bytes.
type Bitmap struct {
	base         uint64
	limit        uint64
	granuleShift uint
	chunks       []atomic.Pointer[chunk]
	allocated    atomic.Int64 // number of live chunks, for overhead accounting
}

// New returns a bitmap covering [base, limit) at one bit per 2^granuleShift
// bytes. base and limit must be aligned to the chunk coverage.
func New(base, limit uint64, granuleShift uint) (*Bitmap, error) {
	if limit <= base {
		return nil, fmt.Errorf("shadow: New: empty range [%#x, %#x)", base, limit)
	}
	cover := uint64(1) << (bitsPerChunkShift + granuleShift)
	if base%cover != 0 || limit%cover != 0 {
		return nil, fmt.Errorf("shadow: New: range [%#x, %#x) not aligned to chunk coverage %#x", base, limit, cover)
	}
	n := (limit - base) / cover
	return &Bitmap{
		base:         base,
		limit:        limit,
		granuleShift: granuleShift,
		chunks:       make([]atomic.Pointer[chunk], n),
	}, nil
}

// Covers reports whether addr lies inside the bitmap's range.
func (b *Bitmap) Covers(addr uint64) bool { return addr >= b.base && addr < b.limit }

// granule returns the global granule index of addr.
func (b *Bitmap) granule(addr uint64) uint64 { return (addr - b.base) >> b.granuleShift }

// getChunk returns the chunk holding granule g, or nil if never marked.
func (b *Bitmap) getChunk(g uint64) *chunk { return b.chunks[g>>bitsPerChunkShift].Load() }

// ensureChunk returns the chunk holding granule g, allocating it if needed.
func (b *Bitmap) ensureChunk(g uint64) *chunk {
	slot := &b.chunks[g>>bitsPerChunkShift]
	if c := slot.Load(); c != nil {
		return c
	}
	c := new(chunk)
	if slot.CompareAndSwap(nil, c) {
		b.allocated.Add(1)
		return c
	}
	return slot.Load()
}

// Mark sets the bit for the granule containing addr. Addresses outside the
// covered range are ignored (they cannot be pointers into the shadowed area).
// Mark is safe for concurrent use.
func (b *Bitmap) Mark(addr uint64) {
	if !b.Covers(addr) {
		return
	}
	g := b.granule(addr)
	c := b.ensureChunk(g)
	i := g & (bitsPerChunk - 1)
	word, bit := i/64, i%64
	mask := uint64(1) << bit
	if atomic.LoadUint64(&c[word])&mask == 0 {
		atomic.OrUint64(&c[word], mask)
	}
}

// Test reports whether the bit for the granule containing addr is set.
func (b *Bitmap) Test(addr uint64) bool {
	if !b.Covers(addr) {
		return false
	}
	g := b.granule(addr)
	c := b.getChunk(g)
	if c == nil {
		return false
	}
	i := g & (bitsPerChunk - 1)
	return atomic.LoadUint64(&c[i/64])&(1<<(i%64)) != 0
}

// AnyInRange reports whether any bit is set for granules overlapping the byte
// range [lo, hi). This is the quarantine filter: MineSweeper checks "the full
// shadow-map range corresponding to the allocation before recycling it".
func (b *Bitmap) AnyInRange(lo, hi uint64) bool {
	if hi <= lo {
		return false
	}
	if lo < b.base {
		lo = b.base
	}
	if hi > b.limit {
		hi = b.limit
	}
	if hi <= lo {
		return false
	}
	g := b.granule(lo)
	gEnd := b.granule(hi-1) + 1
	for g < gEnd {
		c := b.getChunk(g)
		if c == nil {
			// Skip to the next chunk boundary.
			g = (g>>bitsPerChunkShift + 1) << bitsPerChunkShift
			continue
		}
		i := g & (bitsPerChunk - 1)
		// Scan word by word within this chunk.
		chunkEnd := (g>>bitsPerChunkShift + 1) << bitsPerChunkShift
		end := gEnd
		if end > chunkEnd {
			end = chunkEnd
		}
		iEnd := end - (g - i) // index within chunk of the end granule
		for i < iEnd {
			w := atomic.LoadUint64(&c[i/64])
			lowBit := i % 64
			hiBit := uint64(64)
			if iEnd-i < 64-lowBit {
				hiBit = lowBit + (iEnd - i)
			}
			mask := ^uint64(0) << lowBit
			if hiBit < 64 {
				mask &= (1 << hiBit) - 1
			}
			if w&mask != 0 {
				return true
			}
			i += hiBit - lowBit
		}
		g = end
	}
	return false
}

// ClearRange clears all bits for granules overlapping [lo, hi).
func (b *Bitmap) ClearRange(lo, hi uint64) {
	if hi <= lo {
		return
	}
	if lo < b.base {
		lo = b.base
	}
	if hi > b.limit {
		hi = b.limit
	}
	if hi <= lo {
		return
	}
	for g, gEnd := b.granule(lo), b.granule(hi-1)+1; g < gEnd; {
		c := b.getChunk(g)
		chunkEnd := (g>>bitsPerChunkShift + 1) << bitsPerChunkShift
		end := gEnd
		if end > chunkEnd {
			end = chunkEnd
		}
		if c == nil {
			g = end
			continue
		}
		for ; g < end; g++ {
			i := g & (bitsPerChunk - 1)
			mask := ^(uint64(1) << (i % 64))
			atomic.AndUint64(&c[i/64], mask)
		}
	}
}

// ClearAll drops every chunk, resetting the bitmap to empty in O(chunks).
// MineSweeper clears the whole shadow space between sweeps.
func (b *Bitmap) ClearAll() {
	for i := range b.chunks {
		if b.chunks[i].Load() != nil {
			b.chunks[i].Store(nil)
			b.allocated.Add(-1)
		}
	}
}

// PopCount returns the number of set bits (diagnostic; O(allocated chunks)).
func (b *Bitmap) PopCount() uint64 {
	var n uint64
	for i := range b.chunks {
		c := b.chunks[i].Load()
		if c == nil {
			continue
		}
		for w := range c {
			n += uint64(bits.OnesCount64(atomic.LoadUint64(&c[w])))
		}
	}
	return n
}

// FootprintBytes returns the memory consumed by allocated chunks — the
// shadow map's contribution to memory overhead (the paper reports it at
// "less than 1%").
func (b *Bitmap) FootprintBytes() uint64 {
	return uint64(b.allocated.Load()) * wordsPerChunk * 8
}

// GranuleSize returns the bytes covered by one bit.
func (b *Bitmap) GranuleSize() uint64 { return 1 << b.granuleShift }
