// Package psweeper implements the pSweeper baseline (Liu, Zhang & Wang, CCS
// 2018): a robust and efficient defense against use-after-free exploits via
// concurrent pointer sweeping. Compiler instrumentation maintains a live
// pointer table — the set of memory locations currently holding heap
// pointers — and a dedicated background thread repeatedly sweeps that table,
// nullifying entries that point into freed objects. Deallocation is delayed
// until one full sweep has completed after the corresponding free() (§6.4).
//
// The evaluated variant mirrors the paper's "pSweeper-1s": the sweeper
// sleeps between rounds (interval scaled to simulator time), and also wakes
// early when deferred frees accumulate, bounding memory.
package psweeper

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"minesweeper/internal/alloc"
	"minesweeper/internal/jemalloc"
	"minesweeper/internal/mem"
)

// Poison is the invalid value dangling locations are overwritten with.
const Poison uint64 = 0xDEAD_5EE9_0000_0000

const shards = 64

// Config tunes the sweeper.
type Config struct {
	// Interval between sweep rounds (the paper's 1 s, scaled; default
	// 25ms at simulator scale).
	Interval time.Duration
	// WakeThreshold wakes the sweeper early when deferred-free bytes
	// exceed this fraction of the heap (default 0.25).
	WakeThreshold float64
	// Synchronous sweeps inline on free-threshold crossings (tests).
	Synchronous bool
}

// DefaultConfig returns the pSweeper-1s analogue.
func DefaultConfig() Config {
	return Config{Interval: 25 * time.Millisecond, WakeThreshold: 0.25}
}

type tableShard struct {
	mu sync.Mutex
	// locs is the live-pointer table slice: location -> pointee word.
	locs map[uint64]struct{}
}

type zombie struct {
	base, size uint64
}

// Heap is the pSweeper-protected heap.
type Heap struct {
	cfg   Config
	je    *jemalloc.Heap
	space *mem.AddressSpace

	shards [shards]tableShard

	zmu     sync.Mutex
	pending []zombie // freed, waiting for the next full sweep

	sweeperTid  alloc.ThreadID
	zombieBytes atomic.Int64
	sweeps      atomic.Uint64
	nullified   atomic.Uint64
	busyNanos   atomic.Int64
	tableSize   atomic.Int64

	stop     chan struct{}
	kick     chan struct{}
	wg       sync.WaitGroup
	stopOnce sync.Once
}

var _ alloc.Allocator = (*Heap)(nil)
var _ alloc.PointerObserver = (*Heap)(nil)

// New builds a pSweeper heap over space.
func New(space *mem.AddressSpace, cfg Config, jcfg jemalloc.Config) *Heap {
	if cfg.Interval <= 0 {
		cfg.Interval = 25 * time.Millisecond
	}
	if cfg.WakeThreshold <= 0 {
		cfg.WakeThreshold = 0.25
	}
	h := &Heap{
		cfg:   cfg,
		space: space,
		je:    jemalloc.New(space, jcfg),
		stop:  make(chan struct{}),
		kick:  make(chan struct{}, 1),
	}
	// The sweeper releases memory from its own substrate thread: thread
	// caches are single-owner.
	h.sweeperTid = h.je.RegisterThread()
	for i := range h.shards {
		h.shards[i].locs = make(map[uint64]struct{})
	}
	if !cfg.Synchronous {
		h.wg.Add(1)
		go h.sweeperLoop()
	}
	return h
}

// String returns the scheme name.
func (h *Heap) String() string { return "psweeper" }

func (h *Heap) shardFor(loc uint64) *tableShard {
	return &h.shards[((loc>>3)*0x9E3779B97F4A7C15)>>58]
}

// RegisterThread implements alloc.Allocator.
func (h *Heap) RegisterThread() alloc.ThreadID { return h.je.RegisterThread() }

// UnregisterThread implements alloc.Allocator.
func (h *Heap) UnregisterThread(tid alloc.ThreadID) { h.je.UnregisterThread(tid) }

// Malloc implements alloc.Allocator.
func (h *Heap) Malloc(tid alloc.ThreadID, size uint64) (uint64, error) {
	return h.je.Malloc(tid, size)
}

// NoteStore implements alloc.PointerObserver: maintain the live pointer
// table. A location enters the table when a heap pointer is stored to it and
// leaves when it is overwritten with a non-pointer.
func (h *Heap) NoteStore(_ alloc.ThreadID, addr, old, new uint64) {
	newPtr := mem.IsHeapAddr(new)
	oldPtr := mem.IsHeapAddr(old)
	if !newPtr && !oldPtr {
		return
	}
	s := h.shardFor(addr)
	s.mu.Lock()
	if newPtr {
		if _, ok := s.locs[addr]; !ok {
			s.locs[addr] = struct{}{}
			h.tableSize.Add(1)
		}
	} else {
		if _, ok := s.locs[addr]; ok {
			delete(s.locs, addr)
			h.tableSize.Add(-1)
		}
	}
	s.mu.Unlock()
}

// Free implements alloc.Allocator: defer deallocation until the next full
// sweep nullifies any dangling pointers to the object.
func (h *Heap) Free(tid alloc.ThreadID, addr uint64) error {
	a, ok := h.je.Lookup(addr)
	if !ok || a.Base != addr {
		return fmt.Errorf("%w: %#x", alloc.ErrInvalidFree, addr)
	}
	h.zmu.Lock()
	// Double free while deferred: idempotent.
	for _, z := range h.pending {
		if z.base == a.Base {
			h.zmu.Unlock()
			return nil
		}
	}
	h.pending = append(h.pending, zombie{base: a.Base, size: a.Size})
	h.zmu.Unlock()
	h.zombieBytes.Add(int64(a.Size))

	if float64(h.zombieBytes.Load()) > h.cfg.WakeThreshold*float64(h.je.AllocatedBytes()+1) {
		if h.cfg.Synchronous {
			h.Sweep()
		} else {
			select {
			case h.kick <- struct{}{}:
			default:
			}
		}
	}
	return nil
}

func (h *Heap) sweeperLoop() {
	defer h.wg.Done()
	t := time.NewTicker(h.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
			h.Sweep()
		case <-h.kick:
			h.Sweep()
		}
	}
}

// Sweep performs one full pass over the live pointer table, nullifying
// pointers into deferred-freed objects, then releases those objects.
func (h *Heap) Sweep() {
	h.zmu.Lock()
	batch := h.pending
	h.pending = nil
	h.zmu.Unlock()
	if len(batch) == 0 {
		return
	}
	start := time.Now()
	sort.Slice(batch, func(i, j int) bool { return batch[i].base < batch[j].base })
	find := func(v uint64) *zombie {
		i := sort.Search(len(batch), func(i int) bool { return batch[i].base+batch[i].size > v })
		if i < len(batch) && v >= batch[i].base {
			return &batch[i]
		}
		return nil
	}

	// Full scan of the live pointer table.
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		locs := make([]uint64, 0, len(s.locs))
		for loc := range s.locs {
			locs = append(locs, loc)
		}
		s.mu.Unlock()
		for _, loc := range locs {
			v, err := h.space.Load64(loc)
			if err != nil {
				continue
			}
			if z := find(v); z != nil {
				if err := h.space.Store64(loc, Poison|(v-z.base)); err == nil {
					h.nullified.Add(1)
				}
				s.mu.Lock()
				if _, ok := s.locs[loc]; ok {
					delete(s.locs, loc)
					h.tableSize.Add(-1)
				}
				s.mu.Unlock()
			}
		}
	}

	// All dangling pointers are gone; release the batch on the sweeper's
	// own substrate thread.
	for _, z := range batch {
		h.zombieBytes.Add(-int64(z.size))
		_ = h.je.Free(h.sweeperTid, z.base)
	}
	h.sweeps.Add(1)
	h.busyNanos.Add(int64(time.Since(start)))
}

// UsableSize implements alloc.Allocator.
func (h *Heap) UsableSize(addr uint64) uint64 { return h.je.UsableSize(addr) }

// Tick implements alloc.Allocator.
func (h *Heap) Tick(now uint64) { h.je.Tick(now) }

// Nullified returns how many dangling pointers were invalidated.
func (h *Heap) Nullified() uint64 { return h.nullified.Load() }

// Stats implements alloc.Allocator.
func (h *Heap) Stats() alloc.Stats {
	st := h.je.Stats()
	z := uint64(h.zombieBytes.Load())
	if st.Allocated >= z {
		st.Allocated -= z
	}
	st.Quarantined = z
	st.MetaBytes += uint64(h.tableSize.Load()) * 24
	st.Sweeps = h.sweeps.Load()
	st.SweeperCycles = uint64(h.busyNanos.Load())
	st.ReleasedFrees = st.Frees
	return st
}

// Shutdown implements alloc.Allocator. It is idempotent.
func (h *Heap) Shutdown() {
	h.stopOnce.Do(func() {
		if !h.cfg.Synchronous {
			close(h.stop)
			h.wg.Wait()
		}
		h.Sweep() // release anything still deferred
	})
}
