package quarantine

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestInsertRelease(t *testing.T) {
	q := New()
	e := &Entry{Base: 0x1000, Size: 64}
	if !q.Insert(e) {
		t.Fatal("Insert returned false")
	}
	if !q.Contains(0x1000) {
		t.Error("Contains = false after insert")
	}
	if q.Bytes() != 64 || q.Entries() != 1 {
		t.Errorf("Bytes/Entries = %d/%d, want 64/1", q.Bytes(), q.Entries())
	}
	q.Release(e)
	if q.Contains(0x1000) {
		t.Error("Contains = true after release")
	}
	if q.Bytes() != 0 || q.Entries() != 0 {
		t.Errorf("Bytes/Entries = %d/%d, want 0/0", q.Bytes(), q.Entries())
	}
}

func TestDoubleFreeDeduplicated(t *testing.T) {
	q := New()
	if !q.Insert(&Entry{Base: 0x2000, Size: 32}) {
		t.Fatal("first insert failed")
	}
	if q.Insert(&Entry{Base: 0x2000, Size: 32}) {
		t.Fatal("duplicate insert succeeded")
	}
	if q.DoubleFrees() != 1 {
		t.Errorf("DoubleFrees = %d, want 1", q.DoubleFrees())
	}
	if q.Bytes() != 32 {
		t.Errorf("Bytes = %d, want 32 (duplicate must not double-count)", q.Bytes())
	}
}

func TestReinsertAfterRelease(t *testing.T) {
	// Once released (truly freed), the same base can be allocated and
	// freed again — the quarantine must accept it.
	q := New()
	e := &Entry{Base: 0x3000, Size: 16}
	q.Insert(e)
	q.Release(e)
	if !q.Insert(&Entry{Base: 0x3000, Size: 16}) {
		t.Error("reinsert after release failed")
	}
}

func TestLockInEpochs(t *testing.T) {
	q := New()
	a := &Entry{Base: 0x1000, Size: 8}
	b := &Entry{Base: 0x2000, Size: 8}
	q.Insert(a)
	q.Insert(b)
	q.Append([]*Entry{a, b})

	locked := q.LockIn()
	if len(locked) != 2 {
		t.Fatalf("LockIn returned %d entries, want 2", len(locked))
	}
	// New frees during the sweep go to the next epoch.
	c := &Entry{Base: 0x3000, Size: 8}
	q.Insert(c)
	q.Append([]*Entry{c})
	if got := q.LockIn(); len(got) != 1 || got[0] != c {
		t.Errorf("second LockIn = %v, want [c]", got)
	}
	if q.Epoch() != 2 {
		t.Errorf("Epoch = %d, want 2", q.Epoch())
	}
}

func TestFailedAccounting(t *testing.T) {
	q := New()
	e := &Entry{Base: 0x1000, Size: 100}
	q.Insert(e)
	q.NoteFailed(e)
	q.NoteFailed(e) // idempotent
	if q.FailedBytes() != 100 {
		t.Errorf("FailedBytes = %d, want 100", q.FailedBytes())
	}
	q.Release(e)
	if q.FailedBytes() != 0 {
		t.Errorf("FailedBytes after release = %d, want 0", q.FailedBytes())
	}
}

func TestUnmappedAccounting(t *testing.T) {
	q := New()
	e := &Entry{Base: 0x1000, Size: 8192}
	q.Insert(e)
	q.NoteUnmapped(e)
	q.NoteUnmapped(e) // idempotent
	if q.Bytes() != 0 {
		t.Errorf("Bytes = %d, want 0 (unmapped excluded)", q.Bytes())
	}
	if q.UnmappedBytes() != 8192 {
		t.Errorf("UnmappedBytes = %d, want 8192", q.UnmappedBytes())
	}
	q.Release(e)
	if q.UnmappedBytes() != 0 {
		t.Errorf("UnmappedBytes after release = %d, want 0", q.UnmappedBytes())
	}
}

func TestThreadBufferDrainPublishes(t *testing.T) {
	q := New()
	tb := NewThreadBuffer(q, 4)
	for i := 0; i < 3; i++ {
		if tb.Push(&Entry{Base: uint64(0x1000 + i*16), Size: 16}) {
			t.Fatalf("ring full after %d of 4 pushes", i+1)
		}
	}
	// Ring-resident entries are invisible everywhere until the drain.
	if q.Contains(0x1000) {
		t.Error("Contains = true for ring-resident entry")
	}
	if q.Bytes() != 0 || q.Entries() != 0 {
		t.Errorf("Bytes/Entries = %d/%d before drain, want 0/0", q.Bytes(), q.Entries())
	}
	if got := q.LockIn(); len(got) != 0 {
		t.Fatalf("pending published early: %d entries", len(got))
	}
	if !tb.Push(&Entry{Base: 0x9000, Size: 16}) {
		t.Fatal("Push at capacity did not report full")
	}
	tb.Drain()
	if !q.Contains(0x1000) || !q.Contains(0x9000) {
		t.Error("Contains = false after drain")
	}
	if q.Bytes() != 64 || q.Entries() != 4 {
		t.Errorf("Bytes/Entries = %d/%d after drain, want 64/4", q.Bytes(), q.Entries())
	}
	if got := q.LockIn(); len(got) != 4 {
		t.Errorf("LockIn after drain = %d entries, want 4", len(got))
	}
}

func TestThreadBufferExplicitDrain(t *testing.T) {
	q := New()
	tb := NewThreadBuffer(q, 0) // default cap
	tb.Push(&Entry{Base: 0x1000, Size: 16})
	tb.Drain()
	tb.Drain() // empty drain is a no-op
	if got := q.LockIn(); len(got) != 1 {
		t.Errorf("LockIn = %d entries, want 1", len(got))
	}
}

func TestThreadBufferDrainDeduplicates(t *testing.T) {
	q := New()
	tb := NewThreadBuffer(q, 8)
	tb.Push(&Entry{Base: 0x1000, Size: 32})
	tb.Push(&Entry{Base: 0x1000, Size: 32}) // double free, both still ring-resident
	tb.Push(&Entry{Base: 0x2000, Size: 16})
	tb.Drain()
	if q.DoubleFrees() != 1 {
		t.Errorf("DoubleFrees = %d, want 1", q.DoubleFrees())
	}
	if q.Bytes() != 48 || q.Entries() != 2 {
		t.Errorf("Bytes/Entries = %d/%d, want 48/2", q.Bytes(), q.Entries())
	}
	// A duplicate against an already-drained entry is also caught.
	tb.Push(&Entry{Base: 0x2000, Size: 16})
	tb.Drain()
	if q.DoubleFrees() != 2 {
		t.Errorf("DoubleFrees = %d after second drain, want 2", q.DoubleFrees())
	}
	if got := q.LockIn(); len(got) != 2 {
		t.Errorf("LockIn = %d entries, want 2 (duplicates must not be pending)", len(got))
	}
}

func TestThreadBufferDrainUnmappedAccounting(t *testing.T) {
	q := New()
	tb := NewThreadBuffer(q, 4)
	e := &Entry{Base: 0x4000, Size: 8192, Unmapped: true} // flagged while ring-resident
	tb.Push(e)
	tb.Push(&Entry{Base: 0x8000, Size: 64})
	tb.Drain()
	if q.Bytes() != 64 {
		t.Errorf("Bytes = %d, want 64 (unmapped excluded)", q.Bytes())
	}
	if q.UnmappedBytes() != 8192 {
		t.Errorf("UnmappedBytes = %d, want 8192", q.UnmappedBytes())
	}
	q.Release(e)
	if q.UnmappedBytes() != 0 {
		t.Errorf("UnmappedBytes after release = %d, want 0", q.UnmappedBytes())
	}
}

func TestThreadBufferWatermark(t *testing.T) {
	q := New()
	tb := NewThreadBuffer(q, 64)
	for i := 0; i < 47; i++ {
		tb.Push(&Entry{Base: uint64(0x1000 + i*16), Size: 16})
	}
	if tb.NeedsDrain() {
		t.Error("NeedsDrain = true below watermark")
	}
	tb.Push(&Entry{Base: 0x9000, Size: 16})
	if !tb.NeedsDrain() {
		t.Error("NeedsDrain = false at watermark (48 of 64)")
	}
	if tb.Occupancy() != 0 {
		t.Errorf("Occupancy = %d before publish, want 0 (stale)", tb.Occupancy())
	}
	tb.PublishOccupancy()
	if tb.Occupancy() != 48 {
		t.Errorf("Occupancy = %d after publish, want 48", tb.Occupancy())
	}
	tb.Drain()
	if tb.Occupancy() != 0 || tb.Len() != 0 {
		t.Errorf("Occupancy/Len = %d/%d after drain, want 0/0", tb.Occupancy(), tb.Len())
	}
}

// TestAppendEpochLockInRace is the regression test for the flush/epoch-advance
// race: Append must stamp entries under the same critical section LockIn
// advances the epoch in, so a drain racing a lock-in can never publish an
// entry stamped with an epoch the sweep has already released. Run under -race
// this also exercises the pendMu discipline itself.
func TestAppendEpochLockInRace(t *testing.T) {
	q := New()
	const pushers = 4
	const perPusher = 3000
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < pushers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tb := NewThreadBuffer(q, 8)
			for i := 0; i < perPusher; i++ {
				if tb.Push(&Entry{Base: uint64(g*perPusher+i+1) * 16, Size: 16}) {
					tb.Drain()
				}
			}
			tb.Drain()
		}(g)
	}
	locked := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			batch := q.LockIn()
			epoch := q.Epoch() // > stamp of everything in batch
			for _, e := range batch {
				if e.Epoch >= epoch {
					t.Errorf("locked-in entry stamped epoch %d, released at epoch %d (stranded past release)", e.Epoch, epoch)
					return
				}
			}
			for i := 1; i < len(batch); i++ {
				if batch[i].Epoch < batch[i-1].Epoch {
					t.Errorf("pending list epochs not monotonic: %d after %d", batch[i].Epoch, batch[i-1].Epoch)
					return
				}
			}
			locked += len(batch)
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-done
	// Everything drained before the final LockIn rounds must have been taken.
	final := q.LockIn()
	if total := locked + len(final); total != pushers*perPusher {
		t.Errorf("locked-in total = %d, want %d", total, pushers*perPusher)
	}
}

func TestRequeueLowersOldestPendingEpoch(t *testing.T) {
	q := New()
	a := &Entry{Base: 0x1000, Size: 8}
	q.Insert(a)
	q.Append([]*Entry{a})
	locked := q.LockIn() // epoch 0 -> 1; a carries epoch 0
	// New free lands at epoch 1, then the failed entry is requeued behind it.
	b := &Entry{Base: 0x2000, Size: 8}
	q.Insert(b)
	q.Append([]*Entry{b})
	q.Requeue(locked)
	if got := q.OldestPendingEpoch(); got != 0 {
		t.Errorf("OldestPendingEpoch = %d, want 0 (requeued entry is oldest)", got)
	}
	if age := q.Epoch() - q.OldestPendingEpoch(); age != 1 {
		t.Errorf("age = %d epochs, want 1", age)
	}
}

func TestConcurrentInsertRelease(t *testing.T) {
	q := New()
	const threads = 8
	const n = 2000
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tb := NewThreadBuffer(q, 16)
			for i := 0; i < n; i++ {
				if tb.Push(&Entry{Base: uint64(g*n+i+1) * 16, Size: 16}) {
					tb.Drain()
				}
			}
			tb.Retire()
		}(g)
	}
	wg.Wait()
	if q.Entries() != threads*n {
		t.Fatalf("Entries = %d, want %d", q.Entries(), threads*n)
	}
	locked := q.LockIn()
	if len(locked) != threads*n {
		t.Fatalf("LockIn = %d, want %d", len(locked), threads*n)
	}
	for _, e := range locked {
		q.Release(e)
	}
	if q.Entries() != 0 || q.Bytes() != 0 {
		t.Errorf("Entries/Bytes = %d/%d after release all", q.Entries(), q.Bytes())
	}
}

// Property: for any interleaving of insert/fail/unmap/release on distinct
// bases, Bytes + UnmappedBytes equals the sum of live entry sizes, and
// FailedBytes <= that sum.
func TestQuickAccounting(t *testing.T) {
	f := func(ops []uint8) bool {
		q := New()
		live := make(map[uint64]*Entry)
		next := uint64(16)
		for _, op := range ops {
			switch op % 4 {
			case 0: // insert
				e := &Entry{Base: next, Size: uint64(op)*8 + 8}
				next += 1 << 12
				if q.Insert(e) {
					live[e.Base] = e
				}
			case 1: // fail one
				for _, e := range live {
					q.NoteFailed(e)
					break
				}
			case 2: // unmap one
				for _, e := range live {
					q.NoteUnmapped(e)
					break
				}
			case 3: // release one
				for b, e := range live {
					q.Release(e)
					delete(live, b)
					break
				}
			}
			var want, failed uint64
			for _, e := range live {
				want += e.Size
				if e.Failed {
					failed += e.Size
				}
			}
			if q.Bytes()+q.UnmappedBytes() != want {
				return false
			}
			if q.FailedBytes() != failed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsertRelease(b *testing.B) {
	q := New()
	for i := 0; i < b.N; i++ {
		e := &Entry{Base: uint64(i+1) * 16, Size: 64}
		q.Insert(e)
		q.Release(e)
	}
}
