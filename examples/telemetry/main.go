// Telemetry: watching MineSweeper work.
//
// Run with:
//
//	go run ./examples/telemetry
//
// It runs an allocation churn under the MineSweeper scheme with the telemetry
// registry attached, then prints the registry's snapshot: one record per
// sweep (trigger cause, per-phase durations, pages scanned, entries released)
// plus malloc/free latency histograms and quarantine gauges.
package main

import (
	"fmt"
	"log"
	"os"

	minesweeper "minesweeper"
)

func main() {
	proc, err := minesweeper.NewProcess(minesweeper.Config{
		Scheme:      minesweeper.SchemeMineSweeper,
		Synchronous: true, // deterministic sweep timing for the demo
		BufferCap:   1,
		Telemetry:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer proc.Close()

	th, err := proc.NewThread()
	if err != nil {
		log.Fatal(err)
	}
	defer th.Close()

	// Churn: allocate a working set, free most of it, let sweeps trigger
	// naturally, then force a final sweep so nothing stays quarantined.
	var live []minesweeper.Addr
	for i := 0; i < 20000; i++ {
		p, err := th.Malloc(uint64(16 + i%2048))
		if err != nil {
			log.Fatal(err)
		}
		if err := th.Store(p, uint64(i)); err != nil {
			log.Fatal(err)
		}
		live = append(live, p)
		if len(live) > 256 {
			if err := th.Free(live[0]); err != nil {
				log.Fatal(err)
			}
			live = live[1:]
		}
	}
	for _, p := range live {
		if err := th.Free(p); err != nil {
			log.Fatal(err)
		}
	}
	proc.Sweep()

	reg := proc.Telemetry()
	if reg == nil {
		log.Fatal("telemetry not attached")
	}
	snap := reg.Snapshot()
	fmt.Printf("observed %d sweeps (last %d retained):\n\n", snap.SweepsTotal, len(snap.Sweeps))
	if err := snap.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
