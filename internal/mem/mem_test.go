package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestMapBasic(t *testing.T) {
	as := NewAddressSpace()
	r, err := as.Map(KindHeap, 3*PageSize, true)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if r.Base() < HeapBase || r.End() > HeapLimit {
		t.Errorf("heap region outside heap area: [%#x,%#x)", r.Base(), r.End())
	}
	if r.Size() != 3*PageSize {
		t.Errorf("Size = %d, want %d", r.Size(), 3*PageSize)
	}
	if got := as.RSS(); got != 3*PageSize {
		t.Errorf("RSS = %d, want %d", got, 3*PageSize)
	}
	if r.Kind() != KindHeap {
		t.Errorf("Kind = %v, want heap", r.Kind())
	}
}

func TestMapRoundsUpToPage(t *testing.T) {
	as := NewAddressSpace()
	r, err := as.Map(KindHeap, 100, true)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if r.Size() != PageSize {
		t.Errorf("Size = %d, want %d", r.Size(), PageSize)
	}
}

func TestMapZeroSize(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.Map(KindHeap, 0, true); err == nil {
		t.Fatal("Map(0) succeeded, want error")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, PageSize, true)
	addr := r.Base() + 64
	if err := as.Store64(addr, 0xdeadbeefcafef00d); err != nil {
		t.Fatalf("Store64: %v", err)
	}
	v, err := as.Load64(addr)
	if err != nil {
		t.Fatalf("Load64: %v", err)
	}
	if v != 0xdeadbeefcafef00d {
		t.Errorf("Load64 = %#x, want 0xdeadbeefcafef00d", v)
	}
}

func TestFreshMemoryIsZero(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, PageSize, true)
	for off := uint64(0); off < PageSize; off += WordSize {
		v, err := as.Load64(r.Base() + off)
		if err != nil {
			t.Fatalf("Load64(+%d): %v", off, err)
		}
		if v != 0 {
			t.Fatalf("fresh word at +%d = %#x, want 0", off, v)
		}
	}
}

func faultCause(t *testing.T, err error) FaultCause {
	t.Helper()
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("error %v is not a *Fault", err)
	}
	return f.Cause
}

func TestUnmappedAccessFaults(t *testing.T) {
	as := NewAddressSpace()
	_, err := as.Load64(HeapBase + 4096)
	if err == nil {
		t.Fatal("load of unmapped address succeeded")
	}
	if c := faultCause(t, err); c != CauseUnmapped {
		t.Errorf("cause = %v, want unmapped", c)
	}
	if as.Stats().Faults != 1 {
		t.Errorf("Faults = %d, want 1", as.Stats().Faults)
	}
}

func TestMisalignedAccessFaults(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, PageSize, true)
	_, err := as.Load64(r.Base() + 3)
	if c := faultCause(t, err); c != CauseMisaligned {
		t.Errorf("cause = %v, want misaligned", c)
	}
	err = as.Store64(r.Base()+5, 1)
	if c := faultCause(t, err); c != CauseMisaligned {
		t.Errorf("store cause = %v, want misaligned", c)
	}
}

func TestGuardGapBetweenRegions(t *testing.T) {
	as := NewAddressSpace()
	a, _ := as.Map(KindHeap, PageSize, true)
	b, _ := as.Map(KindHeap, PageSize, true)
	if b.Base() < a.End()+guardGap {
		t.Errorf("no guard gap: a ends %#x, b starts %#x", a.End(), b.Base())
	}
	if _, err := as.Load64(a.End()); err == nil {
		t.Error("load in guard gap succeeded")
	}
}

func TestDecommitFaultsAndZeroes(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, 2*PageSize, true)
	addr := r.Base()
	if err := as.Store64(addr, 42); err != nil {
		t.Fatal(err)
	}
	if err := as.Decommit(addr, PageSize); err != nil {
		t.Fatalf("Decommit: %v", err)
	}
	if _, err := as.Load64(addr); err == nil {
		t.Fatal("load of decommitted page succeeded")
	} else if c := faultCause(t, err); c != CauseNotResident {
		t.Errorf("cause = %v, want not-resident", c)
	}
	if got := as.RSS(); got != PageSize {
		t.Errorf("RSS after decommit = %d, want %d", got, PageSize)
	}
	// Second page untouched.
	if _, err := as.Load64(addr + PageSize); err != nil {
		t.Errorf("second page faulted: %v", err)
	}
	// Recommit: reads back as zero, not 42.
	if err := as.Commit(addr, PageSize, ProtRW); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	v, err := as.Load64(addr)
	if err != nil {
		t.Fatalf("Load64 after recommit: %v", err)
	}
	if v != 0 {
		t.Errorf("recommitted page reads %#x, want 0", v)
	}
	if got := as.RSS(); got != 2*PageSize {
		t.Errorf("RSS after recommit = %d, want %d", got, 2*PageSize)
	}
}

func TestCommitIdempotentRSS(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, PageSize, true)
	if err := as.Commit(r.Base(), PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if got := as.RSS(); got != PageSize {
		t.Errorf("RSS after double commit = %d, want %d", got, PageSize)
	}
}

func TestProtectReadOnly(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, PageSize, true)
	addr := r.Base()
	if err := as.Store64(addr, 7); err != nil {
		t.Fatal(err)
	}
	if err := as.Protect(addr, PageSize, ProtRead); err != nil {
		t.Fatalf("Protect: %v", err)
	}
	if err := as.Store64(addr, 8); err == nil {
		t.Fatal("store to read-only page succeeded")
	} else if c := faultCause(t, err); c != CauseProtection {
		t.Errorf("cause = %v, want protection", c)
	}
	v, err := as.Load64(addr)
	if err != nil || v != 7 {
		t.Errorf("Load64 = %v, %v; want 7, nil", v, err)
	}
	// ProtNone blocks loads too, but keeps contents for later restore.
	if err := as.Protect(addr, PageSize, ProtNone); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Load64(addr); err == nil {
		t.Fatal("load of PROT_NONE page succeeded")
	}
	if err := as.Protect(addr, PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.Load64(addr); v != 7 {
		t.Errorf("contents lost across protect: %d, want 7", v)
	}
}

func TestUncommittedMapFaultsUntilCommit(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, 2*PageSize, false)
	if as.RSS() != 0 {
		t.Errorf("RSS of uncommitted map = %d, want 0", as.RSS())
	}
	if _, err := as.Load64(r.Base()); err == nil {
		t.Fatal("load of uncommitted page succeeded")
	}
	if err := as.Commit(r.Base(), PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Load64(r.Base()); err != nil {
		t.Fatalf("load after commit: %v", err)
	}
	if as.RSS() != PageSize {
		t.Errorf("RSS = %d, want %d", as.RSS(), PageSize)
	}
}

func TestUnmap(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, PageSize, true)
	base := r.Base()
	if err := as.Unmap(r); err != nil {
		t.Fatalf("Unmap: %v", err)
	}
	if as.RSS() != 0 {
		t.Errorf("RSS after unmap = %d, want 0", as.RSS())
	}
	if _, err := as.Load64(base); err == nil {
		t.Fatal("load of unmapped region succeeded")
	}
	if err := as.Unmap(r); err == nil {
		t.Fatal("double unmap succeeded")
	}
}

func TestSoftDirtyTracking(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, 4*PageSize, true)
	as.ClearSoftDirty()
	for i := 0; i < 4; i++ {
		if r.PageDirty(i) {
			t.Fatalf("page %d dirty after clear", i)
		}
	}
	if err := as.Store64(r.Base()+2*PageSize+8, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		want := i == 2
		if r.PageDirty(i) != want {
			t.Errorf("page %d dirty = %v, want %v", i, r.PageDirty(i), want)
		}
	}
	as.ClearSoftDirty()
	if r.PageDirty(2) {
		t.Error("page 2 still dirty after clear")
	}
}

func TestLookupBoundaries(t *testing.T) {
	as := NewAddressSpace()
	a, _ := as.Map(KindHeap, PageSize, true)
	b, _ := as.Map(KindHeap, PageSize, true)
	cases := []struct {
		addr uint64
		want *Region
	}{
		{a.Base(), a},
		{a.End() - 1, a},
		{a.End(), nil}, // guard gap
		{b.Base(), b},
		{b.Base() - 1, nil},
		{b.End() - 1, b},
		{b.End(), nil},
		{HeapBase - 1, nil},
	}
	for _, c := range cases {
		if got := as.Lookup(c.addr); got != c.want {
			t.Errorf("Lookup(%#x) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestKindsSeparateAreas(t *testing.T) {
	as := NewAddressSpace()
	h, _ := as.Map(KindHeap, PageSize, true)
	s, _ := as.Map(KindStack, PageSize, true)
	g, _ := as.Map(KindGlobals, PageSize, true)
	if !IsHeapAddr(h.Base()) {
		t.Error("heap region not in heap area")
	}
	if IsHeapAddr(s.Base()) || IsHeapAddr(g.Base()) {
		t.Error("stack/globals region classified as heap")
	}
	if s.Base() < StackBase || s.End() > StackLimit {
		t.Error("stack region outside stack area")
	}
	if g.Base() < GlobalsBase || g.End() > GlobalsLimit {
		t.Error("globals region outside globals area")
	}
}

func TestZeroRange(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, PageSize, true)
	for off := uint64(0); off < 256; off += 8 {
		if err := as.Store64(r.Base()+off, ^uint64(0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := as.Zero(r.Base()+64, 128); err != nil {
		t.Fatalf("Zero: %v", err)
	}
	for off := uint64(0); off < 256; off += 8 {
		v, _ := as.Load64(r.Base() + off)
		want := ^uint64(0)
		if off >= 64 && off < 192 {
			want = 0
		}
		if v != want {
			t.Errorf("word at +%d = %#x, want %#x", off, v, want)
		}
	}
}

func TestWordAtMatchesLoad(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, PageSize, true)
	if err := as.Store64(r.Base()+16, 0x1234); err != nil {
		t.Fatal(err)
	}
	if got := r.WordAt(2); got != 0x1234 {
		t.Errorf("WordAt(2) = %#x, want 0x1234", got)
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Addr: 0x1000, Write: true, Cause: CauseProtection}
	want := "mem: fault: store at 0x1000 (protection)"
	if f.Error() != want {
		t.Errorf("Error() = %q, want %q", f.Error(), want)
	}
}

func TestProtString(t *testing.T) {
	cases := map[Prot]string{ProtNone: "--", ProtRead: "r-", ProtWrite: "-w", ProtRW: "rw"}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("Prot(%d).String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestPageHelpers(t *testing.T) {
	if PageFloor(4097) != 4096 || PageFloor(4096) != 4096 || PageFloor(4095) != 0 {
		t.Error("PageFloor wrong")
	}
	if PageCeil(4097) != 8192 || PageCeil(4096) != 4096 || PageCeil(1) != 4096 {
		t.Error("PageCeil wrong")
	}
}

// Property: a store followed by a load at any word-aligned in-bounds offset
// round-trips the value exactly.
func TestQuickStoreLoadRoundTrip(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, 16*PageSize, true)
	f := func(off uint32, v uint64) bool {
		addr := r.Base() + uint64(off)%r.Size()
		addr &^= WordSize - 1
		if err := as.Store64(addr, v); err != nil {
			return false
		}
		got, err := as.Load64(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RSS always equals PageSize times the number of resident pages,
// under any interleaving of commit/decommit operations.
func TestQuickRSSInvariant(t *testing.T) {
	as := NewAddressSpace()
	const pages = 32
	r, _ := as.Map(KindHeap, pages*PageSize, true)
	f := func(ops []uint16) bool {
		for _, op := range ops {
			page := uint64(op%pages) * PageSize
			if op&0x8000 != 0 {
				if err := as.Commit(r.Base()+page, PageSize, ProtRW); err != nil {
					return false
				}
			} else {
				if err := as.Decommit(r.Base()+page, PageSize); err != nil {
					return false
				}
			}
		}
		resident := 0
		for i := 0; i < r.PageCount(); i++ {
			if r.PageResident(i) {
				resident++
			}
		}
		return as.RSS() == uint64(resident*PageSize)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentStoreSweepRaceFree(t *testing.T) {
	// A mutator hammering stores while a "sweeper" reads every word must be
	// race-free (this test is meaningful under -race).
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, 8*PageSize, true)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20000; i++ {
			addr := r.Base() + uint64(i*8)%r.Size()
			if err := as.Store64(addr, uint64(i)); err != nil {
				t.Errorf("Store64: %v", err)
				return
			}
		}
	}()
	for pass := 0; pass < 10; pass++ {
		for i := 0; i < r.WordCount(); i++ {
			_ = r.WordAt(i)
		}
	}
	<-done
}

func BenchmarkStore64(b *testing.B) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, 256*PageSize, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = as.Store64(r.Base()+uint64(i*8)%r.Size(), uint64(i))
	}
}

func BenchmarkLoad64(b *testing.B) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, 256*PageSize, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = as.Load64(r.Base() + uint64(i*8)%r.Size())
	}
}

func BenchmarkSweepRegion(b *testing.B) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, 1024*PageSize, true)
	b.SetBytes(int64(r.Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var marks uint64
		for w := 0; w < r.WordCount(); w++ {
			if IsHeapAddr(r.WordAt(w)) {
				marks++
			}
		}
		_ = marks
	}
}
