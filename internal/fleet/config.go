// Package fleet runs many MineSweeper tenants on one simulated host and
// arbitrates a single resident-memory budget between them. The paper's
// experiments (and every harness in this repo up to PR 9) measure one
// process; production deployments co-locate hundreds of services per
// machine, and "drop-in" protection has to hold when all of them quarantine
// memory at once. GWP-ASan's fleet framing is the model: host-level evidence
// over many co-resident processes, not one benchmark at a time.
//
// The design is a two-level control plane. Each tenant keeps the PR 5
// per-heap governor (control.Plane) completely unchanged; above them a
// host Arbiter runs the same AIMD shape over host-wide inputs and re-grants
// each tenant's MemoryBudget rail through Plane.SetBudget — an atomic
// publication the tenant's fast paths pick up on the amortised checks they
// already do, so federation costs the mutators nothing. Priority classes get
// weighted shares of the distributable budget; a guaranteed per-tenant floor
// means no tenant ever starves; tenants repeatedly pinned at their rail
// while the host is under pressure are flagged noisy and throttled first.
package fleet

import (
	"errors"
	"fmt"

	"minesweeper/internal/events"
)

// ErrBadConfig is wrapped by every config validation failure, mirroring the
// top-level minesweeper.ErrBadConfig idiom so callers can errors.Is a fleet
// misconfiguration regardless of which field tripped it.
var ErrBadConfig = errors.New("fleet: invalid config")

// Class describes one priority class of tenants. All tenants in a class
// share a workload shape, a floor and a weight; the arbiter treats lower
// Priority numbers as more important (0 is the highest class).
type Class struct {
	// Name labels the class in reports ("gold", "batch", ...).
	Name string `json:"name"`
	// Priority orders classes for the arbiter: 0 is squeezed least under
	// host pressure.
	Priority int `json:"priority"`
	// Weight is the class's share weight for the distributable (above
	// floors) portion of the host budget. Must be positive.
	Weight float64 `json:"weight"`
	// Tenants is how many tenant processes this class contributes.
	Tenants int `json:"tenants"`
	// Floor is the guaranteed per-tenant budget in bytes: the arbiter
	// never grants less, so the class cannot starve. The floors of all
	// tenants must sum to at most the host budget.
	Floor uint64 `json:"floor"`
	// Workload selects the open-loop service kernel ("cache", "churn" or
	// "burst"; empty means "cache", the webcache shape).
	Workload string `json:"workload"`
	// Lambda is the mean arrivals per tick (0 means 4).
	Lambda float64 `json:"lambda"`
	// Burst, when > 1, drives arrivals with an MMPP whose burst state runs
	// at Burst x Lambda; 0 or 1 keeps plain Poisson arrivals.
	Burst float64 `json:"burst"`
}

// Config configures a Host.
type Config struct {
	// HostBudget is the shared resident-memory budget in bytes the
	// arbiter apportions. Must be positive: a fleet without a budget has
	// nothing to federate.
	HostBudget uint64 `json:"host_budget"`
	// Classes is the tenant population. At least one class with at least
	// one tenant.
	Classes []Class `json:"classes"`
	// Ticks is the open-loop run length (default 256).
	Ticks int `json:"ticks"`
	// ArbiterEvery is the rebalance cadence in ticks (default 4) —
	// the host-level analogue of the per-heap plane's sweep-boundary
	// cadence.
	ArbiterEvery int `json:"arbiter_every"`
	// NoisyTicks is how many consecutive rebalances a tenant must sit
	// pinned at its rail, while the host is under pressure, before it is
	// flagged a noisy neighbour and throttled (default 3).
	NoisyTicks int `json:"noisy_ticks"`
	// Seed seeds every tenant's deterministic RNG chain.
	Seed uint64 `json:"seed"`
	// Workers bounds how many tenants serve arrivals concurrently per
	// tick (default max(4, GOMAXPROCS)).
	Workers int `json:"workers"`
	// Events, when non-nil, receives host-arbitration instants (tenant
	// throttles, rebalances, starvation averts, level changes) on a
	// "host-arbiter" ring and a flight-recorder trip on host-budget
	// breach.
	Events *events.Recorder `json:"-"`
}

// Tenants returns the total tenant count across all classes.
func (c Config) Tenants() int {
	n := 0
	for _, cl := range c.Classes {
		n += cl.Tenants
	}
	return n
}

// badf wraps ErrBadConfig with a field-specific message.
func badf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadConfig, fmt.Sprintf(format, args...))
}

// Validate checks the configuration for internal consistency, field by
// field, wrapping every failure in ErrBadConfig. Notably it rejects floors
// that sum past the host budget: a floor is a guarantee, and guarantees the
// host cannot cover are lies, not configuration.
func (c Config) Validate() error {
	if c.HostBudget == 0 {
		return badf("host budget must be positive")
	}
	if len(c.Classes) == 0 {
		return badf("at least one tenant class required")
	}
	if c.Ticks < 0 {
		return badf("ticks must be >= 0, got %d", c.Ticks)
	}
	if c.ArbiterEvery < 0 {
		return badf("arbiter cadence must be >= 0, got %d", c.ArbiterEvery)
	}
	if c.NoisyTicks < 0 {
		return badf("noisy-neighbour threshold must be >= 0, got %d", c.NoisyTicks)
	}
	if c.Workers < 0 {
		return badf("workers must be >= 0, got %d", c.Workers)
	}
	var floors uint64
	for i, cl := range c.Classes {
		if cl.Tenants < 1 {
			return badf("class %d (%q): tenants must be >= 1, got %d", i, cl.Name, cl.Tenants)
		}
		if cl.Weight <= 0 {
			return badf("class %d (%q): weight must be positive, got %g", i, cl.Name, cl.Weight)
		}
		if cl.Priority < 0 {
			return badf("class %d (%q): priority must be >= 0, got %d", i, cl.Name, cl.Priority)
		}
		if cl.Lambda < 0 {
			return badf("class %d (%q): lambda must be >= 0, got %g", i, cl.Name, cl.Lambda)
		}
		if cl.Burst < 0 {
			return badf("class %d (%q): burst must be >= 0, got %g", i, cl.Name, cl.Burst)
		}
		switch cl.Workload {
		case "", "cache", "churn", "burst":
		default:
			return badf("class %d (%q): unknown workload %q (want cache, churn or burst)", i, cl.Name, cl.Workload)
		}
		if cl.Floor > c.HostBudget {
			return badf("class %d (%q): per-tenant floor %d exceeds host budget %d", i, cl.Name, cl.Floor, c.HostBudget)
		}
		floors += uint64(cl.Tenants) * cl.Floor
		if floors > c.HostBudget {
			return badf("tenant floors sum past the host budget (%d > %d): floors are guarantees the host must be able to cover", floors, c.HostBudget)
		}
	}
	return nil
}

// withDefaults returns the config with zero-valued tunables replaced by
// their defaults. Validate must have passed already.
func (c Config) withDefaults() Config {
	if c.Ticks == 0 {
		c.Ticks = 256
	}
	if c.ArbiterEvery == 0 {
		c.ArbiterEvery = 4
	}
	if c.NoisyTicks == 0 {
		c.NoisyTicks = 3
	}
	return c
}
