package shadow

import "sync/atomic"

// Marker is a single-goroutine write buffer in front of a Bitmap's Mark. The
// sweep's hot loop marks pointer targets that are strongly clustered — a page
// of a live data structure mostly points into a handful of nearby allocation
// pools — so consecutive Mark calls usually land in the same chunk, and often
// in the same 64-bit shadow word. A plain Bitmap.Mark pays the chunk lookup
// (atomic pointer load) and an atomic load(+or) per call; a Marker tracks the
// byte window covered by the current shadow word and accumulates bits
// destined for it in a local register, publishing them with a single atomic
// OR when the window moves (or on Flush). N clustered marks collapse to ~1
// atomic, and the in-window fast path is a subtract, a compare and a shift —
// small enough to inline into the sweep's scan loop.
//
// Each sweep worker owns one Marker; the underlying Bitmap remains safe for
// concurrent marking because publication is still atomic OR. Pending bits are
// invisible to Test/AnyInRange until Flush, so a Marker must be flushed
// before the marking phase's results are consumed, and must not be used
// across ClearAll/ClearRange of the addresses it is buffering (the sweeper
// creates fresh Markers per pass, which satisfies both).
type Marker struct {
	b      *Bitmap
	c      *chunk // chunk holding the pending word; &discard before first hit
	wordLo uint64 // first byte whose granule maps into the pending word
	shift  uint64 // granuleShift, cached
	wi     uint64 // index of the pending word within c
	acc    uint64 // pending bits for word wi
}

// discard absorbs marks accumulated before the first in-coverage Mark: the
// sentinel window sits at [limit, limit+64<<shift), whose addresses are
// outside the bitmap and must be ignored — OR-ing their bits into this
// never-read chunk ignores them without a coverage check on the fast path.
// Shared across markers; writes are atomic and the contents are never read.
var discard chunk

// NewMarker returns a write-combining marker over b for use by a single
// goroutine.
func (b *Bitmap) NewMarker() *Marker {
	return &Marker{b: b, c: &discard, wordLo: b.limit, shift: uint64(b.granuleShift)}
}

// Mark buffers the bit for the granule containing addr. Addresses outside
// the covered range are ignored, exactly as with Bitmap.Mark. The in-window
// test and the bit index are one computation — a shadow word covers 64
// granules, so addr lands in the pending word exactly when the shifted
// offset is below 64 — which keeps Mark under the inlining budget.
func (m *Marker) Mark(addr uint64) {
	if i := (addr - m.wordLo) >> m.shift; i < 64 {
		m.acc |= 1 << i
		return
	}
	m.markSlow(addr)
}

// markSlow publishes the pending word and retargets the window at addr's
// shadow word. Out-of-coverage addresses leave the window untouched: the
// window is always either fully inside coverage or the sentinel, so the
// inlined fast path never misdirects a covered mark.
func (m *Marker) markSlow(addr uint64) {
	b := m.b
	if addr-b.base >= b.limit-b.base {
		return
	}
	m.Flush()
	g := (addr - b.base) >> b.granuleShift
	m.c = b.ensureChunk(g)
	i := g & (bitsPerChunk - 1)
	m.wi = i >> 6
	m.acc = 1 << (i & 63)
	m.wordLo = b.base + (g&^63)<<m.shift
}

// Flush publishes any pending bits to the bitmap. After Flush returns, every
// prior Mark is visible to Test/AnyInRange. The window survives the flush,
// so flushing mid-phase costs nothing beyond the one atomic OR.
func (m *Marker) Flush() {
	if m.acc != 0 {
		if atomic.LoadUint64(&m.c[m.wi])&m.acc != m.acc {
			atomic.OrUint64(&m.c[m.wi], m.acc)
		}
		m.acc = 0
	}
}
