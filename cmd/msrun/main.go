// Command msrun runs a single benchmark profile under one scheme and prints
// its measurements — the simulated equivalent of
//
//	LD_PRELOAD=lib/minesweeper.so:lib/jemalloc.so ./prog_binary
//
// from the paper's artifact appendix (§A.7).
//
// Usage:
//
//	msrun -bench xalancbmk -scheme minesweeper [-compare] [-scale 1] [-reps 1]
//	msrun -bench xalancbmk -scheme minesweeper -telemetry [-telemetry-json snap.json]
//	msrun -bench pressure -scheme minesweeper -budget 64M [-governor aimd]
//	msrun -bench pressure -budget 24M -events-dump flight.msev
//	msrun -bench espresso -events-addr :8844   # then: msstat -watch -addr :8844
//	msrun -list
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"minesweeper/internal/control"
	"minesweeper/internal/core"
	"minesweeper/internal/events"
	"minesweeper/internal/metrics"
	"minesweeper/internal/schemes"
	"minesweeper/internal/telemetry"
	"minesweeper/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark profile name (see -list)")
	scheme := flag.String("scheme", "minesweeper", "scheme: baseline, minesweeper, minesweeper-mostly, markus, ffmalloc, scudo")
	compare := flag.Bool("compare", false, "also run the baseline and print ratios")
	scale := flag.Int("scale", 1, "divide the op budget by this factor")
	reps := flag.Int("reps", 1, "repetitions (median reported)")
	list := flag.Bool("list", false, "list available profiles")
	trace := flag.Bool("trace", false, "print the memory-over-time trace")
	telem := flag.Bool("telemetry", false, "attach the telemetry registry and print per-sweep records and histograms")
	telemJSON := flag.String("telemetry-json", "", "also write the telemetry snapshot as JSON to this file (implies -telemetry)")
	budgetFlag := flag.String("budget", "", "resident-memory budget for the adaptive governor, e.g. 64M or 1G (minesweeper schemes only)")
	governor := flag.String("governor", "", "governor policy: aimd or static (minesweeper schemes only; defaults to aimd when -budget is set)")
	eventsDump := flag.String("events-dump", "", "attach the flight recorder and write the first anomaly-triggered event dump (MSEV binary) to this file; without an anomaly a manual capture of the run's last window is written instead")
	eventsAddr := flag.String("events-addr", "", "attach the flight recorder and serve live event state over HTTP at this address during the run (for msstat -watch)")
	flag.Parse()
	if *telemJSON != "" {
		*telem = true
	}

	if *list {
		tb := metrics.NewTable("profile", "suite", "threads", "kernel")
		for _, p := range workload.AllProfiles() {
			k := p.Kernel
			if k == "" {
				k = "generic"
			}
			tb.AddRow(p.Name, p.Suite, fmt.Sprint(p.Threads), k)
		}
		fmt.Print(tb.String())
		return
	}
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "msrun: -bench is required (try -list)")
		os.Exit(2)
	}
	prof, ok := workload.FindProfile(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "msrun: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	factory, err := schemeByName(*scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, "msrun:", err)
		os.Exit(2)
	}
	if *budgetFlag != "" || *governor != "" {
		factory, err = governedFactory(*scheme, *budgetFlag, *governor)
		if err != nil {
			fmt.Fprintln(os.Stderr, "msrun:", err)
			os.Exit(2)
		}
	}
	opts := workload.Options{ScaleDiv: *scale}
	var reg *telemetry.Registry
	if *telem {
		reg = telemetry.NewRegistry(telemetry.DefaultRingCap)
		opts.Telemetry = reg
	}
	var rec *events.Recorder
	if *eventsDump != "" || *eventsAddr != "" {
		rec = events.NewRecorder(events.DefaultRingCap, events.DefaultWindow)
		opts.Events = rec
		if *eventsDump != "" {
			path := *eventsDump
			rec.SetSink(func(d *events.Dump) { writeEventDump(path, d) })
		}
		if *eventsAddr != "" {
			serveEvents(*eventsAddr, rec, reg)
		}
	}

	if *compare {
		c, err := workload.Compare(prof, factory, opts, *reps)
		if err != nil {
			fmt.Fprintln(os.Stderr, "msrun:", err)
			os.Exit(1)
		}
		printResult(c.Result, *trace)
		fmt.Printf("\nvs baseline:\n")
		fmt.Printf("  slowdown      %s\n", metrics.FmtRatio(c.Slowdown))
		fmt.Printf("  avg memory    %s\n", metrics.FmtRatio(c.AvgMem))
		fmt.Printf("  peak memory   %s\n", metrics.FmtRatio(c.PeakMem))
		fmt.Printf("  cpu util      %s\n", metrics.FmtRatio(c.CPUUtil))
		dumpTelemetry(reg, *telemJSON)
		finishEvents(rec, *eventsDump)
		return
	}
	res, err := workload.Run(prof, factory, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "msrun:", err)
		os.Exit(1)
	}
	printResult(res, *trace)
	dumpTelemetry(reg, *telemJSON)
	finishEvents(rec, *eventsDump)
}

// writeEventDump persists one flight dump; it is the recorder's sink, so it
// runs on whatever goroutine tripped the anomaly and must not block long.
func writeEventDump(path string, d *events.Dump) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "msrun: events:", err)
		return
	}
	defer f.Close()
	if _, err := d.WriteTo(f); err != nil {
		fmt.Fprintln(os.Stderr, "msrun: events: writing dump:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "msrun: events: %s dump (%d events) written to %s\n",
		d.Cause, d.Len(), path)
}

// finishEvents reports flight-recorder activity after the run. When a dump
// file was requested but no anomaly tripped, it writes a manual capture of
// the run's last window so the flag always yields an inspectable dump.
func finishEvents(rec *events.Recorder, dumpPath string) {
	if rec == nil {
		return
	}
	fmt.Printf("\nevents: %d anomaly dump(s) tripped\n", rec.Trips())
	if dumpPath != "" && rec.Trips() == 0 {
		writeEventDump(dumpPath, rec.Capture(events.TripManual))
	}
}

// serveEvents starts the live event server for msstat -watch. It serves for
// the duration of the run; msrun exits (and the server with it) once the
// run's report is printed.
func serveEvents(addr string, rec *events.Recorder, reg *telemetry.Registry) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "msrun: -events-addr:", err)
		os.Exit(2)
	}
	fmt.Printf("events: serving live state on http://%s/events/state\n", ln.Addr())
	srv := events.NewServer(rec, reg)
	go func() {
		if err := http.Serve(ln, srv.Handler()); err != nil {
			fmt.Fprintln(os.Stderr, "msrun: events server:", err)
		}
	}()
}

// dumpTelemetry renders the registry's snapshot (sweep records, histograms,
// gauges) after the run, and optionally writes the JSON form to a file for
// msstat to render or diff later.
func dumpTelemetry(reg *telemetry.Registry, jsonPath string) {
	if reg == nil {
		return
	}
	snap := reg.Snapshot()
	fmt.Printf("\ntelemetry:\n")
	if err := snap.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "msrun: rendering telemetry:", err)
	}
	if jsonPath == "" {
		return
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "msrun:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := snap.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "msrun: writing telemetry JSON:", err)
		os.Exit(1)
	}
}

// governedFactory wraps the named MineSweeper scheme in an adaptive control
// plane and prints the effective governed configuration — base knobs, rails,
// budget and policy — so a run's steering envelope is on the record before
// any measurements.
func governedFactory(scheme, budgetStr, policyName string) (schemes.Factory, error) {
	budget, err := metrics.ParseSize(budgetStr)
	if err != nil {
		return schemes.Factory{}, fmt.Errorf("-budget: %w", err)
	}
	if budgetStr != "" && budget == 0 {
		return schemes.Factory{}, fmt.Errorf("-budget: must be positive")
	}
	f, err := schemes.GovernedByName(scheme, budget, policyName)
	if err != nil {
		return schemes.Factory{}, err
	}

	cfg := core.DefaultConfig()
	base := control.Knobs{
		SweepThreshold:    cfg.SweepThreshold,
		UnmappedFactor:    cfg.UnmappedFactor,
		PauseThreshold:    cfg.PauseThreshold,
		Helpers:           cfg.Helpers,
		RescanBudgetPages: cfg.RescanBudgetPages,
	}
	rails := control.DefaultRails(base)
	if policyName == "" {
		policyName = "aimd"
	}
	fmt.Printf("governor: policy=%s budget=%s\n", policyName, fmtBudget(budget))
	fmt.Printf("  base:   sweep=%.3f unmapped=%.1fx pause=%.2f helpers=%d rescan=%dpg\n",
		base.SweepThreshold, base.UnmappedFactor, base.PauseThreshold, base.Helpers,
		base.RescanBudgetPages)
	fmt.Printf("  rails:  sweep=[%.4f,%.3f] unmapped=[%.1fx,%.1fx] pause=[%.3f,%.2f] helpers=[%d,%d] rescan=[%d,%d]\n",
		rails.SweepThresholdMin, rails.SweepThresholdMax,
		rails.UnmappedFactorMin, rails.UnmappedFactorMax,
		rails.PauseThresholdMin, rails.PauseThresholdMax,
		rails.HelpersMin, rails.HelpersMax,
		rails.RescanBudgetMin, rails.RescanBudgetMax)
	return f, nil
}

func fmtBudget(b uint64) string {
	if b == 0 {
		return "none (age-signal only)"
	}
	return metrics.FmtMiB(b)
}

func schemeByName(name string) (schemes.Factory, error) {
	for _, k := range []schemes.Kind{
		schemes.Baseline, schemes.MineSweeper, schemes.MineSweeperMostly,
		schemes.MarkUs, schemes.FFMalloc, schemes.Scudo,
		schemes.Oscar, schemes.DangSan, schemes.PSweeper, schemes.CRCount,
	} {
		if k.String() == name {
			return schemes.New(k), nil
		}
	}
	return schemes.Factory{}, fmt.Errorf("unknown scheme %q", name)
}

func printResult(r workload.Result, withTrace bool) {
	fmt.Printf("%s under %s\n", r.Profile, r.Scheme)
	fmt.Printf("  wall time     %v\n", r.Wall.Round(time.Millisecond))
	fmt.Printf("  avg rss       %s\n", metrics.FmtMiB(r.AvgRSS))
	fmt.Printf("  peak rss      %s\n", metrics.FmtMiB(r.PeakRSS))
	fmt.Printf("  mallocs       %d\n", r.Stats.Mallocs)
	fmt.Printf("  frees         %d\n", r.Stats.Frees)
	fmt.Printf("  sweeps        %d\n", r.Stats.Sweeps)
	fmt.Printf("  failed frees  %d\n", r.Stats.FailedFrees)
	fmt.Printf("  double frees  %d\n", r.Stats.DoubleFrees)
	fmt.Printf("  bytes swept   %s\n", metrics.FmtMiB(r.Stats.BytesSwept))
	fmt.Printf("  sweeper busy  %v\n", time.Duration(r.Stats.SweeperCycles).Round(time.Millisecond))
	fmt.Printf("  stw time      %v\n", time.Duration(r.Stats.STWCycles).Round(time.Microsecond))
	fmt.Printf("  pause time    %v\n", time.Duration(r.Stats.PauseNanos).Round(time.Microsecond))
	fmt.Printf("  uaf faults    %d\n", r.UAFs)
	if withTrace {
		fmt.Println("  trace (ms, MiB):")
		for _, s := range r.Trace {
			fmt.Printf("    %6.1f  %8.2f\n", float64(s.At)/1e6, float64(s.RSS)/(1<<20))
		}
	}
}
