package quarantine

import "testing"

func pendEntry(q *Quarantine, base, size uint64, shard int32) *Entry {
	e := q.NewEntry(base, size)
	e.Shard = shard
	if !q.Insert(e) {
		panic("duplicate base in test")
	}
	return e
}

// TestLockInSelectedSubset: a partial lock-in takes only the selected shards'
// entries, advances the epoch once, and leaves the rest pending with their
// original epochs (so their age grows).
func TestLockInSelectedSubset(t *testing.T) {
	q := NewSharded(3)
	if q.NumShards() != 3 {
		t.Fatalf("NumShards = %d, want 3", q.NumShards())
	}
	e0 := pendEntry(q, 0x1000, 64, 0)
	e1 := pendEntry(q, 0x2000, 128, 1)
	e2 := pendEntry(q, 0x3000, 256, 2)
	q.Append([]*Entry{e0, e1, e2})

	stats := q.PendingShardStats(nil)
	if stats[0].Bytes != 64 || stats[1].Bytes != 128 || stats[2].Bytes != 256 {
		t.Fatalf("shard bytes = %+v", stats)
	}

	locked := q.LockInSelected([]bool{true, false, true})
	if len(locked) != 2 {
		t.Fatalf("locked %d entries, want 2 (shards 0 and 2)", len(locked))
	}
	for _, e := range locked {
		if e.Shard == 1 {
			t.Fatal("unselected shard 1 was locked in")
		}
	}
	if q.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1 (one advance per lock-in)", q.Epoch())
	}
	stats = q.PendingShardStats(stats)
	if stats[0].Entries != 0 || stats[2].Entries != 0 {
		t.Fatalf("selected shards not emptied: %+v", stats)
	}
	if stats[1].Entries != 1 || stats[1].Bytes != 128 {
		t.Fatalf("unselected shard disturbed: %+v", stats[1])
	}
	// e1 was appended at epoch 0 and left behind; its shard lags 1 epoch.
	if stats[1].OldestEpoch != 0 {
		t.Fatalf("shard 1 oldest epoch = %d, want 0", stats[1].OldestEpoch)
	}
	if got := q.OldestPendingEpoch(); got != 0 {
		t.Fatalf("OldestPendingEpoch = %d, want 0", got)
	}

	// A full lock-in picks up the straggler.
	locked2 := q.LockIn()
	if len(locked2) != 1 || locked2[0] != e1 {
		t.Fatalf("full lock-in took %d entries, want e1 only", len(locked2))
	}
	if got := q.OldestPendingEpoch(); got != q.Epoch() {
		t.Fatalf("OldestPendingEpoch on empty = %d, want current epoch %d", got, q.Epoch())
	}
}

// TestAppendRoutesByShard: entries land on the pending shard named by
// Entry.Shard, with out-of-range values routed to shard 0.
func TestAppendRoutesByShard(t *testing.T) {
	q := NewSharded(2)
	a := pendEntry(q, 0x1000, 32, 1)
	b := pendEntry(q, 0x2000, 32, 7)  // out of range -> shard 0
	c := pendEntry(q, 0x3000, 32, -1) // negative -> shard 0
	q.Append([]*Entry{a, b, c})
	stats := q.PendingShardStats(nil)
	if stats[0].Entries != 2 || stats[1].Entries != 1 {
		t.Fatalf("routing: %+v", stats)
	}
	locked := q.LockInSelected([]bool{false, true})
	if len(locked) != 1 || locked[0] != a {
		t.Fatalf("shard-1 lock-in = %d entries", len(locked))
	}
}

// TestRequeuePerShardWatermark: requeued failures return to their own shard
// and lower that shard's (and thus the global) oldest-epoch watermark.
func TestRequeuePerShardWatermark(t *testing.T) {
	q := NewSharded(2)
	e := pendEntry(q, 0x1000, 64, 1)
	q.Append([]*Entry{e})
	locked := q.LockInSelected([]bool{false, true})
	if len(locked) != 1 {
		t.Fatalf("locked %d, want 1", len(locked))
	}
	// Age the world a few epochs, then fail the entry back in.
	q.LockIn()
	q.LockIn()
	q.Requeue(locked)
	stats := q.PendingShardStats(nil)
	if stats[1].Entries != 1 || stats[1].OldestEpoch != 0 {
		t.Fatalf("requeued shard state: %+v", stats[1])
	}
	if got := q.OldestPendingEpoch(); got != 0 {
		t.Fatalf("OldestPendingEpoch = %d, want 0 (requeue preserves epoch)", got)
	}
	if age := q.Epoch() - stats[1].OldestEpoch; age != 3 {
		t.Fatalf("shard lag = %d epochs, want 3", age)
	}
}

// TestUnshardedDefault: New() behaves exactly as before — one shard, every
// lock-in takes everything regardless of Entry.Shard.
func TestUnshardedDefault(t *testing.T) {
	q := New()
	if q.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1", q.NumShards())
	}
	a := pendEntry(q, 0x1000, 32, 0)
	b := pendEntry(q, 0x2000, 32, 3)
	q.Append([]*Entry{a, b})
	if locked := q.LockIn(); len(locked) != 2 {
		t.Fatalf("locked %d, want 2", len(locked))
	}
}
