package workload

import (
	"testing"

	"minesweeper/internal/mem"
	"minesweeper/internal/schemes"
	"minesweeper/internal/sim"
)

// TestPoissonMoments checks the Poisson sampler's mean and variance across
// both regimes (Knuth product below λ=30, normal approximation above).
func TestPoissonMoments(t *testing.T) {
	for _, lambda := range []float64{0.5, 4, 12, 64} {
		r := sim.NewRand(7)
		const draws = 20000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < draws; i++ {
			n := float64(poissonDraw(r, lambda))
			sum += n
			sumSq += n * n
		}
		mean := sum / draws
		variance := sumSq/draws - mean*mean
		if mean < lambda*0.95 || mean > lambda*1.05 {
			t.Errorf("lambda %v: mean %v off by more than 5%%", lambda, mean)
		}
		if variance < lambda*0.85 || variance > lambda*1.15 {
			t.Errorf("lambda %v: variance %v should be near lambda", lambda, variance)
		}
	}
	if n := poissonDraw(sim.NewRand(1), 0); n != 0 {
		t.Errorf("lambda 0 drew %d arrivals", n)
	}
}

// TestMMPPModulation checks the two-state process actually dwells in both
// states with the configured proportions and that burst-state rates are
// higher.
func TestMMPPModulation(t *testing.T) {
	m := NewMMPP(4, 8, 100, 25)
	r := sim.NewRand(42)
	const ticks = 40000
	dwell := [2]int{}
	arrivals := [2]float64{}
	for i := 0; i < ticks; i++ {
		st := m.State()
		n := m.Arrivals(r)
		dwell[st]++
		arrivals[st] += float64(n)
	}
	if dwell[0] == 0 || dwell[1] == 0 {
		t.Fatalf("process never left a state: dwell %v", dwell)
	}
	// Expected dwell proportion: 100 : 25 = 4 : 1, within a loose band.
	frac := float64(dwell[0]) / ticks
	if frac < 0.70 || frac > 0.90 {
		t.Errorf("quiet-state dwell fraction %v outside [0.70, 0.90]", frac)
	}
	quietRate := arrivals[0] / float64(dwell[0])
	burstRate := arrivals[1] / float64(dwell[1])
	if burstRate < quietRate*4 {
		t.Errorf("burst rate %v not clearly above quiet rate %v (want 8x configured)", burstRate, quietRate)
	}
}

// TestServiceKernels runs each service kind open-loop on a MineSweeper heap
// and checks it serves without errors and tears down to an empty live set
// (mallocs == frees after Close).
func TestServiceKernels(t *testing.T) {
	for _, kind := range []string{"cache", "churn", "burst"} {
		t.Run(kind, func(t *testing.T) {
			space := mem.NewAddressSpace()
			world := sim.NewWorld()
			heap, err := schemes.New(schemes.MineSweeper).Build(space, world)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := sim.NewProgram(space, heap, world)
			if err != nil {
				heap.Shutdown()
				t.Fatal(err)
			}
			th, err := prog.NewThread(11)
			if err != nil {
				heap.Shutdown()
				t.Fatal(err)
			}

			svc, err := NewService(kind, th, 99, nil)
			if err != nil {
				t.Fatal(err)
			}
			arr := Poisson{Lambda: 6}
			r := sim.NewRand(5)
			for tick := 0; tick < 400; tick++ {
				if err := svc.Serve(arr.Arrivals(r)); err != nil {
					t.Fatalf("tick %d: %v", tick, err)
				}
			}
			if err := svc.Close(); err != nil {
				t.Fatal(err)
			}
			th.Close()
			heap.Shutdown() // drains every thread ring and quiesces sweeps
			st := heap.Stats()
			if st.Mallocs == 0 {
				t.Fatal("service performed no allocations")
			}
			// Every allocation is either substrate-freed or quarantined after
			// Close: live bytes must reach zero (frees only reach the
			// substrate's Frees counter once a sweep proves them safe).
			if st.Allocated != 0 {
				t.Errorf("%d live bytes remain after teardown", st.Allocated)
			}
		})
	}
	if _, err := NewService("nope", nil, 0, nil); err == nil {
		t.Error("unknown service kind accepted")
	}
}

// TestServicePressureSheds checks the PressureAware half of the fleet
// protocol: a cache driven at Critical drains its live set, and dropping
// back to Nominal lets it refill. The churn kernel must likewise empty its
// pool under Critical.
func TestServicePressureSheds(t *testing.T) {
	space := mem.NewAddressSpace()
	world := sim.NewWorld()
	heap, err := schemes.New(schemes.MineSweeper).Build(space, world)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sim.NewProgram(space, heap, world)
	if err != nil {
		heap.Shutdown()
		t.Fatal(err)
	}
	th, err := prog.NewThread(3)
	if err != nil {
		heap.Shutdown()
		t.Fatal(err)
	}
	level := 0
	occupied := func(slots []uint64) int {
		n := 0
		for _, s := range slots {
			if s != 0 {
				n++
			}
		}
		return n
	}

	svc, err := NewService("cache", th, 17, nil)
	if err != nil {
		t.Fatal(err)
	}
	cache := svc.(*cacheService)
	cache.SetPressure(func() int { return level })
	for i := 0; i < 200; i++ {
		if err := svc.Serve(6); err != nil {
			t.Fatal(err)
		}
	}
	full := occupied(cache.slots)
	if full < len(cache.slots)/2 {
		t.Fatalf("nominal cache only filled %d/%d slots", full, len(cache.slots))
	}
	level = 2
	for i := 0; i < 100; i++ {
		if err := svc.Serve(6); err != nil {
			t.Fatal(err)
		}
	}
	shed := occupied(cache.slots)
	if shed >= full/2 {
		t.Errorf("critical pressure shed %d -> %d slots; want at least halved", full, shed)
	}
	if len(cache.sessions) != 0 {
		t.Errorf("%d sessions survive Critical", len(cache.sessions))
	}
	level = 0
	for i := 0; i < 200; i++ {
		if err := svc.Serve(6); err != nil {
			t.Fatal(err)
		}
	}
	if refilled := occupied(cache.slots); refilled <= shed {
		t.Errorf("cache did not refill after pressure cleared: %d -> %d", shed, refilled)
	}

	churn, err := NewService("churn", th, 23, nil)
	if err != nil {
		t.Fatal(err)
	}
	cs := churn.(*churnService)
	cs.SetPressure(func() int { return level })
	for i := 0; i < 200; i++ {
		if err := churn.Serve(6); err != nil {
			t.Fatal(err)
		}
	}
	level = 2
	for i := 0; i < 300; i++ {
		if err := churn.Serve(6); err != nil {
			t.Fatal(err)
		}
	}
	if n := occupied(cs.slots); n > len(cs.slots)/8 {
		t.Errorf("churn pool kept %d/%d slots under Critical", n, len(cs.slots))
	}

	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := churn.Close(); err != nil {
		t.Fatal(err)
	}
	th.Close()
	heap.Shutdown()
}
