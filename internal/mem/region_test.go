package mem

import (
	"sync"
	"testing"
)

func TestScanRangeVisitsReadableWords(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, 4*PageSize, true)
	base := r.Base()
	for i := uint64(0); i < 8; i++ {
		if err := as.Store64(base+i*8, i+1); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	r.ScanRange(base, 64, func(v uint64) { got = append(got, v) })
	if len(got) != 8 {
		t.Fatalf("visited %d words, want 8", len(got))
	}
	for i, v := range got {
		if v != uint64(i+1) {
			t.Errorf("word %d = %d, want %d", i, v, i+1)
		}
	}
}

func TestScanRangeSkipsNonResident(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, 4*PageSize, true)
	if err := as.Decommit(r.Base()+PageSize, PageSize); err != nil {
		t.Fatal(err)
	}
	count := 0
	r.ScanRange(r.Base(), 3*PageSize, func(uint64) { count++ })
	if want := 2 * WordsPerPage; count != want {
		t.Errorf("visited %d words, want %d (one page skipped)", count, want)
	}
}

func TestScanRangeSpansPartialPages(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, 2*PageSize, true)
	// Range straddling the page boundary.
	start := r.Base() + PageSize - 32
	count := 0
	r.ScanRange(start, 64, func(uint64) { count++ })
	if count != 8 {
		t.Errorf("visited %d words, want 8", count)
	}
}

func TestLockPageMutualExclusion(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, PageSize, true)
	var inCritical, maxInCritical int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.LockPage(0)
				mu.Lock()
				inCritical++
				if inCritical > maxInCritical {
					maxInCritical = inCritical
				}
				mu.Unlock()
				mu.Lock()
				inCritical--
				mu.Unlock()
				r.UnlockPage(0)
			}
		}()
	}
	wg.Wait()
	if maxInCritical > 1 {
		t.Errorf("LockPage admitted %d holders at once", maxInCritical)
	}
}

func TestBackingDroppedAndRestored(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, 2*PageSize, true)
	if r.wordSlice() == nil {
		t.Fatal("committed region has no backing")
	}
	if err := as.Decommit(r.Base(), 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if r.wordSlice() != nil {
		t.Error("fully decommitted region retains backing")
	}
	// WordAt on a backing-less region reads zero (never panics).
	if v := r.WordAt(0); v != 0 {
		t.Errorf("WordAt on dropped backing = %d", v)
	}
	if err := as.Commit(r.Base(), PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if r.wordSlice() == nil {
		t.Fatal("commit did not restore backing")
	}
	if err := as.Store64(r.Base(), 5); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.Load64(r.Base()); v != 5 {
		t.Errorf("read back %d, want 5", v)
	}
}

func TestBackingPoolReuseIsZeroed(t *testing.T) {
	as := NewAddressSpace()
	a, _ := as.Map(KindHeap, PageSize, true)
	if err := as.Store64(a.Base(), 0xAA); err != nil {
		t.Fatal(err)
	}
	// Drop a's backing into the pool, then map a new same-size region:
	// if the pool hands the slice back it must read zero.
	if err := as.Decommit(a.Base(), PageSize); err != nil {
		t.Fatal(err)
	}
	b, _ := as.Map(KindHeap, PageSize, true)
	for off := uint64(0); off < PageSize; off += 8 {
		if v, _ := as.Load64(b.Base() + off); v != 0 {
			t.Fatalf("recycled backing reads %#x at +%d", v, off)
		}
	}
}

func TestRadixLookupManyRegions(t *testing.T) {
	as := NewAddressSpace()
	var regions []*Region
	for i := 0; i < 500; i++ {
		r, err := as.Map(KindHeap, PageSize*uint64(1+i%7), true)
		if err != nil {
			t.Fatal(err)
		}
		regions = append(regions, r)
	}
	for _, r := range regions {
		if got := as.Lookup(r.Base()); got != r {
			t.Fatalf("Lookup(base) = %v, want %v", got, r)
		}
		if got := as.Lookup(r.End() - 1); got != r {
			t.Fatalf("Lookup(end-1) wrong region")
		}
		if got := as.Lookup(r.End()); got == r {
			t.Fatalf("Lookup(end) returned the region itself")
		}
	}
	// Unmapping clears radix entries.
	victim := regions[250]
	if err := as.Unmap(victim); err != nil {
		t.Fatal(err)
	}
	if as.Lookup(victim.Base()) != nil {
		t.Error("Lookup found unmapped region")
	}
}

func TestRegionsSnapshotLazyRebuild(t *testing.T) {
	as := NewAddressSpace()
	a, _ := as.Map(KindHeap, PageSize, true)
	s1 := as.Regions()
	if len(s1) != 1 || s1[0] != a {
		t.Fatalf("snapshot = %v", s1)
	}
	b, _ := as.Map(KindStack, PageSize, true)
	s2 := as.Regions()
	if len(s2) != 2 {
		t.Fatalf("snapshot after map = %d regions", len(s2))
	}
	// Sorted by base.
	if s2[0].Base() > s2[1].Base() {
		t.Error("snapshot not sorted")
	}
	_ = as.Unmap(b)
	if got := as.Regions(); len(got) != 1 {
		t.Errorf("snapshot after unmap = %d regions", len(got))
	}
}

func BenchmarkRadixLookup(b *testing.B) {
	as := NewAddressSpace()
	var bases []uint64
	for i := 0; i < 2000; i++ {
		r, _ := as.Map(KindHeap, 4*PageSize, true)
		bases = append(bases, r.Base())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if as.Lookup(bases[i%len(bases)]+123*8) == nil {
			b.Fatal("lookup failed")
		}
	}
}
