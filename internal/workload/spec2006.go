package workload

// SPEC CPU2006 (C/C++) profiles, one per benchmark in Figures 7-16. The
// parameters encode each benchmark's published allocation character —
// allocation rate, object sizes, live-heap size and lifetime structure — at
// simulator scale (heaps of MiBs rather than GiBs, budgets of hundreds of
// thousands of operations rather than trillions of instructions). The axis
// that matters for the paper's results is preserved:
//
//   - xalancbmk is by far the most allocation-intensive (the paper's worst
//     case at 73% slowdown), followed by omnetpp and perlbench;
//   - gcc mixes medium/large objects with phase-structured (FIFO) lifetimes
//     and bursty frees, giving it the paper's worst memory overhead;
//   - sphinx3, dealII and astar allocate at moderate rates;
//   - the rest (bzip2, lbm, libquantum, namd, sjeng, hmmer, h264ref, gobmk,
//     mcf, milc, povray, soplex) allocate orders of magnitude less often
//     than they compute, so any scheme's overhead on them is ~zero.
//
// Allocation densities (AllocBP, basis points of the op budget) were
// calibrated so the MineSweeper slowdown per benchmark approximates the
// paper's Figure 9 at simulator scale; see EXPERIMENTS.md for the
// methodology and the paper-vs-measured comparison.
//
// Lifetime mixes matter for FFMalloc: profiles with random/mixed lifetimes
// scatter survivors across pages, reproducing its fragmentation blow-up
// (perlbench, omnetpp, xalancbmk, sphinx3 — the four the paper names in
// §5.2 as "constantly increasing" under FFMalloc).

const specOps = 600_000

var smallMix = SizeDist{{16, 64, 50}, {64, 256, 35}, {256, 1024, 15}}
var tinyMix = SizeDist{{16, 48, 70}, {48, 160, 30}}
var mediumMix = SizeDist{{64, 512, 40}, {512, 4096, 40}, {4096, 16384, 20}}
var largeMix = SizeDist{{1024, 8192, 40}, {8192, 65536, 40}, {65536, 262144, 20}}

// computeBound returns a profile for benchmarks that barely allocate: a
// fixed working set built at startup with a trickle of churn.
func computeBound(name string, live int, sizes SizeDist) Profile {
	return Profile{
		Name: name, Suite: "spec2006", Threads: 1, Ops: specOps,
		AllocBP: 20, LiveTarget: live, Sizes: sizes,
		Lifetime:   Lifetime{Newest: 60, Oldest: 20, Random: 20},
		PointerPct: 30, InitWords: 8, WorkTouches: 8,
	}
}

// Spec2006 returns the 19 C/C++ SPEC CPU2006 profiles.
func Spec2006() []Profile {
	return []Profile{
		{
			Name: "astar", Suite: "spec2006", Threads: 1, Ops: specOps,
			AllocBP: 100, LiveTarget: 30000, Sizes: smallMix,
			Lifetime:   Lifetime{Newest: 50, Oldest: 30, Random: 20},
			PointerPct: 50, InitWords: 8, WorkTouches: 8,
		},
		computeBound("bzip2", 300, largeMix),
		{
			Name: "dealII", Suite: "spec2006", Threads: 1, Ops: specOps,
			AllocBP: 250, LiveTarget: 40000, Sizes: smallMix,
			Lifetime:   Lifetime{Newest: 60, Oldest: 20, Random: 20},
			PointerPct: 60, InitWords: 8, WorkTouches: 6,
		},
		{
			// Medium/large objects, phase-structured (FIFO-ish) lifetimes
			// and bursty frees: the memory-overhead worst case.
			Name: "gcc", Suite: "spec2006", Threads: 1, Ops: specOps,
			AllocBP: 500, LiveTarget: 14000, Sizes: mediumMix,
			Lifetime:   Lifetime{Newest: 25, Oldest: 55, Random: 20},
			PointerPct: 55, InitWords: 16, WorkTouches: 4,
		},
		computeBound("gobmk", 500, smallMix),
		computeBound("h264ref", 300, mediumMix),
		computeBound("hmmer", 200, mediumMix),
		computeBound("lbm", 120, largeMix),
		computeBound("libquantum", 150, largeMix),
		{
			// Big live heap, tiny allocation rate.
			Name: "mcf", Suite: "spec2006", Threads: 1, Ops: specOps,
			AllocBP: 50, LiveTarget: 4000, Sizes: largeMix,
			Lifetime:   Lifetime{Newest: 30, Oldest: 40, Random: 30},
			PointerPct: 40, InitWords: 16, WorkTouches: 12,
		},
		{
			Name: "milc", Suite: "spec2006", Threads: 1, Ops: specOps,
			AllocBP: 100, LiveTarget: 800, Sizes: largeMix,
			Lifetime:   Lifetime{Newest: 40, Oldest: 40, Random: 20},
			PointerPct: 20, InitWords: 16, WorkTouches: 10,
		},
		computeBound("namd", 150, mediumMix),
		{
			// High allocation rate over a small heap of tiny objects: the
			// sweep-count champion (1075 sweeps in the paper).
			Name: "omnetpp", Suite: "spec2006", Threads: 1, Ops: specOps,
			AllocBP: 3000, LiveTarget: 60000, Sizes: tinyMix,
			Lifetime:   Lifetime{Newest: 45, Oldest: 25, Random: 30},
			PointerPct: 60, InitWords: 4, WorkTouches: 4,
		},
		{
			Name: "perlbench", Suite: "spec2006", Threads: 1, Ops: specOps,
			AllocBP: 1100, LiveTarget: 50000, Sizes: smallMix,
			Lifetime:   Lifetime{Newest: 40, Oldest: 25, Random: 35},
			PointerPct: 65, InitWords: 8, WorkTouches: 5,
		},
		computeBound("povray", 400, smallMix),
		computeBound("sjeng", 50, mediumMix),
		{
			Name: "soplex", Suite: "spec2006", Threads: 1, Ops: specOps,
			AllocBP: 80, LiveTarget: 1500, Sizes: largeMix,
			Lifetime:   Lifetime{Newest: 40, Oldest: 35, Random: 25},
			PointerPct: 30, InitWords: 16, WorkTouches: 10,
		},
		{
			Name: "sphinx3", Suite: "spec2006", Threads: 1, Ops: specOps,
			AllocBP: 300, LiveTarget: 35000, Sizes: smallMix,
			Lifetime:   Lifetime{Newest: 35, Oldest: 30, Random: 35},
			PointerPct: 45, InitWords: 8, WorkTouches: 6,
		},
		{
			// The paper's worst case for run time: very high allocation
			// rate of tiny objects with enough churn to defeat caches.
			Name: "xalancbmk", Suite: "spec2006", Threads: 1, Ops: specOps,
			AllocBP: 9500, LiveTarget: 120000, Sizes: tinyMix,
			Lifetime:   Lifetime{Newest: 35, Oldest: 30, Random: 35},
			PointerPct: 65, InitWords: 4, WorkTouches: 2,
		},
	}
}

// Spec2006Names returns the benchmark names in figure order.
func Spec2006Names() []string {
	ps := Spec2006()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// FindProfile returns the named profile from any suite.
func FindProfile(name string) (Profile, bool) {
	for _, set := range [][]Profile{Spec2006(), Spec2017(), MimallocBench(), Stress()} {
		for _, p := range set {
			if p.Name == name {
				return p, true
			}
		}
	}
	return Profile{}, false
}

// AllProfiles returns every profile in every suite.
func AllProfiles() []Profile {
	var out []Profile
	out = append(out, Spec2006()...)
	out = append(out, Spec2017()...)
	out = append(out, MimallocBench()...)
	out = append(out, Stress()...)
	return out
}
