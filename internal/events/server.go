package events

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"minesweeper/internal/telemetry"
)

// Server exposes a recorder (and optionally the telemetry registry) over
// HTTP for live watching: msrun -events-addr serves it, msstat -watch polls
// it. Endpoints:
//
//	GET /events/state?after=N  incremental JSON: events with Nanos > N plus
//	                           a live summary (pressure level, in-flight
//	                           sweep phase, recent pauses)
//	GET /events/dump           the current window as a binary flight dump
//	GET /events/trace.json     the current window as a Chrome trace
type Server struct {
	rec *Recorder
	reg *telemetry.Registry // may be nil
}

// NewServer returns a server over rec; reg may be nil (no governor/sweep
// summary in states).
func NewServer(rec *Recorder, reg *telemetry.Registry) *Server {
	return &Server{rec: rec, reg: reg}
}

// PauseInfo is one recent mutator-visible pause (STW window or §5.7
// allocation pause) in a State.
type PauseInfo struct {
	Kind    string `json:"kind"` // "stw" or "pause"
	AtNanos uint64 `json:"at_ns"`
	Nanos   uint64 `json:"ns"`
}

// RingBatch is one ring's incremental events in a State.
type RingBatch struct {
	Name   string  `json:"name"`
	Events []Event `json:"events"`
}

// State is the live-view payload msstat -watch renders.
type State struct {
	NowNanos uint64 `json:"now_ns"`
	// Level is the governor's pressure level ("" when ungoverned).
	Level string `json:"level,omitempty"`
	// SweepsTotal mirrors the telemetry sweep counter (0 without a
	// registry).
	SweepsTotal uint64 `json:"sweeps_total"`
	// Phase is the sweep phase currently open on the sweeper ring (""
	// when idle).
	Phase string `json:"phase,omitempty"`
	// RecentPauses lists the last STW windows and allocation pauses in
	// the flight window, newest last.
	RecentPauses []PauseInfo `json:"recent_pauses,omitempty"`
	// Trips counts accepted flight-recorder dumps so far.
	Trips uint64 `json:"trips"`
	// Batches carries each ring's events after the caller's cutoff.
	Batches []RingBatch `json:"batches,omitempty"`
}

// StateSince assembles the live view: events with Nanos > after, plus the
// summary derived from the last window.
func (s *Server) StateSince(after uint64) State {
	st := State{NowNanos: s.rec.Now(), Trips: s.rec.Trips()}
	if s.reg != nil {
		st.SweepsTotal = s.reg.Ring().Total()
		if g := s.reg.Governor(); g != nil {
			st.Level = g.Level().String()
		}
	}
	window := uint64(0)
	if w := uint64(s.rec.Window()); st.NowNanos > w {
		window = st.NowNanos - w
	}
	for _, rg := range s.rec.Rings() {
		ev := rg.Snapshot(nil, window)
		// Pause summary and in-flight phase come from the whole window;
		// the batch returned to the caller is only what is new to them.
		var openSpans []Event
		for _, e := range ev {
			switch {
			case spanOpen(e.Kind) != 0:
				openSpans = append(openSpans, e)
			case isEnd(e.Kind):
				if n := len(openSpans); n > 0 && spanOpen(openSpans[n-1].Kind) == e.Kind {
					b := openSpans[n-1]
					openSpans = openSpans[:n-1]
					switch e.Kind {
					case KindStwEnd:
						st.RecentPauses = append(st.RecentPauses,
							PauseInfo{Kind: "stw", AtNanos: b.Nanos, Nanos: e.Nanos - b.Nanos})
					case KindPauseEnd:
						st.RecentPauses = append(st.RecentPauses,
							PauseInfo{Kind: "pause", AtNanos: b.Nanos, Nanos: e.Arg0})
					}
				}
			}
		}
		if rg.Name() == "sweeper" {
			for _, e := range openSpans {
				if e.Kind != KindPauseBegin {
					st.Phase = spanName(e.Kind)
				}
			}
		}
		if after < window {
			after = window
		}
		batch := make([]Event, 0, len(ev))
		for _, e := range ev {
			if e.Nanos > after {
				batch = append(batch, e)
			}
		}
		if len(batch) > 0 {
			st.Batches = append(st.Batches, RingBatch{Name: rg.Name(), Events: batch})
		}
	}
	sortPauses(st.RecentPauses)
	const keep = 16
	if len(st.RecentPauses) > keep {
		st.RecentPauses = st.RecentPauses[len(st.RecentPauses)-keep:]
	}
	return st
}

func sortPauses(ps []PauseInfo) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].AtNanos < ps[j-1].AtNanos; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// Handler returns the HTTP mux serving the endpoints above.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/events/state", func(w http.ResponseWriter, r *http.Request) {
		after := uint64(0)
		if v := r.URL.Query().Get("after"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "bad after", http.StatusBadRequest)
				return
			}
			after = n
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(s.StateSince(after)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/events/dump", func(w http.ResponseWriter, r *http.Request) {
		d := s.rec.Capture(TripManual)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=flight-%d.msev", time.Now().Unix()))
		if _, err := d.WriteTo(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/events/trace.json", func(w http.ResponseWriter, r *http.Request) {
		d := s.rec.Capture(TripManual)
		w.Header().Set("Content-Type", "application/json")
		if err := WriteChromeTrace(w, d); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}
