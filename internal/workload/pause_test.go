package workload

import (
	"os"
	"strconv"
	"testing"

	"minesweeper/internal/core"
	"minesweeper/internal/schemes"
	"minesweeper/internal/telemetry"
)

// defaultPauseBoundNs is the default p99.9 stop-the-world bound for the pause
// gate: 2^19 ns. The stw histogram's power-of-two buckets report a quantile
// as its bucket's upper bound, so a reported p99.9 <= 2^19 ns proves the true
// p99.9 is strictly under one millisecond with room to spare.
const defaultPauseBoundNs = 524288

// TestPauseTailBound is the acceptance gate for the pipelined sweep: run the
// multi-threaded pressure ramp under the mostly-concurrent scheme with a real
// stop-the-world (the simulator world), and require the p99.9 STW pause —
// from the exact, unsampled stw histogram — to stay under the bound. The
// bound comes from MS_PAUSE_BOUND_NS (default 2^19 ns ≈ 0.52 ms); the test is
// gated behind MS_PAUSE_GATE=1 (see Makefile's pause-gate target) because it
// runs the full-scale profile.
func TestPauseTailBound(t *testing.T) {
	if os.Getenv("MS_PAUSE_GATE") == "" {
		t.Skip("set MS_PAUSE_GATE=1 to run the pause-tail experiment (make pause-gate)")
	}
	bound := uint64(defaultPauseBoundNs)
	if s := os.Getenv("MS_PAUSE_BOUND_NS"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil || v == 0 {
			t.Fatalf("MS_PAUSE_BOUND_NS=%q: want a positive nanosecond count", s)
		}
		bound = v
	}
	prof, ok := FindProfile("pressure-mt")
	if !ok {
		t.Fatal("pressure-mt profile missing")
	}

	cfg := core.DefaultConfig()
	cfg.Mode = core.MostlyConcurrent
	reg := telemetry.NewRegistry(0)
	res, err := Run(prof, schemes.Custom("minesweeper-mostly", cfg), Options{Seed: 42, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Sweeps == 0 {
		t.Fatal("pressure run completed without a single sweep; nothing to gate on")
	}

	var stw *telemetry.HistogramSnapshot
	snap := reg.Snapshot()
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == telemetry.HistStw {
			stw = &snap.Histograms[i]
		}
	}
	if stw == nil || stw.Count == 0 {
		t.Fatal("no STW windows recorded; the mostly-concurrent path did not run")
	}
	t.Logf("stw pauses: n=%d mean=%.0fns p50<%dns p99<%dns p99.9<%dns max<%dns (bound %dns)",
		stw.Count, stw.Mean(), stw.P50, stw.P99, stw.P999, stw.Max(), bound)
	if stw.P999 > bound {
		t.Errorf("p99.9 STW pause <%d ns exceeds the bound %d ns", stw.P999, bound)
	}
}
