package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// goldenSnapshot builds a fully deterministic snapshot exercising the wide
// columns that historically broke alignment: a 9-digit kz-pg figure, a
// 12-digit gauge, and the captured-at header.
func goldenSnapshot() Snapshot {
	h := NewHistogram("malloc_ns", "ns", 1)
	for i := 0; i < 100; i++ {
		h.Record(100) // bucket "<128ns"
	}
	h.Record(5000) // stretches p99.9/max to "<8.192µs"
	return Snapshot{
		CapturedAtNanos: 2_500_000_000,
		SweepSeq:        7,
		SweepsTotal:     7,
		Sweeps: []SweepRecord{{
			Seq: 7, Trigger: TriggerThreshold,
			TotalNanos: 12_345_000, MarkNanos: 8_000_000, DirtyNanos: 150_000,
			RecycleNanos: 3_000_000, PurgeNanos: 1_000_000,
			PagesScanned: 16_853, DirtyPages: 12, PagesKnownZero: 987_654_321,
			BytesZeroSkipped: 68_074_624,
			EntriesLocked:    12_345_678, Released: 12_000_000, Retained: 345_678,
			Workers: 6, ShardsSwept: 8,
		}},
		Histograms:   []HistogramSnapshot{h.Snapshot()},
		Gauges:       []GaugeValue{{Name: "shard_occupancy_bp", Value: 123_456_789_012}},
		SamplePeriod: 256,
	}
}

// TestWriteTextGolden pins the exact rendered form of a snapshot. Any change
// to column layout, width computation, number formatting or the header lines
// shows up here as a byte-level diff.
func TestWriteTextGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenSnapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if got != goldenText {
		t.Errorf("WriteText drifted from golden output.\ngot:\n%s\nwant:\n%s", got, goldenText)
	}
}

// TestWriteTextNoTrailingSpace guards the table renderer contract: the last
// column is unpadded, so no rendered line may end in whitespace even when an
// earlier row's final cell is wider.
func TestWriteTextNoTrailingSpace(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenSnapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(buf.String(), "\n") {
		if line != strings.TrimRight(line, " \t") {
			t.Errorf("line %d has trailing whitespace: %q", i+1, line)
		}
	}
}

const goldenText = `captured: +2.5s (sweep seq 7)
sweeps observed: 7 (showing last 1)
sweep  trigger    total     mark  dirty   recycle  purge  pages  dirty-pg  kz-pg   zero-skip  locked  released  retained  workers  shards
-----  ---------  --------  ----  ------  -------  -----  -----  --------  ------  ---------  ------  --------  --------  -------  ------
7      threshold  12.345ms  8ms   150µs   3ms      1ms    16.9k  12        987.7M  64.9 MiB   12.3M   12.0M     345.7k    6        8

malloc/free latencies sampled 1 in 256 ops

histogram  count  mean   p50     p90     p99     p99.9   max
---------  -----  -----  ------  ------  ------  ------  -----
malloc_ns  101    148ns  <128ns  <128ns  <128ns  <128ns  <8µs

gauge               value
------------------  ------------
shard_occupancy_bp  123456789012
`
