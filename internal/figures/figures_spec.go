package figures

import (
	"fmt"
	"io"

	"minesweeper/internal/metrics"
	"minesweeper/internal/schemes"
	"minesweeper/internal/workload"
)

// specGrid runs every SPEC CPU2006 profile under the given schemes and
// returns per-benchmark comparisons plus per-scheme geomeans.
func (r *Runner) specGrid(kinds []schemes.Kind) (map[string]map[string]workload.Comparison, error) {
	grid := make(map[string]map[string]workload.Comparison)
	for _, prof := range workload.Spec2006() {
		grid[prof.Name] = make(map[string]workload.Comparison)
		for _, kind := range kinds {
			c, err := r.ratios(prof, schemes.New(kind))
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", prof.Name, kind, err)
			}
			grid[prof.Name][kind.String()] = c
		}
	}
	return grid, nil
}

func geomeanOf(grid map[string]map[string]workload.Comparison, scheme string, get func(workload.Comparison) float64) float64 {
	var xs []float64
	for _, row := range grid {
		if c, ok := row[scheme]; ok {
			xs = append(xs, get(c))
		}
	}
	return metrics.Geomean(xs)
}

var reRunKinds = []schemes.Kind{schemes.MarkUs, schemes.FFMalloc, schemes.MineSweeper}

// allComparators is every scheme Figure 7/10 compares: the paper re-ran
// MarkUs and FFMalloc and cited the other four from their publications; this
// reproduction implements and measures all of them.
var allComparators = []schemes.Kind{
	schemes.Oscar, schemes.DangSan, schemes.PSweeper, schemes.CRCount,
	schemes.MarkUs, schemes.FFMalloc, schemes.MineSweeper,
}

// Fig07Slowdown renders Figure 7: SPEC CPU2006 slowdown for all seven
// systems. The paper re-ran MarkUs and FFMalloc and cited Oscar, DangSan,
// pSweeper and CRCount from their publications; this reproduction implements
// and measures every one of them, and prints the paper's published geomeans
// alongside for calibration.
func Fig07Slowdown(w io.Writer, r *Runner) error {
	grid, err := r.specGrid(allComparators)
	if err != nil {
		return err
	}
	fprintf(w, "Figure 7: slowdown for SPEC CPU2006, all systems measured\n\n")
	header := []string{"benchmark"}
	for _, k := range allComparators {
		header = append(header, k.String())
	}
	tb := metrics.NewTable(header...)
	for _, name := range workload.Spec2006Names() {
		row := []string{name}
		for _, k := range allComparators {
			row = append(row, metrics.FmtRatio(grid[name][k.String()].Slowdown))
		}
		tb.AddRow(row...)
	}
	gm := []string{"geomean"}
	for _, k := range allComparators {
		gm = append(gm, metrics.FmtRatio(geomeanOf(grid, k.String(), slow)))
	}
	tb.AddRow(gm...)
	fprintf(w, "%s\n", tb)

	fprintf(w, "Published geomeans (paper Figure 7 and the cited publications):\n\n")
	lt := metrics.NewTable("scheme", "slowdown", "memory", "note")
	for _, l := range metrics.PaperLiterature {
		lt.AddRow(l.Scheme, metrics.FmtRatio(l.Slowdown), metrics.FmtRatio(l.Memory), l.Note)
	}
	fprintf(w, "%s", lt)
	return nil
}

func slow(c workload.Comparison) float64    { return c.Slowdown }
func avgMem(c workload.Comparison) float64  { return c.AvgMem }
func peakMem(c workload.Comparison) float64 { return c.PeakMem }
func cpuUtil(c workload.Comparison) float64 { return c.CPUUtil }

// Fig09SlowdownZoom renders Figure 9: the MarkUs/FFMalloc/MineSweeper zoom of
// Figure 7.
func Fig09SlowdownZoom(w io.Writer, r *Runner) error {
	grid, err := r.specGrid(reRunKinds)
	if err != nil {
		return err
	}
	fprintf(w, "Figure 9: slowdown versus MarkUs and FFMalloc (zoom of Figure 7)\n\n")
	tb := metrics.NewTable("benchmark", "markus", "ffmalloc", "minesweeper")
	for _, name := range workload.Spec2006Names() {
		row := grid[name]
		tb.AddRow(name,
			metrics.FmtRatio(row["markus"].Slowdown),
			metrics.FmtRatio(row["ffmalloc"].Slowdown),
			metrics.FmtRatio(row["minesweeper"].Slowdown))
	}
	tb.AddRow("geomean",
		metrics.FmtRatio(geomeanOf(grid, "markus", slow)),
		metrics.FmtRatio(geomeanOf(grid, "ffmalloc", slow)),
		metrics.FmtRatio(geomeanOf(grid, "minesweeper", slow)))
	fprintf(w, "%s\n", tb)
	fprintf(w, "Paper geomeans: MarkUs 1.155, FFMalloc 1.035, MineSweeper 1.054.\n")
	fprintf(w, "Paper worst cases: MarkUs 2.97x and MineSweeper 1.73x, both on xalancbmk.\n")
	return nil
}

// Fig10Memory renders Figure 10: average memory overhead for SPEC CPU2006,
// all seven systems measured.
func Fig10Memory(w io.Writer, r *Runner) error {
	grid, err := r.specGrid(allComparators)
	if err != nil {
		return err
	}
	fprintf(w, "Figure 10: average memory overhead for SPEC CPU2006, all systems measured\n\n")
	header := []string{"benchmark"}
	for _, k := range allComparators {
		header = append(header, k.String())
	}
	tb := metrics.NewTable(header...)
	for _, name := range workload.Spec2006Names() {
		row := []string{name}
		for _, k := range allComparators {
			row = append(row, metrics.FmtRatio(grid[name][k.String()].AvgMem))
		}
		tb.AddRow(row...)
	}
	gm := []string{"geomean"}
	for _, k := range allComparators {
		gm = append(gm, metrics.FmtRatio(geomeanOf(grid, k.String(), avgMem)))
	}
	tb.AddRow(gm...)
	fprintf(w, "%s\n", tb)
	fprintf(w, "Paper: FFMalloc averages 3.44x with a 11.7x worst case; MarkUs 1.123;\n")
	fprintf(w, "MineSweeper 1.111; DangSan's published memory is 2.4x (135x worst case).\n")
	return nil
}

// Fig11AvgPeak renders Figure 11: MineSweeper's average and peak memory
// overhead per benchmark.
func Fig11AvgPeak(w io.Writer, r *Runner) error {
	grid, err := r.specGrid([]schemes.Kind{schemes.MineSweeper})
	if err != nil {
		return err
	}
	fprintf(w, "Figure 11: MineSweeper memory overhead, average and peak\n\n")
	tb := metrics.NewTable("benchmark", "average", "peak")
	for _, name := range workload.Spec2006Names() {
		c := grid[name]["minesweeper"]
		tb.AddRow(name, metrics.FmtRatio(c.AvgMem), metrics.FmtRatio(c.PeakMem))
	}
	tb.AddRow("geomean",
		metrics.FmtRatio(geomeanOf(grid, "minesweeper", avgMem)),
		metrics.FmtRatio(geomeanOf(grid, "minesweeper", peakMem)))
	fprintf(w, "%s\n", tb)
	fprintf(w, "Paper geomeans: 1.111 average, 1.177 peak (worst case gcc: 1.627 avg, 1.934 peak).\n")
	return nil
}

// Fig12CPU renders Figure 12: additional CPU utilisation from the sweeper
// threads.
func Fig12CPU(w io.Writer, r *Runner) error {
	grid, err := r.specGrid([]schemes.Kind{schemes.MineSweeper})
	if err != nil {
		return err
	}
	fprintf(w, "Figure 12: additional CPU utilisation (1.0 = no extra CPU)\n\n")
	tb := metrics.NewTable("benchmark", "cpu utilisation")
	for _, name := range workload.Spec2006Names() {
		tb.AddRow(name, metrics.FmtRatio(grid[name]["minesweeper"].CPUUtil))
	}
	tb.AddRow("geomean", metrics.FmtRatio(geomeanOf(grid, "minesweeper", cpuUtil)))
	fprintf(w, "%s\n", tb)
	fprintf(w, "Paper: geomean 1.096, worst case 2.29 (xalancbmk).\n")
	return nil
}

// Fig13MostlyConcurrent renders Figure 13: fully vs mostly concurrent
// slowdown.
func Fig13MostlyConcurrent(w io.Writer, r *Runner) error {
	grid, err := r.specGrid([]schemes.Kind{schemes.MineSweeper, schemes.MineSweeperMostly})
	if err != nil {
		return err
	}
	fprintf(w, "Figure 13: fully concurrent vs mostly concurrent (stop-the-world) slowdown\n\n")
	tb := metrics.NewTable("benchmark", "fully concurrent", "mostly concurrent")
	for _, name := range workload.Spec2006Names() {
		row := grid[name]
		tb.AddRow(name,
			metrics.FmtRatio(row["minesweeper"].Slowdown),
			metrics.FmtRatio(row["minesweeper-mostly"].Slowdown))
	}
	tb.AddRow("geomean",
		metrics.FmtRatio(geomeanOf(grid, "minesweeper", slow)),
		metrics.FmtRatio(geomeanOf(grid, "minesweeper-mostly", slow)))
	fprintf(w, "%s\n", tb)
	fprintf(w, "Paper: 1.054 fully vs 1.082 mostly concurrent (memory 1.111 vs 1.117).\n")
	return nil
}

// Fig14SweepCounts renders Figure 14: sweeps triggered per benchmark.
// Absolute counts scale with the simulator's compressed run length; the
// ordering (omnetpp and xalancbmk far ahead) is the figure's content.
func Fig14SweepCounts(w io.Writer, r *Runner) error {
	grid, err := r.specGrid([]schemes.Kind{schemes.MineSweeper})
	if err != nil {
		return err
	}
	fprintf(w, "Figure 14: number of sweeps triggered (fully concurrent version)\n\n")
	tb := metrics.NewTable("benchmark", "sweeps", "failed frees", "bytes swept (MiB)")
	for _, name := range workload.Spec2006Names() {
		st := grid[name]["minesweeper"].Result.Stats
		tb.AddRow(name, fmt.Sprint(st.Sweeps), fmt.Sprint(st.FailedFrees),
			fmt.Sprintf("%.0f", float64(st.BytesSwept)/(1<<20)))
	}
	fprintf(w, "%s\n", tb)
	fprintf(w, "Paper: omnetpp 1075 sweeps and xalancbmk 654 lead by an order of magnitude;\n")
	fprintf(w, "counts here are proportionally smaller at simulator scale.\n")
	return nil
}
