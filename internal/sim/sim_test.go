package sim

import (
	"sync"
	"testing"
	"time"

	"minesweeper/internal/jemalloc"
	"minesweeper/internal/mem"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical values", same)
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %f", f)
		}
		if v := r.Range(5, 9); v < 5 || v > 9 {
			t.Fatalf("Range(5,9) = %d", v)
		}
	}
}

func TestRandSplitIndependent(t *testing.T) {
	r := NewRand(1)
	s := r.Split()
	if r.Uint64() == s.Uint64() {
		t.Error("split stream mirrors parent")
	}
}

func newProgram(t testing.TB) (*Program, *Thread) {
	t.Helper()
	as := mem.NewAddressSpace()
	heap := jemalloc.New(as, jemalloc.DefaultConfig())
	p, err := NewProgram(as, heap, NewWorld())
	if err != nil {
		t.Fatal(err)
	}
	th, err := p.NewThread(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(th.Close)
	return p, th
}

func TestThreadMallocFreeStore(t *testing.T) {
	p, th := newProgram(t)
	a, err := th.Malloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Store(a, 0x1234); err != nil {
		t.Fatal(err)
	}
	v, err := th.Load(a)
	if err != nil || v != 0x1234 {
		t.Fatalf("Load = %v, %v", v, err)
	}
	if err := th.Free(a); err != nil {
		t.Fatal(err)
	}
	if p.Ops() == 0 {
		t.Error("ops not counted")
	}
}

func TestStackAndGlobalSlots(t *testing.T) {
	p, th := newProgram(t)
	if err := th.Store(th.StackSlot(5), 99); err != nil {
		t.Fatal(err)
	}
	if err := th.Store(p.GlobalSlot(7), 42); err != nil {
		t.Fatal(err)
	}
	if v, _ := th.Load(th.StackSlot(5)); v != 99 {
		t.Errorf("stack slot = %d, want 99", v)
	}
	if v, _ := th.Load(p.GlobalSlot(7)); v != 42 {
		t.Errorf("global slot = %d, want 42", v)
	}
	if th.StackSlots() != StackSize/8 || p.GlobalSlots() != GlobalsSize/8 {
		t.Error("slot counts wrong")
	}
}

func TestUAFAccessCounted(t *testing.T) {
	p, th := newProgram(t)
	_, err := th.Load(mem.HeapBase + 0x10) // unmapped
	if err == nil {
		t.Fatal("load of unmapped memory succeeded")
	}
	if p.UAFAccesses() != 1 {
		t.Errorf("UAFAccesses = %d, want 1", p.UAFAccesses())
	}
}

func TestWorldStopWaitsForSafepoint(t *testing.T) {
	w := NewWorld()
	w.Register()
	stopped := make(chan struct{})
	go func() {
		w.Stop()
		close(stopped)
	}()
	// Stop cannot complete until the mutator reaches a safepoint.
	select {
	case <-stopped:
		t.Fatal("Stop returned before safepoint")
	case <-time.After(20 * time.Millisecond):
	}
	resumed := make(chan struct{})
	go func() {
		w.Safepoint() // parks until Start
		close(resumed)
	}()
	select {
	case <-stopped:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop never returned")
	}
	select {
	case <-resumed:
		t.Fatal("mutator resumed before Start")
	case <-time.After(20 * time.Millisecond):
	}
	w.Start()
	select {
	case <-resumed:
	case <-time.After(2 * time.Second):
		t.Fatal("mutator never resumed")
	}
	w.Unregister()
}

func TestWorldQuiescentThreadDoesNotBlockStop(t *testing.T) {
	w := NewWorld()
	w.Register()
	w.BeginQuiescent() // thread is blocked elsewhere
	done := make(chan struct{})
	go func() {
		w.Stop()
		w.Start()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop blocked on quiescent thread")
	}
	w.EndQuiescent()
	w.Unregister()
}

func TestWorldManyThreads(t *testing.T) {
	w := NewWorld()
	const n = 8
	var stop = make(chan struct{})
	var wg sync.WaitGroup
	counters := make([]uint64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		w.Register()
		go func(i int) {
			defer wg.Done()
			defer w.Unregister()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w.Safepoint()
				counters[i]++
			}
		}(i)
	}
	for round := 0; round < 20; round++ {
		w.Stop()
		// While stopped, counters must not advance.
		snap := make([]uint64, n)
		copy(snap, counters)
		time.Sleep(time.Millisecond)
		for i := range counters {
			if counters[i] != snap[i] {
				t.Fatalf("thread %d advanced during stop", i)
			}
		}
		w.Start()
		time.Sleep(200 * time.Microsecond)
	}
	close(stop)
	w.Start() // in case some are parked
	wg.Wait()
}

func TestMultipleThreads(t *testing.T) {
	as := mem.NewAddressSpace()
	heap := jemalloc.New(as, jemalloc.DefaultConfig())
	p, err := NewProgram(as, heap, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		th, err := p.NewThread(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(th *Thread) {
			defer wg.Done()
			defer th.Close()
			var live []uint64
			for j := 0; j < 2000; j++ {
				a, err := th.Malloc(th.Rand().Range(8, 512))
				if err != nil {
					t.Error(err)
					return
				}
				live = append(live, a)
				if len(live) > 32 {
					idx := th.Rand().Intn(len(live))
					if err := th.Free(live[idx]); err != nil {
						t.Error(err)
						return
					}
					live[idx] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
			for _, a := range live {
				_ = th.Free(a)
			}
		}(th)
	}
	wg.Wait()
	if heap.AllocatedBytes() != 0 {
		t.Error("leaked allocations")
	}
}

func TestThreadByteAccess(t *testing.T) {
	_, th := newProgram(t)
	a, err := th.Malloc(128)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello, simulated world")
	if err := th.StoreBytes(a+1, msg); err != nil {
		t.Fatal(err)
	}
	got, err := th.LoadBytes(a+1, uint64(len(msg)))
	if err != nil || string(got) != string(msg) {
		t.Fatalf("LoadBytes = %q, %v", got, err)
	}
	if err := th.Store8(a, 0x7F); err != nil {
		t.Fatal(err)
	}
	b, err := th.Load8(a)
	if err != nil || b != 0x7F {
		t.Fatalf("Load8 = %#x, %v", b, err)
	}
}
