package core

import (
	"testing"
	"time"

	"minesweeper/internal/events"
	"minesweeper/internal/mem"
	"minesweeper/internal/telemetry"
)

// TestEventsRealSweepNests attaches a flight recorder, runs a real sweep
// over real frees, and checks the emitted stream: the sweeper ring holds a
// correctly nested sweep span (ValidateSpans, the same check the Chrome
// exporter's consumers rely on) with the expected begin/end payloads, and
// the mutator ring saw its drains and sampled ops.
func TestEventsRealSweepNests(t *testing.T) {
	cfg := testConfig()
	cfg.Telemetry = telemetry.NewRegistry(16)
	cfg.Telemetry.SetSamplePeriod(1) // sample every op: alloc/free events for all
	h, tid := newTestHeap(t, cfg)

	rec := events.NewRecorder(256, time.Minute)
	h.SetEvents(rec)

	var addrs []uint64
	for i := 0; i < 40; i++ {
		a, err := h.Malloc(tid, 128)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		if err := h.Free(tid, a); err != nil {
			t.Fatal(err)
		}
	}
	h.Sweep()

	d := rec.Capture(events.TripManual)
	if err := events.ValidateSpans(d); err != nil {
		t.Fatalf("real sweep emitted malformed spans: %v", err)
	}

	counts := map[events.Kind]int{}
	var sweepBegin, sweepEnd events.Event
	for _, tr := range d.Threads {
		for _, e := range tr.Events {
			counts[e.Kind]++
			switch e.Kind {
			case events.KindSweepBegin:
				sweepBegin = e
			case events.KindSweepEnd:
				sweepEnd = e
			}
		}
	}
	if counts[events.KindSweepBegin] != 1 || counts[events.KindSweepEnd] != 1 {
		t.Fatalf("sweep span count = %d/%d, want 1/1", counts[events.KindSweepBegin], counts[events.KindSweepEnd])
	}
	if sweepBegin.Arg1 != 40 {
		t.Errorf("SweepBegin entries locked = %d, want 40", sweepBegin.Arg1)
	}
	if sweepEnd.Arg0 != 40 || sweepEnd.Arg1 != 0 {
		t.Errorf("SweepEnd released/retained = %d/%d, want 40/0", sweepEnd.Arg0, sweepEnd.Arg1)
	}
	if counts[events.KindMarkBegin] != 1 || counts[events.KindMarkEnd] != 1 {
		t.Errorf("mark span count = %d/%d, want 1/1", counts[events.KindMarkBegin], counts[events.KindMarkEnd])
	}
	if counts[events.KindRecycleBegin] != 1 || counts[events.KindPurgeBegin] != 1 {
		t.Errorf("recycle/purge begins = %d/%d, want 1/1", counts[events.KindRecycleBegin], counts[events.KindPurgeBegin])
	}
	if counts[events.KindAlloc] != 40 || counts[events.KindFree] != 40 {
		t.Errorf("sampled alloc/free = %d/%d, want 40/40 at period 1", counts[events.KindAlloc], counts[events.KindFree])
	}
	if counts[events.KindDrain] == 0 {
		t.Error("no drain events (BufferCap=1 drains on every free)")
	}

	// Detach: hot paths must stop emitting.
	h.SetEvents(nil)
	a, _ := h.Malloc(tid, 64)
	_ = h.Free(tid, a)
	h.Sweep()
	d2 := rec.Capture(events.TripManual)
	if d2.Len() != d.Len() {
		t.Errorf("events emitted after detach: %d -> %d", d.Len(), d2.Len())
	}
}

// dirtyOnStopWorld is a StopTheWorld stub whose Stop() dirties several pages
// — the writes land at the head of every stop-the-world window, so with a
// one-page budget every stop freezes an over-budget dirty set and the pause
// aborts until the retries run out.
type dirtyOnStopWorld struct {
	space *mem.AddressSpace
	addr  uint64
	pages uint64
}

func (w *dirtyOnStopWorld) Stop() {
	if w.addr == 0 {
		return
	}
	for i := uint64(0); i < w.pages; i++ {
		if err := w.space.Store64(w.addr+i*mem.PageSize, i+1); err != nil {
			panic(err)
		}
	}
}

func (w *dirtyOnStopWorld) Start() {}

// TestEventsStwSpansAndOverBudgetTrip drives the pipelined mark with a tiny
// re-scan budget against a world that re-dirties pages inside every stop, so
// both retries abort and the final STW window proceeds over budget — and
// checks the stw/abort events and the TripStwOverBudget flight dump.
func TestEventsStwSpansAndOverBudgetTrip(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = MostlyConcurrent
	cfg.ConcurrentMark = true
	cfg.RescanBudgetPages = 1
	w := &dirtyOnStopWorld{pages: 4}
	cfg.World = w
	h, tid := newTestHeap(t, cfg)
	w.space = h.space

	rec := events.NewRecorder(256, time.Minute)
	h.SetEvents(rec)
	var dumps []*events.Dump
	rec.SetSink(func(d *events.Dump) { dumps = append(dumps, d) })

	region, err := h.Malloc(tid, 4*mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	w.addr = region
	a, _ := h.Malloc(tid, 48)
	if err := h.Free(tid, a); err != nil {
		t.Fatal(err)
	}
	h.Sweep()

	d := rec.Capture(events.TripManual)
	if err := events.ValidateSpans(d); err != nil {
		t.Fatalf("pipelined sweep emitted malformed spans: %v", err)
	}
	counts := map[events.Kind]int{}
	for _, tr := range d.Threads {
		for _, e := range tr.Events {
			counts[e.Kind]++
		}
	}
	if counts[events.KindStwBegin] == 0 || counts[events.KindStwBegin] != counts[events.KindStwEnd] {
		t.Fatalf("stw begin/end = %d/%d", counts[events.KindStwBegin], counts[events.KindStwEnd])
	}
	if counts[events.KindStwAbort] != maxStopRetries {
		t.Errorf("stw aborts = %d, want %d (budget 1 forces every retry)", counts[events.KindStwAbort], maxStopRetries)
	}
	if counts[events.KindPrecleanBegin] != maxStopRetries {
		t.Errorf("abort-recovery preclean rounds = %d, want %d", counts[events.KindPrecleanBegin], maxStopRetries)
	}
	if len(dumps) != 1 || dumps[0].Cause != events.TripStwOverBudget {
		t.Fatalf("dumps = %+v, want one stw-over-budget dump", dumps)
	}
	if counts[events.KindTrip] != 1 {
		t.Errorf("trip events = %d, want 1", counts[events.KindTrip])
	}
}
