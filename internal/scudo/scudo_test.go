package scudo

import (
	"errors"
	"testing"

	"minesweeper/internal/alloc"
	"minesweeper/internal/core"
	"minesweeper/internal/mem"
)

func newBare(t testing.TB) *Allocator {
	t.Helper()
	return NewAllocator(mem.NewAddressSpace(), 42)
}

func TestPrimaryAllocFree(t *testing.T) {
	a := newBare(t)
	p, err := a.Malloc(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.UsableSize(p); got != 112 { // 100+1 -> class 112
		t.Errorf("UsableSize = %d, want 112", got)
	}
	if err := a.Free(0, p); err != nil {
		t.Fatal(err)
	}
	if a.AllocatedBytes() != 0 {
		t.Errorf("AllocatedBytes = %d, want 0", a.AllocatedBytes())
	}
}

func TestRandomisedReuse(t *testing.T) {
	// Free N chunks, then reallocate: the reuse order must not be strictly
	// LIFO (hardening). With 32 free chunks the chance of accidentally
	// matching LIFO order is negligible.
	a := newBare(t)
	var addrs []uint64
	for i := 0; i < 32; i++ {
		p, _ := a.Malloc(0, 64)
		addrs = append(addrs, p)
	}
	for _, p := range addrs {
		_ = a.Free(0, p)
	}
	lifo := true
	for i := 31; i >= 0; i-- {
		p, _ := a.Malloc(0, 64)
		if p != addrs[i] {
			lifo = false
			break
		}
	}
	if lifo {
		t.Error("free-list reuse is deterministic LIFO; expected randomised")
	}
}

func TestDoubleAndWildFreeDetected(t *testing.T) {
	a := newBare(t)
	p, _ := a.Malloc(0, 64)
	if err := a.Free(0, p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(0, p); !errors.Is(err, alloc.ErrDoubleFree) {
		t.Errorf("double free = %v, want ErrDoubleFree", err)
	}
	if err := a.Free(0, mem.HeapBase+96); !errors.Is(err, alloc.ErrInvalidFree) {
		t.Errorf("wild free = %v, want ErrInvalidFree", err)
	}
}

func TestSecondary(t *testing.T) {
	a := newBare(t)
	p, err := a.Malloc(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	al, ok := a.Lookup(p)
	if !ok || !al.Large {
		t.Fatalf("Lookup(large) = %+v, %v", al, ok)
	}
	if err := a.DecommitExtent(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(0, p); err != nil {
		t.Fatal(err)
	}
	// Cached extent is reused and recommitted.
	q, err := a.Malloc(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Logf("note: secondary extent not reused")
	}
	if err := a.space.Store64(q, 1); err != nil {
		t.Errorf("store to recommitted secondary: %v", err)
	}
}

func TestPurgeAllDecommitsSecondaryCache(t *testing.T) {
	a := newBare(t)
	p, _ := a.Malloc(0, 1<<20)
	_ = a.Free(0, p)
	rss := a.space.RSS()
	a.PurgeAll()
	if got := a.space.RSS(); got >= rss {
		t.Errorf("RSS = %d after purge, want < %d", got, rss)
	}
}

func TestMineSweeperOverScudo(t *testing.T) {
	// End-to-end: the quarantine layer's UAF guarantee holds over the
	// Scudo substrate.
	space := mem.NewAddressSpace()
	cfg := DefaultConfig()
	ccfg := core.DefaultConfig()
	ccfg.Mode = core.Synchronous
	ccfg.SweepThreshold = 1e18
	ccfg.PauseThreshold = 0
	ccfg.BufferCap = 1
	cfg.Core = &ccfg
	h, err := New(space, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Shutdown()
	tid := h.RegisterThread()

	g, _ := space.Map(mem.KindGlobals, mem.PageSize, true)
	p, _ := h.Malloc(tid, 64)
	_ = space.Store64(g.Base(), p) // dangling pointer
	if err := h.Free(tid, p); err != nil {
		t.Fatal(err)
	}
	h.Sweep()
	if h.Stats().FailedFrees == 0 {
		t.Error("dangling pointer not detected over scudo substrate")
	}
	for i := 0; i < 100; i++ {
		q, _ := h.Malloc(tid, 64)
		if q == p {
			t.Fatal("quarantined scudo chunk reused")
		}
	}
	_ = space.Store64(g.Base(), 0)
	h.Sweep()
	if h.Stats().Quarantined != 0 {
		t.Error("chunk not released after pointer cleared")
	}
}
