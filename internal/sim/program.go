// Package sim provides the simulated program that workloads run as: mutator
// threads with stacks, a globals segment, and checked access to a heap
// managed by any alloc.Allocator. It is the stand-in for the unmodified
// C/C++ application binaries (SPEC, mimalloc-bench) the paper evaluates:
// mutators store real pointer words into simulated memory, so sweeps,
// marking and dangling-pointer detection all operate on the genuine article.
package sim

import (
	"fmt"
	"sync/atomic"

	"minesweeper/internal/alloc"
	"minesweeper/internal/mem"
)

// Sizes of the simulated segments.
const (
	// GlobalsSize is the size of the globals segment.
	GlobalsSize = 256 << 10
	// StackSize is the size of each thread stack.
	StackSize = 64 << 10
	// tickEvery is how many operations pass between allocator ticks.
	tickEvery = 4096
)

// Program is one simulated process: an address space, an allocator scheme,
// a globals segment and any number of mutator threads.
type Program struct {
	space *mem.AddressSpace
	heap  alloc.Allocator
	world *World

	globals *mem.Region
	ops     atomic.Uint64
	uafs    atomic.Uint64 // faulting accesses observed (prevented UAFs)
}

// NewProgram creates a program over space and heap. world may be nil when no
// stop-the-world coordination is needed.
func NewProgram(space *mem.AddressSpace, heap alloc.Allocator, world *World) (*Program, error) {
	g, err := space.Map(mem.KindGlobals, GlobalsSize, true)
	if err != nil {
		return nil, fmt.Errorf("sim: mapping globals: %w", err)
	}
	return &Program{space: space, heap: heap, world: world, globals: g}, nil
}

// Space returns the program's address space.
func (p *Program) Space() *mem.AddressSpace { return p.space }

// Heap returns the program's allocator.
func (p *Program) Heap() alloc.Allocator { return p.heap }

// World returns the program's stop-the-world coordinator (may be nil).
func (p *Program) World() *World { return p.world }

// GlobalSlot returns the address of 8-byte global slot i.
func (p *Program) GlobalSlot(i int) uint64 {
	return p.globals.Base() + uint64(i)*mem.WordSize
}

// GlobalSlots returns how many global slots exist.
func (p *Program) GlobalSlots() int { return GlobalsSize / mem.WordSize }

// Ops returns the total operation count across all threads.
func (p *Program) Ops() uint64 { return p.ops.Load() }

// UAFAccesses returns how many memory accesses faulted — each is a
// use-after-free the protection scheme turned into a clean fault.
func (p *Program) UAFAccesses() uint64 { return p.uafs.Load() }

// tick advances the operation counter and periodically ticks the allocator
// (decay purging and other background housekeeping).
func (p *Program) tick() {
	n := p.ops.Add(1)
	if n%tickEvery == 0 {
		p.heap.Tick(n)
	}
}

// Thread is one simulated mutator thread. Methods are not safe for
// concurrent use — each goroutine owns one Thread, exactly like a real
// thread owns its stack.
type Thread struct {
	prog  *Program
	tid   alloc.ThreadID
	stack *mem.Region
	rng   *Rand
	// cached is the region of the thread's last memory access — the
	// simulated analogue of TLB/cache locality on the lookup path.
	cached *mem.Region
	// obs is the scheme's pointer-store instrumentation, nil for schemes
	// without it.
	obs alloc.PointerObserver
}

// NewThread registers a new mutator thread with a deterministic PRNG stream.
func (p *Program) NewThread(seed uint64) (*Thread, error) {
	stk, err := p.space.Map(mem.KindStack, StackSize, true)
	if err != nil {
		return nil, fmt.Errorf("sim: mapping stack: %w", err)
	}
	if p.world != nil {
		p.world.Register()
	}
	obs, _ := p.heap.(alloc.PointerObserver)
	return &Thread{
		prog:  p,
		tid:   p.heap.RegisterThread(),
		stack: stk,
		rng:   NewRand(seed),
		obs:   obs,
	}, nil
}

// Close unregisters the thread. The stack stays mapped (as a real exited
// thread's stack may) but is no longer written.
func (t *Thread) Close() {
	t.prog.heap.UnregisterThread(t.tid)
	if t.prog.world != nil {
		t.prog.world.Unregister()
	}
}

// Rand returns the thread's PRNG.
func (t *Thread) Rand() *Rand { return t.rng }

// ID returns the thread's allocator thread ID.
func (t *Thread) ID() alloc.ThreadID { return t.tid }

// StackSlot returns the address of 8-byte stack slot i.
func (t *Thread) StackSlot(i int) uint64 {
	return t.stack.Base() + uint64(i)*mem.WordSize
}

// StackSlots returns how many stack slots the thread has.
func (t *Thread) StackSlots() int { return StackSize / mem.WordSize }

// Malloc allocates size bytes.
func (t *Thread) Malloc(size uint64) (uint64, error) {
	t.safepoint()
	t.prog.tick()
	return t.prog.heap.Malloc(t.tid, size)
}

// Free frees the allocation at addr.
func (t *Thread) Free(addr uint64) error {
	t.safepoint()
	t.prog.tick()
	return t.prog.heap.Free(t.tid, addr)
}

// region resolves addr's region through the thread's one-entry cache.
func (t *Thread) region(addr uint64) *mem.Region {
	if r := t.cached; r != nil && r.Contains(addr) {
		return r
	}
	r := t.prog.space.Lookup(addr)
	if r != nil {
		t.cached = r
	}
	return r
}

// Store writes a word. A fault (e.g. a store to an unmapped quarantined
// page) is counted as a prevented UAF and reported. Schemes that implement
// alloc.PointerObserver are notified of the overwritten and stored values,
// modelling per-pointer-write compiler instrumentation.
func (t *Thread) Store(addr, val uint64) error {
	t.safepoint()
	t.prog.tick()
	r := t.region(addr)
	if r == nil {
		t.prog.uafs.Add(1)
		return &mem.Fault{Addr: addr, Write: true, Cause: mem.CauseUnmapped}
	}
	if t.obs != nil {
		old, lerr := r.Load64(addr)
		err := r.Store64(addr, val)
		if err != nil {
			t.prog.uafs.Add(1)
			return err
		}
		if lerr == nil {
			t.obs.NoteStore(t.tid, addr, old, val)
		}
		return nil
	}
	err := r.Store64(addr, val)
	if err != nil {
		t.prog.uafs.Add(1)
	}
	return err
}

// Load reads a word; faults are counted as prevented UAFs.
func (t *Thread) Load(addr uint64) (uint64, error) {
	t.safepoint()
	t.prog.tick()
	r := t.region(addr)
	if r == nil {
		t.prog.uafs.Add(1)
		return 0, &mem.Fault{Addr: addr, Cause: mem.CauseUnmapped}
	}
	v, err := r.Load64(addr)
	if err != nil {
		t.prog.uafs.Add(1)
	}
	return v, err
}

func (t *Thread) safepoint() {
	if t.prog.world != nil {
		t.prog.world.Safepoint()
	}
}

// Store8 writes one byte (read-modify-write of the containing word; safe
// only from the owning thread, like a real non-atomic byte store).
func (t *Thread) Store8(addr uint64, v byte) error {
	t.safepoint()
	t.prog.tick()
	err := t.prog.space.Store8(addr, v)
	if err != nil {
		t.prog.uafs.Add(1)
	}
	return err
}

// Load8 reads one byte.
func (t *Thread) Load8(addr uint64) (byte, error) {
	t.safepoint()
	t.prog.tick()
	v, err := t.prog.space.Load8(addr)
	if err != nil {
		t.prog.uafs.Add(1)
	}
	return v, err
}

// StoreBytes writes p at addr (a string/struct payload).
func (t *Thread) StoreBytes(addr uint64, p []byte) error {
	t.safepoint()
	t.prog.tick()
	err := t.prog.space.StoreBytes(addr, p)
	if err != nil {
		t.prog.uafs.Add(1)
	}
	return err
}

// LoadBytes reads n bytes at addr.
func (t *Thread) LoadBytes(addr, n uint64) ([]byte, error) {
	t.safepoint()
	t.prog.tick()
	p, err := t.prog.space.LoadBytes(addr, n)
	if err != nil {
		t.prog.uafs.Add(1)
	}
	return p, err
}
