package mem

import (
	"sync/atomic"
	"testing"
)

func TestScanPageWordsReadsPageContents(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, 2*PageSize, true)
	if err := as.Store64(r.Base()+PageSize+24, 0xdead); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	ok := r.ScanPageWords(1, func(words []uint64) {
		if len(words) != WordsPerPage {
			t.Errorf("len(words) = %d, want %d", len(words), WordsPerPage)
		}
		for i := range words {
			if v := atomic.LoadUint64(&words[i]); v != 0 {
				got = append(got, v)
			}
		}
	})
	if !ok {
		t.Fatal("ScanPageWords on a readable page returned false")
	}
	if len(got) != 1 || got[0] != 0xdead {
		t.Errorf("non-zero words = %#v, want [0xdead]", got)
	}
}

func TestScanPageWordsSkipsUnreadable(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, 3*PageSize, true)
	if err := as.Decommit(r.Base()+PageSize, PageSize); err != nil {
		t.Fatal(err)
	}
	if err := as.Protect(r.Base()+2*PageSize, PageSize, ProtNone); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2} {
		if r.ScanPageWords(p, func([]uint64) { t.Errorf("fn called for page %d", p) }) {
			t.Errorf("ScanPageWords(%d) = true for an unreadable page", p)
		}
	}
	if !r.ScanPageWords(0, func([]uint64) {}) {
		t.Error("ScanPageWords(0) = false for a readable page")
	}
}

func TestScanPageWordsMatchesWordAt(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, PageSize, true)
	rng := uint64(17)
	for w := 0; w < WordsPerPage; w++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		if err := as.Store64(r.Base()+uint64(w)*WordSize, rng); err != nil {
			t.Fatal(err)
		}
	}
	r.ScanPageWords(0, func(words []uint64) {
		for i := range words {
			if got, want := atomic.LoadUint64(&words[i]), r.WordAt(i); got != want {
				t.Fatalf("word %d: bulk %#x, WordAt %#x", i, got, want)
			}
		}
	})
}

// BenchmarkScanPage compares the sweep's page-read patterns: word-by-word
// through WordAt (the seed primitive: a backing pointer chase per word,
// filter per word) against one ScanPageWords bulk view per page with the
// 8-wide OR-combined zero skip the real sweep kernel uses. Content mirrors a
// zero-on-free heap: half the pages zero, the rest sparse pointer-like words.
func BenchmarkScanPage(b *testing.B) {
	const pages = 64
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, pages*PageSize, true)
	rng := uint64(5)
	for page := uint64(0); page < pages; page += 2 {
		for off := uint64(0); off < PageSize; off += 64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			_ = as.Store64(r.Base()+page*PageSize+off, HeapBase+(rng>>8)%(1<<30))
		}
	}
	var sink atomic.Uint64
	b.Run("wordat", func(b *testing.B) {
		b.SetBytes(pages * PageSize)
		for i := 0; i < b.N; i++ {
			var n uint64
			for p := 0; p < pages; p++ {
				base := p * WordsPerPage
				r.LockPage(p)
				for w := 0; w < WordsPerPage; w++ {
					if IsHeapAddr(r.WordAt(base + w)) {
						n++
					}
				}
				r.UnlockPage(p)
			}
			sink.Store(n)
		}
	})
	b.Run("bulk", func(b *testing.B) {
		const span = HeapLimit - HeapBase
		b.SetBytes(pages * PageSize)
		for i := 0; i < b.N; i++ {
			var n uint64
			for p := 0; p < pages; p++ {
				r.ScanPageWords(p, func(words []uint64) {
					for w := 0; w+8 <= len(words); w += 8 {
						v0 := atomic.LoadUint64(&words[w])
						v1 := atomic.LoadUint64(&words[w+1])
						v2 := atomic.LoadUint64(&words[w+2])
						v3 := atomic.LoadUint64(&words[w+3])
						v4 := atomic.LoadUint64(&words[w+4])
						v5 := atomic.LoadUint64(&words[w+5])
						v6 := atomic.LoadUint64(&words[w+6])
						v7 := atomic.LoadUint64(&words[w+7])
						if v0|v1|v2|v3|v4|v5|v6|v7 == 0 {
							continue
						}
						for _, v := range [8]uint64{v0, v1, v2, v3, v4, v5, v6, v7} {
							if v-HeapBase < span {
								n++
							}
						}
					}
				})
			}
			sink.Store(n)
		}
	})
}
