package fleet

import (
	"fmt"
	"math"

	"minesweeper/internal/control"
)

// Arbiter scale and throttle bounds. The host tightness scale follows the
// AIMD shape of control.NewAIMD — multiplicative decrease under pressure,
// additive recovery when calm — and both factors are floored so a long
// Critical episode cannot drive grants to zero (the floor still guarantees
// liveness regardless).
const (
	scaleMin    = 1.0 / 64
	throttleMin = 1.0 / 16
	recoverStep = 0.125
)

// rail is the arbiter's per-tenant state: the published budget plus the
// signals (demand estimate, pinned streak, throttle) that shape the next
// grant.
type rail struct {
	id       int
	floor    uint64
	weight   float64
	priority int

	demand   float64 // EMA of observed RSS
	budget   uint64  // last granted rail
	pinned   int     // consecutive rebalances spent at >= 7/8 of the rail
	throttle float64 // noisy-neighbour multiplier in [throttleMin, 1]
	noisy    bool
	starving bool // floor currently the only thing keeping the tenant fed

	throttles    uint64 // times flagged noisy (transitions, not ticks)
	starveAverts uint64 // times the floor guarantee engaged (transitions)
}

// Grant is one tenant's outcome from a rebalance.
type Grant struct {
	ID     int
	Budget uint64 // new rail, >= the tenant's floor by construction
	// Throttled is set on the rebalance that flags the tenant noisy.
	Throttled bool
	// StarveAverted is set on the rebalance where the share formula alone
	// would have left the tenant under its floor while it had demand —
	// the moment the floor guarantee did real work.
	StarveAverted bool
	// Noisy reports the tenant's current noisy-neighbour flag.
	Noisy bool
}

// Arbiter is the host-level federated governor. It reuses the per-heap
// plane's hysteresis bands over host-wide inputs (total RSS against the
// host budget) and apportions the budget as
//
//	budget_i = floor_i + distributable * s_i * share_i / sum(share)
//
// where distributable = hostBudget - sum(floors), share_i is the tenant's
// class weight scaled by its demand estimate, and s_i <= 1 folds together
// the host AIMD tightness, a priority easing (priority 0 takes the square
// root of the scale, a strictly milder cut) and the tenant's own
// noisy-neighbour throttle. Every term is <= 1, so grants always sum to at
// most the host budget, and every tenant receives at least its floor — both
// invariants hold by construction, not by feedback.
//
// Arbiter is not goroutine-safe; the Host calls it from its tick loop.
type Arbiter struct {
	hostBudget uint64
	bands      control.Bands
	noisyTicks int

	level      control.Level
	scale      float64
	floors     uint64
	rails      []*rail
	byID       map[int]*rail
	rebalances uint64
}

// NewArbiter returns an arbiter for hostBudget with the standard hysteresis
// bands. noisyTicks <= 0 means the default 3.
func NewArbiter(hostBudget uint64, noisyTicks int) *Arbiter {
	if noisyTicks <= 0 {
		noisyTicks = 3
	}
	return &Arbiter{
		hostBudget: hostBudget,
		bands:      control.DefaultBands(),
		noisyTicks: noisyTicks,
		// Slow start: tightness begins at a quarter and recovers
		// additively through calm rebalances, so a fresh fleet ramps
		// into its budget instead of being granted all of it before the
		// first pressure reading exists.
		scale: 0.25,
		byID:  make(map[int]*rail),
	}
}

// Level returns the host pressure level after the last rebalance.
func (a *Arbiter) Level() control.Level { return a.level }

// Scale returns the host AIMD tightness in (0, 1] (tests).
func (a *Arbiter) Scale() float64 { return a.scale }

// Rebalances returns how many rebalances have run.
func (a *Arbiter) Rebalances() uint64 { return a.rebalances }

// Admit adds a tenant rail. The floor is reserved immediately: admitting a
// tenant whose floor the remaining budget cannot cover fails with
// ErrBadConfig, because a floor the host cannot honour is not a guarantee.
func (a *Arbiter) Admit(id int, floor uint64, weight float64, priority int) error {
	if _, ok := a.byID[id]; ok {
		return fmt.Errorf("%w: tenant %d admitted twice", ErrBadConfig, id)
	}
	if weight <= 0 {
		return fmt.Errorf("%w: tenant %d weight must be positive, got %g", ErrBadConfig, id, weight)
	}
	if a.floors+floor > a.hostBudget {
		return fmt.Errorf("%w: admitting tenant %d would push floors to %d, past the host budget %d", ErrBadConfig, id, a.floors+floor, a.hostBudget)
	}
	r := &rail{id: id, floor: floor, weight: weight, priority: priority, throttle: 1}
	a.rails = append(a.rails, r)
	a.byID[id] = r
	a.floors += floor
	return nil
}

// Evict removes a tenant rail, releasing its floor reservation.
func (a *Arbiter) Evict(id int) {
	r, ok := a.byID[id]
	if !ok {
		return
	}
	delete(a.byID, id)
	a.floors -= r.floor
	for i, v := range a.rails {
		if v == r {
			a.rails = append(a.rails[:i], a.rails[i+1:]...)
			break
		}
	}
}

// Tenants returns the admitted tenant count.
func (a *Arbiter) Tenants() int { return len(a.rails) }

// Budget returns a tenant's current rail (0 if unknown or never granted).
func (a *Arbiter) Budget(id int) uint64 {
	if r, ok := a.byID[id]; ok {
		return r.budget
	}
	return 0
}

// Counters returns a tenant's throttle and starvation-avert transition
// counts.
func (a *Arbiter) Counters(id int) (throttles, starveAverts uint64) {
	if r, ok := a.byID[id]; ok {
		return r.throttles, r.starveAverts
	}
	return 0, 0
}

// Rebalance folds one observation of per-tenant RSS into the arbiter and
// returns the new grants in deterministic (admission-ordered) sequence,
// plus whether the host pressure level changed. rss is queried once per
// tenant. Grants are pure outputs: publication to tenant planes is the
// caller's job, keeping the arbiter testable without heaps.
func (a *Arbiter) Rebalance(rss func(id int) uint64) (grants []Grant, levelChanged bool) {
	a.rebalances++

	// Host pressure: the per-heap hysteresis bands over host-wide inputs.
	var total uint64
	obs := make([]uint64, len(a.rails))
	for i, r := range a.rails {
		obs[i] = rss(r.id)
		total += obs[i]
	}
	prev := a.level
	a.level = a.bands.Next(a.level, control.Inputs{RSS: total, Budget: a.hostBudget})
	levelChanged = a.level != prev

	// Host AIMD tightness: halve at Critical, trim at Elevated, recover
	// additively at Nominal — the same shape control.NewAIMD applies to
	// per-heap knobs.
	switch a.level {
	case control.Critical:
		a.scale *= 0.5
	case control.Elevated:
		a.scale *= 0.75
	default:
		a.scale += recoverStep
	}
	a.scale = math.Min(1, math.Max(scaleMin, a.scale))

	// Per-tenant signals: demand EMA, pinned streaks, noisy flags.
	distributable := a.hostBudget - a.floors
	var sumWeight float64
	for _, r := range a.rails {
		sumWeight += r.weight
	}
	var sumShare float64
	for i, r := range a.rails {
		r.demand += (float64(obs[i]) - r.demand) / 4
		// A noisy-neighbour candidate sits pinned at its rail AND is
		// consuming past its weight-entitled fair share. The second
		// condition matters: under sustained pressure the AIMD scale
		// squeezes every rail toward its floor, so "at the rail" alone
		// would eventually flag compliant tenants whose rail shrank
		// under their steady usage.
		fair := float64(r.floor) + float64(distributable)*r.weight/sumWeight
		if r.budget > 0 && obs[i] >= r.budget-r.budget/8 && float64(obs[i]) > fair {
			r.pinned++
		} else {
			r.pinned = 0
		}
		// Pinned past the fair share is only "noisy" while the host is
		// under pressure: a tenant using more than its share of an idle
		// host is just efficient.
		noisy := r.pinned >= a.noisyTicks && a.level != control.Nominal
		if noisy && !r.noisy {
			r.throttle = math.Max(throttleMin, r.throttle*0.5)
			r.throttles++
		} else if !noisy && r.throttle < 1 {
			r.throttle = math.Min(1, r.throttle+recoverStep)
		}
		r.noisy = noisy
		sumShare += r.share()
	}
	grants = make([]Grant, len(a.rails))
	for i, r := range a.rails {
		// s_i <= 1 always: host scale (eased for priority 0), times the
		// tenant's own throttle.
		si := a.scale
		if r.priority == 0 {
			si = math.Sqrt(si)
		}
		si *= r.throttle
		var grant uint64
		if sumShare > 0 {
			grant = uint64(float64(distributable) * si * r.share() / sumShare)
		}
		starving := grant < r.floor/4 && r.demand > float64(r.floor)
		if starving && !r.starving {
			r.starveAverts++
		}
		g := Grant{
			ID:            r.id,
			Budget:        r.floor + grant,
			Noisy:         r.noisy,
			Throttled:     r.noisy && r.pinned == a.noisyTicks,
			StarveAverted: starving && !r.starving,
		}
		r.starving = starving
		r.budget = g.Budget
		grants[i] = g
	}
	return grants, levelChanged
}

// share is the tenant's weight in the distributable split: class weight
// scaled by demand (plus one page so an idle tenant keeps a nonzero share
// and can ramp back up).
func (r *rail) share() float64 { return r.weight * (r.demand + 4096) }
