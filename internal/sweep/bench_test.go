package sweep

import (
	"testing"

	"minesweeper/internal/mem"
	"minesweeper/internal/shadow"
)

// markAllPerWord reproduces the seed scan loop — Region.WordAt plus a full
// Bitmap.Mark per word, one shared ticket, no marker, no zero fast path — so
// the bulk-scan path's speedup stays measurable in-tree (the acceptance bar
// is ≥2×; see BenchmarkSweepMarkAll and EXPERIMENTS.md).
func (s *Sweeper) markAllPerWord() uint64 {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	var scanned uint64
	for _, c := range s.collectChunks(false, false) {
		r := c.r
		for p := c.pageFirst; p < c.pageAfter; p++ {
			if !r.PageReadable(p) {
				continue
			}
			wordBase := p * mem.WordsPerPage
			r.LockPage(p)
			for w := 0; w < mem.WordsPerPage; w++ {
				v := r.WordAt(wordBase + w)
				if mem.IsHeapAddr(v) {
					s.marks.Mark(v)
				}
			}
			r.UnlockPage(p)
			scanned += mem.PageSize
		}
	}
	s.bytesSwept.Add(scanned)
	return scanned
}

// fillBenchHeap writes a realistic sweep workload: half the pages hold
// 64-byte "objects" whose first word is a pointer (density 1/8 of words,
// rest zeros); the other half are fully zero, like purged or freshly
// committed pages on a zero-on-free heap. Pointer targets walk forward in
// small strides — consecutive pointers in a page overwhelmingly reference
// consecutively pool-allocated objects (arrays of nodes, slab neighbours) —
// with an occasional far jump to a new "pool", which is the clustering the
// write-combining Marker is built for.
func fillBenchHeap(tb testing.TB, as *mem.AddressSpace, heap *mem.Region) {
	tb.Helper()
	rng := uint64(99)
	size := heap.Size()
	cursor := heap.Base()
	for page := uint64(0); page < size/mem.PageSize; page += 2 {
		base := heap.Base() + page*mem.PageSize
		for off := uint64(0); off < mem.PageSize; off += 64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			if rng%32 == 0 {
				// New pool: jump anywhere in the heap.
				cursor = heap.Base() + (rng>>8)%size
			} else {
				// Next object in the pool: 16-240 bytes onward.
				cursor += 16 + (rng>>8)%225&^15
				if cursor >= heap.Base()+size {
					cursor = heap.Base()
				}
			}
			if err := as.Store64(base+off, cursor&^7); err != nil {
				tb.Fatal(err)
			}
		}
	}
}

func newBenchSweeper(tb testing.TB, heapBytes uint64) (*Sweeper, *shadow.Bitmap) {
	tb.Helper()
	as := mem.NewAddressSpace()
	heap, err := as.Map(mem.KindHeap, heapBytes, true)
	if err != nil {
		tb.Fatal(err)
	}
	fillBenchHeap(tb, as, heap)
	marks, err := shadow.New(mem.HeapBase, mem.HeapLimit, 4)
	if err != nil {
		tb.Fatal(err)
	}
	return New(as, marks, 0), marks
}

// BenchmarkSweepMarkAll compares a full marking pass through the seed
// per-word path against the bulk-scan + Marker rebuild, single-worker so the
// ns/op ratio isolates the hot loop rather than host parallelism.
func BenchmarkSweepMarkAll(b *testing.B) {
	const heapBytes = 64 << 20
	b.Run("perword", func(b *testing.B) {
		s, marks := newBenchSweeper(b, heapBytes)
		b.SetBytes(heapBytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.markAllPerWord()
			marks.ClearAll()
		}
	})
	b.Run("bulk", func(b *testing.B) {
		s, marks := newBenchSweeper(b, heapBytes)
		b.SetBytes(heapBytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.MarkAll()
			marks.ClearAll()
		}
	})
}

// TestBulkPathMatchesPerWord proves the rebuilt hot path (bulk page scan,
// zero fast path, per-worker Markers, striped stealing queue) marks exactly
// the granule set the seed per-word path marks, on a randomized workload.
func TestBulkPathMatchesPerWord(t *testing.T) {
	const heapBytes = 8 << 20
	ref, refMarks := newBenchSweeper(t, heapBytes)
	refSwept := ref.markAllPerWord()

	bulk, bulkMarks := newBenchSweeper(t, heapBytes)
	// Force multiple workers regardless of host GOMAXPROCS so the striped
	// queue and stealing paths are exercised. The per-word reference path
	// never consults the known-zero map, so disable the skip for equivalence.
	bulk.SetKnownZeroSkip(false)
	bulk.helpers.Store(3)
	bulkSwept := bulk.MarkAll()

	if refSwept != bulkSwept {
		t.Errorf("bytes swept: perword %d, bulk %d", refSwept, bulkSwept)
	}
	if a, b := refMarks.PopCount(), bulkMarks.PopCount(); a != b {
		t.Fatalf("popcount: perword %d, bulk %d", a, b)
	}
	for addr := mem.HeapBase; addr < mem.HeapBase+2*heapBytes; addr += 16 {
		if refMarks.Test(addr) != bulkMarks.Test(addr) {
			t.Fatalf("granule %#x: perword %v, bulk %v", addr, refMarks.Test(addr), bulkMarks.Test(addr))
		}
	}
}

// TestWorkQueueReuse checks that back-to-back passes reuse the chunk queue's
// backing array and keep producing correct results.
func TestWorkQueueReuse(t *testing.T) {
	as := mem.NewAddressSpace()
	heap, _ := as.Map(mem.KindHeap, 512*mem.PageSize, true)
	if err := as.Store64(heap.Base()+8, heap.Base()+0x100); err != nil {
		t.Fatal(err)
	}
	marks, _ := shadow.New(mem.HeapBase, mem.HeapLimit, 4)
	s := New(as, marks, 2)

	first := s.MarkAll()
	capAfterFirst := cap(s.chunks)
	for i := 0; i < 5; i++ {
		marks.ClearAll()
		if got := s.MarkAll(); got != first {
			t.Fatalf("pass %d swept %d bytes, want %d", i, got, first)
		}
		if !marks.Test(heap.Base() + 0x100) {
			t.Fatalf("pass %d missed the planted pointer", i)
		}
	}
	if cap(s.chunks) != capAfterFirst {
		t.Errorf("chunk queue reallocated: cap %d -> %d", capAfterFirst, cap(s.chunks))
	}
}

// TestStripedStealing covers the striped queue with more workers than the
// host has cores and stripes of uneven length, so finished workers steal
// from the still-loaded ones.
func TestStripedStealing(t *testing.T) {
	as := mem.NewAddressSpace()
	// 17 chunks' worth of pages across 8 workers: stripes of 3 and 2.
	heap, _ := as.Map(mem.KindHeap, 17*chunkPages*mem.PageSize, true)
	var want []uint64
	for i := 0; i < 64; i++ {
		tgt := heap.Base() + uint64(i)*mem.PageSize*11 + 0x40
		if err := as.Store64(heap.Base()+uint64(i)*8*mem.PageSize, tgt); err != nil {
			t.Fatal(err)
		}
		want = append(want, tgt)
	}
	marks, _ := shadow.New(mem.HeapBase, mem.HeapLimit, 4)
	s := New(as, marks, 0)
	s.helpers.Store(7)        // bypass the GOMAXPROCS clamp: stealing must still be correct
	s.SetKnownZeroSkip(false) // this test asserts every byte is visited
	if swept := s.MarkAll(); swept != heap.Size() {
		t.Errorf("swept %d bytes, want %d", swept, heap.Size())
	}
	for _, tgt := range want {
		if !marks.Test(tgt) {
			t.Errorf("stolen chunk's pointer %#x not marked", tgt)
		}
	}
}
