// Package dangsan implements the DangSan baseline (van der Kouwe et al.,
// EuroSys 2017): scalable use-after-free detection via pointer tracking with
// nullification. DangSan observes that pointer metadata is heavily
// write-intensive — written on every pointer store but read only once, at
// deallocation — so it structures the metadata as an append-only per-object
// log with light de-duplication. On free(), the log is walked and every
// location that still points into the freed object is overwritten with an
// invalid (poison) value, so later dereferences fault instead of aliasing a
// reallocated object; the memory itself is released immediately (§6.4).
//
// The per-store log append is the simulator's alloc.PointerObserver hook, so
// its cost lands on the mutator — reproducing DangSan's high time overheads
// on pointer-write-heavy programs and its large metadata footprint (the
// paper's Figure 10 shows up to 135x memory).
package dangsan

import (
	"fmt"
	"sync"
	"sync/atomic"

	"minesweeper/internal/alloc"
	"minesweeper/internal/jemalloc"
	"minesweeper/internal/mem"
)

// Poison is the invalid pointer value dangling locations are overwritten
// with: non-canonical, so any dereference faults (DangSan points into
// inaccessible kernel space).
const Poison uint64 = 0xDEAD_0000_0000_0000

const shards = 64

// dedupWindow is the per-log tail window checked to avoid consecutive
// duplicate entries (DangSan's "some de-duplication").
const dedupWindow = 4

type logShard struct {
	mu sync.Mutex
	// logs maps allocation base -> locations that held pointers to it.
	logs map[uint64][]uint64
}

// Heap is the DangSan-protected heap.
type Heap struct {
	je    *jemalloc.Heap
	space *mem.AddressSpace

	shards [shards]logShard

	logBytes   atomic.Int64
	nullified  atomic.Uint64
	ptrUpdates atomic.Uint64
}

var _ alloc.Allocator = (*Heap)(nil)
var _ alloc.PointerObserver = (*Heap)(nil)

// New builds a DangSan heap over space.
func New(space *mem.AddressSpace, jcfg jemalloc.Config) *Heap {
	h := &Heap{space: space, je: jemalloc.New(space, jcfg)}
	for i := range h.shards {
		h.shards[i].logs = make(map[uint64][]uint64)
	}
	return h
}

// String returns the scheme name.
func (h *Heap) String() string { return "dangsan" }

func (h *Heap) shardFor(base uint64) *logShard {
	return &h.shards[((base>>4)*0x9E3779B97F4A7C15)>>58]
}

// RegisterThread implements alloc.Allocator.
func (h *Heap) RegisterThread() alloc.ThreadID { return h.je.RegisterThread() }

// UnregisterThread implements alloc.Allocator.
func (h *Heap) UnregisterThread(tid alloc.ThreadID) { h.je.UnregisterThread(tid) }

// Malloc implements alloc.Allocator.
func (h *Heap) Malloc(tid alloc.ThreadID, size uint64) (uint64, error) {
	return h.je.Malloc(tid, size)
}

// NoteStore implements alloc.PointerObserver: log the location against the
// pointee. Stale entries (locations later overwritten) stay in the log and
// are filtered at free time by re-checking the location — exactly DangSan's
// design trade: cheap writes, one expensive read at deallocation.
func (h *Heap) NoteStore(_ alloc.ThreadID, addr, _, new uint64) {
	if !mem.IsHeapAddr(new) {
		return
	}
	a, ok := h.je.Lookup(new)
	if !ok {
		return
	}
	h.ptrUpdates.Add(1)
	s := h.shardFor(a.Base)
	s.mu.Lock()
	log := s.logs[a.Base]
	// Tail-window de-duplication.
	for i := len(log) - 1; i >= 0 && i >= len(log)-dedupWindow; i-- {
		if log[i] == addr {
			s.mu.Unlock()
			return
		}
	}
	s.logs[a.Base] = append(log, addr)
	s.mu.Unlock()
	h.logBytes.Add(8)
}

// Free implements alloc.Allocator: nullify all recorded dangling pointers,
// then release the memory immediately.
func (h *Heap) Free(tid alloc.ThreadID, addr uint64) error {
	a, ok := h.je.Lookup(addr)
	if !ok || a.Base != addr {
		return fmt.Errorf("%w: %#x", alloc.ErrInvalidFree, addr)
	}

	s := h.shardFor(a.Base)
	s.mu.Lock()
	log := s.logs[a.Base]
	delete(s.logs, a.Base)
	s.mu.Unlock()
	h.logBytes.Add(-8 * int64(len(log)))

	end := a.Base + a.Size
	for _, loc := range log {
		// The location itself may be gone (it was inside another freed
		// object); a failed load just skips it.
		v, err := h.space.Load64(loc)
		if err != nil || v < a.Base || v >= end {
			continue // stale entry: no longer points at this object
		}
		// Nullify: poison plus the original offset, as DangSan preserves
		// the offset bits for debugging.
		if err := h.space.Store64(loc, Poison|(v-a.Base)); err == nil {
			h.nullified.Add(1)
		}
	}
	return h.je.Free(tid, addr)
}

// UsableSize implements alloc.Allocator.
func (h *Heap) UsableSize(addr uint64) uint64 { return h.je.UsableSize(addr) }

// Tick implements alloc.Allocator.
func (h *Heap) Tick(now uint64) { h.je.Tick(now) }

// Nullified returns how many dangling pointers were invalidated.
func (h *Heap) Nullified() uint64 { return h.nullified.Load() }

// Stats implements alloc.Allocator.
func (h *Heap) Stats() alloc.Stats {
	st := h.je.Stats()
	// The pointer logs are DangSan's dominant metadata cost.
	if lb := h.logBytes.Load(); lb > 0 {
		st.MetaBytes += uint64(lb)
	}
	var entries int
	for i := range h.shards {
		h.shards[i].mu.Lock()
		entries += len(h.shards[i].logs)
		h.shards[i].mu.Unlock()
	}
	st.MetaBytes += uint64(entries) * 48
	st.ReleasedFrees = st.Frees
	return st
}

// Shutdown implements alloc.Allocator.
func (h *Heap) Shutdown() {}
