package core

import (
	"errors"
	"testing"

	"minesweeper/internal/alloc"
	"minesweeper/internal/jemalloc"
	"minesweeper/internal/mem"
)

// testConfig returns a deterministic configuration: synchronous sweeps are
// never auto-triggered (threshold 0 disabled by huge value), buffers flush
// immediately.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Mode = Synchronous
	cfg.SweepThreshold = 1e18 // manual sweeps only
	cfg.UnmappedFactor = 0
	cfg.PauseThreshold = 0
	cfg.BufferCap = 1
	cfg.Helpers = 2
	return cfg
}

func newTestHeap(t testing.TB, cfg Config) (*Heap, alloc.ThreadID) {
	t.Helper()
	h, err := New(mem.NewAddressSpace(), cfg, jemalloc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Shutdown)
	return h, h.RegisterThread()
}

func TestFreeQuarantinesInsteadOfReusing(t *testing.T) {
	h, tid := newTestHeap(t, testConfig())
	a, err := h.Malloc(tid, 48)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(tid, a); err != nil {
		t.Fatal(err)
	}
	if h.Quarantined() == 0 {
		t.Error("nothing quarantined after free")
	}
	// Without a sweep, the address must not be reused.
	for i := 0; i < 100; i++ {
		b, err := h.Malloc(tid, 48)
		if err != nil {
			t.Fatal(err)
		}
		if b == a {
			t.Fatal("quarantined address reused before sweep")
		}
	}
}

func TestSweepReleasesUnreferenced(t *testing.T) {
	h, tid := newTestHeap(t, testConfig())
	a, _ := h.Malloc(tid, 48)
	if err := h.Free(tid, a); err != nil {
		t.Fatal(err)
	}
	h.Sweep()
	st := h.Stats()
	if st.ReleasedFrees != 1 {
		t.Errorf("ReleasedFrees = %d, want 1", st.ReleasedFrees)
	}
	if st.Quarantined != 0 {
		t.Errorf("Quarantined = %d, want 0", st.Quarantined)
	}
	if st.Sweeps != 1 {
		t.Errorf("Sweeps = %d, want 1", st.Sweeps)
	}
}

func TestDanglingPointerPreventsRelease(t *testing.T) {
	h, tid := newTestHeap(t, testConfig())
	g, err := h.space.Map(mem.KindGlobals, mem.PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := h.Malloc(tid, 48)
	// Keep a dangling pointer in globals.
	if err := h.space.Store64(g.Base(), a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(tid, a); err != nil {
		t.Fatal(err)
	}
	h.Sweep()
	st := h.Stats()
	if st.FailedFrees == 0 {
		t.Error("FailedFrees = 0, want >= 1")
	}
	if st.Quarantined == 0 {
		t.Error("entry released despite dangling pointer")
	}
	// The address must never be handed out while the pointer exists.
	for i := 0; i < 200; i++ {
		b, _ := h.Malloc(tid, 48)
		if b == a {
			t.Fatal("use-after-reallocate: quarantined address reused")
		}
	}
	// Overwrite the dangling pointer: the next sweep releases it.
	if err := h.space.Store64(g.Base(), 0); err != nil {
		t.Fatal(err)
	}
	h.Sweep()
	if got := h.Stats().Quarantined; got != 0 {
		t.Errorf("Quarantined = %d after pointer removed and re-swept", got)
	}
}

func TestInteriorDanglingPointerPreventsRelease(t *testing.T) {
	// Pointers "at an offset inside the allocation" also count (§3.2).
	h, tid := newTestHeap(t, testConfig())
	g, _ := h.space.Map(mem.KindGlobals, mem.PageSize, true)
	a, _ := h.Malloc(tid, 256)
	if err := h.space.Store64(g.Base(), a+128); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(tid, a); err != nil {
		t.Fatal(err)
	}
	h.Sweep()
	if h.Stats().Quarantined == 0 {
		t.Error("released despite interior dangling pointer")
	}
}

func TestEndPointerPreventsRelease(t *testing.T) {
	// One-past-the-end pointers are valid references (§3.2): with the +1
	// pad, base+requested lands inside the allocation and must pin it.
	h, tid := newTestHeap(t, testConfig())
	g, _ := h.space.Map(mem.KindGlobals, mem.PageSize, true)
	a, _ := h.Malloc(tid, 64) // class 80 due to pad
	if err := h.space.Store64(g.Base(), a+64); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(tid, a); err != nil {
		t.Fatal(err)
	}
	h.Sweep()
	if h.Stats().Quarantined == 0 {
		t.Error("released despite end pointer")
	}
}

func TestFalsePointerPreventsRelease(t *testing.T) {
	// An integer that equals the allocation's address is conservatively a
	// pointer (§3.3).
	h, tid := newTestHeap(t, testConfig())
	g, _ := h.space.Map(mem.KindGlobals, mem.PageSize, true)
	a, _ := h.Malloc(tid, 48)
	if err := h.space.Store64(g.Base(), a); err != nil { // "unlucky data"
		t.Fatal(err)
	}
	if err := h.Free(tid, a); err != nil {
		t.Fatal(err)
	}
	h.Sweep()
	if h.Stats().FailedFrees == 0 {
		t.Error("false pointer not conservatively honoured")
	}
}

func TestZeroingOnFree(t *testing.T) {
	h, tid := newTestHeap(t, testConfig())
	a, _ := h.Malloc(tid, 64)
	if err := h.space.Store64(a, 0xdead); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(tid, a); err != nil {
		t.Fatal(err)
	}
	// Benign use-after-free: reads return zero, not stale data.
	v, err := h.space.Load64(a)
	if err != nil {
		t.Fatalf("benign UAF read faulted: %v", err)
	}
	if v != 0 {
		t.Errorf("freed memory reads %#x, want 0", v)
	}
}

func TestZeroingBreaksQuarantineChains(t *testing.T) {
	// a -> b pointer chain, both freed. With zeroing, one sweep releases
	// both: a's pointer to b was erased at free time.
	h, tid := newTestHeap(t, testConfig())
	a, _ := h.Malloc(tid, 64)
	b, _ := h.Malloc(tid, 64)
	if err := h.space.Store64(a, b); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(tid, a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(tid, b); err != nil {
		t.Fatal(err)
	}
	h.Sweep()
	if got := h.Stats().Quarantined; got != 0 {
		t.Errorf("Quarantined = %d, want 0 (zeroing should break the chain)", got)
	}
}

func TestCyclicQuarantineWithoutZeroingNeverFrees(t *testing.T) {
	// The paper's motivation for zeroing (§4.1): cyclic structures in
	// quarantine can never be deallocated without it.
	cfg := testConfig()
	cfg.Zeroing = false
	h, tid := newTestHeap(t, cfg)
	a, _ := h.Malloc(tid, 64)
	b, _ := h.Malloc(tid, 64)
	if err := h.space.Store64(a, b); err != nil {
		t.Fatal(err)
	}
	if err := h.space.Store64(b, a); err != nil {
		t.Fatal(err)
	}
	_ = h.Free(tid, a)
	_ = h.Free(tid, b)
	for i := 0; i < 3; i++ {
		h.Sweep()
	}
	if got := h.Stats().Quarantined; got == 0 {
		t.Error("cycle was freed without zeroing; expected permanent failed frees")
	}
	if h.Stats().FailedFrees == 0 {
		t.Error("no failed frees recorded for cycle")
	}
}

func TestDoubleFreeAbsorbed(t *testing.T) {
	h, tid := newTestHeap(t, testConfig())
	a, _ := h.Malloc(tid, 48)
	if err := h.Free(tid, a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(tid, a); err != nil {
		t.Errorf("double free returned %v, want absorbed nil", err)
	}
	if got := h.Stats().DoubleFrees; got != 1 {
		t.Errorf("DoubleFrees = %d, want 1", got)
	}
	// Only one true free happens: after a sweep the allocation can be
	// reallocated and freed again without error.
	h.Sweep()
	if got := h.Stats().ReleasedFrees; got != 1 {
		t.Errorf("ReleasedFrees = %d, want 1", got)
	}
}

func TestDoubleFreeDebugMode(t *testing.T) {
	cfg := testConfig()
	cfg.DebugDoubleFree = true
	h, tid := newTestHeap(t, cfg)
	a, _ := h.Malloc(tid, 48)
	_ = h.Free(tid, a)
	if err := h.Free(tid, a); !errors.Is(err, alloc.ErrDoubleFree) {
		t.Errorf("debug double free = %v, want ErrDoubleFree", err)
	}
}

func TestInvalidFree(t *testing.T) {
	h, tid := newTestHeap(t, testConfig())
	if err := h.Free(tid, mem.HeapBase+0x5000); !errors.Is(err, alloc.ErrInvalidFree) {
		t.Errorf("Free(wild) = %v, want ErrInvalidFree", err)
	}
	a, _ := h.Malloc(tid, 1000)
	if err := h.Free(tid, a+16); !errors.Is(err, alloc.ErrInvalidFree) {
		t.Errorf("Free(interior) = %v, want ErrInvalidFree", err)
	}
}

func TestLargeAllocationUnmappedInQuarantine(t *testing.T) {
	h, tid := newTestHeap(t, testConfig())
	a, err := h.Malloc(tid, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	rssBefore := h.space.RSS()
	if err := h.Free(tid, a); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.QuarantinedUnmapped == 0 {
		t.Fatal("large quarantined allocation not unmapped")
	}
	if got := h.space.RSS(); got >= rssBefore {
		t.Errorf("RSS = %d after unmap, want < %d", got, rssBefore)
	}
	// Accesses to the unmapped quarantined range fault (clean termination
	// in the paper's model).
	if _, err := h.space.Load64(a); err == nil {
		t.Error("load of unmapped quarantined page succeeded")
	}
	// Sweep releases it; reallocation of the same size reuses and
	// recommits the extent.
	h.Sweep()
	b, err := h.Malloc(tid, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Logf("note: extent not reused (%#x vs %#x)", a, b)
	}
	if err := h.space.Store64(b, 1); err != nil {
		t.Errorf("store to recommitted extent faulted: %v", err)
	}
}

func TestUnmappingDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.Unmapping = false
	h, tid := newTestHeap(t, cfg)
	a, _ := h.Malloc(tid, 1<<20)
	rssBefore := h.space.RSS()
	_ = h.Free(tid, a)
	if got := h.space.RSS(); got != rssBefore {
		t.Errorf("RSS changed (%d -> %d) with unmapping disabled", rssBefore, got)
	}
	if h.Stats().QuarantinedUnmapped != 0 {
		t.Error("QuarantinedUnmapped nonzero with unmapping disabled")
	}
}

func TestAutomaticSweepTrigger(t *testing.T) {
	cfg := testConfig()
	cfg.SweepThreshold = 0.15
	h, tid := newTestHeap(t, cfg)
	// Keep a sizeable live heap, then free enough to cross 15%.
	var keep []uint64
	for i := 0; i < 200; i++ {
		a, _ := h.Malloc(tid, 1024)
		keep = append(keep, a)
	}
	for i := 0; i < 60; i++ { // ~60KiB freed vs ~200KiB live
		a, _ := h.Malloc(tid, 1024)
		if err := h.Free(tid, a); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.Stats().Sweeps; got == 0 {
		t.Error("no sweep triggered by threshold")
	}
	for _, a := range keep {
		_ = h.Free(tid, a)
	}
}

func TestUnmappedFactorTrigger(t *testing.T) {
	cfg := testConfig()
	cfg.UnmappedFactor = 0.5 // aggressive so a test-sized heap triggers
	h, tid := newTestHeap(t, cfg)
	for i := 0; i < 16; i++ {
		a, err := h.Malloc(tid, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Free(tid, a); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.Stats().Sweeps; got == 0 {
		t.Error("no sweep triggered by unmapped factor")
	}
}

func TestFullyConcurrentSweep(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = FullyConcurrent
	cfg.SweepThreshold = 0.15
	h, tid := newTestHeap(t, cfg)
	var keep []uint64
	for i := 0; i < 400; i++ {
		a, _ := h.Malloc(tid, 512)
		keep = append(keep, a)
	}
	for i := 0; i < 4000; i++ {
		a, err := h.Malloc(tid, 512)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Free(tid, a); err != nil {
			t.Fatal(err)
		}
	}
	h.FlushThread(tid)
	h.Sweep() // direct call drains whatever is pending
	st := h.Stats()
	if st.Sweeps == 0 {
		t.Error("no sweeps ran")
	}
	if st.Quarantined != 0 {
		t.Errorf("Quarantined = %d after final sweep, want 0", st.Quarantined)
	}
	for _, a := range keep {
		_ = h.Free(tid, a)
	}
}

func TestMostlyConcurrentMode(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = MostlyConcurrent
	h, tid := newTestHeap(t, cfg)
	a, _ := h.Malloc(tid, 48)
	_ = h.Free(tid, a)
	h.Sweep()
	st := h.Stats()
	if st.Quarantined != 0 {
		t.Errorf("Quarantined = %d, want 0", st.Quarantined)
	}
	if st.STWCycles == 0 {
		t.Error("STWCycles = 0; stop-the-world re-scan not accounted")
	}
}

type countingWorld struct{ stops, starts int }

func (w *countingWorld) Stop()  { w.stops++ }
func (w *countingWorld) Start() { w.starts++ }

func TestMostlyConcurrentUsesWorld(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = MostlyConcurrent
	w := &countingWorld{}
	cfg.World = w
	h, tid := newTestHeap(t, cfg)
	a, _ := h.Malloc(tid, 48)
	_ = h.Free(tid, a)
	h.Sweep()
	if w.stops != 1 || w.starts != 1 {
		t.Errorf("world stops/starts = %d/%d, want 1/1", w.stops, w.starts)
	}
}

func TestPartialVersionBaseOverheads(t *testing.T) {
	// Figure 17 stage 1: free forwards straight to the allocator.
	cfg := testConfig()
	cfg.Quarantine = false
	cfg.Zeroing = false
	cfg.Unmapping = false
	h, tid := newTestHeap(t, cfg)
	a, _ := h.Malloc(tid, 48)
	if err := h.Free(tid, a); err != nil {
		t.Fatal(err)
	}
	if h.Quarantined() != 0 {
		t.Error("quarantine active in base mode")
	}
	b, _ := h.Malloc(tid, 48)
	if b != a {
		t.Error("no immediate reuse in base mode")
	}
}

func TestPartialVersionZeroUnmap(t *testing.T) {
	// Figure 17 stage 2: zero small, unmap+remap large, then recycle.
	cfg := testConfig()
	cfg.Quarantine = false
	h, tid := newTestHeap(t, cfg)
	a, _ := h.Malloc(tid, 64)
	_ = h.space.Store64(a, 7)
	if err := h.Free(tid, a); err != nil {
		t.Fatal(err)
	}
	if v, _ := h.space.Load64(a); v != 0 {
		t.Error("small allocation not zeroed in partial mode")
	}
	l, _ := h.Malloc(tid, 1<<20)
	if err := h.Free(tid, l); err != nil {
		t.Fatal(err)
	}
	// Unmapped then immediately remapped: accessible and zero.
	if v, err := h.space.Load64(l); err != nil || v != 0 {
		t.Errorf("large partial-mode free: load = %v, %v; want 0, nil", v, err)
	}
}

func TestPartialVersionNoFailedFrees(t *testing.T) {
	// Figure 17 stage 5: sweep and check, but free regardless.
	cfg := testConfig()
	cfg.FailedFrees = false
	h, tid := newTestHeap(t, cfg)
	g, _ := h.space.Map(mem.KindGlobals, mem.PageSize, true)
	a, _ := h.Malloc(tid, 48)
	_ = h.space.Store64(g.Base(), a)
	_ = h.Free(tid, a)
	h.Sweep()
	st := h.Stats()
	if st.FailedFrees == 0 {
		t.Error("failed free not counted")
	}
	if st.Quarantined != 0 {
		t.Error("entry kept in quarantine with FailedFrees disabled")
	}
}

func TestUsableSizeQuarantined(t *testing.T) {
	h, tid := newTestHeap(t, testConfig())
	a, _ := h.Malloc(tid, 100)
	if h.UsableSize(a) == 0 {
		t.Error("UsableSize(live) = 0")
	}
	_ = h.Free(tid, a)
	if h.UsableSize(a) != 0 {
		t.Error("UsableSize(quarantined) != 0")
	}
}

func TestStatsAllocatedExcludesQuarantine(t *testing.T) {
	h, tid := newTestHeap(t, testConfig())
	a, _ := h.Malloc(tid, 1024)
	live, _ := h.Malloc(tid, 1024)
	_ = h.Free(tid, a)
	st := h.Stats()
	// 1024+1 pad byte rounds to class 1280.
	if st.Allocated != 1280 {
		t.Errorf("Allocated = %d, want 1280 (quarantine excluded)", st.Allocated)
	}
	if st.Quarantined != 1280 {
		t.Errorf("Quarantined = %d, want 1280", st.Quarantined)
	}
	_ = h.Free(tid, live)
}

func TestManyObjectsChurnEndsClean(t *testing.T) {
	cfg := testConfig()
	cfg.SweepThreshold = 0.15
	h, tid := newTestHeap(t, cfg)
	rng := uint64(7)
	var live []uint64
	for i := 0; i < 20000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		size := rng%4096 + 1
		a, err := h.Malloc(tid, size)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, a)
		if len(live) > 500 {
			idx := int(rng % uint64(len(live)))
			if err := h.Free(tid, live[idx]); err != nil {
				t.Fatalf("free #%d: %v", i, err)
			}
			live[idx] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	for _, a := range live {
		if err := h.Free(tid, a); err != nil {
			t.Fatal(err)
		}
	}
	h.FlushThread(tid)
	h.Sweep()
	st := h.Stats()
	if st.Allocated != 0 {
		t.Errorf("Allocated = %d at end, want 0", st.Allocated)
	}
	if st.Quarantined != 0 {
		t.Errorf("Quarantined = %d at end, want 0", st.Quarantined)
	}
	if st.Sweeps == 0 {
		t.Error("no sweeps triggered during churn")
	}
}

func BenchmarkMallocFreeProtected(b *testing.B) {
	cfg := DefaultConfig()
	h, err := New(mem.NewAddressSpace(), cfg, jemalloc.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer h.Shutdown()
	tid := h.RegisterThread()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := h.Malloc(tid, 64)
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Free(tid, a); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCheckInvariantsUnderChurn(t *testing.T) {
	cfg := testConfig()
	cfg.SweepThreshold = 0.15
	h, tid := newTestHeap(t, cfg)
	g, _ := h.space.Map(mem.KindGlobals, mem.PageSize, true)
	rng := uint64(3)
	var live []uint64
	for i := 0; i < 5000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		a, err := h.Malloc(tid, rng%8192+16)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, a)
		if len(live) > 200 {
			idx := int(rng % uint64(len(live)))
			if err := h.Free(tid, live[idx]); err != nil {
				t.Fatal(err)
			}
			live[idx] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if i%500 == 0 {
			if err := h.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	// Pin one entry with a dangling pointer so failed-free accounting is
	// exercised too.
	pinned, _ := h.Malloc(tid, 64)
	_ = h.space.Store64(g.Base(), pinned)
	_ = h.Free(tid, pinned)
	h.Sweep()
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, a := range live {
		_ = h.Free(tid, a)
	}
	h.Sweep()
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
