package jemalloc

import (
	"testing"
	"testing/quick"

	"minesweeper/internal/mem"
)

func TestLargeAllocSize(t *testing.T) {
	cases := []struct{ req, want uint64 }{
		{14337, 16384},                   // just past small max -> min large
		{16384, 16384},                   // exact min large
		{16385, 20480},                   // next class: 20K
		{20480, 20480},                   //
		{100 << 10, 112 << 10},           // 100K -> 112K (classes 80/96/112/128K)
		{1 << 20, 1 << 20},               // power of two exact
		{(1 << 20) + 1, 1<<20 + 256<<10}, // 1M+1 -> 1.25M
	}
	for _, c := range cases {
		if got := LargeAllocSize(c.req); got != c.want {
			t.Errorf("LargeAllocSize(%d) = %d, want %d", c.req, got, c.want)
		}
	}
}

// Properties of large size classes: page-multiple, >= request, and with
// bounded internal fragmentation (<= 25% + one page).
func TestQuickLargeAllocSize(t *testing.T) {
	f := func(req uint32) bool {
		r := uint64(req)
		if r <= SmallMax {
			r += SmallMax + 1
		}
		got := LargeAllocSize(r)
		if got < r {
			return false
		}
		if got%mem.PageSize != 0 {
			return false
		}
		waste := got - r
		return float64(waste) <= 0.25*float64(r)+mem.PageSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLargeClassesAreMonotone(t *testing.T) {
	prev := uint64(0)
	for req := uint64(SmallMax + 1); req < 1<<22; req += 997 {
		got := LargeAllocSize(req)
		if got < prev {
			t.Fatalf("LargeAllocSize not monotone at %d: %d < %d", req, got, prev)
		}
		prev = got
	}
}

func TestLargeClassCountBounded(t *testing.T) {
	// Quantisation must keep the number of distinct classes small enough
	// for effective extent reuse: 4 per doubling.
	classes := map[uint64]bool{}
	for req := uint64(SmallMax + 1); req <= 1<<24; req += 4096 {
		classes[LargeAllocSize(req)] = true
	}
	// 14K..16M is ~10 doublings -> expect ~40 classes, certainly < 64.
	if len(classes) > 64 {
		t.Errorf("%d large classes between 14KiB and 16MiB; quantisation broken", len(classes))
	}
}
