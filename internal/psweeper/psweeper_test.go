package psweeper

import (
	"errors"
	"testing"

	"minesweeper/internal/alloc"
	"minesweeper/internal/jemalloc"
	"minesweeper/internal/mem"
	"minesweeper/internal/sim"
)

func setup(t *testing.T) (*sim.Program, *sim.Thread, *Heap) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Synchronous = true
	cfg.WakeThreshold = 1e18 // manual sweeps only
	space := mem.NewAddressSpace()
	h := New(space, cfg, jemalloc.DefaultConfig())
	t.Cleanup(h.Shutdown)
	prog, err := sim.NewProgram(space, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	th, err := prog.NewThread(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(th.Close)
	return prog, th, h
}

func TestDeallocationDeferredUntilSweep(t *testing.T) {
	_, th, h := setup(t)
	a, _ := th.Malloc(48)
	if err := th.Free(a); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		b, _ := th.Malloc(48)
		if b == a {
			t.Fatal("address reused before a full sweep")
		}
	}
	if h.Stats().Quarantined == 0 {
		t.Error("deferred free not accounted")
	}
	h.Sweep()
	if h.Stats().Quarantined != 0 {
		t.Error("sweep did not release the deferred free")
	}
}

func TestSweepNullifiesDanglingPointers(t *testing.T) {
	prog, th, h := setup(t)
	a, _ := th.Malloc(64)
	_ = th.Store(prog.GlobalSlot(0), a+8)
	_ = th.Free(a)
	h.Sweep()
	if h.Nullified() != 1 {
		t.Fatalf("Nullified = %d, want 1", h.Nullified())
	}
	v, _ := th.Load(prog.GlobalSlot(0))
	if v&Poison != Poison {
		t.Errorf("dangling pointer = %#x, want poisoned", v)
	}
	// Post-sweep, the memory is recyclable and the pointer is dead.
	if _, err := th.Load(v); err == nil {
		t.Error("poisoned pointer dereference succeeded")
	}
}

func TestLivePointerTableMaintained(t *testing.T) {
	prog, th, h := setup(t)
	a, _ := th.Malloc(64)
	_ = th.Store(prog.GlobalSlot(0), a)
	if h.tableSize.Load() != 1 {
		t.Errorf("table size = %d, want 1", h.tableSize.Load())
	}
	_ = th.Store(prog.GlobalSlot(0), 7) // non-pointer overwrite
	if h.tableSize.Load() != 0 {
		t.Errorf("table size after overwrite = %d, want 0", h.tableSize.Load())
	}
	_ = th.Free(a)
	h.Sweep()
	if h.Nullified() != 0 {
		t.Error("nullified a pointer that was already gone")
	}
}

func TestPointersToLiveObjectsUntouched(t *testing.T) {
	prog, th, h := setup(t)
	live, _ := th.Malloc(64)
	dead, _ := th.Malloc(64)
	_ = th.Store(prog.GlobalSlot(0), live)
	_ = th.Free(dead)
	h.Sweep()
	if v, _ := th.Load(prog.GlobalSlot(0)); v != live {
		t.Errorf("live pointer modified: %#x", v)
	}
}

func TestDoubleFreeWhileDeferredIdempotent(t *testing.T) {
	_, th, h := setup(t)
	a, _ := th.Malloc(48)
	_ = th.Free(a)
	if err := th.Free(a); err != nil {
		t.Errorf("double free while deferred = %v, want nil", err)
	}
	h.Sweep()
	if got := h.Stats().Frees; got != 1 {
		t.Errorf("substrate frees = %d, want 1", got)
	}
}

func TestInvalidFree(t *testing.T) {
	_, th, _ := setup(t)
	if err := th.Free(mem.HeapBase + 8); !errors.Is(err, alloc.ErrInvalidFree) {
		t.Errorf("Free(wild) = %v", err)
	}
}

func TestBackgroundSweeperRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Interval = 1e6 // 1ms
	space := mem.NewAddressSpace()
	h := New(space, cfg, jemalloc.DefaultConfig())
	defer h.Shutdown()
	prog, _ := sim.NewProgram(space, h, nil)
	th, _ := prog.NewThread(1)
	defer th.Close()
	for i := 0; i < 3000; i++ {
		a, err := th.Malloc(256)
		if err != nil {
			t.Fatal(err)
		}
		if err := th.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	h.Shutdown()
	if h.Stats().Sweeps == 0 {
		t.Error("background sweeper never ran")
	}
	if h.Stats().Quarantined != 0 {
		t.Errorf("deferred bytes remain after shutdown: %d", h.Stats().Quarantined)
	}
}
