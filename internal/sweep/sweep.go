// Package sweep implements MineSweeper's linear memory sweep (§3.1, §4.4):
// a parallel scan of all program memory — heap, stacks and globals — that
// interprets every aligned word as a potential pointer and marks the target
// granule in the shadow map. Unlike a garbage collector's transitive marking,
// the scan is a single linear pass; zero-on-free (performed by the core
// layer) is what makes that sufficient.
//
// Work is divided among a main sweeper and a configurable number of helpers
// (6 by default, as in the paper), each taking fixed-size page chunks from a
// shared queue. Only resident, readable pages are scanned, so pages that
// were purged or unmapped in quarantine are skipped (§4.2, §4.5).
//
// Two scan entry points support the two operation modes: MarkAll for the
// concurrent full pass, and MarkDirty for the mostly-concurrent mode's brief
// stop-the-world re-scan of pages written during the full pass (tracked via
// the simulated soft-dirty page bits, standing in for Linux's soft-dirty
// PTEs, §4.3).
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"minesweeper/internal/mem"
	"minesweeper/internal/shadow"
)

// DefaultHelpers is the paper's default helper-thread count.
const DefaultHelpers = 6

// chunkPages is the unit of work distribution: 256 pages = 1 MiB per grab.
const chunkPages = 256

// StopTheWorld pauses and resumes all mutator threads. The mostly-concurrent
// mode uses it around the dirty re-scan; the fully concurrent mode never
// stops the world.
type StopTheWorld interface {
	// Stop returns once every mutator thread is parked at a safepoint.
	Stop()
	// Start resumes all mutator threads.
	Start()
}

// Sweeper scans program memory and marks potential pointer targets.
type Sweeper struct {
	space   *mem.AddressSpace
	marks   *shadow.Bitmap
	helpers int

	bytesSwept atomic.Uint64
	busyNanos  atomic.Int64 // summed worker busy time (CPU usage meter)
}

// New returns a Sweeper marking into marks with the given helper count
// (negative means DefaultHelpers). The effective count is clamped to the
// host's available parallelism: extra helpers on an oversubscribed host only
// time-slice against each other (the paper sized its 6 helpers to an 8-way
// machine).
func New(space *mem.AddressSpace, marks *shadow.Bitmap, helpers int) *Sweeper {
	if helpers < 0 {
		helpers = DefaultHelpers
	}
	if max := runtime.GOMAXPROCS(0) - 1; helpers > max {
		helpers = max
	}
	if helpers < 0 {
		helpers = 0
	}
	return &Sweeper{space: space, marks: marks, helpers: helpers}
}

// Workers returns the effective sweep worker count (main + helpers).
func (s *Sweeper) Workers() int { return s.helpers + 1 }

// chunk is one unit of scanning work.
type chunk struct {
	r         *mem.Region
	pageFirst int
	pageAfter int
	dirtyOnly bool
}

// collectChunks slices all sweepable regions into page chunks.
func (s *Sweeper) collectChunks(dirtyOnly bool) []chunk {
	var chunks []chunk
	for _, r := range s.space.Regions() {
		switch r.Kind() {
		case mem.KindHeap, mem.KindStack, mem.KindGlobals:
		default:
			continue
		}
		n := r.PageCount()
		for p := 0; p < n; p += chunkPages {
			end := p + chunkPages
			if end > n {
				end = n
			}
			chunks = append(chunks, chunk{r: r, pageFirst: p, pageAfter: end, dirtyOnly: dirtyOnly})
		}
	}
	return chunks
}

// scanChunk marks pointer targets in one chunk, returning bytes scanned.
func (s *Sweeper) scanChunk(c chunk) uint64 {
	var scanned uint64
	r := c.r
	for p := c.pageFirst; p < c.pageAfter; p++ {
		if !r.PageReadable(p) {
			continue
		}
		if c.dirtyOnly && !r.PageDirty(p) {
			continue
		}
		wordBase := p * mem.WordsPerPage
		// The page lock orders this scan against bulk zeroing (free,
		// decommit) so the sweeper never reads half-zeroed memory.
		r.LockPage(p)
		for w := 0; w < mem.WordsPerPage; w++ {
			v := r.WordAt(wordBase + w)
			if mem.IsHeapAddr(v) {
				s.marks.Mark(v)
			}
		}
		r.UnlockPage(p)
		scanned += mem.PageSize
	}
	return scanned
}

// run executes all chunks across the main goroutine plus helpers, returning
// total bytes scanned. Busy time is accounted as phase-elapsed time times the
// worker parallelism actually available, so an oversubscribed host does not
// inflate the CPU-utilisation meter with scheduler preemption.
func (s *Sweeper) run(chunks []chunk) uint64 {
	if len(chunks) == 0 {
		return 0
	}
	var next atomic.Int64
	var total atomic.Uint64
	worker := func() {
		var scanned uint64
		for {
			i := int(next.Add(1)) - 1
			if i >= len(chunks) {
				break
			}
			scanned += s.scanChunk(chunks[i])
		}
		total.Add(scanned)
	}
	workers := s.helpers + 1
	if workers > len(chunks) {
		workers = len(chunks)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 1; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	worker()
	wg.Wait()
	s.busyNanos.Add(int64(BusyShare(time.Since(start), workers)))
	n := total.Load()
	s.bytesSwept.Add(n)
	return n
}

// BusyShare estimates the CPU time a background phase of the given worker
// count actually consumed during an elapsed interval. With spare cores the
// workers own their cores and busy = elapsed x workers. On a fully
// oversubscribed host (GOMAXPROCS 1) the scheduler time-slices the phase
// against the mutators, so roughly half the elapsed interval belongs to the
// background work; counting all of it would both overstate CPU utilisation
// (Figure 12) and over-credit the adjusted wall time.
func BusyShare(elapsed time.Duration, workers int) time.Duration {
	par := workers
	if m := runtime.GOMAXPROCS(0); par > m {
		par = m
	}
	busy := elapsed * time.Duration(par)
	if runtime.GOMAXPROCS(0) <= 1 {
		busy /= 2
	}
	return busy
}

// MarkAll performs the full linear pass over all sweepable memory, marking
// every word that could be a heap pointer. It runs concurrently with
// mutators (their stores are atomic, as are our loads) and returns the
// number of bytes scanned.
func (s *Sweeper) MarkAll() uint64 {
	return s.run(s.collectChunks(false))
}

// MarkDirty re-scans only pages whose soft-dirty bit is set. The caller is
// expected to have cleared soft-dirty bits before MarkAll and stopped the
// world around this call (mostly-concurrent mode).
func (s *Sweeper) MarkDirty() uint64 {
	return s.run(s.collectChunks(true))
}

// BytesSwept returns the cumulative bytes scanned across all passes.
func (s *Sweeper) BytesSwept() uint64 { return s.bytesSwept.Load() }

// BusyTime returns cumulative worker busy time — the additional CPU usage
// the paper reports in Figure 12.
func (s *Sweeper) BusyTime() time.Duration { return time.Duration(s.busyNanos.Load()) }

// AddBusyTime accounts extra sweeper-thread work (e.g. the recycle phase)
// into the CPU usage meter.
func (s *Sweeper) AddBusyTime(d time.Duration) { s.busyNanos.Add(int64(d)) }
