package workload

import (
	"minesweeper/internal/mem"
	"minesweeper/internal/sim"
)

// Stress returns the control-plane stress profiles: phase-shifting workloads
// whose live set ramps toward a target in steps, with random-victim churn
// inside each phase. The ramp drives resident memory steadily toward (and
// past) a configured budget, so a governed run must tighten to stay inside it
// while an ungoverned run sails through — the experiment the adaptive control
// plane exists for.
func Stress() []Profile {
	pressureMix := SizeDist{
		{Lo: 32, Hi: 256, Weight: 50},
		{Lo: 257, Hi: 4096, Weight: 35},
		{Lo: 4097, Hi: 32768, Weight: 15},
	}
	return []Profile{
		{
			Name: "pressure", Suite: "stress", Threads: 1, Ops: 400_000,
			LiveTarget: 30000, Sizes: pressureMix,
			Lifetime: Lifetime{Random: 100},
			Kernel:   "pressure",
		},
		{
			// The multi-threaded variant: four ramps sharing one heap, so
			// pressure observations interleave with concurrent churn (the
			// -race stress configuration).
			Name: "pressure-mt", Suite: "stress", Threads: 4, Ops: 100_000,
			LiveTarget: 8000, Sizes: pressureMix,
			Lifetime: Lifetime{Random: 100},
			Kernel:   "pressure",
		},
	}
}

// pressurePhases is how many live-set steps the ramp climbs: the live target
// grows by a quarter of the profile's LiveTarget each phase, shifting the
// heap's steady state the way a program moving between input stages does.
const pressurePhases = 4

// kernelPressure runs the phase-shifting ramp: each phase raises the live-set
// target by LiveTarget/pressurePhases, fills up to it, then churns with
// random victims until the phase's operation budget is spent. Teardown frees
// everything, so a final sweep can return the process to its floor.
func kernelPressure(th *sim.Thread, prof *Profile) error {
	r := th.Rand()
	live := make([]uint64, 0, prof.LiveTarget)
	opsPerPhase := prof.Ops / pressurePhases
	if opsPerPhase < 1 {
		opsPerPhase = 1
	}
	alloc := func() (uint64, error) {
		a, err := th.Malloc(prof.Sizes.Sample(r))
		if err != nil {
			return 0, err
		}
		if err := th.Store(a, r.Uint64()&payloadMask); err != nil {
			return 0, err
		}
		return a, nil
	}
	for phase := 1; phase <= pressurePhases; phase++ {
		target := prof.LiveTarget * phase / pressurePhases
		if target < 1 {
			target = 1
		}
		for op := 0; op < opsPerPhase; op++ {
			if len(live) < target {
				a, err := alloc()
				if err != nil {
					return err
				}
				live = append(live, a)
				continue
			}
			// At target: churn. Free a random victim, allocate a
			// replacement — the free rate that fills the quarantine and
			// makes the sweep trigger the governed variable.
			i := r.Intn(len(live))
			if err := th.Free(live[i]); err != nil {
				return err
			}
			a, err := alloc()
			if err != nil {
				return err
			}
			live[i] = a
			// Touch a neighbouring object so the live set stays resident
			// rather than paging into irrelevance.
			j := r.Intn(len(live))
			if _, err := th.Load(live[j] + mem.WordSize*0); err != nil {
				return err
			}
		}
	}
	for _, a := range live {
		if err := th.Free(a); err != nil {
			return err
		}
	}
	return nil
}
