package core

import (
	"strings"
	"sync"
	"testing"

	"minesweeper/internal/jemalloc"
	"minesweeper/internal/mem"
	"minesweeper/internal/telemetry"
)

// TestTelemetrySweepRecord checks that a forced sweep with telemetry attached
// emits one SweepRecord whose work figures match what the sweep actually did.
func TestTelemetrySweepRecord(t *testing.T) {
	cfg := testConfig()
	cfg.Telemetry = telemetry.NewRegistry(16)
	cfg.Telemetry.SetSamplePeriod(1) // exact counts for the assertions below
	h, tid := newTestHeap(t, cfg)
	reg := cfg.Telemetry

	var addrs []uint64
	for i := 0; i < 50; i++ {
		a, err := h.Malloc(tid, 256)
		if err != nil {
			t.Fatal(err)
		}
		// Write real data so the containing pages are not known-zero: an
		// untouched heap would be dismissed entirely by the known-zero map
		// and scan nothing, which is exactly what the PagesScanned
		// assertion below must not be satisfied by.
		if err := h.space.Store64(a, uint64(i)+1); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		if err := h.Free(tid, a); err != nil {
			t.Fatal(err)
		}
	}
	h.Sweep()

	snap := reg.Snapshot()
	if snap.SweepsTotal != 1 || len(snap.Sweeps) != 1 {
		t.Fatalf("SweepsTotal/len = %d/%d, want 1/1", snap.SweepsTotal, len(snap.Sweeps))
	}
	rec := snap.Sweeps[0]
	if rec.Trigger != telemetry.TriggerForced {
		t.Errorf("Trigger = %v, want forced", rec.Trigger)
	}
	if rec.EntriesLocked != 50 {
		t.Errorf("EntriesLocked = %d, want 50", rec.EntriesLocked)
	}
	if rec.Released != 50 || rec.Retained != 0 {
		t.Errorf("Released/Retained = %d/%d, want 50/0", rec.Released, rec.Retained)
	}
	if rec.TotalNanos <= 0 {
		t.Errorf("TotalNanos = %d, want > 0", rec.TotalNanos)
	}
	if rec.PagesScanned == 0 || rec.BytesScanned == 0 {
		t.Errorf("PagesScanned/BytesScanned = %d/%d, want > 0", rec.PagesScanned, rec.BytesScanned)
	}
	if rec.Workers < 1 {
		t.Errorf("Workers = %d, want >= 1", rec.Workers)
	}
	// Hot-path histograms saw every call.
	for _, hs := range snap.Histograms {
		switch hs.Name {
		case telemetry.HistMalloc:
			if hs.Count != 50 {
				t.Errorf("malloc histogram Count = %d, want 50", hs.Count)
			}
		case telemetry.HistFree:
			if hs.Count != 50 {
				t.Errorf("free histogram Count = %d, want 50", hs.Count)
			}
		case telemetry.HistSweep:
			if hs.Count != 1 {
				t.Errorf("sweep histogram Count = %d, want 1", hs.Count)
			}
		}
	}
	// Gauges include the quarantine set and per-arena-shard occupancy.
	names := make(map[string]bool)
	for _, g := range snap.Gauges {
		names[g.Name] = true
	}
	for _, want := range []string{
		"quarantine_entries", "quarantine_bytes", "quarantine_epoch",
		"quarantine_age_epochs", "sweep_pages_scanned_total",
		"arena_shard0_live_regs", "arena_shard0_extents",
	} {
		if !names[want] {
			t.Errorf("gauge %q missing from snapshot (have %v)", want, snap.Gauges)
		}
	}
}

// TestTelemetryTriggerThreshold checks that a §3.2 threshold-triggered sweep
// is attributed to the threshold cause, not forced.
func TestTelemetryTriggerThreshold(t *testing.T) {
	cfg := testConfig()
	cfg.SweepThreshold = 0.05
	cfg.Telemetry = telemetry.NewRegistry(16)
	h, tid := newTestHeap(t, cfg)
	keep, _ := h.Malloc(tid, 4096)
	for i := 0; i < 200 && cfg.Telemetry.Ring().Total() == 0; i++ {
		a, err := h.Malloc(tid, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Free(tid, a); err != nil {
			t.Fatal(err)
		}
	}
	_ = keep
	recs := cfg.Telemetry.Ring().Snapshot()
	if len(recs) == 0 {
		t.Fatal("threshold sweep never fired")
	}
	if recs[0].Trigger != telemetry.TriggerThreshold {
		t.Errorf("Trigger = %v, want threshold", recs[0].Trigger)
	}
}

// TestTelemetryDetachedIsInert checks SetTelemetry(nil) detaches cleanly: no
// records accumulate afterwards and the hot paths keep working.
func TestTelemetryDetachedIsInert(t *testing.T) {
	cfg := testConfig()
	cfg.Telemetry = telemetry.NewRegistry(16)
	h, tid := newTestHeap(t, cfg)
	h.SetTelemetry(nil)
	a, err := h.Malloc(tid, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(tid, a); err != nil {
		t.Fatal(err)
	}
	h.Sweep()
	if n := cfg.Telemetry.Ring().Total(); n != 0 {
		t.Errorf("detached registry recorded %d sweeps, want 0", n)
	}
	if c := cfg.Telemetry.Malloc.Snapshot().Count; c != 0 {
		t.Errorf("detached registry recorded %d mallocs, want 0", c)
	}
}

// TestTelemetryPauseAttribution drives the §5.7 pause and checks the stall is
// visible in both the pause histogram and a pause-attributed sweep record.
func TestTelemetryPauseAttribution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PauseThreshold = 0.5
	cfg.SweepThreshold = 1e18 // only the pause brake may trigger
	cfg.UnmappedFactor = 0
	cfg.BufferCap = 1
	reg := telemetry.NewRegistry(64)
	cfg.Telemetry = reg
	h, err := New(mem.NewAddressSpace(), cfg, jemalloc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Shutdown()
	id := h.RegisterThread()
	keep, _ := h.Malloc(id, 4096)
	for i := 0; i < 3000; i++ {
		a, err := h.Malloc(id, 2048)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Free(id, a); err != nil {
			t.Fatal(err)
		}
	}
	_ = h.Free(id, keep)
	if h.Stats().PauseNanos == 0 {
		t.Fatal("no pause engaged; cannot check attribution")
	}
	ph := reg.Pause.Snapshot()
	if ph.Count == 0 {
		t.Error("pause histogram empty despite recorded pause time")
	}
	if ph.Sum != h.Stats().PauseNanos {
		t.Errorf("pause histogram Sum = %d, Stats().PauseNanos = %d; want equal",
			ph.Sum, h.Stats().PauseNanos)
	}
	var sawPause bool
	for _, rec := range reg.Ring().Snapshot() {
		if rec.Trigger == telemetry.TriggerPause {
			sawPause = true
		}
	}
	if !sawPause {
		t.Error("no sweep record attributed to the pause trigger")
	}
}

// TestPausePastFloorStalls drives maybePause past pauseFloorBytes with the
// sweep threshold disabled: the allocating thread must stall until a sweep
// completes and the stall must land in Stats().PauseNanos (the §5.7
// accounting fixed by the PauseCycles -> PauseNanos rename).
func TestPausePastFloorStalls(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PauseThreshold = 0.5
	cfg.SweepThreshold = 1e18
	cfg.UnmappedFactor = 0
	cfg.BufferCap = 1
	h, err := New(mem.NewAddressSpace(), cfg, jemalloc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Shutdown()
	id := h.RegisterThread()
	keep, _ := h.Malloc(id, 4096)
	// Push well past the 1 MiB pause floor. Below the floor the brake must
	// not engage even at an extreme quarantine:heap ratio.
	const each = 4096
	quarantined := uint64(0)
	for quarantined <= pauseFloorBytes/2 {
		a, err := h.Malloc(id, each)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Free(id, a); err != nil {
			t.Fatal(err)
		}
		quarantined += each
	}
	if h.Stats().PauseNanos != 0 {
		t.Fatal("pause engaged below pauseFloorBytes")
	}
	for quarantined <= 4*pauseFloorBytes {
		a, err := h.Malloc(id, each)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Free(id, a); err != nil {
			t.Fatal(err)
		}
		quarantined += each
	}
	_ = h.Free(id, keep)
	st := h.Stats()
	if st.PauseNanos == 0 {
		t.Error("no pause time recorded after exceeding pauseFloorBytes")
	}
	if st.Sweeps == 0 {
		t.Error("pause did not force a sweep; thread cannot have stalled on one")
	}
}

// TestTelemetrySnapshotDuringChurn races snapshots, text rendering, and gauge
// sampling against concurrent mutators and sweeps. Run under -race via
// make check / make race-hot.
func TestTelemetrySnapshotDuringChurn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufferCap = 8
	reg := telemetry.NewRegistry(32)
	reg.SetSamplePeriod(1) // time every op: maximum write pressure for -race
	cfg.Telemetry = reg
	jcfg := jemalloc.DefaultConfig()
	jcfg.Arenas = 2
	h, err := New(mem.NewAddressSpace(), cfg, jcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Shutdown()
	done := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			snap := reg.Snapshot()
			var sb strings.Builder
			if err := snap.WriteText(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			churn(t, h, nil, g, 2000)
		}(g)
	}
	wg.Wait()
	h.Sweep()
	close(done)
	readers.Wait()
	snap := reg.Snapshot()
	var mallocs uint64
	for _, hs := range snap.Histograms {
		if hs.Name == telemetry.HistMalloc {
			mallocs = hs.Count
		}
	}
	if mallocs != 4*2000 {
		t.Errorf("malloc histogram Count = %d, want %d", mallocs, 4*2000)
	}
	if snap.SweepsTotal == 0 {
		t.Error("no sweep records under churn")
	}
}
