package jemalloc

import (
	"sync"
	"sync/atomic"

	"minesweeper/internal/mem"
)

// arena owns extent allocation and recycling. Freed extents go onto
// per-page-count dirty lists; they are reused LIFO by new extent requests,
// and purged (decommitted via the extent hooks) either by decay — jemalloc's
// background aging of dirty memory — or by an explicit PurgeAll, which is
// what MineSweeper triggers after every sweep (§4.5).
type arena struct {
	mu    sync.Mutex
	space *mem.AddressSpace
	hooks ExtentHooks
	pm    *rtree

	// dirty holds free extents by page count. Purged (decommitted)
	// extents stay listed: their VA is "retained" and can be recommitted,
	// like jemalloc's retained extents.
	dirty      map[int][]*Extent
	dirtyBytes uint64 // committed bytes on dirty lists

	decayCycles uint64 // dirty extents older than this get purged on Tick
	now         uint64 // last observed virtual time

	nExtents int
	purges   atomic.Uint64
}

func newArena(space *mem.AddressSpace, hooks ExtentHooks, decayCycles uint64) *arena {
	return &arena{
		space:       space,
		hooks:       hooks,
		pm:          newRtree(),
		dirty:       make(map[int][]*Extent),
		decayCycles: decayCycles,
	}
}

// allocExtent returns a committed extent of exactly `pages` pages, reusing a
// dirty extent when one is available. Recycled extents that were never purged
// retain their previous contents (as real recycled memory does); purged or
// fresh extents read as zero.
func (a *arena) allocExtent(pages int) (*Extent, error) {
	a.mu.Lock()
	if list := a.dirty[pages]; len(list) > 0 {
		e := list[len(list)-1]
		a.dirty[pages] = list[:len(list)-1]
		if e.committed {
			a.dirtyBytes -= e.size
		}
		a.mu.Unlock()
		if !e.committed {
			if err := a.hooks.Commit(a.space, e.base, e.size); err != nil {
				return nil, err
			}
			e.committed = true
		}
		return e, nil
	}
	a.nExtents++
	a.mu.Unlock()

	r, err := a.space.Map(mem.KindHeap, uint64(pages)*mem.PageSize, true)
	if err != nil {
		return nil, err
	}
	e := &Extent{
		region:    r,
		base:      r.Base(),
		size:      r.Size(),
		committed: true,
	}
	a.pm.insert(e)
	return e, nil
}

// freeExtent places e on the dirty list for later reuse or purging.
func (a *arena) freeExtent(e *Extent) {
	e.state.Store(extStateFree)
	a.mu.Lock()
	e.dirtyStamp = a.now
	a.dirty[e.pages()] = append(a.dirty[e.pages()], e)
	if e.committed {
		a.dirtyBytes += e.size
	}
	a.mu.Unlock()
}

// purgeLocked decommits e's pages. Caller holds a.mu; e is on a dirty list.
func (a *arena) purgeLocked(e *Extent) {
	if !e.committed {
		return
	}
	// Hooks may be user-supplied; call outside the critical section in
	// bulk operations if this ever contends. Decommit cannot fail for
	// in-range extents, and an error here would mean a substrate bug.
	if err := a.hooks.Decommit(a.space, e.base, e.size); err != nil {
		panic("jemalloc: decommit failed: " + err.Error())
	}
	e.committed = false
	a.dirtyBytes -= e.size
}

// Tick advances virtual time and purges dirty extents older than the decay
// deadline, modelling jemalloc's decay-based purging.
func (a *arena) Tick(now uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.now = now
	if a.decayCycles == 0 {
		return
	}
	purged := false
	for _, list := range a.dirty {
		for _, e := range list {
			if e.committed && now-e.dirtyStamp >= a.decayCycles {
				a.purgeLocked(e)
				purged = true
			}
		}
	}
	if purged {
		a.purges.Add(1)
	}
}

// PurgeAll decommits every dirty extent immediately — the enhanced cleanup
// MineSweeper triggers after each sweep.
func (a *arena) PurgeAll() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, list := range a.dirty {
		for _, e := range list {
			a.purgeLocked(e)
		}
	}
	a.purges.Add(1)
}

// dirtyStats returns (committed dirty bytes, extent count) for stats.
func (a *arena) dirtyStats() (uint64, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, list := range a.dirty {
		n += len(list)
	}
	return a.dirtyBytes, n
}
