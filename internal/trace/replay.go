package trace

import (
	"fmt"

	"minesweeper/internal/sim"
)

// Record synthesises a trace from a simple churn pattern — a convenience for
// generating replayable traces without running a full workload.
func Record(events int, liveWindow int, maxSize uint64, seed uint64) *Trace {
	r := sim.NewRand(seed)
	t := &Trace{Threads: 1}
	var live []uint64
	nextID := uint64(1)
	for i := 0; i < events; i++ {
		if len(live) >= liveWindow || (len(live) > 0 && r.Intn(100) < 40) {
			idx := r.Intn(len(live))
			t.Events = append(t.Events, Event{Kind: KindFree, ID: live[idx]})
			live[idx] = live[len(live)-1]
			live = live[:len(live)-1]
		} else {
			t.Events = append(t.Events, Event{
				Kind: KindMalloc, ID: nextID, Size: r.Range(8, maxSize),
			})
			live = append(live, nextID)
			nextID++
		}
	}
	for _, id := range live {
		t.Events = append(t.Events, Event{Kind: KindFree, ID: id})
	}
	return t
}

// ReplayResult summarises one replay.
type ReplayResult struct {
	Mallocs, Frees uint64
	// PeakRSS is the space's peak resident footprint observed at event
	// granularity (coarse; for time-sampled RSS use the workload runner).
	PeakRSS uint64
}

// Replay executes the trace against a program's allocator, using one sim
// thread per trace thread.
func Replay(t *Trace, prog *sim.Program) (ReplayResult, error) {
	var res ReplayResult
	threads := int(t.Threads)
	if threads < 1 {
		threads = 1
	}
	ths := make([]*sim.Thread, threads)
	for i := range ths {
		th, err := prog.NewThread(uint64(i) + 1)
		if err != nil {
			return res, err
		}
		defer th.Close()
		ths[i] = th
	}
	addrs := make(map[uint64]uint64, 1024)
	for i, e := range t.Events {
		th := ths[int(e.Thread)%threads]
		switch e.Kind {
		case KindMalloc:
			a, err := th.Malloc(e.Size)
			if err != nil {
				return res, fmt.Errorf("trace: event %d: %w", i, err)
			}
			addrs[e.ID] = a
			res.Mallocs++
		case KindFree:
			a, ok := addrs[e.ID]
			if !ok {
				return res, fmt.Errorf("trace: event %d: free of unknown id %d", i, e.ID)
			}
			delete(addrs, e.ID)
			if err := th.Free(a); err != nil {
				return res, fmt.Errorf("trace: event %d: %w", i, err)
			}
			res.Frees++
		}
		if i%1024 == 0 {
			if rss := prog.Space().RSS(); rss > res.PeakRSS {
				res.PeakRSS = rss
			}
		}
	}
	if rss := prog.Space().RSS(); rss > res.PeakRSS {
		res.PeakRSS = rss
	}
	return res, nil
}
