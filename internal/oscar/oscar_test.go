package oscar

import (
	"errors"
	"testing"

	"minesweeper/internal/alloc"
	"minesweeper/internal/mem"
	"minesweeper/internal/sim"
)

func setup(t *testing.T) (*sim.Program, *sim.Thread, *Heap, *mem.AddressSpace) {
	t.Helper()
	space := mem.NewAddressSpace()
	h := New(space)
	t.Cleanup(h.Shutdown)
	prog, err := sim.NewProgram(space, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	th, err := prog.NewThread(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(th.Close)
	return prog, th, h, space
}

func TestEachObjectOwnVirtualPages(t *testing.T) {
	_, th, _, space := setup(t)
	a, _ := th.Malloc(64)
	b, _ := th.Malloc(64)
	ra, rb := space.Lookup(a), space.Lookup(b)
	if ra == nil || rb == nil {
		t.Fatal("objects not mapped")
	}
	if ra == rb {
		t.Error("two objects share a virtual region")
	}
	// But they share physical backing (co-located on the same slab page).
	if !ra.IsAlias() || !rb.IsAlias() {
		t.Fatal("small objects not allocated as aliases")
	}
	if ra.Parent() != rb.Parent() {
		t.Error("neighbouring small objects not physically co-located")
	}
}

func TestAliasesSharePhysicalMemory(t *testing.T) {
	_, th, _, space := setup(t)
	a, _ := th.Malloc(64)
	if err := th.Store(a, 0x77); err != nil {
		t.Fatal(err)
	}
	// Reading back through the alias works; TestAliasViewsConsistent
	// checks visibility through the parent.
	v, err := space.Load64(a)
	if err != nil || v != 0x77 {
		t.Fatalf("alias read = %v, %v", v, err)
	}
}

func TestFreeRevokesVirtualPages(t *testing.T) {
	prog, th, _, _ := setup(t)
	a, _ := th.Malloc(64)
	_ = th.Store(a, 42)
	if err := th.Free(a); err != nil {
		t.Fatal(err)
	}
	// Dangling access faults (page permissions revoked).
	if _, err := th.Load(a); err == nil {
		t.Fatal("access to freed object's virtual page succeeded")
	}
	if prog.UAFAccesses() == 0 {
		t.Error("fault not counted")
	}
}

func TestVirtualAddressesNeverReused(t *testing.T) {
	_, th, _, _ := setup(t)
	seen := make(map[uint64]bool)
	for i := 0; i < 2000; i++ {
		a, err := th.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if seen[a] {
			t.Fatalf("virtual address %#x reused", a)
		}
		seen[a] = true
		if err := th.Free(a); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPhysicalPagesSharedAndReleased(t *testing.T) {
	_, th, _, space := setup(t)
	// 64 small objects co-locate on very few physical pages.
	var addrs []uint64
	for i := 0; i < 64; i++ {
		a, _ := th.Malloc(56)
		addrs = append(addrs, a)
	}
	rss := space.RSS()
	// One slab (256 KiB) + stacks/globals: far below one page per object
	// plus headroom — the co-location property.
	if rss > 1<<20 {
		t.Errorf("RSS = %d for 64 small objects; physical co-location broken", rss)
	}
	for _, a := range addrs {
		if err := th.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	// Fill another slab so the first one retires and releases.
	for i := 0; i < 8; i++ {
		b, _ := th.Malloc(2048)
		_ = th.Free(b)
	}
	_ = rss
}

func TestLargeObjectLifecycle(t *testing.T) {
	_, th, _, space := setup(t)
	a, err := th.Malloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if space.Lookup(a).IsAlias() {
		t.Error("large object allocated as alias")
	}
	rss := space.RSS()
	if err := th.Free(a); err != nil {
		t.Fatal(err)
	}
	if got := space.RSS(); got >= rss {
		t.Errorf("RSS = %d after large free, want < %d", got, rss)
	}
	if _, err := th.Load(a); err == nil {
		t.Error("access to freed large object succeeded")
	}
}

func TestUsableSizeAndErrors(t *testing.T) {
	_, th, h, _ := setup(t)
	a, _ := th.Malloc(100)
	if got := h.UsableSize(a); got < 101 {
		t.Errorf("UsableSize = %d, want >= 101 (end pad)", got)
	}
	_ = th.Free(a)
	if h.UsableSize(a) != 0 {
		t.Error("UsableSize of freed object != 0")
	}
	if err := th.Free(a); !errors.Is(err, alloc.ErrInvalidFree) {
		t.Errorf("double free = %v, want ErrInvalidFree (page already revoked)", err)
	}
}

func TestNeighbourSurvivesFree(t *testing.T) {
	// Freeing one object must not disturb a physically co-located
	// neighbour reachable through its own alias.
	_, th, _, _ := setup(t)
	a, _ := th.Malloc(64)
	b, _ := th.Malloc(64)
	_ = th.Store(b, 0xB0B)
	if err := th.Free(a); err != nil {
		t.Fatal(err)
	}
	v, err := th.Load(b)
	if err != nil || v != 0xB0B {
		t.Errorf("neighbour read = %#x, %v; want 0xB0B, nil", v, err)
	}
}

func TestAliasViewsConsistent(t *testing.T) {
	// Writes through an object's alias must be visible through the
	// parent slab's physical addresses (one physical page, many virtual
	// views).
	_, th, _, space := setup(t)
	a, _ := th.Malloc(64)
	ra := space.Lookup(a)
	parent := ra.Parent()
	if parent == nil {
		t.Fatal("not an alias")
	}
	if err := th.Store(a, 0xF00D); err != nil {
		t.Fatal(err)
	}
	// Scan the physical slab for the stored value: the alias window maps
	// some page of the parent, so the word must be visible there.
	found := false
	for off := uint64(0); off < parent.Size(); off += 8 {
		if v, err := space.Load64(parent.Base() + off); err == nil && v == 0xF00D {
			found = true
			break
		}
	}
	if !found {
		t.Error("alias write not visible through physical slab")
	}
}
