// Package minesweeper is a faithful Go reproduction of MineSweeper (Erdős,
// Ainsworth & Jones, ASPLOS 2022): a drop-in layer between an application
// and its memory allocator that prevents use-after-free exploitation by
// quarantining freed allocations until a linear sweep of program memory
// proves no dangling pointers to them remain.
//
// Go has no manual memory management, so the library ships its own complete
// substrate: a simulated 64-bit virtual address space (internal/mem), a
// jemalloc-style allocator (internal/jemalloc), the MineSweeper layer itself
// (internal/core) with zero-on-free, large-object unmapping, concurrent
// parallel sweeping and allocator purge integration, plus the paper's two
// comparison systems, MarkUs (internal/markus) and FFMalloc
// (internal/ffmalloc), and a Scudo-style hardened allocator pairing
// (internal/scudo).
//
// The public API models a protected process:
//
//	proc, _ := minesweeper.NewProcess(minesweeper.Config{Scheme: minesweeper.SchemeMineSweeper})
//	defer proc.Close()
//	th, _ := proc.NewThread()
//	p, _ := th.Malloc(64)
//	th.Store(p, 42)
//	th.Free(p)            // quarantined, zeroed — not yet reusable
//	v, _ := th.Load(p)    // benign use-after-free: reads 0
//
// Every pointer a workload stores is a real address in the simulated space;
// sweeps, shadow-map marking, double-free de-duplication and page unmapping
// all operate exactly as described in the paper. See DESIGN.md for the
// architecture and EXPERIMENTS.md for the reproduction of the paper's
// evaluation.
package minesweeper

import (
	"errors"
	"fmt"

	"minesweeper/internal/alloc"
	"minesweeper/internal/control"
)

// Addr is a virtual address in the simulated process.
type Addr = uint64

// Scheme selects the memory-management scheme protecting a Process.
type Scheme int

// Available schemes.
const (
	// SchemeBaseline is unprotected jemalloc (the evaluation baseline).
	SchemeBaseline Scheme = iota
	// SchemeMineSweeper is the paper's default: fully concurrent sweeps.
	SchemeMineSweeper
	// SchemeMineSweeperMostlyConcurrent adds the stop-the-world re-scan
	// of modified pages (§4.3, §5.3).
	SchemeMineSweeperMostlyConcurrent
	// SchemeMarkUs is the transitive-marking comparison system.
	SchemeMarkUs
	// SchemeFFMalloc is the one-time-allocator comparison system.
	SchemeFFMalloc
	// SchemeScudoMineSweeper pairs MineSweeper with a Scudo-style
	// hardened allocator (§7).
	SchemeScudoMineSweeper
	// SchemeOscar is the page-permissions comparator (§6.3).
	SchemeOscar
	// SchemeDangSan is the pointer-tracking nullification comparator
	// (§6.4).
	SchemeDangSan
	// SchemePSweeper is the concurrent pointer-sweeping comparator (§6.4).
	SchemePSweeper
	// SchemeCRCount is the reference-counting comparator (§6.6).
	SchemeCRCount
	// SchemeDlmalloc is an unprotected GNU-malloc-style allocator with
	// in-band metadata (the §2 footnote's corruptible baseline).
	SchemeDlmalloc
	// SchemeMineSweeperDlmalloc drops MineSweeper onto the dlmalloc
	// substrate — a second any-allocator integration (§7).
	SchemeMineSweeperDlmalloc
)

// String returns the scheme's name.
func (s Scheme) String() string {
	switch s {
	case SchemeBaseline:
		return "baseline"
	case SchemeMineSweeper:
		return "minesweeper"
	case SchemeMineSweeperMostlyConcurrent:
		return "minesweeper-mostly"
	case SchemeMarkUs:
		return "markus"
	case SchemeFFMalloc:
		return "ffmalloc"
	case SchemeScudoMineSweeper:
		return "scudo-minesweeper"
	case SchemeOscar:
		return "oscar"
	case SchemeDangSan:
		return "dangsan"
	case SchemePSweeper:
		return "psweeper"
	case SchemeCRCount:
		return "crcount"
	case SchemeDlmalloc:
		return "dlmalloc"
	case SchemeMineSweeperDlmalloc:
		return "minesweeper-dlmalloc"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Allocation errors, matched with errors.Is.
var (
	// ErrOutOfMemory reports address-space exhaustion.
	ErrOutOfMemory = alloc.ErrOutOfMemory
	// ErrInvalidFree reports a free of something that is not a live
	// allocation base.
	ErrInvalidFree = alloc.ErrInvalidFree
	// ErrDoubleFree reports a detected double free (only surfaced by
	// schemes/configurations that report rather than absorb them).
	ErrDoubleFree = alloc.ErrDoubleFree
)

// Config configures a Process. The zero value is a usable MineSweeper
// default (SchemeBaseline is explicit: Scheme's zero value is the baseline,
// so pick SchemeMineSweeper for protection).
type Config struct {
	// Scheme selects the protection scheme.
	Scheme Scheme
	// SweepThreshold overrides the quarantine fraction that triggers a
	// sweep (default 0.15; MarkUs uses 0.25). Ignored by schemes without
	// sweeps.
	SweepThreshold float64
	// Helpers overrides the helper sweep-thread count (default 6, clamped
	// to available CPUs).
	Helpers int
	// PauseThreshold overrides the allocation-pause threshold (§5.7);
	// zero keeps the default, negative disables pausing.
	PauseThreshold float64
	// UnmappedFactor overrides the unmapped-quarantine sweep trigger
	// (default 9, §4.2).
	UnmappedFactor float64
	// BufferCap overrides the thread-local quarantine buffer capacity.
	BufferCap int
	// DisableConcurrentMark turns off the pipelined mostly-concurrent mark:
	// the whole marking pass then runs inside the stop-the-world window
	// instead of concurrently with mutators, so the pause grows with heap
	// size — ablation only. Meaningful only for
	// SchemeMineSweeperMostlyConcurrent.
	DisableConcurrentMark bool
	// RescanBudgetPages overrides the dirty-page budget for the
	// mostly-concurrent stop-the-world re-scan (default 512): while more
	// pages are dirty, the sweeper pre-cleans concurrently before stopping
	// the world. Negative disables pre-cleaning; zero keeps the default.
	RescanBudgetPages int
	// DisableZeroing turns off zero-on-free (§4.1) — ablation only.
	DisableZeroing bool
	// ZeroMode selects when zero-on-free runs for small quarantined frees.
	// ZeroImmediate (the default) zeroes inside free(), so a benign
	// dangling read sees zeros the moment free returns — the paper's
	// semantics. ZeroDeferred batches the zeroing into the thread ring's
	// drain (one range-merged pass per batch, always completing before the
	// entries become sweep-visible), trading a bounded stale-read window —
	// at most one ring, BufferCap frees — for a cheaper free() hot path.
	// Incompatible with DisableZeroing; Validate rejects the combination.
	// Governed heaps expose the deferral as a knob the controller may turn
	// off under pressure but never on when this field left it immediate.
	ZeroMode ZeroMode
	// DisableUnmapping turns off large-object page release (§4.2).
	DisableUnmapping bool
	// DisablePurging turns off the post-sweep allocator purge (§4.5).
	DisablePurging bool
	// Synchronous runs sweeps on the freeing thread (ablation, Figure 15).
	Synchronous bool
	// DebugDoubleFree reports double frees as errors instead of absorbing
	// them (the paper's debug mode).
	DebugDoubleFree bool
	// Telemetry attaches a telemetry registry to the scheme's heap:
	// per-sweep phase records, malloc/free latency histograms, and
	// quarantine gauges, retrievable with Process.Telemetry(). Supported
	// by the core-based schemes (MineSweeper variants and Scudo+MS);
	// ignored elsewhere.
	Telemetry bool
	// Events attaches a flight recorder (internal/events) to the scheme's
	// heap: always-on per-thread rings of sweep-phase spans, pause and STW
	// windows, drains, and sampled ops, with anomaly-triggered dumps and
	// the exporters behind msstat -events/-chrome/-watch. Retrievable with
	// Process.Events(). Same scheme support as Telemetry.
	Events bool

	// MemoryBudget, when non-zero, bounds the process's resident footprint:
	// the control plane treats it as the 100% pressure mark, sweeps are
	// additionally triggered when RSS crosses it, and allocation briefly
	// pauses while RSS sits above it with sweepable quarantine to reclaim.
	// Only meaningful for schemes with sweeps (the MineSweeper variants);
	// Validate rejects it elsewhere.
	MemoryBudget uint64
	// Controller selects the policy governing the runtime knobs (sweep
	// threshold, unmapped factor, pause brake, helper count). Nil with a
	// MemoryBudget set means AIMDPolicy(); nil without a budget leaves the
	// heap ungoverned (the fixed-knob behaviour). StaticPolicy() attaches
	// the control plane for observability while freezing the knobs at
	// their configured values.
	Controller Policy
}

// ZeroMode selects when zero-on-free (§4.1) runs for small quarantined
// frees; see Config.ZeroMode.
type ZeroMode int

const (
	// ZeroImmediate zeroes inside free() (the default; the paper's
	// benign-dangling-read-sees-0 semantics).
	ZeroImmediate ZeroMode = iota
	// ZeroDeferred batches zeroing into the thread-ring drain.
	ZeroDeferred
)

// String returns the mode's name.
func (z ZeroMode) String() string {
	switch z {
	case ZeroImmediate:
		return "immediate"
	case ZeroDeferred:
		return "deferred"
	default:
		return fmt.Sprintf("ZeroMode(%d)", int(z))
	}
}

// Policy is a control-plane policy deciding knob adjustments at sweep
// boundaries. Use StaticPolicy or AIMDPolicy, or implement the interface for
// custom governing.
type Policy = control.Policy

// StaticPolicy returns the policy that freezes the configured knobs: the
// governed heap behaves bit-for-bit like an ungoverned one, while still
// recording pressure levels for observability. The control group for
// governor experiments.
func StaticPolicy() Policy { return control.Static{} }

// AIMDPolicy returns the default adaptive governor: additive increase,
// multiplicative decrease. Under memory pressure it tightens the sweep
// trigger, pause brake and unmapped factor multiplicatively and adds sweep
// helpers; when calm it relaxes additively back toward the configured
// baseline.
func AIMDPolicy() Policy { return control.NewAIMD() }

// ErrBadConfig reports an invalid Config, matched with errors.Is.
var ErrBadConfig = errors.New("minesweeper: invalid config")

// schemeHasSweeps reports whether the scheme runs MineSweeper sweeps (the
// core-based schemes, for which budget/controller/knob overrides are
// meaningful).
func (s Scheme) schemeHasSweeps() bool {
	switch s {
	case SchemeMineSweeper, SchemeMineSweeperMostlyConcurrent,
		SchemeScudoMineSweeper, SchemeMineSweeperDlmalloc:
		return true
	}
	return false
}

// Validate checks the configuration for nonsense values and returns an error
// wrapping ErrBadConfig describing the first problem found. NewProcess calls
// it; callers constructing configs programmatically can call it early.
//
// Zero values mean "use the default" and always validate. Explicit values
// must make sense: SweepThreshold is a fraction in (0, 1] (the quarantine
// can never exceed the heap that contains it, so a larger value would
// silently disable sweeping — ask for that explicitly with 1), Helpers and
// BufferCap cannot be negative, UnmappedFactor below 1 would re-sweep
// permanently (the paper uses 9), and MemoryBudget/Controller require a
// scheme that sweeps at all.
func (c Config) Validate() error {
	if c.SweepThreshold < 0 || c.SweepThreshold > 1 {
		return fmt.Errorf("%w: SweepThreshold %v outside (0, 1] (0 = default 0.15)",
			ErrBadConfig, c.SweepThreshold)
	}
	if c.Helpers < 0 {
		return fmt.Errorf("%w: negative Helpers %d (0 = default %d)",
			ErrBadConfig, c.Helpers, 6)
	}
	if c.BufferCap < 0 {
		return fmt.Errorf("%w: negative BufferCap %d (0 = default)",
			ErrBadConfig, c.BufferCap)
	}
	if c.UnmappedFactor != 0 && c.UnmappedFactor < 1 {
		return fmt.Errorf("%w: UnmappedFactor %v below 1 (0 = default 9; values under 1 would trigger permanent re-sweeping)",
			ErrBadConfig, c.UnmappedFactor)
	}
	if c.MemoryBudget > 0 && !c.Scheme.schemeHasSweeps() {
		return fmt.Errorf("%w: MemoryBudget set but scheme %v has no sweeps to govern",
			ErrBadConfig, c.Scheme)
	}
	if c.Controller != nil && !c.Scheme.schemeHasSweeps() {
		return fmt.Errorf("%w: Controller set but scheme %v has no sweeps to govern",
			ErrBadConfig, c.Scheme)
	}
	if c.ZeroMode == ZeroDeferred && c.DisableZeroing {
		return fmt.Errorf("%w: ZeroDeferred with DisableZeroing — there is no zeroing to defer",
			ErrBadConfig)
	}
	if c.ZeroMode != ZeroImmediate && c.ZeroMode != ZeroDeferred {
		return fmt.Errorf("%w: unknown ZeroMode %v", ErrBadConfig, c.ZeroMode)
	}
	return nil
}

// Stats is a snapshot of a Process's memory-management statistics.
type Stats struct {
	// Allocated is live application bytes.
	Allocated uint64
	// Quarantined is freed-but-not-yet-released bytes (mapped + unmapped).
	Quarantined uint64
	// QuarantinedUnmapped is the unmapped portion of Quarantined.
	QuarantinedUnmapped uint64
	// RSS is the resident footprint of the simulated process, excluding
	// allocator metadata.
	RSS uint64
	// MetaBytes estimates allocator and quarantine metadata.
	MetaBytes uint64
	// Mallocs and Frees count completed operations at the substrate.
	Mallocs, Frees uint64
	// Sweeps counts completed sweep or marking passes.
	Sweeps uint64
	// FailedFrees counts quarantined allocations kept back by a sweep.
	FailedFrees uint64
	// ReleasedFrees counts quarantined allocations released by sweeps.
	ReleasedFrees uint64
	// DoubleFrees counts absorbed double frees.
	DoubleFrees uint64
	// BytesSwept is the total memory examined by sweeps.
	BytesSwept uint64
	// SweeperBusy is background sweeper CPU time in nanoseconds.
	SweeperBusy uint64
	// STWTime is stop-the-world time in nanoseconds.
	STWTime uint64
	// PauseTime is allocation-pause time in nanoseconds (§5.7).
	PauseTime uint64
	// UAFFaults counts memory accesses that faulted — use-after-free
	// attempts the scheme turned into clean faults.
	UAFFaults uint64
}
