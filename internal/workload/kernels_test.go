package workload

import (
	"testing"

	"minesweeper/internal/jemalloc"
	"minesweeper/internal/mem"
	"minesweeper/internal/schemes"
	"minesweeper/internal/sim"
)

func kernelProgram(t *testing.T) (*sim.Program, *sim.Thread) {
	t.Helper()
	space := mem.NewAddressSpace()
	heap := jemalloc.New(space, jemalloc.DefaultConfig())
	prog, err := sim.NewProgram(space, heap, nil)
	if err != nil {
		t.Fatal(err)
	}
	th, err := prog.NewThread(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(th.Close)
	return prog, th
}

func TestKernelCacheScratchBalanced(t *testing.T) {
	prog, th := kernelProgram(t)
	prof := &Profile{Name: "cs", Ops: 5000, Sizes: SizeDist{{1 << 14, 1 << 14, 1}}}
	if err := kernelCacheScratch(th, prof); err != nil {
		t.Fatal(err)
	}
	st := prog.Heap().Stats()
	if st.Mallocs != 1 || st.Frees != 1 {
		t.Errorf("cache-scratch mallocs/frees = %d/%d, want 1/1", st.Mallocs, st.Frees)
	}
}

func TestKernelLarsonBalanced(t *testing.T) {
	prog, th := kernelProgram(t)
	prof := &Profile{Name: "larson", Ops: 2000, LiveTarget: 64, Sizes: SizeDist{{16, 512, 1}}}
	if err := kernelLarson(th, prof); err != nil {
		t.Fatal(err)
	}
	st := prog.Heap().Stats()
	if st.Mallocs != st.Frees {
		t.Errorf("larson mallocs=%d frees=%d, want balanced", st.Mallocs, st.Frees)
	}
	if st.Mallocs < 2000 {
		t.Errorf("larson did only %d mallocs", st.Mallocs)
	}
	if st.Allocated != 0 {
		t.Errorf("larson leaked %d bytes", st.Allocated)
	}
}

func TestKernelSHBenchBalanced(t *testing.T) {
	prog, th := kernelProgram(t)
	prof := &Profile{Name: "sh", Ops: 4000, LiveTarget: 500, Sizes: SizeDist{{16, 80, 1}}}
	if err := kernelSHBench(th, prof); err != nil {
		t.Fatal(err)
	}
	st := prog.Heap().Stats()
	if st.Mallocs != st.Frees || st.Allocated != 0 {
		t.Errorf("sh-bench unbalanced: mallocs=%d frees=%d live=%d",
			st.Mallocs, st.Frees, st.Allocated)
	}
}

func TestKernelGlibcSimpleBalanced(t *testing.T) {
	prog, th := kernelProgram(t)
	prof := &Profile{Name: "glibc", Ops: 3000, Sizes: SizeDist{{16, 128, 1}}}
	if err := kernelGlibcSimple(th, prof); err != nil {
		t.Fatal(err)
	}
	st := prog.Heap().Stats()
	if st.Mallocs != st.Frees || st.Allocated != 0 {
		t.Errorf("glibc-simple unbalanced: mallocs=%d frees=%d live=%d",
			st.Mallocs, st.Frees, st.Allocated)
	}
}

func TestXmallocCrossThreadFrees(t *testing.T) {
	// Run the cross-thread kernel via the public runner and confirm the
	// books balance afterwards (everything eventually freed or drained).
	p, ok := FindProfile("xmalloc-testN")
	if !ok {
		t.Fatal("profile missing")
	}
	res, err := Run(p, schemes.New(schemes.Baseline), Options{ScaleDiv: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Mallocs == 0 {
		t.Fatal("no allocations")
	}
	// Ring buffers may strand at most one ring per thread when threads
	// exit while peers still push.
	stranded := res.Stats.Mallocs - res.Stats.Frees
	if limit := uint64(p.Threads) * xmallocRingCap; stranded > limit {
		t.Errorf("%d of %d allocations stranded (> %d)", stranded, res.Stats.Mallocs, limit)
	}
}

func TestEngineRootSlotRecycling(t *testing.T) {
	// Root slots must be returned on free: a long run with a tiny live
	// target cannot exhaust root slots.
	space := mem.NewAddressSpace()
	heap := jemalloc.New(space, jemalloc.DefaultConfig())
	prog, err := sim.NewProgram(space, heap, nil)
	if err != nil {
		t.Fatal(err)
	}
	th, err := prog.NewThread(1)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	prof := Profile{
		Name: "slots", Threads: 1, Ops: 20000, AllocBP: 10000,
		LiveTarget: 4, Sizes: SizeDist{{16, 32, 1}},
		Lifetime: Lifetime{Random: 1}, PointerPct: 0, InitWords: 1,
	}
	e := newEngine(th, prog, &prof, 0)
	if err := e.run(); err != nil {
		t.Fatal(err)
	}
	if len(e.roots) == 0 {
		t.Error("root slot pool drained to zero despite tiny live set")
	}
}
