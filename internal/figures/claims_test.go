package figures

import (
	"testing"

	"minesweeper/internal/metrics"
	"minesweeper/internal/schemes"
	"minesweeper/internal/workload"
)

// TestPaperClaimsQualitative is the reproduction's CI check: the paper's
// qualitative claims must hold at full workload scale (single rep, three
// benchmarks). Quantitative comparisons live in EXPERIMENTS.md; this test
// guards the orderings that constitute the paper's contribution.
func TestPaperClaimsQualitative(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := NewRunner(workload.Options{ScaleDiv: 1}, 1)

	// Representative benchmarks: the worst case, one moderate, one
	// compute-bound.
	benches := []string{"xalancbmk", "perlbench", "lbm"}
	type cell struct{ slow, mem float64 }
	res := map[string]map[string]cell{}
	for _, bench := range benches {
		prof, ok := workload.FindProfile(bench)
		if !ok {
			t.Fatal(bench)
		}
		res[bench] = map[string]cell{}
		for _, k := range []schemes.Kind{schemes.MineSweeper, schemes.MarkUs, schemes.FFMalloc} {
			c, err := r.ratios(prof, schemes.New(k))
			if err != nil {
				t.Fatal(err)
			}
			res[bench][k.String()] = cell{c.Slowdown, c.AvgMem}
		}
	}

	// Claim 1 (§5.2): on the worst case (xalancbmk), MarkUs is slower
	// than MineSweeper (paper: 2.97x vs 1.73x; quiet-machine runs measure
	// 3.5x vs 2.0x — see EXPERIMENTS.md). Under `go test ./...` this test
	// shares the CPU with other packages, so the margin here is
	// directional with a noise allowance rather than the full gap.
	if ms, mk := res["xalancbmk"]["minesweeper"].slow, res["xalancbmk"]["markus"].slow; mk < ms*0.9 {
		t.Errorf("claim 1: MarkUs (%0.3f) clearly faster than MineSweeper (%0.3f) on xalancbmk", mk, ms)
	}

	// Claim 2 (§5.2): FFMalloc's memory overhead on mixed-lifetime
	// allocation-heavy benchmarks is a multiple of MineSweeper's.
	if ff, ms := res["perlbench"]["ffmalloc"].mem, res["perlbench"]["minesweeper"].mem; ff < 1.5*ms {
		t.Errorf("claim 2: FFMalloc memory (%0.3f) not >> MineSweeper (%0.3f) on perlbench", ff, ms)
	}

	// Claim 3 (§5.2): compute-bound benchmarks see ~zero overhead under
	// MineSweeper (absolute bound), and for every scheme the compute-bound
	// benchmark costs less than the allocation-heavy worst case (ordering;
	// robust to short-run noise).
	if got := res["lbm"]["minesweeper"].slow; got > 1.35 {
		t.Errorf("claim 3: minesweeper slows lbm by %0.3f (> 1.35)", got)
	}
	if lb, xa := res["lbm"]["markus"].slow, res["xalancbmk"]["markus"].slow; lb > xa {
		t.Errorf("claim 3: markus lbm (%0.3f) costs more than xalancbmk (%0.3f)", lb, xa)
	}

	// Claim 4 (headline): MineSweeper is cheap on BOTH axes on the
	// allocation-heavy cases: its memory stays well below FFMalloc's and
	// its time well below MarkUs's worst case.
	if ms := res["xalancbmk"]["minesweeper"]; ms.slow > 3.0 || ms.mem > 2.5 {
		t.Errorf("claim 4: MineSweeper xalancbmk = %0.3f time / %0.3f mem", ms.slow, ms.mem)
	}
}

// TestSweepCountOrdering guards Figure 14's content: omnetpp and xalancbmk
// sweep an order of magnitude more than a compute-bound benchmark.
func TestSweepCountOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := NewRunner(workload.Options{ScaleDiv: 4}, 1)
	sweeps := func(name string) uint64 {
		prof, _ := workload.FindProfile(name)
		res, err := r.result(prof, schemes.New(schemes.MineSweeper))
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Sweeps
	}
	om, xa, lbm := sweeps("omnetpp"), sweeps("xalancbmk"), sweeps("lbm")
	if om < 3 || xa < 3 {
		t.Errorf("allocation-heavy benchmarks barely sweep: omnetpp=%d xalancbmk=%d", om, xa)
	}
	if lbm > om || lbm > xa {
		t.Errorf("compute-bound lbm sweeps (%d) as much as omnetpp (%d)/xalancbmk (%d)", lbm, om, xa)
	}
}

// TestGeomeanHelperAgainstPaperTable sanity-checks the paper-data table
// against the headline constants (catches transcription drift).
func TestGeomeanHelperAgainstPaperTable(t *testing.T) {
	var ms []float64
	for _, b := range metrics.PaperSpec2006 {
		ms = append(ms, b.MSTime)
	}
	g := metrics.Geomean(ms)
	if g < 1.02 || g > 1.09 {
		t.Errorf("paper per-benchmark MS slowdowns geomean to %0.3f; expected near 1.054", g)
	}
}
