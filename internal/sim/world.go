package sim

import (
	"sync"
	"sync/atomic"
)

// World coordinates stop-the-world pauses between mutator threads and a
// collector/sweeper. It is the simulated analogue of the signal- or
// soft-dirty-based world stopping the paper discusses (§4.3): mutators poll
// Safepoint() between operations (one atomic load when no stop is pending),
// and a sweeper's Stop() returns once every registered mutator is parked at
// a safepoint or voluntarily quiescent (blocked in an allocation pause).
type World struct {
	stopFlag atomic.Bool

	mu         sync.Mutex
	cond       *sync.Cond
	registered int
	quiescent  int
}

// NewWorld returns a World with no registered threads.
func NewWorld() *World {
	w := &World{}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// Register adds the calling thread to the stop quorum. Every mutator must
// call it before its first Safepoint and pair it with Unregister.
func (w *World) Register() {
	w.mu.Lock()
	w.registered++
	w.mu.Unlock()
}

// Unregister removes the calling thread from the stop quorum (thread exit).
func (w *World) Unregister() {
	w.mu.Lock()
	w.registered--
	w.cond.Broadcast()
	w.mu.Unlock()
}

// Safepoint parks the calling thread while a stop is pending. Mutators call
// it between operations; the fast path is a single atomic load.
func (w *World) Safepoint() {
	if !w.stopFlag.Load() {
		return
	}
	w.mu.Lock()
	w.quiescent++
	w.cond.Broadcast()
	for w.stopFlag.Load() {
		w.cond.Wait()
	}
	w.quiescent--
	w.mu.Unlock()
}

// BeginQuiescent marks the calling thread as safe-to-ignore for stops (it is
// about to block without touching simulated memory, e.g. in an allocation
// pause). Pair with EndQuiescent.
func (w *World) BeginQuiescent() {
	w.mu.Lock()
	w.quiescent++
	w.cond.Broadcast()
	w.mu.Unlock()
}

// EndQuiescent re-enters mutator mode, waiting out any stop in progress.
func (w *World) EndQuiescent() {
	w.mu.Lock()
	for w.stopFlag.Load() {
		w.cond.Wait()
	}
	w.quiescent--
	w.mu.Unlock()
}

// Stop implements sweep.StopTheWorld: it returns once every registered
// thread is parked or quiescent.
func (w *World) Stop() {
	w.stopFlag.Store(true)
	w.mu.Lock()
	for w.quiescent < w.registered {
		w.cond.Wait()
	}
	w.mu.Unlock()
}

// Start implements sweep.StopTheWorld: it resumes all parked threads.
func (w *World) Start() {
	w.stopFlag.Store(false)
	w.mu.Lock()
	w.cond.Broadcast()
	w.mu.Unlock()
}
