// Benchmarks: one testing.B target per table and figure of the paper's
// evaluation. Each benchmark regenerates its figure through the same code
// path as cmd/msbench, at a reduced op budget so `go test -bench=.` stays
// tractable; run `msbench -fig all` for the full-scale reproduction recorded
// in EXPERIMENTS.md.
package minesweeper_test

import (
	"bytes"
	"io"
	"testing"

	"minesweeper/internal/figures"
	"minesweeper/internal/workload"

	minesweeper "minesweeper"
)

// benchScale divides workload op budgets for bench runs.
const benchScale = 20

func runFigure(b *testing.B, fn func(io.Writer, *figures.Runner) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := figures.NewRunner(workload.Options{ScaleDiv: benchScale}, 1)
		var buf bytes.Buffer
		if err := fn(&buf, r); err != nil {
			b.Fatal(err)
		}
		if buf.Len() == 0 {
			b.Fatal("figure produced no output")
		}
	}
}

func BenchmarkFig01_CVETrends(b *testing.B) {
	runFigure(b, func(w io.Writer, _ *figures.Runner) error { return figures.Fig01CVETrends(w) })
}

func BenchmarkFig02_Exploit(b *testing.B) {
	runFigure(b, func(w io.Writer, _ *figures.Runner) error { return figures.Fig02Exploit(w) })
}

func BenchmarkFig07_Spec2006Slowdown(b *testing.B) { runFigure(b, figures.Fig07Slowdown) }

func BenchmarkFig08_Sphinx3RSS(b *testing.B) { runFigure(b, figures.Fig08Sphinx3RSS) }

func BenchmarkFig09_SlowdownZoom(b *testing.B) { runFigure(b, figures.Fig09SlowdownZoom) }

func BenchmarkFig10_Spec2006Memory(b *testing.B) { runFigure(b, figures.Fig10Memory) }

func BenchmarkFig11_AvgPeakMemory(b *testing.B) { runFigure(b, figures.Fig11AvgPeak) }

func BenchmarkFig12_CPUUtilisation(b *testing.B) { runFigure(b, figures.Fig12CPU) }

func BenchmarkFig13_MostlyConcurrent(b *testing.B) { runFigure(b, figures.Fig13MostlyConcurrent) }

func BenchmarkFig14_SweepCounts(b *testing.B) { runFigure(b, figures.Fig14SweepCounts) }

func BenchmarkFig15_OptTime(b *testing.B) { runFigure(b, figures.Fig15OptTime) }

func BenchmarkFig16_OptMemory(b *testing.B) { runFigure(b, figures.Fig16OptMemory) }

func BenchmarkFig17_OverheadSources(b *testing.B) { runFigure(b, figures.Fig17OverheadSources) }

func BenchmarkFig18_Spec2017(b *testing.B) { runFigure(b, figures.Fig18Spec2017) }

func BenchmarkFig19_MimallocBench(b *testing.B) { runFigure(b, figures.Fig19MimallocBench) }

func BenchmarkSummary(b *testing.B) { runFigure(b, figures.Summary) }

func BenchmarkScudo(b *testing.B) { runFigure(b, figures.FigScudo) }

// API-level micro-benchmarks for the protected allocation fast paths.

func benchProcess(b *testing.B, scheme minesweeper.Scheme) (*minesweeper.Process, *minesweeper.Thread) {
	b.Helper()
	p, err := minesweeper.NewProcess(minesweeper.Config{Scheme: scheme})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(p.Close)
	th, err := p.NewThread()
	if err != nil {
		b.Fatal(err)
	}
	// Close the thread before the process: a registered thread that stops
	// polling safepoints would stall a collector's stop-the-world.
	b.Cleanup(th.Close)
	return p, th
}

func benchMallocFree(b *testing.B, scheme minesweeper.Scheme, size uint64) {
	benchMallocFreeCfg(b, minesweeper.Config{Scheme: scheme}, size)
}

func benchMallocFreeCfg(b *testing.B, cfg minesweeper.Config, size uint64) {
	p, err := minesweeper.NewProcess(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(p.Close)
	th, err := p.NewThread()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(th.Close)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := th.Malloc(size)
		if err != nil {
			b.Fatal(err)
		}
		if err := th.Free(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMallocFree64_Baseline(b *testing.B) {
	benchMallocFree(b, minesweeper.SchemeBaseline, 64)
}

func BenchmarkMallocFree64_MineSweeper(b *testing.B) {
	benchMallocFree(b, minesweeper.SchemeMineSweeper, 64)
}

// BenchmarkMallocFree64_MineSweeperDeferredZero is the same fast path with
// zero-on-free moved off free() and into the thread ring's drain (one
// range-merged batch zero per drain). Same-window A/B against the plain
// MineSweeper run isolates what immediate zeroing costs the free() path.
// Note that in THIS loop the chunks are never written, so their pages stay
// known-zero and both modes elide nearly all clearing — the pair measures
// the bookkeeping difference, not the memory traffic. The Touch pair below
// measures the traffic.
func BenchmarkMallocFree64_MineSweeperDeferredZero(b *testing.B) {
	benchMallocFreeCfg(b, minesweeper.Config{
		Scheme:   minesweeper.SchemeMineSweeper,
		ZeroMode: minesweeper.ZeroDeferred,
	}, 64)
}

// benchMallocFreeTouch is benchMallocFreeCfg with one store into the chunk
// between malloc and free — the minimal realistic mutator, and the workload
// where zero-on-free has actual work to do: the store drops the page's
// known-zero bit, so every free really must scrub. This is the pair where
// deferral's range-merged batch clears (one region lookup and a handful of
// contiguous runs per drain, instead of one lookup + one sub-page clear per
// free) show up as ns/op.
func benchMallocFreeTouch(b *testing.B, cfg minesweeper.Config, size uint64) {
	p, err := minesweeper.NewProcess(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(p.Close)
	th, err := p.NewThread()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(th.Close)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := th.Malloc(size)
		if err != nil {
			b.Fatal(err)
		}
		if err := th.Store(a, uint64(i)|1); err != nil {
			b.Fatal(err)
		}
		if err := th.Free(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMallocFree64Touch_MineSweeper(b *testing.B) {
	benchMallocFreeTouch(b, minesweeper.Config{Scheme: minesweeper.SchemeMineSweeper}, 64)
}

func BenchmarkMallocFree64Touch_MineSweeperDeferredZero(b *testing.B) {
	benchMallocFreeTouch(b, minesweeper.Config{
		Scheme:   minesweeper.SchemeMineSweeper,
		ZeroMode: minesweeper.ZeroDeferred,
	}, 64)
}

// BenchmarkMallocFree64_MineSweeperTelemetry is the same fast path with the
// telemetry registry attached: the pair of timestamped histogram records per
// op is the telemetry layer's whole hot-path cost. make telemetry-overhead
// gates this against the plain MineSweeper run.
func BenchmarkMallocFree64_MineSweeperTelemetry(b *testing.B) {
	benchMallocFreeCfg(b, minesweeper.Config{
		Scheme:    minesweeper.SchemeMineSweeper,
		Telemetry: true,
	}, 64)
}

// BenchmarkMallocFree64_MineSweeperGoverned is the same fast path with the
// adaptive control plane attached under a budget far above any real pressure:
// the atomic knob load at sweep boundaries and the amortised trigger check is
// the governor's whole hot-path cost. make governor-overhead gates this
// against the plain MineSweeper run.
func BenchmarkMallocFree64_MineSweeperGoverned(b *testing.B) {
	benchMallocFreeCfg(b, minesweeper.Config{
		Scheme:       minesweeper.SchemeMineSweeper,
		MemoryBudget: 1 << 40,
	}, 64)
}

// BenchmarkMallocFree64_MineSweeperMostly is the same fast path under the
// pipelined mostly-concurrent sweep: snapshot-at-beginning mark, pre-clean
// rounds and the soft-dirty stop-the-world re-scan. The malloc/free pair
// itself is identical to the fully concurrent scheme — what this measures is
// that the pipeline's extra bookkeeping (the dirty-transition CAS on first
// store to a page, the per-shard quarantine stamp) stays off the hot path.
func BenchmarkMallocFree64_MineSweeperMostly(b *testing.B) {
	benchMallocFree(b, minesweeper.SchemeMineSweeperMostlyConcurrent, 64)
}

func BenchmarkMallocFree64_MarkUs(b *testing.B) {
	benchMallocFree(b, minesweeper.SchemeMarkUs, 64)
}

func BenchmarkMallocFree64_FFMalloc(b *testing.B) {
	benchMallocFree(b, minesweeper.SchemeFFMalloc, 64)
}

// benchMallocFreePar runs the malloc/free pair on several goroutines, each
// owning its own Thread (as each OS thread owns its tcache and quarantine
// buffer). On a 1-CPU host this measures contention on the allocator's
// shared structures — the page map above all — rather than parallel speedup.
func benchMallocFreePar(b *testing.B, scheme minesweeper.Scheme, size uint64, par int) {
	benchMallocFreeParCfg(b, minesweeper.Config{Scheme: scheme}, size, par)
}

func benchMallocFreeParCfg(b *testing.B, cfg minesweeper.Config, size uint64, par int) {
	p, err := minesweeper.NewProcess(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(p.Close)
	b.SetParallelism(par) // goroutines = par * GOMAXPROCS
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		th, err := p.NewThread()
		if err != nil {
			b.Error(err)
			return
		}
		defer th.Close()
		for pb.Next() {
			a, err := th.Malloc(size)
			if err != nil {
				b.Error(err)
				return
			}
			if err := th.Free(a); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkMallocFree64Par4_Baseline(b *testing.B) {
	benchMallocFreePar(b, minesweeper.SchemeBaseline, 64, 4)
}

func BenchmarkMallocFree64Par4_MineSweeper(b *testing.B) {
	benchMallocFreePar(b, minesweeper.SchemeMineSweeper, 64, 4)
}

func BenchmarkMallocFree64Par4_MineSweeperMostly(b *testing.B) {
	benchMallocFreePar(b, minesweeper.SchemeMineSweeperMostlyConcurrent, 64, 4)
}

func BenchmarkMallocFree64Par8_Baseline(b *testing.B) {
	benchMallocFreePar(b, minesweeper.SchemeBaseline, 64, 8)
}

func BenchmarkMallocFree64Par8_MineSweeper(b *testing.B) {
	benchMallocFreePar(b, minesweeper.SchemeMineSweeper, 64, 8)
}

// BenchmarkMallocFree64Par8_MineSweeperGoverned is the contended fast path
// with the adaptive control plane attached under a slack budget: 8 threads'
// private rings drain into the sharded quarantine while the governor samples
// sweep boundaries. Gates that the governor adds no cross-thread serialisation
// beyond plain MineSweeper's.
func BenchmarkMallocFree64Par8_MineSweeperGoverned(b *testing.B) {
	benchMallocFreeParCfg(b, minesweeper.Config{
		Scheme:       minesweeper.SchemeMineSweeper,
		MemoryBudget: 1 << 40,
	}, 64, 8)
}

func BenchmarkLoadStore_MineSweeper(b *testing.B) {
	_, th := benchProcess(b, minesweeper.SchemeMineSweeper)
	a, err := th.Malloc(4096)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := a + uint64(i%512)*8
		if err := th.Store(addr, uint64(i)); err != nil {
			b.Fatal(err)
		}
		if _, err := th.Load(addr); err != nil {
			b.Fatal(err)
		}
	}
}
