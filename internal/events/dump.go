package events

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// The self-describing binary dump format (DESIGN.md §16). Layout:
//
//	header:  magic "MSEV" | u16 version | u8 cause | u8 reserved
//	         u64 epoch unix-nanos | uvarint since-nanos | uvarint taken-nanos
//	kinds:   uvarint count, then per kind: u8 value | uvarint len | name
//	rings:   uvarint count, then per ring:
//	           uvarint len | name | uvarint event count
//	           events, varint-delta encoded:
//	             uvarint delta-seq   (first event: absolute seq)
//	             uvarint delta-nanos (first event: nanos - since-nanos)
//	             u8 kind | uvarint arg0 | uvarint arg1
//
// Per-ring seqs and timestamps are monotonically non-decreasing, so deltas
// are small and the stream compresses an event to a handful of bytes. The
// kind table makes dumps self-describing: a reader built against an older
// kind set still decodes and labels everything it finds. This is the same
// varint discipline as the MSTR allocation-trace format (internal/trace),
// and the event encoding ROADMAP item 5's replay pipeline consumes.

const dumpMagic = "MSEV"

// DumpVersion is the current dump format version.
const DumpVersion = 1

// ErrCorruptDump reports a malformed dump.
var ErrCorruptDump = errors.New("events: corrupt dump")

// WriteTo serialises the dump. It implements io.WriterTo.
func (d *Dump) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.WriteString(dumpMagic); err != nil {
		return cw.n, err
	}
	var hdr [4 + 8]byte
	binary.LittleEndian.PutUint16(hdr[0:2], DumpVersion)
	hdr[2] = byte(d.Cause)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(d.Epoch.UnixNano()))
	bw.Write(hdr[:])
	writeUvarint(bw, d.SinceNanos)
	writeUvarint(bw, d.TakenNanos)

	// Kind table.
	writeUvarint(bw, uint64(kindCount))
	for k := Kind(0); k < kindCount; k++ {
		bw.WriteByte(byte(k))
		writeString(bw, k.String())
	}

	writeUvarint(bw, uint64(len(d.Threads)))
	for _, t := range d.Threads {
		writeString(bw, t.Name)
		writeUvarint(bw, uint64(len(t.Events)))
		prevSeq, prevNanos := uint64(0), d.SinceNanos
		for _, e := range t.Events {
			if e.Seq < prevSeq {
				return cw.n, fmt.Errorf("events: ring %q events out of order (seq %d after %d)", t.Name, e.Seq, prevSeq)
			}
			// Timestamps are clamped monotone per ring: two emitters racing
			// for adjacent slots (the rare foreign-writer case) can publish
			// a slightly earlier clock reading under a later seq, and the
			// delta encoding — like any consumer of the stream — wants
			// seq order and time order to agree.
			nanos := e.Nanos
			if nanos < prevNanos {
				nanos = prevNanos
			}
			writeUvarint(bw, e.Seq-prevSeq)
			writeUvarint(bw, nanos-prevNanos)
			bw.WriteByte(byte(e.Kind))
			writeUvarint(bw, e.Arg0)
			writeUvarint(bw, e.Arg1)
			prevSeq, prevNanos = e.Seq, nanos
		}
	}
	err := bw.Flush()
	return cw.n, err
}

// countWriter exists only so WriteTo can report bytes written through the
// bufio layer.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// KindName maps an on-disk kind value through a dump's kind table.
type KindName struct {
	Kind Kind
	Name string
}

// ReadDump deserialises a dump written by WriteTo. The returned kind table
// lets callers label kinds this build does not know.
func ReadDump(r io.Reader) (*Dump, []KindName, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4+4+8)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorruptDump, err)
	}
	if string(head[:4]) != dumpMagic {
		return nil, nil, fmt.Errorf("%w: bad magic", ErrCorruptDump)
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v != DumpVersion {
		return nil, nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptDump, v)
	}
	d := &Dump{
		Cause: TripCause(head[6]),
		Epoch: time.Unix(0, int64(binary.LittleEndian.Uint64(head[8:16]))),
	}
	var err error
	if d.SinceNanos, err = binary.ReadUvarint(br); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorruptDump, err)
	}
	if d.TakenNanos, err = binary.ReadUvarint(br); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorruptDump, err)
	}

	nkinds, err := binary.ReadUvarint(br)
	if err != nil || nkinds > 256 {
		return nil, nil, fmt.Errorf("%w: kind table", ErrCorruptDump)
	}
	kinds := make([]KindName, 0, nkinds)
	for i := uint64(0); i < nkinds; i++ {
		kv, err := br.ReadByte()
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrCorruptDump, err)
		}
		name, err := readString(br)
		if err != nil {
			return nil, nil, err
		}
		kinds = append(kinds, KindName{Kind: Kind(kv), Name: name})
	}

	nrings, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorruptDump, err)
	}
	for i := uint64(0); i < nrings; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, nil, err
		}
		nev, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrCorruptDump, err)
		}
		t := ThreadEvents{Name: name, Events: make([]Event, 0, min(int(nev), 1<<20))}
		prevSeq, prevNanos := uint64(0), d.SinceNanos
		for j := uint64(0); j < nev; j++ {
			var e Event
			ds, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: %v", ErrCorruptDump, err)
			}
			dn, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: %v", ErrCorruptDump, err)
			}
			kb, err := br.ReadByte()
			if err != nil {
				return nil, nil, fmt.Errorf("%w: %v", ErrCorruptDump, err)
			}
			if e.Arg0, err = binary.ReadUvarint(br); err != nil {
				return nil, nil, fmt.Errorf("%w: %v", ErrCorruptDump, err)
			}
			if e.Arg1, err = binary.ReadUvarint(br); err != nil {
				return nil, nil, fmt.Errorf("%w: %v", ErrCorruptDump, err)
			}
			e.Seq = prevSeq + ds
			e.Nanos = prevNanos + dn
			e.Kind = Kind(kb)
			prevSeq, prevNanos = e.Seq, e.Nanos
			t.Events = append(t.Events, e)
		}
		d.Threads = append(d.Threads, t)
	}
	return d, kinds, nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil || n > 1<<16 {
		return "", fmt.Errorf("%w: string length", ErrCorruptDump)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", fmt.Errorf("%w: %v", ErrCorruptDump, err)
	}
	return string(b), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
