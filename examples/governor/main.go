// Governor: a memory budget the heap steers itself under.
//
// Run with:
//
//	go run ./examples/governor
//
// It runs the same allocation ramp twice — once ungoverned, once with a
// resident-memory budget and the AIMD governor — and prints what the control
// plane did: the pressure level it reached, how far it tightened each knob
// inside the rails, and the decision log the snapshot retains. The governed
// run's peak RSS lands near the budget; the ungoverned run sails past it.
package main

import (
	"fmt"
	"log"

	minesweeper "minesweeper"
)

// ramp allocates a growing working set with churn, the pattern that fills a
// quarantine and drives resident memory up in steps. It returns the peak RSS
// the process reached.
func ramp(proc *minesweeper.Process) uint64 {
	th, err := proc.NewThread()
	if err != nil {
		log.Fatal(err)
	}
	defer th.Close()

	var live []minesweeper.Addr
	var peak uint64
	for phase := 1; phase <= 4; phase++ {
		target := 4000 * phase
		for op := 0; op < 30000; op++ {
			if len(live) >= target {
				// At target: churn oldest-first.
				if err := th.Free(live[0]); err != nil {
					log.Fatal(err)
				}
				live = live[1:]
			}
			p, err := th.Malloc(uint64(64 + op%4096))
			if err != nil {
				log.Fatal(err)
			}
			if err := th.Store(p, uint64(op)); err != nil {
				log.Fatal(err)
			}
			live = append(live, p)
		}
		if rss := proc.RSS(); rss > peak {
			peak = rss
		}
	}
	for _, p := range live {
		if err := th.Free(p); err != nil {
			log.Fatal(err)
		}
	}
	proc.Sweep()
	return peak
}

func run(cfg minesweeper.Config) (uint64, *minesweeper.Process) {
	proc, err := minesweeper.NewProcess(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return ramp(proc), proc
}

func main() {
	// Pass 1: ungoverned, to learn the ramp's natural peak.
	peak, proc := run(minesweeper.Config{Scheme: minesweeper.SchemeMineSweeper})
	proc.Close()
	fmt.Printf("ungoverned peak RSS: %.1f MiB\n", float64(peak)/(1<<20))

	// Pass 2: hand the governor half of that and let it steer. A budget this
	// deep under the natural peak cannot be met by budget-triggered sweeps
	// alone, so the AIMD policy has to tighten the knobs to hold the line.
	budget := peak / 2
	gpeak, gproc := run(minesweeper.Config{
		Scheme:       minesweeper.SchemeMineSweeper,
		MemoryBudget: budget,
		// Controller nil: a budget alone selects the AIMD policy.
	})
	defer gproc.Close()
	fmt.Printf("budget:              %.1f MiB\n", float64(budget)/(1<<20))
	fmt.Printf("governed peak RSS:   %.1f MiB\n\n", float64(gpeak)/(1<<20))

	g := gproc.Governor()
	if g == nil {
		log.Fatal("governed process has no governor state")
	}
	fmt.Printf("policy %s made %d observations, recorded %d decisions\n",
		g.Policy, g.Observations, g.DecisionsTotal)
	fmt.Printf("pressure level now: %s\n", g.Level)
	fmt.Printf("knobs (current vs base):\n")
	fmt.Printf("  sweep threshold  %.4f  (base %.2f, floor %.4f)\n",
		g.Knobs.SweepThreshold, g.Base.SweepThreshold, g.Rails.SweepThresholdMin)
	fmt.Printf("  unmapped factor  %.2fx  (base %.0fx, floor %.0fx)\n",
		g.Knobs.UnmappedFactor, g.Base.UnmappedFactor, g.Rails.UnmappedFactorMin)
	fmt.Printf("  pause threshold  %.3f  (base %.2f, floor %.3f)\n",
		g.Knobs.PauseThreshold, g.Base.PauseThreshold, g.Rails.PauseThresholdMin)
	fmt.Printf("  helpers          %d  (base %d, ceiling %d)\n",
		g.Knobs.Helpers, g.Base.Helpers, g.Rails.HelpersMax)

	fmt.Printf("\nlast decisions:\n")
	ds := g.Decisions
	if len(ds) > 5 {
		ds = ds[len(ds)-5:]
	}
	for _, d := range ds {
		fmt.Printf("  #%d %-8s usage %3.0f%%  sweep %.4f->%.4f  helpers %d->%d\n",
			d.Seq, d.Level, d.In.Usage()*100,
			d.Before.SweepThreshold, d.After.SweepThreshold,
			d.Before.Helpers, d.After.Helpers)
	}
}
