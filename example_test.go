package minesweeper_test

import (
	"fmt"

	minesweeper "minesweeper"
)

// The canonical lifecycle: allocate, use, free, observe quarantine
// semantics, sweep, observe release.
func Example() {
	proc, err := minesweeper.NewProcess(minesweeper.Config{
		Scheme:         minesweeper.SchemeMineSweeper,
		Synchronous:    true, // deterministic output for the example
		BufferCap:      1,
		SweepThreshold: 1, // never self-triggers: sweeps only when Sweep() is called
	})
	if err != nil {
		panic(err)
	}
	defer proc.Close()
	th, err := proc.NewThread()
	if err != nil {
		panic(err)
	}
	defer th.Close()

	p, _ := th.Malloc(64)
	_ = th.Store(p, 42)
	_ = th.Free(p)

	v, _ := th.Load(p) // benign use-after-free
	fmt.Println("freed memory reads:", v)

	proc.Sweep()
	fmt.Println("quarantined after sweep:", proc.Stats().Quarantined)
	// Output:
	// freed memory reads: 0
	// quarantined after sweep: 0
}

// A dangling pointer pins its allocation: the quarantine refuses to recycle
// it until the pointer is gone.
func ExampleProcess_Sweep() {
	proc, _ := minesweeper.NewProcess(minesweeper.Config{
		Scheme:         minesweeper.SchemeMineSweeper,
		Synchronous:    true,
		BufferCap:      1,
		SweepThreshold: 1, // never self-triggers: sweeps only when Sweep() is called
	})
	defer proc.Close()
	th, _ := proc.NewThread()
	defer th.Close()

	obj, _ := th.Malloc(48)
	_ = th.Store(proc.GlobalSlot(0), obj) // a global keeps pointing at obj
	_ = th.Free(obj)                      // the bug: freed while referenced

	proc.Sweep()
	fmt.Println("failed frees:", proc.Stats().FailedFrees)

	_ = th.Store(proc.GlobalSlot(0), 0) // the pointer dies
	proc.Sweep()
	fmt.Println("quarantined now:", proc.Stats().Quarantined)
	// Output:
	// failed frees: 1
	// quarantined now: 0
}

// Double frees are absorbed idempotently while the allocation is
// quarantined (the paper's de-duplicating shadow map of entries).
func ExampleThread_Free() {
	proc, _ := minesweeper.NewProcess(minesweeper.Config{
		Scheme:         minesweeper.SchemeMineSweeper,
		Synchronous:    true,
		BufferCap:      1,
		SweepThreshold: 1, // never self-triggers: sweeps only when Sweep() is called
	})
	defer proc.Close()
	th, _ := proc.NewThread()
	defer th.Close()

	p, _ := th.Malloc(32)
	fmt.Println("first free: ", th.Free(p))
	fmt.Println("second free:", th.Free(p))
	fmt.Println("double frees absorbed:", proc.Stats().DoubleFrees)
	// Output:
	// first free:  <nil>
	// second free: <nil>
	// double frees absorbed: 1
}
