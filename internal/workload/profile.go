// Package workload provides the synthetic mutators standing in for the
// paper's benchmark programs. Each SPEC CPU2006/2017 benchmark and each
// mimalloc-bench stress test is modelled as a Profile: a parameterised
// allocation behaviour (rate, size distribution, live-set size, lifetime
// pattern, pointer density, threading) driving the generic churn engine or a
// dedicated kernel. The profiles preserve the axis the paper's overheads
// depend on — how allocation-intensive each program is — which is what makes
// xalancbmk/omnetpp/gcc expensive and lbm/namd free (§5.2).
package workload

import "minesweeper/internal/sim"

// SizeBucket is one weighted size range of a distribution.
type SizeBucket struct {
	// Lo and Hi bound the sizes drawn (inclusive).
	Lo, Hi uint64
	// Weight is the bucket's relative probability.
	Weight int
}

// SizeDist is a weighted mixture of size ranges.
type SizeDist []SizeBucket

// Sample draws one allocation size.
func (d SizeDist) Sample(r *sim.Rand) uint64 {
	total := 0
	for _, b := range d {
		total += b.Weight
	}
	n := r.Intn(total)
	for _, b := range d {
		if n < b.Weight {
			return r.Range(b.Lo, b.Hi)
		}
		n -= b.Weight
	}
	return d[len(d)-1].Hi
}

// Lifetime weights victim selection when the live set must shrink: freeing
// the newest object (LIFO, stack-like), the oldest (FIFO, queue/phase-like),
// or a uniformly random one (mixed lifetimes — the pattern that defeats
// one-time allocators).
type Lifetime struct {
	Newest, Oldest, Random int
}

// Profile describes one benchmark workload.
type Profile struct {
	// Name is the benchmark's name (e.g. "xalancbmk").
	Name string
	// Suite groups profiles ("spec2006", "spec2017", "mimalloc-bench").
	Suite string
	// Threads is the mutator thread count.
	Threads int
	// Ops is the total operation budget per thread.
	Ops int
	// AllocBP is the share of operations that allocate (with a paired
	// free once the live set is full), in basis points (1/100 of a
	// percent); the rest are work operations (reads/writes of live data).
	// Fine granularity matters: most SPEC benchmarks allocate orders of
	// magnitude less often than they compute.
	AllocBP int
	// LiveTarget is the steady-state live object count per thread.
	LiveTarget int
	// Sizes is the allocation size distribution.
	Sizes SizeDist
	// Lifetime weights the victim-selection policy.
	Lifetime Lifetime
	// PointerPct is the percentage of new objects linked from a heap
	// parent rather than a root slot.
	PointerPct int
	// InitWords is how many payload words are written at allocation.
	InitWords int
	// WorkTouches is how many random words a work operation touches.
	WorkTouches int
	// Kernel selects a dedicated kernel instead of the generic churn
	// engine ("" = generic). See kernels.go.
	Kernel string
}

// scaled returns a copy with the operation budget and live-set size divided
// by factor (>= 1), for quick bench runs. Scaling both preserves the
// fill-to-churn proportions, so scaled runs stay in the same regime as
// full-scale ones.
func (p Profile) scaled(factor int) Profile {
	if factor > 1 {
		p.Ops /= factor
		if p.Ops < 1000 {
			p.Ops = 1000
		}
		if p.LiveTarget > 0 {
			p.LiveTarget /= factor
			if p.LiveTarget < 64 {
				p.LiveTarget = 64
			}
		}
	}
	return p
}
