package jemalloc

// tcache is a per-thread cache of free regions, one stack per small class,
// mirroring jemalloc's tcache: most mallocs and frees touch only thread-local
// state, visiting the shared bin in batches.
type tcache struct {
	bins []tbin
}

type tbin struct {
	items []uint64
	max   int
}

// tcacheCap returns the cache capacity for a class: more slots for small
// objects, fewer for big ones (as in jemalloc).
func tcacheCap(class int) int {
	switch size := ClassSize(class); {
	case size <= 256:
		return 32
	case size <= 2048:
		return 16
	default:
		return 8
	}
}

func newTcache() *tcache {
	tc := &tcache{bins: make([]tbin, NumClasses())}
	for c := range tc.bins {
		m := tcacheCap(c)
		tc.bins[c] = tbin{items: make([]uint64, 0, m), max: m}
	}
	return tc
}

// pop returns a cached region of the class, or 0 if the cache is empty.
func (tc *tcache) pop(class int) uint64 {
	tb := &tc.bins[class]
	if n := len(tb.items); n > 0 {
		v := tb.items[n-1]
		tb.items = tb.items[:n-1]
		return v
	}
	return 0
}

// push caches a freed region, reporting whether the cache is now at capacity
// (the caller should flush).
func (tc *tcache) push(class int, addr uint64) bool {
	tb := &tc.bins[class]
	tb.items = append(tb.items, addr)
	return len(tb.items) >= tb.max
}

// contains reports whether addr is sitting in the cache for class — the
// detectable-double-free check.
func (tc *tcache) contains(class int, addr uint64) bool {
	for _, v := range tc.bins[class].items {
		if v == addr {
			return true
		}
	}
	return false
}

// drainHalf removes the oldest half of the class's cached items and returns
// them for flushing to the shared bin.
func (tc *tcache) drainHalf(class int) []uint64 {
	tb := &tc.bins[class]
	n := len(tb.items) / 2
	if n == 0 {
		n = len(tb.items)
	}
	out := make([]uint64, n)
	copy(out, tb.items[:n])
	tb.items = append(tb.items[:0], tb.items[n:]...)
	return out
}

// drainAll removes and returns every cached item of the class.
func (tc *tcache) drainAll(class int) []uint64 {
	tb := &tc.bins[class]
	out := make([]uint64, len(tb.items))
	copy(out, tb.items)
	tb.items = tb.items[:0]
	return out
}

// fillTarget returns how many regions a fill should request: half capacity,
// like jemalloc's fill count.
func (tc *tcache) fillTarget(class int) int { return tc.bins[class].max / 2 }
