package shadow

import (
	"sync/atomic"
	"testing"

	"minesweeper/internal/mem"
)

// chunkCover returns the bytes of address space one chunk covers for b.
func chunkCover(b *Bitmap) uint64 { return uint64(1) << (bitsPerChunkShift + b.granuleShift) }

// requireIdentical fails unless a and b have bit-identical contents,
// comparing raw chunk words (an absent chunk equals an all-zero one).
func requireIdentical(t *testing.T, a, b *Bitmap) {
	t.Helper()
	if a.base != b.base || a.limit != b.limit || a.granuleShift != b.granuleShift {
		t.Fatal("bitmaps have different geometry")
	}
	var zero chunk
	for i := range a.chunks {
		ca, cb := a.chunks[i].Load(), b.chunks[i].Load()
		if ca == nil {
			ca = &zero
		}
		if cb == nil {
			cb = &zero
		}
		for w := range ca {
			va := atomic.LoadUint64(&ca[w])
			vb := atomic.LoadUint64(&cb[w])
			if va != vb {
				t.Fatalf("chunk %d word %d: %#x vs %#x", i, w, va, vb)
			}
		}
	}
}

// TestMarkerEquivalence drives a plain Bitmap.Mark and a Marker with the same
// randomized address stream — clustered runs, chunk-hopping jumps, duplicate
// marks, out-of-range addresses, interleaved flushes — and requires the
// resulting shadow maps to be bit-identical.
func TestMarkerEquivalence(t *testing.T) {
	plain := newTestBitmap(t)
	buffered := newTestBitmap(t)
	mk := buffered.NewMarker()

	rng := uint64(7)
	addr := mem.HeapBase
	for i := 0; i < 200000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		switch rng % 100 {
		case 0: // far jump, usually into another chunk
			addr = mem.HeapBase + (rng>>8)%(mem.HeapLimit-mem.HeapBase)
		case 1: // out-of-range addresses must be ignored by both
			addr = rng >> 8 % mem.HeapBase
		case 2: // boundary cases
			switch (rng >> 8) % 4 {
			case 0:
				addr = mem.HeapBase
			case 1:
				addr = mem.HeapLimit - 1
			case 2:
				addr = mem.HeapLimit // just outside
			case 3: // last granule of a chunk, then the very next mark
				// crosses into the neighbouring chunk
				addr = mem.HeapBase + chunkCover(plain) - 1
			}
		case 3: // mid-stream flush must not disturb equivalence
			mk.Flush()
			continue
		default: // clustered local walk, the sweep's common case
			addr += (rng >> 8) % 64
		}
		plain.Mark(addr)
		mk.Mark(addr)
	}
	mk.Flush()

	requireIdentical(t, plain, buffered)
	if p, q := plain.PopCount(), buffered.PopCount(); p != q {
		t.Fatalf("popcount %d vs %d", p, q)
	}
}

// TestMarkerVisibilityAfterFlush checks buffered bits become visible exactly
// at Flush.
func TestMarkerVisibilityAfterFlush(t *testing.T) {
	b := newTestBitmap(t)
	mk := b.NewMarker()
	a1 := mem.HeapBase + 32
	mk.Mark(a1)
	if b.Test(a1) {
		t.Error("buffered mark visible before flush")
	}
	mk.Flush()
	if !b.Test(a1) {
		t.Error("mark not visible after flush")
	}
	// A mark that displaces the cached word publishes the old word without
	// an explicit flush.
	a2 := mem.HeapBase + 64*16*10 // a different shadow word
	mk.Mark(a2)
	a3 := mem.HeapBase + chunkCover(b) + 8 // a different chunk
	mk.Mark(a3)
	if !b.Test(a2) {
		t.Error("word displaced from the marker cache not published")
	}
	mk.Flush()
	if !b.Test(a3) {
		t.Error("final flush lost the last word")
	}
	// Flush with nothing pending is a no-op.
	mk.Flush()
	if got := b.PopCount(); got != 3 {
		t.Errorf("popcount = %d, want 3", got)
	}
}

// TestMarkerConcurrentWorkers has several Markers (one per goroutine, as the
// sweeper uses them) marking overlapping clustered ranges concurrently; the
// result must equal the union computed with plain marks.
func TestMarkerConcurrentWorkers(t *testing.T) {
	concurrent := newTestBitmap(t)
	reference := newTestBitmap(t)

	const workers = 4
	const n = 20000
	addrsFor := func(w int) []uint64 {
		rng := uint64(w)*2654435761 + 1
		addrs := make([]uint64, n)
		base := mem.HeapBase + uint64(w)*(chunkCover(reference)/2) // overlap neighbours
		for i := range addrs {
			rng = rng*6364136223846793005 + 1442695040888963407
			addrs[i] = base + (rng>>8)%(2*chunkCover(reference))
		}
		return addrs
	}
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			mk := concurrent.NewMarker()
			for _, a := range addrsFor(w) {
				mk.Mark(a)
			}
			mk.Flush()
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	for w := 0; w < workers; w++ {
		for _, a := range addrsFor(w) {
			reference.Mark(a)
		}
	}
	requireIdentical(t, reference, concurrent)
}

// BenchmarkShadowMarker measures a clustered mark stream — the sweep's
// common case — through plain Bitmap.Mark vs a write-combining Marker.
func BenchmarkShadowMarker(b *testing.B) {
	mkBitmap := func(b *testing.B) *Bitmap {
		bm, err := New(mem.HeapBase, mem.HeapLimit, 4)
		if err != nil {
			b.Fatal(err)
		}
		return bm
	}
	// A page-local pointer cluster: 512 targets walking forward in small
	// strides, like one page of a live array-of-structs.
	addrs := make([]uint64, 512)
	addr := mem.HeapBase
	rng := uint64(3)
	for i := range addrs {
		rng = rng*6364136223846793005 + 1442695040888963407
		addr += (rng >> 8) % 96
		addrs[i] = addr
	}
	b.Run("mark", func(b *testing.B) {
		bm := mkBitmap(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, a := range addrs {
				bm.Mark(a)
			}
		}
	})
	b.Run("marker", func(b *testing.B) {
		bm := mkBitmap(b)
		mk := bm.NewMarker()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, a := range addrs {
				mk.Mark(a)
			}
			mk.Flush()
		}
	})
}
