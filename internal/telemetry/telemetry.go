// Package telemetry is MineSweeper's always-compiled-in runtime observability
// layer. The paper's whole evaluation (§5, Figures 8-17) depends on seeing
// inside the sweep — what triggered it, how long marking vs recycling took,
// how deep the quarantine is — and production memory-safety tooling
// (GWP-ASan) shows such telemetry must be cheap enough to leave on.
//
// The layer has three parts:
//
//   - per-sweep records: one SweepRecord per completed sweep (trigger
//     reason, per-phase durations, scan and release figures), kept in a
//     lock-free ring buffer of the last N sweeps;
//   - histograms and gauges: power-of-two-bucket latency histograms with
//     per-stripe atomics for the malloc/free hot paths, plus pull-based
//     gauges sampled at snapshot time;
//   - a snapshot/export pipeline: Registry.Snapshot() produces a stable
//     struct that renders to JSON, aligned text (metrics.Table), or an
//     expvar variable.
//
// Cost discipline: a disabled registry is a nil pointer — instrumented code
// does one pointer load and branch. An enabled registry samples malloc/free
// latency GWP-ASan style: a plain per-thread counter (owned by the
// instrumented allocator, no shared writes) decides whether this op is timed,
// and only every SamplePeriod'th op pays the two time.Now calls and the
// histogram record. Rare events (sweeps, §5.7
// pauses) are always timed — their cost is invisible next to the work they
// measure. The `make telemetry-overhead` gate holds the enabled cost within
// 3% on BenchmarkMallocFree64.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"minesweeper/internal/control"
)

// Standard histogram names used by the core layer; msstat and the renderers
// treat them generically, so these are conventions rather than requirements.
const (
	HistMalloc = "malloc_ns"
	HistFree   = "free_ns"
	HistPause  = "pause_ns"
	HistSweep  = "sweep_ns"
	// HistStw records the stop-the-world window of each sweep: the span
	// mutators are actually held at safepoints (the soft-dirty re-scan in
	// mostly-concurrent mode, or the whole mark when marking is not
	// concurrent). This is the pause-tail metric the `make pause-gate`
	// acceptance bound reads at p99.9.
	HistStw = "stw_pause_ns"
)

// DefaultSamplePeriod is the default 1-in-N sampling rate for the malloc and
// free latency histograms. The dominant enabled cost is the pair of time.Now
// calls on a sampled op (~130 ns on the reference host — comparable to the
// fast path itself), so the period must keep timing amortised well under the
// 3% budget; 256 puts it near 0.5 ns/op while a steady allocation rate still
// lands thousands of samples per second. GWP-ASan, the production precedent,
// samples orders of magnitude more sparsely still.
const DefaultSamplePeriod = 256

// GaugeFunc reads one instantaneous value. It must be safe for concurrent
// use and cheap enough to call on every snapshot.
type GaugeFunc func() uint64

// gauge is one registered pull-based gauge.
type gauge struct {
	name string
	fn   GaugeFunc
}

// SweepObserver receives one record per completed sweep. The core layer
// holds an observer (possibly nil) and calls it at the end of runSweep;
// Registry implements it by pushing into the ring buffer and feeding the
// sweep-duration histogram.
type SweepObserver interface {
	ObserveSweep(rec SweepRecord)
}

// Registry is one process's telemetry state: the sweep ring, the standard
// latency histograms, and any registered gauges. A nil *Registry is the
// disabled state; all methods on a non-nil Registry are safe for concurrent
// use.
type Registry struct {
	ring *SweepRing
	// epoch anchors Snapshot.CapturedAtNanos: a monotonic per-registry
	// clock, so two snapshots of the same registry order and diff reliably
	// even if the wall clock steps.
	epoch time.Time

	// The standard histograms, allocated eagerly so hot paths can cache
	// the pointers without nil checks beyond the registry's own.
	Malloc *Histogram // malloc latency, ns
	Free   *Histogram // free latency, ns
	Pause  *Histogram // §5.7 allocation-pause stall, ns
	Sweep  *Histogram // whole-sweep duration, ns
	Stw    *Histogram // per-sweep stop-the-world window, ns (exact, not sampled)

	samplePeriod atomic.Uint64

	// governor is the attached control plane (nil when the heap is
	// ungoverned); snapshots embed its state.
	governor atomic.Pointer[control.Plane]

	mu     sync.Mutex
	extra  []*Histogram // caller-registered histograms
	gauges []gauge
}

var _ SweepObserver = (*Registry)(nil)

// NewRegistry returns a registry retaining the last ringCap sweeps
// (DefaultRingCap if <= 0).
func NewRegistry(ringCap int) *Registry {
	r := &Registry{
		ring:   NewSweepRing(ringCap),
		epoch:  time.Now(),
		Malloc: NewHistogram(HistMalloc, "ns", DefaultHistShards),
		Free:   NewHistogram(HistFree, "ns", DefaultHistShards),
		Pause:  NewHistogram(HistPause, "ns", 1),
		Sweep:  NewHistogram(HistSweep, "ns", 1),
		Stw:    NewHistogram(HistStw, "ns", 1),
	}
	r.samplePeriod.Store(DefaultSamplePeriod)
	return r
}

// SetSamplePeriod sets the 1-in-n sampling rate for malloc/free latency
// capture. n <= 1 times every operation (full fidelity — tests and offline
// analysis; too slow for the hot-path overhead budget). Instrumented
// allocators read the period and keep their own per-thread tick counters, so
// the per-operation decision involves no shared writes at all.
func (r *Registry) SetSamplePeriod(n uint64) {
	if n < 1 {
		n = 1
	}
	r.samplePeriod.Store(n)
}

// SamplePeriod returns the current 1-in-n malloc/free sampling rate.
func (r *Registry) SamplePeriod() uint64 { return r.samplePeriod.Load() }

// ObserveSweep implements SweepObserver: the record enters the ring and the
// sweep-duration histogram.
func (r *Registry) ObserveSweep(rec SweepRecord) {
	r.ring.Push(rec)
	r.Sweep.Record(uint64(rec.TotalNanos))
}

// Ring exposes the sweep ring (tests, custom renderers).
func (r *Registry) Ring() *SweepRing { return r.ring }

// AttachGovernor associates a control plane with the registry so snapshots
// include governor state (nil detaches).
func (r *Registry) AttachGovernor(p *control.Plane) { r.governor.Store(p) }

// Governor returns the attached control plane, or nil.
func (r *Registry) Governor() *control.Plane { return r.governor.Load() }

// RegisterHistogram adds a caller-owned histogram to snapshots.
func (r *Registry) RegisterHistogram(h *Histogram) {
	r.mu.Lock()
	r.extra = append(r.extra, h)
	r.mu.Unlock()
}

// RegisterGauge adds a pull-based gauge. Re-registering a name replaces the
// previous gauge, so an allocator torn down and rebuilt does not leave stale
// closures behind.
func (r *Registry) RegisterGauge(name string, fn GaugeFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.gauges {
		if r.gauges[i].name == name {
			r.gauges[i].fn = fn
			return
		}
	}
	r.gauges = append(r.gauges, gauge{name: name, fn: fn})
}

// GaugeValue is one sampled gauge.
type GaugeValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// Snapshot captures the registry's current state as a stable, renderable
// struct. Gauges are sampled at call time; histograms and the sweep ring are
// merged/copied without blocking writers.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		CapturedAtNanos: int64(time.Since(r.epoch)),
		SweepsTotal:     r.ring.Total(),
		Sweeps:          r.ring.Snapshot(),
		SamplePeriod:    r.SamplePeriod(),
	}
	if n := len(s.Sweeps); n > 0 {
		s.SweepSeq = s.Sweeps[n-1].Seq
	}
	if g := r.governor.Load(); g != nil {
		st := g.State()
		s.Governor = &st
	}
	hists := []*Histogram{r.Malloc, r.Free, r.Pause, r.Sweep, r.Stw}
	r.mu.Lock()
	hists = append(hists, r.extra...)
	gauges := append([]gauge(nil), r.gauges...)
	r.mu.Unlock()
	for _, h := range hists {
		s.Histograms = append(s.Histograms, h.Snapshot())
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: g.name, Value: g.fn()})
	}
	sort.SliceStable(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	return s
}
