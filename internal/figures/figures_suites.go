package figures

import (
	"fmt"
	"io"

	"minesweeper/internal/metrics"
	"minesweeper/internal/schemes"
	"minesweeper/internal/workload"
)

// suiteGrid runs every profile of a suite under the given schemes.
func (r *Runner) suiteGrid(profiles []workload.Profile, kinds []schemes.Kind) (map[string]map[string]workload.Comparison, error) {
	grid := make(map[string]map[string]workload.Comparison)
	for _, prof := range profiles {
		grid[prof.Name] = make(map[string]workload.Comparison)
		for _, kind := range kinds {
			c, err := r.ratios(prof, schemes.New(kind))
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", prof.Name, kind, err)
			}
			grid[prof.Name][kind.String()] = c
		}
	}
	return grid, nil
}

// Fig18Spec2017 renders Figure 18: SPECspeed2017 time and memory overheads.
func Fig18Spec2017(w io.Writer, r *Runner) error {
	profiles := workload.Spec2017()
	grid, err := r.suiteGrid(profiles, reRunKinds)
	if err != nil {
		return err
	}
	star := func(name string) string {
		if workload.Spec2017Parallel(name) {
			return name + "*"
		}
		return name
	}
	fprintf(w, "Figure 18: SPECspeed2017 overheads (* = OpenMP-parallel)\n\n(a) time\n\n")
	tb := metrics.NewTable("benchmark", "markus", "ffmalloc", "minesweeper")
	for _, p := range profiles {
		row := grid[p.Name]
		tb.AddRow(star(p.Name),
			metrics.FmtRatio(row["markus"].Slowdown),
			metrics.FmtRatio(row["ffmalloc"].Slowdown),
			metrics.FmtRatio(row["minesweeper"].Slowdown))
	}
	tb.AddRow("geomean",
		metrics.FmtRatio(geomeanOf(grid, "markus", slow)),
		metrics.FmtRatio(geomeanOf(grid, "ffmalloc", slow)),
		metrics.FmtRatio(geomeanOf(grid, "minesweeper", slow)))
	fprintf(w, "%s\n(b) average memory\n\n", tb)
	tb = metrics.NewTable("benchmark", "markus", "ffmalloc", "minesweeper")
	for _, p := range profiles {
		row := grid[p.Name]
		tb.AddRow(star(p.Name),
			metrics.FmtRatio(row["markus"].AvgMem),
			metrics.FmtRatio(row["ffmalloc"].AvgMem),
			metrics.FmtRatio(row["minesweeper"].AvgMem))
	}
	tb.AddRow("geomean",
		metrics.FmtRatio(geomeanOf(grid, "markus", avgMem)),
		metrics.FmtRatio(geomeanOf(grid, "ffmalloc", avgMem)),
		metrics.FmtRatio(geomeanOf(grid, "minesweeper", avgMem)))
	fprintf(w, "%s\n", tb)
	fprintf(w, "Paper: MineSweeper 1.108 time / 1.079 memory; FFMalloc 1.053 / 1.222;\n")
	fprintf(w, "MarkUs 1.163 / 1.126. Worst cases: xalancbmk 2.0x, wrf 1.66x for MineSweeper.\n")
	return nil
}

// Fig19MimallocBench renders Figure 19: the mimalloc-bench stress tests.
func Fig19MimallocBench(w io.Writer, r *Runner) error {
	profiles := workload.MimallocBench()
	grid, err := r.suiteGrid(profiles, reRunKinds)
	if err != nil {
		return err
	}
	fprintf(w, "Figure 19: mimalloc-bench stress tests\n\n(a) time\n\n")
	tb := metrics.NewTable("benchmark", "markus", "ffmalloc", "minesweeper")
	for _, p := range profiles {
		row := grid[p.Name]
		tb.AddRow(p.Name,
			metrics.FmtRatio(row["markus"].Slowdown),
			metrics.FmtRatio(row["ffmalloc"].Slowdown),
			metrics.FmtRatio(row["minesweeper"].Slowdown))
	}
	tb.AddRow("geomean",
		metrics.FmtRatio(geomeanOf(grid, "markus", slow)),
		metrics.FmtRatio(geomeanOf(grid, "ffmalloc", slow)),
		metrics.FmtRatio(geomeanOf(grid, "minesweeper", slow)))
	fprintf(w, "%s\n(b) average memory\n\n", tb)
	tb = metrics.NewTable("benchmark", "markus", "ffmalloc", "minesweeper")
	for _, p := range profiles {
		row := grid[p.Name]
		tb.AddRow(p.Name,
			metrics.FmtRatio(row["markus"].AvgMem),
			metrics.FmtRatio(row["ffmalloc"].AvgMem),
			metrics.FmtRatio(row["minesweeper"].AvgMem))
	}
	tb.AddRow("geomean",
		metrics.FmtRatio(geomeanOf(grid, "markus", avgMem)),
		metrics.FmtRatio(geomeanOf(grid, "ffmalloc", avgMem)),
		metrics.FmtRatio(geomeanOf(grid, "minesweeper", avgMem)))
	fprintf(w, "%s\n", tb)
	fprintf(w, "Paper (geomeans): MineSweeper 2.7x time / 4.0x memory; MarkUs 6.7x / 1.7x\n")
	fprintf(w, "(121x worst-case time); FFMalloc 2.16x / 7.2x (97x worst-case memory).\n")
	fprintf(w, "These kernels only allocate and free — the unrealistic pressure case (§5.7).\n")
	return nil
}

// FigScudo renders the §7 extension result: MineSweeper attached to the
// Scudo-style hardened allocator.
func FigScudo(w io.Writer, r *Runner) error {
	fprintf(w, "Section 7: MineSweeper over a Scudo-style hardened allocator\n\n")
	grid, err := r.specGrid([]schemes.Kind{schemes.Scudo})
	if err != nil {
		return err
	}
	tb := metrics.NewTable("benchmark", "slowdown", "avg memory")
	for _, name := range workload.Spec2006Names() {
		c := grid[name]["scudo-minesweeper"]
		tb.AddRow(name, metrics.FmtRatio(c.Slowdown), metrics.FmtRatio(c.AvgMem))
	}
	tb.AddRow("geomean",
		metrics.FmtRatio(geomeanOf(grid, "scudo-minesweeper", slow)),
		metrics.FmtRatio(geomeanOf(grid, "scudo-minesweeper", avgMem)))
	fprintf(w, "%s\n", tb)
	fprintf(w, "Paper: \"we have also built a Scudo implementation at 4.4%% overhead\".\n")
	fprintf(w, "Note: ratios here compare against the jemalloc baseline, so they include the\n")
	fprintf(w, "hardened allocator's own cost as well as MineSweeper's.\n")
	return nil
}

// Summary renders the §5.8 headline numbers.
func Summary(w io.Writer, r *Runner) error {
	grid, err := r.specGrid([]schemes.Kind{schemes.MineSweeper, schemes.MineSweeperMostly, schemes.MarkUs, schemes.FFMalloc})
	if err != nil {
		return err
	}
	fprintf(w, "Summary (§5.8): SPEC CPU2006 geometric means, measured vs paper\n\n")
	tb := metrics.NewTable("scheme", "slowdown", "(paper)", "avg memory", "(paper)")
	row := func(scheme string, pt, pm float64) {
		tb.AddRow(scheme,
			metrics.FmtRatio(geomeanOf(grid, scheme, slow)), fmt.Sprintf("(%.3f)", pt),
			metrics.FmtRatio(geomeanOf(grid, scheme, avgMem)), fmt.Sprintf("(%.3f)", pm))
	}
	h := metrics.PaperHeadline
	row("minesweeper", h.MSSlowdown, h.MSMemory)
	row("minesweeper-mostly", h.MSMostlySlowdown, h.MSMostlyMemory)
	row("markus", h.MarkUsSlowdown, h.MarkUsMemory)
	row("ffmalloc", h.FFSlowdown, h.FFMemory)
	fprintf(w, "%s\n", tb)
	fprintf(w, "The claim under test: MineSweeper delivers low overhead on BOTH axes at once,\n")
	fprintf(w, "where MarkUs pays time and FFMalloc pays memory.\n")
	return nil
}
