package jemalloc

import (
	"math/bits"
	"sync/atomic"

	"minesweeper/internal/mem"
)

// ExtentHooks is the allocator's interface to physical-memory management,
// mirroring jemalloc's extent_hooks_t. The default hooks commit and decommit
// pages directly; MineSweeper installs hooks that additionally maintain its
// unmapped-page shadow bitmap and access protections (§4.5: "we hook onto
// JeMalloc's extent management via the extent hook API ... instead of a purge
// call and demand-allocation, we use a pair of calls: decommit and commit").
type ExtentHooks interface {
	// Commit makes [base, base+size) resident and accessible.
	Commit(space *mem.AddressSpace, base, size uint64) error
	// Decommit discards the physical backing of [base, base+size) and
	// makes it inaccessible.
	Decommit(space *mem.AddressSpace, base, size uint64) error
}

// DefaultHooks commits and decommits pages with ProtRW and no bookkeeping.
type DefaultHooks struct{}

// Commit implements ExtentHooks.
func (DefaultHooks) Commit(space *mem.AddressSpace, base, size uint64) error {
	return space.Commit(base, size, mem.ProtRW)
}

// Decommit implements ExtentHooks.
func (DefaultHooks) Decommit(space *mem.AddressSpace, base, size uint64) error {
	return space.Decommit(base, size)
}

// Extent life-cycle states. An extent is created free, becomes a slab or a
// large allocation, and returns to free on the arena's dirty lists — over and
// over, since extent metadata is never destroyed. The state word is the
// atomic publication point for reuse: init* writes every descriptive field
// first and stores the state last, so a lock-free reader that observes the
// state also observes the fields behind it (and a reader holding a stale
// state reads bounded, older-incarnation values that its caller re-validates,
// exactly as with the seed's RWMutex map, which also never protected the
// extent's own fields).
const (
	extStateFree uint32 = iota // on a dirty list, or freshly created
	extStateSlab
	extStateLarge
)

// Extent is a contiguous run of pages managed by the arena: either a slab
// (carved into equal small regions) or a single large allocation. Extent
// metadata lives out of line in Go memory, never in the simulated address
// space — the property the paper relies on for metadata safety.
//
// The free() fast path reads extents through the lock-free page map, so the
// fields that path touches — state, class, regSize and the two bitmaps — are
// atomic. The bitmap slice headers are written once (first initSlab) and
// never reallocated: they are sized for the smallest class the extent could
// ever host, so every later initSlab fits in place and stale readers can
// never index out of bounds.
type Extent struct {
	region *mem.Region
	base   uint64
	size   uint64 // bytes, page multiple; immutable after creation
	// shard is the index of the arena/bin shard that owns the extent. An
	// extent never migrates between shards (it returns to its arena's dirty
	// lists forever), so the field is immutable after creation and routes
	// cross-thread frees back to the owning shard's bin set.
	shard int32

	state   atomic.Uint32 // extStateFree / extStateSlab / extStateLarge
	class   atomic.Int32  // slab size class; stale across reuse, gated by state
	regSize atomic.Uint64 // slab region size; never reset to zero once set

	nregs int // slab region count; owning bin's lock
	nfree int // free region count; owning bin's lock
	words int // freemap words in use for the current class; owning bin's lock
	// nonfullIdx is the extent's position in its bin's nonfull list, or -1
	// when it is not listed (current slab, full slab, or free). Owning bin's
	// lock. It makes removal on slab release O(1) instead of a linear scan.
	nonfullIdx int32

	// freemap words (bit set = region free) are written only under the
	// owning bin's lock but read lock-free by Lookup/UsableSize (the
	// quarantine's validation path), so all accesses are atomic.
	freemap []uint64
	// cachemap words (bit set = region is sitting in some thread's tcache)
	// give free() an O(1) double-free membership check, replacing the
	// seed's linear scan of the tcache stack. Bits are set and cleared by
	// the cache's owning thread but read by any thread freeing into the
	// slab, so all accesses are atomic. Unlike the seed's check — which
	// only saw the freeing thread's own cache — the shared bitmap also
	// catches a double free whose first free is cached on another thread.
	cachemap []uint64

	committed  bool   // physical backing present; arena lock or exclusive owner
	dirtyStamp uint64 // virtual time when placed on the dirty list; arena lock
}

// isSlab reports whether the extent currently backs a slab.
func (e *Extent) isSlab() bool { return e.state.Load() == extStateSlab }

// isLarge reports whether a live large allocation occupies the extent.
func (e *Extent) isLarge() bool { return e.state.Load() == extStateLarge }

// Base returns the extent's first address.
func (e *Extent) Base() uint64 { return e.base }

// Size returns the extent's size in bytes.
func (e *Extent) Size() uint64 { return e.size }

// pages returns the extent's size in pages.
func (e *Extent) pages() int { return int(e.size / mem.PageSize) }

// initSlab configures the extent as an all-free slab of the given class. The
// caller holds the owning bin's lock. Field writes precede the state store,
// which publishes them to lock-free readers.
func (e *Extent) initSlab(class int) {
	e.class.Store(int32(class))
	e.regSize.Store(ClassSize(class))
	e.nregs = int(e.size / ClassSize(class))
	e.words = (e.nregs + 63) / 64
	if e.freemap == nil {
		// First time as a slab: size the bitmaps for the smallest class
		// the extent could ever host, once and for all. The slice
		// headers stay immutable from here on, so stale lock-free
		// readers can never observe a torn or undersized header.
		maxWords := int(e.size/ClassSize(0)+63) / 64
		e.freemap = make([]uint64, maxWords)
		e.cachemap = make([]uint64, maxWords)
	}
	for i := 0; i < e.words; i++ {
		atomic.StoreUint64(&e.freemap[i], ^uint64(0))
		atomic.StoreUint64(&e.cachemap[i], 0)
	}
	// Clear bits past nregs so popcounts stay honest.
	if rem := e.nregs % 64; rem != 0 {
		atomic.StoreUint64(&e.freemap[e.words-1], (1<<rem)-1)
	}
	e.nfree = e.nregs
	e.nonfullIdx = -1
	e.state.Store(extStateSlab)
}

// initLarge configures the extent as a single large allocation. Slab
// descriptors (class, regSize, bitmaps) are deliberately left as the previous
// slab incarnation wrote them: a reader holding a stale slab state must keep
// seeing nonzero, in-bounds values.
func (e *Extent) initLarge() {
	e.state.Store(extStateLarge)
}

// popRegion allocates the lowest-index free region and returns its address
// and region index. The caller must hold the owning bin's lock and have
// checked nfree > 0.
func (e *Extent) popRegion() (uint64, int) {
	for w := 0; w < e.words; w++ {
		word := atomic.LoadUint64(&e.freemap[w])
		if word != 0 {
			bit := bits.TrailingZeros64(word)
			atomic.StoreUint64(&e.freemap[w], word&^(1<<bit))
			e.nfree--
			idx := w*64 + bit
			return e.base + uint64(idx)*e.regSize.Load(), idx
		}
	}
	panic("jemalloc: popRegion on full slab")
}

// regionIndex returns the region index containing addr, which must lie in
// the extent.
func (e *Extent) regionIndex(addr uint64) int {
	return int((addr - e.base) / e.regSize.Load())
}

// regionBase returns the base address of region i.
func (e *Extent) regionBase(i int) uint64 { return e.base + uint64(i)*e.regSize.Load() }

// regionFree reports whether region i is free.
func (e *Extent) regionFree(i int) bool {
	return atomic.LoadUint64(&e.freemap[i/64])&(1<<(i%64)) != 0
}

// pushRegion returns region i to the slab. The caller must hold the owning
// bin's lock; the region must be allocated.
func (e *Extent) pushRegion(i int) {
	atomic.OrUint64(&e.freemap[i/64], 1<<(i%64))
	e.nfree++
}

// regionCached reports whether region i currently sits in a thread cache.
func (e *Extent) regionCached(i int) bool {
	return atomic.LoadUint64(&e.cachemap[i/64])&(1<<(i%64)) != 0
}

// cacheRegion marks region i as tcache-resident.
func (e *Extent) cacheRegion(i int) {
	atomic.OrUint64(&e.cachemap[i/64], 1<<(i%64))
}

// uncacheRegion clears region i's tcache-residency mark.
func (e *Extent) uncacheRegion(i int) {
	atomic.AndUint64(&e.cachemap[i/64], ^(uint64(1) << (i % 64)))
}
