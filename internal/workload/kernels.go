package workload

import (
	"fmt"
	"sync"

	"minesweeper/internal/mem"
	"minesweeper/internal/sim"
)

// xmallocMu guards the cross-thread free rings.
var xmallocMu sync.Mutex

// runKernel dispatches a thread to the profile's kernel.
func runKernel(p *sim.Program, th *sim.Thread, prof *Profile, threadIdx int) error {
	switch prof.Kernel {
	case "":
		return newEngine(th, p, prof, threadIdx).run()
	case "cache-scratch":
		return kernelCacheScratch(th, prof)
	case "larson":
		return kernelLarson(th, prof)
	case "sh-bench":
		return kernelSHBench(th, prof)
	case "xmalloc":
		return kernelXmalloc(p, th, prof, threadIdx)
	case "glibc-simple":
		return kernelGlibcSimple(th, prof)
	case "pressure":
		return kernelPressure(th, prof)
	default:
		return fmt.Errorf("workload: unknown kernel %q", prof.Kernel)
	}
}

// kernelCacheScratch models mimalloc-bench cache-scratch: allocate one
// buffer per thread and loop over it doing work — almost no allocator
// activity, measuring induced cache behaviour only.
func kernelCacheScratch(th *sim.Thread, prof *Profile) error {
	size := prof.Sizes.Sample(th.Rand())
	buf, err := th.Malloc(size)
	if err != nil {
		return err
	}
	words := size / mem.WordSize
	for op := 0; op < prof.Ops; op++ {
		w := uint64(op) % words
		v, err := th.Load(buf + w*mem.WordSize)
		if err != nil {
			return err
		}
		if err := th.Store(buf+w*mem.WordSize, (v+1)&payloadMask); err != nil {
			return err
		}
	}
	return th.Free(buf)
}

// kernelLarson models the larson server benchmark: a slot array where each
// operation frees a random slot and reallocates it with a random size.
func kernelLarson(th *sim.Thread, prof *Profile) error {
	r := th.Rand()
	slots := make([]uint64, prof.LiveTarget)
	for i := range slots {
		a, err := th.Malloc(prof.Sizes.Sample(r))
		if err != nil {
			return err
		}
		slots[i] = a
	}
	for op := 0; op < prof.Ops; op++ {
		i := r.Intn(len(slots))
		if err := th.Free(slots[i]); err != nil {
			return err
		}
		a, err := th.Malloc(prof.Sizes.Sample(r))
		if err != nil {
			return err
		}
		slots[i] = a
		if err := th.Store(a, r.Uint64()&payloadMask); err != nil {
			return err
		}
	}
	for _, a := range slots {
		if err := th.Free(a); err != nil {
			return err
		}
	}
	return nil
}

// kernelSHBench models sh6bench/sh8bench: repeated batch phases — allocate a
// batch, free a fraction in allocation order, free the rest in reverse.
func kernelSHBench(th *sim.Thread, prof *Profile) error {
	r := th.Rand()
	batch := prof.LiveTarget
	rounds := prof.Ops / batch
	if rounds < 1 {
		rounds = 1
	}
	for round := 0; round < rounds; round++ {
		addrs := make([]uint64, 0, batch)
		for i := 0; i < batch; i++ {
			a, err := th.Malloc(prof.Sizes.Sample(r))
			if err != nil {
				return err
			}
			if err := th.Store(a, r.Uint64()&payloadMask); err != nil {
				return err
			}
			addrs = append(addrs, a)
		}
		// Free the first half in order, the rest in reverse.
		half := len(addrs) / 2
		for i := 0; i < half; i++ {
			if err := th.Free(addrs[i]); err != nil {
				return err
			}
		}
		for i := len(addrs) - 1; i >= half; i-- {
			if err := th.Free(addrs[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// xmallocRingCap bounds each thread's incoming cross-free ring.
const xmallocRingCap = 256

// xmallocRings carries cross-thread free traffic for kernelXmalloc, keyed by
// program. Each thread pushes allocations into its ring slot; the next
// thread drains and frees them (allocate-here, free-there).
type xmallocRing struct {
	ch []chan uint64
}

var xmallocRings = struct {
	m map[*sim.Program]*xmallocRing
}{m: make(map[*sim.Program]*xmallocRing)}

// kernelXmalloc models xmalloc-testN: objects are freed by a different
// thread than the one that allocated them, stressing cross-thread free
// paths (remote tcache flushes, shared-bin contention).
func kernelXmalloc(p *sim.Program, th *sim.Thread, prof *Profile, threadIdx int) error {
	ring := getXmallocRing(p, prof.Threads)
	mine := ring.ch[threadIdx]
	next := ring.ch[(threadIdx+1)%prof.Threads]
	r := th.Rand()

	drain := func(limit int) error {
		for i := 0; i < limit; i++ {
			select {
			case a := <-mine:
				if err := th.Free(a); err != nil {
					return err
				}
			default:
				return nil
			}
		}
		return nil
	}

	for op := 0; op < prof.Ops; op++ {
		a, err := th.Malloc(prof.Sizes.Sample(r))
		if err != nil {
			return err
		}
		select {
		case next <- a:
		default:
			// Peer's ring is full; free locally.
			if err := th.Free(a); err != nil {
				return err
			}
		}
		if err := drain(4); err != nil {
			return err
		}
	}
	// Final drain: peers may still be pushing, so sweep a few times.
	for i := 0; i < 64; i++ {
		if err := drain(xmallocRingCap); err != nil {
			return err
		}
	}
	return nil
}

func getXmallocRing(p *sim.Program, threads int) *xmallocRing {
	xmallocMu.Lock()
	defer xmallocMu.Unlock()
	if r, ok := xmallocRings.m[p]; ok {
		return r
	}
	r := &xmallocRing{ch: make([]chan uint64, threads)}
	for i := range r.ch {
		// Bounded rings: when a thread exits while peers still push, at
		// most one ring of allocations per thread is stranded.
		r.ch[i] = make(chan uint64, xmallocRingCap)
	}
	xmallocRings.m[p] = r
	return r
}

// kernelGlibcSimple models glibc-simple: a tight loop of fixed-size
// malloc/free pairs with a tiny live window.
func kernelGlibcSimple(th *sim.Thread, prof *Profile) error {
	r := th.Rand()
	var ring [16]uint64
	for op := 0; op < prof.Ops; op++ {
		i := op % len(ring)
		if ring[i] != 0 {
			if err := th.Free(ring[i]); err != nil {
				return err
			}
		}
		a, err := th.Malloc(prof.Sizes.Sample(r))
		if err != nil {
			return err
		}
		ring[i] = a
	}
	for _, a := range ring {
		if a != 0 {
			if err := th.Free(a); err != nil {
				return err
			}
		}
	}
	return nil
}
