package telemetry

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the number of power-of-two histogram buckets. Bucket b counts
// values v with 2^(b-1) <= v < 2^b (bucket 0 counts exactly zero), so the full
// uint64 range is covered: bits.Len64 of a value is its bucket index.
const NumBuckets = 65

// DefaultHistShards is the stripe count for histograms recorded on hot paths.
// Eight single-cache-line stripes keep concurrent mutators from bouncing one
// counter line between cores while costing only 8x64 words per histogram.
const DefaultHistShards = 8

// histShard is one stripe of counters. The padding keeps adjacent stripes on
// separate cache lines: Record is an atomic add on the owning thread's stripe
// and must not false-share with its neighbours.
type histShard struct {
	counts [NumBuckets]atomic.Uint64
	sum    atomic.Uint64
	_      [56]byte
}

// Histogram is a lock-free latency histogram with power-of-two buckets.
// Recording is one atomic increment plus one atomic add on a stripe selected
// by the caller (typically a thread ID), so hot paths never contend on a
// single counter line. Reads (Snapshot) merge the stripes; they are not
// linearisable against concurrent writers, which is fine for monitoring.
type Histogram struct {
	name   string
	unit   string
	shards []histShard
}

// NewHistogram returns a histogram with n stripes (n <= 0 means 1). Unit is a
// display string, typically "ns".
func NewHistogram(name, unit string, n int) *Histogram {
	if n <= 0 {
		n = 1
	}
	return &Histogram{name: name, unit: unit, shards: make([]histShard, n)}
}

// Name returns the histogram's registry name.
func (h *Histogram) Name() string { return h.name }

// Record counts v on stripe 0.
func (h *Histogram) Record(v uint64) { h.RecordShard(0, v) }

// RecordShard counts v on the stripe selected by hint (reduced modulo the
// stripe count, so any thread ID is a valid hint).
func (h *Histogram) RecordShard(hint int, v uint64) {
	if hint < 0 {
		hint = -hint
	}
	s := &h.shards[hint%len(h.shards)]
	s.counts[bits.Len64(v)].Add(1)
	s.sum.Add(v)
}

// HistogramSnapshot is a merged, immutable view of a histogram. Buckets[b]
// counts values in [2^(b-1), 2^b); Buckets[0] counts zeros.
//
// P50/P99/P999 are the pre-extracted tail quantiles (bucket upper bounds, see
// Quantile) so JSON consumers — msstat, cmd/benchjson's pause gate — read the
// percentiles directly instead of re-deriving them from the bucket array.
type HistogramSnapshot struct {
	Name    string             `json:"name"`
	Unit    string             `json:"unit"`
	Count   uint64             `json:"count"`
	Sum     uint64             `json:"sum"`
	P50     uint64             `json:"p50"`
	P99     uint64             `json:"p99"`
	P999    uint64             `json:"p999"`
	Buckets [NumBuckets]uint64 `json:"buckets"`
}

// fillQuantiles recomputes the exported percentile fields from the buckets.
// Call after any mutation of Count/Buckets (Snapshot, Merge).
func (s *HistogramSnapshot) fillQuantiles() {
	s.P50 = s.Quantile(0.5)
	s.P99 = s.Quantile(0.99)
	s.P999 = s.Quantile(0.999)
}

// Snapshot merges all stripes into one view.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Name: h.name, Unit: h.unit}
	for i := range h.shards {
		sh := &h.shards[i]
		s.Sum += sh.sum.Load()
		for b := 0; b < NumBuckets; b++ {
			n := sh.counts[b].Load()
			s.Buckets[b] += n
			s.Count += n
		}
	}
	s.fillQuantiles()
	return s
}

// Mean returns the average recorded value, or 0 with no samples.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// BucketUpper returns the exclusive upper bound of bucket b (its inclusive
// lower bound is BucketUpper(b-1), and bucket 0 holds exactly zero).
func BucketUpper(b int) uint64 {
	if b <= 0 {
		return 1
	}
	if b >= 64 {
		return ^uint64(0)
	}
	return uint64(1) << b
}

// Quantile returns the upper bound of the bucket containing the q-quantile
// sample (0 <= q <= 1), or 0 with no samples. Power-of-two buckets bound the
// answer within 2x of the true quantile, which is the resolution the paper's
// latency discussion needs.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count-1))
	var seen uint64
	for b := 0; b < NumBuckets; b++ {
		seen += s.Buckets[b]
		if seen > rank {
			if b == 0 {
				return 0
			}
			return BucketUpper(b)
		}
	}
	return BucketUpper(NumBuckets - 1)
}

// Max returns the upper bound of the highest non-empty bucket, or 0.
func (s HistogramSnapshot) Max() uint64 {
	for b := NumBuckets - 1; b >= 0; b-- {
		if s.Buckets[b] != 0 {
			if b == 0 {
				return 0
			}
			return BucketUpper(b)
		}
	}
	return 0
}

// Merge returns the bucket-wise sum of two snapshots (used by tests and by
// aggregation across processes; names are taken from the receiver).
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	out := s
	out.Count += o.Count
	out.Sum += o.Sum
	for b := 0; b < NumBuckets; b++ {
		out.Buckets[b] += o.Buckets[b]
	}
	out.fillQuantiles()
	return out
}

// String summarises the snapshot on one line.
func (s HistogramSnapshot) String() string {
	return fmt.Sprintf("%s: n=%d mean=%.0f%s p50<%d p99<%d max<%d",
		s.Name, s.Count, s.Mean(), s.Unit, s.Quantile(0.5), s.Quantile(0.99), s.Max())
}
