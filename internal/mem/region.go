package mem

import (
	"runtime"
	"sync/atomic"
)

// Per-page state bits, packed into an atomic uint32 per page.
const (
	pageResident uint32 = 1 << 0 // physical backing is committed
	pageRead     uint32 = 1 << 1 // loads permitted
	pageWrite    uint32 = 1 << 2 // stores permitted
	pageDirty    uint32 = 1 << 3 // soft-dirty: written since last ClearSoftDirty
	pageBusy     uint32 = 1 << 4 // page lock: bulk zeroing or scanning in progress
)

func protBits(p Prot) uint32 {
	var b uint32
	if p&ProtRead != 0 {
		b |= pageRead
	}
	if p&ProtWrite != 0 {
		b |= pageWrite
	}
	return b
}

// Region is a contiguous mapping in the simulated address space, the analogue
// of one mmap'd range. Allocators map one region per extent or pool; mutator
// stacks and the globals segment are regions too.
//
// Word data is stored in a []uint64 and accessed atomically, so a concurrent
// sweeper reading every word of the region is race-free with respect to
// mutator stores — the simulated counterpart of the paper's concurrent sweep
// of live process memory.
type Region struct {
	space *AddressSpace
	base  uint64
	size  uint64 // bytes; always page-aligned
	kind  Kind

	// words is the physical backing (len == size/WordSize). It is dropped
	// when every page of the region is decommitted — the simulated
	// equivalent of the OS actually releasing physical frames — so that
	// unmapped quarantined extents and purged dirty extents cost no host
	// memory, just as they cost no physical memory in the real system.
	// Accessors load the pointer once; a stale slice held across a
	// concurrent drop reads the old (zeroed) frames, like a TLB straggler.
	words    atomic.Pointer[[]uint64]
	resident atomic.Int32    // number of resident pages
	pages    []atomic.Uint32 // per-page state bits

	// Aliases: an alias region exposes a window of another region's
	// physical backing under its own virtual addresses and protections —
	// the mremap-style virtual aliasing Oscar builds on (paper §6.3).
	// Aliases contribute no RSS of their own; the parent's frames are the
	// physical memory.
	parent    *Region
	parentOff uint64 // byte offset of the alias window within parent
}

// IsAlias reports whether the region is a virtual alias of another region's
// physical memory.
func (r *Region) IsAlias() bool { return r.parent != nil }

// Parent returns the aliased region (nil for ordinary regions).
func (r *Region) Parent() *Region { return r.parent }

// Base returns the region's first virtual address.
func (r *Region) Base() uint64 { return r.base }

// Size returns the region's length in bytes.
func (r *Region) Size() uint64 { return r.size }

// End returns one past the region's last byte.
func (r *Region) End() uint64 { return r.base + r.size }

// Kind returns what the region is used for.
func (r *Region) Kind() Kind { return r.kind }

// PageCount returns the number of pages in the region.
func (r *Region) PageCount() int { return len(r.pages) }

// Contains reports whether addr lies inside the region.
func (r *Region) Contains(addr uint64) bool { return addr >= r.base && addr < r.base+r.size }

// pageIndexOf returns the index of the page containing addr, which must lie
// within the region.
func (r *Region) pageIndexOf(addr uint64) int { return int((addr - r.base) >> PageShift) }

// PageIndex returns the index of the page containing addr, which must lie
// within the region.
func (r *Region) PageIndex(addr uint64) int { return r.pageIndexOf(addr) }

// PageResident reports whether page i has committed physical backing.
func (r *Region) PageResident(i int) bool { return r.pages[i].Load()&pageResident != 0 }

// PageReadable reports whether page i is resident and permits loads. This is
// the sweeper's filter: only readable resident pages are swept.
func (r *Region) PageReadable(i int) bool {
	s := r.pages[i].Load()
	return s&(pageResident|pageRead) == pageResident|pageRead
}

// PageDirty reports whether page i has been written since the last
// ClearSoftDirty, the analogue of the Linux soft-dirty PTE bit the paper uses
// for its mostly-concurrent mode.
func (r *Region) PageDirty(i int) bool { return r.pages[i].Load()&pageDirty != 0 }

// PageAddr returns the virtual address of page i.
func (r *Region) PageAddr(i int) uint64 { return r.base + uint64(i)<<PageShift }

// WordCount returns the number of 64-bit words in the region.
func (r *Region) WordCount() int { return int(r.size / WordSize) }

// wordSlice returns the current backing, or nil when fully decommitted.
// Aliases resolve through their parent's backing.
func (r *Region) wordSlice() []uint64 {
	if r.parent != nil {
		w := r.parent.wordSlice()
		if w == nil {
			return nil
		}
		off := r.parentOff / WordSize
		return w[off : off+r.size/WordSize]
	}
	p := r.words.Load()
	if p == nil {
		return nil
	}
	return *p
}

// ensureBacking installs zeroed backing if none is present, returning the
// current backing. Aliases never own backing; they borrow the parent's.
func (r *Region) ensureBacking() []uint64 {
	if r.parent != nil {
		return r.wordSlice()
	}
	if w := r.wordSlice(); w != nil {
		return w
	}
	fresh := r.space.getBacking(int(r.size / WordSize))
	if r.words.CompareAndSwap(nil, &fresh) {
		return fresh
	}
	r.space.putBacking(fresh)
	return r.wordSlice()
}

// WordAt atomically loads word index i without access checks. It is the
// sweeper's read primitive; callers must have checked PageReadable for the
// containing page.
func (r *Region) WordAt(i int) uint64 {
	w := r.wordSlice()
	if w == nil {
		return 0
	}
	return atomic.LoadUint64(&w[i])
}

// Load64 performs a checked, atomic load of the word at addr, which must lie
// within the region. It is the fast path for callers (mutator threads) that
// cache the region of their last access.
func (r *Region) Load64(addr uint64) (uint64, error) {
	v, err := r.load(addr)
	if err != nil {
		r.space.faults.Add(1)
	}
	return v, err
}

// Store64 performs a checked, atomic store at addr, which must lie within
// the region; the region-cache counterpart of AddressSpace.Store64.
func (r *Region) Store64(addr, v uint64) error {
	err := r.store(addr, v)
	if err != nil {
		r.space.faults.Add(1)
	}
	return err
}

// load atomically loads the word at addr after checking protections.
func (r *Region) load(addr uint64) (uint64, error) {
	if !WordAligned(addr) {
		return 0, &Fault{Addr: addr, Cause: CauseMisaligned}
	}
	s := r.pages[r.pageIndexOf(addr)].Load()
	if s&pageResident == 0 {
		return 0, &Fault{Addr: addr, Cause: CauseNotResident}
	}
	if s&pageRead == 0 {
		return 0, &Fault{Addr: addr, Cause: CauseProtection}
	}
	w := r.wordSlice()
	if w == nil {
		return 0, &Fault{Addr: addr, Cause: CauseNotResident}
	}
	return atomic.LoadUint64(&w[(addr-r.base)>>3]), nil
}

// store atomically stores v at addr after checking protections, setting the
// page's soft-dirty bit.
func (r *Region) store(addr, v uint64) error {
	if !WordAligned(addr) {
		return &Fault{Addr: addr, Write: true, Cause: CauseMisaligned}
	}
	pi := r.pageIndexOf(addr)
	s := r.pages[pi].Load()
	if s&pageResident == 0 {
		return &Fault{Addr: addr, Write: true, Cause: CauseNotResident}
	}
	if s&pageWrite == 0 {
		return &Fault{Addr: addr, Write: true, Cause: CauseProtection}
	}
	if s&pageDirty == 0 {
		r.pages[pi].Or(pageDirty)
	}
	w := r.wordSlice()
	if w == nil {
		return &Fault{Addr: addr, Write: true, Cause: CauseNotResident}
	}
	atomic.StoreUint64(&w[(addr-r.base)>>3], v)
	return nil
}

// LockPage acquires page i's busy bit. It orders bulk plain-memory
// operations (zeroing) against bulk readers (sweeps, marking): both sides
// hold the lock for their page-granular critical section, so zeroing can run
// at memset speed with plain stores while remaining race-free with scanners.
// Mutator word accesses stay lock-free: they are per-word atomic, which is
// race-free against the scanners' atomic reads, and a correct program never
// touches memory that is being zeroed (it was freed).
func (r *Region) LockPage(i int) {
	spins := 0
	for {
		old := r.pages[i].Load()
		if old&pageBusy == 0 && r.pages[i].CompareAndSwap(old, old|pageBusy) {
			return
		}
		spins++
		if spins%64 == 0 {
			runtime.Gosched()
		}
	}
}

// UnlockPage releases page i's busy bit.
func (r *Region) UnlockPage(i int) {
	for {
		old := r.pages[i].Load()
		if r.pages[i].CompareAndSwap(old, old&^pageBusy) {
			return
		}
	}
}

// zeroRange zeroes [addr, addr+n) without protection checks. It is used by
// the allocator layers (zero-on-free, commit/decommit fill) which operate on
// memory they own regardless of current protections. addr and n must be
// word-aligned. Each page segment is cleared with plain stores under the
// page lock (see LockPage) — the simulated memset.
func (r *Region) zeroRange(addr, n uint64) {
	for n > 0 {
		pi := r.pageIndexOf(addr)
		segEnd := r.PageAddr(pi) + PageSize
		if segEnd > addr+n {
			segEnd = addr + n
		}
		ws := (addr - r.base) >> 3
		we := (segEnd - r.base) >> 3
		r.LockPage(pi)
		if w := r.wordSlice(); w != nil {
			clear(w[ws:we])
		}
		r.UnlockPage(pi)
		n -= segEnd - addr
		addr = segEnd
	}
}

// ScanPageWords invokes fn with page p's backing words while holding the
// page lock, returning whether the page was readable. It is the sweeper's
// bulk-read primitive: one lock acquisition and one backing lookup cover the
// whole page, so the inner loop iterates a plain []uint64 instead of paying
// WordAt's pointer chase per word. fn must load words with
// sync/atomic.LoadUint64 (mutator stores are per-word atomic and do not take
// the page lock) and must not retain the slice past its return. If the
// backing was dropped by a concurrent decommit, fn receives an empty slice —
// the page reads as all zeros, exactly as WordAt would report it.
func (r *Region) ScanPageWords(p int, fn func(words []uint64)) bool {
	if !r.PageReadable(p) {
		return false
	}
	r.LockPage(p)
	var ws []uint64
	if w := r.wordSlice(); w != nil {
		ws = w[p*WordsPerPage : (p+1)*WordsPerPage]
	}
	fn(ws)
	r.UnlockPage(p)
	return true
}

// ScanRange calls fn for every word of [addr, addr+n) that lies on a
// readable resident page, taking the page lock per page segment. It is the
// safe bulk-read primitive for markers that walk object contents (MarkUs).
func (r *Region) ScanRange(addr, n uint64, fn func(v uint64)) {
	for n > 0 {
		pi := r.pageIndexOf(addr)
		segEnd := r.PageAddr(pi) + PageSize
		if segEnd > addr+n {
			segEnd = addr + n
		}
		if r.PageReadable(pi) {
			ws := (addr - r.base) >> 3
			we := (segEnd - r.base) >> 3
			r.LockPage(pi)
			if w := r.wordSlice(); w != nil {
				for i := ws; i < we; i++ {
					fn(atomic.LoadUint64(&w[i]))
				}
			}
			r.UnlockPage(pi)
		}
		n -= segEnd - addr
		addr = segEnd
	}
}

// commit marks pages [addr, addr+n) resident with protection prot, zeroing
// their contents (fresh pages from the OS are zero-filled). Returns the
// number of pages that transitioned from non-resident to resident.
func (r *Region) commit(addr, n uint64, prot Prot) int {
	r.ensureBacking()
	first := r.pageIndexOf(addr)
	last := r.pageIndexOf(addr + n - 1)
	newly := 0
	bits := pageResident | protBits(prot)
	for i := first; i <= last; i++ {
		var old uint32
		for {
			old = r.pages[i].Load()
			if r.pages[i].CompareAndSwap(old, old&pageBusy|bits) {
				break
			}
		}
		if old&pageResident == 0 {
			newly++
			if r.parent == nil {
				r.zeroRange(r.PageAddr(i), PageSize)
			}
		}
	}
	r.resident.Add(int32(newly))
	return newly
}

// decommit releases the physical backing of pages [addr, addr+n). Contents
// are not touched — like madvise(DONTNEED), the frames simply cease to exist;
// commit zero-fills on re-residency, so a decommitted-then-recommitted page
// still reads as zero. When the whole region goes non-resident its backing is
// dropped to the pool. Returns the number of pages that were resident.
func (r *Region) decommit(addr, n uint64) int {
	first := r.pageIndexOf(addr)
	last := r.pageIndexOf(addr + n - 1)
	released := 0
	for i := first; i <= last; i++ {
		var old uint32
		for {
			old = r.pages[i].Load()
			if r.pages[i].CompareAndSwap(old, old&pageBusy) {
				break
			}
		}
		if old&pageResident != 0 {
			released++
		}
	}
	if released > 0 && r.resident.Add(int32(-released)) == 0 && r.parent == nil {
		if old := r.words.Swap(nil); old != nil {
			r.space.putBacking(*old)
		}
	}
	return released
}

// protect changes the protection of pages [addr, addr+n) without touching
// residency or contents.
func (r *Region) protect(addr, n uint64, prot Prot) {
	first := r.pageIndexOf(addr)
	last := r.pageIndexOf(addr + n - 1)
	bits := protBits(prot)
	for i := first; i <= last; i++ {
		for {
			old := r.pages[i].Load()
			nw := old&^(pageRead|pageWrite) | bits
			if r.pages[i].CompareAndSwap(old, nw) {
				break
			}
		}
	}
}

// clearSoftDirty clears every page's soft-dirty bit.
func (r *Region) clearSoftDirty() {
	for i := range r.pages {
		for {
			old := r.pages[i].Load()
			if old&pageDirty == 0 {
				break
			}
			if r.pages[i].CompareAndSwap(old, old&^pageDirty) {
				break
			}
		}
	}
}
