// Package oscar implements the Oscar baseline (Dang, Maniatis & Wagner,
// USENIX Security 2017): a practical page-permissions-based scheme for
// thwarting dangling pointers. Every allocation receives its own *virtual*
// page(s), while objects are co-located on shared *physical* pages through
// virtual aliases (Dhurjati & Adve's trick, which Oscar revives with a
// high-water-mark for address reuse). free() revokes the object's virtual
// pages; a dangling pointer then faults, and the virtual range is never
// handed to another allocation, so use-after-reallocate is impossible.
//
// Costs reproduced here match the paper's diagnosis (§6.3): every small
// allocation pays mapping work (a syscall-weight MapAlias) and retires
// virtual pages on free — "for small allocations, Oscar suffers high
// overheads from TLB pressure, system calls, and page-table size" — while
// physical memory stays shared, so its *memory* overhead is far milder than
// one-page-per-object would suggest. Large allocations behave like
// MineSweeper's unmapped quarantine: their physical pages are released at
// free.
package oscar

import (
	"fmt"
	"sync"
	"sync/atomic"

	"minesweeper/internal/alloc"
	"minesweeper/internal/mem"
)

// slabBytes is the physical slab size objects are co-located into.
const slabBytes = 256 << 10

// smallMax is the largest request served from slabs; larger objects get
// dedicated mappings.
const smallMax = 2048

// slab is one physical backing region being bump-filled.
type slab struct {
	region *mem.Region
	next   uint64 // bump offset within the slab
	live   int    // live objects in the slab
}

// object is Oscar's per-allocation metadata (page-table-adjacent state).
type object struct {
	alias *mem.Region // the object's own virtual pages
	slab  *slab       // nil for large objects
	size  uint64
}

// Heap is the Oscar-protected heap.
type Heap struct {
	space *mem.AddressSpace

	mu   sync.Mutex
	cur  *slab
	objs map[uint64]*object // virtual base -> object

	mallocs   atomic.Uint64
	frees     atomic.Uint64
	allocated atomic.Int64
	vaPages   atomic.Uint64 // virtual pages consumed (page-table pressure)
}

var _ alloc.Allocator = (*Heap)(nil)

// New builds an Oscar heap over space.
func New(space *mem.AddressSpace) *Heap {
	return &Heap{space: space, objs: make(map[uint64]*object)}
}

// String returns the scheme name.
func (h *Heap) String() string { return "oscar" }

// RegisterThread implements alloc.Allocator.
func (h *Heap) RegisterThread() alloc.ThreadID { return 0 }

// UnregisterThread implements alloc.Allocator.
func (h *Heap) UnregisterThread(alloc.ThreadID) {}

// Malloc implements alloc.Allocator. The returned address lies on virtual
// pages owned exclusively by this allocation.
func (h *Heap) Malloc(_ alloc.ThreadID, size uint64) (uint64, error) {
	if size == 0 {
		size = 1
	}
	size = (size + mem.WordSize) &^ (mem.WordSize - 1) // +1B end pad, word-aligned
	if size <= smallMax {
		return h.mallocSmall(size)
	}
	return h.mallocLarge(size)
}

func (h *Heap) mallocSmall(size uint64) (uint64, error) {
	h.mu.Lock()
	if h.cur == nil || h.cur.next+size > h.cur.region.Size() {
		r, err := h.space.Map(mem.KindHeap, slabBytes, true)
		if err != nil {
			h.mu.Unlock()
			return 0, fmt.Errorf("%w: %v", alloc.ErrOutOfMemory, err)
		}
		// A retired bump slab whose objects all died while it was
		// current is released now.
		if old := h.cur; old != nil && old.live == 0 {
			defer func() { _ = h.space.Unmap(old.region) }()
		}
		h.cur = &slab{region: r}
	}
	s := h.cur
	off := s.next
	s.next += size
	s.live++
	h.mu.Unlock()

	// Alias the physical page(s) the object spans into a fresh virtual
	// range — the per-allocation shadow Oscar creates.
	pageOff := off &^ (mem.PageSize - 1)
	span := mem.PageCeil(off+size) - pageOff
	alias, err := h.space.MapAlias(s.region, pageOff, span)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", alloc.ErrOutOfMemory, err)
	}
	h.vaPages.Add(span / mem.PageSize)
	base := alias.Base() + (off - pageOff)

	h.mu.Lock()
	h.objs[base] = &object{alias: alias, slab: s, size: size}
	h.mu.Unlock()
	h.mallocs.Add(1)
	h.allocated.Add(int64(size))
	return base, nil
}

func (h *Heap) mallocLarge(size uint64) (uint64, error) {
	r, err := h.space.Map(mem.KindHeap, size, true)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", alloc.ErrOutOfMemory, err)
	}
	h.vaPages.Add(r.Size() / mem.PageSize)
	h.mu.Lock()
	h.objs[r.Base()] = &object{alias: nil, size: size}
	h.mu.Unlock()
	h.mallocs.Add(1)
	h.allocated.Add(int64(size))
	return r.Base(), nil
}

// Free implements alloc.Allocator: revoke the object's virtual pages. The
// physical slab page is released once every object on it is dead.
func (h *Heap) Free(_ alloc.ThreadID, addr uint64) error {
	h.mu.Lock()
	o, ok := h.objs[addr]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("%w: %#x", alloc.ErrInvalidFree, addr)
	}
	delete(h.objs, addr)
	h.mu.Unlock()

	h.allocated.Add(-int64(o.size))
	if o.slab == nil {
		// Large object: unmap its dedicated region entirely.
		if r := h.space.Lookup(addr); r != nil {
			_ = h.space.Unmap(r)
		}
		h.frees.Add(1)
		return nil
	}

	// Revoke the virtual alias: dangling pointers now fault.
	_ = h.space.Unmap(o.alias)

	h.mu.Lock()
	o.slab.live--
	releaseSlab := o.slab.live == 0 && o.slab != h.cur
	h.mu.Unlock()
	if releaseSlab {
		// Every object co-located on this physical slab is dead.
		_ = h.space.Unmap(o.slab.region)
	}
	h.frees.Add(1)
	return nil
}

// UsableSize implements alloc.Allocator.
func (h *Heap) UsableSize(addr uint64) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if o, ok := h.objs[addr]; ok {
		return o.size
	}
	return 0
}

// Tick implements alloc.Allocator.
func (h *Heap) Tick(uint64) {}

// VAPages returns total virtual pages consumed — Oscar's page-table-size
// pressure.
func (h *Heap) VAPages() uint64 { return h.vaPages.Load() }

// Stats implements alloc.Allocator.
func (h *Heap) Stats() alloc.Stats {
	h.mu.Lock()
	live := len(h.objs)
	h.mu.Unlock()
	allocated := h.allocated.Load()
	if allocated < 0 {
		allocated = 0
	}
	return alloc.Stats{
		Allocated: uint64(allocated),
		Active:    h.space.RSS(),
		// Each alias costs page-table state: the dominating metadata.
		MetaBytes: uint64(live)*96 + h.vaPages.Load()*8,
		Mallocs:   h.mallocs.Load(),
		Frees:     h.frees.Load(),
	}
}

// Shutdown implements alloc.Allocator.
func (h *Heap) Shutdown() {}
