package figures

import (
	"bytes"
	"strings"
	"testing"

	"minesweeper/internal/schemes"
	"minesweeper/internal/workload"
)

func testRunner() *Runner {
	return NewRunner(workload.Options{ScaleDiv: 100}, 1)
}

func TestFig01(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig01CVETrends(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"2019", "National Vulnerability Database", "Linux kernel"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestFig02(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig02Exploit(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "EXPLOITED") {
		t.Error("baseline not exploited")
	}
	if strings.Count(out, "EXPLOITED") > 2 { // once in table, once in legend at most
		t.Errorf("too many EXPLOITED rows:\n%s", out)
	}
}

func TestSpecFiguresSmoke(t *testing.T) {
	// One shared runner: figures must reuse memoized results, and each
	// must render every benchmark plus a geomean row.
	r := testRunner()
	figs := map[string]func(*testing.T) string{
		"fig9": func(t *testing.T) string {
			var buf bytes.Buffer
			if err := Fig09SlowdownZoom(&buf, r); err != nil {
				t.Fatal(err)
			}
			return buf.String()
		},
		"fig10": func(t *testing.T) string {
			var buf bytes.Buffer
			if err := Fig10Memory(&buf, r); err != nil {
				t.Fatal(err)
			}
			return buf.String()
		},
		"fig11": func(t *testing.T) string {
			var buf bytes.Buffer
			if err := Fig11AvgPeak(&buf, r); err != nil {
				t.Fatal(err)
			}
			return buf.String()
		},
		"fig12": func(t *testing.T) string {
			var buf bytes.Buffer
			if err := Fig12CPU(&buf, r); err != nil {
				t.Fatal(err)
			}
			return buf.String()
		},
		"fig14": func(t *testing.T) string {
			var buf bytes.Buffer
			if err := Fig14SweepCounts(&buf, r); err != nil {
				t.Fatal(err)
			}
			return buf.String()
		},
	}
	for name, fn := range figs {
		out := fn(t)
		for _, bench := range workload.Spec2006Names() {
			if !strings.Contains(out, bench) {
				t.Errorf("%s: missing benchmark %s", name, bench)
			}
		}
		if name != "fig14" && !strings.Contains(out, "geomean") {
			t.Errorf("%s: missing geomean row", name)
		}
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := testRunner()
	prof, _ := workload.FindProfile("espresso")
	a, err := r.result(prof, schemes.New(schemes.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.result(prof, schemes.New(schemes.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	if a.Wall != b.Wall {
		t.Error("second call re-ran instead of memoizing")
	}
}

func TestFig08Buckets(t *testing.T) {
	r := testRunner()
	var buf bytes.Buffer
	if err := Fig08Sphinx3RSS(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "100%") {
		t.Error("trace buckets missing final time point")
	}
}
