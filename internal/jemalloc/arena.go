package jemalloc

import (
	"sync"
	"sync/atomic"

	"minesweeper/internal/mem"
)

// arena owns extent allocation and recycling for one heap shard. Freed
// extents go onto per-page-count dirty lists; they are reused LIFO by new
// extent requests, and purged (decommitted via the extent hooks) either by
// decay — jemalloc's background aging of dirty memory — or by an explicit
// PurgeAll, which is what MineSweeper triggers after every sweep (§4.5).
//
// The page map is shared by every arena of the heap (a page's extent must be
// findable no matter which shard owns it); everything else — the mutex, the
// dirty lists, the virtual clock — is per-shard, so extent churn on one shard
// never serialises against another.
type arena struct {
	mu    sync.Mutex
	space *mem.AddressSpace
	hooks ExtentHooks
	pm    *rtree // shared across shards
	shard int32  // index stamped onto every extent this arena creates

	// dirty holds free extents by page count. Purged (decommitted)
	// extents stay listed: their VA is "retained" and can be recommitted,
	// like jemalloc's retained extents.
	dirty      map[int][]*Extent
	dirtyBytes uint64 // committed bytes on dirty lists

	decayCycles uint64 // dirty extents older than this get purged on Tick
	now         uint64 // last observed virtual time

	nExtents int
	purges   atomic.Uint64
}

func newArena(space *mem.AddressSpace, hooks ExtentHooks, pm *rtree, shard int32, decayCycles uint64) *arena {
	return &arena{
		space:       space,
		hooks:       hooks,
		pm:          pm,
		shard:       shard,
		dirty:       make(map[int][]*Extent),
		decayCycles: decayCycles,
	}
}

// allocExtent returns a committed extent of exactly `pages` pages, reusing a
// dirty extent when one is available. Recycled extents that were never purged
// retain their previous contents (as real recycled memory does); purged or
// fresh extents read as zero.
func (a *arena) allocExtent(pages int) (*Extent, error) {
	a.mu.Lock()
	if list := a.dirty[pages]; len(list) > 0 {
		e := list[len(list)-1]
		a.dirty[pages] = list[:len(list)-1]
		if e.committed {
			a.dirtyBytes -= e.size
		}
		a.mu.Unlock()
		if !e.committed {
			if err := a.hooks.Commit(a.space, e.base, e.size); err != nil {
				return nil, err
			}
			e.committed = true
		}
		return e, nil
	}
	a.nExtents++
	a.mu.Unlock()

	r, err := a.space.Map(mem.KindHeap, uint64(pages)*mem.PageSize, true)
	if err != nil {
		return nil, err
	}
	e := &Extent{
		region:    r,
		base:      r.Base(),
		size:      r.Size(),
		shard:     a.shard,
		committed: true,
	}
	a.pm.insert(e)
	return e, nil
}

// freeExtent places e on the dirty list for later reuse or purging.
func (a *arena) freeExtent(e *Extent) {
	e.state.Store(extStateFree)
	a.mu.Lock()
	a.freeExtentLocked(e)
	a.mu.Unlock()
}

// freeExtents places a batch of extents on the dirty lists under one lock
// acquisition — the release path hands back every slab emptied by a sweep
// this way instead of taking the arena lock per slab.
func (a *arena) freeExtents(es []*Extent) {
	if len(es) == 0 {
		return
	}
	for _, e := range es {
		e.state.Store(extStateFree)
	}
	a.mu.Lock()
	for _, e := range es {
		a.freeExtentLocked(e)
	}
	a.mu.Unlock()
}

func (a *arena) freeExtentLocked(e *Extent) {
	e.dirtyStamp = a.now
	a.dirty[e.pages()] = append(a.dirty[e.pages()], e)
	if e.committed {
		a.dirtyBytes += e.size
	}
}

// collectPurgeLocked removes every committed dirty extent matching keep's
// complement — i.e. extents for which shouldPurge returns true — from the
// dirty lists and returns them. Caller holds a.mu. The removed extents are
// invisible to allocExtent until finishPurge re-lists them, so the caller can
// decommit them outside the critical section without racing a reuse.
func (a *arena) collectPurgeLocked(shouldPurge func(*Extent) bool) []*Extent {
	var batch []*Extent
	for pages, list := range a.dirty {
		kept := list[:0]
		for _, e := range list {
			if e.committed && shouldPurge(e) {
				batch = append(batch, e)
				a.dirtyBytes -= e.size
			} else {
				kept = append(kept, e)
			}
		}
		for i := len(kept); i < len(list); i++ {
			list[i] = nil
		}
		a.dirty[pages] = kept
	}
	return batch
}

// purgeExtents decommits batch (collected by collectPurgeLocked) with no lock
// held — extent hooks may be user-supplied and slow, and holding a.mu across
// them would stall every concurrent malloc slow path — then re-lists the now
// uncommitted extents so their VA stays reusable.
func (a *arena) purgeExtents(batch []*Extent) {
	if len(batch) == 0 {
		return
	}
	for _, e := range batch {
		// Decommit cannot fail for in-range extents; an error here would
		// mean a substrate bug.
		if err := a.hooks.Decommit(a.space, e.base, e.size); err != nil {
			panic("jemalloc: decommit failed: " + err.Error())
		}
		e.committed = false
	}
	a.mu.Lock()
	for _, e := range batch {
		a.dirty[e.pages()] = append(a.dirty[e.pages()], e)
	}
	a.mu.Unlock()
	a.purges.Add(1)
}

// Tick advances virtual time and purges dirty extents older than the decay
// deadline, modelling jemalloc's decay-based purging. The decommit hook calls
// happen outside the arena critical section.
func (a *arena) Tick(now uint64) {
	a.mu.Lock()
	a.now = now
	var batch []*Extent
	if a.decayCycles != 0 {
		batch = a.collectPurgeLocked(func(e *Extent) bool {
			return now-e.dirtyStamp >= a.decayCycles
		})
	}
	a.mu.Unlock()
	a.purgeExtents(batch)
}

// PurgeAll decommits every dirty extent — the enhanced cleanup MineSweeper
// triggers after each sweep. The extents are unhooked from the dirty lists
// under the lock and decommitted after it is released, so a post-sweep purge
// never blocks a concurrent allocation slow path on the hook calls.
func (a *arena) PurgeAll() {
	a.mu.Lock()
	batch := a.collectPurgeLocked(func(*Extent) bool { return true })
	a.mu.Unlock()
	if len(batch) == 0 {
		a.purges.Add(1)
		return
	}
	a.purgeExtents(batch)
}

// dirtyStats returns (committed dirty bytes, extent count) for stats.
func (a *arena) dirtyStats() (uint64, int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, list := range a.dirty {
		n += len(list)
	}
	return a.dirtyBytes, n
}
