// webcache models the kind of long-running server the paper's introduction
// motivates (a browser/server processing untrusted inputs): a connection
// cache with a use-after-free bug in its eviction path, driven by concurrent
// worker threads under full (non-synchronous) MineSweeper — background
// sweeps, thread-local quarantine buffers, the lot.
//
// Run with:
//
//	go run ./examples/webcache
//
// The bug: when a cache entry is evicted, a "session" structure keeps a
// stale pointer to it. Requests occasionally follow that stale pointer.
// MineSweeper turns every such access into a benign zero-read or clean
// fault, and the entry's memory is never handed to another connection while
// the stale pointer exists.
package main

import (
	"fmt"
	"log"
	"sync"

	minesweeper "minesweeper"
)

const (
	workers     = 4
	requests    = 30_000
	cacheSlots  = 256
	entryBytes  = 512
	sessionRefs = 32
)

func main() {
	proc, err := minesweeper.NewProcess(minesweeper.Config{
		Scheme: minesweeper.SchemeMineSweeper,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer proc.Close()

	var wg sync.WaitGroup
	staleReads := make([]int, workers)
	for w := 0; w < workers; w++ {
		th, err := proc.NewThreadSeed(uint64(w) + 1)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(w int, th *minesweeper.Thread) {
			defer wg.Done()
			defer th.Close()
			staleReads[w] = serve(proc, th, w)
		}(w, th)
	}
	wg.Wait()

	st := proc.Stats()
	total := 0
	for _, n := range staleReads {
		total += n
	}
	fmt.Printf("served %d requests on %d workers\n", workers*requests, workers)
	fmt.Printf("stale-pointer accesses observed: %d (all benign or faulted)\n", total)
	fmt.Printf("sweeps=%d released=%d failed(retained-by-dangling)=%d doubleFrees=%d\n",
		st.Sweeps, st.ReleasedFrees, st.FailedFrees, st.DoubleFrees)
	fmt.Printf("rss=%.1f MiB quarantined=%.1f MiB uafFaults=%d\n",
		float64(st.RSS)/(1<<20), float64(st.Quarantined)/(1<<20), st.UAFFaults)
	fmt.Println("no request ever observed another connection's data in recycled memory.")
}

// serve runs one worker's request loop and returns how many stale reads it
// performed (the bug firing).
func serve(proc *minesweeper.Process, th *minesweeper.Thread, worker int) int {
	// cache maps slot -> entry address (0 = empty). Sessions hold copies
	// of entry addresses in the thread's simulated STACK slots — real
	// pointers the sweep can see. Evicting an entry without clearing the
	// session slot leaves a dangling pointer: the bug.
	cache := make([]minesweeper.Addr, cacheSlots)
	sessionSlots := make([]int, 0, sessionRefs)
	rng := uint64(worker)*0x9E3779B97F4A7C15 + 1
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	stale := 0

	for req := 0; req < requests; req++ {
		slot := next(cacheSlots)
		if cache[slot] == 0 {
			// Miss: allocate and fill an entry.
			e, err := th.Malloc(entryBytes)
			if err != nil {
				log.Fatal(err)
			}
			for w := 0; w < entryBytes/8; w += 8 {
				_ = th.Store(e+uint64(w*8), rng&0xFFFF)
			}
			cache[slot] = e
			// Occasionally a session keeps a direct reference, stored
			// in a stack slot (a real in-memory pointer).
			if len(sessionSlots) < sessionRefs && next(4) == 0 {
				si := len(sessionSlots)
				if err := th.Store(th.StackSlot(si), e); err != nil {
					log.Fatal(err)
				}
				sessionSlots = append(sessionSlots, si)
			}
			continue
		}
		// Hit: touch the entry.
		if _, err := th.Load(cache[slot] + uint64(next(entryBytes/8))*8); err != nil {
			log.Fatalf("live entry access faulted: %v", err)
		}
		// Periodic eviction — WITHOUT invalidating sessions (the bug).
		if next(8) == 0 {
			if err := th.Free(cache[slot]); err != nil {
				log.Fatalf("evict: %v", err)
			}
			cache[slot] = 0
		}
		// Sessions occasionally follow their (possibly stale) pointers.
		if len(sessionSlots) > 0 && next(16) == 0 {
			i := next(len(sessionSlots))
			ptr, err := th.Load(th.StackSlot(sessionSlots[i]))
			if err == nil && ptr != 0 {
				if _, err := th.Load(ptr); err == nil {
					// Either still live, or a benign zeroed read —
					// never another connection's recycled data.
				}
				stale++
			}
			// The session expires: its pointer is erased, so future
			// sweeps can release the quarantined entry.
			if err := th.Store(th.StackSlot(sessionSlots[i]), 0); err != nil {
				log.Fatal(err)
			}
			sessionSlots[i] = sessionSlots[len(sessionSlots)-1]
			sessionSlots = sessionSlots[:len(sessionSlots)-1]
		}
	}
	// Connection teardown: drop everything still cached.
	for _, e := range cache {
		if e != 0 {
			_ = th.Free(e)
		}
	}
	return stale
}
