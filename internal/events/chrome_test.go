package events

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// synthSweep emits one full, correctly nested sweep onto the ring: the
// satellite-4 oracle's input, shaped exactly like runSweep's emission order.
func synthSweep(rg *Ring, base uint64) {
	rg.EmitAt(base, KindSweepBegin, 2, 128)
	rg.EmitAt(base+10, KindMarkBegin, 0, 0)
	rg.EmitAt(base+20, KindPrecleanBegin, 1, 0)
	rg.EmitAt(base+40, KindPrecleanEnd, 6, 1)
	rg.EmitAt(base+50, KindStwBegin, 4, 0)
	rg.EmitAt(base+70, KindStwEnd, 4, 0)
	rg.EmitAt(base+80, KindMarkEnd, 32, 1<<20)
	rg.EmitAt(base+90, KindRecycleBegin, 0, 0)
	rg.EmitAt(base+120, KindRecycleEnd, 100, 28)
	rg.EmitAt(base+130, KindPurgeBegin, 0, 0)
	rg.EmitAt(base+150, KindPurgeEnd, 0, 0)
	rg.EmitAt(base+160, KindSweepEnd, 100, 28)
}

// TestChromeExportNesting is the oracle test: a synthetic sweep produces a
// Chrome trace whose B/E events are correctly nested per track.
func TestChromeExportNesting(t *testing.T) {
	rec := NewRecorder(64, time.Minute)
	sw := rec.Ring("sweeper")
	synthSweep(sw, 1000)
	th := rec.Ring("thread-0")
	th.EmitAt(1055, KindPauseBegin, 3, 0)
	th.EmitAt(1072, KindPauseEnd, 17, 0)
	th.EmitAt(1200, KindDrain, 32, 4096)

	d := rec.Capture(TripManual)
	if err := ValidateSpans(d); err != nil {
		t.Fatalf("ValidateSpans on well-formed dump: %v", err)
	}

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, d); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}

	// Replay the B/E stream per tid and check stack discipline + pairing —
	// exactly what chrome://tracing's importer enforces.
	stacks := map[float64][]string{}
	spans := 0
	for _, e := range evs {
		ph, _ := e["ph"].(string)
		name, _ := e["name"].(string)
		tid, _ := e["tid"].(float64)
		switch ph {
		case "B":
			stacks[tid] = append(stacks[tid], name)
		case "E":
			st := stacks[tid]
			if len(st) == 0 {
				t.Fatalf("E %q with empty stack on tid %v", name, tid)
			}
			if top := st[len(st)-1]; top != name {
				t.Fatalf("E %q closes B %q on tid %v", name, top, tid)
			}
			stacks[tid] = st[:len(st)-1]
			spans++
		case "M", "i":
		default:
			t.Fatalf("unexpected phase %q", ph)
		}
	}
	for tid, st := range stacks {
		if len(st) != 0 {
			t.Fatalf("tid %v left open spans %v", tid, st)
		}
	}
	// sweep, mark, preclean, stw, recycle, purge on the sweeper + pause on
	// the mutator.
	if spans != 7 {
		t.Fatalf("closed %d spans, want 7", spans)
	}
}

func TestValidateSpansRejectsBadNesting(t *testing.T) {
	rec := NewRecorder(64, time.Minute)
	rg := rec.Ring("sweeper")
	rg.EmitAt(10, KindSweepBegin, 0, 0)
	rg.EmitAt(20, KindMarkBegin, 0, 0)
	rg.EmitAt(30, KindSweepEnd, 0, 0) // closes sweep while mark still open
	if err := ValidateSpans(rec.Capture(TripManual)); err == nil {
		t.Fatal("interleaved spans accepted")
	}

	rec2 := NewRecorder(64, time.Minute)
	rg2 := rec2.Ring("sweeper")
	rg2.EmitAt(10, KindSweepBegin, 0, 0)
	rg2.EmitAt(15, KindSweepEnd, 0, 0)
	rg2.EmitAt(20, KindMarkBegin, 0, 0) // phase span outside any sweep
	rg2.EmitAt(25, KindMarkEnd, 0, 0)
	if err := ValidateSpans(rec2.Capture(TripManual)); err == nil {
		t.Fatal("phase span outside sweep accepted")
	}
}

func TestValidateSpansToleratesWindowClipping(t *testing.T) {
	rec := NewRecorder(64, time.Minute)
	rg := rec.Ring("sweeper")
	// Window cut mid-sweep: the capture starts with the tail of an old
	// sweep (bare Ends), then a full sweep, then an unterminated one.
	rg.EmitAt(10, KindMarkEnd, 5, 100)
	rg.EmitAt(20, KindSweepEnd, 9, 1)
	synthSweep(rg, 100)
	rg.EmitAt(300, KindSweepBegin, 1, 50)
	rg.EmitAt(310, KindMarkBegin, 0, 0)
	if err := ValidateSpans(rec.Capture(TripManual)); err != nil {
		t.Fatalf("clipped dump rejected: %v", err)
	}
}
