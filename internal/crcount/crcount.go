// Package crcount implements the CRCount baseline (Shin et al., NDSS 2019):
// pointer invalidation with reference counting. Compiler support keeps a
// per-object reference count up to date on every pointer store; an object is
// deallocated only when (a) the programmer has freed it AND (b) its count has
// dropped to zero. Like MineSweeper, CRCount zero-fills freed memory, which
// removes the freed object's outgoing references (§6.6).
//
// In this reproduction the per-pointer-write compiler instrumentation is the
// simulator's alloc.PointerObserver hook: every mutator store pays for the
// count update — which is exactly why the paper observes CRCount overheads
// "on even non-allocation-intensive workloads (e.g., mcf, povray)".
//
// Conservatively treating any heap-valued word as a pointer makes counts an
// over-approximation, so falsely-elevated counts leak zombie objects — the
// behaviour CRCount's own evaluation reports as its residual memory cost.
package crcount

import (
	"fmt"
	"sync"
	"sync/atomic"

	"minesweeper/internal/alloc"
	"minesweeper/internal/jemalloc"
	"minesweeper/internal/mem"
)

const shards = 64

type refShard struct {
	mu sync.Mutex
	// counts maps allocation base -> reference count.
	counts map[uint64]int64
	// zombies holds bases freed by the program whose count is not yet 0.
	zombies map[uint64]uint64 // base -> usable size
}

// Heap is the CRCount-protected heap.
type Heap struct {
	je    *jemalloc.Heap
	space *mem.AddressSpace

	shards [shards]refShard

	zombieBytes atomic.Int64
	released    atomic.Uint64
	deferred    atomic.Uint64
	ptrUpdates  atomic.Uint64
}

var _ alloc.Allocator = (*Heap)(nil)
var _ alloc.PointerObserver = (*Heap)(nil)

// New builds a CRCount heap over space.
func New(space *mem.AddressSpace, jcfg jemalloc.Config) *Heap {
	h := &Heap{space: space, je: jemalloc.New(space, jcfg)}
	for i := range h.shards {
		h.shards[i].counts = make(map[uint64]int64)
		h.shards[i].zombies = make(map[uint64]uint64)
	}
	return h
}

// String returns the scheme name.
func (h *Heap) String() string { return "crcount" }

func (h *Heap) shardFor(base uint64) *refShard {
	return &h.shards[((base>>4)*0x9E3779B97F4A7C15)>>58]
}

// RegisterThread implements alloc.Allocator.
func (h *Heap) RegisterThread() alloc.ThreadID { return h.je.RegisterThread() }

// UnregisterThread implements alloc.Allocator.
func (h *Heap) UnregisterThread(tid alloc.ThreadID) { h.je.UnregisterThread(tid) }

// Malloc implements alloc.Allocator.
func (h *Heap) Malloc(tid alloc.ThreadID, size uint64) (uint64, error) {
	return h.je.Malloc(tid, size)
}

// resolve returns the base of the live allocation containing word, or 0.
func (h *Heap) resolve(word uint64) uint64 {
	if !mem.IsHeapAddr(word) {
		return 0
	}
	a, ok := h.je.Lookup(word)
	if !ok {
		return 0
	}
	return a.Base
}

// NoteStore implements alloc.PointerObserver: the compiler-inserted count
// update on every pointer write.
func (h *Heap) NoteStore(tid alloc.ThreadID, addr, old, new uint64) {
	if old == new {
		return
	}
	if base := h.resolve(new); base != 0 {
		h.incref(base)
		h.ptrUpdates.Add(1)
	}
	if base := h.resolve(old); base != 0 {
		h.decref(tid, base)
		h.ptrUpdates.Add(1)
	}
}

func (h *Heap) incref(base uint64) {
	s := h.shardFor(base)
	s.mu.Lock()
	s.counts[base]++
	s.mu.Unlock()
}

// decref decrements base's count, releasing it if it was a zombie that just
// became unreferenced.
func (h *Heap) decref(tid alloc.ThreadID, base uint64) {
	s := h.shardFor(base)
	s.mu.Lock()
	c := s.counts[base] - 1
	if c <= 0 {
		delete(s.counts, base)
	} else {
		s.counts[base] = c
	}
	var releaseSize uint64
	var release bool
	if c <= 0 {
		if size, zombie := s.zombies[base]; zombie {
			delete(s.zombies, base)
			release, releaseSize = true, size
		}
	}
	s.mu.Unlock()
	if release {
		h.zombieBytes.Add(-int64(releaseSize))
		h.released.Add(1)
		_ = h.je.Free(tid, base)
	}
}

// Free implements alloc.Allocator: zero-fill, then deallocate now if the
// count is zero, else keep the object as a zombie until its count drops.
func (h *Heap) Free(tid alloc.ThreadID, addr uint64) error {
	a, ok := h.je.Lookup(addr)
	if !ok || a.Base != addr {
		if h.isZombie(addr) {
			return nil // double free of a zombie: idempotent
		}
		return fmt.Errorf("%w: %#x", alloc.ErrInvalidFree, addr)
	}

	// Zero-filling removes the object's outgoing references: decrement
	// every pointer it held (the compiler knows the pointer fields; we
	// conservatively scan words).
	r := h.space.Lookup(a.Base)
	if r != nil {
		var outgoing []uint64
		r.ScanRange(a.Base, a.Size, func(v uint64) {
			if b := h.resolve(v); b != 0 && b != a.Base {
				outgoing = append(outgoing, b)
			}
		})
		_ = h.space.Zero(a.Base, a.Size)
		for _, b := range outgoing {
			h.decref(tid, b)
		}
	}

	s := h.shardFor(a.Base)
	s.mu.Lock()
	if _, dup := s.zombies[a.Base]; dup {
		s.mu.Unlock()
		return nil
	}
	count := s.counts[a.Base]
	if count > 0 {
		s.zombies[a.Base] = a.Size
		s.mu.Unlock()
		h.zombieBytes.Add(int64(a.Size))
		h.deferred.Add(1)
		return nil
	}
	delete(s.counts, a.Base)
	s.mu.Unlock()
	h.released.Add(1)
	return h.je.Free(tid, addr)
}

func (h *Heap) isZombie(base uint64) bool {
	s := h.shardFor(base)
	s.mu.Lock()
	_, ok := s.zombies[base]
	s.mu.Unlock()
	return ok
}

// Refcount returns base's current reference count (tests).
func (h *Heap) Refcount(base uint64) int64 {
	s := h.shardFor(base)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[base]
}

// UsableSize implements alloc.Allocator.
func (h *Heap) UsableSize(addr uint64) uint64 {
	if h.isZombie(addr) {
		return 0
	}
	return h.je.UsableSize(addr)
}

// Tick implements alloc.Allocator.
func (h *Heap) Tick(now uint64) { h.je.Tick(now) }

// Stats implements alloc.Allocator.
func (h *Heap) Stats() alloc.Stats {
	st := h.je.Stats()
	z := uint64(h.zombieBytes.Load())
	if st.Allocated >= z {
		st.Allocated -= z
	}
	st.Quarantined = z // zombies are CRCount's quarantine analogue
	var entries int
	for i := range h.shards {
		h.shards[i].mu.Lock()
		entries += len(h.shards[i].counts) + len(h.shards[i].zombies)
		h.shards[i].mu.Unlock()
	}
	st.MetaBytes += uint64(entries) * 32
	st.ReleasedFrees = h.released.Load()
	st.FailedFrees = h.deferred.Load()
	return st
}

// PtrUpdates returns the number of reference-count updates performed — the
// write-intensive cost the paper highlights.
func (h *Heap) PtrUpdates() uint64 { return h.ptrUpdates.Load() }

// Shutdown implements alloc.Allocator.
func (h *Heap) Shutdown() {}
