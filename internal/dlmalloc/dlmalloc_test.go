package dlmalloc

import (
	"errors"
	"testing"

	"minesweeper/internal/alloc"
	"minesweeper/internal/core"
	"minesweeper/internal/mem"
	"minesweeper/internal/sim"
)

func setup(t *testing.T) (*sim.Program, *sim.Thread, *Heap, *mem.AddressSpace) {
	t.Helper()
	space := mem.NewAddressSpace()
	h := New(space)
	t.Cleanup(h.Shutdown)
	prog, err := sim.NewProgram(space, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	th, err := prog.NewThread(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(th.Close)
	return prog, th, h, space
}

func TestMallocFreeReuseLIFO(t *testing.T) {
	_, th, _, _ := setup(t)
	a, err := th.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Free(a); err != nil {
		t.Fatal(err)
	}
	b, err := th.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Errorf("free-list reuse not LIFO: %#x then %#x", a, b)
	}
}

func TestInBandHeader(t *testing.T) {
	_, th, _, space := setup(t)
	a, _ := th.Malloc(100) // class 112
	hdr, err := space.Load64(a - 8)
	if err != nil {
		t.Fatal(err)
	}
	if hdr&1 != 1 {
		t.Error("in-use flag not set in in-band header")
	}
	if hdr&^1 != 112 {
		t.Errorf("header size = %d, want 112", hdr&^1)
	}
	_ = th.Free(a)
	hdr, _ = space.Load64(a - 8)
	if hdr&1 != 0 {
		t.Error("in-use flag still set after free")
	}
}

func TestFreeListLinkageInHeap(t *testing.T) {
	_, th, h, space := setup(t)
	a, _ := th.Malloc(64)
	b, _ := th.Malloc(64)
	_ = th.Free(a)
	_ = th.Free(b)
	// Bin head is b; b's fd word (in heap memory) points to a.
	if got := h.BinHead(64); got != b {
		t.Fatalf("bin head = %#x, want %#x", got, b)
	}
	fd, err := space.Load64(b)
	if err != nil || fd != a {
		t.Errorf("fd word = %#x, %v; want %#x", fd, err, a)
	}
}

func TestDoubleFreeDetectedByHeader(t *testing.T) {
	_, th, _, _ := setup(t)
	a, _ := th.Malloc(64)
	_ = th.Free(a)
	if err := th.Free(a); !errors.Is(err, alloc.ErrDoubleFree) {
		t.Errorf("double free = %v, want ErrDoubleFree", err)
	}
}

// TestMetadataCorruptionAttack makes the paper's §2 footnote executable: a
// use-after-free WRITE through a dangling pointer poisons the freed chunk's
// fd word, and a subsequent malloc returns an attacker-chosen address —
// here, one that aliases a live victim object.
func TestMetadataCorruptionAttack(t *testing.T) {
	prog, th, _, _ := setup(t)

	victim, _ := th.Malloc(64) // the object the attacker wants to overlap
	_ = th.Store(victim, 0x5AFE)
	_ = th.Store(prog.GlobalSlot(1), victim)

	chunk, _ := th.Malloc(64)
	_ = th.Free(chunk) // chunk now heads the 64-byte free list

	// The bug: a dangling WRITE into the freed chunk — which is exactly
	// where the allocator keeps its fd pointer.
	if err := th.Store(chunk, victim); err != nil {
		t.Fatalf("dangling write: %v", err)
	}

	// First malloc returns the chunk; the SECOND pops the poisoned fd and
	// hands out the live victim's address.
	m1, _ := th.Malloc(64)
	m2, _ := th.Malloc(64)
	if m1 != chunk {
		t.Fatalf("first malloc = %#x, want chunk %#x", m1, chunk)
	}
	if m2 != victim {
		t.Fatalf("fd poisoning failed: second malloc = %#x, want victim %#x", m2, victim)
	}
	// The attacker now "legitimately" owns memory aliasing the live
	// victim: writing through m2 clobbers it.
	_ = th.Store(m2, 0xBAD)
	v, _ := th.Load(victim)
	if v == 0x5AFE {
		t.Error("aliasing write did not reach the victim (unexpected)")
	}
}

// TestMineSweeperBlocksMetadataCorruption runs the same attack with
// MineSweeper dropped onto the dlmalloc substrate: the freed chunk is
// quarantined, never enters the in-heap free list while the dangling pointer
// exists, and the poisoning write lands in (zeroed, quarantined) memory that
// the allocator never trusts.
func TestMineSweeperBlocksMetadataCorruption(t *testing.T) {
	space := mem.NewAddressSpace()
	sub := New(space)
	cfg := core.DefaultConfig()
	cfg.Mode = core.Synchronous
	cfg.SweepThreshold = 1e18
	cfg.PauseThreshold = 0
	cfg.BufferCap = 1
	cfg.Unmapping = false // dlmalloc cannot release chunk pages
	h, err := core.NewWithSubstrate(space, cfg, sub)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Shutdown()
	prog, err := sim.NewProgram(space, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	th, err := prog.NewThread(1)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()

	victim, _ := th.Malloc(64)
	_ = th.Store(victim, 0x5AFE)
	_ = th.Store(prog.GlobalSlot(1), victim)

	chunk, _ := th.Malloc(64)
	// Keep a dangling pointer to the chunk, then free it.
	_ = th.Store(prog.GlobalSlot(2), chunk)
	if err := th.Free(chunk); err != nil {
		t.Fatal(err)
	}
	h.Sweep() // chunk has a dangling pointer: stays quarantined

	// The dangling write "poisons" quarantined memory — which is not a
	// free list, because the chunk never reached one.
	_ = th.Store(chunk, victim)

	for i := 0; i < 100; i++ {
		m, err := th.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if m == victim {
			t.Fatal("malloc returned a live object's address")
		}
		if m == chunk {
			t.Fatal("malloc returned the quarantined chunk")
		}
	}
	v, _ := th.Load(victim)
	if v != 0x5AFE {
		t.Errorf("victim corrupted: %#x", v)
	}
}

func TestLargeChunks(t *testing.T) {
	_, th, _, _ := setup(t)
	a, err := th.Malloc(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Store(a+99_992, 1); err != nil {
		t.Errorf("store near end of large chunk: %v", err)
	}
	if err := th.Free(a); err != nil {
		t.Fatal(err)
	}
}

func TestChurnStaysSound(t *testing.T) {
	_, th, h, _ := setup(t)
	rng := sim.NewRand(5)
	live := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		if len(live) > 64 || (len(live) > 0 && rng.Intn(3) == 0) {
			for a := range live {
				if err := th.Free(a); err != nil {
					t.Fatal(err)
				}
				delete(live, a)
				break
			}
			continue
		}
		a, err := th.Malloc(rng.Range(8, 4096))
		if err != nil {
			t.Fatal(err)
		}
		if live[a] {
			t.Fatalf("live address %#x handed out twice", a)
		}
		live[a] = true
	}
	for a := range live {
		_ = th.Free(a)
	}
	if h.AllocatedBytes() != 0 {
		t.Errorf("AllocatedBytes = %d at end", h.AllocatedBytes())
	}
}
