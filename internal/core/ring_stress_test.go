package core

import (
	"sync"
	"testing"

	"minesweeper/internal/alloc"
)

// TestRingDrainOnUnregister: frees buffered in a thread's private ring are
// invisible to global accounting until a drain; UnregisterThread is a drain
// point, so a thread may exit with a part-full ring and lose nothing.
func TestRingDrainOnUnregister(t *testing.T) {
	cfg := testConfig()
	cfg.BufferCap = 64 // watermark 48: ten frees stay ring-resident
	h, tid := newTestHeap(t, cfg)
	var bases []uint64
	var want uint64
	for i := 0; i < 10; i++ {
		a, err := h.Malloc(tid, 256)
		if err != nil {
			t.Fatal(err)
		}
		bases = append(bases, a)
		want += h.UsableSize(a)
	}
	for _, a := range bases {
		if err := h.Free(tid, a); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.Quarantined(); got != 0 {
		t.Fatalf("Quarantined = %d before drain, want 0 (ring-resident)", got)
	}
	h.UnregisterThread(tid)
	if got := h.Quarantined(); got != want {
		t.Fatalf("Quarantined = %d after UnregisterThread, want %d", got, want)
	}
	h.Sweep()
	if got := h.Quarantined(); got != 0 {
		t.Fatalf("Quarantined = %d after sweep, want 0", got)
	}
	if got := h.Stats().Allocated; got != 0 {
		t.Fatalf("Allocated = %d after sweep, want 0", got)
	}
}

// TestRingConcurrentStress is the private-ring race stress: 8 threads with
// real (non-eager) rings malloc and free concurrently — including cross-thread
// frees and in-window double frees — while a sweeper goroutine forces full
// sweep/LockIn cycles against the drains. Every thread retires through
// UnregisterThread with a part-full ring. Run under -race via make race-hot.
func TestRingConcurrentStress(t *testing.T) {
	cfg := testConfig()
	cfg.BufferCap = 32
	h, _ := newTestHeap(t, cfg)

	const threads = 8
	const iters = 1500
	handoff := make(chan uint64, 512)
	stopSweeps := make(chan struct{})
	var sweepWG sync.WaitGroup
	sweepWG.Add(1)
	go func() {
		defer sweepWG.Done()
		for {
			select {
			case <-stopSweeps:
				return
			default:
				h.Sweep()
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		tid := h.RegisterThread()
		wg.Add(1)
		go func(tid alloc.ThreadID, seed uint64) {
			defer wg.Done()
			defer h.UnregisterThread(tid) // retires a possibly part-full ring
			rng := seed
			var live []uint64
			for i := 0; i < iters; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				a, err := h.Malloc(tid, rng%4096+1)
				if err != nil {
					t.Errorf("Malloc: %v", err)
					return
				}
				switch {
				case rng%4 == 0:
					// Hand the allocation to another thread's free path.
					select {
					case handoff <- a:
					default:
						live = append(live, a)
					}
				case rng%7 == 0:
					// In-window double free: both entries may sit in the
					// same ring (or two rings) before either drains; the
					// drain dedups, a sweep in between may release first.
					if err := h.Free(tid, a); err != nil {
						t.Errorf("Free: %v", err)
						return
					}
					_ = h.Free(tid, a) // absorbed or late-detected; never fatal
				default:
					live = append(live, a)
				}
				if rng%3 == 0 {
					select {
					case x := <-handoff:
						if err := h.Free(tid, x); err != nil {
							t.Errorf("foreign Free: %v", err)
							return
						}
					default:
					}
				}
				if len(live) > 48 {
					if err := h.Free(tid, live[len(live)-1]); err != nil {
						t.Errorf("Free: %v", err)
						return
					}
					live = live[:len(live)-1]
				}
			}
			for _, a := range live {
				if err := h.Free(tid, a); err != nil {
					t.Errorf("final Free: %v", err)
					return
				}
			}
		}(tid, uint64(g)*2654435761+7)
	}
	wg.Wait()
	close(stopSweeps)
	sweepWG.Wait()
	close(handoff)
	drain := h.RegisterThread()
	for a := range handoff {
		if err := h.Free(drain, a); err != nil {
			t.Fatalf("drain Free: %v", err)
		}
	}
	h.UnregisterThread(drain)

	// Quiesced: two sweeps release everything (entries appended during a
	// sweep's lock-in window wait for the next epoch). No simulated memory
	// holds pointers to the frees, so nothing can fail.
	h.Sweep()
	h.Sweep()
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.Allocated != 0 {
		t.Fatalf("Allocated = %d after full release, want 0", st.Allocated)
	}
	if st.Quarantined != 0 {
		t.Fatalf("Quarantined = %d after full release, want 0", st.Quarantined)
	}
}
