// Package metrics provides the measurement machinery the paper's evaluation
// uses: a memory-over-time sampler (the psrecord analogue), geometric means,
// and plain-text table/series renderers for regenerating each figure.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Sample is one point of a memory trace.
type Sample struct {
	// At is the time since sampling started.
	At time.Duration
	// RSS is resident memory in bytes at that instant.
	RSS uint64
}

// Sampler periodically records a memory figure, like the paper's use of
// psrecord to trace physical memory usage (§5.1, Figure 8).
type Sampler struct {
	read     func() uint64
	interval time.Duration

	mu      sync.Mutex
	samples []Sample
	stop    chan struct{}
	done    chan struct{}
	start   time.Time
	stopped bool
}

// NewSampler returns a sampler that calls read every interval.
func NewSampler(read func() uint64, interval time.Duration) *Sampler {
	return &Sampler{read: read, interval: interval}
}

// Start begins sampling in a background goroutine.
func (s *Sampler) Start() {
	s.mu.Lock()
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	s.stopped = false
	s.mu.Unlock()
	s.start = time.Now()
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				v := s.read()
				s.mu.Lock()
				s.samples = append(s.samples, Sample{At: time.Since(s.start), RSS: v})
				s.mu.Unlock()
			}
		}
	}()
}

// Stop ends sampling and records one final sample. It is safe to call
// without a prior Start (nothing was sampling; no final sample is taken) and
// safe to call repeatedly — only the first Stop after a Start ends the
// sampling goroutine and appends the final sample.
func (s *Sampler) Stop() {
	s.mu.Lock()
	if s.stop == nil || s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	close(s.stop)
	<-s.done
	v := s.read()
	s.mu.Lock()
	s.samples = append(s.samples, Sample{At: time.Since(s.start), RSS: v})
	s.mu.Unlock()
}

// Samples returns the recorded trace.
func (s *Sampler) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, len(s.samples))
	copy(out, s.samples)
	return out
}

// Avg returns the average sampled value (the paper's "average memory usage":
// RAM cost of running many small applications side by side).
func (s *Sampler) Avg() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	var sum uint64
	for _, x := range s.samples {
		sum += x.RSS
	}
	return sum / uint64(len(s.samples))
}

// Peak returns the maximum sampled value (the RAM needed for one large
// application).
func (s *Sampler) Peak() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var peak uint64
	for _, x := range s.samples {
		if x.RSS > peak {
			peak = x.RSS
		}
	}
	return peak
}

// Geomean returns the geometric mean of xs (which must be positive).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Table renders aligned text tables for figure output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	t.rows = append(t.rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		var line strings.Builder
		for i := range t.header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				line.WriteString("  ")
			}
			fmt.Fprintf(&line, "%-*s", widths[i], c)
		}
		// No line carries trailing spaces (empty or short final cells
		// would otherwise leave padding; golden-output tests want bytes
		// to be stable).
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// SortRows orders rows by the first column, keeping any "geomean" row last.
func (t *Table) SortRows() {
	sort.SliceStable(t.rows, func(i, j int) bool {
		gi := strings.HasPrefix(t.rows[i][0], "geomean")
		gj := strings.HasPrefix(t.rows[j][0], "geomean")
		if gi != gj {
			return gj
		}
		return t.rows[i][0] < t.rows[j][0]
	})
}

// FmtRatio renders a ratio like 1.054 as "1.054" (3 decimals).
func FmtRatio(r float64) string { return fmt.Sprintf("%.3f", r) }

// FmtPct renders an overhead ratio like 1.054 as "+5.4%".
func FmtPct(r float64) string { return fmt.Sprintf("%+.1f%%", (r-1)*100) }

// FmtMiB renders bytes as mebibytes.
func FmtMiB(b uint64) string { return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20)) }

// ParseSize parses a byte count with an optional K/M/G/T binary suffix
// ("64M" = 64 MiB). The inverse, roughly, of FmtMiB — the form -budget
// flags take.
func ParseSize(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	mult := uint64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	case 't', 'T':
		mult, s = 1<<40, s[:len(s)-1]
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q (want e.g. 64M, 1G or a byte count)", s)
	}
	return n * mult, nil
}
