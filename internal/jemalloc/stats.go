package jemalloc

import (
	"fmt"
	"strings"
)

// BinStats is one size class's statistics, the analogue of the per-bin
// section of jemalloc's malloc_stats_print.
type BinStats struct {
	// Class is the size-class index.
	Class int
	// Size is the class's region size in bytes.
	Size uint64
	// SlabPages is the slab extent size in pages.
	SlabPages int
	// Regions is the number of regions per slab.
	Regions int
	// Slabs is the number of live slabs.
	Slabs int
	// CurRegs is the number of allocated regions across live slabs (the
	// current slab and non-full slabs' occupancy; full slabs count as
	// fully occupied).
	CurRegs int
	// Utilisation is CurRegs / (Slabs * Regions), 0 when no slabs.
	Utilisation float64
}

// DetailedStats is a full accounting snapshot, the malloc_stats_print
// analogue used by diagnostics and the msrun -stats flag.
type DetailedStats struct {
	// Allocated is live usable bytes.
	Allocated uint64
	// SlabBytes is bytes in live slabs (internal fragmentation included).
	SlabBytes uint64
	// LargeBytes is live large-extent bytes.
	LargeBytes uint64
	// DirtyBytes is committed bytes on dirty (reusable) extents.
	DirtyBytes uint64
	// DirtyExtents is the dirty-list length.
	DirtyExtents int
	// Extents is the total extents ever mapped.
	Extents int
	// RSS is the address space's resident bytes.
	RSS uint64
	// Bins holds per-class statistics for classes with live slabs.
	Bins []BinStats
}

// DetailedStats gathers per-bin statistics. It takes every bin lock briefly;
// intended for diagnostics, not hot paths.
func (h *Heap) DetailedStats() DetailedStats {
	d := DetailedStats{
		Allocated:  h.AllocatedBytes(),
		SlabBytes:  uint64(h.slabBytes.Load()),
		LargeBytes: uint64(h.largeLive.Load()),
		RSS:        h.space.RSS(),
	}
	d.DirtyBytes, d.DirtyExtents = h.dirtyStats()
	for s := range h.shards {
		a := h.shards[s].arena
		a.mu.Lock()
		d.Extents += a.nExtents
		a.mu.Unlock()
	}

	// Per-class figures are summed over the shards' bin sets, so the
	// snapshot is the same exact accounting a single shared bin set gave.
	for c := 0; c < NumClasses(); c++ {
		regs := SlabRegions(c)
		slabs := 0
		cur := 0
		for s := range h.shards {
			b := &h.shards[s].bins[c]
			b.mu.Lock()
			if b.nslabs == 0 {
				b.mu.Unlock()
				continue
			}
			counted := 0
			if b.current != nil {
				cur += b.current.nregs - b.current.nfree
				counted++
			}
			for _, sl := range b.nonfull {
				cur += sl.nregs - sl.nfree
				counted++
			}
			// Slabs not in current/nonfull are full.
			cur += (b.nslabs - counted) * regs
			slabs += b.nslabs
			b.mu.Unlock()
		}
		if slabs == 0 {
			continue
		}
		bs := BinStats{
			Class:     c,
			Size:      ClassSize(c),
			SlabPages: SlabPages(c),
			Regions:   regs,
			Slabs:     slabs,
			CurRegs:   cur,
		}
		if total := bs.Slabs * bs.Regions; total > 0 {
			bs.Utilisation = float64(bs.CurRegs) / float64(total)
		}
		d.Bins = append(d.Bins, bs)
	}
	return d
}

// ShardStatsSnapshot is one arena shard's occupancy summary, cheap enough to
// sample from a telemetry gauge: it takes only that shard's locks.
type ShardStatsSnapshot struct {
	// Extents is the shard arena's total extents ever mapped.
	Extents int
	// Slabs is the number of live slabs across the shard's bins.
	Slabs int
	// CurRegs is the number of allocated regions across those slabs.
	CurRegs int
}

// ShardStats gathers one shard's occupancy figures (extents, live slabs,
// allocated regions). Unlike DetailedStats it touches a single shard, so
// periodic per-shard sampling does not serialise the whole heap.
func (h *Heap) ShardStats(s int) ShardStatsSnapshot {
	var out ShardStatsSnapshot
	if s < 0 || s >= len(h.shards) {
		return out
	}
	sh := &h.shards[s]
	sh.arena.mu.Lock()
	out.Extents = sh.arena.nExtents
	sh.arena.mu.Unlock()
	for c := 0; c < NumClasses(); c++ {
		regs := SlabRegions(c)
		b := &sh.bins[c]
		b.mu.Lock()
		if b.nslabs == 0 {
			b.mu.Unlock()
			continue
		}
		counted := 0
		if b.current != nil {
			out.CurRegs += b.current.nregs - b.current.nfree
			counted++
		}
		for _, sl := range b.nonfull {
			out.CurRegs += sl.nregs - sl.nfree
			counted++
		}
		out.CurRegs += (b.nslabs - counted) * regs
		out.Slabs += b.nslabs
		b.mu.Unlock()
	}
	return out
}

// String renders the snapshot in a malloc_stats_print-like layout.
func (d DetailedStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "allocated: %d, slabs: %d, large: %d, rss: %d\n",
		d.Allocated, d.SlabBytes, d.LargeBytes, d.RSS)
	fmt.Fprintf(&b, "dirty: %d bytes in %d extents (of %d total extents)\n",
		d.DirtyBytes, d.DirtyExtents, d.Extents)
	if len(d.Bins) > 0 {
		fmt.Fprintf(&b, "bins:  %5s %8s %6s %6s %8s %6s\n",
			"class", "size", "slabs", "regs", "curregs", "util")
		for _, bin := range d.Bins {
			fmt.Fprintf(&b, "       %5d %8d %6d %6d %8d %5.1f%%\n",
				bin.Class, bin.Size, bin.Slabs, bin.Regions, bin.CurRegs,
				bin.Utilisation*100)
		}
	}
	return b.String()
}
