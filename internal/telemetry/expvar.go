package telemetry

import (
	"expvar"
	"sync"
)

// published guards against double-publishing a name: expvar.Publish panics on
// reuse, and a long-lived process may rebuild its heap (and registry) many
// times. Re-publishing a name atomically swaps the registry the variable
// reads from instead.
var (
	publishMu sync.Mutex
	published = map[string]*registryVar{}
)

// registryVar is the expvar.Var backing one published name.
type registryVar struct {
	mu  sync.Mutex
	reg *Registry
}

func (v *registryVar) current() *Registry {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.reg
}

// PublishExpvar exposes the registry's snapshot as the expvar variable name
// (e.g. "minesweeper"), so any process already serving /debug/vars exports
// MineSweeper telemetry with zero extra plumbing. Calling it again with the
// same name rebinds the variable to the new registry.
func (r *Registry) PublishExpvar(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if v, ok := published[name]; ok {
		v.mu.Lock()
		v.reg = r
		v.mu.Unlock()
		return
	}
	v := &registryVar{reg: r}
	published[name] = v
	expvar.Publish(name, expvar.Func(func() any {
		return v.current().Snapshot()
	}))
}
