package core

import (
	"sync"
	"testing"

	"minesweeper/internal/alloc"
	"minesweeper/internal/jemalloc"
	"minesweeper/internal/mem"
	"minesweeper/internal/quarantine"
	"minesweeper/internal/telemetry"
)

// freeOnStopWorld is a StopTheWorld stub whose Stop() frees an allocation —
// it injects a free at the exact point of a sweep where snapshot-at-beginning
// matters most: after lock-in and the concurrent mark, inside the
// stop-the-world window. Free from here is re-entrancy safe (the sweep
// trigger is disabled in the oracle test's config, and ring publication does
// not touch the sweep lock).
type freeOnStopWorld struct {
	h     *Heap
	tid   alloc.ThreadID
	addr  uint64
	freed bool
	stops int
}

func (w *freeOnStopWorld) Stop() {
	w.stops++
	if !w.freed && w.addr != 0 {
		w.freed = true
		if err := w.h.Free(w.tid, w.addr); err != nil {
			panic(err)
		}
	}
}

func (w *freeOnStopWorld) Start() {}

// TestConcurrentMarkSnapshotOracle pins the snapshot-at-beginning contract:
// an object freed while a pipelined sweep is already past its lock-in must
// never be released by that same sweep — only by a later one whose mark pass
// covered the whole window in which its last pointers could have been
// stored.
func TestConcurrentMarkSnapshotOracle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = MostlyConcurrent
	cfg.ConcurrentMark = true
	cfg.SweepThreshold = 1e18 // manual sweeps only
	cfg.UnmappedFactor = 0
	cfg.PauseThreshold = 0
	cfg.BufferCap = 1 // publish every free immediately
	cfg.Helpers = 2
	w := &freeOnStopWorld{}
	cfg.World = w
	h, tid := newTestHeap(t, cfg)
	w.h, w.tid = h, tid

	a, err := h.Malloc(tid, 48)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Malloc(tid, 48)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(tid, a); err != nil {
		t.Fatal(err)
	}
	h.FlushThread(tid)
	w.addr = b // freed mid-sweep, inside the first STW window

	h.Sweep()
	if w.stops != 1 {
		t.Fatalf("stops = %d after first sweep, want 1", w.stops)
	}
	if h.q.Contains(a) {
		t.Error("entry locked in before the sweep was not released")
	}
	if !h.q.Contains(b) {
		t.Fatal("entry freed DURING the sweep was released by the same sweep")
	}

	h.Sweep()
	if h.q.Contains(b) {
		t.Error("entry freed during sweep 1 not released by sweep 2")
	}
	if st := h.Stats(); st.Quarantined != 0 {
		t.Errorf("Quarantined = %d after second sweep, want 0", st.Quarantined)
	}
}

// TestSelectShardsFairShareAndAge is a white-box test of the per-shard sweep
// cadence policy: a routine threshold sweep takes only shards holding at
// least their fair share of pending bytes, and a shard left behind long
// enough is picked up by the epoch-lag bound regardless of size.
func TestSelectShardsFairShareAndAge(t *testing.T) {
	jcfg := jemalloc.DefaultConfig()
	jcfg.Arenas = 4
	cfg := testConfig()
	h, err := New(mem.NewAddressSpace(), cfg, jcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Shutdown)
	if got := h.q.NumShards(); got != 4 {
		t.Fatalf("NumShards = %d, want 4 (mirroring the arena count)", got)
	}

	// Seed the pending shards directly (no sweep runs in this test):
	// shard 1 dominates, shards 0 and 3 hold small change, shard 2 is empty.
	ents := []struct {
		base, size uint64
		shard      int32
	}{
		{0x10_0000, 100, 0},
		{0x20_0000, 10_000, 1},
		{0x30_0000, 200, 3},
	}
	for _, s := range ents {
		e := h.q.NewEntry(s.base, s.size)
		e.Shard = s.shard
		h.q.Append([]*quarantine.Entry{e})
	}

	sel := h.selectShards(telemetry.TriggerThreshold)
	want := []bool{false, true, false, false}
	for i := range want {
		if sel[i] != want[i] {
			t.Fatalf("fair-share selection = %v, want %v", sel, want)
		}
	}

	// Forced (and pause/budget/shutdown) sweeps take everything.
	if got := h.selectShards(telemetry.TriggerForced); got != nil {
		t.Fatalf("forced selection = %v, want nil (all shards)", got)
	}

	// Age the world past the lag bound without taking anything: each
	// lock-in advances the epoch once, selected or not.
	none := make([]bool, 4)
	for i := 0; i < maxShardLagEpochs; i++ {
		if locked := h.q.LockInSelected(none); len(locked) != 0 {
			t.Fatalf("empty selection locked %d entries", len(locked))
		}
	}
	sel = h.selectShards(telemetry.TriggerThreshold)
	want = []bool{true, true, false, true} // every non-empty shard now lags
	for i := range want {
		if sel[i] != want[i] {
			t.Fatalf("age selection = %v, want %v", sel, want)
		}
	}
}

// TestShardStampingRoutesFrees checks the integration end of per-shard
// ownership: frees from threads bound to different arena shards land on
// different quarantine pending shards.
func TestShardStampingRoutesFrees(t *testing.T) {
	jcfg := jemalloc.DefaultConfig()
	jcfg.Arenas = 4
	cfg := testConfig() // BufferCap 1: every free publishes immediately
	h, err := New(mem.NewAddressSpace(), cfg, jcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Shutdown)
	t1 := h.RegisterThread()
	t2 := h.RegisterThread()
	for _, tid := range []alloc.ThreadID{t1, t2} {
		a, err := h.Malloc(tid, 48)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Free(tid, a); err != nil {
			t.Fatal(err)
		}
	}
	stats := h.q.PendingShardStats(nil)
	nonEmpty := 0
	for _, s := range stats {
		if s.Entries > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 2 {
		t.Errorf("frees from 2 arena-distinct threads landed on %d pending shards, want 2 (%+v)",
			nonEmpty, stats)
	}
	h.Sweep() // forced: takes all shards
	if st := h.Stats(); st.Quarantined != 0 {
		t.Errorf("Quarantined = %d after forced sweep, want 0", st.Quarantined)
	}
}

// writeOnStopWorld is a StopTheWorld stub whose Stop() stores to a page —
// the write lands after the sweep's ClearSoftDirty and concurrent mark, right
// at the head of the stop-the-world window, so the dirty re-scan must visit
// (at least) that page. It makes the re-scan accounting deterministic on any
// host, including single-CPU ones where mutators never overlap the mark.
type writeOnStopWorld struct {
	space *mem.AddressSpace
	addr  uint64
	stops int
}

func (w *writeOnStopWorld) Stop() {
	w.stops++
	if w.addr != 0 {
		if err := w.space.Store64(w.addr, 0xbeef); err != nil {
			panic(err)
		}
	}
}

func (w *writeOnStopWorld) Start() {}

// TestDirtyRescanSeesWindowWrite: a store performed inside the stop-the-world
// window entry (i.e. after the concurrent mark consumed its dirty set) is
// re-scanned by the pipelined sweep, and the window lands in the exact stw
// pause histogram.
func TestDirtyRescanSeesWindowWrite(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = MostlyConcurrent
	cfg.ConcurrentMark = true
	cfg.RescanBudgetPages = DefaultRescanBudgetPages
	reg := telemetry.NewRegistry(64)
	cfg.Telemetry = reg
	w := &writeOnStopWorld{}
	cfg.World = w
	h, tid := newTestHeap(t, cfg)
	w.space = h.space

	keep, err := h.Malloc(tid, 64)
	if err != nil {
		t.Fatal(err)
	}
	w.addr = keep // live page, dirtied at the head of every STW window
	a, _ := h.Malloc(tid, 48)
	_ = h.Free(tid, a)
	h.Sweep()

	if w.stops != 1 {
		t.Fatalf("stops = %d, want 1", w.stops)
	}
	snap := reg.Snapshot()
	if len(snap.Sweeps) != 1 {
		t.Fatalf("sweep records = %d, want 1", len(snap.Sweeps))
	}
	rec := snap.Sweeps[0]
	if rec.DirtyPages == 0 {
		t.Error("DirtyPages = 0; the STW window write was not re-scanned")
	}
	var stw *telemetry.HistogramSnapshot
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == telemetry.HistStw {
			stw = &snap.Histograms[i]
		}
	}
	if stw == nil || stw.Count != 1 {
		t.Fatalf("stw histogram = %+v, want exactly 1 sample", stw)
	}
}

// TestPrecleanRoundsConsumeDirtyPages drives finishPipelinedMark directly
// with a hand-dirtied page set: with a one-page budget, the concurrent
// pre-clean round must consume the whole set (so the re-scan inside the
// window finds nothing), and the record must attribute the pages to the
// pre-clean phase.
func TestPrecleanRoundsConsumeDirtyPages(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = MostlyConcurrent
	cfg.ConcurrentMark = true
	cfg.RescanBudgetPages = 1
	h, tid := newTestHeap(t, cfg)

	a, err := h.Malloc(tid, 3*mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	h.space.ClearSoftDirty()
	for i := uint64(0); i < 3; i++ {
		if err := h.space.Store64(a+i*mem.PageSize, 1); err != nil {
			t.Fatal(err)
		}
	}
	var rec telemetry.SweepRecord
	h.sweepMu.Lock()
	h.finishPipelinedMark(&rec, nil, nil)
	h.sweepMu.Unlock()
	if rec.PrecleanPages != 3 {
		t.Errorf("PrecleanPages = %d, want 3 (one round over the budget consumes the set)", rec.PrecleanPages)
	}
	if rec.DirtyPages != 0 {
		t.Errorf("DirtyPages = %d, want 0 (pre-clean left nothing for the window)", rec.DirtyPages)
	}
	if rec.PrecleanNanos <= 0 {
		t.Error("PrecleanNanos not recorded")
	}
	h.marks.ClearAll()
}

// TestPipelinedPrecleanUnderChurn runs the full pipelined sweep — concurrent
// mark, pre-clean rounds, dirty re-scan — against live mutators, under -race
// via make race-hot / make check. A budget of one page forces pre-clean
// rounds whenever mutators dirtied anything during the concurrent mark (on a
// multi-CPU host; the dirty accounting itself is pinned deterministically by
// the two tests above).
func TestPipelinedPrecleanUnderChurn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = MostlyConcurrent
	cfg.ConcurrentMark = true
	cfg.RescanBudgetPages = 1
	cfg.BufferCap = 8
	h, err := New(mem.NewAddressSpace(), cfg, jemalloc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Shutdown()
	done := make(chan struct{})
	sweeperDone := make(chan struct{})
	go func() {
		defer close(sweeperDone)
		for {
			select {
			case <-done:
				return
			default:
				h.Sweep()
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			churn(t, h, nil, g, 3000)
		}(g)
	}
	wg.Wait()
	close(done)
	<-sweeperDone
	h.Sweep()
	h.Sweep()
	st := h.Stats()
	if st.Quarantined != 0 {
		t.Errorf("Quarantined = %d after final sweeps, want 0", st.Quarantined)
	}
	if st.Allocated != 0 {
		t.Errorf("Allocated = %d at exit, want 0", st.Allocated)
	}
	if st.STWCycles == 0 {
		t.Error("no STW time recorded by pipelined sweeps")
	}
}
