package workload

import "runtime"

// mimalloc-bench stress tests (Figure 19). "These tests have extremely high
// allocation and deallocation rates; most of them do not do any work, other
// than allocating and freeing memory" (§5.7). Several use dedicated kernels
// (larson, sh6/8bench, xmalloc-test, cache-scratch, glibc-simple); the rest
// are generic-engine profiles with AllocPct near 100 and no work operations.

const stressOps = 400_000

// nThreads is mimalloc-bench's "N": the paper runs N = core count; we use a
// capped GOMAXPROCS so helper sweepers still have somewhere to run.
func nThreads() int {
	n := runtime.GOMAXPROCS(0) / 2
	if n < 2 {
		n = 2
	}
	if n > 4 {
		n = 4
	}
	return n
}

// MimallocBench returns the 16 stress-test profiles.
func MimallocBench() []Profile {
	n := nThreads()
	perThread := func(ops, threads int) int { return ops / threads }
	return []Profile{
		{
			Name: "alloc-test1", Suite: "mimalloc-bench", Threads: 1, Ops: stressOps,
			AllocBP: 10000, LiveTarget: 10000, Sizes: SizeDist{{16, 1000, 1}},
			Lifetime: Lifetime{Random: 1}, PointerPct: 0, InitWords: 2,
		},
		{
			Name: "alloc-testN", Suite: "mimalloc-bench", Threads: n, Ops: perThread(stressOps, n),
			AllocBP: 10000, LiveTarget: 10000, Sizes: SizeDist{{16, 1000, 1}},
			Lifetime: Lifetime{Random: 1}, PointerPct: 0, InitWords: 2,
		},
		{
			// barnes: n-body simulation, modest allocation plus real work.
			Name: "barnes", Suite: "mimalloc-bench", Threads: 1, Ops: stressOps / 2,
			AllocBP: 400, LiveTarget: 4000, Sizes: smallMix,
			Lifetime:   Lifetime{Newest: 50, Oldest: 30, Random: 20},
			PointerPct: 60, InitWords: 8, WorkTouches: 10,
		},
		{
			Name: "cache-scratch1", Suite: "mimalloc-bench", Threads: 1, Ops: stressOps,
			Kernel: "cache-scratch", Sizes: SizeDist{{1 << 16, 1 << 16, 1}},
		},
		{
			Name: "cache-scratchN", Suite: "mimalloc-bench", Threads: n, Ops: perThread(stressOps, 1),
			Kernel: "cache-scratch", Sizes: SizeDist{{1 << 16, 1 << 16, 1}},
		},
		{
			// cfrac: continued-fraction factorisation, many tiny bignums.
			Name: "cfrac", Suite: "mimalloc-bench", Threads: 1, Ops: stressOps,
			AllocBP: 7000, LiveTarget: 2000, Sizes: SizeDist{{16, 96, 1}},
			Lifetime:   Lifetime{Newest: 70, Oldest: 10, Random: 20},
			PointerPct: 30, InitWords: 4, WorkTouches: 2,
		},
		{
			// espresso: logic minimisation, small/medium churn.
			Name: "espresso", Suite: "mimalloc-bench", Threads: 1, Ops: stressOps,
			AllocBP: 5000, LiveTarget: 3000, Sizes: SizeDist{{16, 512, 3}, {512, 4096, 1}},
			Lifetime:   Lifetime{Newest: 55, Oldest: 20, Random: 25},
			PointerPct: 40, InitWords: 6, WorkTouches: 3,
		},
		{
			Name: "glibc-simple", Suite: "mimalloc-bench", Threads: 1, Ops: stressOps,
			Kernel: "glibc-simple", Sizes: SizeDist{{16, 128, 1}},
		},
		{
			// glibc-thread: the paper's worst-case memory outlier — a tiny
			// 4 MiB baseline footprint with many threads whose local
			// quarantine buffers dominate in relative terms.
			Name: "glibc-thread", Suite: "mimalloc-bench", Threads: n, Ops: perThread(stressOps, n),
			Kernel: "glibc-simple", Sizes: SizeDist{{16, 128, 1}},
		},
		{
			Name: "larsonN", Suite: "mimalloc-bench", Threads: n, Ops: perThread(stressOps, n),
			Kernel: "larson", LiveTarget: 1000, Sizes: SizeDist{{16, 1024, 1}},
		},
		{
			Name: "larsonN-sized", Suite: "mimalloc-bench", Threads: n, Ops: perThread(stressOps, n),
			Kernel: "larson", LiveTarget: 1000, Sizes: SizeDist{{16, 1024, 1}},
		},
		{
			// mstress: allocation bursts with retained lists, deallocating
			// largely in allocation order (easy on FFMalloc, §5.7).
			Name: "mstressN", Suite: "mimalloc-bench", Threads: n, Ops: perThread(stressOps, n),
			AllocBP: 9000, LiveTarget: 5000, Sizes: SizeDist{{16, 4096, 9}, {4096, 65536, 1}},
			Lifetime: Lifetime{Oldest: 80, Random: 20}, PointerPct: 30, InitWords: 4,
		},
		{
			Name: "rptestN", Suite: "mimalloc-bench", Threads: n, Ops: perThread(stressOps, n),
			AllocBP: 8500, LiveTarget: 4000, Sizes: SizeDist{{16, 8192, 1}},
			Lifetime: Lifetime{Newest: 30, Oldest: 40, Random: 30}, PointerPct: 10, InitWords: 4,
		},
		{
			Name: "sh6benchN", Suite: "mimalloc-bench", Threads: n, Ops: perThread(stressOps, n),
			Kernel: "sh-bench", LiveTarget: 2000, Sizes: SizeDist{{16, 80, 1}},
		},
		{
			Name: "sh8benchN", Suite: "mimalloc-bench", Threads: n, Ops: perThread(stressOps, n),
			Kernel: "sh-bench", LiveTarget: 4000, Sizes: SizeDist{{16, 512, 1}},
		},
		{
			Name: "xmalloc-testN", Suite: "mimalloc-bench", Threads: n, Ops: perThread(stressOps, n),
			Kernel: "xmalloc", Sizes: SizeDist{{16, 512, 1}},
		},
	}
}
