package uaf

import (
	"testing"

	"minesweeper/internal/alloc"
	"minesweeper/internal/core"
	"minesweeper/internal/ffmalloc"
	"minesweeper/internal/jemalloc"
	"minesweeper/internal/markus"
	"minesweeper/internal/mem"
	"minesweeper/internal/sim"
)

func setup(t *testing.T, build func(space *mem.AddressSpace) alloc.Allocator) (*sim.Program, *sim.Thread, *sim.Thread) {
	t.Helper()
	space := mem.NewAddressSpace()
	heap := build(space)
	t.Cleanup(heap.Shutdown)
	prog, err := sim.NewProgram(space, heap, nil)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := prog.NewThread(1)
	if err != nil {
		t.Fatal(err)
	}
	// The attacker allocates on the victim's thread (e.g. a script running
	// inside the victim process, as in the paper's browser example), so
	// thread caches do not mask reuse.
	return prog, victim, victim
}

func msBuild(space *mem.AddressSpace) alloc.Allocator {
	cfg := core.DefaultConfig()
	cfg.Mode = core.Synchronous
	cfg.SweepThreshold = 1e18
	cfg.PauseThreshold = 0
	cfg.BufferCap = 1
	h, err := core.New(space, cfg, jemalloc.DefaultConfig())
	if err != nil {
		panic(err)
	}
	return h
}

func TestExploitSucceedsOnBaseline(t *testing.T) {
	prog, victim, attacker := setup(t, func(s *mem.AddressSpace) alloc.Allocator {
		return jemalloc.New(s, jemalloc.DefaultConfig())
	})
	res, err := Run(prog, victim, attacker, DefaultScenario())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Exploited {
		t.Errorf("baseline outcome = %v, want EXPLOITED", res.Outcome)
	}
	if res.SprayHits == 0 {
		t.Error("spray never hit the victim address on baseline")
	}
	if res.ReadVtable != MaliciousVtable {
		t.Errorf("victim read %#x, want malicious vtable", res.ReadVtable)
	}
}

func TestExploitPreventedByMineSweeper(t *testing.T) {
	prog, victim, attacker := setup(t, msBuild)
	res, err := Run(prog, victim, attacker, DefaultScenario())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == Exploited {
		t.Fatalf("MineSweeper failed to prevent the exploit (hits=%d)", res.SprayHits)
	}
	if res.SprayHits != 0 {
		t.Errorf("quarantined address handed to attacker %d times", res.SprayHits)
	}
	// Zero-on-free: the benign read sees 0, not the legit vtable.
	if res.Outcome == Benign && res.ReadVtable != 0 {
		t.Errorf("benign read = %#x, want 0 (zeroed)", res.ReadVtable)
	}
}

func TestExploitPreventedByMarkUs(t *testing.T) {
	prog, victim, attacker := setup(t, func(s *mem.AddressSpace) alloc.Allocator {
		cfg := markus.DefaultConfig()
		cfg.Synchronous = true
		cfg.SweepThreshold = 1e18
		return markus.New(s, cfg, jemalloc.DefaultConfig())
	})
	res, err := Run(prog, victim, attacker, DefaultScenario())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == Exploited {
		t.Fatal("MarkUs failed to prevent the exploit")
	}
	// MarkUs does not zero: the benign read sees the ORIGINAL vtable,
	// which is still not attacker-controlled.
	if res.Outcome == Benign && res.ReadVtable == MaliciousVtable {
		t.Error("read attacker data")
	}
}

func TestExploitPreventedByFFMalloc(t *testing.T) {
	prog, victim, attacker := setup(t, func(s *mem.AddressSpace) alloc.Allocator {
		return ffmalloc.New(s)
	})
	res, err := Run(prog, victim, attacker, DefaultScenario())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == Exploited {
		t.Fatal("FFMalloc failed to prevent the exploit")
	}
	if res.SprayHits != 0 {
		t.Error("FFMalloc reused the retired address")
	}
}

func TestLargeObjectExploitFaultsCleanly(t *testing.T) {
	// Large quarantined objects are unmapped: the dangling dispatch
	// faults — the paper's clean-termination path.
	prog, victim, attacker := setup(t, msBuild)
	sc := Scenario{ObjectSize: 1 << 20, SprayCount: 8, Sweeps: 0}
	res, err := Run(prog, victim, attacker, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Faulted {
		t.Errorf("outcome = %v, want clean fault", res.Outcome)
	}
}

func TestExploitWindowClosesOnlyAfterPointerGone(t *testing.T) {
	// Once the program erases the dangling pointer and a sweep runs, the
	// address may be legally reused — and that is safe, because no
	// dangling pointer remains.
	prog, victim, attacker := setup(t, msBuild)
	x, _ := victim.Malloc(48)
	_ = victim.Store(prog.GlobalSlot(0), x)
	_ = victim.Free(x)
	prog.Heap().(Sweeper).Sweep()
	// Still pinned.
	reused := false
	for i := 0; i < 200; i++ {
		a, _ := attacker.Malloc(48)
		if a == x {
			reused = true
		}
		_ = attacker.Free(a)
	}
	if reused {
		t.Fatal("address reused while dangling pointer live")
	}
	// Erase pointer, sweep twice (entries requeued for the next epoch).
	_ = victim.Store(prog.GlobalSlot(0), 0)
	prog.Heap().(Sweeper).Sweep()
	prog.Heap().(Sweeper).Sweep()
	for i := 0; i < 500 && !reused; i++ {
		a, _ := attacker.Malloc(48)
		if a == x {
			reused = true
		}
	}
	if !reused {
		t.Error("address never reused even after pointer removed (leak)")
	}
}

func TestDoubleFreeProbe(t *testing.T) {
	// MineSweeper absorbs double frees without corruption.
	_, victim, _ := setup(t, msBuild)
	absorbed, corrupted, err := DoubleFreeProbe(victim, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !absorbed {
		t.Error("MineSweeper did not absorb the double free")
	}
	if corrupted {
		t.Error("allocator state corrupted by double free")
	}
}

func TestDoubleFreeProbeBaseline(t *testing.T) {
	// The jemalloc substrate detects this case (tcache check); real
	// allocators may corrupt instead. Either way it must not be absorbed
	// silently as safe AND corrupt state.
	_, victim, _ := setup(t, func(s *mem.AddressSpace) alloc.Allocator {
		return jemalloc.New(s, jemalloc.DefaultConfig())
	})
	_, corrupted, err := DoubleFreeProbe(victim, 64)
	if err != nil {
		t.Fatal(err)
	}
	if corrupted {
		t.Error("baseline corrupted (probe expects detection in this substrate)")
	}
}
