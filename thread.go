package minesweeper

import "minesweeper/internal/sim"

// Thread is one mutator thread of a Process. A Thread's methods are not safe
// for concurrent use; each goroutine owns its Thread, as an OS thread owns
// its stack.
type Thread struct {
	th   *sim.Thread
	proc *Process
}

// Malloc allocates size bytes and returns the base address. Contents are
// unspecified, as with C malloc.
func (t *Thread) Malloc(size uint64) (Addr, error) { return t.th.Malloc(size) }

// Free frees the allocation based at addr. Under protecting schemes the
// memory is quarantined (and zeroed) rather than made reusable.
func (t *Thread) Free(addr Addr) error { return t.th.Free(addr) }

// Store writes the 8-byte word at addr. Storing a heap address creates a
// real pointer that sweeps will observe.
func (t *Thread) Store(addr Addr, val uint64) error { return t.th.Store(addr, val) }

// Load reads the 8-byte word at addr. Reads of quarantined memory return
// zero (zero-on-free); reads of unmapped or released memory fault.
func (t *Thread) Load(addr Addr) (uint64, error) { return t.th.Load(addr) }

// StackSlot returns the address of 8-byte stack slot i. Stack slots are
// sweep roots.
func (t *Thread) StackSlot(i int) Addr { return t.th.StackSlot(i) }

// StackSlots returns the number of stack slots.
func (t *Thread) StackSlots() int { return t.th.StackSlots() }

// Close unregisters the thread.
func (t *Thread) Close() { t.th.Close() }

// Store8 writes one byte at addr (read-modify-write of the containing word).
func (t *Thread) Store8(addr Addr, v byte) error { return t.th.Store8(addr, v) }

// Load8 reads one byte at addr.
func (t *Thread) Load8(addr Addr) (byte, error) { return t.th.Load8(addr) }

// StoreBytes writes p starting at addr — string or struct payloads.
func (t *Thread) StoreBytes(addr Addr, p []byte) error { return t.th.StoreBytes(addr, p) }

// LoadBytes reads n bytes starting at addr.
func (t *Thread) LoadBytes(addr Addr, n uint64) ([]byte, error) { return t.th.LoadBytes(addr, n) }
