package telemetry

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
)

// TriggerReason records why a sweep ran (§3.2, §4.2, §5.7).
type TriggerReason uint8

// Sweep trigger reasons.
const (
	// TriggerForced is an explicit Sweep() call (tests, shutdown).
	TriggerForced TriggerReason = iota
	// TriggerThreshold is the standard quarantine-fraction trigger (§3.2).
	TriggerThreshold
	// TriggerUnmapped is the unmapped-bytes-vs-RSS trigger (§4.2).
	TriggerUnmapped
	// TriggerPause is a sweep requested by a paused allocating thread
	// (§5.7).
	TriggerPause
	// TriggerBudget is a sweep requested because resident memory crossed
	// the configured budget (control plane).
	TriggerBudget
)

// String returns the reason's name.
func (t TriggerReason) String() string {
	switch t {
	case TriggerForced:
		return "forced"
	case TriggerThreshold:
		return "threshold"
	case TriggerUnmapped:
		return "unmapped"
	case TriggerPause:
		return "pause"
	case TriggerBudget:
		return "budget"
	default:
		return fmt.Sprintf("TriggerReason(%d)", int(t))
	}
}

// MarshalJSON renders the reason as its name, so exported snapshots are
// self-describing.
func (t TriggerReason) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.String())
}

// UnmarshalJSON accepts either the name or the numeric value.
func (t *TriggerReason) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		for _, r := range []TriggerReason{TriggerForced, TriggerThreshold, TriggerUnmapped, TriggerPause, TriggerBudget} {
			if r.String() == s {
				*t = r
				return nil
			}
		}
		return fmt.Errorf("telemetry: unknown trigger reason %q", s)
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*t = TriggerReason(n)
	return nil
}

// SweepRecord is one structured per-sweep record: what triggered the sweep,
// how long each phase took, and what the sweep accomplished. One is emitted
// per completed sweep and kept in the registry's ring buffer.
type SweepRecord struct {
	// Seq is the sweep's ordinal (1 = first sweep observed).
	Seq uint64 `json:"seq"`
	// Trigger is why the sweep ran.
	Trigger TriggerReason `json:"trigger"`

	// Per-phase durations in nanoseconds (§3.1, §4.3, §4.4, §4.5). Phases
	// that did not run (e.g. DirtyNanos outside mostly-concurrent mode)
	// are zero.
	MarkNanos    int64 `json:"mark_ns"`
	DirtyNanos   int64 `json:"dirty_ns"`   // soft-dirty STW re-scan
	RecycleNanos int64 `json:"recycle_ns"` // filter + FreeBatch release
	PurgeNanos   int64 `json:"purge_ns"`
	TotalNanos   int64 `json:"total_ns"`
	// PrecleanNanos is time spent in concurrent pre-clean rounds (test-and-
	// clear scans of soft-dirty pages run while mutators keep going) between
	// the concurrent mark and the STW re-scan; zero when marking is not
	// concurrent or the dirty set was already under the rescan budget.
	PrecleanNanos int64 `json:"preclean_ns,omitempty"`

	// Marking-phase work figures.
	PagesScanned uint64 `json:"pages_scanned"`
	BytesScanned uint64 `json:"bytes_scanned"`
	// BytesZeroSkipped is bytes the scan loop skipped via the 8-wide
	// zero-group compare — the zero-on-free dividend.
	BytesZeroSkipped uint64 `json:"bytes_zero_skipped"`
	// PagesKnownZero is pages the mark dismissed via the known-zero page
	// map without touching their memory at all — the step past
	// BytesZeroSkipped, which still had to read the words to see zeros.
	// Not counted in PagesScanned/BytesScanned.
	PagesKnownZero uint64 `json:"pages_known_zero,omitempty"`
	// DirtyPages is the number of soft-dirty pages the STW re-scan visited —
	// the figure that makes the pause window scale with mutator write rate
	// rather than heap size. Zero outside mostly-concurrent mode.
	DirtyPages uint64 `json:"dirty_pages,omitempty"`
	// PrecleanPages is the total pages visited by concurrent pre-clean
	// rounds before the STW re-scan.
	PrecleanPages uint64 `json:"preclean_pages,omitempty"`

	// Quarantine outcome figures.
	EntriesLocked uint64 `json:"entries_locked"`
	Released      uint64 `json:"released"`
	Retained      uint64 `json:"retained"` // failed frees kept in quarantine
	// Workers is the sweep worker count (main + helpers) that marked; the
	// helper-utilisation figure of §4.4.
	Workers int `json:"workers"`
	// ShardsSwept is how many arena shards this sweep locked in (per-shard
	// sweep ownership: threshold-triggered sweeps lock in only the shards
	// that are due). Zero when the quarantine is unsharded.
	ShardsSwept int `json:"shards_swept,omitempty"`
}

// DefaultRingCap is the default number of sweep records retained.
const DefaultRingCap = 256

// SweepRing is a lock-free ring buffer of the last N sweep records. Writers
// claim a slot with one atomic add and publish an immutable record with one
// atomic pointer store; readers never block writers.
type SweepRing struct {
	slots []atomic.Pointer[SweepRecord]
	next  atomic.Uint64
}

// NewSweepRing returns a ring retaining the last capN records, rounded up to
// a power of two (DefaultRingCap if capN <= 0).
func NewSweepRing(capN int) *SweepRing {
	if capN <= 0 {
		capN = DefaultRingCap
	}
	n := 1
	for n < capN {
		n <<= 1
	}
	return &SweepRing{slots: make([]atomic.Pointer[SweepRecord], n)}
}

// Push appends rec, overwriting the oldest record once the ring is full, and
// returns the record's sequence number (starting at 1). The stored copy is
// private to the ring, so callers may reuse rec.
func (r *SweepRing) Push(rec SweepRecord) uint64 {
	seq := r.next.Add(1)
	rec.Seq = seq
	c := rec
	r.slots[(seq-1)&uint64(len(r.slots)-1)].Store(&c)
	return seq
}

// Len returns the number of records currently retained.
func (r *SweepRing) Len() int {
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Total returns the number of records ever pushed.
func (r *SweepRing) Total() uint64 { return r.next.Load() }

// Snapshot returns the retained records, oldest first. Records pushed while
// snapshotting may be included or not; each returned record is internally
// consistent (publication is a single pointer store).
func (r *SweepRing) Snapshot() []SweepRecord {
	hi := r.next.Load()
	lo := uint64(0)
	if hi > uint64(len(r.slots)) {
		lo = hi - uint64(len(r.slots))
	}
	out := make([]SweepRecord, 0, hi-lo)
	for s := lo; s < hi; s++ {
		p := r.slots[s&uint64(len(r.slots)-1)].Load()
		if p == nil {
			continue // claimed but not yet published
		}
		// A slot lapped by a concurrent writer holds a newer record;
		// keep only the record this slot held at sequence s+1 so the
		// result stays ordered oldest-first.
		if p.Seq == s+1 {
			out = append(out, *p)
		}
	}
	return out
}
