package telemetry

import (
	"sync"
	"testing"
)

// The concurrency stress tests mirror core_concurrent_test.go's structure:
// many writer goroutines hammer the structure while readers snapshot, run
// under -race via make check / make race-hot.

func TestConcurrentHistogram(t *testing.T) {
	h := NewHistogram("lat", "ns", DefaultHistShards)
	const writers, per = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() { // concurrent reader: snapshots must never tear or race
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.Snapshot()
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.RecordShard(w, uint64(i%4096))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	s := h.Snapshot()
	if s.Count != writers*per {
		t.Fatalf("Count = %d, want %d", s.Count, writers*per)
	}
}

// ringStamp marks complete records in TestConcurrentSweepRing.
const ringStamp = 0xC0FFEE

func TestConcurrentSweepRing(t *testing.T) {
	r := NewSweepRing(16)
	const writers, per = 4, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var rdWg sync.WaitGroup
	rdWg.Add(1)
	go func() {
		defer rdWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot()
			for i := 1; i < len(snap); i++ {
				if snap[i].Seq <= snap[i-1].Seq {
					t.Errorf("snapshot out of order: %d then %d", snap[i-1].Seq, snap[i].Seq)
					return
				}
				// Publication integrity: every writer stamps the same
				// marker, so a record missing it was read half-built.
				if snap[i].PagesScanned != ringStamp {
					t.Errorf("torn record at seq %d: stamp %d", snap[i].Seq, snap[i].PagesScanned)
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = r.Push(SweepRecord{PagesScanned: ringStamp})
			}
		}()
	}
	wg.Wait()
	close(stop)
	rdWg.Wait()
	if r.Total() != writers*per {
		t.Fatalf("Total = %d, want %d", r.Total(), writers*per)
	}
}

func TestConcurrentRegistrySnapshot(t *testing.T) {
	reg := NewRegistry(32)
	reg.RegisterGauge("g", func() uint64 { return 1 })
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				reg.Malloc.RecordShard(w, uint64(i))
				reg.Free.RecordShard(w, uint64(i))
				if i%100 == 0 {
					reg.ObserveSweep(SweepRecord{Trigger: TriggerThreshold, TotalNanos: int64(i)})
				}
			}
		}(w)
	}
	var snaps int
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = reg.Snapshot()
				snaps++
			}
		}
	}()
	wg.Wait()
	close(stop)
	s := reg.Snapshot()
	if s.SweepsTotal != 4*30 {
		t.Fatalf("SweepsTotal = %d, want 120", s.SweepsTotal)
	}
	for _, h := range s.Histograms {
		if (h.Name == HistMalloc || h.Name == HistFree) && h.Count != 4*3000 {
			t.Fatalf("%s Count = %d, want 12000", h.Name, h.Count)
		}
	}
}
