package control

// Policy decides the next inter-sweep knob values from one observation.
// Implementations must be pure functions of their arguments (no hidden
// state): the plane serialises calls under the core sweep lock, records the
// before/after pair in the decision ring, and clamps the result to the
// rails, so a policy only chooses a direction and a magnitude.
type Policy interface {
	// Name identifies the policy in decision records and reports.
	Name() string
	// Decide returns the knob values for the next inter-sweep interval.
	// cur is what is in effect now, base the configured (relaxed) values,
	// rails the envelope the result will be clamped to.
	Decide(level Level, in Inputs, cur, base Knobs, rails Rails) Knobs
}

// Static freezes the configured knobs: the governed heap behaves
// bit-for-bit like an ungoverned one. It is both the compatibility default
// and the control group for governor experiments.
type Static struct{}

// Name implements Policy.
func (Static) Name() string { return "static" }

// Decide implements Policy: always the configured base.
func (Static) Decide(_ Level, _ Inputs, _, base Knobs, _ Rails) Knobs { return base }

// AIMD is the default governor: additive increase, multiplicative decrease,
// the congestion-control shape. Under pressure it tightens multiplicatively
// — halving the sweep-trigger fraction reacts within one sweep cycle no
// matter how far the knob has drifted — and when calm it relaxes additively
// back toward the configured baseline, so recovery is gradual and cannot
// overshoot into a memory spike. "Tighter" means: sweep sooner (lower
// SweepThreshold), release unmapped quarantine sooner (lower
// UnmappedFactor), brake allocation earlier (lower PauseThreshold), and
// sweep faster (more Helpers).
type AIMD struct {
	// TightenCritical and TightenElevated are the multiplicative factors
	// applied to the threshold-like knobs per pressured decision.
	TightenCritical float64
	TightenElevated float64
	// RelaxFrac is the additive step back toward base per calm decision,
	// as a fraction of the base value.
	RelaxFrac float64
	// HelpersStepCritical and HelpersStepElevated are the worker-count
	// increments per pressured decision.
	HelpersStepCritical int
	HelpersStepElevated int
}

// NewAIMD returns the default-tuned AIMD governor: halve under Critical,
// three-quarters under Elevated, relax by an eighth of base per calm sweep.
func NewAIMD() *AIMD {
	return &AIMD{
		TightenCritical:     0.5,
		TightenElevated:     0.75,
		RelaxFrac:           0.125,
		HelpersStepCritical: 2,
		HelpersStepElevated: 1,
	}
}

// Name implements Policy.
func (*AIMD) Name() string { return "aimd" }

// Decide implements Policy.
func (a *AIMD) Decide(level Level, _ Inputs, cur, base Knobs, rails Rails) Knobs {
	next := cur
	switch level {
	case Critical:
		next = tighten(cur, a.TightenCritical)
		next.Helpers = cur.Helpers + a.HelpersStepCritical
		// Hard pressure: stop batching zeroing behind the ring — scrub
		// freed memory immediately so every drain (including the ones
		// inside sweep quiesces) stays short.
		next.ZeroDeferred = false
	case Elevated:
		next = tighten(cur, a.TightenElevated)
		next.Helpers = cur.Helpers + a.HelpersStepElevated
	default: // Nominal: additive recovery toward base.
		next.SweepThreshold = relax(cur.SweepThreshold, base.SweepThreshold, a.RelaxFrac)
		next.UnmappedFactor = relax(cur.UnmappedFactor, base.UnmappedFactor, a.RelaxFrac)
		next.PauseThreshold = relax(cur.PauseThreshold, base.PauseThreshold, a.RelaxFrac)
		next.RescanBudgetPages = relaxInt(cur.RescanBudgetPages, base.RescanBudgetPages, a.RelaxFrac)
		next.ZeroDeferred = base.ZeroDeferred
		if cur.Helpers > base.Helpers {
			next.Helpers = cur.Helpers - 1
		}
	}
	return rails.Clamp(next)
}

// tighten scales the threshold-like knobs down by factor (Helpers is set by
// the caller). The rescan budget tightens too: under pressure sweeps come
// faster, so each one should spend more of its work concurrently (pre-clean
// down to a smaller dirty set) rather than inside the STW window.
func tighten(k Knobs, factor float64) Knobs {
	k.SweepThreshold *= factor
	k.UnmappedFactor *= factor
	k.PauseThreshold *= factor
	if k.RescanBudgetPages > 0 {
		k.RescanBudgetPages = int(float64(k.RescanBudgetPages) * factor)
	}
	return k
}

// relax steps cur additively toward base by frac*base without overshooting.
func relax(cur, base, frac float64) float64 {
	if cur >= base {
		return base
	}
	next := cur + base*frac
	if next > base {
		return base
	}
	return next
}

// relaxInt is relax for integer knobs, stepping by at least one.
func relaxInt(cur, base int, frac float64) int {
	if cur >= base {
		return base
	}
	step := int(float64(base) * frac)
	if step < 1 {
		step = 1
	}
	next := cur + step
	if next > base {
		return base
	}
	return next
}
