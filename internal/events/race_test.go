package events

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentEmitVsDump is the satellite-4 stress: emitters hammer their
// rings while flight dumps are captured concurrently. Every event a dump
// observes must be untorn (payload consistent with its seq) and every ring's
// events strictly seq-monotonic — the seqlock contract.
func TestConcurrentEmitVsDump(t *testing.T) {
	rec := NewRecorder(256, time.Minute)
	const emitters = 4
	rings := make([]*Ring, emitters)
	for i := range rings {
		rings[i] = rec.Ring("t")
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i, rg := range rings {
		wg.Add(1)
		go func(id uint64, rg *Ring) {
			defer wg.Done()
			for n := uint64(1); !stop.Load(); n++ {
				// Payload encodes (ring id, emission number) so a reader can
				// verify the slot was not torn across a rewrite.
				rg.Emit(KindAlloc, id, n)
			}
		}(uint64(i), rg)
	}

	deadline := time.Now().Add(200 * time.Millisecond)
	captures := 0
	for time.Now().Before(deadline) {
		d := rec.Capture(TripManual)
		captures++
		for ri, tr := range d.Threads {
			var prevSeq uint64
			for _, e := range tr.Events {
				if e.Seq <= prevSeq {
					t.Fatalf("ring %d: seq %d after %d (not monotonic)", ri, e.Seq, prevSeq)
				}
				prevSeq = e.Seq
				if e.Kind != KindAlloc || e.Arg0 != uint64(ri) {
					t.Fatalf("ring %d: torn event %+v", ri, e)
				}
			}
		}
		// A dump taken mid-storm must still serialise and round-trip.
		if captures%16 == 1 {
			var buf bytes.Buffer
			if _, err := d.WriteTo(&buf); err != nil {
				t.Fatalf("WriteTo under load: %v", err)
			}
			if _, _, err := ReadDump(&buf); err != nil {
				t.Fatalf("ReadDump under load: %v", err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if captures == 0 {
		t.Fatal("no captures ran")
	}
}

// TestConcurrentTrip checks the Trip rate-limit CAS under contention: many
// goroutines tripping at once inside one window produce exactly one dump.
func TestConcurrentTrip(t *testing.T) {
	rec := NewRecorder(16, time.Minute)
	rec.Ring("t").Emit(KindDrain, 1, 1)
	var dumps atomic.Uint64
	rec.SetSink(func(*Dump) { dumps.Add(1) })

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec.Trip(TripGovernorCritical)
		}()
	}
	wg.Wait()
	if got := dumps.Load(); got != 1 {
		t.Fatalf("%d dumps from concurrent trips, want 1", got)
	}
}

// TestForeignWriterDisjointSlots exercises the documented multi-writer
// tolerance: two goroutines emitting on the SAME ring (owner + the sweeper's
// quiesce-time drain emit) must never lose or tear events that survive in
// the ring.
func TestForeignWriterDisjointSlots(t *testing.T) {
	rec := NewRecorder(1024, time.Minute)
	rg := rec.Ring("shared")
	const perWriter = 400
	var wg sync.WaitGroup
	for w := uint64(0); w < 2; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for n := uint64(1); n <= perWriter; n++ {
				rg.Emit(KindDrain, id, n)
			}
		}(w)
	}
	wg.Wait()
	ev := rg.Snapshot(nil, 0)
	if len(ev) != 2*perWriter {
		t.Fatalf("got %d events, want %d", len(ev), 2*perWriter)
	}
	seen := [2]map[uint64]bool{{}, {}}
	for _, e := range ev {
		if e.Arg0 > 1 || e.Arg1 == 0 || e.Arg1 > perWriter || seen[e.Arg0][e.Arg1] {
			t.Fatalf("torn or duplicated event %+v", e)
		}
		seen[e.Arg0][e.Arg1] = true
	}
}
