package core

import (
	"testing"

	"minesweeper/internal/alloc"
	"minesweeper/internal/jemalloc"
	"minesweeper/internal/mem"
)

// benchSweepSetup builds a synchronous heap and scratch for 50k small
// allocations (2 KiB each, so the marking pass covers a realistically
// page-heavy quarantine); the timed region of each variant below is exactly
// one explicit Sweep over that backlog.
func benchSweepSetup(b *testing.B, cfg Config) (*Heap, alloc.ThreadID, []uint64) {
	b.Helper()
	h, err := New(mem.NewAddressSpace(), cfg, jemalloc.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(h.Shutdown)
	tid := h.RegisterThread()
	return h, tid, make([]uint64, 50_000)
}

func benchSweepConfig() Config {
	cfg := DefaultConfig()
	cfg.Mode = Synchronous
	cfg.Purging = false
	cfg.Unmapping = false
	cfg.PauseThreshold = 0
	cfg.SweepThreshold = 1e18 // only explicit Sweep calls run
	return cfg
}

func runSweepRelease(b *testing.B, h *Heap, tid alloc.ThreadID, addrs []uint64) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := range addrs {
			a, err := h.Malloc(tid, 2048)
			if err != nil {
				b.Fatal(err)
			}
			addrs[j] = a
		}
		for _, a := range addrs {
			if err := h.Free(tid, a); err != nil {
				b.Fatal(err)
			}
		}
		h.FlushThread(tid)
		b.StartTimer()
		h.Sweep()
	}
}

// BenchmarkSweepRelease measures a full synchronous sweep over 50k freed
// 2 KiB allocations: the marking pass plus the filterAndRecycle release.
// With zero-on-free feeding the known-zero page map, the mark dismisses
// whole quarantined pages without touching their memory, so this is the
// headline number for the map. (Before the known-zero map this benchmark
// measured only the release phase with marking disabled; that ablation
// lives on as BenchmarkSweepReleaseNoMark.)
func BenchmarkSweepRelease(b *testing.B) {
	h, tid, addrs := benchSweepSetup(b, benchSweepConfig())
	runSweepRelease(b, h, tid, addrs)
}

// BenchmarkSweepReleaseNoKnownZero is BenchmarkSweepRelease with the
// known-zero page skip disabled: the mark still runs its 8-wide zero-group
// word loop over every resident page. The same-window ratio against
// BenchmarkSweepRelease is the known-zero map's dividend (the acceptance
// bar is >= 1.2x; see EXPERIMENTS.md).
func BenchmarkSweepReleaseNoKnownZero(b *testing.B) {
	h, tid, addrs := benchSweepSetup(b, benchSweepConfig())
	h.sw.SetKnownZeroSkip(false)
	runSweepRelease(b, h, tid, addrs)
}

// BenchmarkSweepReleaseNoMark is the pre-known-zero-map definition of this
// benchmark: marking, zeroing and purging disabled, so the timed region is
// exactly the filterAndRecycle path — quarantine release accounting plus
// the substrate free of each entry.
func BenchmarkSweepReleaseNoMark(b *testing.B) {
	cfg := benchSweepConfig()
	cfg.Sweeping = false
	cfg.Zeroing = false
	h, tid, addrs := benchSweepSetup(b, cfg)
	runSweepRelease(b, h, tid, addrs)
}
