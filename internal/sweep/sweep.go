// Package sweep implements MineSweeper's linear memory sweep (§3.1, §4.4):
// a parallel scan of all program memory — heap, stacks and globals — that
// interprets every aligned word as a potential pointer and marks the target
// granule in the shadow map. Unlike a garbage collector's transitive marking,
// the scan is a single linear pass; zero-on-free (performed by the core
// layer) is what makes that sufficient.
//
// Work is divided among a main sweeper and a configurable number of helpers
// (6 by default, as in the paper), each taking fixed-size page chunks from a
// striped work queue: every worker drains its own contiguous range of chunks
// and steals from the others' ranges once its own runs dry, so large regions
// do not serialise all workers on one shared ticket counter. The chunk queue
// and stripe descriptors are reused across sweeps.
//
// The per-chunk hot loop is deliberately lean: mem.Region.ScanPageWords
// yields each page's backing as a plain []uint64 under the page lock (one
// lock and one backing lookup per page instead of a WordAt pointer chase per
// word), zero words — the common case on zero-on-free heaps — are skipped
// with a single compare, and marks are buffered through a per-worker
// shadow.Marker that batches clustered marks into one atomic OR.
//
// Only resident, readable pages are scanned, so pages that were purged or
// unmapped in quarantine are skipped (§4.2, §4.5).
//
// Two scan entry points support the two operation modes: MarkAll for the
// concurrent full pass, and MarkDirty for the mostly-concurrent mode's brief
// stop-the-world re-scan of pages written during the full pass (tracked via
// the simulated soft-dirty page bits, standing in for Linux's soft-dirty
// PTEs, §4.3).
package sweep

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"minesweeper/internal/mem"
	"minesweeper/internal/shadow"
)

// DefaultHelpers is the paper's default helper-thread count.
const DefaultHelpers = 6

// chunkPages is the unit of work distribution: 256 pages = 1 MiB per grab.
const chunkPages = 256

// StopTheWorld pauses and resumes all mutator threads. The mostly-concurrent
// mode uses it around the dirty re-scan; the fully concurrent mode never
// stops the world.
type StopTheWorld interface {
	// Stop returns once every mutator thread is parked at a safepoint.
	Stop()
	// Start resumes all mutator threads.
	Start()
}

// Sweeper scans program memory and marks potential pointer targets.
type Sweeper struct {
	space *mem.AddressSpace
	marks *shadow.Bitmap
	// helpers is atomic so the control plane can steer the worker count
	// between passes (SetHelpers); each pass reads it once at start.
	helpers atomic.Int32

	// runMu serialises passes so the work queue and stripe descriptors can
	// be reused across sweeps without reallocation. Sweeps are already
	// serialised by the core layer's sweep lock; this keeps the Sweeper
	// safe on its own.
	runMu     sync.Mutex
	chunks    []chunk       // reusable work queue, valid only during a pass
	stripes   []stripe      // reusable per-worker ticket ranges
	dirtyRegs []*mem.Region // reusable dirtied-region snapshot (dirty passes)

	// kzSkipOff disables the known-zero page skip (ablation and A/B
	// benchmarks); the zero value — skip enabled — is the production
	// configuration.
	kzSkipOff atomic.Bool

	bytesSwept  atomic.Uint64
	pagesSwept  atomic.Uint64
	zeroSkipped atomic.Uint64 // bytes skipped by the zero-group compare
	kzSkipped   atomic.Uint64 // pages skipped via the known-zero map
	busyNanos   atomic.Int64  // summed worker busy time (CPU usage meter)
}

// PassStats describes one marking pass: how much was scanned, how much of it
// the zero-skip compare short-circuited, and the parallelism that did the
// work. The telemetry layer folds one into each per-sweep record.
type PassStats struct {
	// BytesScanned and PagesScanned cover resident pages examined.
	BytesScanned uint64
	PagesScanned uint64
	// ZeroSkippedBytes is bytes dismissed eight words at a time by the
	// zero-group compare — the zero-on-free dividend (§4.1). It counts only
	// words actually read; pages the known-zero map skipped never generate
	// memory traffic and are counted in KnownZeroPages instead.
	ZeroSkippedBytes uint64
	// KnownZeroPages is pages dismissed by the known-zero map without a
	// single word load — zero-by-construction coverage the pass proved for
	// free. Not included in PagesScanned/BytesScanned, which measure real
	// memory traffic.
	KnownZeroPages uint64
	// Workers is the number of workers that ran the pass.
	Workers int
	// ElapsedNanos is the pass's wall time.
	ElapsedNanos int64
}

// New returns a Sweeper marking into marks with the given helper count
// (negative means DefaultHelpers). The effective count is clamped to the
// host's available parallelism: extra helpers on an oversubscribed host only
// time-slice against each other (the paper sized its 6 helpers to an 8-way
// machine).
func New(space *mem.AddressSpace, marks *shadow.Bitmap, helpers int) *Sweeper {
	if helpers < 0 {
		helpers = DefaultHelpers
	}
	s := &Sweeper{space: space, marks: marks}
	s.helpers.Store(int32(clampHelpers(helpers)))
	return s
}

// clampHelpers bounds a requested helper count to the host's available
// parallelism: extra helpers on an oversubscribed host only time-slice
// against each other (the paper sized its 6 helpers to an 8-way machine).
func clampHelpers(helpers int) int {
	if max := runtime.GOMAXPROCS(0) - 1; helpers > max {
		helpers = max
	}
	if helpers < 0 {
		helpers = 0
	}
	return helpers
}

// SetHelpers changes the helper count for subsequent passes, clamped the same
// way as New. Safe to call concurrently with a running pass (that pass keeps
// the count it started with).
func (s *Sweeper) SetHelpers(helpers int) {
	s.helpers.Store(int32(clampHelpers(helpers)))
}

// Workers returns the effective sweep worker count (main + helpers).
func (s *Sweeper) Workers() int { return int(s.helpers.Load()) + 1 }

// chunk is one unit of scanning work.
type chunk struct {
	r         *mem.Region
	pageFirst int
	pageAfter int
	dirtyOnly bool
	// clearDirty makes a dirtyOnly chunk consume the dirty bit as it scans
	// (TestClearPageDirty) — the concurrent pre-clean rounds of the pipelined
	// sweep. Pages re-dirtied after the test-and-clear are caught by the
	// final STW MarkDirty pass.
	clearDirty bool
}

// stripe is one worker's contiguous range of the chunk queue. The owner and
// any thieves claim chunks through the same atomic ticket, so stealing needs
// no extra synchronisation; the padding keeps each ticket on its own cache
// line so workers do not false-share their counters.
type stripe struct {
	next atomic.Int64
	end  int64
	_    [48]byte
}

// collectChunks slices sweepable regions into page chunks, reusing the
// queue's backing array from the previous pass. Full passes cover every
// region. Dirty-only passes iterate just the space's dirtied-region list —
// never the full region set, whose sorted snapshot can reach tens of
// thousands of extent-granular entries and is rebuilt on demand, neither of
// which belongs inside a stop-the-world window — and consult each region's
// dirty summary bitmap to emit chunks only for page ranges with at least one
// (possibly stale) summary bit set. This is what keeps the stop-the-world
// re-scan's cost proportional to the mutators' write rate rather than heap
// size. Caller holds runMu.
func (s *Sweeper) collectChunks(dirtyOnly, clearDirty bool) []chunk {
	chunks := s.chunks[:0]
	var regs []*mem.Region
	if dirtyOnly {
		s.dirtyRegs = s.space.DirtyRegions(s.dirtyRegs)
		regs = s.dirtyRegs
	} else {
		regs = s.space.Regions()
	}
	for _, r := range regs {
		switch r.Kind() {
		case mem.KindHeap, mem.KindStack, mem.KindGlobals:
		default:
			continue
		}
		n := r.PageCount()
		for p := 0; p < n; p += chunkPages {
			end := p + chunkPages
			if end > n {
				end = n
			}
			if dirtyOnly && !anyDirtySummary(r, p, end) {
				continue
			}
			chunks = append(chunks, chunk{r: r, pageFirst: p, pageAfter: end, dirtyOnly: dirtyOnly, clearDirty: clearDirty})
		}
	}
	s.chunks = chunks
	return chunks
}

// anyDirtySummary reports whether any summary word covering pages
// [first, after) of r is non-zero. Chunks are chunkPages-aligned and
// chunkPages is a multiple of 64, so summary words never straddle chunks.
func anyDirtySummary(r *mem.Region, first, after int) bool {
	for w, wEnd := first>>6, (after+63)>>6; w < wEnd; w++ {
		if r.DirtySummaryWord(w) != 0 {
			return true
		}
	}
	return false
}

// CountDirtyPages returns the number of soft-dirty pages across the address
// space, from the exact transition-maintained counter. The pipelined sweep
// uses it to decide whether another concurrent pre-clean round is worthwhile
// and — with the world stopped, where the frozen value is exact — whether the
// re-scan fits the pause budget or the stop should be aborted and retried.
// O(1), so both checks are free even inside a pause.
func (s *Sweeper) CountDirtyPages() uint64 { return s.space.DirtyPageCount() }

// scanPageWords is the sweep's innermost loop: every word of one page,
// already fetched as a plain slice under the page lock. Words are loaded
// atomically (mutator stores are per-word atomic and take no lock), eight at
// a time so a single OR-combined compare skips zero groups — on a
// zero-on-free heap most of the heap is zeros, and purged or freshly
// committed pages are entirely so. The heap filter is one subtract and one
// unsigned compare per surviving word.
func scanPageWords(words []uint64, mk *shadow.Marker) (zeroWords int) {
	const span = mem.HeapLimit - mem.HeapBase
	i := 0
	for ; i+8 <= len(words); i += 8 {
		v0 := atomic.LoadUint64(&words[i])
		v1 := atomic.LoadUint64(&words[i+1])
		v2 := atomic.LoadUint64(&words[i+2])
		v3 := atomic.LoadUint64(&words[i+3])
		v4 := atomic.LoadUint64(&words[i+4])
		v5 := atomic.LoadUint64(&words[i+5])
		v6 := atomic.LoadUint64(&words[i+6])
		v7 := atomic.LoadUint64(&words[i+7])
		if v0|v1|v2|v3|v4|v5|v6|v7 == 0 {
			zeroWords += 8
			continue
		}
		if v0-mem.HeapBase < span {
			mk.Mark(v0)
		}
		if v1-mem.HeapBase < span {
			mk.Mark(v1)
		}
		if v2-mem.HeapBase < span {
			mk.Mark(v2)
		}
		if v3-mem.HeapBase < span {
			mk.Mark(v3)
		}
		if v4-mem.HeapBase < span {
			mk.Mark(v4)
		}
		if v5-mem.HeapBase < span {
			mk.Mark(v5)
		}
		if v6-mem.HeapBase < span {
			mk.Mark(v6)
		}
		if v7-mem.HeapBase < span {
			mk.Mark(v7)
		}
	}
	for ; i < len(words); i++ {
		v := atomic.LoadUint64(&words[i])
		if v == 0 {
			zeroWords++
			continue
		}
		if v-mem.HeapBase < span {
			mk.Mark(v)
		}
	}
	return zeroWords
}

// scanChunk marks pointer targets in one chunk through the worker's marker,
// returning bytes scanned, pages scanned, pages skipped via the known-zero
// map, and bytes skipped as zero groups.
//
// Before the 8-wide word loop ever runs, whole pages are dismissed through
// the known-zero map: one summary-word load probes 64 pages, and each
// candidate is confirmed against the per-page bit (the truth — the summary
// is a hint in both directions). A skipped page generates zero memory
// traffic. Safety: a page's known-zero bit is retired by the same
// post-store CAS that sets its dirty bit, so skipping on a bit the scan
// observed set is indistinguishable from having scanned the page just
// before any concurrent store — which the concurrent-mark mode already
// permits — while in mostly-concurrent mode the store's dirty bit routes
// the page to the stop-the-world re-scan, which never consults the map.
func (s *Sweeper) scanChunk(c chunk, mk *shadow.Marker) (scanned uint64, pages, kzPages int, zeroBytes uint64) {
	if c.dirtyOnly {
		return s.scanDirtyChunk(c, mk)
	}
	r := c.r
	var zeroWords int
	scan := func(words []uint64) { zeroWords += scanPageWords(words, mk) }
	useKZ := !s.kzSkipOff.Load()
	for w, wEnd := c.pageFirst>>6, (c.pageAfter+63)>>6; w < wEnd; w++ {
		var sum uint64
		if useKZ {
			sum = r.KnownZeroSummaryWord(w)
		}
		p, pEnd := w<<6, (w+1)<<6
		if p < c.pageFirst {
			p = c.pageFirst
		}
		if pEnd > c.pageAfter {
			pEnd = c.pageAfter
		}
		for ; p < pEnd; p++ {
			if sum&(1<<uint(p&63)) != 0 && r.PageKnownZero(p) {
				kzPages++
				continue
			}
			// The page lock (taken inside ScanPageWords) orders this scan
			// against bulk zeroing (free, decommit) so the sweeper never
			// reads half-zeroed memory.
			if r.ScanPageWords(p, scan) {
				scanned += mem.PageSize
				pages++
			}
		}
	}
	return scanned, pages, kzPages, uint64(zeroWords) * 8
}

// scanDirtyChunk is scanChunk for dirty-only passes: it walks the chunk's
// dirty summary words and visits only pages with a set summary bit, so a
// chunk that survived collectChunks on one stale bit costs a few word loads,
// not 256 page-state checks. The per-page dirty bit stays the source of
// truth: a summary bit whose page bit is clear (stranded by a bulk state
// rewrite or an earlier test-and-clear) is simply skipped. Pre-clean rounds
// (clearDirty) take each summary word before consuming its page bits — see
// mem.Region.TakeDirtySummaryWord for why that order loses no writes — so
// each round also re-tightens the summary for the rounds and the final
// stop-the-world pass behind it.
// Dirty pages are re-scanned unconditionally — a dirty page cannot be
// known-zero (the store CAS clears one bit as it sets the other), and the
// stop-the-world correctness argument depends on the re-scan never
// trusting the map.
func (s *Sweeper) scanDirtyChunk(c chunk, mk *shadow.Marker) (scanned uint64, pages, kzPages int, zeroBytes uint64) {
	r := c.r
	var zeroWords int
	scan := func(words []uint64) { zeroWords += scanPageWords(words, mk) }
	for w, wEnd := c.pageFirst>>6, (c.pageAfter+63)>>6; w < wEnd; w++ {
		var sum uint64
		if c.clearDirty {
			sum = r.TakeDirtySummaryWord(w)
		} else {
			sum = r.DirtySummaryWord(w)
		}
		for sum != 0 {
			b := bits.TrailingZeros64(sum)
			sum &= sum - 1
			p := w<<6 + b
			if p >= c.pageAfter {
				break
			}
			if c.clearDirty {
				if !r.TestClearPageDirty(p) {
					continue
				}
			} else if !r.PageDirty(p) {
				continue
			}
			if r.ScanPageWords(p, scan) {
				scanned += mem.PageSize
				pages++
			}
		}
	}
	return scanned, pages, 0, uint64(zeroWords) * 8
}

// run executes all chunks across the main goroutine plus helpers, returning
// total bytes scanned. Each worker drains its own stripe of the queue, then
// steals from the next stripes round-robin. Busy time is accounted as
// phase-elapsed time times the worker parallelism actually available, so an
// oversubscribed host does not inflate the CPU-utilisation meter with
// scheduler preemption. Caller holds runMu.
func (s *Sweeper) run(chunks []chunk) PassStats {
	if len(chunks) == 0 {
		return PassStats{Workers: 1}
	}
	workers := s.Workers()
	if workers > len(chunks) {
		workers = len(chunks)
	}
	if cap(s.stripes) < workers {
		s.stripes = make([]stripe, workers)
	}
	stripes := s.stripes[:workers]
	per, rem := len(chunks)/workers, len(chunks)%workers
	lo := 0
	for i := range stripes {
		n := per
		if i < rem {
			n++
		}
		stripes[i].next.Store(int64(lo))
		stripes[i].end = int64(lo + n)
		lo += n
	}
	var total, totalPages, totalZero, totalKZ atomic.Uint64
	worker := func(id int) {
		mk := s.marks.NewMarker()
		var scanned, zero uint64
		var pages, kz int
		for off := 0; off < len(stripes); off++ {
			st := &stripes[(id+off)%len(stripes)]
			for {
				i := st.next.Add(1) - 1
				if i >= st.end {
					break
				}
				sc, pg, kp, zb := s.scanChunk(chunks[i], mk)
				scanned += sc
				pages += pg
				kz += kp
				zero += zb
			}
		}
		mk.Flush()
		total.Add(scanned)
		totalPages.Add(uint64(pages))
		totalZero.Add(zero)
		totalKZ.Add(uint64(kz))
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 1; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			worker(id)
		}(i)
	}
	worker(0)
	wg.Wait()
	elapsed := time.Since(start)
	s.busyNanos.Add(int64(BusyShare(elapsed, workers)))
	ps := PassStats{
		BytesScanned:     total.Load(),
		PagesScanned:     totalPages.Load(),
		ZeroSkippedBytes: totalZero.Load(),
		KnownZeroPages:   totalKZ.Load(),
		Workers:          workers,
		ElapsedNanos:     elapsed.Nanoseconds(),
	}
	s.bytesSwept.Add(ps.BytesScanned)
	s.pagesSwept.Add(ps.PagesScanned)
	s.zeroSkipped.Add(ps.ZeroSkippedBytes)
	s.kzSkipped.Add(ps.KnownZeroPages)
	return ps
}

// BusyShare estimates the CPU time a background phase of the given worker
// count actually consumed during an elapsed interval. With spare cores the
// workers own their cores and busy = elapsed x workers. On a fully
// oversubscribed host (GOMAXPROCS 1) the scheduler time-slices the phase
// against the mutators, so roughly half the elapsed interval belongs to the
// background work; counting all of it would both overstate CPU utilisation
// (Figure 12) and over-credit the adjusted wall time.
func BusyShare(elapsed time.Duration, workers int) time.Duration {
	procs := runtime.GOMAXPROCS(0) // read once: clamp and halving must agree
	par := workers
	if par > procs {
		par = procs
	}
	busy := elapsed * time.Duration(par)
	if procs <= 1 {
		busy /= 2
	}
	return busy
}

// MarkAll performs the full linear pass over all sweepable memory, marking
// every word that could be a heap pointer. It runs concurrently with
// mutators (their stores are atomic, as are our loads) and returns the
// number of bytes scanned.
func (s *Sweeper) MarkAll() uint64 { return s.MarkAllStats().BytesScanned }

// MarkAllStats is MarkAll returning the full pass statistics for the
// telemetry layer's per-sweep records.
func (s *Sweeper) MarkAllStats() PassStats {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	return s.run(s.collectChunks(false, false))
}

// MarkDirty re-scans only pages whose soft-dirty bit is set. The caller is
// expected to have cleared soft-dirty bits before MarkAll and stopped the
// world around this call (mostly-concurrent mode). Dirty bits are left set;
// the next sweep's ClearSoftDirty resets them.
func (s *Sweeper) MarkDirty() uint64 { return s.MarkDirtyStats().BytesScanned }

// MarkDirtyStats is MarkDirty returning the full pass statistics.
func (s *Sweeper) MarkDirtyStats() PassStats {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	return s.run(s.collectChunks(true, false))
}

// MarkDirtyClearStats scans pages whose soft-dirty bit is set, consuming the
// bit as it goes — a concurrent pre-clean round. It runs WITHOUT stopping the
// world: the store() ordering contract in mem guarantees every write whose
// dirty bit this pass consumed is observed by the scan, and writes landing
// after the test-and-clear re-dirty their page for the next round or the
// final STW re-scan. Each round thus shrinks the dirty set the STW window
// must visit to the pages written during the round itself.
func (s *Sweeper) MarkDirtyClearStats() PassStats {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	return s.run(s.collectChunks(true, true))
}

// BytesSwept returns the cumulative bytes scanned across all passes.
func (s *Sweeper) BytesSwept() uint64 { return s.bytesSwept.Load() }

// PagesSwept returns the cumulative resident pages scanned across all passes.
func (s *Sweeper) PagesSwept() uint64 { return s.pagesSwept.Load() }

// ZeroSkippedBytes returns the cumulative bytes the scan loop dismissed as
// all-zero groups — the zero-on-free dividend (§4.1).
func (s *Sweeper) ZeroSkippedBytes() uint64 { return s.zeroSkipped.Load() }

// KnownZeroPages returns the cumulative pages dismissed via the known-zero
// map, with no memory traffic at all.
func (s *Sweeper) KnownZeroPages() uint64 { return s.kzSkipped.Load() }

// SetKnownZeroSkip enables or disables the known-zero page skip for
// subsequent passes. On by default; disabling it is the ablation arm of the
// A/B benchmarks (every page is then scanned word by word, with only the
// 8-wide zero-group compare to help). Safe to call concurrently with a
// running pass.
func (s *Sweeper) SetKnownZeroSkip(on bool) { s.kzSkipOff.Store(!on) }

// BusyTime returns cumulative worker busy time — the additional CPU usage
// the paper reports in Figure 12.
func (s *Sweeper) BusyTime() time.Duration { return time.Duration(s.busyNanos.Load()) }

// AddBusyTime accounts extra sweeper-thread work (e.g. the recycle phase)
// into the CPU usage meter.
func (s *Sweeper) AddBusyTime(d time.Duration) { s.busyNanos.Add(int64(d)) }
