package mem

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestKnownZeroVsStoreOrdering is the oracle for the known-zero half of the
// store() ordering contract, mirroring TestDirtySetVsClearOrdering: one
// mutator alternates full-page Zero (which may set the known-zero bit) with
// Store64 (whose dirty CAS must retire it), while a sweeper-shaped thread
// concurrently consumes dirty bits, reads the known-zero bit, and checks the
// one invariant that makes skipping safe:
//
//	a page is never dirty and known-zero in the same page-state word.
//
// The dirty|known-zero exclusion is what routes every page the skip could
// have mis-judged to the soft-dirty re-scan (which never consults the map).
// The end-state oracle then pins the set/clear ordering itself: once the
// mutator stops, a final look must find either the Zero outcome (word 0,
// known-zero allowed) or the Store outcome (word = last value, known-zero
// clear) — a surviving known-zero bit over a non-zero word is exactly the
// lost-update interleaving the zeroRange ordering forbids. Run under -race
// via `make race-hot` this also proves the bitmap primitives race-free.
func TestKnownZeroVsStoreOrdering(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, PageSize, true)
	addr := r.Base()
	as.ClearSoftDirty()

	const rounds = 100_000
	var wg sync.WaitGroup
	var mutatorDone atomic.Bool
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(1); i <= rounds; i++ {
			if i%2 == 0 {
				if err := as.Zero(addr, PageSize); err != nil {
					t.Error(err)
					return
				}
			} else {
				if err := r.Store64(addr, i); err != nil {
					t.Error(err)
					return
				}
			}
		}
		mutatorDone.Store(true)
	}()
	go func() {
		defer wg.Done()
		for !mutatorDone.Load() {
			// The raw page-state word is one atomic load, so this checks
			// the exclusion at a single instant — not across two getters.
			if bits := r.pages[0].Load(); bits&pageDirty != 0 && bits&pageKnownZero != 0 {
				t.Error("page simultaneously dirty and known-zero")
				return
			}
			// Exercise the sweeper's consume path against the zeroer's
			// exact-accounting consume; both CAS, so neither loses counts.
			r.TestClearPageDirty(0)
			_ = r.PageKnownZero(0)
		}
	}()
	wg.Wait()

	v, err := r.Load64(addr)
	if err != nil {
		t.Fatal(err)
	}
	kz := r.PageKnownZero(0)
	if rounds%2 == 0 {
		// Last op was Zero: the word must read 0. (The known-zero bit may
		// legitimately be either value: the racing checker cannot clear it,
		// but markKnownZero declines to set it if the checker's consume
		// raced the zero's own dirty consume.)
		if v != 0 {
			t.Fatalf("after final Zero: word = %#x, want 0 (kz=%v)", v, kz)
		}
	} else {
		if v != rounds {
			t.Fatalf("after final Store: word = %d, want %d", v, rounds)
		}
	}
	if kz && v != 0 {
		t.Fatalf("known-zero bit set over non-zero word %#x — the skip would leak a stale pointer", v)
	}
	// The summary must agree with the page bit wherever the page bit is set
	// (summary-set is a hint, but summary-clear with the bit set would make
	// the sweep scan... which is safe; bit-set with summary-clear only costs
	// the skip. Check the truth direction used by scanChunk: a skip requires
	// both, so after quiescence a set bit should be summarised.)
	if kz && r.KnownZeroSummaryWord(0)&1 == 0 {
		t.Fatal("known-zero page bit set but summary bit clear after quiescence")
	}
}

// TestKnownZeroZeroBatchConcurrentStores drives ZeroBatch over a region while
// mutators store into neighbouring pages: -race coverage for the batch path
// (sorting, merging, per-page locking) against the store fast path, plus the
// end-state zero oracle on the batched range.
func TestKnownZeroZeroBatchConcurrentStores(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, 8*PageSize, true)
	base := r.Base()

	var wg sync.WaitGroup
	var done atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Mutator confined to the last two pages; the batch zeroes the rest.
		for i := uint64(1); !done.Load(); i++ {
			if err := as.Store64(base+6*PageSize+(i%64)*8, i); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for round := 0; round < 2_000; round++ {
		// Touch the target pages, then zero them as a drain would: many
		// small runs, adjacent ones merging into page-spanning clears.
		for p := uint64(0); p < 6; p++ {
			if err := as.Store64(base+p*PageSize+64, uint64(round)+1); err != nil {
				t.Fatal(err)
			}
		}
		runs := make([]ZeroRun, 0, 12)
		for off := uint64(0); off < 6*PageSize; off += PageSize / 2 {
			runs = append(runs, ZeroRun{Addr: base + off, Size: PageSize / 2})
		}
		if err := as.ZeroBatch(runs); err != nil {
			t.Fatal(err)
		}
		for p := uint64(0); p < 6; p++ {
			if v, err := as.Load64(base + p*PageSize + 64); err != nil || v != 0 {
				t.Fatalf("round %d: page %d not zero after ZeroBatch (v=%#x err=%v)", round, p, v, err)
			}
			if !r.PageKnownZero(int(p)) {
				t.Fatalf("round %d: page %d not known-zero after full-page batched clear", round, p)
			}
		}
	}
	done.Store(true)
	wg.Wait()
}
