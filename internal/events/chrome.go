package events

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace_event export: the dump rendered in the JSON Array Format
// that chrome://tracing and Perfetto load directly. Span begin/end pairs
// become "B"/"E" duration events (one track per ring), instants become "i"
// events, and the capture cause is attached as process metadata. Timestamps
// are microseconds (float, so sub-microsecond phases keep resolution)
// relative to the recorder epoch.

// chromeEvent is one trace_event record.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// spanName maps a Begin/End pair to one Chrome duration-event name.
func spanName(k Kind) string {
	switch k {
	case KindSweepBegin, KindSweepEnd:
		return "sweep"
	case KindMarkBegin, KindMarkEnd:
		return "mark"
	case KindPrecleanBegin, KindPrecleanEnd:
		return "preclean"
	case KindStwBegin, KindStwEnd:
		return "stw"
	case KindRecycleBegin, KindRecycleEnd:
		return "recycle"
	case KindPurgeBegin, KindPurgeEnd:
		return "purge"
	case KindPauseBegin, KindPauseEnd:
		return "pause"
	}
	return k.String()
}

// chromeArgs labels an event's payload for the trace viewer.
func chromeArgs(e Event) map[string]any {
	switch e.Kind {
	case KindSweepBegin:
		return map[string]any{"trigger": e.Arg0, "entries_locked": e.Arg1}
	case KindSweepEnd, KindRecycleEnd:
		return map[string]any{"released": e.Arg0, "retained": e.Arg1}
	case KindMarkEnd:
		return map[string]any{"pages_scanned": e.Arg0, "bytes_scanned": e.Arg1}
	case KindPrecleanBegin:
		return map[string]any{"round": e.Arg0}
	case KindPrecleanEnd:
		return map[string]any{"pages": e.Arg0, "round": e.Arg1}
	case KindStwBegin:
		return map[string]any{"dirty_pages": e.Arg0}
	case KindStwAbort:
		return map[string]any{"dirty_pages": e.Arg0, "budget_pages": e.Arg1}
	case KindStwEnd:
		return map[string]any{"dirty_pages": e.Arg0}
	case KindPauseBegin:
		return map[string]any{"trigger": e.Arg0}
	case KindPauseEnd:
		return map[string]any{"stall_ns": e.Arg0}
	case KindDrain:
		return map[string]any{"entries": e.Arg0, "took_ns": e.Arg1}
	case KindZeroScrub:
		return map[string]any{"runs": e.Arg0, "bytes": e.Arg1}
	case KindAlloc, KindFree:
		return map[string]any{"size": e.Arg0, "latency_ns": e.Arg1}
	case KindGovDecision:
		return map[string]any{"level": e.Arg0, "prev_level": e.Arg1}
	case KindTrip:
		return map[string]any{"cause": TripCause(e.Arg0).String()}
	}
	if e.Arg0 != 0 || e.Arg1 != 0 {
		return map[string]any{"arg0": e.Arg0, "arg1": e.Arg1}
	}
	return nil
}

// WriteChromeTrace renders the dump as a Chrome trace_event JSON array.
// Every ring becomes one thread track; span pairs become B/E duration
// events. The writer tolerates spans cut by the capture window (an E with
// no B, or a B with no E) — chrome://tracing clips those — but a full
// nesting check is available separately via ValidateSpans.
func WriteChromeTrace(w io.Writer, d *Dump) error {
	out := make([]chromeEvent, 0, d.Len()+2*len(d.Threads)+1)
	out = append(out, chromeEvent{
		Name:  "process_name",
		Phase: "M",
		PID:   1,
		Args:  map[string]any{"name": fmt.Sprintf("minesweeper flight (%s)", d.Cause)},
	})
	for tid, t := range d.Threads {
		out = append(out, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   tid,
			Args:  map[string]any{"name": t.Name},
		})
		for _, e := range t.Events {
			ce := chromeEvent{
				TS:   float64(e.Nanos) / 1e3,
				PID:  1,
				TID:  tid,
				Args: chromeArgs(e),
			}
			switch {
			case spanOpen(e.Kind) != 0:
				ce.Name, ce.Phase = spanName(e.Kind), "B"
			case isEnd(e.Kind):
				ce.Name, ce.Phase = spanName(e.Kind), "E"
			default:
				ce.Name, ce.Phase, ce.Scope = e.Kind.String(), "i", "t"
			}
			out = append(out, ce)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ValidateSpans checks that every ring's span events nest correctly: each
// End matches the innermost open Begin of the same pair, timestamps within
// a ring never run backwards across span boundaries, and — the sweep
// pipeline's structural invariant — non-sweep sweeper phases (mark,
// preclean, stw, recycle, purge) only open inside a sweep span. Spans
// clipped by the capture window are tolerated at the edges: unmatched Ends
// are only legal before the first Begin of that depth, and spans still open
// at the end of the dump are legal. Returns nil when the dump is
// well-formed.
func ValidateSpans(d *Dump) error {
	for _, t := range d.Threads {
		var stack []Kind
		clipped := true // still in the window's leading edge: bare Ends OK
		for _, e := range t.Events {
			switch {
			case spanOpen(e.Kind) != 0:
				if e.Kind != KindSweepBegin && e.Kind != KindPauseBegin {
					in := false
					for _, k := range stack {
						if k == KindSweepBegin {
							in = true
							break
						}
					}
					if !in && !clipped {
						return fmt.Errorf("events: ring %q: %s span opens outside a sweep span (seq %d)", t.Name, e.Kind, e.Seq)
					}
				}
				stack = append(stack, e.Kind)
				if e.Kind == KindSweepBegin || e.Kind == KindPauseBegin {
					clipped = false
				}
			case isEnd(e.Kind):
				if len(stack) == 0 {
					if clipped {
						continue // opening Begin fell before the window
					}
					return fmt.Errorf("events: ring %q: unmatched %s (seq %d)", t.Name, e.Kind, e.Seq)
				}
				open := stack[len(stack)-1]
				if spanOpen(open) != e.Kind {
					return fmt.Errorf("events: ring %q: %s closes %s (seq %d)", t.Name, e.Kind, open, e.Seq)
				}
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}
