package core

import (
	"testing"

	"minesweeper/internal/jemalloc"
	"minesweeper/internal/mem"
)

// BenchmarkSweepRelease measures the release phase of a sweep in isolation:
// 100k small allocations are freed into quarantine and locked in, and the
// timed region is the sweep that hands every entry back to the substrate.
// Marking and purging are disabled so the measurement is exactly the
// filterAndRecycle path — quarantine release accounting plus the substrate
// free of each entry.
func BenchmarkSweepRelease(b *testing.B) {
	const entries = 100_000
	cfg := DefaultConfig()
	cfg.Mode = Synchronous
	cfg.Sweeping = false
	cfg.Purging = false
	cfg.Zeroing = false
	cfg.Unmapping = false
	cfg.PauseThreshold = 0
	cfg.SweepThreshold = 1e18 // only explicit Sweep calls run
	h, err := New(mem.NewAddressSpace(), cfg, jemalloc.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer h.Shutdown()
	tid := h.RegisterThread()
	addrs := make([]uint64, entries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := range addrs {
			a, err := h.Malloc(tid, 64)
			if err != nil {
				b.Fatal(err)
			}
			addrs[j] = a
		}
		for _, a := range addrs {
			if err := h.Free(tid, a); err != nil {
				b.Fatal(err)
			}
		}
		h.FlushThread(tid)
		b.StartTimer()
		h.Sweep()
	}
}
