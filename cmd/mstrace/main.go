// Command mstrace records, inspects and replays allocation traces, the
// simulated analogue of capturing an application's allocation profile and
// re-running it under a different LD_PRELOADed allocator (§A.7).
//
// Usage:
//
//	mstrace record -o trace.bin -events 100000 -live 2000 -maxsize 4096
//	mstrace info trace.bin
//	mstrace replay -scheme minesweeper trace.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"minesweeper/internal/mem"
	"minesweeper/internal/metrics"
	"minesweeper/internal/schemes"
	"minesweeper/internal/sim"
	"minesweeper/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mstrace {record|info|replay} ...")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("o", "trace.bin", "output file")
	events := fs.Int("events", 100_000, "number of events")
	live := fs.Int("live", 2000, "live-object window")
	maxSize := fs.Uint64("maxsize", 4096, "maximum allocation size")
	seed := fs.Uint64("seed", 1, "PRNG seed")
	_ = fs.Parse(args)

	t := trace.Record(*events, *live, *maxSize, *seed)
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := t.Write(f); err != nil {
		fatal(err)
	}
	st := t.Stats()
	fmt.Printf("recorded %d events (%d mallocs, %d frees) to %s\n",
		len(t.Events), st.Mallocs, st.Frees, *out)
}

func info(args []string) {
	if len(args) != 1 {
		usage()
	}
	t := load(args[0])
	st := t.Stats()
	fmt.Printf("threads        %d\n", t.Threads)
	fmt.Printf("events         %d\n", len(t.Events))
	fmt.Printf("mallocs        %d\n", st.Mallocs)
	fmt.Printf("frees          %d\n", st.Frees)
	fmt.Printf("peak live      %d objects, %s\n", st.PeakLive, metrics.FmtMiB(st.PeakLiveBytes))
	fmt.Printf("total alloc'd  %s\n", metrics.FmtMiB(st.TotalBytes))
	if err := t.Validate(); err != nil {
		fmt.Printf("VALIDATION FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("trace valid")
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	scheme := fs.String("scheme", "minesweeper", "scheme to replay under")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	t := load(fs.Arg(0))

	var factory schemes.Factory
	found := false
	for _, k := range []schemes.Kind{
		schemes.Baseline, schemes.MineSweeper, schemes.MineSweeperMostly,
		schemes.MarkUs, schemes.FFMalloc, schemes.Scudo,
		schemes.Oscar, schemes.DangSan, schemes.PSweeper, schemes.CRCount,
	} {
		if k.String() == *scheme {
			factory, found = schemes.New(k), true
		}
	}
	if !found {
		fatal(fmt.Errorf("unknown scheme %q", *scheme))
	}

	space := mem.NewAddressSpace()
	world := sim.NewWorld()
	heap, err := factory.Build(space, world)
	if err != nil {
		fatal(err)
	}
	prog, err := sim.NewProgram(space, heap, world)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	res, err := trace.Replay(t, prog)
	wall := time.Since(start)
	heap.Shutdown()
	if err != nil {
		fatal(err)
	}
	st := heap.Stats()
	fmt.Printf("replayed under %s\n", factory.Name)
	fmt.Printf("  wall time    %v\n", wall.Round(time.Millisecond))
	fmt.Printf("  mallocs      %d\n", res.Mallocs)
	fmt.Printf("  frees        %d\n", res.Frees)
	fmt.Printf("  peak rss     %s\n", metrics.FmtMiB(res.PeakRSS))
	fmt.Printf("  sweeps       %d\n", st.Sweeps)
	fmt.Printf("  failed frees %d\n", st.FailedFrees)
}

func load(path string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	t, err := trace.Read(f)
	if err != nil {
		fatal(err)
	}
	return t
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mstrace:", err)
	os.Exit(1)
}
