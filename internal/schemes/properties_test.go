package schemes

import (
	"testing"

	"minesweeper/internal/mem"
	"minesweeper/internal/sim"
)

// interval is a live allocation's [base, base+size) range.
type interval struct{ lo, hi uint64 }

// TestNoLiveOverlapAnyScheme checks the fundamental allocator soundness
// property under every scheme: no two simultaneously live allocations ever
// overlap, across random malloc/free churn of mixed sizes.
func TestNoLiveOverlapAnyScheme(t *testing.T) {
	for _, k := range []Kind{
		Baseline, MineSweeper, MineSweeperMostly, MarkUs, FFMalloc,
		Scudo, Oscar, DangSan, PSweeper, CRCount, Dlmalloc, MineSweeperDlmalloc,
	} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			space := mem.NewAddressSpace()
			h, err := New(k).Build(space, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer h.Shutdown()
			tid := h.RegisterThread()

			rng := sim.NewRand(uint64(k) + 99)
			live := make(map[uint64]interval)
			for i := 0; i < 4000; i++ {
				if len(live) > 96 || (len(live) > 0 && rng.Intn(3) == 0) {
					for base := range live {
						if err := h.Free(tid, base); err != nil {
							t.Fatalf("op %d: Free: %v", i, err)
						}
						delete(live, base)
						break
					}
					continue
				}
				size := rng.Range(8, 40000)
				base, err := h.Malloc(tid, size)
				if err != nil {
					t.Fatalf("op %d: Malloc(%d): %v", i, size, err)
				}
				nw := interval{base, base + size}
				for other, iv := range live {
					if nw.lo < iv.hi && iv.lo < nw.hi {
						t.Fatalf("op %d: allocation [%#x,%#x) overlaps live [%#x,%#x) (base %#x)",
							i, nw.lo, nw.hi, iv.lo, iv.hi, other)
					}
				}
				live[base] = nw
			}
			for base := range live {
				if err := h.Free(tid, base); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestUsableSizeCoversRequestAnyScheme checks every scheme returns usable
// sizes covering the request, and that writes across the full requested size
// land (no silent truncation).
func TestUsableSizeCoversRequestAnyScheme(t *testing.T) {
	for _, k := range []Kind{
		Baseline, MineSweeper, MarkUs, FFMalloc, Scudo, Oscar, DangSan, PSweeper, CRCount, Dlmalloc, MineSweeperDlmalloc,
	} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			space := mem.NewAddressSpace()
			h, err := New(k).Build(space, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer h.Shutdown()
			tid := h.RegisterThread()
			for _, size := range []uint64{8, 16, 100, 1000, 5000, 70000} {
				base, err := h.Malloc(tid, size)
				if err != nil {
					t.Fatal(err)
				}
				if us := h.UsableSize(base); us < size {
					t.Errorf("size %d: UsableSize = %d", size, us)
				}
				// Touch first and last word of the request.
				if err := space.Store64(base, 1); err != nil {
					t.Errorf("size %d: first-word store: %v", size, err)
				}
				last := (base + size - 8) &^ 7
				if err := space.Store64(last, 2); err != nil {
					t.Errorf("size %d: last-word store: %v", size, err)
				}
				if err := h.Free(tid, base); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestStatsConsistencyAnyScheme checks bookkeeping: after freeing everything
// and quiescing, no scheme reports live application bytes.
func TestStatsConsistencyAnyScheme(t *testing.T) {
	for _, k := range []Kind{
		Baseline, MineSweeper, MarkUs, FFMalloc, Scudo, Oscar, DangSan, PSweeper, CRCount, Dlmalloc, MineSweeperDlmalloc,
	} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			space := mem.NewAddressSpace()
			h, err := New(k).Build(space, nil)
			if err != nil {
				t.Fatal(err)
			}
			tid := h.RegisterThread()
			var bases []uint64
			rng := sim.NewRand(7)
			for i := 0; i < 500; i++ {
				b, err := h.Malloc(tid, rng.Range(8, 8000))
				if err != nil {
					t.Fatal(err)
				}
				bases = append(bases, b)
			}
			for _, b := range bases {
				if err := h.Free(tid, b); err != nil {
					t.Fatal(err)
				}
			}
			h.Shutdown() // quiesce background machinery
			if got := h.Stats().Allocated; got != 0 {
				t.Errorf("Allocated = %d after freeing everything, want 0", got)
			}
		})
	}
}
