// fdpoison demonstrates the paper's §2 footnote live: with a GNU-malloc-style
// allocator that keeps metadata IN the heap, a single use-after-free write is
// enough to poison a free list and make malloc() return a live object's
// address — no spraying required. MineSweeper on the same allocator keeps
// the freed chunk out of the free lists while the dangling pointer exists,
// killing the primitive.
//
// Run with:
//
//	go run ./examples/fdpoison
package main

import (
	"fmt"
	"log"

	"minesweeper/internal/core"
	"minesweeper/internal/dlmalloc"
	"minesweeper/internal/mem"
	"minesweeper/internal/sim"
)

func main() {
	fmt.Println("=== dlmalloc (in-band metadata, unprotected) ===")
	attack(false)
	fmt.Println()
	fmt.Println("=== dlmalloc + MineSweeper ===")
	attack(true)
}

func attack(protected bool) {
	space := mem.NewAddressSpace()
	sub := dlmalloc.New(space)
	var heap interface {
		Shutdown()
	}
	var prog *sim.Program
	var err error
	if protected {
		cfg := core.DefaultConfig()
		cfg.Mode = core.Synchronous
		cfg.BufferCap = 1
		cfg.Unmapping = false // dlmalloc chunks share pages
		h, cerr := core.NewWithSubstrate(space, cfg, sub)
		if cerr != nil {
			log.Fatal(cerr)
		}
		heap = h
		prog, err = sim.NewProgram(space, h, nil)
	} else {
		heap = sub
		prog, err = sim.NewProgram(space, sub, nil)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer heap.Shutdown()
	th, err := prog.NewThread(1)
	if err != nil {
		log.Fatal(err)
	}
	defer th.Close()

	// A live "credentials" object the attacker wants to overwrite.
	victim, _ := th.Malloc(64)
	_ = th.Store(victim, 0x5AFE) // victim->privilege = SAFE
	fmt.Printf("victim object at %#x holds %#x\n", victim, 0x5AFE)

	// The bug: a chunk is freed while a dangling pointer remains.
	chunk, _ := th.Malloc(64)
	_ = th.Store(prog.GlobalSlot(0), chunk)
	_ = th.Free(chunk)

	// The exploit: one dangling WRITE, placing the victim's address where
	// the allocator keeps its free-list fd pointer.
	_ = th.Store(chunk, victim)
	fmt.Printf("attacker wrote victim's address into freed chunk %#x\n", chunk)

	// Two allocations later, who owns the victim's memory?
	m1, _ := th.Malloc(64)
	m2, _ := th.Malloc(64)
	fmt.Printf("next mallocs returned %#x and %#x\n", m1, m2)
	if m2 == victim || m1 == victim {
		_ = th.Store(victim, 0x600D) // attacker writes through "their" chunk
	}
	v, _ := th.Load(victim)
	if v != 0x5AFE {
		fmt.Printf("EXPLOITED: malloc handed out the live victim; it now holds %#x\n", v)
	} else {
		fmt.Printf("safe: victim untouched (%#x); the chunk never reached a free list\n", v)
	}
}
