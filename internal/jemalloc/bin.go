package jemalloc

import (
	"sync"
	"sync/atomic"

	"minesweeper/internal/alloc"
	"minesweeper/internal/mem"
)

// bin manages the slabs of one small size class: a current slab that serves
// allocations, plus a list of other non-full slabs. Fully-free slabs (other
// than the current one) are returned to the arena's dirty lists so purging
// can reclaim them.
type bin struct {
	mu      sync.Mutex
	class   int
	size    uint64
	current *Extent
	nonfull []*Extent
	nslabs  int
	// slabBytes is the heap-wide live-slab byte counter, updated here so
	// callers need not reach under the bin lock for accounting.
	slabBytes *atomic.Int64
}

// allocBatch fills out[:n] with up to n region addresses — and exts/regs,
// when non-nil, with each region's owning extent and region index — returning
// how many were produced. Batching amortises the bin lock across a whole
// tcache fill, and handing back the extents and indices lets the tcache
// remember them so later flushes need neither page-map lookups nor
// region-size divisions.
func (b *bin) allocBatch(a *arena, out []uint64, exts []*Extent, regs []int32) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	got := 0
	for got < len(out) {
		if b.current == nil || b.current.nfree == 0 {
			if n := len(b.nonfull); n > 0 {
				b.current = b.nonfull[n-1]
				b.nonfull = b.nonfull[:n-1]
			} else {
				e, err := a.allocExtent(SlabPages(b.class))
				if err != nil {
					if got > 0 {
						return got, nil
					}
					return 0, err
				}
				e.initSlab(b.class)
				b.nslabs++
				b.slabBytes.Add(int64(SlabPages(b.class) * mem.PageSize))
				b.current = e
			}
		}
		for got < len(out) && b.current.nfree > 0 {
			addr, idx := b.current.popRegion()
			out[got] = addr
			if exts != nil {
				exts[got] = b.current
			}
			if regs != nil {
				regs[got] = int32(idx)
			}
			got++
		}
	}
	return got, nil
}

// freeRegion returns one region to its slab, reporting a double free if the
// region is already free. The extent must belong to this bin's class.
// Fully-free non-current slabs are handed back to the arena.
func (b *bin) freeRegion(a *arena, e *Extent, idx int) error {
	b.mu.Lock()
	if e.regionFree(idx) {
		b.mu.Unlock()
		return alloc.ErrDoubleFree
	}
	wasFull := e.nfree == 0
	e.pushRegion(idx)
	// The region may arrive from a tcache drain with its residency bit
	// still set; clear it now that the slab owns the region again. A no-op
	// for regions that were never cached.
	if e.cachemap != nil {
		e.uncacheRegion(idx)
	}
	var release *Extent
	if e != b.current {
		if e.nfree == e.nregs {
			// Entirely free: remove from nonfull (it is there unless
			// it was full) and release to the arena.
			if !wasFull {
				for i, s := range b.nonfull {
					if s == e {
						b.nonfull[i] = b.nonfull[len(b.nonfull)-1]
						b.nonfull = b.nonfull[:len(b.nonfull)-1]
						break
					}
				}
			}
			b.nslabs--
			b.slabBytes.Add(-int64(SlabPages(b.class) * mem.PageSize))
			release = e
		} else if wasFull {
			b.nonfull = append(b.nonfull, e)
		}
	}
	b.mu.Unlock()
	if release != nil {
		a.freeExtent(release)
	}
	return nil
}
