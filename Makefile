# Convenience targets for the MineSweeper reproduction.

GO ?= go

.PHONY: all build vet test race bench figures examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One testing.B target per paper figure plus the API micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure at full scale (the artifact's do_all.sh analogue).
figures:
	$(GO) run ./cmd/msbench -fig all -reps 3 -out experiments_raw.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/uafexploit
	$(GO) run ./examples/webcache
	$(GO) run ./examples/tracereplay
	$(GO) run ./examples/fdpoison

clean:
	$(GO) clean ./...
