package workload

// SPECspeed2017 profiles (Figure 18). Starred benchmarks in the paper are
// OpenMP-parallel; those run with 4 mutator threads here (the paper used the
// better of 4- and 8-thread configurations on a 4-core machine). xalancbmk
// remains the worst case (2x in the paper), wrf the worst parallel case
// (66%).

const spec17Ops = 500_000

// Spec2017 returns the 18 SPECspeed2017 profiles.
func Spec2017() []Profile {
	mk := func(name string, threads, allocBP, live int, sizes SizeDist, lt Lifetime, ptr int) Profile {
		ops := spec17Ops
		if threads > 1 {
			ops /= threads
		}
		return Profile{
			Name: name, Suite: "spec2017", Threads: threads, Ops: ops,
			AllocBP: allocBP, LiveTarget: live, Sizes: sizes,
			Lifetime: lt, PointerPct: ptr, InitWords: 8, WorkTouches: 6,
		}
	}
	balanced := Lifetime{Newest: 40, Oldest: 30, Random: 30}
	lifo := Lifetime{Newest: 60, Oldest: 20, Random: 20}
	return []Profile{
		mk("perlbench", 1, 1300, 40000, smallMix, Lifetime{40, 25, 35}, 65),
		mk("gcc", 1, 280, 12000, mediumMix, Lifetime{25, 55, 20}, 55),
		mk("mcf", 1, 50, 3000, largeMix, balanced, 40),
		mk("xalancbmk", 1, 9500, 120000, tinyMix, Lifetime{35, 30, 35}, 65),
		mk("x264", 1, 60, 400, largeMix, lifo, 20),
		mk("deepsjeng", 1, 30, 150, mediumMix, lifo, 30),
		mk("leela", 1, 600, 3000, smallMix, lifo, 50),
		mk("exchange2", 1, 20, 100, smallMix, lifo, 20),
		mk("xz", 1, 30, 60, largeMix, lifo, 10),
		// OpenMP-parallel (starred in Figure 18).
		mk("bwaves", 4, 20, 50, largeMix, lifo, 10),
		mk("cactuBSSN", 4, 40, 200, largeMix, balanced, 20),
		mk("lbm", 4, 20, 20, largeMix, lifo, 10),
		mk("wrf", 4, 2500, 8000, mediumMix, Lifetime{30, 35, 35}, 40),
		mk("pop2", 4, 300, 800, mediumMix, balanced, 30),
		mk("imagick", 4, 200, 600, largeMix, lifo, 20),
		mk("nab", 4, 200, 500, mediumMix, lifo, 30),
		mk("fotonik3d", 4, 20, 60, largeMix, lifo, 10),
		mk("roms", 4, 40, 150, largeMix, balanced, 15),
	}
}

// Spec2017Parallel reports whether a SPEC2017 benchmark is OpenMP-parallel
// (starred in Figure 18).
func Spec2017Parallel(name string) bool {
	switch name {
	case "bwaves", "cactuBSSN", "lbm", "wrf", "pop2", "imagick", "nab", "fotonik3d", "roms":
		return true
	}
	return false
}
