// Package uaf implements the paper's threat model (§1.2) as an executable
// experiment: a non-malicious victim application with a use-after-free bug,
// and an attacker who can allocate memory and store chosen data into it.
// The attacker wins if they are "given control of an allocation that
// temporally aliases with a different allocation at a different program
// point" — the use-after-reallocate of Figure 2: the victim erroneously
// frees an object while keeping a dangling pointer, the attacker sprays
// same-size allocations filled with a fake vtable pointer, and the victim
// then performs a virtual call through the dangling pointer.
//
// Under an unprotected allocator the spray lands on the victim's old
// address and the "call" dispatches to attacker-chosen code. Under
// MineSweeper the quarantine refuses to recycle the allocation while the
// dangling pointer exists, so the dispatch reads the zeroed (or original)
// memory and the exploit fails. Under FFMalloc the address is never reused
// at all.
package uaf

import (
	"errors"
	"fmt"

	"minesweeper/internal/alloc"
	"minesweeper/internal/mem"
	"minesweeper/internal/sim"
)

// MaliciousVtable is the attacker's payload: the address of "malicious
// code". Any value works; the experiment checks whether the victim's
// dispatch reads it.
const MaliciousVtable uint64 = 0x4141_4141_4141_4140

// Outcome describes the result of one exploit attempt.
type Outcome int

// Exploit outcomes.
const (
	// Exploited: the victim dispatched through attacker-controlled data —
	// a successful use-after-reallocate.
	Exploited Outcome = iota
	// Benign: the dangling dispatch read stale-but-harmless data (zeroed
	// quarantined memory, or the original vtable).
	Benign
	// Faulted: the access trapped (unmapped quarantined page or retired
	// address) — the paper's "clean termination".
	Faulted
)

// String returns the outcome's name.
func (o Outcome) String() string {
	switch o {
	case Exploited:
		return "EXPLOITED"
	case Benign:
		return "benign use-after-free"
	case Faulted:
		return "clean fault"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Result details one experiment run.
type Result struct {
	// Outcome is the exploit verdict.
	Outcome Outcome
	// VictimAddr is the erroneously freed object's address.
	VictimAddr uint64
	// SprayHits counts attacker allocations that landed on VictimAddr.
	SprayHits int
	// ReadVtable is the value the victim's dispatch loaded (0 on fault).
	ReadVtable uint64
}

// Scenario parameterises the attack.
type Scenario struct {
	// ObjectSize is the victim object's size (the attacker sprays the
	// same size to maximise reuse probability).
	ObjectSize uint64
	// SprayCount is how many allocations the attacker sprays.
	SprayCount int
	// Sweeps is how many forced sweeps occur between the erroneous free
	// and the victim's dangling use (modelling time passing).
	Sweeps int
}

// DefaultScenario mirrors the paper's running example.
func DefaultScenario() Scenario {
	return Scenario{ObjectSize: 48, SprayCount: 2000, Sweeps: 2}
}

// Sweeper is implemented by schemes with forcible sweeps.
type Sweeper interface{ Sweep() }

// Run executes the exploit attempt against the given allocator. The victim
// object's first word is its "vtable pointer"; a dangling pointer to the
// object stays live in the globals segment throughout, exactly as in
// Listing 1 / Figure 2.
func Run(prog *sim.Program, victim *sim.Thread, attacker *sim.Thread, sc Scenario) (Result, error) {
	var res Result

	// Victim: x = new Object(); x->vtable = legitimate.
	x, err := victim.Malloc(sc.ObjectSize)
	if err != nil {
		return res, err
	}
	res.VictimAddr = x
	const legitVtable = 0x1000 // arbitrary non-heap "code address"
	if err := victim.Store(x, legitVtable); err != nil {
		return res, err
	}
	// The dangling pointer lives in a global.
	if err := victim.Store(prog.GlobalSlot(0), x); err != nil {
		return res, err
	}

	// delete x; — the bug: the global pointer is not cleared.
	if err := victim.Free(x); err != nil {
		return res, err
	}

	// Time passes; protection schemes sweep.
	forceSweeps(prog, sc.Sweeps)

	// Attacker sprays same-size allocations with the malicious vtable.
	spray := make([]uint64, 0, sc.SprayCount)
	for i := 0; i < sc.SprayCount; i++ {
		a, err := attacker.Malloc(sc.ObjectSize)
		if err != nil {
			return res, err
		}
		if a == x {
			res.SprayHits++
		}
		if err := attacker.Store(a, MaliciousVtable); err != nil {
			return res, err
		}
		spray = append(spray, a)
	}

	// Victim: x->fn() — load the vtable through the dangling pointer.
	ptr, err := victim.Load(prog.GlobalSlot(0))
	if err != nil {
		return res, err
	}
	vt, err := victim.Load(ptr)
	if err != nil {
		var f *mem.Fault
		if errors.As(err, &f) {
			res.Outcome = Faulted
			cleanupSpray(attacker, spray)
			return res, nil
		}
		return res, err
	}
	res.ReadVtable = vt
	if vt == MaliciousVtable {
		res.Outcome = Exploited
	} else {
		res.Outcome = Benign
	}
	cleanupSpray(attacker, spray)
	return res, nil
}

func cleanupSpray(attacker *sim.Thread, spray []uint64) {
	for _, a := range spray {
		_ = attacker.Free(a)
	}
}

// forceSweeps triggers n sweeps on schemes that support forcing them.
func forceSweeps(prog *sim.Program, n int) {
	s, ok := prog.Heap().(Sweeper)
	if !ok {
		return
	}
	for i := 0; i < n; i++ {
		s.Sweep()
	}
}

// DoubleFreeProbe checks double-free behaviour: it frees the same
// allocation twice and reports whether the second free was absorbed
// idempotently (nil error) and whether the allocation was ever handed out
// twice afterwards.
func DoubleFreeProbe(th *sim.Thread, size uint64) (absorbed bool, corrupted bool, err error) {
	a, err := th.Malloc(size)
	if err != nil {
		return false, false, err
	}
	if err := th.Free(a); err != nil {
		return false, false, err
	}
	err2 := th.Free(a)
	absorbed = err2 == nil

	// If the double free corrupted state, the same address can be handed
	// out to two live allocations at once.
	seen := make(map[uint64]bool)
	var live []uint64
	for i := 0; i < 256; i++ {
		b, err := th.Malloc(size)
		if err != nil {
			return absorbed, false, err
		}
		if seen[b] {
			return absorbed, true, nil
		}
		seen[b] = true
		live = append(live, b)
	}
	for _, b := range live {
		_ = th.Free(b)
	}
	if err2 != nil && !errors.Is(err2, alloc.ErrDoubleFree) && !errors.Is(err2, alloc.ErrInvalidFree) {
		return absorbed, false, err2
	}
	return absorbed, false, nil
}
