package core

import (
	"testing"

	"minesweeper/internal/control"
	"minesweeper/internal/telemetry"
)

// governedConfig wires a control plane over the test config's knob values.
func governedConfig(budget uint64, pol control.Policy) Config {
	cfg := testConfig()
	cfg.Control = control.NewPlane(control.Config{
		Base: control.Knobs{
			SweepThreshold: cfg.SweepThreshold,
			UnmappedFactor: cfg.UnmappedFactor,
			PauseThreshold: cfg.PauseThreshold,
			Helpers:        cfg.Helpers,
		},
		Budget: budget,
		Policy: pol,
	})
	return cfg
}

func TestGovernedSweepObservesPlane(t *testing.T) {
	cfg := governedConfig(1<<40, control.NewAIMD())
	h, tid := newTestHeap(t, cfg)
	a, err := h.Malloc(tid, 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(tid, a); err != nil {
		t.Fatal(err)
	}
	if h.Control().Observations() != 0 {
		t.Fatal("plane observed before any sweep")
	}
	h.Sweep()
	if got := h.Control().Observations(); got != 1 {
		t.Fatalf("observations after one sweep: %d, want 1", got)
	}
	// A huge budget and a tiny heap: pressure stays Nominal, knobs at base.
	if lvl := h.Control().Level(); lvl != control.Nominal {
		t.Fatalf("level %v, want Nominal", lvl)
	}
	if k := h.Control().Knobs(); k != h.Control().Base() {
		t.Fatalf("knobs drifted with no pressure: %+v", k)
	}
}

func TestGovernedBudgetTriggersSweep(t *testing.T) {
	cfg := governedConfig(1, control.NewAIMD()) // 1-byte budget: always over
	h, tid := newTestHeap(t, cfg)
	// Quarantine more than pauseFloorBytes so the budget trigger is armed.
	var addrs []uint64
	for i := 0; i < 600; i++ {
		a, err := h.Malloc(tid, 4096)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	sweepsBefore := h.Stats().Sweeps
	for _, a := range addrs {
		if err := h.Free(tid, a); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.Stats().Sweeps; got <= sweepsBefore {
		t.Fatalf("budget trigger never fired a sweep (sweeps %d)", got)
	}
	// Pressure at a 1-byte budget is as critical as it gets.
	if lvl := h.Control().Level(); lvl != control.Critical {
		t.Fatalf("level %v, want Critical", lvl)
	}
	if h.Control().Ring().Total() == 0 {
		t.Fatal("no decisions recorded under critical pressure")
	}
	for _, d := range h.Control().Ring().Snapshot() {
		if !h.Control().Rails().Contains(d.After) {
			t.Fatalf("decision escaped rails: %+v", d)
		}
	}
}

func TestGovernedBudgetTriggerReason(t *testing.T) {
	cfg := governedConfig(1, control.NewAIMD())
	reg := telemetry.NewRegistry(16)
	cfg.Telemetry = reg
	h, tid := newTestHeap(t, cfg)
	var addrs []uint64
	for i := 0; i < 600; i++ {
		a, err := h.Malloc(tid, 4096)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		if err := h.Free(tid, a); err != nil {
			t.Fatal(err)
		}
	}
	found := false
	for _, rec := range reg.Ring().Snapshot() {
		if rec.Trigger == telemetry.TriggerBudget {
			found = true
		}
	}
	if !found {
		t.Fatal("no sweep recorded the budget trigger reason")
	}
	snap := reg.Snapshot()
	if snap.Governor == nil {
		t.Fatal("telemetry snapshot missing governor state")
	}
	if snap.Governor.Policy != "aimd" {
		t.Fatalf("governor policy %q, want aimd", snap.Governor.Policy)
	}
	var sawLevel, sawHelpers bool
	for _, g := range snap.Gauges {
		switch g.Name {
		case "governor_pressure_level":
			sawLevel = true
		case "governor_helpers":
			sawHelpers = true
		}
	}
	if !sawLevel || !sawHelpers {
		t.Fatalf("governor gauges missing from snapshot: %+v", snap.Gauges)
	}
}

func TestGovernedStaticMatchesUngoverned(t *testing.T) {
	run := func(cfg Config) []uint64 {
		h, tid := newTestHeap(t, cfg)
		var live []uint64
		for i := 0; i < 4000; i++ {
			a, err := h.Malloc(tid, uint64(16+(i%7)*48))
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, a)
			if i%3 == 0 && len(live) > 4 {
				victim := live[len(live)-3]
				live = append(live[:len(live)-3], live[len(live)-2:]...)
				if err := h.Free(tid, victim); err != nil {
					t.Fatal(err)
				}
			}
			if i%512 == 511 {
				h.FlushThread(tid)
				h.Sweep()
			}
		}
		h.FlushThread(tid)
		h.Sweep()
		st := h.Stats()
		return []uint64{
			st.Allocated, st.Quarantined, st.QuarantinedUnmapped,
			st.MetaBytes, st.Sweeps, st.FailedFrees, st.ReleasedFrees,
			st.DoubleFrees, st.BytesSwept,
		}
	}
	plain := run(testConfig())
	governed := run(governedConfig(0, control.Static{}))
	for i := range plain {
		if plain[i] != governed[i] {
			t.Fatalf("stats field %d differs: ungoverned %d, static-governed %d\nplain %v\ngoverned %v",
				i, plain[i], governed[i], plain, governed)
		}
	}
}

func TestGovernorRaisesHelpersAndRecycleWorkers(t *testing.T) {
	cfg := governedConfig(1, control.NewAIMD())
	h, tid := newTestHeap(t, cfg)
	base := len(h.recycleTids)
	var addrs []uint64
	for i := 0; i < 600; i++ {
		a, err := h.Malloc(tid, 4096)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		if err := h.Free(tid, a); err != nil {
			t.Fatal(err)
		}
	}
	h.FlushThread(tid)
	h.Sweep()
	// The helper knob must have been driven up; whether the sweeper's
	// effective worker count follows depends on the host's GOMAXPROCS
	// clamp, but the registered pool must always cover the effective count.
	if k := h.Control().Knobs(); k.Helpers <= cfg.Control.Base().Helpers {
		t.Fatalf("critical pressure did not raise the helper knob: %d", k.Helpers)
	}
	if len(h.recycleTids) < h.sw.Workers() {
		t.Fatalf("recycle pool %d smaller than worker count %d", len(h.recycleTids), h.sw.Workers())
	}
	if len(h.recycleTids) < base {
		t.Fatalf("recycle pool shrank: %d -> %d", base, len(h.recycleTids))
	}
}
