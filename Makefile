# Convenience targets for the MineSweeper reproduction.

GO ?= go

.PHONY: all build vet test race race-hot bench bench-all figures examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-detector pass over the concurrent hot-path packages (sweeper workers,
# shadow markers, page scanning, the core sweep loop) — much faster than a
# full `make race` and the first thing to run after touching the sweep path.
race-hot:
	$(GO) test -race ./internal/sweep ./internal/shadow ./internal/core ./internal/mem

# One-command perf baseline for the sweep hot path: the bulk-scan vs per-word
# sweep comparison plus the shadow-marker and page-scan micro-benchmarks.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSweepMarkAll|BenchmarkShadowMarker|BenchmarkScanPage' -benchmem -count=1 ./internal/sweep ./internal/shadow ./internal/mem

# One testing.B target per paper figure plus the API micro-benchmarks.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure at full scale (the artifact's do_all.sh analogue).
figures:
	$(GO) run ./cmd/msbench -fig all -reps 3 -out experiments_raw.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/uafexploit
	$(GO) run ./examples/webcache
	$(GO) run ./examples/tracereplay
	$(GO) run ./examples/fdpoison

clean:
	$(GO) clean ./...
