package sim

// Rand is a small, fast, deterministic PRNG (splitmix64). Every workload
// derives its randomness from a seeded Rand so runs are reproducible; the
// standard library's global rand is never used.
type Rand struct {
	state uint64
}

// NewRand returns a PRNG seeded with seed.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed + 0x9E3779B97F4A7C15}
}

// Uint64 returns the next pseudo-random value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a value in [lo, hi]. hi must be >= lo.
func (r *Rand) Range(lo, hi uint64) uint64 {
	return lo + r.Uint64()%(hi-lo+1)
}

// Split derives an independent PRNG (for per-thread streams).
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64())
}
