package jemalloc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"minesweeper/internal/alloc"
	"minesweeper/internal/mem"
)

// Config controls the allocator's behaviour.
type Config struct {
	// Hooks manage physical memory for extents. Nil means DefaultHooks.
	Hooks ExtentHooks
	// PadEnd grows every request by one byte so that one-past-the-end
	// pointers lie within the same allocation (the paper's jemalloc
	// modification for C/C++ end() pointer compatibility).
	PadEnd bool
	// DecayCycles is the virtual-time age after which dirty extents are
	// purged on Tick. Zero disables decay purging.
	DecayCycles uint64
	// TcacheEnabled enables per-thread caches.
	TcacheEnabled bool
	// Arenas is the number of arena/bin shards. Threads are spread over the
	// shards round-robin by thread ID, so tcache misses from different
	// threads hit different bin locks — jemalloc's multiple-arenas
	// analogue. Zero (the default) selects min(4, GOMAXPROCS).
	Arenas int
}

// DefaultConfig mirrors stock jemalloc behaviour: tcache on, decay purging
// of dirty extents (jemalloc's 10-second decay curve, expressed here in
// virtual operation-count time at simulator scale), end-pointer pad on,
// automatic arena count.
func DefaultConfig() Config {
	return Config{
		Hooks:         DefaultHooks{},
		PadEnd:        true,
		DecayCycles:   100_000,
		TcacheEnabled: true,
	}
}

// heapShard is one slice of the allocator's shared state: an arena (extent
// lifecycle, dirty lists) plus a full bin set. Each shard has its own locks;
// only the page map and the heap-wide statistic counters are shared.
type heapShard struct {
	arena *arena
	bins  []bin
}

// Heap is a jemalloc-style allocator over a simulated address space. It
// implements alloc.Allocator and is the substrate both the baseline and
// MineSweeper run on.
type Heap struct {
	space  *mem.AddressSpace
	cfg    Config
	pm     *rtree // page map, shared by all shards
	shards []heapShard

	tcMu     sync.Mutex
	tcaches  atomic.Pointer[[]*tcache]
	nthreads atomic.Int32

	// Hot-path statistics live in per-thread stripes (indexed by thread ID,
	// padded to a cache line) so every Malloc/Free is not a rendezvous on
	// one heap-global cache line. Each update lands wholly on one stripe,
	// so sums over stripes are exact — readers (AllocatedBytes, Stats) pay
	// the summation, which is off the per-operation path.
	ctrs      []counterStripe
	largeLive atomic.Int64 // live large usable bytes (slow path; unstriped)
	slabBytes atomic.Int64 // bytes in live slabs
}

// counterStripe holds one stripe of the hot-path counters. The trailing pad
// rounds the struct to a 128-byte cache-line pair so neighbouring stripes
// never false-share.
type counterStripe struct {
	allocated atomic.Int64 // live usable bytes
	mallocs   atomic.Uint64
	frees     atomic.Uint64
	_         [104]byte
}

var _ alloc.Substrate = (*Heap)(nil)

// New returns a Heap over space.
func New(space *mem.AddressSpace, cfg Config) *Heap {
	if cfg.Hooks == nil {
		cfg.Hooks = DefaultHooks{}
	}
	nshards := cfg.Arenas
	if nshards <= 0 {
		nshards = runtime.GOMAXPROCS(0)
		if nshards > 4 {
			nshards = 4
		}
	}
	nstripes := 1
	for nstripes < runtime.GOMAXPROCS(0) && nstripes < 8 {
		nstripes <<= 1
	}
	h := &Heap{
		space:  space,
		cfg:    cfg,
		pm:     newRtree(),
		shards: make([]heapShard, nshards),
		ctrs:   make([]counterStripe, nstripes),
	}
	for s := range h.shards {
		sh := &h.shards[s]
		sh.arena = newArena(space, cfg.Hooks, h.pm, int32(s), cfg.DecayCycles)
		sh.bins = make([]bin, NumClasses())
		for c := range sh.bins {
			sh.bins[c].class = c
			sh.bins[c].size = ClassSize(c)
			sh.bins[c].slabBytes = &h.slabBytes
		}
	}
	empty := make([]*tcache, 0)
	h.tcaches.Store(&empty)
	return h
}

// String returns the scheme name.
func (h *Heap) String() string { return "jemalloc" }

// Space returns the underlying address space.
func (h *Heap) Space() *mem.AddressSpace { return h.space }

// NumArenas returns the number of arena/bin shards.
func (h *Heap) NumArenas() int { return len(h.shards) }

// shardFor returns the shard serving a thread's slow paths: threads are
// spread round-robin, jemalloc's thread→arena assignment.
func (h *Heap) shardFor(tid alloc.ThreadID) *heapShard {
	return &h.shards[int(uint32(tid))%len(h.shards)]
}

// shardOf returns the shard owning an extent.
func (h *Heap) shardOf(e *Extent) *heapShard {
	return &h.shards[e.shard]
}

// ctr returns the statistics stripe for a thread (stripe count is a power of
// two, so this is one mask).
func (h *Heap) ctr(tid alloc.ThreadID) *counterStripe {
	return &h.ctrs[int(uint32(tid))&(len(h.ctrs)-1)]
}

// RegisterThread implements alloc.Allocator.
func (h *Heap) RegisterThread() alloc.ThreadID {
	h.tcMu.Lock()
	defer h.tcMu.Unlock()
	old := *h.tcaches.Load()
	nw := make([]*tcache, len(old)+1)
	copy(nw, old)
	nw[len(old)] = newTcache()
	h.tcaches.Store(&nw)
	h.nthreads.Add(1)
	return alloc.ThreadID(len(old))
}

// UnregisterThread flushes the thread's caches back to the shared bins and
// retires the cache: the slot is nilled out (copy-on-write, like
// RegisterThread) so a dead thread's cache does not pin its regions forever.
func (h *Heap) UnregisterThread(tid alloc.ThreadID) {
	tc := h.tcacheFor(tid)
	if tc == nil {
		return
	}
	for c := range tc.bins {
		h.flushItems(c, tc.drainAll(c))
	}
	h.tcMu.Lock()
	defer h.tcMu.Unlock()
	old := *h.tcaches.Load()
	if int(tid) < len(old) && old[tid] == tc {
		nw := make([]*tcache, len(old))
		copy(nw, old)
		nw[tid] = nil
		h.tcaches.Store(&nw)
		h.nthreads.Add(-1)
	}
}

func (h *Heap) tcacheFor(tid alloc.ThreadID) *tcache {
	if !h.cfg.TcacheEnabled {
		return nil
	}
	tcs := *h.tcaches.Load()
	if int(tid) < 0 || int(tid) >= len(tcs) {
		return nil
	}
	return tcs[tid]
}

// Malloc implements alloc.Allocator.
func (h *Heap) Malloc(tid alloc.ThreadID, size uint64) (uint64, error) {
	if size == 0 {
		size = 1
	}
	req := size
	if h.cfg.PadEnd {
		req++
	}
	var addr uint64
	var usable uint64
	if IsSmall(req) {
		class := SizeToClass(req)
		usable = ClassSize(class)
		tc := h.tcacheFor(tid)
		if tc != nil {
			addr = tc.pop(class)
		}
		if addr == 0 {
			var err error
			addr, err = h.smallSlow(h.shardFor(tid), tc, class)
			if err != nil {
				return 0, err
			}
		}
	} else {
		pages := LargePages(req)
		e, err := h.shardFor(tid).arena.allocExtent(int(pages))
		if err != nil {
			return 0, fmt.Errorf("%w: %v", alloc.ErrOutOfMemory, err)
		}
		e.initLarge()
		addr = e.base
		usable = e.size
		h.largeLive.Add(int64(usable))
	}
	c := h.ctr(tid)
	c.allocated.Add(int64(usable))
	c.mallocs.Add(1)
	return addr, nil
}

// AllocBatch implements alloc.Substrate: len(out) same-sized allocations in
// one call. Small classes replay the serial tcache protocol exactly — LIFO
// pops, with each refill pulling a fillTarget run from the shard bin under a
// single bin-lock acquisition — so the produced addresses, the surviving
// cache contents, and the extents' cachemap double-free bits are bit-for-bit
// what len(out) serial Malloc calls would leave. Only the statistics updates
// are coalesced (two stripe adds per batch instead of two per allocation);
// the end state is identical. Large sizes take the serial fallback: every
// large allocation is its own extent carve, with nothing to batch.
func (h *Heap) AllocBatch(tid alloc.ThreadID, size uint64, out []uint64) (int, error) {
	if len(out) == 0 {
		return 0, nil
	}
	if size == 0 {
		size = 1
	}
	req := size
	if h.cfg.PadEnd {
		req++
	}
	if !IsSmall(req) {
		return alloc.AllocBatchSerial(h, tid, size, out)
	}
	class := SizeToClass(req)
	usable := ClassSize(class)
	tc := h.tcacheFor(tid)
	sh := h.shardFor(tid)
	got := 0
	var err error
	for got < len(out) {
		var addr uint64
		if tc != nil {
			addr = tc.pop(class)
		}
		if addr == 0 {
			if addr, err = h.smallSlow(sh, tc, class); err != nil {
				break
			}
		}
		out[got] = addr
		got++
	}
	if got > 0 {
		c := h.ctr(tid)
		c.allocated.Add(int64(usable) * int64(got))
		c.mallocs.Add(uint64(got))
	}
	return got, err
}

// smallSlow refills the tcache from the shard's bin (or allocates one region
// when tcache is disabled).
func (h *Heap) smallSlow(sh *heapShard, tc *tcache, class int) (uint64, error) {
	b := &sh.bins[class]
	want := 1
	if tc != nil {
		want = tc.fillTarget(class)
		if want < 1 {
			want = 1
		}
	}
	var buf []uint64
	var exts []*Extent
	var regs []int32
	if tc != nil {
		if cap(tc.fillAddrs) < want {
			tc.fillAddrs = make([]uint64, want)
			tc.fillExts = make([]*Extent, want)
			tc.fillRegs = make([]int32, want)
		}
		buf, exts, regs = tc.fillAddrs[:want], tc.fillExts[:want], tc.fillRegs[:want]
	} else {
		buf = make([]uint64, want)
		exts = make([]*Extent, want)
		regs = make([]int32, want)
	}
	n, err := b.allocBatch(sh.arena, buf, exts, regs)
	if err != nil || n == 0 {
		return 0, fmt.Errorf("%w: %v", alloc.ErrOutOfMemory, err)
	}
	addr := buf[0]
	if tc != nil {
		for i, a := range buf[1:n] {
			tc.push(class, a, exts[1+i], int(regs[1+i]))
		}
	}
	return addr, nil
}

// Free implements alloc.Allocator.
func (h *Heap) Free(tid alloc.ThreadID, addr uint64) error {
	e := h.pm.lookup(addr)
	if e == nil {
		return fmt.Errorf("%w: %#x", alloc.ErrInvalidFree, addr)
	}
	return h.freeInExtent(tid, e, addr)
}

// FreeResolved implements alloc.Substrate: free via a Resolve-obtained extent
// reference, skipping the page-map lookup. The page map never unmaps a page
// once an extent covers it, so a ref resolved while the allocation was live
// names exactly the extent a fresh lookup would find.
func (h *Heap) FreeResolved(tid alloc.ThreadID, ref alloc.Ref, addr uint64) error {
	e, _ := ref.(*Extent)
	if e == nil {
		return h.Free(tid, addr)
	}
	return h.freeInExtent(tid, e, addr)
}

// freeInExtent frees addr, known to lie in extent e.
func (h *Heap) freeInExtent(tid alloc.ThreadID, e *Extent, addr uint64) error {
	if e.isSlab() {
		return h.freeSmall(tid, e, addr)
	}
	if !e.isLarge() || addr != e.base {
		return fmt.Errorf("%w: %#x", alloc.ErrInvalidFree, addr)
	}
	usable := e.size
	h.shardOf(e).arena.freeExtent(e)
	h.largeLive.Add(-int64(usable))
	c := h.ctr(tid)
	c.allocated.Add(-int64(usable))
	c.frees.Add(1)
	return nil
}

func (h *Heap) freeSmall(tid alloc.ThreadID, e *Extent, addr uint64) error {
	idx := e.regionIndex(addr)
	if e.regionBase(idx) != addr {
		return fmt.Errorf("%w: %#x is interior", alloc.ErrInvalidFree, addr)
	}
	class := int(e.class.Load())
	usable := ClassSize(class)
	tc := h.tcacheFor(tid)
	if tc != nil {
		// O(1) double-free checks: one atomic bit test against every
		// thread's cache (the extent's cachemap), one against the slab
		// freemap.
		if e.regionCached(idx) {
			return fmt.Errorf("%w: %#x", alloc.ErrDoubleFree, addr)
		}
		if e.regionFree(idx) {
			return fmt.Errorf("%w: %#x", alloc.ErrDoubleFree, addr)
		}
		if full := tc.push(class, addr, e, idx); full {
			h.flushItems(class, tc.drainHalf(class))
		}
	} else {
		sh := h.shardOf(e)
		if err := sh.bins[class].freeRegion(sh.arena, e, idx); err != nil {
			return err
		}
	}
	c := h.ctr(tid)
	c.allocated.Add(-int64(usable))
	c.frees.Add(1)
	return nil
}

// flushItems returns drained tcache items of one class to their owning bins.
// The cached items carry their extents, so no page-map lookups are needed;
// items are grouped into runs of the same shard so a flush costs one bin-lock
// acquisition per run, not per item. (A thread mostly frees what it
// allocated, so the common case is a single run.)
func (h *Heap) flushItems(class int, items []tcitem) {
	for i := 0; i < len(items); {
		s := items[i].ext.shard
		j := i + 1
		for j < len(items) && items[j].ext.shard == s {
			j++
		}
		sh := &h.shards[s]
		sh.bins[class].freeItems(sh.arena, items[i:j], nil, true)
		i = j
	}
}

// batchScratch is FreeBatch's reusable working memory. The sweep release
// path calls FreeBatch once per few-hundred-entry batch, thousands of times
// per sweep; allocating the grouping buffers per call made the batched path
// SLOWER than per-item frees purely through GC pressure (measured on
// BenchmarkSweepRelease), so they are pooled.
type batchScratch struct {
	exts     []*Extent
	keys     []int32
	order    []int32
	counts   []int32
	items    []tcitem
	itemIdx  []int32
	itemErrs []error
	release  []*Extent
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// grab sizes the scratch for a batch of n items over nkeys grouping keys.
func (sc *batchScratch) grab(n, nkeys int) {
	if cap(sc.exts) < n {
		sc.exts = make([]*Extent, n)
		sc.keys = make([]int32, n)
		sc.order = make([]int32, n)
	}
	if cap(sc.counts) < nkeys {
		sc.counts = make([]int32, nkeys)
	}
	clear(sc.counts[:nkeys])
}

// put clears the pointer-bearing slices — to capacity, since truncation
// leaves extent pointers alive in the backing arrays and the pool must not
// pin extents across GC cycles — and returns the scratch.
func (sc *batchScratch) put() {
	clear(sc.exts)
	clear(sc.items[:cap(sc.items)])
	clear(sc.itemErrs)
	clear(sc.release[:cap(sc.release)])
	sc.release = sc.release[:0]
	batchScratchPool.Put(sc)
}

// FreeBatch implements alloc.Substrate: free a batch of resolved allocations,
// grouping the batch by owning shard and size class so all regions of one
// class are freed under a single bin-lock acquisition (and all emptied slabs
// and large extents return to each arena under a single arena-lock
// acquisition). errs[i] records each item's verdict, preserving per-item
// double-free detection for the caller's accounting. This is the sweep
// release path: per-item lock round-trips were the dominant cost of
// recycling a large quarantine generation.
func (h *Heap) FreeBatch(tid alloc.ThreadID, refs []alloc.Ref, addrs []uint64, errs []error) {
	n := len(addrs)
	nclasses := NumClasses()
	// One key per (shard, class) pair plus one large-extent key per shard.
	nkeys := len(h.shards) * (nclasses + 1)
	sc := batchScratchPool.Get().(*batchScratch)
	sc.grab(n, nkeys)
	exts, keys, counts := sc.exts[:n], sc.keys[:n], sc.counts[:nkeys]
	valid := 0
	for i, addr := range addrs {
		var e *Extent
		if i < len(refs) {
			e, _ = refs[i].(*Extent)
		}
		if e == nil {
			e = h.pm.lookup(addr)
		}
		if e == nil {
			errs[i] = fmt.Errorf("%w: %#x", alloc.ErrInvalidFree, addr)
			exts[i], keys[i] = nil, -1
			continue
		}
		exts[i] = e
		var k int32
		if e.isSlab() {
			k = e.shard*int32(nclasses) + e.class.Load()
		} else {
			k = int32(len(h.shards)*nclasses) + e.shard
		}
		keys[i] = k
		counts[k]++
		errs[i] = nil
		valid++
	}
	// Group by key with a counting sort — stable by construction, so
	// duplicate frees of the same region keep their program order and the
	// verdicts match a per-item replay.
	order := sc.order[:valid]
	pos := int32(0)
	for k := range counts {
		c := counts[k]
		counts[k] = pos
		pos += c
	}
	for i := 0; i < n; i++ {
		if k := keys[i]; k >= 0 {
			order[counts[k]] = int32(i)
			counts[k]++
		}
	}

	freedBytes := int64(0)
	largeBytes := int64(0)
	freedCount := uint64(0)
	for lo := 0; lo < len(order); {
		hi := lo + 1
		for hi < len(order) && keys[order[hi]] == keys[order[lo]] {
			hi++
		}
		first := exts[order[lo]]
		if first.isSlab() {
			class := int(first.class.Load())
			items, itemIdx := sc.items[:0], sc.itemIdx[:0]
			for _, i := range order[lo:hi] {
				e := exts[i]
				idx := e.regionIndex(addrs[i])
				if e.regionBase(idx) != addrs[i] {
					errs[i] = fmt.Errorf("%w: %#x is interior", alloc.ErrInvalidFree, addrs[i])
					continue
				}
				items = append(items, tcitem{addr: addrs[i], ext: e, reg: int32(idx)})
				itemIdx = append(itemIdx, int32(i))
			}
			sc.items, sc.itemIdx = items, itemIdx
			if cap(sc.itemErrs) < len(items) {
				sc.itemErrs = make([]error, len(items))
			}
			itemErrs := sc.itemErrs[:len(items)]
			sh := h.shardOf(first)
			freed := sh.bins[class].freeItems(sh.arena, items, itemErrs, false)
			for k, i := range itemIdx {
				if err := itemErrs[k]; err != nil {
					errs[i] = fmt.Errorf("%w: %#x", err, addrs[i])
				}
			}
			freedBytes += int64(freed) * int64(ClassSize(class))
			freedCount += uint64(freed)
		} else {
			release := sc.release[:0]
			for _, i := range order[lo:hi] {
				e := exts[i]
				// The CAS claims the extent exactly once: a duplicate
				// free of the same large allocation inside one batch
				// loses the race and reports invalid, as a per-item
				// replay would.
				if addrs[i] != e.base || !e.state.CompareAndSwap(extStateLarge, extStateFree) {
					errs[i] = fmt.Errorf("%w: %#x", alloc.ErrInvalidFree, addrs[i])
					continue
				}
				release = append(release, e)
				freedBytes += int64(e.size)
				largeBytes += int64(e.size)
				freedCount++
			}
			sc.release = release
			h.shardOf(first).arena.freeExtents(release)
		}
		lo = hi
	}
	sc.put()
	if freedCount > 0 {
		c := h.ctr(tid)
		c.allocated.Add(-freedBytes)
		if largeBytes != 0 {
			h.largeLive.Add(-largeBytes)
		}
		c.frees.Add(freedCount)
	}
}

// UsableSize implements alloc.Allocator.
func (h *Heap) UsableSize(addr uint64) uint64 {
	a, ok := h.Lookup(addr)
	if !ok || a.Base != addr {
		return 0
	}
	return a.Size
}

// Lookup returns the live allocation containing addr. It underpins
// MineSweeper's free-interception layer: the quarantine validates and sizes
// incoming frees through it.
func (h *Heap) Lookup(addr uint64) (alloc.Allocation, bool) {
	a, _, ok := h.Resolve(addr)
	return a, ok
}

// Resolve implements alloc.Substrate: Lookup plus the owning extent as an
// opaque ref, so the caller's eventual FreeResolved skips the second
// page-map lookup the seed performed on every intercepted free().
func (h *Heap) Resolve(addr uint64) (alloc.Allocation, alloc.Ref, bool) {
	e := h.pm.lookup(addr)
	if e == nil {
		return alloc.Allocation{}, nil, false
	}
	if e.isSlab() {
		idx := e.regionIndex(addr)
		if e.regionFree(idx) {
			return alloc.Allocation{}, nil, false
		}
		return alloc.Allocation{Base: e.regionBase(idx), Size: e.regSize.Load()}, e, true
	}
	if !e.isLarge() {
		return alloc.Allocation{}, nil, false
	}
	return alloc.Allocation{Base: e.base, Size: e.size, Large: true}, e, true
}

// DecommitExtent releases the physical pages of a live large allocation via
// the extent hooks, leaving the allocation itself live. MineSweeper uses it
// to unmap large quarantined allocations (§4.2); the extent is recommitted by
// the hooks when the arena eventually reuses it.
func (h *Heap) DecommitExtent(base uint64) error {
	e := h.pm.lookup(base)
	if e == nil || !e.isLarge() || e.base != base {
		return fmt.Errorf("%w: %#x is not a live large allocation", alloc.ErrInvalidFree, base)
	}
	a := h.shardOf(e).arena
	a.mu.Lock()
	defer a.mu.Unlock()
	if !e.committed {
		return nil
	}
	if err := h.cfg.Hooks.Decommit(h.space, e.base, e.size); err != nil {
		return err
	}
	e.committed = false
	return nil
}

// Tick implements alloc.Allocator (decay purging, every shard).
func (h *Heap) Tick(now uint64) {
	for s := range h.shards {
		h.shards[s].arena.Tick(now)
	}
}

// PurgeAll decommits all dirty extents now. MineSweeper calls this from the
// sweeper thread after each sweep (§4.5).
func (h *Heap) PurgeAll() {
	for s := range h.shards {
		h.shards[s].arena.PurgeAll()
	}
}

// AllocatedBytes returns live usable bytes (the quarantine threshold's
// denominator component), summed over the counter stripes.
func (h *Heap) AllocatedBytes() uint64 {
	var v int64
	for i := range h.ctrs {
		v += h.ctrs[i].allocated.Load()
	}
	return uint64(v)
}

// dirtyStats sums (committed dirty bytes, dirty extent count) over shards.
func (h *Heap) dirtyStats() (uint64, int) {
	var bytes uint64
	var n int
	for s := range h.shards {
		b, c := h.shards[s].arena.dirtyStats()
		bytes += b
		n += c
	}
	return bytes, n
}

// Stats implements alloc.Allocator. Each counter update lands wholly on one
// stripe and the per-stripe/per-shard figures are summed, so the snapshot
// stays exact under striping and sharding.
func (h *Heap) Stats() alloc.Stats {
	dirtyBytes, ndirty := h.dirtyStats()
	var purges uint64
	for s := range h.shards {
		purges += h.shards[s].arena.purges.Load()
	}
	var mallocs, frees uint64
	for i := range h.ctrs {
		mallocs += h.ctrs[i].mallocs.Load()
		frees += h.ctrs[i].frees.Load()
	}
	return alloc.Stats{
		Allocated:  h.AllocatedBytes(),
		Active:     uint64(h.slabBytes.Load() + h.largeLive.Load()),
		DirtyBytes: dirtyBytes,
		MetaBytes:  h.pm.footprint() + uint64(ndirty)*128,
		Mallocs:    mallocs,
		Frees:      frees,
		Purges:     purges,
	}
}

// Shutdown implements alloc.Allocator. The baseline has no background
// machinery.
func (h *Heap) Shutdown() {}
