// The events-overhead gate behind `make events-overhead`.
//
// Same methodology as the telemetry gate (see telemetry_overhead_test.go for
// why separate bench entries are unreliable here): long-lived process pairs,
// interleaved fixed-iteration chunks, per-side minimum as the floor. Both
// sides keep telemetry attached — the flight recorder's sampled alloc/free
// events ride telemetry's 1-in-N countdown, so the honest question is what
// the recorder adds ON TOP of an observed process, not what telemetry and
// events cost together. The unsampled fast path's only extra work is one
// atomic pointer load and branch per amortised check, so the same 3% budget
// applies.
package minesweeper_test

import (
	"math"
	"os"
	"testing"
	"time"

	minesweeper "minesweeper"
)

// TestEventsOverheadGate fails if attaching the flight recorder to an
// already-telemetered process costs more than 3% on the 64-byte malloc/free
// pair. Skipped unless MS_EVENTS_GATE is set: it spends a few seconds of
// wall-clock timing and its verdict is only meaningful on an otherwise idle
// machine.
func TestEventsOverheadGate(t *testing.T) {
	if os.Getenv("MS_EVENTS_GATE") == "" {
		t.Skip("set MS_EVENTS_GATE=1 (or run make events-overhead) to run the overhead gate")
	}
	const (
		opsPerChunk = 100_000
		chunks      = 30 // interleaved off/on chunks per process pair
		pairs       = 3  // independent process pairs
		maxRatio = 1.03
		// One more attempt than the telemetry gate: the recorder's real
		// cost (~1%) sits closer to the budget than telemetry's (~0%), so
		// a load burst needs less luck to push one measurement over.
		attempts = 4 // re-measure before declaring a regression
	)
	newThread := func(events bool) (*minesweeper.Process, *minesweeper.Thread) {
		p, err := minesweeper.NewProcess(minesweeper.Config{
			Scheme:    minesweeper.SchemeMineSweeper,
			Telemetry: true,
			Events:    events,
		})
		if err != nil {
			t.Fatal(err)
		}
		th, err := p.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		return p, th
	}
	chunk := func(th *minesweeper.Thread) float64 {
		start := time.Now()
		for i := 0; i < opsPerChunk; i++ {
			a, err := th.Malloc(64)
			if err != nil {
				t.Fatal(err)
			}
			if err := th.Free(a); err != nil {
				t.Fatal(err)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / opsPerChunk
	}
	measure := func() (offMin, onMin float64) {
		offMin, onMin = math.Inf(1), math.Inf(1)
		for p := 0; p < pairs; p++ {
			pOff, thOff := newThread(false)
			pOn, thOn := newThread(true)
			// One discarded chunk each: the first chunks pay the cold-heap
			// cost (page faults, tcache fill) that later chunks reuse.
			chunk(thOff)
			chunk(thOn)
			for c := 0; c < chunks; c++ {
				if v := chunk(thOff); v < offMin {
					offMin = v
				}
				if v := chunk(thOn); v < onMin {
					onMin = v
				}
			}
			thOff.Close()
			thOn.Close()
			pOff.Close()
			pOn.Close()
		}
		return offMin, onMin
	}
	// One attempt under budget is evidence enough — an over-budget attempt
	// on a shared host is more often a load burst than a real regression,
	// which would inflate the on-side floor of every attempt.
	var ratio float64
	for a := 0; a < attempts; a++ {
		offMin, onMin := measure()
		ratio = onMin / offMin
		t.Logf("attempt %d: %.1f ns/op (events on) vs %.1f ns/op (off) = %.4fx (limit %.2fx, min over %d pairs x %d interleaved chunks of %d ops)",
			a, onMin, offMin, ratio, maxRatio, pairs, chunks, opsPerChunk)
		if ratio <= maxRatio {
			return
		}
	}
	t.Errorf("events overhead %.4fx exceeds %.2fx budget in %d attempts", ratio, maxRatio, attempts)
}
