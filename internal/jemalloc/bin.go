package jemalloc

import (
	"sync"
	"sync/atomic"

	"minesweeper/internal/alloc"
	"minesweeper/internal/mem"
)

// bin manages the slabs of one small size class within one heap shard: a
// current slab that serves allocations, plus a list of other non-full slabs.
// Fully-free slabs (other than the current one) are returned to the shard
// arena's dirty lists so purging can reclaim them.
type bin struct {
	mu      sync.Mutex
	class   int
	size    uint64
	current *Extent
	nonfull []*Extent
	nslabs  int
	// slabBytes is the heap-wide live-slab byte counter, updated here so
	// callers need not reach under the bin lock for accounting.
	slabBytes *atomic.Int64
}

// pushNonfull appends e to the nonfull list, recording its index on the
// extent so removal is O(1). Caller holds b.mu.
func (b *bin) pushNonfull(e *Extent) {
	e.nonfullIdx = int32(len(b.nonfull))
	b.nonfull = append(b.nonfull, e)
}

// removeNonfull swap-removes e from the nonfull list via its stored index.
// Caller holds b.mu; e must be listed.
func (b *bin) removeNonfull(e *Extent) {
	i := int(e.nonfullIdx)
	last := len(b.nonfull) - 1
	if i != last {
		moved := b.nonfull[last]
		b.nonfull[i] = moved
		moved.nonfullIdx = int32(i)
	}
	b.nonfull[last] = nil
	b.nonfull = b.nonfull[:last]
	e.nonfullIdx = -1
}

// allocBatch fills out[:n] with up to n region addresses — and exts/regs,
// when non-nil, with each region's owning extent and region index — returning
// how many were produced. Batching amortises the bin lock across a whole
// tcache fill, and handing back the extents and indices lets the tcache
// remember them so later flushes need neither page-map lookups nor
// region-size divisions.
func (b *bin) allocBatch(a *arena, out []uint64, exts []*Extent, regs []int32) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	got := 0
	for got < len(out) {
		if b.current == nil || b.current.nfree == 0 {
			if n := len(b.nonfull); n > 0 {
				b.current = b.nonfull[n-1]
				b.nonfull[n-1] = nil
				b.nonfull = b.nonfull[:n-1]
				b.current.nonfullIdx = -1
			} else {
				e, err := a.allocExtent(SlabPages(b.class))
				if err != nil {
					if got > 0 {
						return got, nil
					}
					return 0, err
				}
				e.initSlab(b.class)
				b.nslabs++
				b.slabBytes.Add(int64(SlabPages(b.class) * mem.PageSize))
				b.current = e
			}
		}
		for got < len(out) && b.current.nfree > 0 {
			addr, idx := b.current.popRegion()
			out[got] = addr
			if exts != nil {
				exts[got] = b.current
			}
			if regs != nil {
				regs[got] = int32(idx)
			}
			got++
		}
	}
	return got, nil
}

// freeOneLocked returns one region to its slab. Caller holds b.mu; the extent
// must belong to this bin's class. A fully-freed non-current slab is returned
// for the caller to hand back to the arena after dropping the bin lock.
//
// fromCache distinguishes the two legitimate sources of a free: a tcache
// drain arrives with the region's residency bit still set (the bit is cleared
// here, once the slab owns the region again), while an external free of a
// region that some thread still caches is a double free and is reported
// without touching the slab.
func (b *bin) freeOneLocked(e *Extent, idx int, fromCache bool) (*Extent, error) {
	if e != b.current && e.nfree == e.nregs {
		// A fully-free non-current slab has already been released — by an
		// earlier item of the same batch, or by a racing thread whose
		// arena handback is in flight. A free dispatched a moment later
		// would find the extent no longer a slab, so report what that
		// per-item replay reports.
		return nil, alloc.ErrInvalidFree
	}
	if !fromCache && e.regionCached(idx) {
		return nil, alloc.ErrDoubleFree
	}
	if e.regionFree(idx) {
		return nil, alloc.ErrDoubleFree
	}
	wasFull := e.nfree == 0
	e.pushRegion(idx)
	// The region may arrive from a tcache drain with its residency bit
	// still set; clear it now that the slab owns the region again. A no-op
	// for regions that were never cached.
	if e.cachemap != nil {
		e.uncacheRegion(idx)
	}
	if e == b.current {
		return nil, nil
	}
	if e.nfree == e.nregs {
		// Entirely free: remove from nonfull (it is there unless it was
		// full) and release to the arena.
		if !wasFull {
			b.removeNonfull(e)
		}
		b.nslabs--
		b.slabBytes.Add(-int64(SlabPages(b.class) * mem.PageSize))
		return e, nil
	}
	if wasFull {
		b.pushNonfull(e)
	}
	return nil, nil
}

// freeRegion returns one region to its slab, reporting a double free if the
// region is already free. Fully-free non-current slabs are handed back to the
// arena.
func (b *bin) freeRegion(a *arena, e *Extent, idx int) error {
	b.mu.Lock()
	release, err := b.freeOneLocked(e, idx, true)
	b.mu.Unlock()
	if release != nil {
		a.freeExtent(release)
	}
	return err
}

// freeItems returns a whole batch of this bin's regions under one lock
// acquisition, writing each item's verdict (nil, ErrDoubleFree, or
// ErrInvalidFree for frees into a slab the batch already emptied) to errs[k]
// when errs is non-nil, and returns how many regions were actually freed.
// Slabs emptied by the batch are handed to the arena in one batched call
// after the bin lock is dropped, so a batch of n frees costs one bin-lock
// round-trip plus at most one arena-lock round-trip — not n of each.
func (b *bin) freeItems(a *arena, items []tcitem, errs []error, fromCache bool) int {
	var releases []*Extent
	freed := 0
	b.mu.Lock()
	for k, it := range items {
		release, err := b.freeOneLocked(it.ext, int(it.reg), fromCache)
		if err == nil {
			freed++
		}
		if errs != nil {
			errs[k] = err
		}
		if release != nil {
			releases = append(releases, release)
		}
	}
	b.mu.Unlock()
	a.freeExtents(releases)
	return freed
}
