package figures

import (
	"fmt"
	"io"

	"minesweeper/internal/core"
	"minesweeper/internal/metrics"
	"minesweeper/internal/schemes"
	"minesweeper/internal/workload"
)

// optimisationLadder is the Figure 15/16 configuration sequence: each level
// adds one optimisation in the paper's order (§5.4).
func optimisationLadder() []schemes.Factory {
	return []schemes.Factory{
		msVariant("unoptimised", func(c *core.Config) {
			c.Mode = core.Synchronous
			c.Zeroing = false
			c.Unmapping = false
			c.Purging = false
		}),
		msVariant("+zeroing", func(c *core.Config) {
			c.Mode = core.Synchronous
			c.Unmapping = false
			c.Purging = false
		}),
		msVariant("+unmapping", func(c *core.Config) {
			c.Mode = core.Synchronous
			c.Purging = false
		}),
		msVariant("+concurrency", func(c *core.Config) {
			c.Purging = false
		}),
		msVariant("+purging", func(c *core.Config) {}),
	}
}

// ablationGrid runs the SPEC suite across the ladder.
func (r *Runner) ablationGrid() (map[string]map[string]workload.Comparison, []string, error) {
	ladder := optimisationLadder()
	names := make([]string, len(ladder))
	for i, f := range ladder {
		names[i] = f.Name
	}
	grid := make(map[string]map[string]workload.Comparison)
	for _, prof := range workload.Spec2006() {
		grid[prof.Name] = make(map[string]workload.Comparison)
		for _, f := range ladder {
			c, err := r.ratios(prof, f)
			if err != nil {
				return nil, nil, fmt.Errorf("%s/%s: %w", prof.Name, f.Name, err)
			}
			grid[prof.Name][f.Name] = c
		}
	}
	return grid, names, nil
}

// Fig15OptTime renders Figure 15: run time by optimisation level.
func Fig15OptTime(w io.Writer, r *Runner) error {
	grid, levels, err := r.ablationGrid()
	if err != nil {
		return err
	}
	fprintf(w, "Figure 15: run-time overhead under incremental optimisation levels (§4)\n\n")
	header := append([]string{"benchmark"}, levels...)
	tb := metrics.NewTable(header...)
	for _, name := range workload.Spec2006Names() {
		row := []string{name}
		for _, l := range levels {
			row = append(row, metrics.FmtRatio(grid[name][l].Slowdown))
		}
		tb.AddRow(row...)
	}
	gm := []string{"geomean"}
	for _, l := range levels {
		gm = append(gm, metrics.FmtRatio(geomeanOf(grid, l, slow)))
	}
	tb.AddRow(gm...)
	fprintf(w, "%s\n", tb)
	fprintf(w, "Paper: the sequential (+unmapping) version costs 9.5%% time; concurrency cuts it\n")
	fprintf(w, "to 5.0%%; purging brings the final figure to 5.4%%.\n")
	return nil
}

// Fig16OptMemory renders Figure 16: memory by optimisation level.
func Fig16OptMemory(w io.Writer, r *Runner) error {
	grid, levels, err := r.ablationGrid()
	if err != nil {
		return err
	}
	fprintf(w, "Figure 16: average memory overhead under incremental optimisation levels (§4)\n\n")
	header := append([]string{"benchmark"}, levels...)
	tb := metrics.NewTable(header...)
	for _, name := range workload.Spec2006Names() {
		row := []string{name}
		for _, l := range levels {
			row = append(row, metrics.FmtRatio(grid[name][l].AvgMem))
		}
		tb.AddRow(row...)
	}
	gm := []string{"geomean"}
	for _, l := range levels {
		gm = append(gm, metrics.FmtRatio(geomeanOf(grid, l, avgMem)))
	}
	tb.AddRow(gm...)
	fprintf(w, "%s\n", tb)
	fprintf(w, "Paper: zeroing and unmapping cut catastrophic overheads (gcc exceeded 32 GiB\n")
	fprintf(w, "unoptimised); concurrency raises memory to 1.241; purging recovers it to 1.111.\n")
	return nil
}

// partialVersions is the Figure 17 sequence (§5.5): incremental features from
// bare interception to the full system.
func partialVersions() []schemes.Factory {
	return []schemes.Factory{
		msVariant("base", func(c *core.Config) {
			c.Quarantine = false
			c.Zeroing = false
			c.Unmapping = false
		}),
		msVariant("+unmap+zero", func(c *core.Config) {
			c.Quarantine = false
		}),
		msVariant("+quarantine", func(c *core.Config) {
			c.Mode = core.Synchronous
			c.Sweeping = false
			c.FailedFrees = false
		}),
		msVariant("+concurrency", func(c *core.Config) {
			c.Sweeping = false
			c.FailedFrees = false
		}),
		msVariant("+sweep", func(c *core.Config) {
			c.FailedFrees = false
		}),
		msVariant("+failed-frees", func(c *core.Config) {}),
	}
}

// fig17Benches are the five most-affected benchmarks the paper uses.
var fig17Benches = []string{"dealII", "gcc", "omnetpp", "perlbench", "xalancbmk"}

// Fig17OverheadSources renders Figure 17: where the overheads come from.
func Fig17OverheadSources(w io.Writer, r *Runner) error {
	versions := partialVersions()
	fprintf(w, "Figure 17: sources of overhead — partial versions on the five most affected benchmarks (§5.5)\n\n")

	renderGrid := func(get func(workload.Comparison) float64) (*metrics.Table, error) {
		header := []string{"benchmark"}
		for _, v := range versions {
			header = append(header, v.Name)
		}
		tb := metrics.NewTable(header...)
		sums := make(map[string][]float64)
		for _, bench := range fig17Benches {
			prof, ok := workload.FindProfile(bench)
			if !ok {
				return nil, fmt.Errorf("fig17: unknown bench %s", bench)
			}
			row := []string{bench}
			for _, v := range versions {
				c, err := r.ratios(prof, v)
				if err != nil {
					return nil, err
				}
				row = append(row, metrics.FmtRatio(get(c)))
				sums[v.Name] = append(sums[v.Name], get(c))
			}
			tb.AddRow(row...)
		}
		gm := []string{"geomean"}
		for _, v := range versions {
			gm = append(gm, metrics.FmtRatio(metrics.Geomean(sums[v.Name])))
		}
		tb.AddRow(gm...)
		return tb, nil
	}

	fprintf(w, "(a) time\n\n")
	tb, err := renderGrid(slow)
	if err != nil {
		return err
	}
	fprintf(w, "%s\n", tb)
	fprintf(w, "(b) memory\n\n")
	tb, err = renderGrid(avgMem)
	if err != nil {
		return err
	}
	fprintf(w, "%s\n", tb)
	fprintf(w, "Paper (these 5 benchmarks): base overheads are negligible (1.1%% time);\n")
	fprintf(w, "unmapping+zeroing costs time but saves memory; quarantining adds the bulk of\n")
	fprintf(w, "both (delay-of-reuse); the remaining features add memory up to 1.394.\n")
	return nil
}
