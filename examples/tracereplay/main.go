// tracereplay records an allocation trace and replays it under every scheme,
// comparing peak memory and sweep behaviour — the "experiment customisation"
// workflow from the paper's artifact appendix (§A.7): the same allocation
// profile, different LD_PRELOADed allocator.
//
// Run with:
//
//	go run ./examples/tracereplay
package main

import (
	"fmt"
	"log"
	"time"

	"minesweeper/internal/mem"
	"minesweeper/internal/schemes"
	"minesweeper/internal/sim"
	"minesweeper/internal/trace"
)

func main() {
	// Record a mixed churn trace: 60k events over a 3000-object window.
	tr := trace.Record(60_000, 3000, 8192, 42)
	st := tr.Stats()
	fmt.Printf("trace: %d events, %d mallocs, peak live %.1f MiB\n\n",
		len(tr.Events), st.Mallocs, float64(st.PeakLiveBytes)/(1<<20))

	fmt.Printf("%-20s %10s %12s %8s %8s\n", "scheme", "wall", "peak rss", "sweeps", "failed")
	for _, kind := range []schemes.Kind{
		schemes.Baseline, schemes.MineSweeper, schemes.MineSweeperMostly,
		schemes.MarkUs, schemes.FFMalloc, schemes.Scudo,
		schemes.Oscar, schemes.DangSan, schemes.PSweeper, schemes.CRCount,
	} {
		space := mem.NewAddressSpace()
		world := sim.NewWorld()
		heap, err := schemes.New(kind).Build(space, world)
		if err != nil {
			log.Fatal(err)
		}
		prog, err := sim.NewProgram(space, heap, world)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := trace.Replay(tr, prog)
		wall := time.Since(start)
		heap.Shutdown()
		if err != nil {
			log.Fatal(err)
		}
		hst := heap.Stats()
		fmt.Printf("%-20s %10s %10.1fMiB %8d %8d\n",
			kind, wall.Round(time.Millisecond),
			float64(res.PeakRSS)/(1<<20), hst.Sweeps, hst.FailedFrees)
	}
	fmt.Println("\nSame trace, different allocator: quarantining schemes defer reuse")
	fmt.Println("(higher peak RSS, sweeps > 0); FFMalloc trades address-space growth instead.")
}
