// Command msstat is a one-shot telemetry reporter, the simulated analogue of
// pointing a stats tool at a process's /debug/vars. It either renders a
// snapshot previously captured with msrun -telemetry-json, or runs a profile
// itself with telemetry attached and reports what the run recorded.
//
// Usage:
//
//	msstat -in snap.json            # render a captured snapshot
//	msstat -in snap.json -json      # normalise/validate: re-emit as JSON
//	msstat -bench espresso -scheme minesweeper [-scale 8]   # capture + report
//	msstat -bench pressure -budget 64M [-governor aimd]     # governed capture
//	msstat -diff old.json new.json  # delta between two snapshots of one run
//	msstat -events flight.msev [-chrome trace.json]   # render a flight dump
//	msstat -watch -addr :8844 [-interval 500ms] [-count 10]  # live view
//	msstat -watch -addr :8844 -addr :8845     # tail several tenants side by side
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"minesweeper/internal/events"
	"minesweeper/internal/metrics"
	"minesweeper/internal/schemes"
	"minesweeper/internal/telemetry"
	"minesweeper/internal/workload"
)

func main() {
	in := flag.String("in", "", "read a telemetry snapshot JSON file instead of running")
	bench := flag.String("bench", "", "benchmark profile to run with telemetry attached")
	scheme := flag.String("scheme", "minesweeper", "scheme to run the profile under")
	scale := flag.Int("scale", 1, "divide the op budget by this factor")
	asJSON := flag.Bool("json", false, "emit the snapshot as JSON instead of text")
	budgetFlag := flag.String("budget", "", "resident-memory budget for the adaptive governor, e.g. 64M (minesweeper schemes only)")
	governor := flag.String("governor", "", "governor policy: aimd or static (defaults to aimd when -budget is set)")
	diff := flag.String("diff", "", "diff two telemetry snapshots: -diff old.json new.json (the second file is the positional argument)")
	eventsIn := flag.String("events", "", "render a flight-recorder dump (.msev) as a text timeline")
	chromeOut := flag.String("chrome", "", "with -events: also convert the dump to Chrome trace-event JSON at this path (chrome://tracing, Perfetto)")
	watch := flag.Bool("watch", false, "poll a live msrun -events-addr server and render a refreshing view")
	var addrs addrList
	flag.Var(&addrs, "addr", "server address for -watch (host:port or full URL); repeat to tail several tenants side by side (default 127.0.0.1:8844)")
	interval := flag.Duration("interval", 500*time.Millisecond, "poll interval for -watch")
	count := flag.Int("count", 0, "number of polls for -watch (0 = until the server goes away)")
	flag.Parse()

	switch {
	case *eventsIn != "":
		renderFlightDump(*eventsIn, *chromeOut)
		return
	case *watch:
		if len(addrs) == 0 {
			addrs = addrList{"127.0.0.1:8844"}
		}
		if len(addrs) == 1 {
			watchEvents(addrs[0], *interval, *count)
		} else {
			watchEventsMulti(addrs, *interval, *count)
		}
		return
	case *diff != "":
		newer := flag.Arg(0)
		if newer == "" {
			fatal(fmt.Errorf("-diff needs the second snapshot as a positional argument: msstat -diff old.json new.json"))
		}
		diffSnapshots(*diff, newer)
		return
	}

	if *in != "" && (*budgetFlag != "" || *governor != "") {
		fatal(fmt.Errorf("-budget/-governor only apply when running a profile with -bench, not with -in"))
	}

	var snap telemetry.Snapshot
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		snap, err = telemetry.ReadSnapshot(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("reading %s: %w", *in, err))
		}
	case *bench != "":
		prof, ok := workload.FindProfile(*bench)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q", *bench))
		}
		factory, ok := schemeFor(*scheme)
		if !ok {
			fatal(fmt.Errorf("unknown scheme %q", *scheme))
		}
		if *budgetFlag != "" || *governor != "" {
			budget, err := metrics.ParseSize(*budgetFlag)
			if err != nil {
				fatal(fmt.Errorf("-budget: %w", err))
			}
			factory, err = schemes.GovernedByName(*scheme, budget, *governor)
			if err != nil {
				fatal(err)
			}
		}
		reg := telemetry.NewRegistry(telemetry.DefaultRingCap)
		if _, err := workload.Run(prof, factory, workload.Options{
			ScaleDiv:  *scale,
			Telemetry: reg,
		}); err != nil {
			fatal(err)
		}
		snap = reg.Snapshot()
	default:
		fmt.Fprintln(os.Stderr, "msstat: one of -in or -bench is required")
		flag.Usage()
		os.Exit(2)
	}

	var err error
	if *asJSON {
		err = snap.WriteJSON(os.Stdout)
	} else {
		err = snap.WriteText(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

func schemeFor(name string) (schemes.Factory, bool) {
	for _, k := range []schemes.Kind{
		schemes.Baseline, schemes.MineSweeper, schemes.MineSweeperMostly,
		schemes.MarkUs, schemes.FFMalloc, schemes.Scudo,
		schemes.Oscar, schemes.DangSan, schemes.PSweeper, schemes.CRCount,
	} {
		if k.String() == name {
			return schemes.New(k), true
		}
	}
	return schemes.Factory{}, false
}

// renderFlightDump reads an MSEV flight dump, checks its sweep spans nest
// correctly, renders the merged timeline, and optionally converts it to a
// Chrome trace file.
func renderFlightDump(path, chromePath string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	d, _, err := events.ReadDump(f)
	f.Close()
	if err != nil {
		fatal(fmt.Errorf("reading %s: %w", path, err))
	}
	if err := events.ValidateSpans(d); err != nil {
		fatal(fmt.Errorf("%s: malformed spans: %w", path, err))
	}
	if err := events.WriteTimeline(os.Stdout, d); err != nil {
		fatal(err)
	}
	if chromePath == "" {
		return
	}
	cf, err := os.Create(chromePath)
	if err != nil {
		fatal(err)
	}
	defer cf.Close()
	if err := events.WriteChromeTrace(cf, d); err != nil {
		fatal(fmt.Errorf("writing %s: %w", chromePath, err))
	}
	fmt.Printf("\nchrome trace written to %s (load in chrome://tracing or ui.perfetto.dev)\n", chromePath)
}

// watchEvents polls an msrun -events-addr server and prints one status line
// per tick: pressure level, in-flight sweep phase, recent pauses, and the
// volume of fresh events since the previous tick. It exits cleanly when the
// server goes away (the run ended), and fails only if the very first poll
// cannot connect.
// addrList lets -addr repeat so -watch can tail several tenants side by
// side. With a single (or defaulted) address the behaviour and output are
// exactly the historical single-target ones.
type addrList []string

func (a *addrList) String() string { return strings.Join(*a, ",") }

func (a *addrList) Set(v string) error {
	*a = append(*a, v)
	return nil
}

func watchEvents(addr string, interval time.Duration, count int) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	url := strings.TrimRight(addr, "/") + "/events/state"
	var after uint64
	for tick := 0; count == 0 || tick < count; tick++ {
		if tick > 0 {
			time.Sleep(interval)
		}
		st, err := fetchState(fmt.Sprintf("%s?after=%d", url, after))
		if err != nil {
			if tick == 0 {
				fatal(fmt.Errorf("connecting to %s: %w", url, err))
			}
			fmt.Println("msstat: server gone (run finished)")
			return
		}
		fresh := 0
		for _, b := range st.Batches {
			fresh += len(b.Events)
			for _, e := range b.Events {
				if e.Nanos > after {
					after = e.Nanos
				}
			}
		}
		fmt.Println(formatState(st, fresh))
	}
}

// watchEventsMulti tails several tenants side by side: one line per live
// target per tick, each prefixed with its address. A target that cannot be
// reached on the very first tick is fatal (same contract as the single-addr
// path); one that disappears mid-watch is reported once and dropped, and the
// watch ends when every target is gone.
func watchEventsMulti(addrs []string, interval time.Duration, count int) {
	type target struct {
		addr  string
		url   string
		after uint64
		gone  bool
	}
	width := 0
	targets := make([]*target, len(addrs))
	for i, a := range addrs {
		full := a
		if !strings.Contains(full, "://") {
			full = "http://" + full
		}
		targets[i] = &target{addr: a, url: strings.TrimRight(full, "/") + "/events/state"}
		if len(a) > width {
			width = len(a)
		}
	}
	live := len(targets)
	for tick := 0; (count == 0 || tick < count) && live > 0; tick++ {
		if tick > 0 {
			time.Sleep(interval)
		}
		for _, tg := range targets {
			if tg.gone {
				continue
			}
			st, err := fetchState(fmt.Sprintf("%s?after=%d", tg.url, tg.after))
			if err != nil {
				if tick == 0 {
					fatal(fmt.Errorf("connecting to %s: %w", tg.url, err))
				}
				fmt.Printf("%-*s  msstat: server gone (run finished)\n", width, tg.addr)
				tg.gone = true
				live--
				continue
			}
			fresh := 0
			for _, b := range st.Batches {
				fresh += len(b.Events)
				for _, e := range b.Events {
					if e.Nanos > tg.after {
						tg.after = e.Nanos
					}
				}
			}
			fmt.Printf("%-*s  %s\n", width, tg.addr, formatState(st, fresh))
		}
	}
}

// fetchState does one /events/state poll.
func fetchState(url string) (events.State, error) {
	resp, err := http.Get(url)
	if err != nil {
		return events.State{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return events.State{}, fmt.Errorf("server returned %s", resp.Status)
	}
	var st events.State
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return events.State{}, err
	}
	return st, nil
}

// formatState renders one -watch tick as a single line.
func formatState(st events.State, fresh int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "+%-9s", time.Duration(st.NowNanos).Round(time.Millisecond))
	if st.Level != "" {
		fmt.Fprintf(&sb, " level=%-8s", st.Level)
	}
	phase := st.Phase
	if phase == "" {
		phase = "idle"
	}
	fmt.Fprintf(&sb, " sweep=%-8s sweeps=%-4d trips=%d new-events=%d", phase, st.SweepsTotal, st.Trips, fresh)
	if n := len(st.RecentPauses); n > 0 {
		show := st.RecentPauses
		if n > 3 {
			show = show[n-3:]
		}
		parts := make([]string, 0, len(show))
		for _, p := range show {
			parts = append(parts, fmt.Sprintf("%s %s", p.Kind, time.Duration(p.Nanos)))
		}
		fmt.Fprintf(&sb, "  pauses: %s", strings.Join(parts, ", "))
	}
	return sb.String()
}

// diffSnapshots renders the delta between two telemetry snapshots of the
// same registry: interval, sweep progress, histogram count/latency movement,
// and gauge movement. Snapshot order is fixed up via CapturedAtNanos, so the
// arguments can be given either way round.
func diffSnapshots(oldPath, newPath string) {
	a, err := readSnapshotFile(oldPath)
	if err != nil {
		fatal(err)
	}
	b, err := readSnapshotFile(newPath)
	if err != nil {
		fatal(err)
	}
	if b.CapturedAtNanos < a.CapturedAtNanos {
		a, b = b, a
		oldPath, newPath = newPath, oldPath
	}
	dt := time.Duration(b.CapturedAtNanos - a.CapturedAtNanos)
	secs := dt.Seconds()
	fmt.Printf("diff %s -> %s\n", oldPath, newPath)
	fmt.Printf("interval: %s (sweep seq %d -> %d)\n", dt.Round(time.Millisecond), a.SweepSeq, b.SweepSeq)
	rate := ""
	if secs > 0 {
		rate = fmt.Sprintf(" (%.1f/s)", float64(b.SweepsTotal-a.SweepsTotal)/secs)
	}
	fmt.Printf("sweeps: %d -> %d, +%d%s\n", a.SweepsTotal, b.SweepsTotal, b.SweepsTotal-a.SweepsTotal, rate)

	old := make(map[string]telemetry.HistogramSnapshot, len(a.Histograms))
	for _, h := range a.Histograms {
		old[h.Name] = h
	}
	tb := metrics.NewTable("histogram", "count", "+count", "rate/s", "p99(new)")
	for _, h := range b.Histograms {
		prev := old[h.Name]
		delta := int64(h.Count) - int64(prev.Count)
		r := "-"
		if secs > 0 {
			r = fmt.Sprintf("%.1f", float64(delta)/secs)
		}
		p99 := "-"
		if h.Count > 0 {
			p99 = "<" + time.Duration(h.Quantile(0.99)).String()
		}
		tb.AddRow(h.Name, fmt.Sprint(h.Count), fmt.Sprintf("%+d", delta), r, p99)
	}
	fmt.Print("\n" + tb.String())

	oldG := make(map[string]uint64, len(a.Gauges))
	for _, g := range a.Gauges {
		oldG[g.Name] = g.Value
	}
	if len(b.Gauges) > 0 {
		tb := metrics.NewTable("gauge", "old", "new", "delta")
		for _, g := range b.Gauges {
			prev := oldG[g.Name]
			tb.AddRow(g.Name, fmt.Sprint(prev), fmt.Sprint(g.Value),
				fmt.Sprintf("%+d", int64(g.Value)-int64(prev)))
		}
		fmt.Print("\n" + tb.String())
	}
}

// readSnapshotFile loads one telemetry snapshot JSON file.
func readSnapshotFile(path string) (telemetry.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return telemetry.Snapshot{}, err
	}
	defer f.Close()
	s, err := telemetry.ReadSnapshot(f)
	if err != nil {
		return telemetry.Snapshot{}, fmt.Errorf("reading %s: %w", path, err)
	}
	return s, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "msstat:", err)
	os.Exit(1)
}
