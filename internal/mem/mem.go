// Package mem implements the simulated virtual-memory substrate that every
// allocator in this repository runs on.
//
// The real MineSweeper system operates on a Linux process: it sweeps the
// process address space word by word, releases physical pages with madvise,
// protects quarantined pages with mprotect, and re-checks modified pages via
// the kernel's soft-dirty PTE mechanism. Go programs have none of those
// facilities, so this package provides a functional stand-in: a sparse 64-bit
// address space made of regions, each backed by word-granular storage with
// per-page residency, protection and soft-dirty state.
//
// Storage is word-granular ([]uint64) rather than byte-granular, and all word
// accesses go through sync/atomic. This makes the concurrent sweeper race-free
// at the Go level while modelling exactly what the paper's sweeper does: read
// every aligned 64-bit word of mapped memory while the mutator keeps running.
package mem

import "fmt"

// Fundamental geometry of the simulated machine. These mirror the paper's
// setup: 4 KiB pages, 64-bit words, and a 16-byte (128-bit) smallest
// allocation granule which sets the shadow-map resolution.
const (
	// PageShift is log2(PageSize).
	PageShift = 12
	// PageSize is the size of a virtual-memory page in bytes.
	PageSize = 1 << PageShift
	// WordSize is the machine word size in bytes. Pointers occupy one word.
	WordSize = 8
	// WordsPerPage is the number of 64-bit words in one page.
	WordsPerPage = PageSize / WordSize
	// Granule is the smallest allocation granule in bytes (the paper's
	// "one bit per every 128 bits" shadow-map resolution).
	Granule = 16
)

// Prot is a page-protection mask, mirroring mmap/mprotect protections.
type Prot uint8

// Protection bits.
const (
	// ProtNone forbids all access (like PROT_NONE).
	ProtNone Prot = 0
	// ProtRead permits loads.
	ProtRead Prot = 1 << 0
	// ProtWrite permits stores.
	ProtWrite Prot = 1 << 1
	// ProtRW permits loads and stores.
	ProtRW = ProtRead | ProtWrite
)

// String returns the conventional rwx-style rendering of p.
func (p Prot) String() string {
	b := [2]byte{'-', '-'}
	if p&ProtRead != 0 {
		b[0] = 'r'
	}
	if p&ProtWrite != 0 {
		b[1] = 'w'
	}
	return string(b[:])
}

// Kind classifies what a region of the address space is used for. The sweeper
// uses kinds to decide what constitutes "program memory" (heap, stacks and
// globals are swept; nothing else is mapped in this model).
type Kind uint8

// Region kinds.
const (
	// KindHeap is allocator-managed heap memory.
	KindHeap Kind = iota
	// KindStack is a mutator thread's simulated stack.
	KindStack
	// KindGlobals is the program's simulated global/static data segment.
	KindGlobals
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindHeap:
		return "heap"
	case KindStack:
		return "stack"
	case KindGlobals:
		return "globals"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// FaultCause identifies why a memory access faulted.
type FaultCause uint8

// Fault causes.
const (
	// CauseUnmapped means no region contains the address.
	CauseUnmapped FaultCause = iota
	// CauseNotResident means the page's physical backing was decommitted.
	CauseNotResident
	// CauseProtection means the page protection forbade the access.
	CauseProtection
	// CauseMisaligned means a word access was not word-aligned.
	CauseMisaligned
)

// String returns the cause's name.
func (c FaultCause) String() string {
	switch c {
	case CauseUnmapped:
		return "unmapped"
	case CauseNotResident:
		return "not-resident"
	case CauseProtection:
		return "protection"
	case CauseMisaligned:
		return "misaligned"
	default:
		return fmt.Sprintf("FaultCause(%d)", uint8(c))
	}
}

// Fault is the simulated equivalent of a SIGSEGV: an invalid memory access.
// The paper relies on faults for its guarantees — an access to an unmapped
// quarantined page "results in a memory-protection violation, thus immediate
// clean termination".
type Fault struct {
	// Addr is the faulting virtual address.
	Addr uint64
	// Write reports whether the access was a store.
	Write bool
	// Cause identifies why the access failed.
	Cause FaultCause
}

// Error implements the error interface.
func (f *Fault) Error() string {
	op := "load"
	if f.Write {
		op = "store"
	}
	return fmt.Sprintf("mem: fault: %s at %#x (%s)", op, f.Addr, f.Cause)
}

// PageFloor rounds addr down to a page boundary.
func PageFloor(addr uint64) uint64 { return addr &^ (PageSize - 1) }

// PageCeil rounds addr up to a page boundary.
func PageCeil(addr uint64) uint64 { return (addr + PageSize - 1) &^ (PageSize - 1) }

// WordAligned reports whether addr is 8-byte aligned.
func WordAligned(addr uint64) bool { return addr&(WordSize-1) == 0 }
