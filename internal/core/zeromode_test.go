package core

import (
	"errors"
	"testing"

	"minesweeper/internal/alloc"
	"minesweeper/internal/control"
)

// zeroModeConfigs returns the two zeroing configurations the oracle tests
// run under; everything else matches testConfig except the ring capacity,
// which is widened so deferred zeroing actually defers (BufferCap 1 would
// drain — and therefore zero — on every free).
func zeroModeConfigs() map[string]Config {
	cfgs := make(map[string]Config)
	for _, zm := range []ZeroMode{ZeroImmediate, ZeroDeferred} {
		cfg := testConfig()
		cfg.BufferCap = 16
		cfg.ZeroMode = zm
		cfg.Purging = true
		cfg.Unmapping = true
		cfgs[zm.String()] = cfg
	}
	return cfgs
}

// TestAllocZeroOracle is the end-to-end oracle for the known-zero map and
// both zeroing modes: across repeated malloc/write/free/sweep/purge cycles —
// including large allocations whose pages are decommitted in quarantine and
// recommitted on reuse — every chunk Alloc hands back must read as all
// zeros. A page whose known-zero bit survived where stale data lives would
// fail here (a stale bit would make Zero/Commit elide a scrub it still
// owed); so would a zeroing pass that never ran.
func TestAllocZeroOracle(t *testing.T) {
	sizes := []uint64{48, 256, 2048, 128 << 10} // last one is a large, unmappable extent
	for name, cfg := range zeroModeConfigs() {
		t.Run(name, func(t *testing.T) {
			h, tid := newTestHeap(t, cfg)
			for cycle := 0; cycle < 4; cycle++ {
				var addrs []uint64
				for i, size := range sizes {
					for k := 0; k < 8; k++ {
						a, err := h.Malloc(tid, size)
						if err != nil {
							t.Fatal(err)
						}
						// The returned chunk must be zero before we dirty it.
						for off := uint64(0); off < size; off += 8 {
							v, err := h.space.Load64(a + off)
							if err != nil {
								t.Fatalf("cycle %d size %d: Load64(%#x): %v", cycle, size, a+off, err)
							}
							if v != 0 {
								t.Fatalf("cycle %d size %d: Alloc returned non-zero word %#x at %#x+%#x",
									cycle, size, v, a, off)
							}
						}
						// Dirty every page of the chunk so the next cycle's
						// zeroing has real work to do (and a wrongly surviving
						// known-zero bit has real stale data to leak).
						for off := uint64(0); off < size; off += 512 {
							if err := h.space.Store64(a+off, uint64(cycle*1000+i*10+k)+0xdead); err != nil {
								t.Fatal(err)
							}
						}
						addrs = append(addrs, a)
					}
				}
				for _, a := range addrs {
					if err := h.Free(tid, a); err != nil {
						t.Fatal(err)
					}
				}
				h.FlushThread(tid)
				h.Sweep() // releases everything and purges (cfg.Purging)
			}
		})
	}
}

// TestZeroModeQuarantineSemantics checks the quarantine-visible behaviours
// deferred zeroing must not change: membership (Contains) after a drain, and
// double-free detection in both debug and absorbing modes.
func TestZeroModeQuarantineSemantics(t *testing.T) {
	for name, cfg := range zeroModeConfigs() {
		t.Run(name, func(t *testing.T) {
			h, tid := newTestHeap(t, cfg)
			a, err := h.Malloc(tid, 256)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Free(tid, a); err != nil {
				t.Fatal(err)
			}
			h.FlushThread(tid)
			if !h.q.Contains(a) {
				t.Fatalf("freed+drained %#x not in quarantine membership", a)
			}
			// Absorbing mode: a second free is silently deduplicated at
			// drain time; the entry must not be double-released.
			if err := h.Free(tid, a); err != nil {
				t.Fatalf("absorbing double free returned %v", err)
			}
			h.FlushThread(tid)
			h.Sweep()
			if h.q.Contains(a) {
				t.Fatalf("%#x still quarantined after sweep", a)
			}
		})
		t.Run(name+"/debug", func(t *testing.T) {
			cfg := cfg
			cfg.DebugDoubleFree = true
			h, tid := newTestHeap(t, cfg)
			a, err := h.Malloc(tid, 256)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Free(tid, a); err != nil {
				t.Fatal(err)
			}
			if err := h.Free(tid, a); !errors.Is(err, alloc.ErrDoubleFree) {
				t.Fatalf("debug double free returned %v, want ErrDoubleFree", err)
			}
		})
	}
}

// TestZeroDeferredWindow pins the semantic difference the modes trade on:
// immediately after free() returns, ZeroImmediate guarantees a benign
// dangling read sees zeros, while ZeroDeferred may expose the stale bytes
// until the ring drains — and after the drain both modes read zero. The
// deferred window is bounded by the ring: at most BufferCap frees.
func TestZeroDeferredWindow(t *testing.T) {
	for name, cfg := range zeroModeConfigs() {
		t.Run(name, func(t *testing.T) {
			h, tid := newTestHeap(t, cfg)
			a, err := h.Malloc(tid, 256)
			if err != nil {
				t.Fatal(err)
			}
			const sentinel = 0x5a5a5a5a5a5a5a5a
			if err := h.space.Store64(a, sentinel); err != nil {
				t.Fatal(err)
			}
			if err := h.Free(tid, a); err != nil {
				t.Fatal(err)
			}
			v, err := h.space.Load64(a)
			if err != nil {
				t.Fatal(err)
			}
			switch cfg.ZeroMode {
			case ZeroImmediate:
				if v != 0 {
					t.Fatalf("immediate mode: dangling read right after free = %#x, want 0", v)
				}
			case ZeroDeferred:
				if v != sentinel {
					t.Fatalf("deferred mode: dangling read before drain = %#x, want the stale sentinel", v)
				}
			}
			h.FlushThread(tid) // drain: the deferred batch zero runs here
			if v, _ := h.space.Load64(a); v != 0 {
				t.Fatalf("dangling read after drain = %#x, want 0 in both modes", v)
			}
			if cfg.ZeroMode == ZeroDeferred && h.deferredZeroBytes.Load() == 0 {
				t.Fatal("deferred mode drained without counting deferred-zeroed bytes")
			}
		})
	}
}

// TestZeroDeferredBoundedByRing fills the ring to one short of capacity and
// checks every pushed-but-undrained free still holds stale bytes, then that
// the watermark/capacity drain scrubs all of them: the stale window is the
// ring, never more.
func TestZeroDeferredBoundedByRing(t *testing.T) {
	cfg := testConfig()
	cfg.BufferCap = 8
	cfg.ZeroMode = ZeroDeferred
	h, tid := newTestHeap(t, cfg)
	var addrs []uint64
	for i := 0; i < 5; i++ { // under the 3/4 watermark of 6, no tick drain at 16-op interval yet
		a, err := h.Malloc(tid, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.space.Store64(a, uint64(i)+1); err != nil {
			t.Fatal(err)
		}
		if err := h.Free(tid, a); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	stale := 0
	for i, a := range addrs {
		v, err := h.space.Load64(a)
		if err != nil {
			t.Fatal(err)
		}
		if v == uint64(i)+1 {
			stale++
		}
	}
	if stale == 0 {
		t.Fatal("no ring-resident free held stale bytes; deferral never engaged")
	}
	h.FlushThread(tid)
	for _, a := range addrs {
		if v, _ := h.space.Load64(a); v != 0 {
			t.Fatalf("%#x still stale after drain", a)
		}
	}
	if got, want := h.deferredZeroBytes.Load(), uint64(len(addrs)*64); got < want {
		t.Fatalf("deferred-zero accounting %d bytes, want >= %d", got, want)
	}
}

// TestGovernorSteersZeroDeferred drives a governed deferred-mode heap's
// steering switch directly through the decision path: a Critical decision
// must flip the cached deferZero off (frees zero immediately again), and a
// Nominal recovery must restore the configured deferral.
func TestGovernorSteersZeroDeferred(t *testing.T) {
	cfg := testConfig()
	cfg.BufferCap = 16
	cfg.ZeroMode = ZeroDeferred
	base := control.Knobs{
		SweepThreshold:    cfg.SweepThreshold,
		UnmappedFactor:    cfg.UnmappedFactor,
		PauseThreshold:    cfg.PauseThreshold,
		Helpers:           cfg.Helpers,
		RescanBudgetPages: cfg.RescanBudgetPages,
		ZeroDeferred:      true,
	}
	cfg.Control = control.NewPlane(control.Config{
		Base:   base,
		Budget: 1, // one byte: any allocation at all is Critical pressure
		Policy: control.NewAIMD(),
	})
	h, tid := newTestHeap(t, cfg)
	if !h.deferZero.Load() {
		t.Fatal("deferred-mode heap built with deferZero off")
	}
	// Drive allocations and a sweep so the plane observes Critical pressure.
	for i := 0; i < 32; i++ {
		a, err := h.Malloc(tid, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Free(tid, a); err != nil {
			t.Fatal(err)
		}
	}
	h.FlushThread(tid)
	h.Sweep()
	if h.ctl.Level() != control.Critical {
		t.Fatalf("pressure level %v under a 1-byte budget, want critical", h.ctl.Level())
	}
	if h.deferZero.Load() {
		t.Fatal("Critical decision did not switch the heap back to immediate zeroing")
	}
	// With deferral steered off, a free's bytes are scrubbed before any drain.
	a, err := h.Malloc(tid, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.space.Store64(a, 0xbeef); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(tid, a); err != nil {
		t.Fatal(err)
	}
	if v, _ := h.space.Load64(a); v != 0 {
		t.Fatalf("steered-immediate free left stale word %#x", v)
	}
}
