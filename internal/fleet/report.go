package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"minesweeper/internal/metrics"
	"minesweeper/internal/telemetry"
)

// LatencyQuantiles is one histogram's tail summary in nanoseconds (bucket
// upper bounds, the same resolution msstat and the pause gate report).
type LatencyQuantiles struct {
	Count uint64 `json:"count"`
	P50   uint64 `json:"p50_ns"`
	P99   uint64 `json:"p99_ns"`
	P999  uint64 `json:"p999_ns"`
}

func quantilesOf(s telemetry.HistogramSnapshot) LatencyQuantiles {
	return LatencyQuantiles{Count: s.Count, P50: s.P50, P99: s.P99, P999: s.P999}
}

// TenantReport is one tenant's slice of the fleet report.
type TenantReport struct {
	ID       int    `json:"id"`
	Class    string `json:"class"`
	Priority int    `json:"priority"`
	Departed bool   `json:"departed,omitempty"`

	Floor    uint64 `json:"floor"`
	Budget   uint64 `json:"budget"`    // final rail
	MinGrant uint64 `json:"min_grant"` // smallest rail ever published
	PeakRSS  uint64 `json:"peak_rss"`

	Mallocs uint64 `json:"mallocs"`
	Frees   uint64 `json:"frees"`

	Malloc LatencyQuantiles `json:"malloc"`
	Free   LatencyQuantiles `json:"free"`
	Pause  LatencyQuantiles `json:"pause"`

	Throttles    uint64 `json:"throttles"`
	StarveAverts uint64 `json:"starve_averts"`
	Level        string `json:"level"`
	Err          string `json:"err,omitempty"`
}

// FloorHonoured reports whether every rail ever published to this tenant
// was at least its floor — the starvation guarantee, checked rather than
// assumed.
func (tr TenantReport) FloorHonoured() bool { return tr.MinGrant >= tr.Floor }

// Report is the fleet-wide outcome of one Host.Run: per-tenant telemetry
// plus host aggregates (bucket-merged histograms, so host quantiles are
// exact over the union of samples, not averages of averages).
type Report struct {
	HostBudget   uint64        `json:"host_budget"`
	PeakRSS      uint64        `json:"peak_rss"`
	AvgRSS       uint64        `json:"avg_rss"`
	TenantCount  int           `json:"tenant_count"`
	Ticks        int           `json:"ticks"`
	Breaches     uint64        `json:"breaches"`
	Rebalances   uint64        `json:"rebalances"`
	LevelChanges uint64        `json:"level_changes"`
	Level        string        `json:"level"`
	Elapsed      time.Duration `json:"elapsed_ns"`

	Malloc LatencyQuantiles `json:"malloc"`
	Free   LatencyQuantiles `json:"free"`
	Pause  LatencyQuantiles `json:"pause"`

	Tenants []TenantReport `json:"tenants"`
}

// report snapshots one tenant's counters and histograms. Called at tick
// boundaries or after teardown (registries outlive their heap).
func (t *Tenant) report() TenantReport {
	tr := TenantReport{
		ID:           t.ID,
		Class:        t.Class,
		Priority:     t.Priority,
		Floor:        t.Floor,
		Budget:       t.plane.Budget(),
		MinGrant:     t.minGrant,
		PeakRSS:      t.peakRSS,
		Throttles:    t.throttles,
		StarveAverts: t.starveAverts,
		Level:        t.plane.Level().String(),
		Malloc:       quantilesOf(t.tel.Malloc.Snapshot()),
		Free:         quantilesOf(t.tel.Free.Snapshot()),
		Pause:        quantilesOf(t.tel.Pause.Snapshot()),
	}
	if t.heap != nil {
		st := t.heap.Stats()
		tr.Mallocs = st.Mallocs
		tr.Frees = st.Frees
	}
	if t.serveErr != nil {
		tr.Err = t.serveErr.Error()
	}
	return tr
}

// buildReport aggregates every tenant (live and departed) into the fleet
// report.
func (h *Host) buildReport(sampler *metrics.Sampler, elapsed time.Duration) *Report {
	h.mu.Lock()
	defer h.mu.Unlock()
	rep := &Report{
		HostBudget:   h.cfg.HostBudget,
		TenantCount:  len(h.tenants),
		Ticks:        h.cfg.Ticks,
		Breaches:     h.breaches,
		Rebalances:   h.arb.Rebalances(),
		LevelChanges: h.levelChanges,
		Level:        h.arb.Level().String(),
		Elapsed:      elapsed,
		PeakRSS:      h.peakRSS,
		AvgRSS:       sampler.Avg(),
	}
	if p := sampler.Peak(); p > rep.PeakRSS {
		rep.PeakRSS = p
	}
	var mall, free, pause telemetry.HistogramSnapshot
	for _, t := range h.tenants {
		tr := t.report()
		rep.Tenants = append(rep.Tenants, tr)
		mall = mall.Merge(t.tel.Malloc.Snapshot())
		free = free.Merge(t.tel.Free.Snapshot())
		pause = pause.Merge(t.tel.Pause.Snapshot())
	}
	rep.Tenants = append(rep.Tenants, h.departed...)
	sort.Slice(rep.Tenants, func(i, j int) bool { return rep.Tenants[i].ID < rep.Tenants[j].ID })
	rep.Malloc = quantilesOf(mall)
	rep.Free = quantilesOf(free)
	rep.Pause = quantilesOf(pause)
	return rep
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the host summary and a per-tenant table (tenants sorted
// by ID; departed tenants flagged).
func (r *Report) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "fleet: %d tenants, %d ticks, %s elapsed\n", r.TenantCount, r.Ticks, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "host:  budget %s  peak %s (%.1f%%)  avg %s  level %s  rebalances %d  level-changes %d  breaches %d\n",
		metrics.FmtMiB(r.HostBudget), metrics.FmtMiB(r.PeakRSS),
		100*float64(r.PeakRSS)/float64(r.HostBudget),
		metrics.FmtMiB(r.AvgRSS), r.Level, r.Rebalances, r.LevelChanges, r.Breaches)
	fmt.Fprintf(w, "lat:   malloc p50<%d p99<%d p99.9<%d ns  free p50<%d p99<%d p99.9<%d ns  pause p99.9<%d ns\n",
		r.Malloc.P50, r.Malloc.P99, r.Malloc.P999,
		r.Free.P50, r.Free.P99, r.Free.P999, r.Pause.P999)
	tab := metrics.NewTable("tenant", "class", "prio", "floor", "rail", "peak-rss", "malloc-p99", "pause-p99.9", "throttles", "starved", "flags")
	for _, t := range r.Tenants {
		flags := ""
		if t.Departed {
			flags += "departed "
		}
		if !t.FloorHonoured() {
			flags += "FLOOR-VIOLATED "
		}
		if t.Err != "" {
			flags += "ERR "
		}
		tab.AddRow(
			fmt.Sprintf("%d", t.ID), t.Class, fmt.Sprintf("%d", t.Priority),
			metrics.FmtMiB(t.Floor), metrics.FmtMiB(t.Budget), metrics.FmtMiB(t.PeakRSS),
			fmt.Sprintf("%d", t.Malloc.P99), fmt.Sprintf("%d", t.Pause.P999),
			fmt.Sprintf("%d", t.Throttles), fmt.Sprintf("%d", t.StarveAverts), flags)
	}
	_, err := io.WriteString(w, tab.String())
	return err
}
