package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"minesweeper/internal/jemalloc"
	"minesweeper/internal/mem"
	"minesweeper/internal/sim"
)

func TestRoundTrip(t *testing.T) {
	tr := &Trace{
		Threads: 2,
		Events: []Event{
			{Kind: KindMalloc, Thread: 0, ID: 1, Size: 64},
			{Kind: KindMalloc, Thread: 1, ID: 2, Size: 1 << 20},
			{Kind: KindFree, Thread: 0, ID: 1},
			{Kind: KindFree, Thread: 1, ID: 2},
		},
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Threads != tr.Threads || !reflect.DeepEqual(got.Events, tr.Events) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestReadRejectsCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("XXXX\x01\x00\x00\x00\x01\x00\x00\x00"),
		"bad version": []byte("MSTR\xff\x00\x00\x00\x01\x00\x00\x00"),
		"bad kind":    append([]byte("MSTR\x01\x00\x00\x00\x01\x00\x00\x00"), 'Z'),
		"truncated":   append([]byte("MSTR\x01\x00\x00\x00\x01\x00\x00\x00"), 'M', 0x01),
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: Read succeeded", name)
		}
	}
}

func TestValidate(t *testing.T) {
	good := Record(1000, 50, 4096, 7)
	if err := good.Validate(); err != nil {
		t.Errorf("generated trace invalid: %v", err)
	}
	bad := &Trace{Threads: 1, Events: []Event{{Kind: KindFree, ID: 9}}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "dead id") {
		t.Errorf("Validate(double free) = %v", err)
	}
	dup := &Trace{Threads: 1, Events: []Event{
		{Kind: KindMalloc, ID: 1, Size: 8},
		{Kind: KindMalloc, ID: 1, Size: 8},
	}}
	if err := dup.Validate(); err == nil {
		t.Error("Validate(duplicate id) passed")
	}
}

func TestRecordBalanced(t *testing.T) {
	tr := Record(5000, 100, 1024, 42)
	st := tr.Stats()
	if st.Mallocs != st.Frees {
		t.Errorf("Mallocs=%d Frees=%d, want balanced", st.Mallocs, st.Frees)
	}
	if st.PeakLive == 0 || st.PeakLive > 100 {
		t.Errorf("PeakLive = %d, want (0,100]", st.PeakLive)
	}
	if st.PeakLiveBytes == 0 || st.TotalBytes < st.PeakLiveBytes {
		t.Errorf("byte stats wrong: %+v", st)
	}
}

func TestRecordDeterministic(t *testing.T) {
	a, b := Record(500, 20, 512, 3), Record(500, 20, 512, 3)
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Error("Record not deterministic for same seed")
	}
}

func TestReplay(t *testing.T) {
	tr := Record(3000, 64, 8192, 11)
	space := mem.NewAddressSpace()
	heap := jemalloc.New(space, jemalloc.DefaultConfig())
	prog, err := sim.NewProgram(space, heap, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(tr, prog)
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if res.Mallocs != uint64(st.Mallocs) || res.Frees != uint64(st.Frees) {
		t.Errorf("replay executed %d/%d, want %d/%d", res.Mallocs, res.Frees, st.Mallocs, st.Frees)
	}
	if res.PeakRSS == 0 {
		t.Error("PeakRSS = 0")
	}
	if heap.AllocatedBytes() != 0 {
		t.Error("replay leaked allocations")
	}
}

// Property: any generated trace survives a serialisation round trip intact.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		tr := Record(int(n%2000)+10, 32, 2048, seed)
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Events, tr.Events)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
