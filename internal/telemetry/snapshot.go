package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"minesweeper/internal/control"
	"minesweeper/internal/metrics"
)

// Snapshot is the stable export struct: everything the registry knows at one
// instant. It round-trips through JSON (WriteJSON / ReadSnapshot) and renders
// as aligned text (WriteText).
type Snapshot struct {
	// CapturedAtNanos is the capture instant on the registry's monotonic
	// clock (nanoseconds since the registry was created). Two snapshots of
	// the same registry order by it regardless of wall-clock steps, and
	// msstat -diff uses the difference as the interval length.
	CapturedAtNanos int64 `json:"captured_at_ns"`
	// SweepSeq is the sweep-ring sequence number of the newest retained
	// record (0 when none): the position of this snapshot in the sweep
	// stream, stable even when the retained window is smaller than the
	// total.
	SweepSeq uint64 `json:"sweep_seq"`
	// SweepsTotal counts sweeps ever observed; Sweeps retains only the
	// ring's window of recent ones.
	SweepsTotal uint64              `json:"sweeps_total"`
	Sweeps      []SweepRecord       `json:"sweeps"`
	Histograms  []HistogramSnapshot `json:"histograms"`
	Gauges      []GaugeValue        `json:"gauges"`
	// SamplePeriod is the 1-in-n rate at which malloc/free latencies were
	// sampled into their histograms; scale those counts by it to estimate
	// totals. Sweep and pause histograms are exact regardless.
	SamplePeriod uint64 `json:"sample_period"`
	// Governor is the control plane's state (nil when ungoverned).
	Governor *control.State `json:"governor,omitempty"`
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot parses a snapshot previously written by WriteJSON.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("telemetry: decoding snapshot: %w", err)
	}
	return s, nil
}

// fmtNs renders a nanosecond figure compactly: sub-microsecond values keep
// nanosecond resolution (malloc/free latencies live there), everything else
// rounds to the microsecond.
func fmtNs(ns int64) string {
	d := time.Duration(ns)
	if -time.Microsecond < d && d < time.Microsecond {
		return d.String()
	}
	return d.Round(time.Microsecond).String()
}

// fmtCount renders large counts with unit suffixes for table columns.
func fmtCount(n uint64) string {
	switch {
	case n >= 10_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// WriteText renders the snapshot as aligned tables: recent per-sweep phase
// records, histogram summaries, and gauges — the msrun -telemetry and msstat
// output format.
func (s Snapshot) WriteText(w io.Writer) error {
	if s.CapturedAtNanos > 0 {
		if _, err := fmt.Fprintf(w, "captured: +%s (sweep seq %d)\n",
			time.Duration(s.CapturedAtNanos).Round(time.Millisecond), s.SweepSeq); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "sweeps observed: %d (showing last %d)\n", s.SweepsTotal, len(s.Sweeps)); err != nil {
		return err
	}
	if len(s.Sweeps) > 0 {
		tb := metrics.NewTable("sweep", "trigger", "total", "mark", "dirty", "recycle", "purge",
			"pages", "dirty-pg", "kz-pg", "zero-skip", "locked", "released", "retained", "workers", "shards")
		for _, r := range s.Sweeps {
			tb.AddRow(
				fmt.Sprint(r.Seq), r.Trigger.String(),
				fmtNs(r.TotalNanos), fmtNs(r.MarkNanos), fmtNs(r.DirtyNanos),
				fmtNs(r.RecycleNanos), fmtNs(r.PurgeNanos),
				fmtCount(r.PagesScanned), fmtCount(r.DirtyPages), fmtCount(r.PagesKnownZero),
				metrics.FmtMiB(r.BytesZeroSkipped),
				fmtCount(r.EntriesLocked), fmtCount(r.Released), fmtCount(r.Retained),
				fmt.Sprint(r.Workers), fmt.Sprint(r.ShardsSwept),
			)
		}
		if _, err := io.WriteString(w, tb.String()); err != nil {
			return err
		}
	}
	if len(s.Histograms) > 0 {
		if s.SamplePeriod > 1 {
			if _, err := fmt.Fprintf(w, "\nmalloc/free latencies sampled 1 in %d ops\n", s.SamplePeriod); err != nil {
				return err
			}
		}
		tb := metrics.NewTable("histogram", "count", "mean", "p50", "p90", "p99", "p99.9", "max")
		for _, h := range s.Histograms {
			if h.Count == 0 {
				tb.AddRow(h.Name, "0", "-", "-", "-", "-", "-", "-")
				continue
			}
			tb.AddRow(h.Name, fmtCount(h.Count),
				fmtNs(int64(h.Mean())),
				"<"+fmtNs(int64(h.Quantile(0.5))),
				"<"+fmtNs(int64(h.Quantile(0.9))),
				"<"+fmtNs(int64(h.Quantile(0.99))),
				"<"+fmtNs(int64(h.Quantile(0.999))),
				"<"+fmtNs(int64(h.Max())))
		}
		if _, err := io.WriteString(w, "\n"+tb.String()); err != nil {
			return err
		}
	}
	if len(s.Gauges) > 0 {
		tb := metrics.NewTable("gauge", "value")
		for _, g := range s.Gauges {
			tb.AddRow(g.Name, fmt.Sprint(g.Value))
		}
		if _, err := io.WriteString(w, "\n"+tb.String()); err != nil {
			return err
		}
	}
	if g := s.Governor; g != nil {
		if _, err := fmt.Fprintf(w,
			"\ngovernor: policy=%s level=%s budget=%s observations=%d decisions=%d\n"+
				"  knobs: sweep=%.4f (base %.4f) unmapped=%.2f (base %.2f) pause=%.2f (base %.2f) helpers=%d (base %d)\n",
			g.Policy, g.Level, metrics.FmtMiB(g.Budget), g.Observations, g.DecisionsTotal,
			g.Knobs.SweepThreshold, g.Base.SweepThreshold,
			g.Knobs.UnmappedFactor, g.Base.UnmappedFactor,
			g.Knobs.PauseThreshold, g.Base.PauseThreshold,
			g.Knobs.Helpers, g.Base.Helpers,
		); err != nil {
			return err
		}
		if len(g.Decisions) > 0 {
			tb := metrics.NewTable("decision", "level", "usage", "age", "sweep->", "helpers->")
			for _, d := range g.Decisions {
				tb.AddRow(
					fmt.Sprint(d.Seq), d.Level.String(),
					fmt.Sprintf("%.2f", d.In.Usage()),
					fmt.Sprint(d.In.AgeEpochs),
					fmt.Sprintf("%.4f", d.After.SweepThreshold),
					fmt.Sprint(d.After.Helpers),
				)
			}
			if _, err := io.WriteString(w, tb.String()); err != nil {
				return err
			}
		}
	}
	return nil
}
