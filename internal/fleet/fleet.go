package fleet

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"minesweeper/internal/control"
	"minesweeper/internal/core"
	"minesweeper/internal/events"
	"minesweeper/internal/jemalloc"
	"minesweeper/internal/mem"
	"minesweeper/internal/metrics"
	"minesweeper/internal/sim"
	"minesweeper/internal/telemetry"
	"minesweeper/internal/workload"
)

// Tenant is one simulated tenant process: its own address space, MineSweeper
// heap, per-heap governor plane, telemetry registry and open-loop service.
// The host never reaches into the tenant's hot paths — federation happens
// entirely through atomic publications on the tenant's control plane.
type Tenant struct {
	ID       int
	Class    string
	Priority int
	Floor    uint64
	Weight   float64

	space *mem.AddressSpace
	world *sim.World
	heap  *core.Heap
	plane *control.Plane
	tel   *telemetry.Registry
	prog  *sim.Program
	th    *sim.Thread
	svc   workload.Service
	arr   workload.ArrivalProcess
	rng   *sim.Rand

	// hostPressure is the host-pushed half of the pressure signal: the
	// rebalance step stores the level implied by the tenant's RSS against
	// its fresh rail, and the service's PressureFunc folds it with the
	// plane's own level. The push matters because the plane only observes
	// at sweep boundaries — on a small heap the first sweep can lag the
	// commit of exactly the pages the host wants never committed.
	hostPressure atomic.Int32

	// Host-loop bookkeeping. peakRSS is written by the serving worker
	// (one per tenant per tick, ordered by the tick barrier); the rest by
	// the rebalance step under the host lock.
	peakRSS      uint64
	minGrant     uint64
	throttles    uint64
	starveAverts uint64
	serveErr     error
}

// Plane exposes the tenant's control plane (tests).
func (t *Tenant) Plane() *control.Plane { return t.plane }

// Telemetry exposes the tenant's registry (tests, reporting).
func (t *Tenant) Telemetry() *telemetry.Registry { return t.tel }

// Host runs a fleet of tenants over one shared RSS budget, serving open-loop
// arrivals in lock-stepped ticks and rebalancing the federated budget every
// ArbiterEvery ticks. Tenants may join and leave while Run is in flight;
// membership changes land at tick boundaries so a tenant is never torn down
// under a live service call.
type Host struct {
	cfg Config
	arb *Arbiter
	rec *events.Recorder
	rng *sim.Rand

	mu       sync.Mutex
	tenants  []*Tenant
	leaves   map[int]bool
	nextID   int
	tick     int
	closed   bool
	departed []TenantReport

	peakRSS      uint64 // max total RSS seen at rebalance points
	breaches     uint64
	levelChanges uint64
	railsSqueezd bool
}

// NewHost validates cfg, builds every configured tenant and primes each
// tenant's budget rail with floor + an equal share of the distributable
// budget.
func NewHost(cfg Config) (*Host, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
		if cfg.Workers < 4 {
			cfg.Workers = 4
		}
	}
	h := &Host{
		cfg:    cfg,
		arb:    NewArbiter(cfg.HostBudget, cfg.NoisyTicks),
		rec:    cfg.Events,
		rng:    sim.NewRand(cfg.Seed ^ 0x9e3779b97f4a7c15),
		leaves: make(map[int]bool),
	}
	for _, cl := range cfg.Classes {
		for i := 0; i < cl.Tenants; i++ {
			if _, err := h.addTenantLocked(cl); err != nil {
				h.teardownAll()
				return nil, err
			}
		}
	}
	// Slow start: rails are primed at the floors alone (addTenantLocked
	// already did this) and grow only as rebalances prove the host calm —
	// the TCP shape. Priming with generous rails instead lets every
	// tenant balloon before the first squeeze propagates, and the
	// transient peak is exactly what the host budget is supposed to
	// bound. A tenant with floor 0 starts unbounded (budget 0), which is
	// what calibration runs want.
	return h, nil
}

// Tenants returns the current tenant count.
func (h *Host) Tenants() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.tenants)
}

// Arbiter exposes the host arbiter (tests).
func (h *Host) Arbiter() *Arbiter { return h.arb }

// AddTenant builds and admits one new tenant of class cl (cl.Tenants is
// ignored; one call, one tenant). Safe to call while Run is in flight: the
// tenant starts serving at the next tick boundary. Returns the tenant ID.
func (h *Host) AddTenant(cl Class) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0, fmt.Errorf("fleet: host is shut down")
	}
	return h.addTenantLocked(cl)
}

// addTenantLocked builds one tenant and admits its rail. Caller holds h.mu
// (or is NewHost before the host is shared).
func (h *Host) addTenantLocked(cl Class) (int, error) {
	id := h.nextID
	h.nextID++
	t, err := h.buildTenant(id, cl)
	if err != nil {
		return 0, err
	}
	if err := h.arb.Admit(id, cl.Floor, cl.Weight, cl.Priority); err != nil {
		t.teardown()
		return 0, err
	}
	t.plane.SetBudget(cl.Floor)
	t.minGrant = cl.Floor
	h.tenants = append(h.tenants, t)
	return id, nil
}

// RemoveTenant marks a tenant for departure; it is torn down (and its
// telemetry folded into the final report's departed set) at the next tick
// boundary, never mid-serve.
func (h *Host) RemoveTenant(id int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, t := range h.tenants {
		if t.ID == id {
			h.leaves[id] = true
			return nil
		}
	}
	return fmt.Errorf("fleet: no tenant %d", id)
}

// buildTenant constructs a tenant's full stack: address space, world,
// governed MineSweeper heap (per-heap AIMD plane, exactly the PR 5 setup),
// telemetry registry, program, thread and open-loop service.
func (h *Host) buildTenant(id int, cl Class) (*Tenant, error) {
	seed := h.cfg.Seed*0x100000001b3 + uint64(id)*0x9e3779b9 + 1
	space := mem.NewAddressSpace()
	world := sim.NewWorld()
	ccfg := core.DefaultConfig()
	ccfg.World = world
	// Tenant heaps are two orders of magnitude smaller than the
	// single-process heaps the defaults were tuned for: a rail is a few
	// hundred KiB, so the default 32 KiB sweep floor and 64-entry thread
	// ring would keep nearly every free ring-resident and sweep-invisible —
	// the tenant's governor would never observe pressure at all. Scale both
	// down so small heaps drain and sweep at their own proportions.
	ccfg.SweepFloorBytes = 4 << 10
	ccfg.BufferCap = 16
	plane := control.NewPlane(control.Config{
		Base: control.Knobs{
			SweepThreshold:    ccfg.SweepThreshold,
			UnmappedFactor:    ccfg.UnmappedFactor,
			PauseThreshold:    ccfg.PauseThreshold,
			Helpers:           ccfg.Helpers,
			RescanBudgetPages: ccfg.RescanBudgetPages,
			ZeroDeferred:      ccfg.Zeroing && ccfg.ZeroMode == core.ZeroDeferred,
		},
		Budget: cl.Floor, // re-granted immediately by the caller
		Policy: control.NewAIMD(),
	})
	ccfg.Control = plane
	heap, err := core.New(space, ccfg, jemalloc.DefaultConfig())
	if err != nil {
		return nil, err
	}
	tel := telemetry.NewRegistry(64)
	tel.AttachGovernor(plane)
	heap.SetTelemetry(tel)
	prog, err := sim.NewProgram(space, heap, world)
	if err != nil {
		heap.Shutdown()
		return nil, err
	}
	th, err := prog.NewThread(seed)
	if err != nil {
		heap.Shutdown()
		return nil, err
	}
	kind := cl.Workload
	if kind == "" {
		kind = "cache"
	}
	svc, err := workload.NewService(kind, th, seed^0xabcd, nil)
	if err != nil {
		th.Close()
		heap.Shutdown()
		return nil, err
	}
	lambda := cl.Lambda
	if lambda == 0 {
		lambda = 4
	}
	var arr workload.ArrivalProcess
	if cl.Burst > 1 {
		arr = workload.NewMMPP(lambda, cl.Burst, 48, 16)
	} else {
		arr = workload.Poisson{Lambda: lambda}
	}
	t := &Tenant{
		ID:       id,
		Class:    cl.Name,
		Priority: cl.Priority,
		Floor:    cl.Floor,
		Weight:   cl.Weight,
		space:    space,
		world:    world,
		heap:     heap,
		plane:    plane,
		tel:      tel,
		prog:     prog,
		th:       th,
		svc:      svc,
		arr:      arr,
		rng:      sim.NewRand(seed ^ 0x5bf03635),
	}
	// Close the tenant half of the control protocol: the service sheds
	// load under pressure, which is how a squeezed budget rail actually
	// turns into a smaller live set. The signal is the max of the two
	// federation layers — the plane's own level (observed at sweep
	// boundaries) and the host's pushed level (observed at rebalances) —
	// so whichever layer notices pressure first wins.
	if pa, ok := svc.(workload.PressureAware); ok {
		pa.SetPressure(func() int {
			p := int(t.plane.Level())
			if hp := int(t.hostPressure.Load()); hp > p {
				p = hp
			}
			return p
		})
	}
	return t, nil
}

// teardown closes a tenant's service, thread and heap (once; callers
// sequence it at tick boundaries so nothing races the serve loop).
func (t *Tenant) teardown() {
	if t.svc != nil {
		if err := t.svc.Close(); err != nil && t.serveErr == nil {
			t.serveErr = err
		}
		t.svc = nil
	}
	if t.th != nil {
		t.th.Close()
		t.th = nil
	}
	if t.heap != nil {
		t.heap.Shutdown()
		t.heap = nil
	}
}

// Step runs one lock-stepped tick: every tenant serves its arrivals, tick-
// boundary departures land, and every ArbiterEvery-th step rebalances the
// federated budget.
func (h *Host) Step() {
	h.tick++
	h.serveTick(h.snapshot())
	h.applyLeaves()
	if h.tick%h.cfg.ArbiterEvery == 0 {
		h.rebalance()
	}
}

// Run drives the fleet for cfg.Ticks lock-stepped ticks, rebalancing every
// ArbiterEvery ticks, then tears every tenant down and returns the fleet
// report. Run may be called once.
func (h *Host) Run() (*Report, error) {
	sampler := metrics.NewSampler(h.totalRSS, 2*time.Millisecond)
	sampler.Start()
	start := time.Now()
	for tick := 1; tick <= h.cfg.Ticks; tick++ {
		h.Step()
	}
	sampler.Stop()
	elapsed := time.Since(start)

	// Final snapshot before teardown (teardown drains rings and runs
	// final sweeps, which would smear shutdown cost into the report).
	rep := h.buildReport(sampler, elapsed)
	err := h.teardownAll()
	return rep, err
}

// Close tears down every remaining tenant. Run does this itself; Close is
// for callers driving Step directly (benchmarks). Idempotent.
func (h *Host) Close() error { return h.teardownAll() }

// snapshot returns the current tenant set.
func (h *Host) snapshot() []*Tenant {
	h.mu.Lock()
	defer h.mu.Unlock()
	ts := make([]*Tenant, len(h.tenants))
	copy(ts, h.tenants)
	return ts
}

// totalRSS sums resident bytes across live tenants (sampler callback).
func (h *Host) totalRSS() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var total uint64
	for _, t := range h.tenants {
		total += t.space.RSS()
	}
	return total
}

// serveTick runs one open-loop tick: every tenant draws its arrivals and
// serves them, spread over a bounded worker pool with a barrier at the end.
// Each tenant is touched by exactly one worker per tick, so per-tenant state
// needs no locks; the pool exists to overlap tenants' service time with
// their heaps' concurrent sweeps.
func (h *Host) serveTick(ts []*Tenant) {
	workers := h.cfg.Workers
	if workers > len(ts) {
		workers = len(ts)
	}
	if workers <= 1 {
		for _, t := range ts {
			t.serveOne()
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ts) {
					return
				}
				ts[i].serveOne()
			}
		}()
	}
	wg.Wait()
}

// serveOne draws and serves one tick of arrivals for the tenant.
func (t *Tenant) serveOne() {
	if t.serveErr != nil || t.svc == nil {
		return
	}
	if err := t.svc.Serve(t.arr.Arrivals(t.rng)); err != nil {
		t.serveErr = err
	}
	if rss := t.space.RSS(); rss > t.peakRSS {
		t.peakRSS = rss
	}
}

// applyLeaves tears down tenants marked for departure. Runs between ticks.
func (h *Host) applyLeaves() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.leaves) == 0 {
		return
	}
	kept := h.tenants[:0]
	for _, t := range h.tenants {
		if !h.leaves[t.ID] {
			kept = append(kept, t)
			continue
		}
		h.arb.Evict(t.ID)
		t.teardown()
		tr := t.report()
		tr.Departed = true
		h.departed = append(h.departed, tr)
	}
	h.tenants = kept
	h.leaves = make(map[int]bool)
}

// rebalance runs one arbiter pass and publishes the new grants to every
// tenant plane, emitting arbitration instants into the flight recorder and
// tripping a dump if the host breached its budget.
func (h *Host) rebalance() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.tenants) == 0 {
		return
	}
	byID := make(map[int]*Tenant, len(h.tenants))
	var total uint64
	for _, t := range h.tenants {
		byID[t.ID] = t
	}
	observed := make(map[int]uint64, len(h.tenants))
	grants, levelChanged := h.arb.Rebalance(func(id int) uint64 {
		rss := byID[id].space.RSS()
		observed[id] = rss
		total += rss
		return rss
	})
	if total > h.peakRSS {
		h.peakRSS = total
	}
	ring := h.ring()
	changed := uint64(0)
	for _, g := range grants {
		t := byID[g.ID]
		if t.plane.Budget() != g.Budget {
			changed++
		}
		t.plane.SetBudget(g.Budget)
		if g.Budget < t.minGrant {
			t.minGrant = g.Budget
		}
		// Push the host's view of this tenant's pressure: over the fresh
		// rail (or flagged noisy) is Critical, within an eighth of it is
		// Elevated. The service folds this with the plane's own level.
		push := int32(0)
		if rss := observed[g.ID]; rss > g.Budget || g.Noisy {
			push = 2
		} else if rss >= g.Budget-g.Budget/8 {
			push = 1
		}
		t.hostPressure.Store(push)
		if g.Throttled {
			t.throttles++
			if ring != nil {
				ring.Emit(events.KindTenantThrottle, uint64(g.ID), g.Budget)
			}
		}
		if g.StarveAverted {
			t.starveAverts++
			if ring != nil {
				ring.Emit(events.KindStarveAvert, uint64(g.ID), t.Floor)
			}
		}
	}
	if levelChanged {
		h.levelChanges++
		h.squeezeRails(h.arb.Level())
		if ring != nil {
			ring.Emit(events.KindHostLevel, uint64(h.arb.Level()), 0)
		}
	}
	if ring != nil {
		ring.Emit(events.KindTenantRebalance, changed, total)
	}
	if total > h.cfg.HostBudget {
		h.breaches++
		if h.rec != nil {
			h.rec.Trip(events.TripHostBudget)
		}
	}
}

// ring returns the host-arbiter event ring, or nil without a recorder.
func (h *Host) ring() *events.Ring {
	if h.rec == nil {
		return nil
	}
	return h.rec.Ring("host-arbiter")
}

// squeezeRails republishes tenant knob rails on host level changes: under
// host pressure no tenant may grow helper workers past its configured
// baseline (hundreds of tenants each doubling helpers would thrash one
// host's cores); back at Nominal the default envelope is restored. This is
// the "knob rails" half of federation — budgets steer memory, rails steer
// CPU amplification.
func (h *Host) squeezeRails(lvl control.Level) {
	squeeze := lvl != control.Nominal
	if squeeze == h.railsSqueezd {
		return
	}
	h.railsSqueezd = squeeze
	for _, t := range h.tenants {
		rails := control.DefaultRails(t.plane.Base())
		if squeeze {
			rails.HelpersMax = t.plane.Base().Helpers
		}
		t.plane.SetRails(rails)
	}
}

// teardownAll closes every remaining tenant. Idempotent.
func (h *Host) teardownAll() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	h.closed = true
	var err error
	for _, t := range h.tenants {
		t.teardown()
		if t.serveErr != nil && err == nil {
			err = fmt.Errorf("fleet: tenant %d: %w", t.ID, t.serveErr)
		}
	}
	return err
}
