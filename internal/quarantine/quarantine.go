// Package quarantine implements MineSweeper's quarantine: the set of
// allocations the program has freed but that cannot yet be proven free of
// dangling pointers (§3). It provides:
//
//   - a sharded membership set keyed by allocation base, the paper's "shadow
//     map of entries" that de-duplicates double frees so that calls to free()
//     while a dangling pointer exists are idempotent;
//   - a global pending list with epoch lock-in: a sweep atomically takes the
//     entries "already in quarantine when it starts"; anything freed during
//     the sweep waits for the next one (§4.3);
//   - thread-private quarantine rings that make free()'s enqueue entirely
//     thread-local and publish membership, accounting, and pending-list
//     appends in bulk drains (contribution (c) in §1.1);
//   - byte accounting with the paper's two adjustments: failed frees are
//     subtracted from both sides of the sweep trigger (§3.2), and unmapped
//     allocations do not count towards the standard threshold (§4.2).
package quarantine

import (
	"sync"
	"sync/atomic"
)

// Entry describes one quarantined allocation.
type Entry struct {
	// Base is the allocation's base address.
	Base uint64
	// Size is the allocation's usable size in bytes.
	Size uint64
	// Unmapped records that the allocation's physical pages were released
	// while in quarantine (§4.2).
	Unmapped bool
	// Failed records that at least one sweep found a (possible) dangling
	// pointer to this allocation.
	Failed bool
	// Zeroed records that the allocation's bytes have been zero-filled (or
	// discarded by a decommit) since it was freed. Ring entries pushed under
	// deferred zeroing carry false until the drain's batched zero pass runs;
	// the pass — installed with ThreadBuffer.SetZeroHook — completes before
	// the entries become visible to sweeps via Append, so a sweep can never
	// release memory that still holds its old contents.
	Zeroed bool
	// Epoch is the sweep epoch in which the entry joined the global pending
	// list (stamped by Append, under the pending lock, so it is always
	// consistent with the epoch advance in LockIn).
	Epoch uint64
	// Ref is the substrate's opaque container reference (alloc.Ref),
	// captured when free() resolved the allocation. The sweep's recycle
	// phase frees through it, so the allocation's address is resolved
	// exactly once over its whole quarantine lifetime. The quarantine owns
	// the allocation until Release, which is precisely the window the
	// substrate guarantees the ref stays valid for.
	Ref any
	// Shard is the arena shard that owns the allocation (0 on substrates
	// without arena shards). It routes the entry to the matching pending
	// shard so each arena shard can sweep on its own cadence.
	Shard int32

	next *Entry // intrusive freelist link, owned by the quarantine
}

// setShards is the membership-set shard count. Eight (not the 64 of earlier
// revisions) because membership traffic now arrives in batches — ring drains
// insert a whole ring and sweep workers remove releaseBatchSize entries at a
// time — and batching only amortises the shard lock when a batch lands several
// entries per shard. At 64 shards a 48-entry drain averaged under one entry
// per touched shard (one lock round-trip each, no better than per-entry
// locking); at 8 it averages six.
const (
	setShardBits = 3
	setShards    = 1 << setShardBits
)

// shard is one slice of the membership set: an open-addressing hash table
// with linear probing and backward-shift deletion, keyed by Entry.Base.
// free() pays one Insert and the sweep one Release per allocation, so the
// table avoids the runtime map's hashing and bucket machinery — on the
// malloc/free microbenchmark the generic map was ~20% of total CPU.
//
// Keys live in their own pointer-free array so a probe chain walks one cache
// line of uint64s instead of dereferencing an *Entry per slot; the entry
// pointers sit in a parallel array touched only on a confirmed hit. Max load
// is 50%, keeping unsuccessful probes (what every Insert of a fresh base
// pays) near two slots.
type shard struct {
	mu   sync.Mutex
	keys []uint64 // power-of-two; 0 = empty slot (0 is never a heap base)
	ents []*Entry // parallel to keys
	n    int      // occupied slots
}

const shardMinSize = 64

// mix is the multiplicative hash shared by shard selection (top bits) and
// slot selection (folded bits). Allocation bases are at least 16-byte
// aligned, so the low bits are dropped first.
func mix(base uint64) uint64 {
	return (base >> 4) * 0x9E3779B97F4A7C15
}

func (s *shard) slot(base uint64) int {
	h := mix(base)
	return int((h ^ h>>29) & uint64(len(s.keys)-1))
}

// lookup returns the index holding base, or -1 and the insertion point.
func (s *shard) lookup(base uint64) (at, free int) {
	i := s.slot(base)
	for {
		k := s.keys[i]
		if k == 0 {
			return -1, i
		}
		if k == base {
			return i, -1
		}
		i = (i + 1) & (len(s.keys) - 1)
	}
}

func (s *shard) insert(e *Entry) bool {
	if s.keys == nil {
		s.keys = make([]uint64, shardMinSize)
		s.ents = make([]*Entry, shardMinSize)
	} else if 2*(s.n+1) > len(s.keys) {
		s.grow()
	}
	at, free := s.lookup(e.Base)
	if at >= 0 {
		return false
	}
	s.keys[free] = e.Base
	s.ents[free] = e
	s.n++
	return true
}

func (s *shard) remove(base uint64) {
	at, _ := s.lookup(base)
	if at < 0 {
		return
	}
	// Backward-shift deletion: slide the probe chain left so no tombstones
	// accumulate and lookups stay short at any load factor. i is the
	// current vacancy; j scans the rest of the chain.
	mask := len(s.keys) - 1
	i := at
	for j := at; ; {
		j = (j + 1) & mask
		k := s.keys[j]
		if k == 0 {
			break
		}
		// The element at j may fill the vacancy iff its home slot is not
		// inside (i, j].
		if home := s.slot(k); (j-home)&mask >= (j-i)&mask {
			s.keys[i] = k
			s.ents[i] = s.ents[j]
			i = j
		}
	}
	s.keys[i] = 0
	s.ents[i] = nil
	s.n--
}

func (s *shard) grow() {
	oldKeys, oldEnts := s.keys, s.ents
	s.keys = make([]uint64, 2*len(oldKeys))
	s.ents = make([]*Entry, 2*len(oldEnts))
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		_, free := s.lookup(k)
		s.keys[free] = k
		s.ents[free] = oldEnts[i]
	}
}

// Quarantine is the global quarantine state. All methods are safe for
// concurrent use.
type Quarantine struct {
	shards [setShards]shard

	// Entry recycling: free() is the hot path, so Entries flow NewEntry ->
	// Insert -> (sweeps) -> Release -> this freelist and back. An intrusive
	// structure under its own mutex rather than a sync.Pool: the pool is
	// emptied at every GC cycle, and with millions of quarantined entries
	// in flight the subsequent re-allocation (plus the pool's own ring
	// growth) was a double-digit share of benchmark CPU. Entries are held
	// as whole chains — a sweep worker's Releaser donates its chunk with
	// one splice, and a thread's buffer takes a chain at a time — so the
	// lock is paid per batch, not per free.
	freeMu sync.Mutex
	chains []*Entry // each element heads an intrusive chain of free entries

	// pend is the pending side, split into per-arena-shard lists so each
	// shard can be locked in (and hence swept) on its own cadence. One
	// mutex covers all of them: pending traffic is already batched (ring
	// drains, requeues, lock-ins), so per-shard locks would buy contention
	// relief nothing measurable while complicating the epoch stamp, which
	// MUST be consistent across shards (one global epoch counter orders
	// every append against every lock-in).
	pendMu sync.Mutex
	pend   []pendShard
	// lockedSpare recycles the flattened slice LockInSelected hands the
	// sweep (see Reclaim).
	lockedSpare []*Entry
	epoch       atomic.Uint64

	bytes         atomic.Int64 // mapped quarantined bytes (excludes unmapped)
	unmappedBytes atomic.Int64
	failedBytes   atomic.Int64
	entries       atomic.Int64
	doubleFrees   atomic.Uint64
}

// pendShard is one arena shard's slice of the pending list. All fields are
// guarded by pendMu.
type pendShard struct {
	pending []*Entry
	// oldest is the epoch of the oldest pending entry (meaningful only
	// while pending is non-empty). Appends stamp the current epoch, so
	// they never lower it; Requeue can, since failed entries keep the
	// epoch of their original append.
	oldest uint64
	// bytes tallies the pending entries' sizes (mapped + unmapped) — the
	// fair-share input for the core layer's shard selection policy.
	bytes int64
}

// New returns an empty quarantine with a single pending shard (the
// rendezvous behaviour: every lock-in takes everything).
func New() *Quarantine {
	return NewSharded(1)
}

// NewSharded returns an empty quarantine whose pending list is split across
// n shards (n <= 0 means 1), matching the substrate's arena shard count.
// Entries route by Entry.Shard; LockInSelected can take any subset.
func NewSharded(n int) *Quarantine {
	if n <= 0 {
		n = 1
	}
	return &Quarantine{pend: make([]pendShard, n)}
}

// NumShards returns the pending-list shard count.
func (q *Quarantine) NumShards() int { return len(q.pend) }

// pendIdx maps an entry to its pending shard.
func (q *Quarantine) pendIdx(e *Entry) int {
	si := int(e.Shard)
	if si < 0 || si >= len(q.pend) {
		return 0
	}
	return si
}

// shardIdx selects the membership shard for a base from the hash's top bits
// (the slot index uses the folded low bits, so the two stay independent).
func shardIdx(base uint64) int {
	return int(mix(base) >> (64 - setShardBits))
}

func (q *Quarantine) shardFor(base uint64) *shard {
	return &q.shards[shardIdx(base)]
}

// NewEntry returns a recycled or fresh Entry initialised for (base, size).
// Threads with a ThreadBuffer should prefer ThreadBuffer.NewEntry, which
// amortises the freelist lock over whole chains.
func (q *Quarantine) NewEntry(base, size uint64) *Entry {
	e := q.getChain()
	if e == nil {
		return &Entry{Base: base, Size: size}
	}
	if e.next != nil {
		q.putChain(e.next)
	}
	*e = Entry{Base: base, Size: size}
	return e
}

// getChain pops one free chain, or nil.
func (q *Quarantine) getChain() *Entry {
	q.freeMu.Lock()
	var e *Entry
	if n := len(q.chains); n > 0 {
		e = q.chains[n-1]
		q.chains[n-1] = nil
		q.chains = q.chains[:n-1]
	}
	q.freeMu.Unlock()
	return e
}

// putChain donates a chain of free entries.
func (q *Quarantine) putChain(head *Entry) {
	q.freeMu.Lock()
	q.chains = append(q.chains, head)
	q.freeMu.Unlock()
}

// putEntry returns a single released entry to the freelist.
func (q *Quarantine) putEntry(e *Entry) {
	e.next = nil
	q.putChain(e)
}

// Insert registers a freed allocation. It returns false — and counts a
// de-duplicated double free — if the base is already quarantined; in that
// case Insert takes ownership of e (recycling it).
func (q *Quarantine) Insert(e *Entry) bool {
	s := q.shardFor(e.Base)
	s.mu.Lock()
	if !s.insert(e) {
		s.mu.Unlock()
		q.doubleFrees.Add(1)
		q.putEntry(e)
		return false
	}
	s.mu.Unlock()
	q.bytes.Add(int64(e.Size))
	q.entries.Add(1)
	return true
}

// Contains reports whether base is currently quarantined.
func (q *Quarantine) Contains(base uint64) bool {
	s := q.shardFor(base)
	s.mu.Lock()
	ok := false
	if s.ents != nil {
		at, _ := s.lookup(base)
		ok = at >= 0
	}
	s.mu.Unlock()
	return ok
}

// Append adds entries (already Inserted) to the pending list for the next
// lock-in, stamping each with the current epoch. The stamp happens under the
// pending lock — the same lock LockIn advances the epoch under — so a batch
// appended concurrently with a lock-in is stamped consistently with the side
// of the swap it landed on: entries the sweep took carry the pre-advance
// epoch, entries that missed it carry the post-advance epoch. (An earlier
// revision stamped at Insert time and advanced the epoch outside the lock,
// so a flush racing the advance could publish entries whose recorded epoch
// was already released — the age gauge then under-reported forever and a
// governor steering on it never escalated.)
func (q *Quarantine) Append(batch []*Entry) {
	if len(batch) == 0 {
		return
	}
	q.pendMu.Lock()
	ep := q.epoch.Load()
	for _, e := range batch {
		e.Epoch = ep
		ps := &q.pend[q.pendIdx(e)]
		if len(ps.pending) == 0 {
			ps.oldest = ep
		}
		ps.pending = append(ps.pending, e)
		ps.bytes += int64(e.Size)
	}
	q.pendMu.Unlock()
}

// LockIn atomically takes the whole pending list (every shard) and starts a
// new epoch — the global-rendezvous lock-in. The returned entries are the
// sweep's candidate set; entries quarantined after LockIn go to the next
// sweep. The swap and the epoch advance happen under one critical section so
// no Append can interleave between them (see Append).
func (q *Quarantine) LockIn() []*Entry { return q.LockInSelected(nil) }

// LockInSelected takes the pending entries of the selected shards (nil means
// all) into one flattened slice and starts a new epoch. The epoch advances
// once regardless of how many shards are taken, so entries left behind in
// unselected shards age by one epoch — the core layer's lag rule uses that
// age to force stragglers into a later sweep. Safety is unaffected by
// partial selection: released entries must survive a full mark pass that
// began after their lock-in, which covers all memory regardless of which
// shard owned the entry.
func (q *Quarantine) LockInSelected(sel []bool) []*Entry {
	q.pendMu.Lock()
	locked := q.lockedSpare[:0]
	q.lockedSpare = nil
	for si := range q.pend {
		if sel != nil && (si >= len(sel) || !sel[si]) {
			continue
		}
		ps := &q.pend[si]
		if len(ps.pending) == 0 {
			continue
		}
		locked = append(locked, ps.pending...)
		clear(ps.pending)
		ps.pending = ps.pending[:0]
		ps.bytes = 0
	}
	q.epoch.Add(1)
	q.pendMu.Unlock()
	return locked
}

// Reclaim donates a slice previously returned by LockIn/LockInSelected back
// to the quarantine once the sweep is done with it, so steady-state sweeps
// reuse one backing array instead of regrowing from nil every epoch. The
// entries themselves must already be Released or Requeued.
func (q *Quarantine) Reclaim(buf []*Entry) {
	if cap(buf) == 0 {
		return
	}
	clear(buf[:cap(buf)])
	q.pendMu.Lock()
	if cap(buf) > cap(q.lockedSpare) {
		q.lockedSpare = buf[:0]
	}
	q.pendMu.Unlock()
}

// Requeue returns failed entries to the pending list so future sweeps retry
// them. Unlike Append it preserves each entry's original epoch — the age of a
// stubborn failed free is measured from when it first went pending — and
// lowers the owning shard's oldest-epoch watermark accordingly.
func (q *Quarantine) Requeue(failed []*Entry) {
	if len(failed) == 0 {
		return
	}
	q.pendMu.Lock()
	for _, e := range failed {
		ps := &q.pend[q.pendIdx(e)]
		if len(ps.pending) == 0 || e.Epoch < ps.oldest {
			ps.oldest = e.Epoch
		}
		ps.pending = append(ps.pending, e)
		ps.bytes += int64(e.Size)
	}
	q.pendMu.Unlock()
}

// NoteUnmapped moves an entry's bytes from the standard quarantine account to
// the unmapped account (§4.2: unmapped allocations "do not count towards
// standard memory usage or quarantine-size sweep thresholds").
func (q *Quarantine) NoteUnmapped(e *Entry) {
	if e.Unmapped {
		return
	}
	e.Unmapped = true
	q.bytes.Add(-int64(e.Size))
	q.unmappedBytes.Add(int64(e.Size))
}

// NoteFailed accounts an entry's first failed free (§3.2: failed frees are
// subtracted from both sides of the trigger comparison).
func (q *Quarantine) NoteFailed(e *Entry) {
	if e.Failed {
		return
	}
	e.Failed = true
	q.failedBytes.Add(int64(e.Size))
}

// Release removes a released entry from the membership set and all byte
// accounts. It must be called exactly once per entry, after the sweep has
// proven it safe and before the underlying free.
func (q *Quarantine) Release(e *Entry) {
	s := q.shardFor(e.Base)
	s.mu.Lock()
	if s.ents != nil {
		s.remove(e.Base)
	}
	s.mu.Unlock()
	if e.Unmapped {
		q.unmappedBytes.Add(-int64(e.Size))
	} else {
		q.bytes.Add(-int64(e.Size))
	}
	if e.Failed {
		q.failedBytes.Add(-int64(e.Size))
	}
	q.entries.Add(-1)
	e.Ref = nil
	q.putEntry(e)
}

// Releaser batches one sweep worker's releases. Shard removal still happens
// per entry (membership must be exact at all times), but the freelist splice
// and the byte/entry accounting are deferred to Flush, turning five atomic
// operations per release into one set per chunk.
type Releaser struct {
	q                                 *Quarantine
	head                              *Entry
	chainLen                          int
	bytes, unmappedBytes, failedBytes int64
	n                                 int64
	// groups is ReleaseBatch's shard-grouping scratch, reused across batches
	// so a worker's whole run allocates it once.
	groups [setShards][]*Entry
}

// releaseChainLen bounds the length of a donated free chain. A sweep worker
// may release a hundred thousand entries; donated as one chain, whichever
// thread's buffer popped it first would hoard the whole freelist while every
// other thread allocated fresh entries (ThreadBuffer.NewEntry keeps the
// popped chain locally). Bounded chains keep the freelist shareable at a
// cost of one splice lock per chunk.
const releaseChainLen = 256

// NewReleaser returns a Releaser for one worker's chunk. Not safe for
// concurrent use; each worker owns one and must call Flush when done.
func (q *Quarantine) NewReleaser() Releaser { return Releaser{q: q} }

// Release is Quarantine.Release with deferred accounting.
func (r *Releaser) Release(e *Entry) {
	s := r.q.shardFor(e.Base)
	s.mu.Lock()
	if s.keys != nil {
		s.remove(e.Base)
	}
	s.mu.Unlock()
	r.account(e)
}

// ReleaseBatch releases a whole batch: membership removal is grouped by shard
// so the batch costs one shard-lock round-trip per touched shard (at most
// setShards) instead of one per entry, and the accounting and freelist splice
// are deferred exactly as in Release. The caller must copy out each entry's
// Base and Ref first — the entries are recycled here.
func (r *Releaser) ReleaseBatch(entries []*Entry) {
	if len(entries) == 0 {
		return
	}
	for i := range r.groups {
		r.groups[i] = r.groups[i][:0]
	}
	for _, e := range entries {
		si := shardIdx(e.Base)
		r.groups[si] = append(r.groups[si], e)
	}
	for si := range r.groups {
		g := r.groups[si]
		if len(g) == 0 {
			continue
		}
		s := &r.q.shards[si]
		s.mu.Lock()
		if s.keys != nil {
			for _, e := range g {
				s.remove(e.Base)
			}
		}
		s.mu.Unlock()
	}
	for _, e := range entries {
		r.account(e)
	}
}

// account performs Release's lock-free tail: deferred byte/entry accounting
// plus the bounded freelist chain.
func (r *Releaser) account(e *Entry) {
	if e.Unmapped {
		r.unmappedBytes -= int64(e.Size)
	} else {
		r.bytes -= int64(e.Size)
	}
	if e.Failed {
		r.failedBytes -= int64(e.Size)
	}
	r.n++
	e.Ref = nil
	e.next = r.head
	r.head = e
	if r.chainLen++; r.chainLen >= releaseChainLen {
		r.q.putChain(r.head)
		r.head, r.chainLen = nil, 0
	}
}

// Flush publishes the accumulated accounting and donates the released
// entries to the freelist as one chain.
func (r *Releaser) Flush() {
	q := r.q
	if r.bytes != 0 {
		q.bytes.Add(r.bytes)
	}
	if r.unmappedBytes != 0 {
		q.unmappedBytes.Add(r.unmappedBytes)
	}
	if r.failedBytes != 0 {
		q.failedBytes.Add(r.failedBytes)
	}
	if r.n != 0 {
		q.entries.Add(-r.n)
	}
	if r.head != nil {
		q.putChain(r.head)
	}
	groups := r.groups
	*r = Releaser{q: q, groups: groups}
}

// Bytes returns mapped quarantined bytes (unmapped entries excluded).
func (q *Quarantine) Bytes() uint64 { return clamp(q.bytes.Load()) }

// UnmappedBytes returns bytes of quarantined allocations whose pages were
// released.
func (q *Quarantine) UnmappedBytes() uint64 { return clamp(q.unmappedBytes.Load()) }

// FailedBytes returns bytes of entries that have failed at least one sweep.
func (q *Quarantine) FailedBytes() uint64 { return clamp(q.failedBytes.Load()) }

// Entries returns the number of quarantined allocations.
func (q *Quarantine) Entries() uint64 { return clamp(q.entries.Load()) }

// DoubleFrees returns the number of de-duplicated double frees.
func (q *Quarantine) DoubleFrees() uint64 { return q.doubleFrees.Load() }

// Epoch returns the current sweep epoch.
func (q *Quarantine) Epoch() uint64 { return q.epoch.Load() }

// OldestPendingEpoch returns the quarantine epoch of the oldest entry still
// on the pending list, or the current epoch when the list is empty. The
// difference Epoch() - OldestPendingEpoch() is how many sweeps the most
// stubborn pending entry has been waiting (e.g. a failed free being retried),
// which telemetry exports as quarantine age.
func (q *Quarantine) OldestPendingEpoch() uint64 {
	q.pendMu.Lock()
	defer q.pendMu.Unlock()
	// The tracked watermarks, not pending[0].Epoch: Requeue appends failed
	// entries (which keep old epochs) behind newer appends, so the lists
	// are not epoch-sorted.
	oldest := q.epoch.Load()
	for si := range q.pend {
		ps := &q.pend[si]
		if len(ps.pending) > 0 && ps.oldest < oldest {
			oldest = ps.oldest
		}
	}
	return oldest
}

// ShardPending is one pending shard's state as PendingShardStats reports it.
type ShardPending struct {
	// Entries and Bytes cover the shard's pending (not yet locked-in)
	// entries.
	Entries int
	Bytes   uint64
	// OldestEpoch is the shard's oldest pending entry's epoch; equal to
	// the current epoch when the shard is empty. Epoch() - OldestEpoch is
	// the shard's lag in sweeps.
	OldestEpoch uint64
}

// PendingShardStats fills dst (grown as needed) with each pending shard's
// entry count, byte tally and oldest epoch — the inputs to the core layer's
// per-shard sweep selection. The snapshot is consistent (taken under the
// pending lock).
func (q *Quarantine) PendingShardStats(dst []ShardPending) []ShardPending {
	q.pendMu.Lock()
	defer q.pendMu.Unlock()
	ep := q.epoch.Load()
	if cap(dst) < len(q.pend) {
		dst = make([]ShardPending, len(q.pend))
	}
	dst = dst[:len(q.pend)]
	for si := range q.pend {
		ps := &q.pend[si]
		sp := ShardPending{Entries: len(ps.pending), Bytes: clamp(ps.bytes), OldestEpoch: ep}
		if len(ps.pending) > 0 {
			sp.OldestEpoch = ps.oldest
		}
		dst[si] = sp
	}
	return dst
}

// ForEach calls fn for a snapshot of every quarantined entry. Entries
// quarantined or released concurrently may or may not be visited. The
// entries must not be mutated.
func (q *Quarantine) ForEach(fn func(e *Entry)) {
	for i := range q.shards {
		s := &q.shards[i]
		s.mu.Lock()
		snap := make([]*Entry, 0, s.n)
		for _, e := range s.ents {
			if e != nil {
				snap = append(snap, e)
			}
		}
		s.mu.Unlock()
		for _, e := range snap {
			fn(e)
		}
	}
}

// MetaBytes estimates the quarantine's metadata footprint.
func (q *Quarantine) MetaBytes() uint64 {
	// Set slot pair (16 B at <=50% load, so ~32 B amortised) + Entry
	// struct (incl. the substrate ref word pair) + pending slot.
	return clamp(q.entries.Load()) * (32 + 56 + 8)
}

func clamp(v int64) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// ThreadBuffer is one mutator thread's private quarantine ring. free()'s
// enqueue (Push) touches only thread-local state — no atomics, no shared
// locks — and the ring drains in bulk: one Drain inserts the whole ring into
// the sharded membership set grouping entries by shard (one lock round-trip
// per touched shard), publishes the byte/entry accounting as one set of
// atomic adds, and appends the survivors to the global pending list under a
// single pending-lock acquisition.
//
// The deferral is visible: until a ring entry is drained it is absent from
// Contains, from the byte accounts, and from double-free de-duplication
// (a duplicate waits in the ring and is detected — and counted — when the
// drain's membership insert loses). The lag is bounded by the ring capacity;
// a capacity of 1 restores the fully eager behaviour.
//
// Not safe for concurrent use; each thread owns one.
type ThreadBuffer struct {
	q    *Quarantine
	ring []*Entry // fixed backing of cap entries; len is the occupancy
	cap  int
	wm   int          // Drain watermark for the amortised tick (see NeedsDrain)
	free *Entry       // local entry cache, refilled from the freelist a chain at a time
	occ  atomic.Int32 // occupancy published at drains/ticks for gauges (stale in between)

	// Drain scratch, reused across drains.
	batch  []*Entry            // membership winners, handed to Append
	dups   []*Entry            // membership losers (double frees)
	groups [setShards][]*Entry // shard grouping

	// zeroHook, when set, runs over the whole ring at the top of every
	// Drain, before any entry becomes visible to membership or sweeps. The
	// core layer installs the deferred zero-on-free pass here: one grouped,
	// range-merged zero over the batch instead of one Zero call per free().
	zeroHook func([]*Entry)
}

// DefaultBufferCap is the default thread-ring capacity.
const DefaultBufferCap = 64

// NewThreadBuffer returns a ring of capacity capN (DefaultBufferCap if
// capN <= 0) draining to q.
func NewThreadBuffer(q *Quarantine, capN int) *ThreadBuffer {
	if capN <= 0 {
		capN = DefaultBufferCap
	}
	wm := 3 * capN / 4
	if wm < 1 {
		wm = 1
	}
	return &ThreadBuffer{
		q:     q,
		ring:  make([]*Entry, 0, capN),
		cap:   capN,
		wm:    wm,
		batch: make([]*Entry, 0, capN),
		dups:  make([]*Entry, 0, 4),
	}
}

// Push enqueues an entry on the ring — a single thread-local append, no
// shared state — and reports whether the ring is now full, in which case the
// caller must Drain before the next Push. (A Push past capacity is tolerated
// — the ring grows — but loses the fixed-footprint guarantee.)
func (b *ThreadBuffer) Push(e *Entry) bool {
	b.ring = append(b.ring, e)
	return len(b.ring) >= b.cap
}

// Len returns the ring occupancy.
func (b *ThreadBuffer) Len() int { return len(b.ring) }

// NeedsDrain reports whether the ring has reached its drain watermark (3/4 of
// capacity). Callers amortising drains over an op tick drain at the watermark
// so the ring never fills between ticks.
func (b *ThreadBuffer) NeedsDrain() bool { return len(b.ring) >= b.wm }

// Occupancy returns the occupancy last published by a Drain or
// PublishOccupancy — readable from any thread, at most one ring of staleness.
func (b *ThreadBuffer) Occupancy() int { return int(b.occ.Load()) }

// PublishOccupancy publishes the current occupancy for cross-thread readers
// (gauges). Owner-thread only, like Push.
func (b *ThreadBuffer) PublishOccupancy() { b.occ.Store(int32(len(b.ring))) }

// NewEntry returns a recycled or fresh Entry initialised for (base, size),
// drawing on the buffer's local cache so the hot path usually takes no lock.
func (b *ThreadBuffer) NewEntry(base, size uint64) *Entry {
	e := b.free
	if e == nil {
		e = b.q.getChain()
		if e == nil {
			return &Entry{Base: base, Size: size}
		}
	}
	b.free = e.next
	*e = Entry{Base: base, Size: size}
	return e
}

// Drain publishes the whole ring: membership inserts grouped by shard,
// double-free losers counted in one add and recycled straight into the local
// entry cache, byte/entry accounting published as one set of atomic adds, and
// the winners appended to the pending list in a single Append. Accounting is
// published before the pending append so a sweep that locks the batch in can
// never release an entry whose bytes were not yet counted.
func (b *ThreadBuffer) Drain() {
	if len(b.ring) == 0 {
		b.occ.Store(0)
		return
	}
	// Deferred zeroing first: entries must never reach Append — where a
	// sweep's LockIn can see and release them — still holding their old
	// bytes. Double-free losers get re-zeroed harmlessly (the known-zero
	// map elides the second pass).
	if b.zeroHook != nil {
		b.zeroHook(b.ring)
	}
	q := b.q
	for i := range b.groups {
		b.groups[i] = b.groups[i][:0]
	}
	for _, e := range b.ring {
		si := shardIdx(e.Base)
		b.groups[si] = append(b.groups[si], e)
	}
	winners := b.batch[:0]
	dups := b.dups[:0]
	for si := range b.groups {
		g := b.groups[si]
		if len(g) == 0 {
			continue
		}
		s := &q.shards[si]
		s.mu.Lock()
		for _, e := range g {
			if s.insert(e) {
				winners = append(winners, e)
			} else {
				dups = append(dups, e)
			}
		}
		s.mu.Unlock()
	}
	var mapped, unmapped int64
	for _, e := range winners {
		if e.Unmapped {
			unmapped += int64(e.Size)
		} else {
			mapped += int64(e.Size)
		}
	}
	if mapped != 0 {
		q.bytes.Add(mapped)
	}
	if unmapped != 0 {
		q.unmappedBytes.Add(unmapped)
	}
	if len(winners) != 0 {
		q.entries.Add(int64(len(winners)))
	}
	if len(dups) != 0 {
		q.doubleFrees.Add(uint64(len(dups)))
		for _, e := range dups {
			e.Ref = nil
			e.next = b.free
			b.free = e
		}
	}
	q.Append(winners)
	b.batch = winners[:0]
	b.dups = dups[:0]
	clear(b.ring)
	b.ring = b.ring[:0]
	b.occ.Store(0)
}

// SetZeroHook installs fn to run over the ring at the top of every Drain
// (deferred zero-on-free). Must be set before the buffer's first Push; the
// hook runs on whichever thread drains — the owner at its amortised tick, or
// the sweeper inside its quiesce — so fn must be safe to call from either.
func (b *ThreadBuffer) SetZeroHook(fn func([]*Entry)) { b.zeroHook = fn }

// Flush is Drain, kept under the historical name for call sites that publish
// a thread's frees before a sweep or pause.
func (b *ThreadBuffer) Flush() { b.Drain() }

// Retire drains the ring and donates the local entry cache back to the
// global freelist; the owning thread is going away.
func (b *ThreadBuffer) Retire() {
	b.Drain()
	if b.free != nil {
		b.q.putChain(b.free)
		b.free = nil
	}
}
