// The ZeroDeferred A/B experiment behind the EXPERIMENTS.md numbers.
//
// The loop stores one word into each chunk before freeing it: an untouched
// chunk's page keeps its known-zero bit, so BOTH modes elide the clear and
// the comparison collapses to bookkeeping noise (measured at parity). The
// store drops the bit, making every free owe a real scrub — immediate mode
// pays a region lookup plus an 80-byte clear per free, deferred mode a few
// range-merged clears per ring drain. That dividend is ~10% of the pair, so
// two separate `go test -bench` entries cannot resolve it reliably on this
// host: ±10% window drift swamps it (the same failure mode the telemetry
// gate documents). This test reuses that gate's estimator: one long-lived
// process per ZeroMode, alternating fixed-iteration chunks, the minimum
// chunk per side as its fast-path floor.
package minesweeper_test

import (
	"math"
	"os"
	"testing"
	"time"

	minesweeper "minesweeper"
)

// TestZeroModeABFloor reports the ZeroImmediate vs ZeroDeferred malloc/free
// floors and fails only if deferral makes the pair slower — the mode exists
// to buy throughput with the documented stale-read window, so costing ns
// would mean the batch path regressed (e.g. the drain's merge stopped
// coalescing). Skipped unless MS_ZERO_AB is set: meaningful only on an idle
// machine.
func TestZeroModeABFloor(t *testing.T) {
	if os.Getenv("MS_ZERO_AB") == "" {
		t.Skip("set MS_ZERO_AB=1 to run the ZeroMode A/B floor comparison")
	}
	const (
		opsPerChunk = 100_000
		chunks      = 30
		pairs       = 3
		maxRatio    = 1.0 // deferred must not be slower than immediate
		attempts    = 3
	)
	newThread := func(mode minesweeper.ZeroMode) (*minesweeper.Process, *minesweeper.Thread) {
		p, err := minesweeper.NewProcess(minesweeper.Config{
			Scheme:   minesweeper.SchemeMineSweeper,
			ZeroMode: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		th, err := p.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		return p, th
	}
	chunk := func(th *minesweeper.Thread) float64 {
		start := time.Now()
		for i := 0; i < opsPerChunk; i++ {
			a, err := th.Malloc(64)
			if err != nil {
				t.Fatal(err)
			}
			if err := th.Store(a, uint64(i)|1); err != nil {
				t.Fatal(err)
			}
			if err := th.Free(a); err != nil {
				t.Fatal(err)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / opsPerChunk
	}
	measure := func() (immMin, defMin float64) {
		immMin, defMin = math.Inf(1), math.Inf(1)
		for p := 0; p < pairs; p++ {
			pImm, thImm := newThread(minesweeper.ZeroImmediate)
			pDef, thDef := newThread(minesweeper.ZeroDeferred)
			chunk(thImm) // discard: cold-heap cost
			chunk(thDef)
			for c := 0; c < chunks; c++ {
				if v := chunk(thImm); v < immMin {
					immMin = v
				}
				if v := chunk(thDef); v < defMin {
					defMin = v
				}
			}
			thImm.Close()
			thDef.Close()
			pImm.Close()
			pDef.Close()
		}
		return immMin, defMin
	}
	var ratio float64
	for a := 0; a < attempts; a++ {
		immMin, defMin := measure()
		ratio = defMin / immMin
		t.Logf("attempt %d: %.1f ns/op (deferred) vs %.1f ns/op (immediate) = %.4fx (limit %.2fx, min over %d pairs x %d interleaved chunks of %d ops)",
			a, defMin, immMin, ratio, maxRatio, pairs, chunks, opsPerChunk)
		if ratio <= maxRatio {
			return
		}
	}
	t.Errorf("deferred zeroing is %.4fx of immediate (want <= %.2fx) in %d attempts", ratio, maxRatio, attempts)
}
