// Package control is MineSweeper's adaptive control plane: the component
// that closes the telemetry loop. The paper fixes its policy knobs offline —
// the 15% quarantine fraction that triggers a sweep (§3.2), the 9x unmapped
// factor (§4.2), the §5.7 allocation-pause brake — and Figure 13 shows how a
// single static threshold trades memory against CPU differently on every
// workload. Production memory-safety tooling (GWP-ASan) instead feeds cheap
// always-on signals into runtime policy. This package is that feedback
// controller for MineSweeper.
//
// The pieces:
//
//   - Knobs: the runtime-steerable policy parameters (sweep-trigger
//     fraction, unmapped factor, pause-brake strength, helper worker count),
//     published through one atomic pointer so hot paths read them with a
//     single load;
//   - Rails: per-knob min/max bounds every policy decision is clamped to;
//   - Pressure: a hysteresis-banded evaluator folding RSS, live bytes,
//     quarantine depth/age and the user's memory budget into one of three
//     levels (Nominal, Elevated, Critical). Enter and exit thresholds
//     differ, so a workload hovering at a band edge does not flap;
//   - Policy: the decision function. Static freezes the configured knobs
//     (bit-for-bit the ungoverned behaviour); AIMD — the default governor —
//     tightens multiplicatively under pressure and relaxes additively back
//     toward the configured baseline when calm, the classic
//     congestion-control shape that reacts fast and recovers smoothly;
//   - Plane: one heap's control plane, observed by the core layer at every
//     sweep boundary, recording each adjustment with its triggering inputs
//     in a lock-free decision ring (mirroring telemetry.SweepRing).
//
// Cost discipline matches the telemetry layer's: decisions happen only at
// sweep boundaries (already rare and expensive), and the mutator-visible
// cost is one atomic pointer load on the amortised sweep-trigger and pause
// checks — paths that already run once per 16 operations, not per operation.
package control

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
)

// Knobs is the set of policy parameters the control plane steers between
// sweeps. The zero value is not meaningful; a plane's base knobs come from
// the core configuration.
type Knobs struct {
	// SweepThreshold is the quarantine fraction of the live heap that
	// triggers a sweep (§3.2; the paper's offline default is 0.15).
	SweepThreshold float64 `json:"sweep_threshold"`
	// UnmappedFactor is the unmapped-quarantine multiple of RSS that
	// triggers a sweep (§4.2; the paper uses 9).
	UnmappedFactor float64 `json:"unmapped_factor"`
	// PauseThreshold is the quarantine:heap ratio past which allocating
	// threads pause for a sweep (§5.7). Lower is a stronger brake; zero
	// keeps pausing disabled.
	PauseThreshold float64 `json:"pause_threshold"`
	// Helpers is the helper sweep-worker count (§4.4).
	Helpers int `json:"helpers"`
	// RescanBudgetPages is the pipelined sweep's dirty-page budget: the
	// concurrent pre-clean keeps running rounds until the soft-dirty set
	// is under this many pages before stopping the world, so a lower
	// budget buys shorter STW windows with more concurrent scanning.
	// Zero or negative disables pre-clean (the STW re-scan takes the
	// dirty set as-is).
	RescanBudgetPages int `json:"rescan_budget_pages"`
	// ZeroDeferred moves §4.1 zero-on-free for ring-buffered small frees
	// from free() to the batched ring drain. True is the relaxed
	// (throughput) state; under pressure the governor turns it off so
	// freed memory is scrubbed immediately and drains stay short.
	ZeroDeferred bool `json:"zero_deferred"`
}

// Rails bound every knob. Decisions are clamped to the rails before
// publication, so a runaway policy cannot push the system outside the
// envelope the operator configured.
type Rails struct {
	SweepThresholdMin float64 `json:"sweep_threshold_min"`
	SweepThresholdMax float64 `json:"sweep_threshold_max"`
	UnmappedFactorMin float64 `json:"unmapped_factor_min"`
	UnmappedFactorMax float64 `json:"unmapped_factor_max"`
	PauseThresholdMin float64 `json:"pause_threshold_min"`
	PauseThresholdMax float64 `json:"pause_threshold_max"`
	HelpersMin        int     `json:"helpers_min"`
	HelpersMax        int     `json:"helpers_max"`
	RescanBudgetMin   int     `json:"rescan_budget_min"`
	RescanBudgetMax   int     `json:"rescan_budget_max"`
	// ZeroDeferredAllowed caps the ZeroDeferred knob: when false the knob
	// is forced off. The governor may always fall back to immediate
	// zeroing, but must never defer zeroing the configuration did not
	// opt into — deferral is a semantic change (a wider benign-read
	// window), not just a speed knob.
	ZeroDeferredAllowed bool `json:"zero_deferred_allowed"`
}

// DefaultRails derives the standard envelope around a base configuration:
// threshold-like knobs may tighten well below their configured value but
// never rise above it (the configured value is the relaxed state), and the
// helper count may grow to roughly double the configured workers but never
// shrink below them. A pause brake the user disabled (base 0) stays disabled
// — the governor must not introduce stalls the configuration promised away.
func DefaultRails(base Knobs) Rails {
	r := Rails{
		SweepThresholdMin: base.SweepThreshold / 16,
		SweepThresholdMax: base.SweepThreshold,
		UnmappedFactorMin: 1,
		UnmappedFactorMax: base.UnmappedFactor,
		PauseThresholdMin: base.PauseThreshold / 8,
		PauseThresholdMax: base.PauseThreshold,
		HelpersMin:        base.Helpers,
		HelpersMax:        2*base.Helpers + 2,
		RescanBudgetMin:   base.RescanBudgetPages / 8,
		RescanBudgetMax:   base.RescanBudgetPages,
		// Deferral the user did not configure stays off, like the
		// disabled pause brake below.
		ZeroDeferredAllowed: base.ZeroDeferred,
	}
	if base.UnmappedFactor < 1 {
		// Unmapped trigger disabled (or nonsensical) in the base config:
		// freeze it rather than inventing one.
		r.UnmappedFactorMin = base.UnmappedFactor
		r.UnmappedFactorMax = base.UnmappedFactor
	}
	if base.RescanBudgetPages <= 0 {
		// Pre-clean disabled in the base config: the governor must not
		// introduce concurrent scan rounds the configuration turned off.
		r.RescanBudgetMin = base.RescanBudgetPages
		r.RescanBudgetMax = base.RescanBudgetPages
	}
	return r
}

// Clamp returns k with every field forced inside the rails.
func (r Rails) Clamp(k Knobs) Knobs {
	k.SweepThreshold = clampF(k.SweepThreshold, r.SweepThresholdMin, r.SweepThresholdMax)
	k.UnmappedFactor = clampF(k.UnmappedFactor, r.UnmappedFactorMin, r.UnmappedFactorMax)
	k.PauseThreshold = clampF(k.PauseThreshold, r.PauseThresholdMin, r.PauseThresholdMax)
	if k.Helpers < r.HelpersMin {
		k.Helpers = r.HelpersMin
	}
	if k.Helpers > r.HelpersMax {
		k.Helpers = r.HelpersMax
	}
	if k.RescanBudgetPages < r.RescanBudgetMin {
		k.RescanBudgetPages = r.RescanBudgetMin
	}
	if k.RescanBudgetPages > r.RescanBudgetMax {
		k.RescanBudgetPages = r.RescanBudgetMax
	}
	k.ZeroDeferred = k.ZeroDeferred && r.ZeroDeferredAllowed
	return k
}

// Contains reports whether k lies inside the rails (tests).
func (r Rails) Contains(k Knobs) bool { return r.Clamp(k) == k }

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Level is a hysteresis-banded pressure level.
type Level int32

// Pressure levels.
const (
	// Nominal: comfortably inside the budget; the policy relaxes toward
	// its configured baseline.
	Nominal Level = iota
	// Elevated: approaching the budget (or the sweeper is falling behind);
	// the policy tightens.
	Elevated
	// Critical: at or over the budget; the policy tightens hard.
	Critical
)

// String returns the level's name.
func (l Level) String() string {
	switch l {
	case Nominal:
		return "nominal"
	case Elevated:
		return "elevated"
	case Critical:
		return "critical"
	default:
		return fmt.Sprintf("Level(%d)", int32(l))
	}
}

// MarshalJSON renders the level as its name.
func (l Level) MarshalJSON() ([]byte, error) { return json.Marshal(l.String()) }

// UnmarshalJSON accepts either the name or the numeric value.
func (l *Level) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		for _, v := range []Level{Nominal, Elevated, Critical} {
			if v.String() == s {
				*l = v
				return nil
			}
		}
		return fmt.Errorf("control: unknown pressure level %q", s)
	}
	var n int32
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*l = Level(n)
	return nil
}

// Inputs is the heap state one pressure evaluation observes — the telemetry
// signals PR 4 built, gathered by the core layer at a sweep boundary.
type Inputs struct {
	// LiveBytes is the application's live heap (substrate allocations minus
	// quarantine).
	LiveBytes uint64 `json:"live_bytes"`
	// QuarantinedBytes is mapped freed-but-unreleased bytes.
	QuarantinedBytes uint64 `json:"quarantined_bytes"`
	// UnmappedBytes is the decommitted portion of the quarantine (§4.2).
	UnmappedBytes uint64 `json:"unmapped_bytes"`
	// FailedBytes is quarantined bytes held back by failed frees.
	FailedBytes uint64 `json:"failed_bytes"`
	// RSS is the resident footprint the budget is measured against.
	RSS uint64 `json:"rss"`
	// Budget is the configured memory budget (0 = unbounded).
	Budget uint64 `json:"budget"`
	// AgeEpochs is how many sweep epochs the oldest pending free has
	// waited — the sweeper-falling-behind signal.
	AgeEpochs uint64 `json:"age_epochs"`
	// SweepNanos, Released and Retained describe the sweep that just
	// completed (zero when the sweep had nothing to do).
	SweepNanos int64  `json:"sweep_ns"`
	Released   uint64 `json:"released"`
	Retained   uint64 `json:"retained"`
}

// Usage returns the budget-usage ratio (RSS against budget), or 0 when no
// budget is set.
func (in Inputs) Usage() float64 {
	if in.Budget == 0 {
		return 0
	}
	return float64(in.RSS) / float64(in.Budget)
}

// Bands parameterises the pressure evaluator. Enter thresholds sit above
// exit thresholds so a workload oscillating around one boundary does not
// flap between levels (classic hysteresis).
type Bands struct {
	// ElevatedEnter/ElevatedExit band the Nominal<->Elevated boundary as
	// budget-usage ratios.
	ElevatedEnter float64 `json:"elevated_enter"`
	ElevatedExit  float64 `json:"elevated_exit"`
	// CriticalEnter/CriticalExit band the Elevated<->Critical boundary.
	CriticalEnter float64 `json:"critical_enter"`
	CriticalExit  float64 `json:"critical_exit"`
	// AgeElevated is the quarantine age, in sweep epochs, past which
	// pressure is at least Elevated regardless of budget: the sweeper is
	// provably not keeping up with the free rate.
	AgeElevated uint64 `json:"age_elevated"`
}

// DefaultBands returns the standard hysteresis bands: Elevated at 80% of
// budget (back to Nominal below 70%), Critical at 95% (back below 85%), and
// the sweeper declared behind once the oldest pending free has waited 8
// sweeps.
func DefaultBands() Bands {
	return Bands{
		ElevatedEnter: 0.80,
		ElevatedExit:  0.70,
		CriticalEnter: 0.95,
		CriticalExit:  0.85,
		AgeElevated:   8,
	}
}

// Next folds one observation into the level state machine and returns the
// new level. It is a pure function of its arguments, so callers other than
// Plane — the fleet arbiter runs the same hysteresis over host-wide inputs —
// can reuse the exact banding the per-heap planes use.
func (b Bands) Next(cur Level, in Inputs) Level {
	u := in.Usage()
	lvl := cur
	switch cur {
	case Nominal:
		if u >= b.CriticalEnter {
			lvl = Critical
		} else if u >= b.ElevatedEnter {
			lvl = Elevated
		}
	case Elevated:
		if u >= b.CriticalEnter {
			lvl = Critical
		} else if u < b.ElevatedExit {
			lvl = Nominal
		}
	case Critical:
		if u < b.CriticalExit {
			if u >= b.ElevatedEnter {
				lvl = Elevated
			} else {
				lvl = Nominal
			}
		}
	}
	// Sweeper falling behind lifts pressure to at least Elevated even with
	// no budget set: an ancient pending free means quarantine is growing
	// faster than sweeps retire it.
	if b.AgeElevated > 0 && in.AgeEpochs >= b.AgeElevated && lvl == Nominal {
		lvl = Elevated
	}
	return lvl
}

// Config configures a Plane.
type Config struct {
	// Base is the configured (relaxed) knob values.
	Base Knobs
	// Rails bound decisions; the zero value means DefaultRails(Base).
	Rails Rails
	// Budget is the memory budget in bytes (0 = unbounded; pressure then
	// comes only from quarantine age).
	Budget uint64
	// Policy decides knob adjustments; nil means Static.
	Policy Policy
	// Bands parameterise the pressure evaluator; the zero value means
	// DefaultBands.
	Bands Bands
	// RingCap is the decision ring capacity (DefaultRingCap if <= 0).
	RingCap int
}

// Plane is one heap's control plane. The core layer calls Observe under its
// sweep lock (single writer); mutator hot paths call Knobs, Budget and Level
// concurrently (atomic reads). Budget and rails are themselves republishable
// at runtime (SetBudget/SetRails): a host-level arbiter apportioning one
// machine budget across many tenant planes re-grants each tenant's slice at
// its own cadence, and the tenant's next sweep-boundary observation picks the
// new envelope up — no tenant fast-path cost beyond the atomic loads already
// there.
type Plane struct {
	base   Knobs
	policy Policy
	bands  Bands

	rails        atomic.Pointer[Rails]
	budget       atomic.Uint64
	cur          atomic.Pointer[Knobs]
	level        atomic.Int32
	observations atomic.Uint64
	ring         *DecisionRing
}

// NewPlane builds a control plane publishing cfg.Base as the initial knobs.
func NewPlane(cfg Config) *Plane {
	if cfg.Policy == nil {
		cfg.Policy = Static{}
	}
	if cfg.Rails == (Rails{}) {
		cfg.Rails = DefaultRails(cfg.Base)
	}
	if cfg.Bands == (Bands{}) {
		cfg.Bands = DefaultBands()
	}
	p := &Plane{
		base:   cfg.Base,
		policy: cfg.Policy,
		bands:  cfg.Bands,
		ring:   NewDecisionRing(cfg.RingCap),
	}
	rails := cfg.Rails
	p.rails.Store(&rails)
	p.budget.Store(cfg.Budget)
	base := cfg.Base
	p.cur.Store(&base)
	return p
}

// Knobs returns the currently effective knob values (one atomic load).
func (p *Plane) Knobs() Knobs { return *p.cur.Load() }

// Base returns the configured (relaxed) knob values.
func (p *Plane) Base() Knobs { return p.base }

// Rails returns the decision envelope (one atomic load).
func (p *Plane) Rails() Rails { return *p.rails.Load() }

// SetRails republishes the decision envelope. The currently effective knobs
// are immediately re-clamped into the new rails, so a shrinking envelope
// takes hold without waiting for the next sweep boundary. Safe to call from
// any goroutine (a host arbiter), concurrently with Observe: the clamp here
// and the one inside Observe both land inside one of the two envelopes, and
// the next Observe settles on the new one.
func (p *Plane) SetRails(r Rails) {
	rails := r
	p.rails.Store(&rails)
	cur := *p.cur.Load()
	if clamped := r.Clamp(cur); clamped != cur {
		p.cur.Store(&clamped)
	}
}

// Budget returns the memory budget in bytes (0 = unbounded; one atomic load).
func (p *Plane) Budget() uint64 { return p.budget.Load() }

// SetBudget republishes the memory budget (0 = unbounded). Safe to call from
// any goroutine: the heap reads the budget on its amortised trigger/pause
// checks and the plane folds it into the next sweep-boundary observation, so
// a re-granted tenant converges within one sweep cycle.
func (p *Plane) SetBudget(b uint64) { p.budget.Store(b) }

// Level returns the current pressure level.
func (p *Plane) Level() Level { return Level(p.level.Load()) }

// PolicyName returns the governing policy's name.
func (p *Plane) PolicyName() string { return p.policy.Name() }

// Observations returns how many sweep-boundary observations the plane has
// folded in (decisions are the subset that changed something).
func (p *Plane) Observations() uint64 { return p.observations.Load() }

// Ring exposes the decision ring (tests, custom renderers).
func (p *Plane) Ring() *DecisionRing { return p.ring }

// Observe folds one sweep-boundary observation into the plane: evaluate
// pressure with hysteresis, let the policy steer the knobs, clamp to the
// rails, publish. Returns the decision and whether anything changed (level
// or knobs); unchanged observations are counted but not recorded, so the
// ring holds adjustments, not heartbeats.
//
// Observe must be called from one goroutine at a time (the core layer's
// sweep lock provides this); readers of Knobs/Level are lock-free.
func (p *Plane) Observe(in Inputs) (Decision, bool) {
	p.observations.Add(1)
	in.Budget = p.budget.Load()
	prev := Level(p.level.Load())
	lvl := p.bands.Next(prev, in)
	cur := *p.cur.Load()
	rails := *p.rails.Load()
	next := rails.Clamp(p.policy.Decide(lvl, in, cur, p.base, rails))
	if lvl == prev && next == cur {
		return Decision{}, false
	}
	p.level.Store(int32(lvl))
	if next != cur {
		k := next
		p.cur.Store(&k)
	}
	d := Decision{Level: lvl, In: in, Before: cur, After: next}
	d.Seq = p.ring.Push(d)
	return d, true
}

// State is the plane's exportable snapshot, embedded in telemetry snapshots
// and rendered by msrun/msstat.
type State struct {
	Policy         string     `json:"policy"`
	Level          Level      `json:"level"`
	Budget         uint64     `json:"budget"`
	Base           Knobs      `json:"base"`
	Knobs          Knobs      `json:"knobs"`
	Rails          Rails      `json:"rails"`
	Observations   uint64     `json:"observations"`
	DecisionsTotal uint64     `json:"decisions_total"`
	Decisions      []Decision `json:"decisions"`
}

// State captures the plane's current state, including the decision ring's
// retained window (oldest first).
func (p *Plane) State() State {
	return State{
		Policy:         p.policy.Name(),
		Level:          p.Level(),
		Budget:         p.Budget(),
		Base:           p.base,
		Knobs:          p.Knobs(),
		Rails:          p.Rails(),
		Observations:   p.observations.Load(),
		DecisionsTotal: p.ring.Total(),
		Decisions:      p.ring.Snapshot(),
	}
}
