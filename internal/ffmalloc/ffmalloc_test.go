package ffmalloc

import (
	"errors"
	"testing"

	"minesweeper/internal/alloc"
	"minesweeper/internal/mem"
)

func newHeap(t testing.TB) (*Heap, *mem.AddressSpace) {
	t.Helper()
	as := mem.NewAddressSpace()
	return New(as), as
}

func TestAddressesNeverReused(t *testing.T) {
	h, _ := newHeap(t)
	tid := h.RegisterThread()
	seen := make(map[uint64]bool)
	for i := 0; i < 5000; i++ {
		a, err := h.Malloc(tid, 64)
		if err != nil {
			t.Fatal(err)
		}
		if seen[a] {
			t.Fatalf("address %#x reused", a)
		}
		seen[a] = true
		if err := h.Free(tid, a); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAddressesMonotonicallyIncrease(t *testing.T) {
	h, _ := newHeap(t)
	tid := h.RegisterThread()
	var prev uint64
	for i := 0; i < 1000; i++ {
		a, err := h.Malloc(tid, 128)
		if err != nil {
			t.Fatal(err)
		}
		if a <= prev {
			t.Fatalf("address %#x not greater than previous %#x", a, prev)
		}
		prev = a
		_ = h.Free(tid, a)
	}
}

func TestPhysicalPagesReleasedWhenDead(t *testing.T) {
	h, as := newHeap(t)
	tid := h.RegisterThread()
	// Fill a few pages worth of one class, then free everything.
	var addrs []uint64
	for i := 0; i < 1024; i++ { // 1024 * 64B = 16 pages
		a, err := h.Malloc(tid, 64)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	rssFull := as.RSS()
	for _, a := range addrs {
		if err := h.Free(tid, a); err != nil {
			t.Fatal(err)
		}
	}
	if got := as.RSS(); got >= rssFull {
		t.Errorf("RSS = %d after freeing all, want < %d", got, rssFull)
	}
}

func TestLongLivedObjectPinsPage(t *testing.T) {
	// FFMalloc's fragmentation pathology: one survivor keeps its page
	// resident while the VA around it is lost forever.
	h, as := newHeap(t)
	tid := h.RegisterThread()
	var addrs []uint64
	for i := 0; i < 640; i++ { // 10 pages of 64B objects
		a, _ := h.Malloc(tid, 64)
		addrs = append(addrs, a)
	}
	// Keep one object per page (64 objects per page).
	var freedRSS = func() uint64 {
		for i, a := range addrs {
			if i%64 == 0 {
				continue // survivor
			}
			if err := h.Free(tid, a); err != nil {
				t.Fatal(err)
			}
		}
		return as.RSS()
	}()
	// All 10 pages must still be resident despite 98% of bytes being dead.
	if freedRSS < 10*mem.PageSize {
		t.Errorf("RSS = %d, want >= %d (survivors pin pages)", freedRSS, 10*mem.PageSize)
	}
}

func TestLargeAllocationUnmappedOnFree(t *testing.T) {
	h, as := newHeap(t)
	tid := h.RegisterThread()
	a, err := h.Malloc(tid, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if as.RSS() < 1<<20 {
		t.Fatal("large allocation not resident")
	}
	if err := h.Free(tid, a); err != nil {
		t.Fatal(err)
	}
	if got := as.RSS(); got != 0 {
		t.Errorf("RSS = %d after large free, want 0", got)
	}
	// VA is gone entirely: access faults.
	if _, err := as.Load64(a); err == nil {
		t.Error("load of retired large VA succeeded")
	}
}

func TestVAGrowsMonotonically(t *testing.T) {
	h, _ := newHeap(t)
	tid := h.RegisterThread()
	va0 := h.VAUsed()
	for i := 0; i < 100; i++ {
		a, _ := h.Malloc(tid, 100<<10)
		_ = h.Free(tid, a)
	}
	if h.VAUsed() <= va0 {
		t.Error("VAUsed did not grow")
	}
	if h.VAUsed() < 100*(100<<10) {
		t.Errorf("VAUsed = %d, want >= %d (never recycles)", h.VAUsed(), 100*(100<<10))
	}
}

func TestUsableSize(t *testing.T) {
	h, _ := newHeap(t)
	tid := h.RegisterThread()
	a, _ := h.Malloc(tid, 100)
	if got := h.UsableSize(a); got != 128 {
		t.Errorf("UsableSize(small) = %d, want 128", got)
	}
	b, _ := h.Malloc(tid, 5000)
	if got := h.UsableSize(b); got != 2*mem.PageSize {
		t.Errorf("UsableSize(large) = %d, want %d", got, 2*mem.PageSize)
	}
	_ = h.Free(tid, a)
	if got := h.UsableSize(a); got != 0 {
		t.Errorf("UsableSize(freed) = %d, want 0", got)
	}
}

func TestInvalidFree(t *testing.T) {
	h, _ := newHeap(t)
	tid := h.RegisterThread()
	if err := h.Free(tid, mem.HeapBase+64); !errors.Is(err, alloc.ErrInvalidFree) {
		t.Errorf("Free(wild) = %v, want ErrInvalidFree", err)
	}
	a, _ := h.Malloc(tid, 64)
	_ = h.Free(tid, a)
	if err := h.Free(tid, a); !errors.Is(err, alloc.ErrInvalidFree) {
		t.Errorf("Free(retired) = %v, want ErrInvalidFree", err)
	}
}

func TestDanglingPointerCanNeverAlias(t *testing.T) {
	// The one-time allocator's core guarantee: after free, no future
	// allocation ever overlaps the old one.
	h, _ := newHeap(t)
	tid := h.RegisterThread()
	old, _ := h.Malloc(tid, 256)
	oldEnd := old + 256
	_ = h.Free(tid, old)
	for i := 0; i < 10000; i++ {
		a, err := h.Malloc(tid, 256)
		if err != nil {
			t.Fatal(err)
		}
		if a < oldEnd && a+256 > old {
			t.Fatalf("new allocation %#x overlaps retired range [%#x,%#x)", a, old, oldEnd)
		}
	}
}

func TestStats(t *testing.T) {
	h, _ := newHeap(t)
	tid := h.RegisterThread()
	a, _ := h.Malloc(tid, 64)
	st := h.Stats()
	if st.Allocated != 64 || st.Mallocs != 1 {
		t.Errorf("Allocated/Mallocs = %d/%d, want 64/1", st.Allocated, st.Mallocs)
	}
	_ = h.Free(tid, a)
	st = h.Stats()
	if st.Allocated != 0 || st.Frees != 1 {
		t.Errorf("Allocated/Frees = %d/%d, want 0/1", st.Allocated, st.Frees)
	}
}

func TestAllocationSpanningPages(t *testing.T) {
	h, as := newHeap(t)
	tid := h.RegisterThread()
	// 2048-byte allocations: every second one straddles a page boundary.
	var addrs []uint64
	for i := 0; i < 8; i++ {
		a, _ := h.Malloc(tid, 2048)
		addrs = append(addrs, a)
	}
	rss := as.RSS()
	// Free all: all touched pages release.
	for _, a := range addrs {
		if err := h.Free(tid, a); err != nil {
			t.Fatal(err)
		}
	}
	if got := as.RSS(); got >= rss {
		t.Errorf("RSS = %d, want < %d", got, rss)
	}
	// Writes to freed spanning allocations fault (pages released).
	if err := as.Store64(addrs[0], 1); err == nil {
		t.Error("store to released page succeeded")
	}
}

func BenchmarkMallocFree(b *testing.B) {
	h := New(mem.NewAddressSpace())
	tid := h.RegisterThread()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := h.Malloc(tid, 64)
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Free(tid, a); err != nil {
			b.Fatal(err)
		}
	}
}
