package minesweeper

import (
	"errors"
	"testing"
)

func newProc(t testing.TB, cfg Config) (*Process, *Thread) {
	t.Helper()
	// Deterministic tests: synchronous sweeps, tiny buffers.
	cfg.Synchronous = true
	cfg.BufferCap = 1
	cfg.SweepThreshold = 1 // quarantine can never exceed the heap: manual sweeps only
	cfg.PauseThreshold = -1
	p, err := NewProcess(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	th, err := p.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	return p, th
}

func TestQuickstartFlow(t *testing.T) {
	p, th := newProc(t, Config{Scheme: SchemeMineSweeper})
	a, err := th.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Store(a, 42); err != nil {
		t.Fatal(err)
	}
	v, err := th.Load(a)
	if err != nil || v != 42 {
		t.Fatalf("Load = %d, %v; want 42, nil", v, err)
	}
	if err := th.Free(a); err != nil {
		t.Fatal(err)
	}
	// Benign UAF reads zero.
	v, err = th.Load(a)
	if err != nil || v != 0 {
		t.Errorf("UAF Load = %d, %v; want 0, nil", v, err)
	}
	st := p.Stats()
	if st.Quarantined == 0 {
		t.Error("nothing quarantined")
	}
	if !p.Sweep() {
		t.Error("Sweep returned false for minesweeper")
	}
	if got := p.Stats().Quarantined; got != 0 {
		t.Errorf("Quarantined = %d after sweep, want 0", got)
	}
}

func TestUAFPreventionEndToEnd(t *testing.T) {
	p, th := newProc(t, Config{Scheme: SchemeMineSweeper})
	victim, _ := th.Malloc(48)
	// Keep a dangling pointer in a global slot.
	if err := th.Store(p.GlobalSlot(0), victim); err != nil {
		t.Fatal(err)
	}
	if err := th.Free(victim); err != nil {
		t.Fatal(err)
	}
	p.Sweep()
	// The attacker sprays same-size allocations: none may alias victim.
	for i := 0; i < 500; i++ {
		a, err := th.Malloc(48)
		if err != nil {
			t.Fatal(err)
		}
		if a == victim {
			t.Fatal("use-after-reallocate possible: victim address reused")
		}
	}
	if p.Stats().FailedFrees == 0 {
		t.Error("dangling pointer not recorded as failed free")
	}
}

func TestAllSchemesBasicLifecycle(t *testing.T) {
	for _, s := range []Scheme{
		SchemeBaseline, SchemeMineSweeper, SchemeMineSweeperMostlyConcurrent,
		SchemeMarkUs, SchemeFFMalloc, SchemeScudoMineSweeper,
		SchemeOscar, SchemeDangSan, SchemePSweeper, SchemeCRCount,
		SchemeDlmalloc, SchemeMineSweeperDlmalloc,
	} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			p, th := newProc(t, Config{Scheme: s})
			var addrs []Addr
			for i := 0; i < 200; i++ {
				a, err := th.Malloc(uint64(16 + i%900))
				if err != nil {
					t.Fatal(err)
				}
				if err := th.Store(a, uint64(i)); err != nil {
					t.Fatal(err)
				}
				addrs = append(addrs, a)
			}
			for _, a := range addrs {
				if err := th.Free(a); err != nil {
					t.Fatal(err)
				}
			}
			p.Sweep()
			st := p.Stats()
			if st.Mallocs == 0 {
				t.Error("no mallocs recorded")
			}
			if p.Scheme() != s {
				t.Error("Scheme() mismatch")
			}
		})
	}
}

func TestInvalidFreeSurfaces(t *testing.T) {
	_, th := newProc(t, Config{Scheme: SchemeMineSweeper})
	if err := th.Free(0xdead000); !errors.Is(err, ErrInvalidFree) {
		t.Errorf("Free(wild) = %v, want ErrInvalidFree", err)
	}
}

func TestDebugDoubleFree(t *testing.T) {
	_, th := newProc(t, Config{Scheme: SchemeMineSweeper, DebugDoubleFree: true})
	a, _ := th.Malloc(32)
	if err := th.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := th.Free(a); !errors.Is(err, ErrDoubleFree) {
		t.Errorf("double free = %v, want ErrDoubleFree", err)
	}
}

func TestAblationSwitches(t *testing.T) {
	p, th := newProc(t, Config{Scheme: SchemeMineSweeper, DisableZeroing: true})
	a, _ := th.Malloc(64)
	_ = th.Store(a, 7)
	_ = th.Free(a)
	if v, _ := th.Load(a); v != 7 {
		t.Error("zeroing happened despite DisableZeroing")
	}
	_ = p

	p2, th2 := newProc(t, Config{Scheme: SchemeMineSweeper, DisableUnmapping: true})
	b, _ := th2.Malloc(1 << 20)
	rss := p2.RSS()
	_ = th2.Free(b)
	if p2.RSS() != rss {
		t.Error("unmapping happened despite DisableUnmapping")
	}
}

func TestStackSlotsAreRoots(t *testing.T) {
	p, th := newProc(t, Config{Scheme: SchemeMineSweeper})
	a, _ := th.Malloc(48)
	if err := th.Store(th.StackSlot(3), a); err != nil {
		t.Fatal(err)
	}
	_ = th.Free(a)
	p.Sweep()
	if p.Stats().Quarantined == 0 {
		t.Error("stack-rooted dangling pointer ignored by sweep")
	}
}

func TestBaselineIsVulnerable(t *testing.T) {
	// The contrast case: under the baseline, a freed address is promptly
	// reused — the use-after-reallocate window MineSweeper closes.
	_, th := newProc(t, Config{Scheme: SchemeBaseline})
	victim, _ := th.Malloc(48)
	_ = th.Free(victim)
	reused := false
	for i := 0; i < 100; i++ {
		a, _ := th.Malloc(48)
		if a == victim {
			reused = true
			break
		}
	}
	if !reused {
		t.Error("baseline did not reuse freed address (unexpected)")
	}
}

func TestUAFFaultCounting(t *testing.T) {
	p, th := newProc(t, Config{Scheme: SchemeMineSweeper})
	big, _ := th.Malloc(1 << 20) // large: unmapped in quarantine
	_ = th.Free(big)
	if _, err := th.Load(big); err == nil {
		t.Fatal("load of unmapped quarantined page succeeded")
	}
	if p.Stats().UAFFaults != 1 {
		t.Errorf("UAFFaults = %d, want 1", p.Stats().UAFFaults)
	}
}

func TestThreadByteAPI(t *testing.T) {
	_, th := newProc(t, Config{Scheme: SchemeMineSweeper})
	a, err := th.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.StoreBytes(a, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := th.LoadBytes(a, 7)
	if err != nil || string(got) != "payload" {
		t.Fatalf("LoadBytes = %q, %v", got, err)
	}
	if err := th.Store8(a+63, 0xAB); err != nil {
		t.Fatal(err)
	}
	b, err := th.Load8(a + 63)
	if err != nil || b != 0xAB {
		t.Fatalf("Load8 = %#x, %v", b, err)
	}
}
