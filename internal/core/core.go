// Package core implements MineSweeper itself: a drop-in layer between the
// application and the memory allocator that intercepts free(), quarantines
// allocations, and releases them only once a linear sweep of program memory
// demonstrates that no (dangling) pointers to them remain (§3).
//
// The layer implements every mechanism of the paper:
//
//   - free() interception with quarantining and double-free de-duplication
//     via a shadow map of entries (§3);
//   - zero-filling freed memory, which flattens the quarantine reference
//     graph and breaks circular dependencies so a linear sweep suffices
//     instead of a transitive marking procedure (§4.1);
//   - unmapping the physical pages of large quarantined allocations, with the
//     adapted sweep trigger for unmapped memory (§4.2);
//   - fully concurrent and mostly concurrent (soft-dirty stop-the-world
//     re-scan) sweeping (§4.3);
//   - parallel sweeping with a main sweeper plus helper workers that also
//     split the quarantine recycle phase (§4.4);
//   - allocator fragmentation management: extent hooks that decommit and
//     commit instead of purge/demand-fault, plus a full allocator purge after
//     every sweep (§4.5);
//   - pausing allocation briefly when the sweep cannot keep up with an
//     extreme allocation rate (§5.7).
//
// Every mechanism has a Config switch so the paper's ablation studies
// (Figures 15-17) can be reproduced by turning them off one at a time.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"minesweeper/internal/alloc"
	"minesweeper/internal/control"
	"minesweeper/internal/events"
	"minesweeper/internal/jemalloc"
	"minesweeper/internal/mem"
	"minesweeper/internal/quarantine"
	"minesweeper/internal/shadow"
	"minesweeper/internal/sweep"
	"minesweeper/internal/telemetry"
)

// Mode selects how sweeps are scheduled and synchronised.
type Mode int

// Sweep modes.
const (
	// FullyConcurrent sweeps run entirely on background threads with no
	// stop-the-world; allocations quarantined after a sweep starts are
	// only eligible for the next sweep (§4.3). The paper's default.
	FullyConcurrent Mode = iota
	// MostlyConcurrent adds a brief stop-the-world re-scan of pages
	// modified during the concurrent pass, matching MarkUs's guarantees
	// (§4.3, §5.3).
	MostlyConcurrent
	// Synchronous performs the whole sweep on the allocating thread (the
	// pre-concurrency ablation configuration of Figure 15).
	Synchronous
)

// String returns the mode's name.
func (m Mode) String() string {
	switch m {
	case FullyConcurrent:
		return "fully-concurrent"
	case MostlyConcurrent:
		return "mostly-concurrent"
	case Synchronous:
		return "synchronous"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ZeroMode selects when zero-on-free (§4.1) runs for ring-buffered small
// frees; see Config.ZeroMode.
type ZeroMode int

const (
	// ZeroImmediate zeroes inside free() (the paper's semantics; default).
	ZeroImmediate ZeroMode = iota
	// ZeroDeferred batches zeroing into the thread ring's drain.
	ZeroDeferred
)

// String returns the mode's name.
func (z ZeroMode) String() string {
	switch z {
	case ZeroImmediate:
		return "immediate"
	case ZeroDeferred:
		return "deferred"
	default:
		return fmt.Sprintf("ZeroMode(%d)", int(z))
	}
}

// Config controls MineSweeper. The zero value is NOT usable; start from
// DefaultConfig.
type Config struct {
	// Mode selects sweep scheduling.
	Mode Mode
	// World pauses mutator threads for MostlyConcurrent mode. If nil, the
	// stop-the-world re-scan still runs but without stopping mutators
	// (acceptable for tests; real runs supply the simulator's world).
	World sweep.StopTheWorld
	// ConcurrentMark pipelines the MostlyConcurrent sweep: the full-heap
	// marking pass runs concurrently with mutators against the quarantine
	// snapshot taken at lock-in, and only the soft-dirty re-scan (plus the
	// thread-ring quiesce) sits inside the stop-the-world window, so the
	// pause scales with the mutators' write rate rather than heap size
	// (§4.3). When false, the entire mark runs inside the stop-the-world
	// window — the ablation whose pause grows with the heap. Ignored
	// outside MostlyConcurrent mode.
	ConcurrentMark bool
	// RescanBudgetPages bounds the dirty-page set handed to the
	// stop-the-world re-scan: while more pages than this are dirty, the
	// sweeper runs extra concurrent pre-clean rounds (test-and-clear
	// dirty re-scans, at most maxPreCleanRounds) before stopping the
	// world. Zero or negative disables pre-cleaning; only meaningful with
	// ConcurrentMark. Governed heaps steer this knob through the control
	// plane.
	RescanBudgetPages int

	// SweepThreshold triggers a sweep when mapped quarantined bytes
	// (minus failed frees) exceed this fraction of the heap (minus failed
	// frees). The paper uses 0.15 (§3.2).
	SweepThreshold float64
	// UnmappedFactor triggers a sweep when unmapped quarantined bytes
	// exceed this multiple of the program's resident footprint; the paper
	// uses 9 (§4.2).
	UnmappedFactor float64
	// PauseThreshold pauses allocating threads when mapped quarantined
	// bytes (minus failed frees) exceed this fraction of the heap,
	// trading slowdown for bounded memory under extreme allocation rates
	// (§5.7). Zero disables pausing.
	PauseThreshold float64
	// Helpers is the number of helper sweep threads besides the main
	// sweeper (6 in the paper, §4.4).
	Helpers int
	// BufferCap is the thread-local quarantine buffer capacity.
	BufferCap int
	// SweepFloorBytes is the minimum sweepable quarantine (mapped bytes
	// minus failed frees) for the §3.2 threshold trigger to fire. A sweep
	// costs a whole-heap scan regardless of how little it reclaims, so on a
	// tiny heap — where any quarantine at all exceeds 15% — the ratio alone
	// would re-trigger after a handful of frees and the fixed scan cost
	// would dwarf the reclaim. The floor lets the quarantine accumulate a
	// worthwhile batch first; on any realistically sized heap the 15% line
	// sits far above it and the floor never engages. It gates only the
	// ratio trigger: the unmapped-factor and budget triggers compare
	// against resident memory, which bounds their cost by construction.
	SweepFloorBytes uint64

	// Optimisation and partial-version switches (Figures 15-17).

	// Quarantine enables quarantining at all. When false, free() forwards
	// to the allocator (after optional zero/unmap-remap), reproducing the
	// "base overheads" and "unmapping + zeroing" partial versions (§5.5).
	Quarantine bool
	// Zeroing zero-fills memory in free() (§4.1).
	Zeroing bool
	// ZeroMode selects when the §4.1 zero-fill of ring-buffered small
	// frees happens. ZeroImmediate (the default, and the paper's
	// semantics) zeroes inside free(), so a benign dangling read observes
	// zeros from the moment free returns. ZeroDeferred batches the
	// zeroing into the thread ring's drain: one grouped, range-merged
	// ZeroBatch per drain instead of one Zero per free, trading a wider
	// benign-read window (stale bytes remain readable for at most one
	// ring, BufferCap frees) for a cheaper free() hot path. Deferred
	// zeroing always completes before the drained entries become visible
	// to sweeps via Append, so sweeps still never release memory holding
	// its old contents, and an exploit spraying after the drain still
	// finds zeroed memory. Large unmapped frees and the eager
	// (unregistered/debug) path are unaffected. Meaningless unless
	// Zeroing is true.
	ZeroMode ZeroMode
	// Unmapping releases physical pages of large quarantined allocations
	// (§4.2).
	Unmapping bool
	// Sweeping enables the marking pass and shadow-map filtering. When
	// false, sweeps release every quarantined allocation unchecked (the
	// "quarantining"/"concurrency" partial versions, §5.5).
	Sweeping bool
	// FailedFrees keeps allocations with discovered pointers in
	// quarantine. When false, sweeps deallocate regardless (the "sweep"
	// partial version, §5.5).
	FailedFrees bool
	// Purging triggers a full allocator purge after every sweep (§4.5).
	Purging bool
	// DebugDoubleFree reports double frees as errors instead of absorbing
	// them silently (the paper's debug mode, §3).
	DebugDoubleFree bool

	// Telemetry, when non-nil, receives per-sweep records, malloc/free/
	// pause latency samples, and quarantine/arena gauges. Nil disables all
	// instrumentation at the cost of one pointer load per operation; it can
	// also be attached after construction with Heap.SetTelemetry.
	Telemetry *telemetry.Registry

	// Control, when non-nil, is the adaptive control plane: the heap reads
	// its effective knobs (sweep threshold, unmapped factor, pause brake,
	// helper count) instead of the frozen config fields above, and feeds an
	// observation back after every sweep. The plane's base knobs should
	// match this config's values; a Static-policy plane then behaves
	// bit-for-bit like a nil one. Nil means ungoverned (the seed
	// behaviour).
	Control *control.Plane
}

// DefaultConfig returns the paper's default configuration: fully concurrent,
// 15% sweep threshold, 9x unmapped factor, 6 helpers, all optimisations on.
func DefaultConfig() Config {
	return Config{
		Mode:              FullyConcurrent,
		ConcurrentMark:    true,
		RescanBudgetPages: DefaultRescanBudgetPages,
		SweepThreshold:    0.15,
		UnmappedFactor:    9.0,
		PauseThreshold:    3.0,
		Helpers:           sweep.DefaultHelpers,
		BufferCap:         quarantine.DefaultBufferCap,
		SweepFloorBytes:   DefaultSweepFloorBytes,
		Quarantine:        true,
		Zeroing:           true,
		Unmapping:         true,
		Sweeping:          true,
		FailedFrees:       true,
		Purging:           true,
	}
}

// unmapMinBytes is the minimum allocation size worth a decommit syscall pair.
const unmapMinBytes = mem.PageSize

// DefaultSweepFloorBytes is the default minimum sweepable quarantine for a
// threshold-triggered sweep (see Config.SweepFloorBytes): small enough that
// any deliberate churn crosses it within tens of frees, large enough that a
// sweep's fixed whole-heap scan is amortised over thousands of releases.
const DefaultSweepFloorBytes = 32 << 10

// quiescer is optionally implemented by the World: threads blocked in an
// allocation pause mark themselves quiescent so they do not stall a
// stop-the-world.
type quiescer interface {
	BeginQuiescent()
	EndQuiescent()
}

// DefaultRescanBudgetPages is the default dirty-page budget for the
// stop-the-world re-scan (Config.RescanBudgetPages). One dirty page costs the
// re-scan a word-by-word scan of PageSize bytes; 512 pages keep the window
// well under a millisecond on any plausible hardware while making pre-clean
// rounds rare for ordinary write rates.
const DefaultRescanBudgetPages = 512

// maxPreCleanRounds caps the concurrent pre-clean passes per sweep. Each
// round shrinks the dirty set only if the sweeper consumes dirty pages faster
// than mutators produce them; past a couple of rounds the set has either
// converged under the budget or reached the mutators' steady-state write
// footprint, which more rounds cannot shrink.
const maxPreCleanRounds = 2

// maxStopRetries caps the pause aborts per sweep (see finishPipelinedMark):
// a stop that freezes more dirty pages than the budget is abandoned, the
// backlog consumed concurrently, and the stop retried. One abort absorbs the
// common case — a scheduler gap between the last pre-clean round and the stop
// letting mutators dirty a burst — and the second keeps a pathological burst
// from forcing an oversized pause; after that the scan proceeds regardless so
// a write-storm cannot starve the sweep.
const maxStopRetries = 2

// maxShardLagEpochs bounds how many sweep epochs a pending quarantine shard
// may sit unselected before a routine sweep picks it up regardless of size
// (see selectShards).
const maxShardLagEpochs = 4

// sweepCheckInterval is how many quarantining frees a thread performs between
// sweep-trigger evaluations. The trigger compares four atomic counters plus
// the space's RSS (§3.2, §4.2) — cheap, but it was a fifth of the seed's
// free() fast path. Checking every N frees (and on every buffer flush, and
// immediately after unmapping a large allocation) bounds the quarantine
// overshoot to N small frees while removing the loads from the common case.
const sweepCheckInterval = 16

// threadState is MineSweeper's per-mutator-thread state.
type threadState struct {
	tbuf   *quarantine.ThreadBuffer
	subTid alloc.ThreadID // the substrate's ID for this thread
	// drainMu serialises ring drains and retirement. The ring is otherwise
	// owner-thread-only, but the mostly-concurrent sweeper drains every
	// ring inside its stop-the-world window, and a thread that is not
	// parked at a safepoint — one exiting through UnregisterThread, or any
	// thread when no World is attached — could drain or retire the same
	// buffer concurrently. Uncontended in every fast path (the owner takes
	// it only at its amortised drain tick, the sweeper once per sweep).
	drainMu sync.Mutex
	// zeroRuns is the deferred-zero scratch for this thread's ring drains
	// (see Heap.ringZeroHook). Guarded by drainMu like the drain itself.
	zeroRuns []mem.ZeroRun
	// freesSinceCheck counts quarantining frees since the last
	// sweep-trigger evaluation. Owner-thread only, like tbuf.
	freesSinceCheck int
	// mallocsSincePause likewise amortises the allocation-side pause check
	// (three atomic loads per Malloc otherwise). Owner-thread only.
	mallocsSincePause int
	// telMallocs/telFrees are the telemetry sampling countdown ticks:
	// a live tick (> 1) decrements without touching shared state, and the
	// op that exhausts it (or finds it <= 1: fresh thread, or registry
	// detached) loads the registry, is timed into the latency histogram,
	// and rearms from the current sample period. Owner-thread only.
	telMallocs uint64
	telFrees   uint64
	// evRing is this thread's flight-recorder ring (nil when events are
	// detached). Loaded only on already-amortised or already-sampled paths
	// — drains, pauses, the telemetry-sampled op — never on the bare hot
	// path.
	evRing atomic.Pointer[events.Ring]
}

// lockedDrain publishes the ring to the global quarantine under the drain
// lock; every Drain call site uses it (see drainMu). With events attached,
// each non-empty drain emits one KindDrain (entries, drain ns) on the
// thread's ring — emitted by whichever goroutine drains, the owner at its
// tick or the sweeper inside its quiesce (the rings tolerate that foreign
// writer).
func (ts *threadState) lockedDrain() {
	ts.drainMu.Lock()
	if rg := ts.evRing.Load(); rg != nil && ts.tbuf.Len() > 0 {
		n := uint64(ts.tbuf.Len())
		start := time.Now()
		ts.tbuf.Drain()
		rg.Emit(events.KindDrain, n, uint64(time.Since(start)))
	} else {
		ts.tbuf.Drain()
	}
	ts.drainMu.Unlock()
}

// Heap is the MineSweeper-protected heap: alloc.Allocator over a jemalloc
// substrate.
type Heap struct {
	cfg   Config
	sub   alloc.Substrate
	space *mem.AddressSpace
	marks *shadow.Bitmap
	// unmappedPages mirrors which heap pages MineSweeper decommitted in
	// quarantine — the paper's "small shadow bitmap" from §4.5. Sweeps
	// skip those pages via residency; the bitmap exists for accounting
	// and for restoring protections on commit.
	unmappedPages *shadow.Bitmap
	// q is created at attach time so its pending-shard count can mirror
	// the substrate's arena shards (per-shard sweep ownership); qSharded
	// gates the per-free shard-stamping assertion.
	q        *quarantine.Quarantine
	qSharded bool
	sw       *sweep.Sweeper
	// ctl is the adaptive control plane (nil = ungoverned). Written once at
	// construction; its knobs are read through one atomic load on the
	// amortised trigger/pause paths and at sweep boundaries.
	ctl *control.Plane

	threads  atomic.Pointer[[]*threadState]
	threadMu sync.Mutex

	// Sweeper machinery.
	sweepReq    chan struct{}
	stop        chan struct{}
	wg          sync.WaitGroup
	sweepMu     sync.Mutex // serialises sweeps (Synchronous vs background)
	genMu       sync.Mutex
	genCond     *sync.Cond
	sweepGen    uint64
	recycleTids []alloc.ThreadID // one registered jemalloc thread per sweep worker
	// Scratch for per-shard sweep selection, reused across sweeps.
	// Owned by the sweep (guarded by sweepMu).
	shardStats []quarantine.ShardPending
	shardSel   []bool

	// deferZero caches the effective zeroing deferral switch for the free()
	// hot path: Config.ZeroMode at construction, re-steered by the governor
	// (within its rails) at sweep boundaries. One atomic load per free
	// instead of a whole Knobs copy.
	deferZero atomic.Bool
	// deferredZeroBytes counts bytes zeroed by the batched drain pass
	// (the work ZeroDeferred moved off the free() hot path).
	deferredZeroBytes atomic.Uint64

	// Statistics.
	sweeps          atomic.Uint64
	failedFrees     atomic.Uint64
	releasedFrees   atomic.Uint64
	lateDoubleFrees atomic.Uint64
	stwNanos        atomic.Int64
	pauseNanos      atomic.Int64

	// Telemetry. tel is nil when disabled — every instrumented path loads
	// it once and branches, so the disabled cost is a single predictable
	// branch. trigReason latches the first cause that requested the
	// currently pending sweep (values are telemetry.TriggerReason+1; zero
	// means none, i.e. a forced sweep).
	tel        atomic.Pointer[telemetry.Registry]
	trigReason atomic.Uint32
	// drainHist samples ring-drain latency when telemetry is attached
	// (registered by SetTelemetry; nil otherwise).
	drainHist atomic.Pointer[telemetry.Histogram]

	// Flight recorder (internal/events). evt is nil when detached — the
	// same one-pointer-load-and-branch discipline as tel. evtSweep caches
	// the sweeper's ring; evLevel remembers the last governor level the
	// sweeper saw (guarded by sweepMu) so level transitions become events
	// and entering Critical trips a flight dump.
	evt      atomic.Pointer[events.Recorder]
	evtSweep atomic.Pointer[events.Ring]
	evLevel  control.Level
}

var _ alloc.Allocator = (*Heap)(nil)

// New builds a MineSweeper heap over space with a jemalloc substrate created
// internally and MineSweeper's extent hooks installed — the paper's default
// pairing.
func New(space *mem.AddressSpace, cfg Config, jcfg jemalloc.Config) (*Heap, error) {
	h, err := newHeap(space, cfg)
	if err != nil {
		return nil, err
	}
	jcfg.Hooks = &msHooks{h: h, inner: jcfg.Hooks}
	return h.attach(jemalloc.New(space, jcfg)), nil
}

// NewWithSubstrate builds MineSweeper over any allocator substrate (§7: the
// drop-in layer "can be easily integrated with any allocator" — the Scudo
// variant uses this entry point).
func NewWithSubstrate(space *mem.AddressSpace, cfg Config, sub alloc.Substrate) (*Heap, error) {
	h, err := newHeap(space, cfg)
	if err != nil {
		return nil, err
	}
	return h.attach(sub), nil
}

func newHeap(space *mem.AddressSpace, cfg Config) (*Heap, error) {
	marks, err := shadow.New(mem.HeapBase, mem.HeapLimit, 4)
	if err != nil {
		return nil, err
	}
	unmapped, err := shadow.New(mem.HeapBase, mem.HeapLimit, mem.PageShift)
	if err != nil {
		return nil, err
	}
	h := &Heap{
		cfg:           cfg,
		space:         space,
		marks:         marks,
		unmappedPages: unmapped,
		ctl:           cfg.Control,
		sweepReq:      make(chan struct{}, 1),
		stop:          make(chan struct{}),
	}
	h.genCond = sync.NewCond(&h.genMu)
	h.deferZero.Store(cfg.Zeroing && cfg.ZeroMode == ZeroDeferred)
	return h, nil
}

// attach finalises construction once the substrate exists.
func (h *Heap) attach(sub alloc.Substrate) *Heap {
	cfg := h.cfg
	space := h.space
	marks := h.marks
	h.sub = sub

	// Per-arena-shard sweep ownership (the quarantine side): mirror the
	// substrate's arena shard count in the quarantine's pending shards so
	// each arena's frees can be locked in — and hence swept — on that
	// shard's own cadence (selectShards). Substrates without arena shards
	// get the single-shard quarantine, which behaves exactly as before.
	nshards := 1
	if na, ok := sub.(interface{ NumArenas() int }); ok && na.NumArenas() > 1 {
		nshards = na.NumArenas()
	}
	h.q = quarantine.NewSharded(nshards)
	h.qSharded = nshards > 1

	h.sw = sweep.New(space, marks, cfg.Helpers)

	// Register one substrate thread per sweep worker so the parallel
	// recycle phase can free without sharing tcaches.
	workers := h.sw.Workers()
	h.recycleTids = make([]alloc.ThreadID, workers)
	for i := range h.recycleTids {
		h.recycleTids[i] = h.sub.RegisterThread()
	}

	empty := make([]*threadState, 0)
	h.threads.Store(&empty)

	if cfg.Telemetry != nil {
		h.SetTelemetry(cfg.Telemetry)
	}

	if cfg.Mode != Synchronous {
		h.wg.Add(1)
		go h.sweeperLoop()
	}
	return h
}

// SetTelemetry attaches (or, with nil, detaches) a telemetry registry. Safe
// to call at any time, including while mutators run: the hot paths read the
// registry through one atomic pointer. Attaching registers the quarantine
// and sweep gauges, plus per-arena-shard occupancy when the substrate is the
// jemalloc heap.
func (h *Heap) SetTelemetry(reg *telemetry.Registry) {
	h.tel.Store(reg)
	if reg == nil {
		h.drainHist.Store(nil)
		return
	}
	hist := telemetry.NewHistogram("quarantine_drain_ns", "ns", telemetry.DefaultHistShards)
	reg.RegisterHistogram(hist)
	h.drainHist.Store(hist)
	reg.RegisterGauge("quarantine_entries", h.q.Entries)
	// Entries sitting in thread-private rings, not yet published to the
	// membership set: occupancy is published at drains and op ticks, so the
	// gauge lags true occupancy by at most one ring per thread.
	reg.RegisterGauge("quarantine_ring_entries", func() uint64 {
		var sum uint64
		for _, ts := range *h.threads.Load() {
			if ts != nil {
				sum += uint64(ts.tbuf.Occupancy())
			}
		}
		return sum
	})
	reg.RegisterGauge("quarantine_bytes", h.q.Bytes)
	reg.RegisterGauge("quarantine_unmapped_bytes", h.q.UnmappedBytes)
	reg.RegisterGauge("quarantine_failed_bytes", h.q.FailedBytes)
	reg.RegisterGauge("quarantine_epoch", h.q.Epoch)
	// Age of the oldest pending free, in sweep epochs: how long work has
	// been waiting for the sweeper.
	reg.RegisterGauge("quarantine_age_epochs", func() uint64 {
		return h.q.Epoch() - h.q.OldestPendingEpoch()
	})
	reg.RegisterGauge("sweep_pages_scanned_total", h.sw.PagesSwept)
	reg.RegisterGauge("sweep_zero_skipped_bytes_total", h.sw.ZeroSkippedBytes)
	// Known-zero map economics: pages the sweep dismissed without touching
	// their memory, bytes the zeroing paths elided because the map already
	// knew them zero, and bytes the deferred mode scrubbed at drains
	// instead of inside free().
	reg.RegisterGauge("sweep_known_zero_pages_total", h.sw.KnownZeroPages)
	reg.RegisterGauge("zero_elided_bytes_total", h.space.ZeroElidedBytes)
	reg.RegisterGauge("zero_deferred_bytes_total", h.deferredZeroBytes.Load)
	if h.ctl != nil {
		reg.AttachGovernor(h.ctl)
		// Effective knob gauges: float knobs scaled to integers
		// (basis points / hundredths) so they fit the uint64 gauge type.
		reg.RegisterGauge("governor_pressure_level", func() uint64 {
			return uint64(h.ctl.Level())
		})
		reg.RegisterGauge("governor_sweep_threshold_bp", func() uint64 {
			return uint64(h.ctl.Knobs().SweepThreshold * 10000)
		})
		reg.RegisterGauge("governor_unmapped_factor_x100", func() uint64 {
			return uint64(h.ctl.Knobs().UnmappedFactor * 100)
		})
		reg.RegisterGauge("governor_pause_threshold_x100", func() uint64 {
			return uint64(h.ctl.Knobs().PauseThreshold * 100)
		})
		reg.RegisterGauge("governor_helpers", func() uint64 {
			return uint64(h.ctl.Knobs().Helpers)
		})
		reg.RegisterGauge("governor_decisions_total", func() uint64 {
			return h.ctl.Ring().Total()
		})
	}
	if jh, ok := h.sub.(*jemalloc.Heap); ok {
		for i := 0; i < jh.NumArenas(); i++ {
			reg.RegisterGauge(fmt.Sprintf("arena_shard%d_live_regs", i), func() uint64 {
				return uint64(jh.ShardStats(i).CurRegs)
			})
			reg.RegisterGauge(fmt.Sprintf("arena_shard%d_extents", i), func() uint64 {
				return uint64(jh.ShardStats(i).Extents)
			})
		}
	}
}

// SetEvents attaches (or, with nil, detaches) a flight-recorder. Safe to
// call at any time: instrumented paths read the recorder and rings through
// atomic pointers, exactly like SetTelemetry. Attaching creates the
// sweeper's ring plus one ring per registered thread; threads registered
// later get theirs in RegisterThread.
func (h *Heap) SetEvents(rec *events.Recorder) {
	if rec == nil {
		h.evt.Store(nil)
		h.evtSweep.Store(nil)
		for _, ts := range *h.threads.Load() {
			if ts != nil {
				ts.evRing.Store(nil)
			}
		}
		return
	}
	h.evtSweep.Store(rec.Ring("sweeper"))
	h.threadMu.Lock()
	for i, ts := range *h.threads.Load() {
		if ts != nil {
			ts.evRing.Store(rec.Ring(fmt.Sprintf("thread-%d", i)))
		}
	}
	h.threadMu.Unlock()
	h.evt.Store(rec)
}

// Events returns the attached flight-recorder, or nil.
func (h *Heap) Events() *events.Recorder { return h.evt.Load() }

// tripFlight fires the flight recorder for cause; if the trip is accepted
// (rate limit, sink attached), a KindTrip instant lands on the sweeper ring
// so later dumps and the live view show when dumps were taken.
func (h *Heap) tripFlight(cause events.TripCause) {
	rec := h.evt.Load()
	if rec == nil || !rec.Trip(cause) {
		return
	}
	if rg := h.evtSweep.Load(); rg != nil {
		rg.Emit(events.KindTrip, uint64(cause), 0)
	}
}

// msHooks wraps the default extent hooks with MineSweeper's unmapped-page
// bookkeeping (§4.5): decommit marks pages in the shadow bitmap and commit
// clears them and restores access.
type msHooks struct {
	h     *Heap
	inner jemalloc.ExtentHooks
}

func (m *msHooks) hooks() jemalloc.ExtentHooks {
	if m.inner != nil {
		return m.inner
	}
	return jemalloc.DefaultHooks{}
}

// Commit implements jemalloc.ExtentHooks.
func (m *msHooks) Commit(space *mem.AddressSpace, base, size uint64) error {
	if err := m.hooks().Commit(space, base, size); err != nil {
		return err
	}
	m.h.unmappedPages.ClearRange(base, base+size)
	return nil
}

// Decommit implements jemalloc.ExtentHooks.
func (m *msHooks) Decommit(space *mem.AddressSpace, base, size uint64) error {
	if err := m.hooks().Decommit(space, base, size); err != nil {
		return err
	}
	// An extent's pages are consecutive granules of the page-granular
	// bitmap, so a write-combining Marker turns up to 64 per-page atomics
	// into one.
	mk := m.h.unmappedPages.NewMarker()
	for p := base; p < base+size; p += mem.PageSize {
		mk.Mark(p)
	}
	mk.Flush()
	return nil
}

// String returns the scheme name.
func (h *Heap) String() string {
	if h.cfg.Mode == MostlyConcurrent {
		return "minesweeper-mostly"
	}
	return "minesweeper"
}

// Substrate returns the underlying allocator (tests, metrics).
func (h *Heap) Substrate() alloc.Substrate { return h.sub }

// Control returns the heap's control plane, or nil when ungoverned.
func (h *Heap) Control() *control.Plane { return h.ctl }

// knobs returns the effective policy knobs: the governed values when a
// control plane is attached (one atomic load), the frozen config otherwise.
func (h *Heap) knobs() control.Knobs {
	if h.ctl != nil {
		return h.ctl.Knobs()
	}
	return control.Knobs{
		SweepThreshold:    h.cfg.SweepThreshold,
		UnmappedFactor:    h.cfg.UnmappedFactor,
		PauseThreshold:    h.cfg.PauseThreshold,
		Helpers:           h.cfg.Helpers,
		RescanBudgetPages: h.cfg.RescanBudgetPages,
	}
}

// budget returns the governed memory budget, or 0 (unbounded).
func (h *Heap) budget() uint64 {
	if h.ctl != nil {
		return h.ctl.Budget()
	}
	return 0
}

// Quarantined returns mapped quarantined bytes.
func (h *Heap) Quarantined() uint64 { return h.q.Bytes() }

// RegisterThread implements alloc.Allocator.
func (h *Heap) RegisterThread() alloc.ThreadID {
	subTid := h.sub.RegisterThread()
	h.threadMu.Lock()
	defer h.threadMu.Unlock()
	old := *h.threads.Load()
	nw := make([]*threadState, len(old)+1)
	copy(nw, old)
	ts := &threadState{
		tbuf:   quarantine.NewThreadBuffer(h.q, h.cfg.BufferCap),
		subTid: subTid,
	}
	// The drain-time zero pass is installed whenever the config can defer
	// zeroing: even if the governor flips deferral off later, entries
	// pushed while it was on still need the hook to scrub them at drain.
	if h.cfg.Zeroing && h.cfg.ZeroMode == ZeroDeferred {
		ts.tbuf.SetZeroHook(h.ringZeroHook(ts))
	}
	if rec := h.evt.Load(); rec != nil {
		ts.evRing.Store(rec.Ring(fmt.Sprintf("thread-%d", len(old))))
	}
	nw[len(old)] = ts
	h.threads.Store(&nw)
	return alloc.ThreadID(len(old))
}

// ringZeroHook returns the deferred zero-on-free pass for ts's ring: collect
// every entry the free() fast path left unscrubbed, merge adjacent chunks
// into contiguous runs, and zero them in one batch before the drain publishes
// anything. Runs under ts.drainMu (every Drain call site holds it), on
// whichever thread drains — the owner at its tick, or the sweeper inside its
// quiesce.
func (h *Heap) ringZeroHook(ts *threadState) func([]*quarantine.Entry) {
	return func(entries []*quarantine.Entry) {
		runs := ts.zeroRuns[:0]
		var bytes uint64
		for _, e := range entries {
			if e.Zeroed {
				continue
			}
			// Greedy adjacency merge against the previous run: the ring
			// holds frees in tcache pop order, which walks slab slots
			// back-to-back (descending within a refill run), so most
			// entries extend the last run instead of appending a new one.
			// ZeroBatch's sort+merge then works on a handful of runs, not
			// BufferCap of them — the sort was the drain's dominant cost.
			if n := len(runs); n > 0 {
				last := &runs[n-1]
				switch {
				case e.Base == last.Addr+last.Size:
					last.Size += e.Size
					bytes += e.Size
					e.Zeroed = true
					continue
				case e.Base+e.Size == last.Addr:
					last.Addr = e.Base
					last.Size += e.Size
					bytes += e.Size
					e.Zeroed = true
					continue
				}
			}
			runs = append(runs, mem.ZeroRun{Addr: e.Base, Size: e.Size})
			bytes += e.Size
			e.Zeroed = true
		}
		ts.zeroRuns = runs[:0]
		if len(runs) == 0 {
			return
		}
		_ = h.space.ZeroBatch(runs)
		h.deferredZeroBytes.Add(bytes)
		if rg := ts.evRing.Load(); rg != nil {
			rg.Emit(events.KindZeroScrub, uint64(len(runs)), bytes)
		}
	}
}

// UnregisterThread implements alloc.Allocator. The dead thread's state is
// removed from the threads slice (copy-on-write, slot nilled so other IDs
// keep their positions); its buffer was flushed, so nothing is lost, and the
// state — including the ThreadBuffer — becomes collectable instead of living
// in the slice forever.
func (h *Heap) UnregisterThread(tid alloc.ThreadID) {
	ts := h.threadState(tid)
	if ts == nil {
		return
	}
	ts.drainMu.Lock()
	ts.tbuf.Retire()
	ts.drainMu.Unlock()
	h.sub.UnregisterThread(ts.subTid)
	h.threadMu.Lock()
	defer h.threadMu.Unlock()
	old := *h.threads.Load()
	if int(tid) < len(old) && old[tid] == ts {
		nw := make([]*threadState, len(old))
		copy(nw, old)
		nw[tid] = nil
		h.threads.Store(&nw)
	}
}

// subTidFor maps a mutator ThreadID to the substrate's ThreadID space.
func (h *Heap) subTidFor(tid alloc.ThreadID) alloc.ThreadID {
	if ts := h.threadState(tid); ts != nil {
		return ts.subTid
	}
	return 0
}

func (h *Heap) threadState(tid alloc.ThreadID) *threadState {
	ts := *h.threads.Load()
	if int(tid) < 0 || int(tid) >= len(ts) {
		return nil
	}
	return ts[tid]
}

// Malloc implements alloc.Allocator. If the quarantine has overwhelmed the
// sweeper, the call briefly pauses until a sweep completes (§5.7). The pause
// check is amortised like the sweep-trigger check: the threshold is an
// emergency brake, so evaluating it every sweepCheckInterval mallocs delays
// the brake by at most a handful of small allocations.
//
// With telemetry attached, the call's latency — including any §5.7 pause —
// lands in the malloc histogram on the thread's stripe; detached, the only
// cost is the pointer load and branch.
func (h *Heap) Malloc(tid alloc.ThreadID, size uint64) (uint64, error) {
	ts := h.threadState(tid)
	// Telemetry sampling, countdown-tick style: a live tick (> 1, meaning a
	// registry armed it) decrements on the thread's own state and goes
	// straight to the fast path — no shared access, not even the registry
	// pointer load. Only the op that exhausts the tick (or finds it in the
	// fresh/detached <= 1 state) loads the registry, rearms from the current
	// SamplePeriod, and pays the two time.Now calls.
	if ts != nil && ts.telMallocs > 1 {
		ts.telMallocs--
	} else if tel := h.tel.Load(); tel != nil && ts != nil {
		ts.telMallocs = tel.SamplePeriod()
		start := time.Now()
		a, err := h.malloc(tid, ts, size)
		lat := uint64(time.Since(start))
		tel.Malloc.RecordShard(int(tid), lat)
		// GWP-ASan-style sampled op event, riding the same countdown tick:
		// the unsampled hot path never sees the events layer.
		if rg := ts.evRing.Load(); rg != nil {
			rg.Emit(events.KindAlloc, size, lat)
		}
		return a, err
	}
	return h.malloc(tid, ts, size)
}

func (h *Heap) malloc(tid alloc.ThreadID, ts *threadState, size uint64) (uint64, error) {
	if ts == nil {
		h.maybePause(tid)
	} else if ts.mallocsSincePause++; ts.mallocsSincePause >= sweepCheckInterval {
		ts.mallocsSincePause = 0
		h.maybePause(tid)
	}
	if ts != nil {
		return h.sub.Malloc(ts.subTid, size)
	}
	return h.sub.Malloc(h.subTidFor(tid), size)
}

// pauseFloorBytes is the minimum quarantine size for the §5.7 pause to
// engage at all. Below it, even an infinite quarantine:heap ratio costs a
// bounded, negligible amount of memory.
const pauseFloorBytes = 1 << 20

// maybePause blocks the allocating thread while the quarantine is extremely
// large relative to the heap (§5.7) or, on a governed heap, while resident
// memory sits over the configured budget with sweepable quarantine to
// reclaim — either way letting the sweeper catch up.
func (h *Heap) maybePause(tid alloc.ThreadID) {
	if h.cfg.Mode == Synchronous || !h.cfg.Quarantine {
		return
	}
	if h.cfg.PauseThreshold <= 0 && h.budget() == 0 {
		return
	}
	for {
		qb := h.q.Bytes() - min64(h.q.Bytes(), h.q.FailedBytes())
		// Both brakes bound memory, so a quarantine that is small in
		// absolute terms never warrants a pause: there is nothing worth
		// reclaiming, and waiting for a sweep could not help. This also
		// guarantees the budget brake cannot livelock a program whose
		// live set alone exceeds the budget.
		if qb <= pauseFloorBytes {
			return
		}
		k := h.knobs()
		ratioHit := false
		if k.PauseThreshold > 0 {
			// The substrate still counts quarantined allocations as live
			// (they are not freed until a sweep releases them), so
			// subtract them — as Stats does — to get the application's
			// live heap. Against the raw substrate figure the quarantine
			// is a summand of both sides and no threshold >= 1 could ever
			// fire, leaving the §5.7 brake dead and the quarantine
			// unbounded whenever the sweeper thread is starved of CPU.
			heapB := h.sub.AllocatedBytes()
			heapB -= min64(heapB, h.q.Bytes()+h.q.UnmappedBytes())
			ratioHit = float64(qb) > k.PauseThreshold*float64(heapB+mem.PageSize)
		}
		budget := h.budget()
		budgetHit := budget > 0 && h.space.RSS() > budget
		if !ratioHit && !budgetHit {
			return
		}
		reason := telemetry.TriggerPause
		if !ratioHit {
			reason = telemetry.TriggerBudget
		}
		// Flush our buffer so our frees are sweepable, then wait for a
		// sweep to finish. While waiting, the thread is quiescent: it
		// must not block a mostly-concurrent stop-the-world.
		ts := h.threadState(tid)
		if ts != nil {
			ts.lockedDrain()
		}
		var rg *events.Ring
		if ts != nil {
			if rg = ts.evRing.Load(); rg != nil {
				rg.Emit(events.KindPauseBegin, uint64(reason), 0)
			}
		}
		start := time.Now()
		qz, _ := h.cfg.World.(quiescer)
		if qz != nil {
			qz.BeginQuiescent()
		}
		h.noteTrigger(reason)
		h.genMu.Lock()
		gen := h.sweepGen
		h.requestSweep()
		for h.sweepGen == gen {
			h.genCond.Wait()
		}
		h.genMu.Unlock()
		if qz != nil {
			qz.EndQuiescent()
		}
		stall := time.Since(start)
		h.pauseNanos.Add(int64(stall))
		if tel := h.tel.Load(); tel != nil {
			tel.Pause.Record(uint64(stall))
		}
		if rg != nil {
			rg.Emit(events.KindPauseEnd, uint64(stall), 0)
		}
	}
}

// noteTrigger latches the cause of the next sweep (first cause wins; the
// record is cleared when the sweep runs). Harmless without telemetry — one
// uncontended CAS per trigger, and triggers are rare next to frees.
func (h *Heap) noteTrigger(r telemetry.TriggerReason) {
	h.trigReason.CompareAndSwap(0, uint32(r)+1)
}

// takeTrigger consumes the latched trigger cause for the sweep now running.
func (h *Heap) takeTrigger() telemetry.TriggerReason {
	if v := h.trigReason.Swap(0); v != 0 {
		return telemetry.TriggerReason(v - 1)
	}
	return telemetry.TriggerForced
}

// Free implements alloc.Allocator: the paper's free() interception. The
// allocation is resolved through the substrate exactly once — the returned
// ref rides in the quarantine entry so the sweep's recycle phase can free
// without a second page-map lookup.
func (h *Heap) Free(tid alloc.ThreadID, addr uint64) error {
	ts := h.threadState(tid)
	// Countdown-tick sampling; see Malloc.
	if ts != nil && ts.telFrees > 1 {
		ts.telFrees--
	} else if tel := h.tel.Load(); tel != nil && ts != nil {
		ts.telFrees = tel.SamplePeriod()
		start := time.Now()
		err := h.free(tid, ts, addr)
		lat := uint64(time.Since(start))
		tel.Free.RecordShard(int(tid), lat)
		if rg := ts.evRing.Load(); rg != nil {
			// Sampled free; size 0 when the address did not resolve.
			var size uint64
			if a, _, ok := h.sub.Resolve(addr); ok {
				size = a.Size
			}
			rg.Emit(events.KindFree, size, lat)
		}
		return err
	}
	return h.free(tid, ts, addr)
}

func (h *Heap) free(tid alloc.ThreadID, ts *threadState, addr uint64) error {
	a, ref, ok := h.sub.Resolve(addr)
	if !ok || a.Base != addr {
		if h.q.Contains(addr) {
			// Double free of a quarantined allocation whose lookup
			// raced; absorbed (idempotent).
			return h.doubleFree(addr)
		}
		return fmt.Errorf("%w: %#x", alloc.ErrInvalidFree, addr)
	}

	if !h.cfg.Quarantine {
		// Partial versions (§5.5): optional zero/unmap-remap, then
		// forward straight to the allocator.
		if h.cfg.Zeroing && !a.Large {
			_ = h.space.Zero(a.Base, a.Size)
		}
		if h.cfg.Unmapping && a.Large && a.Size >= unmapMinBytes {
			if err := h.sub.DecommitExtent(a.Base); err == nil {
				// Immediately remap, as the partial version does.
				_ = h.space.Commit(a.Base, a.Size, mem.ProtRW)
				h.unmappedPages.ClearRange(a.Base, a.Base+a.Size)
			}
		} else if h.cfg.Zeroing && a.Large {
			_ = h.space.Zero(a.Base, a.Size)
		}
		return h.sub.FreeResolved(h.subTidFor(tid), ref, addr)
	}

	// Unregistered callers and debug mode take the eager path: membership
	// insert (and therefore double-free detection) on the spot, per-entry
	// pending append. Registered threads take the ring path below, where
	// free() touches only thread-local state and everything shared is
	// deferred to bulk drains.
	if ts == nil || h.cfg.DebugDoubleFree {
		var e *quarantine.Entry
		if ts != nil {
			e = ts.tbuf.NewEntry(a.Base, a.Size)
		} else {
			e = h.q.NewEntry(a.Base, a.Size)
		}
		e.Ref = ref
		h.stampShard(e, ref)
		if !h.q.Insert(e) {
			return h.doubleFree(addr)
		}
		// Large allocations that will be unmapped need no explicit
		// zeroing: the decommit discards their contents (and any pointers
		// within).
		unmapped := false
		if h.cfg.Unmapping && a.Large && a.Size >= unmapMinBytes {
			if err := h.sub.DecommitExtent(a.Base); err == nil {
				h.q.NoteUnmapped(e)
				unmapped = true
			}
		}
		if h.cfg.Zeroing && !unmapped {
			_ = h.space.Zero(a.Base, a.Size)
		}
		h.q.Append([]*quarantine.Entry{e})
		h.maybeTriggerSweep(tid)
		return nil
	}

	e := ts.tbuf.NewEntry(a.Base, a.Size) // lock-free in the common case
	e.Ref = ref
	h.stampShard(e, ref)

	// Large allocations that will be unmapped need no explicit zeroing: the
	// decommit discards their contents (and any pointers within). A double
	// free still waiting in a ring re-decommits harmlessly (DecommitExtent
	// is idempotent on an uncommitted extent) and loses membership insertion
	// at drain time.
	unmapped := false
	if h.cfg.Unmapping && a.Large && a.Size >= unmapMinBytes {
		if err := h.sub.DecommitExtent(a.Base); err == nil {
			e.Unmapped = true // ring-resident: accounted at drain (§4.2)
			unmapped = true
		}
	}
	e.Zeroed = true // nothing to scrub (zeroing off, or the decommit discarded it)
	if h.cfg.Zeroing && !unmapped {
		if h.deferZero.Load() {
			// ZeroDeferred: the ring's drain hook scrubs the whole batch
			// in one range-merged pass, always before the entry becomes
			// sweep-visible via Append.
			e.Zeroed = false
		} else {
			_ = h.space.Zero(a.Base, a.Size)
		}
	}

	full := ts.tbuf.Push(e) // thread-local append, no shared state
	ts.freesSinceCheck++
	// Amortised drain and sweep-trigger check: the ring drains at the
	// sweepCheckInterval tick once it reaches its watermark (or immediately
	// when full — small ring capacities), and the trigger is evaluated on
	// the same tick. Unmapping a large allocation moves its bytes to the
	// unmapped account wholesale, so that drain + trigger check (§4.2)
	// always happens immediately.
	if full || unmapped || ts.freesSinceCheck >= sweepCheckInterval {
		ts.freesSinceCheck = 0
		if full || unmapped || ts.tbuf.NeedsDrain() {
			h.drainRing(ts)
		} else {
			ts.tbuf.PublishOccupancy()
		}
		h.maybeTriggerSweep(tid)
	}
	return nil
}

// drainRing publishes a thread's private ring to the global quarantine,
// sampling the drain latency when telemetry is attached.
func (h *Heap) drainRing(ts *threadState) {
	if hist := h.drainHist.Load(); hist != nil {
		start := time.Now()
		ts.lockedDrain()
		hist.Record(uint64(time.Since(start)))
		return
	}
	ts.lockedDrain()
}

// stampShard routes a new quarantine entry to the pending shard of the arena
// that owns its allocation, so per-shard sweep selection sees each arena's
// frees on that arena's own list. The assertion is on the substrate's
// resolved ref (a *jemalloc.Extent under the default pairing); refs without
// an arena shard stay on shard 0. Skipped entirely on unsharded quarantines.
func (h *Heap) stampShard(e *quarantine.Entry, ref alloc.Ref) {
	if !h.qSharded {
		return
	}
	if s, ok := ref.(interface{ ArenaShard() int32 }); ok {
		e.Shard = s.ArenaShard()
	}
}

// doubleFree accounts an absorbed double free, or reports it in debug mode.
func (h *Heap) doubleFree(addr uint64) error {
	if h.cfg.DebugDoubleFree {
		return fmt.Errorf("%w: %#x (quarantined)", alloc.ErrDoubleFree, addr)
	}
	return nil
}

// maybeTriggerSweep checks the two sweep triggers (§3.2, §4.2) — plus, on a
// governed heap, the memory-budget trigger — and requests a sweep when any
// fires. Governed heaps read the effective (steered) thresholds here; the
// check is already amortised to every sweepCheckInterval frees, so the extra
// atomic load is off the per-operation path.
func (h *Heap) maybeTriggerSweep(tid alloc.ThreadID) {
	k := h.knobs()
	qb := h.q.Bytes()
	fb := h.q.FailedBytes()
	heapB := h.sub.AllocatedBytes()
	effQ := qb - min64(qb, fb)
	effH := heapB - min64(heapB, fb)
	reason := telemetry.TriggerThreshold
	trigger := effQ >= h.cfg.SweepFloorBytes &&
		float64(effQ) > k.SweepThreshold*float64(effH)
	if !trigger && k.UnmappedFactor > 0 {
		trigger = float64(h.q.UnmappedBytes()) > k.UnmappedFactor*float64(h.space.RSS())
		reason = telemetry.TriggerUnmapped
	}
	if !trigger {
		// Budget trigger: resident memory over the budget and enough
		// sweepable quarantine to make a sweep worthwhile. "Worthwhile"
		// scales with the budget (1/32nd, capped at the pause-brake floor
		// so large heaps behave exactly as before): a heap whose live set
		// alone exceeds the budget does not sweep-storm, while a small
		// governed heap — a multi-tenant rail of a few hundred KiB — can
		// still reach the floor and let its governor observe pressure.
		if b := h.budget(); b > 0 && h.space.RSS() > b {
			floor := b / 32
			if floor > pauseFloorBytes {
				floor = pauseFloorBytes
			}
			if floor < h.cfg.SweepFloorBytes {
				floor = h.cfg.SweepFloorBytes
			}
			if effQ > floor {
				trigger = true
				reason = telemetry.TriggerBudget
			}
		}
	}
	if !trigger {
		return
	}
	h.noteTrigger(reason)
	if h.cfg.Mode == Synchronous {
		// The sweep runs inline right now: our buffered frees must be in
		// the global list to be swept.
		if ts := h.threadState(tid); ts != nil {
			ts.lockedDrain()
		}
		h.runSweep()
		return
	}
	// Concurrent modes do NOT drain the ring here: the trigger fires on
	// every amortised check while the quarantine sits above threshold, and
	// draining each time would collapse the ring's watermark amortisation
	// back to tick-sized batches. Ring-resident entries are bounded (they
	// drain within one watermark's worth of frees) and are not counted in
	// effQ, so the trigger decision never depends on them.
	h.requestSweep()
}

// requestSweep signals the background sweeper (non-blocking; coalesces).
func (h *Heap) requestSweep() {
	select {
	case h.sweepReq <- struct{}{}:
	default:
	}
}

// sweeperLoop is the main sweeper thread.
func (h *Heap) sweeperLoop() {
	defer h.wg.Done()
	for {
		select {
		case <-h.stop:
			return
		case <-h.sweepReq:
			h.runSweep()
		}
	}
}

// selectShards decides which quarantine pending shards this sweep locks in —
// per-arena-shard sweep ownership. The routine threshold and unmapped
// triggers take only the shards that have accumulated at least their fair
// share of the pending bytes (the largest shard always qualifies, so a
// trigger never selects nothing), plus any shard whose oldest pending free
// has lagged maxShardLagEpochs behind the sweep epoch — each arena shard
// effectively sweeps on its own cadence instead of rendezvousing globally.
// Forced, pause, budget and shutdown sweeps take everything: they exist to
// reclaim as much as possible right now. A nil return means all shards.
//
// Partial lock-in is safe regardless of the selection: the mark pass always
// covers all of program memory, so an entry released from a selected shard
// was proven unreferenced against every live pointer; entries left pending in
// unselected shards keep their original epoch and are reconsidered next sweep
// (the lag bound and the age gauge both build on that). Caller holds sweepMu.
func (h *Heap) selectShards(reason telemetry.TriggerReason) []bool {
	n := h.q.NumShards()
	if n <= 1 {
		return nil
	}
	switch reason {
	case telemetry.TriggerThreshold, telemetry.TriggerUnmapped:
	default:
		return nil
	}
	h.shardStats = h.q.PendingShardStats(h.shardStats)
	var total, maxBytes uint64
	maxIdx := 0
	for i, s := range h.shardStats {
		total += s.Bytes
		if s.Bytes > maxBytes {
			maxIdx, maxBytes = i, s.Bytes
		}
	}
	if total == 0 {
		return nil
	}
	if cap(h.shardSel) < n {
		h.shardSel = make([]bool, n)
	}
	sel := h.shardSel[:n]
	epoch := h.q.Epoch()
	for i, s := range h.shardStats {
		sel[i] = i == maxIdx ||
			s.Bytes*uint64(n) >= total ||
			(s.Entries > 0 && epoch-s.OldestEpoch >= maxShardLagEpochs)
	}
	return sel
}

// countShards reports how many shards a selection covers (nil = all n).
func countShards(sel []bool, n int) int {
	if sel == nil {
		return n
	}
	c := 0
	for _, s := range sel {
		if s {
			c++
		}
	}
	return c
}

// stopWorld stops mutator threads (when a World is attached) and quiesces the
// per-thread quarantine rings: with every mutator parked at a safepoint the
// sweeper drains the rings itself, so frees buffered right up to the pause
// are published for the next lock-in and no ring ages across the window.
// Without a World the re-scan runs without stopping anyone (tests) and the
// rings are left to their owners.
func (h *Heap) stopWorld() {
	if h.cfg.World == nil {
		return
	}
	h.cfg.World.Stop()
	for _, ts := range *h.threads.Load() {
		if ts != nil {
			ts.lockedDrain()
		}
	}
}

// startWorld resumes mutators after stopWorld.
func (h *Heap) startWorld() {
	if h.cfg.World != nil {
		h.cfg.World.Start()
	}
}

// recordStw accounts one stop-the-world window: the running total behind
// Stats.STWCycles, the sweep record's window duration (summed — a pause-abort
// retry gives a sweep several windows), and — the gate metric for the
// sub-millisecond pause bound — the exact (unsampled) stw histogram, which
// gets one entry per window.
func (h *Heap) recordStw(rec *telemetry.SweepRecord, tel *telemetry.Registry, d time.Duration) {
	h.stwNanos.Add(int64(d))
	rec.DirtyNanos += int64(d)
	if tel != nil {
		tel.Stw.Record(uint64(d))
	}
}

// markPhase runs the configured marking pipeline for one sweep, filling the
// mark-related fields of rec. Caller holds sweepMu.
//
// The MostlyConcurrent + ConcurrentMark pipeline (§4.3):
//
//  1. Snapshot-at-beginning: the lock-in that produced this sweep's work
//     list already happened, and ClearSoftDirty opens the write-tracking
//     window — every page mutators touch from here on is revisited, so a
//     pointer stored anywhere during the concurrent pass cannot be missed.
//  2. Concurrent mark: the full-heap pass runs with mutators live.
//  3. Concurrent pre-clean: while more pages are dirty than the re-scan
//     budget, consume dirty pages without stopping (test-and-clear, bounded
//     rounds); each round shrinks the set the pause must visit.
//  4. Stop-the-world re-scan: quiesce thread rings and visit only the pages
//     still dirty. The pause scales with the mutators' residual write rate,
//     not heap size.
func (h *Heap) markPhase(rec *telemetry.SweepRecord, tel *telemetry.Registry, er *events.Ring) {
	if h.cfg.Mode != MostlyConcurrent {
		if er != nil {
			er.Emit(events.KindMarkBegin, 0, 0)
		}
		ps := h.sw.MarkAllStats()
		rec.MarkNanos = ps.ElapsedNanos
		rec.PagesScanned = ps.PagesScanned
		rec.BytesScanned = ps.BytesScanned
		rec.BytesZeroSkipped = ps.ZeroSkippedBytes
		rec.PagesKnownZero = ps.KnownZeroPages
		if er != nil {
			er.Emit(events.KindMarkEnd, ps.PagesScanned, ps.BytesScanned)
		}
		return
	}
	if !h.cfg.ConcurrentMark {
		// Ablation: the entire mark inside the stop-the-world window — the
		// configuration whose pause grows with heap size, kept for the
		// same-window A/B against the pipelined path.
		start := time.Now()
		h.stopWorld()
		if er != nil {
			er.Emit(events.KindStwBegin, 0, 0)
			er.Emit(events.KindMarkBegin, 0, 0)
		}
		ps := h.sw.MarkAllStats()
		rec.MarkNanos = ps.ElapsedNanos
		rec.PagesScanned = ps.PagesScanned
		rec.BytesScanned = ps.BytesScanned
		rec.BytesZeroSkipped = ps.ZeroSkippedBytes
		rec.PagesKnownZero = ps.KnownZeroPages
		if er != nil {
			er.Emit(events.KindMarkEnd, ps.PagesScanned, ps.BytesScanned)
			er.Emit(events.KindStwEnd, 0, 0)
		}
		h.startWorld()
		h.recordStw(rec, tel, time.Since(start))
		return
	}
	// The mark span covers the whole pipeline — concurrent full-heap pass,
	// pre-clean rounds, and the STW re-scan nest inside it.
	if er != nil {
		er.Emit(events.KindMarkBegin, 0, 0)
	}
	h.space.ClearSoftDirty()
	ps := h.sw.MarkAllStats()
	rec.MarkNanos = ps.ElapsedNanos
	rec.PagesScanned = ps.PagesScanned
	rec.BytesScanned = ps.BytesScanned
	rec.BytesZeroSkipped = ps.ZeroSkippedBytes
	rec.PagesKnownZero = ps.KnownZeroPages
	h.finishPipelinedMark(rec, tel, er)
	if er != nil {
		er.Emit(events.KindMarkEnd, rec.PagesScanned, rec.BytesScanned)
	}
}

// finishPipelinedMark runs stages 3 and 4 of the pipeline — the concurrent
// pre-clean rounds and the stop-the-world dirty re-scan — against whatever
// pages are soft-dirty right now. Split from markPhase so the pre-clean and
// re-scan accounting can be driven deterministically in tests (markPhase's
// ClearSoftDirty would wipe any dirtiness a test set up). Caller holds
// sweepMu.
//
// The stop is guarded by a retry loop (the CMS-style pause abort): mutators
// can dirty an unbounded number of pages in the scheduling gap between the
// last concurrent pre-clean round and the stop landing, and scanning that
// backlog inside the pause would put the tail right back at the mercy of the
// write rate times scheduler latency. So once the world is stopped the frozen
// dirty count — an O(pages/64) summary popcount — is checked against the
// budget; if it is over and retries remain, the world restarts immediately
// and the backlog is consumed concurrently before the next attempt. Each
// aborted window was still a real pause for the mutators, so it is recorded
// in the stw histogram like any other. The final attempt scans
// unconditionally, keeping termination guaranteed.
func (h *Heap) finishPipelinedMark(rec *telemetry.SweepRecord, tel *telemetry.Registry, er *events.Ring) {
	budget := h.knobs().RescanBudgetPages
	if budget > 0 {
		t0 := time.Now()
		for round := 0; round < maxPreCleanRounds; round++ {
			if h.sw.CountDirtyPages() <= uint64(budget) {
				break
			}
			if er != nil {
				er.Emit(events.KindPrecleanBegin, uint64(round), 0)
			}
			cp := h.sw.MarkDirtyClearStats()
			rec.PrecleanPages += cp.PagesScanned
			rec.PagesScanned += cp.PagesScanned
			rec.BytesScanned += cp.BytesScanned
			rec.BytesZeroSkipped += cp.ZeroSkippedBytes
			if er != nil {
				er.Emit(events.KindPrecleanEnd, cp.PagesScanned, uint64(round))
			}
		}
		rec.PrecleanNanos = time.Since(t0).Nanoseconds()
	}
	for attempt := 0; ; attempt++ {
		start := time.Now()
		h.stopWorld()
		// The frozen dirty count: needed by the abort check, and the
		// events layer stamps it on the stw span (the popcount is
		// O(pages/64), nothing next to the stop itself).
		var dirty uint64
		if er != nil || (budget > 0 && attempt < maxStopRetries) {
			dirty = h.sw.CountDirtyPages()
		}
		if er != nil {
			er.Emit(events.KindStwBegin, dirty, 0)
		}
		if budget > 0 && attempt < maxStopRetries && dirty > uint64(budget) {
			if er != nil {
				er.Emit(events.KindStwAbort, dirty, uint64(budget))
				er.Emit(events.KindStwEnd, dirty, 0)
			}
			h.startWorld()
			h.recordStw(rec, tel, time.Since(start))
			if er != nil {
				er.Emit(events.KindPrecleanBegin, uint64(maxPreCleanRounds+attempt), 0)
			}
			cp := h.sw.MarkDirtyClearStats()
			rec.PrecleanPages += cp.PagesScanned
			rec.PagesScanned += cp.PagesScanned
			rec.BytesScanned += cp.BytesScanned
			rec.BytesZeroSkipped += cp.ZeroSkippedBytes
			if er != nil {
				er.Emit(events.KindPrecleanEnd, cp.PagesScanned, uint64(maxPreCleanRounds+attempt))
			}
			continue
		}
		dp := h.sw.MarkDirtyStats()
		rec.DirtyPages = dp.PagesScanned
		rec.PagesScanned += dp.PagesScanned
		rec.BytesScanned += dp.BytesScanned
		rec.BytesZeroSkipped += dp.ZeroSkippedBytes
		if er != nil {
			er.Emit(events.KindStwEnd, dp.PagesScanned, 0)
		}
		h.startWorld()
		h.recordStw(rec, tel, time.Since(start))
		// The anomaly the pipeline exists to prevent: the final attempt had
		// to scan an over-budget dirty set inside the pause. Trip the
		// flight recorder (after the world restarts — never extend the
		// pause for a dump).
		if budget > 0 && dp.PagesScanned > uint64(budget) {
			h.tripFlight(events.TripStwOverBudget)
		}
		return
	}
}

// runSweep performs one complete sweep: shard selection, lock-in, mark
// (pipelined in MostlyConcurrent mode — see markPhase), filter-and-recycle,
// shadow clear, purge (§3.1, §4). With telemetry attached it emits one
// SweepRecord — trigger cause, per-phase durations and work figures — per
// sweep that had anything to do.
func (h *Heap) runSweep() {
	h.sweepMu.Lock()
	defer h.sweepMu.Unlock()

	tel := h.tel.Load()
	er := h.evtSweep.Load()
	reason := h.takeTrigger()
	sel := h.selectShards(reason)
	locked := h.q.LockInSelected(sel)
	var obsNanos int64
	var obsReleased, obsRetained uint64
	if len(locked) > 0 {
		rec := telemetry.SweepRecord{
			Trigger:       reason,
			EntriesLocked: uint64(len(locked)),
			Workers:       h.sw.Workers(),
			ShardsSwept:   countShards(sel, h.q.NumShards()),
		}
		if er != nil {
			er.Emit(events.KindSweepBegin, uint64(reason), uint64(len(locked)))
		}
		var sweepStart, t0 time.Time
		if tel != nil || h.ctl != nil {
			sweepStart = time.Now()
		}
		if h.cfg.Sweeping {
			h.markPhase(&rec, tel, er)
		}
		if tel != nil {
			t0 = time.Now()
		}
		if er != nil {
			er.Emit(events.KindRecycleBegin, 0, 0)
		}
		rec.Released, rec.Retained = h.filterAndRecycle(locked)
		if er != nil {
			er.Emit(events.KindRecycleEnd, rec.Released, rec.Retained)
		}
		if tel != nil {
			rec.RecycleNanos = time.Since(t0).Nanoseconds()
		}
		if h.cfg.Sweeping {
			h.marks.ClearAll()
		}
		if h.cfg.Purging {
			if tel != nil {
				t0 = time.Now()
			}
			if er != nil {
				er.Emit(events.KindPurgeBegin, 0, 0)
			}
			h.sub.PurgeAll()
			if er != nil {
				er.Emit(events.KindPurgeEnd, 0, 0)
			}
			if tel != nil {
				rec.PurgeNanos = time.Since(t0).Nanoseconds()
			}
		}
		h.sweeps.Add(1)
		if tel != nil || h.ctl != nil {
			rec.TotalNanos = time.Since(sweepStart).Nanoseconds()
		}
		if tel != nil {
			tel.ObserveSweep(rec)
		}
		if er != nil {
			er.Emit(events.KindSweepEnd, rec.Released, rec.Retained)
		}
		obsNanos = rec.TotalNanos
		obsReleased, obsRetained = rec.Released, rec.Retained
	}
	if h.ctl != nil {
		h.observeAndSteer(obsNanos, obsReleased, obsRetained)
	}

	h.genMu.Lock()
	h.sweepGen++
	h.genMu.Unlock()
	h.genCond.Broadcast()
}

// observeAndSteer closes the control loop at the sweep boundary: it gathers
// the post-sweep heap state into a control.Inputs, lets the plane evaluate
// pressure and decide the next inter-sweep knob values, and applies the side
// of the decision the plane cannot apply itself — the sweep worker count.
// Caller holds sweepMu, which makes this the plane's single writer.
func (h *Heap) observeAndSteer(sweepNanos int64, released, retained uint64) {
	heapB := h.sub.AllocatedBytes()
	q := h.q.Bytes() + h.q.UnmappedBytes()
	in := control.Inputs{
		LiveBytes:        heapB - min64(heapB, q),
		QuarantinedBytes: h.q.Bytes(),
		UnmappedBytes:    h.q.UnmappedBytes(),
		FailedBytes:      h.q.FailedBytes(),
		RSS:              h.space.RSS(),
		AgeEpochs:        h.q.Epoch() - h.q.OldestPendingEpoch(),
		SweepNanos:       sweepNanos,
		Released:         released,
		Retained:         retained,
	}
	d, changed := h.ctl.Observe(in)
	// Events + flight triggers before the early-outs: level transitions are
	// events even when the knobs held still, entering Critical trips a
	// flight dump, and so does resident memory over the governed budget
	// (both evaluated here, the sweep boundary — the single writer).
	if lvl := h.ctl.Level(); lvl != h.evLevel {
		if er := h.evtSweep.Load(); er != nil {
			er.Emit(events.KindGovDecision, uint64(lvl), uint64(h.evLevel))
		}
		if lvl == control.Critical {
			h.tripFlight(events.TripGovernorCritical)
		}
		h.evLevel = lvl
	}
	if b := h.ctl.Budget(); b > 0 && in.RSS > b {
		h.tripFlight(events.TripBudgetRSS)
	}
	if !changed {
		return
	}
	if d.After.ZeroDeferred != d.Before.ZeroDeferred {
		// The cached hot-path switch follows the governed knob. Entries
		// pushed while deferral was on are still scrubbed: the drain hook
		// stays installed and keys off Entry.Zeroed, not this switch.
		h.deferZero.Store(d.After.ZeroDeferred && h.cfg.Zeroing)
	}
	if d.After.Helpers == d.Before.Helpers {
		return
	}
	h.sw.SetHelpers(d.After.Helpers)
	// Grow the recycle-worker thread pool lazily: substrate threads are
	// registered only when a decision actually raises the worker count, so
	// an all-Static (or never-pressured) plane leaves the substrate state —
	// and therefore Stats.MetaBytes — untouched.
	for len(h.recycleTids) < h.sw.Workers() {
		h.recycleTids = append(h.recycleTids, h.sub.RegisterThread())
	}
}

// releaseBatchSize is how many released entries a sweep worker accumulates
// before handing them to the substrate in one FreeBatch call. Large enough to
// amortise the substrate's bin/arena locks over many frees, small enough that
// the per-worker scratch stays cache-resident.
const releaseBatchSize = 256

// filterAndRecycle consults the shadow map for each locked-in entry and
// either releases it to the allocator or returns it to quarantine. The list
// is divided equally among the sweep workers (§4.4); each worker batches the
// entries it releases and frees them through the substrate's FreeBatch, so
// recycling n entries costs locks proportional to the number of (shard,
// class) groups, not to n. Returns how many entries were released to the
// substrate and how many were retained (requeued as failed frees).
func (h *Heap) filterAndRecycle(locked []*quarantine.Entry) (released, retained uint64) {
	start := time.Now()
	// The current worker count tracks the governed helper knob; the
	// registered thread pool only ever grows, so clamp to both (a plane
	// that lowered Helpers leaves surplus registered threads idle).
	workers := h.sw.Workers()
	if workers > len(h.recycleTids) {
		workers = len(h.recycleTids)
	}
	if workers > len(locked) {
		workers = len(locked)
	}
	failed := make([][]*quarantine.Entry, workers)
	var wg sync.WaitGroup
	chunk := (len(locked) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(locked) {
			hi = len(locked)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			tid := h.recycleTids[w]
			rel := h.q.NewReleaser()
			var fails []*quarantine.Entry
			refs := make([]alloc.Ref, 0, releaseBatchSize)
			addrs := make([]uint64, 0, releaseBatchSize)
			torel := make([]*quarantine.Entry, 0, releaseBatchSize)
			errs := make([]error, releaseBatchSize)
			released := uint64(0)
			flush := func() {
				if len(addrs) == 0 {
					return
				}
				// Membership leaves before the substrate free (a re-free
				// racing this window must not be absorbed as a duplicate of
				// an allocation that no longer exists); the whole batch is
				// removed under one shard-lock pass, then freed under the
				// substrate's batched locks.
				rel.ReleaseBatch(torel)
				h.sub.FreeBatch(tid, refs, addrs, errs[:len(addrs)])
				for _, err := range errs[:len(addrs)] {
					if err == nil {
						continue
					}
					// A program can double-free an allocation whose
					// first free was already released and recycled;
					// the second free re-enters quarantine looking
					// live and the substrate detects the duplicate
					// here. That is undefined behaviour in the
					// program; absorb it (the substrate rejected the
					// free, so nothing is corrupted).
					if errors.Is(err, alloc.ErrDoubleFree) || errors.Is(err, alloc.ErrInvalidFree) {
						h.lateDoubleFrees.Add(1)
						continue
					}
					panic("core: substrate free failed: " + err.Error())
				}
				refs, addrs, torel = refs[:0], addrs[:0], torel[:0]
			}
			for _, e := range locked[lo:hi] {
				dangling := false
				if h.cfg.Sweeping {
					dangling = h.marks.AnyInRange(e.Base, e.Base+e.Size)
				}
				if dangling && h.cfg.FailedFrees {
					h.q.NoteFailed(e)
					h.failedFrees.Add(1)
					fails = append(fails, e)
					continue
				}
				if dangling {
					// Partial version: counted but freed anyway.
					h.failedFrees.Add(1)
				}
				// e is recycled by the flush's ReleaseBatch; its base and
				// ref survive in the batch.
				refs = append(refs, e.Ref)
				addrs = append(addrs, e.Base)
				torel = append(torel, e)
				released++
				if len(addrs) == releaseBatchSize {
					flush()
				}
			}
			flush()
			rel.Flush()
			h.releasedFrees.Add(released)
			failed[w] = fails
		}(w, lo, hi)
	}
	wg.Wait()
	for _, fails := range failed {
		if len(fails) > 0 {
			retained += uint64(len(fails))
			h.q.Requeue(fails)
		}
	}
	released = uint64(len(locked)) - retained
	h.q.Reclaim(locked)
	h.sw.AddBusyTime(sweep.BusyShare(time.Since(start), workers))
	return released, retained
}

// Sweep forces a complete sweep synchronously (tests and shutdown). All
// thread buffers known to be quiescent should be flushed by their owners
// first; FlushThread helps.
func (h *Heap) Sweep() { h.runSweep() }

// FlushThread publishes tid's buffered frees to the global quarantine.
func (h *Heap) FlushThread(tid alloc.ThreadID) {
	if ts := h.threadState(tid); ts != nil {
		ts.lockedDrain()
	}
}

// UsableSize implements alloc.Allocator. Quarantined allocations are not
// usable (they are freed from the program's perspective).
func (h *Heap) UsableSize(addr uint64) uint64 {
	if h.q.Contains(addr) {
		return 0
	}
	return h.sub.UsableSize(addr)
}

// Tick implements alloc.Allocator.
func (h *Heap) Tick(now uint64) { h.sub.Tick(now) }

// Stats implements alloc.Allocator.
func (h *Heap) Stats() alloc.Stats {
	st := h.sub.Stats()
	// The substrate counts quarantined allocations as live; separate them.
	q := h.q.Bytes() + h.q.UnmappedBytes()
	if st.Allocated >= q {
		st.Allocated -= q
	} else {
		st.Allocated = 0
	}
	st.Quarantined = h.q.Bytes() + h.q.UnmappedBytes()
	st.QuarantinedUnmapped = h.q.UnmappedBytes()
	st.MetaBytes += h.q.MetaBytes() + h.marks.FootprintBytes() + h.unmappedPages.FootprintBytes()
	st.Sweeps = h.sweeps.Load()
	st.FailedFrees = h.failedFrees.Load()
	st.ReleasedFrees = h.releasedFrees.Load()
	st.DoubleFrees = h.q.DoubleFrees() + h.lateDoubleFrees.Load()
	st.SweeperCycles = uint64(h.sw.BusyTime())
	st.STWCycles = uint64(h.stwNanos.Load())
	st.PauseNanos = uint64(h.pauseNanos.Load())
	st.BytesSwept = h.sw.BytesSwept()
	return st
}

// Shutdown implements alloc.Allocator: drains every registered thread's
// quarantine ring (so buffered frees become visible to accounting — callers
// expect a quiesced heap's Stats to reflect every Free issued) and stops the
// sweeper thread.
func (h *Heap) Shutdown() {
	for _, ts := range *h.threads.Load() {
		if ts != nil {
			ts.lockedDrain()
		}
	}
	if h.cfg.Mode != Synchronous {
		close(h.stop)
		h.wg.Wait()
	}
}

// CheckInvariants verifies cross-structure consistency and returns the first
// violation found, or nil. It is a debugging and testing aid; it takes the
// sweep lock, so no sweep runs concurrently. Invariants checked:
//
//  1. every quarantined entry's base is still a live allocation at the
//     substrate (the quarantine owns it — nothing may have freed it);
//  2. entry sizes match the substrate's usable sizes;
//  3. quarantine byte accounting equals the sum over entries;
//  4. unmapped entries really have no resident pages.
func (h *Heap) CheckInvariants() error {
	h.sweepMu.Lock()
	defer h.sweepMu.Unlock()

	var err error
	var mapped, unmapped, failed uint64
	h.q.ForEach(func(e *quarantine.Entry) {
		if err != nil {
			return
		}
		a, ok := h.sub.Lookup(e.Base)
		if !ok || a.Base != e.Base {
			err = fmt.Errorf("core: invariant: quarantined %#x not live at substrate", e.Base)
			return
		}
		if a.Size != e.Size {
			err = fmt.Errorf("core: invariant: entry %#x size %d != substrate %d", e.Base, e.Size, a.Size)
			return
		}
		if e.Unmapped {
			unmapped += e.Size
			if r := h.space.Lookup(e.Base); r != nil && r.PageResident(r.PageIndex(e.Base)) {
				err = fmt.Errorf("core: invariant: unmapped entry %#x has resident pages", e.Base)
				return
			}
		} else {
			mapped += e.Size
		}
		if e.Failed {
			failed += e.Size
		}
	})
	if err != nil {
		return err
	}
	if got := h.q.Bytes(); got != mapped {
		return fmt.Errorf("core: invariant: mapped bytes account %d != entry sum %d", got, mapped)
	}
	if got := h.q.UnmappedBytes(); got != unmapped {
		return fmt.Errorf("core: invariant: unmapped bytes account %d != entry sum %d", got, unmapped)
	}
	if got := h.q.FailedBytes(); got != failed {
		return fmt.Errorf("core: invariant: failed bytes account %d != entry sum %d", got, failed)
	}
	return nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
