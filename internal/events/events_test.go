package events

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRingEmitSnapshot(t *testing.T) {
	rec := NewRecorder(16, time.Second)
	rg := rec.Ring("t")
	for i := uint64(1); i <= 5; i++ {
		rg.EmitAt(i*100, KindDrain, i, i*2)
	}
	ev := rg.Snapshot(nil, 0)
	if len(ev) != 5 {
		t.Fatalf("got %d events, want 5", len(ev))
	}
	for i, e := range ev {
		want := uint64(i + 1)
		if e.Seq != want || e.Nanos != want*100 || e.Kind != KindDrain || e.Arg0 != want || e.Arg1 != want*2 {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	rec := NewRecorder(8, time.Second)
	rg := rec.Ring("t")
	const total = 30
	for i := uint64(1); i <= total; i++ {
		rg.EmitAt(i, KindAlloc, i, 0)
	}
	ev := rg.Snapshot(nil, 0)
	if len(ev) != 8 {
		t.Fatalf("got %d events, want 8 (ring cap)", len(ev))
	}
	for i, e := range ev {
		want := uint64(total - 8 + 1 + i)
		if e.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestSnapshotSinceFilters(t *testing.T) {
	rec := NewRecorder(16, time.Second)
	rg := rec.Ring("t")
	for i := uint64(1); i <= 10; i++ {
		rg.EmitAt(i*10, KindFree, i, 0)
	}
	ev := rg.Snapshot(nil, 55)
	if len(ev) != 5 {
		t.Fatalf("got %d events since 55, want 5", len(ev))
	}
	if ev[0].Nanos != 60 {
		t.Fatalf("first event at %d, want 60", ev[0].Nanos)
	}
}

func TestRingCapRoundsToPowerOfTwo(t *testing.T) {
	rec := NewRecorder(100, 0)
	if rec.ringCap != 128 {
		t.Fatalf("ringCap = %d, want 128", rec.ringCap)
	}
	if rec.Window() != DefaultWindow {
		t.Fatalf("window = %v, want %v", rec.Window(), DefaultWindow)
	}
}

func TestTripRateLimitAndSink(t *testing.T) {
	rec := NewRecorder(16, time.Second)
	rg := rec.Ring("t")
	rg.Emit(KindDrain, 1, 2)

	var dumps []*Dump
	rec.SetSink(func(d *Dump) { dumps = append(dumps, d) })

	if !rec.Trip(TripStwOverBudget) {
		t.Fatal("first trip rejected")
	}
	if rec.Trip(TripGovernorCritical) {
		t.Fatal("second trip inside window accepted")
	}
	if len(dumps) != 1 || rec.Trips() != 1 {
		t.Fatalf("dumps=%d trips=%d, want 1/1", len(dumps), rec.Trips())
	}
	if dumps[0].Cause != TripStwOverBudget {
		t.Fatalf("cause = %v", dumps[0].Cause)
	}
	if dumps[0].Len() != 1 {
		t.Fatalf("dump has %d events, want 1", dumps[0].Len())
	}

	rec.SetSink(nil)
	if rec.Trip(TripManual) {
		t.Fatal("trip with no sink accepted")
	}
}

func TestDumpRoundTrip(t *testing.T) {
	rec := NewRecorder(64, time.Minute)
	sw := rec.Ring("sweeper")
	th := rec.Ring("thread-0")
	sw.EmitAt(1000, KindSweepBegin, 2, 77)
	sw.EmitAt(1500, KindMarkBegin, 0, 0)
	sw.EmitAt(2500, KindMarkEnd, 12, 1<<20)
	sw.EmitAt(3000, KindSweepEnd, 70, 7)
	th.EmitAt(1200, KindDrain, 32, 4096)
	th.EmitAt(2800, KindAlloc, 64, 900)

	d := rec.Capture(TripManual)
	var buf bytes.Buffer
	n, err := d.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	got, kinds, err := ReadDump(&buf)
	if err != nil {
		t.Fatalf("ReadDump: %v", err)
	}
	if got.Cause != d.Cause || got.TakenNanos != d.TakenNanos || got.SinceNanos != d.SinceNanos {
		t.Fatalf("header mismatch: %+v vs %+v", got, d)
	}
	if got.Epoch.UnixNano() != d.Epoch.UnixNano() {
		t.Fatalf("epoch mismatch")
	}
	if len(kinds) != int(kindCount) {
		t.Fatalf("kind table has %d entries, want %d", len(kinds), kindCount)
	}
	if len(got.Threads) != 2 {
		t.Fatalf("got %d rings, want 2", len(got.Threads))
	}
	for i, tr := range got.Threads {
		want := d.Threads[i]
		if tr.Name != want.Name || len(tr.Events) != len(want.Events) {
			t.Fatalf("ring %d: %q/%d events, want %q/%d", i, tr.Name, len(tr.Events), want.Name, len(want.Events))
		}
		for j, e := range tr.Events {
			if e != want.Events[j] {
				t.Fatalf("ring %q event %d = %+v, want %+v", tr.Name, j, e, want.Events[j])
			}
		}
	}
}

func TestDumpRejectsGarbage(t *testing.T) {
	if _, _, err := ReadDump(strings.NewReader("not a dump at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, _, err := ReadDump(strings.NewReader("MSEV")); err == nil {
		t.Fatal("truncated dump accepted")
	}
}

func TestTimelineRendersSpansAndDurations(t *testing.T) {
	rec := NewRecorder(64, time.Minute)
	sw := rec.Ring("sweeper")
	sw.EmitAt(1_000_000, KindSweepBegin, 2, 10)
	sw.EmitAt(1_200_000, KindMarkBegin, 0, 0)
	sw.EmitAt(1_900_000, KindMarkEnd, 4, 1<<16)
	sw.EmitAt(2_000_000, KindSweepEnd, 9, 1)

	var buf bytes.Buffer
	if err := WriteTimeline(&buf, rec.Capture(TripManual)); err != nil {
		t.Fatalf("WriteTimeline: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"cause=manual", "sweep", "  mark", "700µs", "1ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestServerStateAndEndpoints(t *testing.T) {
	rec := NewRecorder(64, time.Minute)
	sw := rec.Ring("sweeper")
	th := rec.Ring("thread-0")
	base := rec.Now()
	sw.EmitAt(base+1, KindSweepBegin, 2, 10)
	sw.EmitAt(base+2, KindStwBegin, 3, 0)
	sw.EmitAt(base+150, KindStwEnd, 3, 0)
	sw.EmitAt(base+200, KindMarkBegin, 0, 0) // left open: in-flight phase
	th.EmitAt(base+50, KindPauseBegin, 1, 0)
	th.EmitAt(base+90, KindPauseEnd, 40, 0)

	srv := NewServer(rec, nil)
	st := srv.StateSince(0)
	if st.Phase != "mark" {
		t.Fatalf("phase = %q, want mark", st.Phase)
	}
	if len(st.RecentPauses) != 2 {
		t.Fatalf("got %d pauses, want 2: %+v", len(st.RecentPauses), st.RecentPauses)
	}
	if st.RecentPauses[0].Kind != "stw" || st.RecentPauses[0].Nanos != 148 {
		t.Fatalf("pause[0] = %+v", st.RecentPauses[0])
	}
	if st.RecentPauses[1].Kind != "pause" || st.RecentPauses[1].Nanos != 40 {
		t.Fatalf("pause[1] = %+v", st.RecentPauses[1])
	}
	if len(st.Batches) != 2 {
		t.Fatalf("got %d batches, want 2", len(st.Batches))
	}

	// Incremental: a cutoff past every event returns no batches but keeps
	// the summary.
	st2 := srv.StateSince(st.NowNanos)
	if len(st2.Batches) != 0 {
		t.Fatalf("incremental state has %d batches, want 0", len(st2.Batches))
	}
	if st2.Phase != "mark" {
		t.Fatalf("incremental phase = %q, want mark", st2.Phase)
	}

	// HTTP endpoints.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := mustGet(t, ts.URL+"/events/state?after=0")
	var st3 State
	if err := json.Unmarshal(resp, &st3); err != nil {
		t.Fatalf("state JSON: %v", err)
	}
	if st3.Phase != "mark" {
		t.Fatalf("HTTP phase = %q", st3.Phase)
	}

	raw := mustGet(t, ts.URL+"/events/dump")
	if d, _, err := ReadDump(bytes.NewReader(raw)); err != nil {
		t.Fatalf("served dump unreadable: %v", err)
	} else if d.Len() != 6 {
		t.Fatalf("served dump has %d events, want 6", d.Len())
	}

	trace := mustGet(t, ts.URL+"/events/trace.json")
	var arr []map[string]any
	if err := json.Unmarshal(trace, &arr); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
}

func mustGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}
