package jemalloc

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"minesweeper/internal/alloc"
	"minesweeper/internal/mem"
)

func newHeap(t testing.TB, cfg Config) (*Heap, alloc.ThreadID) {
	t.Helper()
	h := New(mem.NewAddressSpace(), cfg)
	return h, h.RegisterThread()
}

func TestSizeClassTable(t *testing.T) {
	// Spot-check against real 64-bit jemalloc classes.
	want := []uint64{8, 16, 32, 48, 64, 80, 96, 112, 128, 160, 192, 224, 256,
		320, 384, 448, 512, 640, 768, 896, 1024, 1280, 1536, 1792, 2048,
		2560, 3072, 3584, 4096, 5120, 6144, 7168, 8192, 10240, 12288, 14336}
	if NumClasses() != len(want) {
		t.Fatalf("NumClasses = %d, want %d", NumClasses(), len(want))
	}
	for i, w := range want {
		if ClassSize(i) != w {
			t.Errorf("ClassSize(%d) = %d, want %d", i, ClassSize(i), w)
		}
	}
}

func TestSizeToClass(t *testing.T) {
	cases := []struct {
		size uint64
		want uint64 // class size
	}{
		{1, 8}, {8, 8}, {9, 16}, {16, 16}, {17, 32}, {33, 48}, {128, 128},
		{129, 160}, {160, 160}, {161, 192}, {2048, 2048}, {2049, 2560},
		{14336, 14336}, {14000, 14336},
	}
	for _, c := range cases {
		got := ClassSize(SizeToClass(c.size))
		if got != c.want {
			t.Errorf("SizeToClass(%d) -> %d, want %d", c.size, got, c.want)
		}
	}
}

func TestSizeToClassExhaustive(t *testing.T) {
	// Every size maps to the smallest class >= size.
	for size := uint64(1); size <= SmallMax; size++ {
		c := SizeToClass(size)
		if ClassSize(c) < size {
			t.Fatalf("SizeToClass(%d) = class %d (%d) < size", size, c, ClassSize(c))
		}
		if c > 0 && ClassSize(c-1) >= size {
			t.Fatalf("SizeToClass(%d) = class %d but class %d (%d) also fits", size, c, c-1, ClassSize(c-1))
		}
	}
}

func TestSlabGeometry(t *testing.T) {
	for c := 0; c < NumClasses(); c++ {
		pages := SlabPages(c)
		if pages < 1 || pages > maxSlabPages {
			t.Errorf("class %d: SlabPages = %d out of range", c, pages)
		}
		regs := SlabRegions(c)
		if regs < 1 {
			t.Errorf("class %d: SlabRegions = %d", c, regs)
		}
		if uint64(regs)*ClassSize(c) > uint64(pages)*mem.PageSize {
			t.Errorf("class %d: regions overflow slab", c)
		}
		waste := uint64(pages)*mem.PageSize - uint64(regs)*ClassSize(c)
		if float64(waste)/float64(uint64(pages)*mem.PageSize) > 0.25 {
			t.Errorf("class %d (size %d): waste %d of %d pages too high", c, ClassSize(c), waste, pages)
		}
	}
}

func TestMallocFreeSmall(t *testing.T) {
	h, tid := newHeap(t, DefaultConfig())
	addr, err := h.Malloc(tid, 100)
	if err != nil {
		t.Fatalf("Malloc: %v", err)
	}
	if !mem.IsHeapAddr(addr) {
		t.Errorf("Malloc returned non-heap address %#x", addr)
	}
	// PadEnd: 100+1 -> class 112.
	if got := h.UsableSize(addr); got != 112 {
		t.Errorf("UsableSize = %d, want 112", got)
	}
	if got := h.AllocatedBytes(); got != 112 {
		t.Errorf("AllocatedBytes = %d, want 112", got)
	}
	if err := h.Free(tid, addr); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if got := h.AllocatedBytes(); got != 0 {
		t.Errorf("AllocatedBytes after free = %d, want 0", got)
	}
}

func TestMallocZeroSize(t *testing.T) {
	h, tid := newHeap(t, DefaultConfig())
	addr, err := h.Malloc(tid, 0)
	if err != nil {
		t.Fatalf("Malloc(0): %v", err)
	}
	if h.UsableSize(addr) == 0 {
		t.Error("Malloc(0) returned unusable allocation")
	}
	if err := h.Free(tid, addr); err != nil {
		t.Errorf("Free: %v", err)
	}
}

func TestMallocLarge(t *testing.T) {
	h, tid := newHeap(t, DefaultConfig())
	addr, err := h.Malloc(tid, 100_000)
	if err != nil {
		t.Fatalf("Malloc: %v", err)
	}
	us := h.UsableSize(addr)
	if us < 100_001 || us%mem.PageSize != 0 {
		t.Errorf("UsableSize = %d, want page multiple >= 100001", us)
	}
	if err := h.Free(tid, addr); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if h.AllocatedBytes() != 0 {
		t.Errorf("AllocatedBytes = %d, want 0", h.AllocatedBytes())
	}
}

func TestPadEndKeepsEndPointerInAllocation(t *testing.T) {
	// With PadEnd, a one-past-the-end pointer of the *requested* size must
	// still resolve to the same allocation.
	h, tid := newHeap(t, DefaultConfig())
	addr, err := h.Malloc(tid, 64) // becomes class 80
	if err != nil {
		t.Fatal(err)
	}
	a, ok := h.Lookup(addr + 64)
	if !ok || a.Base != addr {
		t.Errorf("end pointer resolves to (%#x, %v), want (%#x, true)", a.Base, ok, addr)
	}
}

func TestPadEndDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PadEnd = false
	h, tid := newHeap(t, cfg)
	addr, err := h.Malloc(tid, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.UsableSize(addr); got != 64 {
		t.Errorf("UsableSize = %d, want 64", got)
	}
}

func TestDistinctAllocations(t *testing.T) {
	h, tid := newHeap(t, DefaultConfig())
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		addr, err := h.Malloc(tid, 48)
		if err != nil {
			t.Fatal(err)
		}
		if seen[addr] {
			t.Fatalf("address %#x returned twice while live", addr)
		}
		seen[addr] = true
	}
}

func TestReuseAfterFree(t *testing.T) {
	h, tid := newHeap(t, DefaultConfig())
	a, _ := h.Malloc(tid, 48)
	if err := h.Free(tid, a); err != nil {
		t.Fatal(err)
	}
	// LIFO tcache: immediate reuse.
	b, _ := h.Malloc(tid, 48)
	if a != b {
		t.Errorf("tcache did not reuse: %#x then %#x", a, b)
	}
}

func TestInvalidFree(t *testing.T) {
	h, tid := newHeap(t, DefaultConfig())
	if err := h.Free(tid, mem.HeapBase+123456); !errors.Is(err, alloc.ErrInvalidFree) {
		t.Errorf("Free(unmapped) = %v, want ErrInvalidFree", err)
	}
	addr, _ := h.Malloc(tid, 1000) // class 1024
	if err := h.Free(tid, addr+8); !errors.Is(err, alloc.ErrInvalidFree) {
		t.Errorf("Free(interior) = %v, want ErrInvalidFree", err)
	}
}

func TestDoubleFreeSmall(t *testing.T) {
	h, tid := newHeap(t, DefaultConfig())
	addr, _ := h.Malloc(tid, 48)
	if err := h.Free(tid, addr); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(tid, addr); !errors.Is(err, alloc.ErrDoubleFree) {
		t.Errorf("double Free = %v, want ErrDoubleFree", err)
	}
}

func TestDoubleFreeSmallNoTcache(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TcacheEnabled = false
	h, tid := newHeap(t, cfg)
	addr, _ := h.Malloc(tid, 48)
	if err := h.Free(tid, addr); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(tid, addr); !errors.Is(err, alloc.ErrDoubleFree) {
		t.Errorf("double Free = %v, want ErrDoubleFree", err)
	}
}

func TestLookupFreeRegion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TcacheEnabled = false
	h, tid := newHeap(t, cfg)
	addr, _ := h.Malloc(tid, 48)
	if _, ok := h.Lookup(addr); !ok {
		t.Fatal("Lookup(live) failed")
	}
	if err := h.Free(tid, addr); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Lookup(addr); ok {
		t.Error("Lookup(freed region) succeeded")
	}
}

func TestLookupInterior(t *testing.T) {
	h, tid := newHeap(t, DefaultConfig())
	addr, _ := h.Malloc(tid, 1000) // class 1024
	a, ok := h.Lookup(addr + 512)
	if !ok || a.Base != addr || a.Size != 1024 {
		t.Errorf("Lookup(interior) = (%#x, %d, %v), want (%#x, 1024, true)", a.Base, a.Size, ok, addr)
	}
	if a.Large {
		t.Error("small allocation reported Large")
	}
}

func TestSlabReleasedWhenEmpty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TcacheEnabled = false
	h, tid := newHeap(t, cfg)
	// Fill several slabs of class 4096 (1 region per page likely).
	regs := SlabRegions(SizeToClass(4096))
	var addrs []uint64
	for i := 0; i < regs*3; i++ {
		a, err := h.Malloc(tid, 4000)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		if err := h.Free(tid, a); err != nil {
			t.Fatal(err)
		}
	}
	_, ndirty := h.dirtyStats()
	if ndirty == 0 {
		t.Error("no slabs released to arena after freeing everything")
	}
}

func TestPurgeAllReducesRSS(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TcacheEnabled = false
	h, tid := newHeap(t, cfg)
	addr, _ := h.Malloc(tid, 1<<20)
	rssLive := h.Space().RSS()
	if err := h.Free(tid, addr); err != nil {
		t.Fatal(err)
	}
	if got := h.Space().RSS(); got != rssLive {
		t.Errorf("RSS changed on free before purge: %d -> %d", rssLive, got)
	}
	h.PurgeAll()
	if got := h.Space().RSS(); got >= rssLive {
		t.Errorf("RSS after purge = %d, want < %d", got, rssLive)
	}
}

func TestDecayPurging(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TcacheEnabled = false
	cfg.DecayCycles = 100
	h, tid := newHeap(t, cfg)
	addr, _ := h.Malloc(tid, 1<<20)
	if err := h.Free(tid, addr); err != nil {
		t.Fatal(err)
	}
	dirtyBefore, _ := h.dirtyStats()
	if dirtyBefore == 0 {
		t.Fatal("no dirty bytes after large free")
	}
	h.Tick(50) // before deadline
	if d, _ := h.dirtyStats(); d != dirtyBefore {
		t.Error("decay purged too early")
	}
	h.Tick(200) // past deadline
	if d, _ := h.dirtyStats(); d != 0 {
		t.Errorf("dirty bytes after decay = %d, want 0", d)
	}
}

func TestRecommitAfterPurgeZeroes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TcacheEnabled = false
	h, tid := newHeap(t, cfg)
	addr, _ := h.Malloc(tid, 1<<16)
	if err := h.Space().Store64(addr, 0x1234); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(tid, addr); err != nil {
		t.Fatal(err)
	}
	h.PurgeAll()
	addr2, err := h.Malloc(tid, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if addr2 != addr {
		t.Fatalf("extent not recycled: %#x vs %#x", addr, addr2)
	}
	v, err := h.Space().Load64(addr2)
	if err != nil {
		t.Fatalf("load after recommit: %v", err)
	}
	if v != 0 {
		t.Errorf("recommitted extent reads %#x, want 0", v)
	}
}

func TestUnregisterThreadFlushes(t *testing.T) {
	h, tid := newHeap(t, DefaultConfig())
	var addrs []uint64
	for i := 0; i < 10; i++ {
		a, _ := h.Malloc(tid, 48)
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		if err := h.Free(tid, a); err != nil {
			t.Fatal(err)
		}
	}
	h.UnregisterThread(tid)
	// After flush, regions must be free at the bin level: Lookup fails.
	for _, a := range addrs {
		if _, ok := h.Lookup(a); ok {
			t.Errorf("address %#x still allocated after unregister flush", a)
		}
	}
}

func TestStats(t *testing.T) {
	h, tid := newHeap(t, DefaultConfig())
	a, _ := h.Malloc(tid, 100)
	b, _ := h.Malloc(tid, 100_000)
	st := h.Stats()
	if st.Mallocs != 2 || st.Frees != 0 {
		t.Errorf("Mallocs/Frees = %d/%d, want 2/0", st.Mallocs, st.Frees)
	}
	if st.Allocated == 0 || st.Active == 0 {
		t.Errorf("Allocated/Active = %d/%d, want nonzero", st.Allocated, st.Active)
	}
	if st.MetaBytes == 0 {
		t.Error("MetaBytes = 0")
	}
	_ = h.Free(tid, a)
	_ = h.Free(tid, b)
	st = h.Stats()
	if st.Frees != 2 {
		t.Errorf("Frees = %d, want 2", st.Frees)
	}
}

func TestConcurrentMallocFree(t *testing.T) {
	h := New(mem.NewAddressSpace(), DefaultConfig())
	const threads = 8
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		tid := h.RegisterThread()
		wg.Add(1)
		go func(tid alloc.ThreadID, seed uint64) {
			defer wg.Done()
			rng := seed
			var live []uint64
			for i := 0; i < iters; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				size := rng%2048 + 1
				a, err := h.Malloc(tid, size)
				if err != nil {
					t.Errorf("Malloc: %v", err)
					return
				}
				live = append(live, a)
				if len(live) > 64 {
					idx := int(rng % uint64(len(live)))
					if err := h.Free(tid, live[idx]); err != nil {
						t.Errorf("Free: %v", err)
						return
					}
					live[idx] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
			for _, a := range live {
				if err := h.Free(tid, a); err != nil {
					t.Errorf("final Free: %v", err)
					return
				}
			}
		}(tid, uint64(g)+1)
	}
	wg.Wait()
	if got := h.AllocatedBytes(); got != 0 {
		t.Errorf("AllocatedBytes after all frees = %d, want 0", got)
	}
}

// Property: malloc/free sequences never corrupt accounting — allocated bytes
// equal the sum of usable sizes of live allocations at every step.
func TestQuickAccountingInvariant(t *testing.T) {
	h, tid := newHeap(t, DefaultConfig())
	live := make(map[uint64]uint64) // addr -> usable
	var sum uint64
	f := func(ops []uint32) bool {
		for _, op := range ops {
			if op&1 == 0 || len(live) == 0 {
				size := uint64(op>>1)%20000 + 1
				a, err := h.Malloc(tid, size)
				if err != nil {
					return false
				}
				us := h.UsableSize(a)
				if us < size {
					return false
				}
				live[a] = us
				sum += us
			} else {
				for a, us := range live {
					if err := h.Free(tid, a); err != nil {
						return false
					}
					delete(live, a)
					sum -= us
					break
				}
			}
			if h.AllocatedBytes() != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMallocFreeSmall(b *testing.B) {
	h, tid := newHeap(b, DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := h.Malloc(tid, 64)
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Free(tid, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMallocFreeLarge(b *testing.B) {
	h, tid := newHeap(b, DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := h.Malloc(tid, 64<<10)
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Free(tid, a); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDetailedStats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TcacheEnabled = false
	h, tid := newHeap(t, cfg)
	var small []uint64
	for i := 0; i < 100; i++ {
		a, err := h.Malloc(tid, 64) // class 80
		if err != nil {
			t.Fatal(err)
		}
		small = append(small, a)
	}
	big, _ := h.Malloc(tid, 1<<20)
	d := h.DetailedStats()
	if d.Allocated != 100*80+d.LargeBytes {
		t.Errorf("Allocated = %d, want %d", d.Allocated, 100*80+d.LargeBytes)
	}
	if d.LargeBytes == 0 {
		t.Error("LargeBytes = 0 with a live large allocation")
	}
	found := false
	for _, b := range d.Bins {
		if b.Size == 80 {
			found = true
			if b.CurRegs != 100 {
				t.Errorf("class 80 CurRegs = %d, want 100", b.CurRegs)
			}
			if b.Utilisation <= 0 || b.Utilisation > 1 {
				t.Errorf("Utilisation = %f", b.Utilisation)
			}
		}
	}
	if !found {
		t.Error("class 80 missing from bins")
	}
	if d.String() == "" {
		t.Error("empty String rendering")
	}
	for _, a := range small {
		_ = h.Free(tid, a)
	}
	_ = h.Free(tid, big)
	d = h.DetailedStats()
	if d.Allocated != 0 {
		t.Errorf("Allocated after frees = %d", d.Allocated)
	}
	if d.DirtyExtents == 0 {
		t.Error("no dirty extents after frees")
	}
}
