// Open-loop traffic generation for the fleet simulation (internal/fleet).
//
// The profiles in this package are closed-loop: each thread issues its next
// operation the moment the previous one returns, so the offered load adapts
// to however fast the allocator happens to be. Production services are the
// opposite — users arrive whether or not the service is keeping up — and the
// difference matters for a memory governor: under closed-loop load a
// throttled tenant simply slows down, while under open-loop load its backlog
// and live set keep growing, which is exactly the pressure a host arbiter
// must absorb. The fleet layer therefore drives every tenant from an
// ArrivalProcess (Poisson, or a Markov-modulated Poisson process whose rate
// switches between quiet and burst states) and a Service kernel that performs
// the per-request allocator work, with arrivals drawn per tick independent of
// service completion.
package workload

import (
	"fmt"
	"math"

	"minesweeper/internal/mem"
	"minesweeper/internal/sim"
)

// ArrivalProcess draws how many requests arrive in one simulation tick.
// Implementations carry their own modulation state (MMPP's current rate
// state), so each tenant owns a private instance.
type ArrivalProcess interface {
	// Name identifies the process in reports ("poisson(8)", "mmpp").
	Name() string
	// Arrivals draws the arrival count for the next tick.
	Arrivals(r *sim.Rand) int
}

// Poisson is a homogeneous Poisson arrival process: independent ticks,
// Lambda expected arrivals per tick. The session-count interpretation: a
// tenant serving a large user population at aggregate request rate λ per
// tick — individual users are independent, so only λ matters.
type Poisson struct {
	// Lambda is the expected arrivals per tick (> 0).
	Lambda float64
}

// Name implements ArrivalProcess.
func (p Poisson) Name() string { return fmt.Sprintf("poisson(%g)", p.Lambda) }

// Arrivals implements ArrivalProcess.
func (p Poisson) Arrivals(r *sim.Rand) int { return poissonDraw(r, p.Lambda) }

// poissonDraw samples Poisson(lambda): Knuth's product method for small
// rates, a clamped Box-Muller normal approximation past it (the product
// method needs exp(-λ) multiplications, which both underflows and costs
// O(λ)). All randomness comes from the caller's sim.Rand, so draws are
// deterministic per seed.
func poissonDraw(r *sim.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		// Knuth: count multiplications until the uniform product drops
		// below e^-λ.
		limit := math.Exp(-lambda)
		n := 0
		prod := 1.0
		for {
			prod *= r.Float64()
			if prod < limit {
				return n
			}
			n++
		}
	}
	// Normal approximation N(λ, λ), continuity-corrected and clamped at 0.
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*r.Float64())
	n := int(lambda + z*math.Sqrt(lambda) + 0.5)
	if n < 0 {
		return 0
	}
	return n
}

// MMPPState is one rate state of a Markov-modulated Poisson process.
type MMPPState struct {
	// Lambda is the Poisson rate while in this state.
	Lambda float64
	// Stay is the per-tick probability of remaining in this state; with
	// probability 1-Stay the process steps to the next state (cyclically).
	Stay float64
}

// MMPP is a Markov-modulated Poisson process: arrivals are Poisson at the
// current state's rate, and the state follows a cyclic Markov chain. Two
// states — a quiet baseline and a burst — reproduce the diurnal/bursty load
// shapes that make a static per-tenant budget either wasteful or unsafe,
// which is the case for re-granting rails at runtime.
type MMPP struct {
	States []MMPPState
	state  int
}

// NewMMPP returns a two-state quiet/burst MMPP: quiet rate lambda, burst
// rate burst×lambda, expected quiet dwell quietTicks and burst dwell
// burstTicks.
func NewMMPP(lambda, burst float64, quietTicks, burstTicks int) *MMPP {
	stay := func(ticks int) float64 {
		if ticks <= 1 {
			return 0
		}
		return 1 - 1/float64(ticks)
	}
	return &MMPP{States: []MMPPState{
		{Lambda: lambda, Stay: stay(quietTicks)},
		{Lambda: lambda * burst, Stay: stay(burstTicks)},
	}}
}

// Name implements ArrivalProcess.
func (m *MMPP) Name() string { return fmt.Sprintf("mmpp(%d states)", len(m.States)) }

// State returns the current modulation state index (tests).
func (m *MMPP) State() int { return m.state }

// Arrivals implements ArrivalProcess.
func (m *MMPP) Arrivals(r *sim.Rand) int {
	if len(m.States) == 0 {
		return 0
	}
	st := m.States[m.state]
	if r.Float64() >= st.Stay {
		m.state = (m.state + 1) % len(m.States)
	}
	return poissonDraw(r, st.Lambda)
}

// Service is one tenant's request-serving kernel: Serve performs the
// allocator work for n arrived requests, Close tears the service's live set
// down (tenant shutdown frees everything, so a final sweep can reclaim it).
type Service interface {
	Serve(n int) error
	Close() error
}

// PressureFunc reports the tenant's current memory-pressure level: 0
// nominal, 1 elevated, 2 critical (the control.Level values, passed as an
// int so the workload layer stays decoupled from the control package).
type PressureFunc func() int

// PressureAware is implemented by services that shed load under memory
// pressure — the application half of the fleet's host<->tenant protocol.
// The host arbiter squeezes a tenant's budget rail, the tenant's governor
// plane crosses into Elevated/Critical at its next sweep boundary, and the
// service reads that level and sheds (evicts cache entries, shrinks pools,
// flushes batches). Allocator-level tightening alone cannot shrink an
// application's live set; this is the hook real co-located services (cache
// eviction under memcg pressure) implement. With no PressureFunc attached,
// behaviour is bit-identical to the pressure-blind kernels.
type PressureAware interface {
	SetPressure(PressureFunc)
}

// NewService builds the named service kernel on a thread. Kinds:
//
//   - "cache": the examples/webcache shape — a fixed-slot connection cache
//     with eviction churn and session references that outlive entries
//     (sessions are modelled correctly here: the fleet measures performance
//     isolation, not exploitability, so references are erased before frees);
//   - "churn": larson-style slot churn — every request frees and reallocates
//     random slots, the allocation-heaviest shape;
//   - "burst": arena-style batching — requests accumulate allocations and
//     every batchEvery-th request frees the whole batch, the shape with the
//     spikiest quarantine inflow.
//
// sizes may be nil for the kind's default distribution.
func NewService(kind string, th *sim.Thread, seed uint64, sizes SizeDist) (Service, error) {
	r := sim.NewRand(seed)
	switch kind {
	case "", "cache":
		if sizes == nil {
			sizes = SizeDist{{Lo: 128, Hi: 1024, Weight: 80}, {Lo: 1025, Hi: 8192, Weight: 20}}
		}
		return &cacheService{th: th, r: r, sizes: sizes,
			slots:    make([]uint64, 128),
			sessions: make([]session, 0, 16),
		}, nil
	case "churn":
		if sizes == nil {
			sizes = SizeDist{{Lo: 32, Hi: 512, Weight: 70}, {Lo: 513, Hi: 4096, Weight: 30}}
		}
		return &churnService{th: th, r: r, sizes: sizes, slots: make([]uint64, 256)}, nil
	case "burst":
		if sizes == nil {
			sizes = SizeDist{{Lo: 256, Hi: 2048, Weight: 60}, {Lo: 2049, Hi: 16384, Weight: 40}}
		}
		return &burstService{th: th, r: r, sizes: sizes, batchEvery: 64}, nil
	default:
		return nil, fmt.Errorf("workload: unknown service kind %q (want cache, churn or burst)", kind)
	}
}

// session is one cache client holding a reference to an entry.
type session struct {
	slot int    // stack slot index holding the pointer
	ttl  int    // requests until the session expires
	addr uint64 // the referenced entry (bookkeeping; the pointer lives in the stack slot)
}

// cacheService is the webcache-shaped kernel: misses allocate entries, hits
// touch them, periodic evictions free them, and sessions pin entries in
// stack slots for a while (real in-memory pointers the sweep can see, so
// quarantined entries are genuinely retained until sessions expire).
type cacheService struct {
	th       *sim.Thread
	r        *sim.Rand
	sizes    SizeDist
	slots    []uint64 // slot -> entry address (0 = empty)
	sessions []session
	pressure PressureFunc
}

// SetPressure implements PressureAware: under Elevated pressure eviction
// doubles and no new sessions pin entries; under Critical the cache
// additionally sheds a batch of entries per request, draining the live set
// toward empty.
func (c *cacheService) SetPressure(p PressureFunc) { c.pressure = p }

// evict expires every session pinning entry e, then frees it.
func (c *cacheService) evict(slot int, e uint64) error {
	for si := 0; si < len(c.sessions); {
		if c.sessions[si].addr == e {
			if err := c.dropSession(si); err != nil {
				return err
			}
			continue
		}
		si++
	}
	if err := c.th.Free(e); err != nil {
		return err
	}
	c.slots[slot] = 0
	return nil
}

func (c *cacheService) Serve(n int) error {
	level := 0
	if c.pressure != nil {
		level = c.pressure()
	}
	evictDiv := 8 // 1-in-8 eviction at Nominal
	if level >= 1 {
		evictDiv = 2
	}
	for i := 0; i < n; i++ {
		if level >= 2 {
			// Critical: proactively shed a batch of entries before
			// serving — the cache resizes itself to the squeezed rail.
			for k := 0; k < 4; k++ {
				s := c.r.Intn(len(c.slots))
				if e := c.slots[s]; e != 0 {
					if err := c.evict(s, e); err != nil {
						return err
					}
				}
			}
		}
		slot := c.r.Intn(len(c.slots))
		e := c.slots[slot]
		if e == 0 {
			// Miss: allocate and initialise an entry.
			size := c.sizes.Sample(c.r)
			addr, err := c.th.Malloc(size)
			if err != nil {
				return err
			}
			words := int(size / mem.WordSize)
			for w := 0; w < words; w += 8 {
				if err := c.th.Store(addr+uint64(w)*mem.WordSize, c.r.Uint64()&payloadMask); err != nil {
					return err
				}
			}
			c.slots[slot] = addr
			// Some requests open a session pinning the entry (none under
			// pressure: sessions are what hold memory hostage).
			if level == 0 && len(c.sessions) < cap(c.sessions) && c.r.Intn(4) == 0 {
				si := len(c.sessions)
				if err := c.th.Store(c.th.StackSlot(si), addr); err != nil {
					return err
				}
				c.sessions = append(c.sessions, session{slot: si, ttl: 8 + c.r.Intn(64), addr: addr})
			}
			continue
		}
		// Hit: touch a word of the entry.
		if _, err := c.th.Load(e); err != nil {
			return err
		}
		// Periodic eviction: expire the sessions pinning this entry first
		// (correct-program discipline — the fleet measures isolation, not
		// exploitability), then free it.
		if c.r.Intn(evictDiv) == 0 {
			if err := c.evict(slot, e); err != nil {
				return err
			}
		}
		// Session churn: ttls tick down; expired sessions release their pin.
		for si := 0; si < len(c.sessions); {
			c.sessions[si].ttl--
			if c.sessions[si].ttl <= 0 {
				if err := c.dropSession(si); err != nil {
					return err
				}
				continue
			}
			si++
		}
	}
	return nil
}

// dropSession erases the session's stack pointer and swap-removes it.
func (c *cacheService) dropSession(i int) error {
	s := c.sessions[i]
	if err := c.th.Store(c.th.StackSlot(s.slot), 0); err != nil {
		return err
	}
	last := len(c.sessions) - 1
	if i != last {
		c.sessions[i] = c.sessions[last]
		// The moved session keeps its own stack slot; only bookkeeping moves.
	}
	c.sessions = c.sessions[:last]
	return nil
}

func (c *cacheService) Close() error {
	for i := len(c.sessions) - 1; i >= 0; i-- {
		if err := c.dropSession(i); err != nil {
			return err
		}
	}
	for slot, e := range c.slots {
		if e != 0 {
			if err := c.th.Free(e); err != nil {
				return err
			}
			c.slots[slot] = 0
		}
	}
	return nil
}

// churnService is larson-style slot churn: each request frees a random live
// slot and reallocates it.
type churnService struct {
	th       *sim.Thread
	r        *sim.Rand
	sizes    SizeDist
	slots    []uint64
	pressure PressureFunc
}

// SetPressure implements PressureAware: under Elevated pressure only half
// the freed slots are refilled; under Critical none are (and an extra slot
// is drained per request), so the pool shrinks toward empty while arrivals
// keep coming.
func (c *churnService) SetPressure(p PressureFunc) { c.pressure = p }

func (c *churnService) Serve(n int) error {
	level := 0
	if c.pressure != nil {
		level = c.pressure()
	}
	for i := 0; i < n; i++ {
		slot := c.r.Intn(len(c.slots))
		if c.slots[slot] != 0 {
			if err := c.th.Free(c.slots[slot]); err != nil {
				return err
			}
			c.slots[slot] = 0
		}
		if level >= 2 {
			// Critical: drain an extra slot and refill nothing.
			s := c.r.Intn(len(c.slots))
			if c.slots[s] != 0 {
				if err := c.th.Free(c.slots[s]); err != nil {
					return err
				}
				c.slots[s] = 0
			}
			continue
		}
		if level == 1 && c.r.Intn(2) == 0 {
			continue // Elevated: refill only half the churned slots.
		}
		addr, err := c.th.Malloc(c.sizes.Sample(c.r))
		if err != nil {
			return err
		}
		if err := c.th.Store(addr, c.r.Uint64()&payloadMask); err != nil {
			return err
		}
		c.slots[slot] = addr
	}
	return nil
}

func (c *churnService) Close() error {
	for i, a := range c.slots {
		if a != 0 {
			if err := c.th.Free(a); err != nil {
				return err
			}
			c.slots[i] = 0
		}
	}
	return nil
}

// burstService accumulates allocations and frees them in whole-batch bursts.
type burstService struct {
	th         *sim.Thread
	r          *sim.Rand
	sizes      SizeDist
	batch      []uint64
	batchEvery int
	served     int
	pressure   PressureFunc
}

// SetPressure implements PressureAware: pressure shortens the batch —
// quartered at Elevated, flushed after every request at Critical — so the
// spiky quarantine inflow this kernel exists to produce flattens out when
// the tenant's rail is squeezed.
func (b *burstService) SetPressure(p PressureFunc) { b.pressure = p }

func (b *burstService) Serve(n int) error {
	every := b.batchEvery
	if b.pressure != nil {
		switch b.pressure() {
		case 1:
			every = b.batchEvery / 4
		case 2:
			every = 1
		}
	}
	if every < 1 {
		every = 1
	}
	for i := 0; i < n; i++ {
		addr, err := b.th.Malloc(b.sizes.Sample(b.r))
		if err != nil {
			return err
		}
		if err := b.th.Store(addr, b.r.Uint64()&payloadMask); err != nil {
			return err
		}
		b.batch = append(b.batch, addr)
		b.served++
		if len(b.batch) >= every || b.served%b.batchEvery == 0 {
			if err := b.flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (b *burstService) flush() error {
	for _, a := range b.batch {
		if err := b.th.Free(a); err != nil {
			return err
		}
	}
	b.batch = b.batch[:0]
	return nil
}

func (b *burstService) Close() error { return b.flush() }
