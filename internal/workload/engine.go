package workload

import (
	"fmt"

	"minesweeper/internal/mem"
	"minesweeper/internal/sim"
)

// maxPtrSlots is the number of leading words of each object reserved for
// child pointers.
const maxPtrSlots = 4

// payloadMask keeps generated payload words below the heap base so data
// never accidentally forms pointers (false pointers still arise from real
// address values kept too long — the conservative-marking hazard — but not
// from random payload).
const payloadMask = 0xFFFF_FFFF

// obj is the engine's bookkeeping for one live allocation. The engine
// behaves like a correct C program: every stored pointer is erased before
// the object it targets is freed.
type obj struct {
	addr uint64
	size uint64

	// Incoming reference: either a slot inside a parent object, or a root
	// slot (stack/global), or none.
	parent     *obj
	parentSlot int    // word index within parent
	rootSlot   uint64 // address of root slot, 0 if none

	children []*obj
	childIdx int // index of this object in parent.children

	slotsUsed int // child-pointer slots consumed in this object
}

func (o *obj) ptrSlots() int {
	n := int(o.size / mem.WordSize)
	if n > maxPtrSlots {
		n = maxPtrSlots
	}
	return n
}

// engine runs the generic churn workload on one thread.
type engine struct {
	th   *sim.Thread
	prof *Profile
	r    *sim.Rand

	objs     []*obj
	roots    []uint64 // free root-slot addresses
	lifetime int      // total lifetime weight
}

// newEngine prepares a thread's engine with its partition of root slots.
func newEngine(th *sim.Thread, p *sim.Program, prof *Profile, threadIdx int) *engine {
	e := &engine{
		th:   th,
		prof: prof,
		r:    th.Rand(),
	}
	e.lifetime = prof.Lifetime.Newest + prof.Lifetime.Oldest + prof.Lifetime.Random
	if e.lifetime == 0 {
		e.prof.Lifetime = Lifetime{Random: 1}
		e.lifetime = 1
	}
	// Root slots: this thread's slice of globals plus its own stack.
	gPer := p.GlobalSlots() / prof.Threads
	for i := 0; i < gPer; i++ {
		e.roots = append(e.roots, p.GlobalSlot(threadIdx*gPer+i))
	}
	for i := 0; i < th.StackSlots(); i++ {
		e.roots = append(e.roots, th.StackSlot(i))
	}
	return e
}

// run executes the profile: a startup phase that builds the initial live
// heap (so compute-bound benchmarks hold a fixed working set instead of
// churning), the operation budget, then teardown of all live objects
// (program exit).
func (e *engine) run() error {
	for len(e.objs) < e.prof.LiveTarget {
		if err := e.allocStep(); err != nil {
			return fmt.Errorf("workload %s startup: %w", e.prof.Name, err)
		}
	}
	for op := 0; op < e.prof.Ops; op++ {
		if e.r.Intn(10000) < e.prof.AllocBP {
			if err := e.allocStep(); err != nil {
				return fmt.Errorf("workload %s op %d: %w", e.prof.Name, op, err)
			}
		} else {
			if err := e.workStep(); err != nil {
				return fmt.Errorf("workload %s op %d: %w", e.prof.Name, op, err)
			}
		}
	}
	for len(e.objs) > 0 {
		if err := e.freeVictim(); err != nil {
			return fmt.Errorf("workload %s teardown: %w", e.prof.Name, err)
		}
	}
	return nil
}

// allocStep frees a victim if the live set is full, then allocates and links
// a new object.
func (e *engine) allocStep() error {
	if len(e.objs) >= e.prof.LiveTarget {
		if err := e.freeVictim(); err != nil {
			return err
		}
	}
	size := e.prof.Sizes.Sample(e.r)
	addr, err := e.th.Malloc(size)
	if err != nil {
		return err
	}
	o := &obj{addr: addr, size: size}

	// Initialise payload (what a constructor would do).
	words := int(size / mem.WordSize)
	init := e.prof.InitWords
	if init > words {
		init = words
	}
	for w := o.ptrSlots(); w < init; w++ {
		if err := e.th.Store(addr+uint64(w)*mem.WordSize, e.r.Uint64()&payloadMask); err != nil {
			return err
		}
	}

	// Link the object into the live graph: from a heap parent with a free
	// pointer slot, else from a root slot, else leave unreferenced.
	linked := false
	if len(e.objs) > 0 && e.r.Intn(100) < e.prof.PointerPct {
		parent := e.objs[e.r.Intn(len(e.objs))]
		if parent.slotsUsed < parent.ptrSlots() {
			slot := parent.slotsUsed
			parent.slotsUsed++
			if err := e.th.Store(parent.addr+uint64(slot)*mem.WordSize, addr); err != nil {
				return err
			}
			o.parent = parent
			o.parentSlot = slot
			o.childIdx = len(parent.children)
			parent.children = append(parent.children, o)
			linked = true
		}
	}
	if !linked && len(e.roots) > 0 {
		slot := e.roots[len(e.roots)-1]
		e.roots = e.roots[:len(e.roots)-1]
		if err := e.th.Store(slot, addr); err != nil {
			return err
		}
		o.rootSlot = slot
	}
	e.objs = append(e.objs, o)
	return nil
}

// freeVictim removes one object per the lifetime policy, erasing all
// references to it first (correct-program discipline), and detaching its
// children (their linking pointers die with the object's memory).
func (e *engine) freeVictim() error {
	n := len(e.objs)
	if n == 0 {
		return nil
	}
	var idx int
	w := e.r.Intn(e.lifetime)
	switch {
	case w < e.prof.Lifetime.Newest:
		idx = n - 1
	case w < e.prof.Lifetime.Newest+e.prof.Lifetime.Oldest:
		idx = 0
	default:
		idx = e.r.Intn(n)
	}
	o := e.objs[idx]

	// Erase the incoming reference.
	if o.parent != nil {
		if err := e.th.Store(o.parent.addr+uint64(o.parentSlot)*mem.WordSize, 0); err != nil {
			return err
		}
		// Remove from the parent's child list (swap-remove).
		cs := o.parent.children
		last := len(cs) - 1
		cs[o.childIdx] = cs[last]
		cs[o.childIdx].childIdx = o.childIdx
		o.parent.children = cs[:last]
	} else if o.rootSlot != 0 {
		if err := e.th.Store(o.rootSlot, 0); err != nil {
			return err
		}
		e.roots = append(e.roots, o.rootSlot)
	}

	// Children lose their incoming pointer (it lived in o's memory).
	for _, c := range o.children {
		c.parent = nil
	}
	o.children = nil

	// Remove from the live set, preserving rough age order: index 0 is
	// removed by re-slicing, others by swap with the last element.
	if idx == 0 {
		e.objs = e.objs[1:]
	} else {
		e.objs[idx] = e.objs[n-1]
		e.objs = e.objs[:n-1]
	}
	return e.th.Free(o.addr)
}

// workStep models compute: touching random words of random live objects.
func (e *engine) workStep() error {
	if len(e.objs) == 0 {
		return nil
	}
	for t := 0; t < e.prof.WorkTouches; t++ {
		o := e.objs[e.r.Intn(len(e.objs))]
		words := int(o.size / mem.WordSize)
		if words <= o.ptrSlots() {
			continue
		}
		w := o.ptrSlots() + e.r.Intn(words-o.ptrSlots())
		addr := o.addr + uint64(w)*mem.WordSize
		if e.r.Intn(4) == 0 {
			if err := e.th.Store(addr, e.r.Uint64()&payloadMask); err != nil {
				return err
			}
		} else {
			if _, err := e.th.Load(addr); err != nil {
				return err
			}
		}
	}
	return nil
}
