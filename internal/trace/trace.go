// Package trace records and replays allocation traces: sequences of
// malloc/free events with sizes and stable allocation identifiers. A trace
// captured from any workload can be replayed against any scheme, the
// simulated analogue of re-running a recorded application allocation profile
// under a different LD_PRELOADed allocator (§A.7).
//
// The binary format is versioned and self-describing:
//
//	header:  magic "MSTR" | u16 version | u16 reserved | u32 thread count
//	events:  u8 kind | uvarint thread | uvarint id | uvarint size
//
// where kind is 'M' (malloc) or 'F' (free); size is present only for
// mallocs. IDs name allocations so frees can reference them independently of
// the addresses any particular allocator assigns on replay.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Event kinds.
const (
	// KindMalloc records an allocation.
	KindMalloc byte = 'M'
	// KindFree records a deallocation.
	KindFree byte = 'F'
)

const magic = "MSTR"

// version is the current format version.
const version = 1

// Event is one allocation-trace event.
type Event struct {
	// Kind is KindMalloc or KindFree.
	Kind byte
	// Thread is the mutator thread index.
	Thread uint32
	// ID is the allocation's stable identifier.
	ID uint64
	// Size is the requested size (mallocs only).
	Size uint64
}

// Trace is a recorded allocation history.
type Trace struct {
	// Threads is the number of mutator threads.
	Threads uint32
	// Events in program order.
	Events []Event
}

// ErrCorrupt reports a malformed trace.
var ErrCorrupt = errors.New("trace: corrupt input")

// Write serialises the trace.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint16(hdr[0:2], version)
	binary.LittleEndian.PutUint32(hdr[4:8], t.Threads)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [3 * binary.MaxVarintLen64]byte
	for _, e := range t.Events {
		if err := bw.WriteByte(e.Kind); err != nil {
			return err
		}
		n := binary.PutUvarint(buf[:], uint64(e.Thread))
		n += binary.PutUvarint(buf[n:], e.ID)
		if e.Kind == KindMalloc {
			n += binary.PutUvarint(buf[n:], e.Size)
		}
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserialises a trace.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4+8)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if string(head[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	t := &Trace{Threads: binary.LittleEndian.Uint32(head[8:12])}
	for {
		kind, err := br.ReadByte()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if kind != KindMalloc && kind != KindFree {
			return nil, fmt.Errorf("%w: bad event kind %#x", ErrCorrupt, kind)
		}
		thread, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		e := Event{Kind: kind, Thread: uint32(thread), ID: id}
		if kind == KindMalloc {
			e.Size, err = binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
		}
		t.Events = append(t.Events, e)
	}
}

// Validate checks trace invariants: every free references a live malloc ID
// of the same thread history, and IDs are not allocated twice concurrently.
func (t *Trace) Validate() error {
	live := make(map[uint64]bool, 1024)
	for i, e := range t.Events {
		switch e.Kind {
		case KindMalloc:
			if live[e.ID] {
				return fmt.Errorf("trace: event %d: id %d allocated twice", i, e.ID)
			}
			if e.Size == 0 {
				return fmt.Errorf("trace: event %d: zero size", i)
			}
			live[e.ID] = true
		case KindFree:
			if !live[e.ID] {
				return fmt.Errorf("trace: event %d: free of dead id %d", i, e.ID)
			}
			delete(live, e.ID)
		}
	}
	return nil
}

// Stats summarises a trace.
type Stats struct {
	Mallocs, Frees int
	PeakLive       int
	PeakLiveBytes  uint64
	TotalBytes     uint64
}

// Stats computes summary statistics.
func (t *Trace) Stats() Stats {
	var st Stats
	live := make(map[uint64]uint64)
	var liveBytes uint64
	for _, e := range t.Events {
		switch e.Kind {
		case KindMalloc:
			st.Mallocs++
			st.TotalBytes += e.Size
			live[e.ID] = e.Size
			liveBytes += e.Size
			if len(live) > st.PeakLive {
				st.PeakLive = len(live)
			}
			if liveBytes > st.PeakLiveBytes {
				st.PeakLiveBytes = liveBytes
			}
		case KindFree:
			st.Frees++
			liveBytes -= live[e.ID]
			delete(live, e.ID)
		}
	}
	return st
}
