package mem

// Byte- and bulk-granularity accessors. The simulated machine stores words;
// these helpers emulate narrower and wider accesses on top of the atomic
// word primitives so workloads can model realistic payloads (strings,
// headers) without weakening the substrate's race-freedom story: sub-word
// stores are read-modify-write on the containing word and are safe only from
// the thread owning the memory, exactly like real non-atomic byte stores.

// Load8 reads the byte at addr.
func (as *AddressSpace) Load8(addr uint64) (byte, error) {
	word, err := as.Load64(addr &^ 7)
	if err != nil {
		return 0, err
	}
	return byte(word >> ((addr & 7) * 8)), nil
}

// Store8 writes the byte at addr via a read-modify-write of its word.
func (as *AddressSpace) Store8(addr uint64, v byte) error {
	base := addr &^ 7
	word, err := as.Load64(base)
	if err != nil {
		return err
	}
	shift := (addr & 7) * 8
	word = word&^(0xFF<<shift) | uint64(v)<<shift
	return as.Store64(base, word)
}

// LoadBytes reads n bytes starting at addr into a new slice.
func (as *AddressSpace) LoadBytes(addr, n uint64) ([]byte, error) {
	out := make([]byte, n)
	for i := uint64(0); i < n; i++ {
		b, err := as.Load8(addr + i)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// StoreBytes writes p starting at addr.
func (as *AddressSpace) StoreBytes(addr uint64, p []byte) error {
	for i, b := range p {
		if err := as.Store8(addr+uint64(i), b); err != nil {
			return err
		}
	}
	return nil
}

// Memcpy copies n bytes from src to dst (non-overlapping semantics are the
// caller's responsibility, as with C memcpy).
func (as *AddressSpace) Memcpy(dst, src, n uint64) error {
	// Word-aligned fast path.
	if dst&7 == 0 && src&7 == 0 && n&7 == 0 {
		for off := uint64(0); off < n; off += WordSize {
			v, err := as.Load64(src + off)
			if err != nil {
				return err
			}
			if err := as.Store64(dst+off, v); err != nil {
				return err
			}
		}
		return nil
	}
	for off := uint64(0); off < n; off++ {
		b, err := as.Load8(src + off)
		if err != nil {
			return err
		}
		if err := as.Store8(dst+off, b); err != nil {
			return err
		}
	}
	return nil
}
