package mem

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestClearPageDirtyBasics covers the test-and-clear primitive: it reports
// the prior state and leaves the bit clear without disturbing residency or
// protection.
func TestClearPageDirtyBasics(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, 2*PageSize, true)
	as.ClearSoftDirty()
	if r.TestClearPageDirty(0) {
		t.Fatal("TestClearPageDirty reported a clean page as dirty")
	}
	if err := as.Store64(r.Base()+8, 7); err != nil {
		t.Fatal(err)
	}
	if !r.TestClearPageDirty(0) {
		t.Fatal("TestClearPageDirty missed a dirty page")
	}
	if r.PageDirty(0) {
		t.Fatal("page still dirty after TestClearPageDirty")
	}
	if r.TestClearPageDirty(0) {
		t.Fatal("second TestClearPageDirty reported dirty")
	}
	if !r.PageReadable(0) {
		t.Fatal("TestClearPageDirty disturbed page residency/protection")
	}
	if v, err := as.Load64(r.Base() + 8); err != nil || v != 7 {
		t.Fatalf("Load64 = %d, %v; want 7", v, err)
	}
}

// TestDirtySetVsClearOrdering is the oracle for the store() ordering contract:
// a writer bumps a counter word (always through Store64, which sets the dirty
// bit after the word store) while a sweeper repeatedly test-and-clears the
// page's dirty bit and records the counter value it scans. The invariant: at
// any moment the sweeper finds the page CLEAN, every prior store is visible —
// so the value observed on the most recent dirty scan, plus any clean-state
// read, can never lag a value that a later dirty flag would have republished.
// Concretely: after the writer finishes, one final test-and-clear plus scan
// must observe the final counter value.
//
// With the dirty bit set before the word store (the bug this test pins), the
// interleaving Or(dirty) < clear < scan < store leaves the page clean while
// the scan missed the newest value — the final check fails. Run under -race
// via `make race-hot` this also proves the primitives are data-race-free.
func TestDirtySetVsClearOrdering(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(KindHeap, PageSize, true)
	addr := r.Base()
	as.ClearSoftDirty()

	const writes = 200_000
	var wg sync.WaitGroup
	var writerDone atomic.Bool
	var scanned atomic.Uint64 // max counter value observed after a dirty flag

	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(1); i <= writes; i++ {
			if err := r.Store64(addr, i); err != nil {
				t.Error(err)
				return
			}
		}
		writerDone.Store(true)
	}()
	go func() {
		defer wg.Done()
		for !writerDone.Load() {
			if r.TestClearPageDirty(0) {
				// Dirty consumed: the contract says a scan now sees
				// every store that set it.
				v, err := r.Load64(addr)
				if err != nil {
					t.Error(err)
					return
				}
				if prev := scanned.Load(); v < prev {
					t.Errorf("scan went backwards: %d after %d", v, prev)
					return
				}
				scanned.Store(v)
			}
		}
	}()
	wg.Wait()

	// Final round: if the page is clean, every store is already visible; if
	// dirty, one more scan must surface the final value. Either way the
	// "scan after consuming the dirty bit" view reaches the last write.
	if r.TestClearPageDirty(0) {
		v, _ := r.Load64(addr)
		scanned.Store(v)
	}
	if got := scanned.Load(); got != writes {
		t.Fatalf("after clean page, newest scanned value = %d, want %d (lost write: dirty bit cleared without the scan observing the store)", got, writes)
	}
}

// TestClearSoftDirtyConcurrentWriters stresses whole-space ClearSoftDirty
// against many writers under -race: after all writers finish and one final
// clear+scan round runs, pages must be clean and hold their final values.
func TestClearSoftDirtyConcurrentWriters(t *testing.T) {
	as := NewAddressSpace()
	const pages = 8
	r, _ := as.Map(KindHeap, pages*PageSize, true)
	as.ClearSoftDirty()

	const perPage = 20_000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	clearerDone := make(chan struct{})
	wg.Add(pages)
	for p := 0; p < pages; p++ {
		go func(p int) {
			defer wg.Done()
			addr := r.PageAddr(p)
			for i := uint64(1); i <= perPage; i++ {
				if err := r.Store64(addr, i); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	go func() {
		defer close(clearerDone)
		for {
			select {
			case <-stop:
				return
			default:
				as.ClearSoftDirty()
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-clearerDone

	for p := 0; p < pages; p++ {
		r.TestClearPageDirty(p)
		if v, err := r.Load64(r.PageAddr(p)); err != nil || v != perPage {
			t.Fatalf("page %d final value = %d, %v; want %d", p, v, err, perPage)
		}
		if r.PageDirty(p) {
			t.Fatalf("page %d dirty after final clear with no writers", p)
		}
	}
}
