// Package jemalloc implements a JeMalloc-style size-class slab allocator over
// the simulated address space. It reproduces the structural properties
// MineSweeper depends on: out-of-line metadata (nothing allocator-internal is
// stored in application memory, so sweeps never scan or corrupt metadata),
// extent-based large allocations, per-thread caches, decay-based purging of
// dirty extents, and an extent-hook API (commit/decommit) that MineSweeper
// intercepts for its unmapping and fragmentation management (§4.2, §4.5).
//
// The paper's minimally modified JeMalloc also grows every allocation by one
// byte so C++ end() pointers stay inside the same allocation; the facade
// reproduces that via Config.PadEnd.
package jemalloc

import (
	"math/bits"

	"minesweeper/internal/mem"
)

// Size-class geometry, matching 64-bit jemalloc with 4 KiB pages: classes
// 8, 16, 32, 48, ..., 128, then four classes per doubling up to the small
// maximum; larger requests are page-granular "large" extents.
const (
	// SmallMax is the largest small (slab-allocated) class.
	SmallMax = 14336
	// maxSlabPages caps slab extent size.
	maxSlabPages = 16
)

// classes is the small size-class table, built at init.
var classes []uint64

// slabPagesFor holds the chosen slab size (in pages) per class.
var slabPagesFor []int

// class8 maps (size+7)/8 to a class index for sizes <= SmallMax.
var class8 []int32

func init() {
	classes = append(classes, 8, 16, 32, 48, 64, 80, 96, 112, 128)
	for group := uint64(128); ; group *= 2 {
		step := group / 4
		done := false
		for i := uint64(1); i <= 4; i++ {
			s := group + i*step
			if s > SmallMax {
				done = true
				break
			}
			classes = append(classes, s)
		}
		if done {
			break
		}
	}

	slabPagesFor = make([]int, len(classes))
	for c, size := range classes {
		bestPages, bestWaste := 1, ^uint64(0)
		for p := 1; p <= maxSlabPages; p++ {
			bytes := uint64(p) * mem.PageSize
			if bytes < size {
				continue
			}
			waste := bytes % size
			// Normalise waste per page so bigger slabs must earn
			// their keep.
			score := waste * uint64(maxSlabPages) / uint64(p)
			if score < bestWaste {
				bestWaste, bestPages = score, p
			}
			if waste == 0 {
				break
			}
		}
		slabPagesFor[c] = bestPages
	}

	class8 = make([]int32, SmallMax/8+1)
	c := int32(0)
	for i := range class8 {
		size := uint64(i) * 8
		if size == 0 {
			size = 1
		}
		for classes[c] < size {
			c++
		}
		class8[i] = c
	}
}

// NumClasses returns the number of small size classes.
func NumClasses() int { return len(classes) }

// ClassSize returns the allocation size of class c.
func ClassSize(c int) uint64 { return classes[c] }

// SizeToClass returns the smallest class whose size is >= size. size must be
// in (0, SmallMax].
func SizeToClass(size uint64) int {
	return int(class8[(size+7)/8])
}

// IsSmall reports whether size is served from slabs.
func IsSmall(size uint64) bool { return size > 0 && size <= SmallMax }

// SlabPages returns the slab extent size, in pages, used for class c.
func SlabPages(c int) int { return slabPagesFor[c] }

// SlabRegions returns how many regions of class c fit in its slab.
func SlabRegions(c int) int {
	return int(uint64(slabPagesFor[c]) * mem.PageSize / classes[c])
}

// LargeAllocSize rounds a large request up to its large size class: four
// classes per doubling, continuing the small-class geometry (16K, 20K, 24K,
// 28K, 32K, 40K, ...) as in jemalloc. Quantising large extents is what makes
// the arena's dirty-extent recycling effective: without it, continuously
// varying request sizes would never find a reusable extent.
func LargeAllocSize(req uint64) uint64 {
	const minLarge = 4 * mem.PageSize
	if req <= minLarge {
		return minLarge
	}
	g := uint64(1) << (63 - bits.LeadingZeros64(req-1))
	step := g / 4
	return (req + step - 1) / step * step
}

// LargePages returns the extent size in pages for a large request.
func LargePages(size uint64) uint64 { return LargeAllocSize(size) / mem.PageSize }
