package metrics

// Reference numbers from the MineSweeper paper (Erdős, Ainsworth & Jones,
// ASPLOS 2022), used two ways:
//
//   - EXPERIMENTS.md records paper-vs-measured for every figure;
//   - Figures 7 and 10 include literature-only comparators (Oscar, DangSan,
//     pSweeper, CRCount) that the paper itself reports from the respective
//     publications rather than re-running; we reproduce them the same way.
//
// Values stated in the paper's text are exact; per-benchmark values that
// appear only as chart bars are approximate chart readings, marked below.

// PaperHeadline holds the exact headline numbers from the paper's text.
var PaperHeadline = struct {
	MSSlowdown, MSMemory                    float64 // §1, §5.2 (fully concurrent)
	MSMostlySlowdown, MSMostlyMemory        float64 // §5.3
	MSPeakMemory                            float64 // §5.2
	MSCPUUtil, MSCPUUtilWorst               float64 // §5.2
	MSWorstSlowdown                         float64 // xalancbmk, §5.2
	MarkUsSlowdown, MarkUsMemory            float64 // §5.2
	MarkUsWorstSlowdown                     float64 // §5.2
	FFSlowdown, FFMemory, FFWorstMemory     float64 // §5.2
	Spec17MS, Spec17MSMem                   float64 // §5.6
	Spec17FF, Spec17FFMem                   float64 // §5.6
	Spec17MarkUs, Spec17MarkUsMem           float64 // §5.6
	StressMS, StressMSMem                   float64 // §5.7
	StressMSWorst, StressMSMemWorst         float64 // §5.7
	StressMarkUs, StressMarkUsMem           float64 // §5.7
	StressMarkUsWorst                       float64 // §5.7
	StressFF, StressFFMem, StressFFMemWorst float64 // §5.7
	ScudoOverhead                           float64 // §7
	UnoptPlusUnmapTime, UnoptPlusUnmapMem   float64 // §5.4 sequential version
	ConcTime, ConcMem                       float64 // §5.4 after concurrency
	SweepsOmnetpp, SweepsXalancbmk          int     // §5.2 / Figure 14
}{
	MSSlowdown: 1.054, MSMemory: 1.111,
	MSMostlySlowdown: 1.082, MSMostlyMemory: 1.117,
	MSPeakMemory: 1.177,
	MSCPUUtil:    1.096, MSCPUUtilWorst: 2.29,
	MSWorstSlowdown: 1.727,
	MarkUsSlowdown:  1.155, MarkUsMemory: 1.123,
	MarkUsWorstSlowdown: 2.97,
	FFSlowdown:          1.035, FFMemory: 3.44, FFWorstMemory: 11.70,
	Spec17MS: 1.108, Spec17MSMem: 1.079,
	Spec17FF: 1.053, Spec17FFMem: 1.222,
	Spec17MarkUs: 1.163, Spec17MarkUsMem: 1.126,
	StressMS: 2.7, StressMSMem: 4.0,
	StressMSWorst: 31, StressMSMemWorst: 27,
	StressMarkUs: 6.7, StressMarkUsMem: 1.7,
	StressMarkUsWorst: 121,
	StressFF:          2.16, StressFFMem: 7.2, StressFFMemWorst: 97,
	ScudoOverhead:      1.044,
	UnoptPlusUnmapTime: 1.095, UnoptPlusUnmapMem: 1.211,
	ConcTime: 1.050, ConcMem: 1.241,
	SweepsOmnetpp: 1075, SweepsXalancbmk: 654,
}

// PaperSpec2006 holds per-benchmark slowdowns and average memory overheads
// for the three reimplemented schemes on SPEC CPU2006. Values stated in the
// paper's text are exact; the rest are approximate readings of Figures 9-10
// (good to ~±0.02).
type PaperBench struct {
	MSTime, MSMem         float64
	MarkUsTime, MarkUsMem float64
	FFTime, FFMem         float64
}

// PaperSpec2006 is keyed by SPEC CPU2006 benchmark name.
var PaperSpec2006 = map[string]PaperBench{
	"astar":      {1.02, 1.05, 1.07, 1.07, 1.01, 1.30},
	"bzip2":      {1.01, 1.01, 1.02, 1.02, 1.00, 1.02},
	"dealII":     {1.04, 1.15, 1.18, 1.15, 1.02, 1.60},
	"gcc":        {1.17, 1.63, 1.35, 1.45, 1.05, 5.60}, // gcc FF mem ~5.6x (fig10)
	"gobmk":      {1.01, 1.02, 1.04, 1.03, 1.00, 1.05},
	"h264ref":    {1.01, 1.01, 1.02, 1.02, 1.00, 1.04},
	"hmmer":      {1.00, 1.01, 1.01, 1.02, 1.00, 1.03},
	"lbm":        {1.00, 1.00, 1.00, 1.01, 1.00, 1.01},
	"libquantum": {1.00, 1.01, 1.01, 1.01, 1.00, 1.02},
	"mcf":        {1.01, 1.02, 1.05, 1.04, 1.00, 1.10},
	"milc":       {1.02, 1.10, 1.08, 1.12, 1.01, 1.45},
	"namd":       {1.00, 1.01, 1.01, 1.01, 1.00, 1.02},
	"omnetpp":    {1.06, 1.20, 1.45, 1.25, 1.03, 10.10}, // FF mem ~10.1x (fig10)
	"perlbench":  {1.10, 1.25, 1.40, 1.30, 1.04, 10.70}, // FF mem ~10.7x (fig10)
	"povray":     {1.01, 1.02, 1.10, 1.03, 1.00, 1.05},
	"sjeng":      {1.00, 1.01, 1.01, 1.01, 1.00, 1.02},
	"soplex":     {1.02, 1.08, 1.06, 1.09, 1.01, 1.40},
	"sphinx3":    {1.05, 1.15, 1.25, 1.18, 1.02, 2.90},
	"xalancbmk":  {1.73, 1.35, 2.97, 1.40, 1.10, 2.50},
}

// PaperLiterature holds the geometric-mean overheads of the schemes the
// paper compares against using their published numbers (Figures 7 and 10).
// Per-benchmark values exist only as chart bars; geomeans are the robust
// comparison points.
var PaperLiterature = []struct {
	Scheme   string
	Slowdown float64
	Memory   float64
	Note     string
}{
	{"Oscar", 1.40, 1.30, "page-permission aliasing; worst cases >4x time"},
	{"DangSan", 1.41, 2.40, "pointer-tracking log; worst cases >7x time, 135x mem"},
	{"pSweeper-1s", 1.27, 1.40, "concurrent pointer nullification, 1s sweeps"},
	{"CRCount", 1.22, 1.18, "reference counting via compiler support"},
	{"MarkUs", 1.155, 1.123, "re-run in the paper; see PaperSpec2006"},
	{"FFMalloc", 1.035, 3.44, "re-run in the paper; see PaperSpec2006"},
	{"MineSweeper", 1.054, 1.111, "the paper's contribution"},
}

// CVEYear is one year of use-after-free vulnerability counts (Figure 1),
// transcribed from the paper's NVD-derived chart.
type CVEYear struct {
	Year       int
	Total      int     // UAF/double-free CVEs reported
	Proportion float64 // share of all reported vulnerabilities
}

// PaperCVETrends approximates Figure 1a (NVD CWE-415/416 by year).
var PaperCVETrends = []CVEYear{
	{2012, 160, 0.030}, {2013, 230, 0.031}, {2014, 250, 0.026},
	{2015, 310, 0.032}, {2016, 340, 0.031}, {2017, 375, 0.024},
	{2018, 390, 0.023}, {2019, 550, 0.031},
}

// PaperCVELinux approximates Figure 1b (Linux-kernel UAF CVEs by year).
var PaperCVELinux = []CVEYear{
	{2016, 12, 0.055}, {2017, 21, 0.046}, {2018, 15, 0.085}, {2019, 26, 0.090},
}
