# Convenience targets for the MineSweeper reproduction. `make help` lists them.

GO ?= go

.PHONY: all help build vet test race race-hot check bench bench-free bench-json bench-gate bench-all telemetry-overhead events-overhead governor-overhead governor-gate pause-gate fleet-gate flightrec-smoke figures examples clean

all: build vet test

help:
	@echo "MineSweeper reproduction targets:"
	@echo "  all        build + vet + test"
	@echo "  check      go vet + race-detector pass over the concurrent hot paths"
	@echo "  test       go test ./..."
	@echo "  race       go test -race ./... (slow; check is the quick gate)"
	@echo "  race-hot   race detector on sweep/shadow/core/mem/jemalloc only"
	@echo "  bench      sweep hot-path benchmarks (bulk scan, markers, page scan)"
	@echo "  bench-free malloc/free hot-path benchmarks (fixed-iteration protocol)"
	@echo "  bench-json bench-free + sweep-release + fleet runs -> BENCH_free.json, BENCH_sweep.json, BENCH_fleet.json"
	@echo "  bench-gate gate: fresh MallocFree64 + SweepRelease medians within BENCH_GATE_RATIO of their BENCH_*.json"
	@echo "  bench-all  every benchmark in the repository"
	@echo "  telemetry-overhead  gate: telemetry-on malloc/free within 3% of telemetry-off"
	@echo "  events-overhead     gate: flight-recorder-attached malloc/free within 3% of detached"
	@echo "  flightrec-smoke     gate: a pressure run writes a flight dump msstat can render + convert"
	@echo "  governor-overhead   gate: governed malloc/free within 3% of ungoverned"
	@echo "  governor-gate       gate: governed peak RSS stays within budget+10% on the pressure ramp"
	@echo "  pause-gate          gate: p99.9 STW pause on pressure-mt under MS_PAUSE_BOUND_NS (default 2^19 ns)"
	@echo "  fleet-gate          gate: 256-tenant fleet under 75% budget holds peak RSS <= budget+10%, floors honoured"
	@echo "  figures    regenerate the paper figures (cmd/msbench)"
	@echo "  examples   run the example programs"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-detector pass over the concurrent hot-path packages (sweeper workers,
# shadow markers, page scanning, the core sweep loop) — much faster than a
# full `make race` and the first thing to run after touching the sweep path.
race-hot:
	$(GO) test -race ./internal/sweep ./internal/shadow ./internal/core ./internal/quarantine ./internal/mem ./internal/jemalloc ./internal/telemetry ./internal/events ./internal/control ./internal/workload ./internal/fleet

# The pre-merge gate: static checks, a fast config-validation pass (fails
# immediately on inconsistent knob combinations like ZeroDeferred with
# zeroing disabled), the hot-path race pass, the events-overhead gate
# (the flight recorder is always-attachable, so its hot-path cost is a
# merge-blocking property like the race freedom of the paths it instruments),
# then the fleet gate (the federated governor's budget bound is likewise a
# merge-blocking property of the two-level control plane).
check: vet
	$(GO) test -run '^TestValidate' -count=1 .
	$(MAKE) race-hot
	$(MAKE) events-overhead
	$(MAKE) fleet-gate

# One-command perf baseline for the sweep hot path: the bulk-scan vs per-word
# sweep comparison plus the shadow-marker and page-scan micro-benchmarks.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSweepMarkAll|BenchmarkShadowMarker|BenchmarkScanPage' -benchmem -count=1 ./internal/sweep ./internal/shadow ./internal/mem

# Malloc/free hot-path benchmarks: the end-to-end MallocFree comparison
# (single-threaded and 4-way parallel, baseline vs MineSweeper) plus the
# lock-free page-map micro-benchmarks behind the free() fast path. The fixed
# iteration count matches the protocol recorded in EXPERIMENTS.md ("Free
# fast-path optimisation"): adaptive benchtime would run long enough to
# change quarantine pressure between variants.
bench-free:
	$(GO) test -run '^$$' -bench 'BenchmarkMallocFree64' -benchtime=300000x -benchmem -count=3 .
	$(GO) test -run '^$$' -bench 'BenchmarkRtree' -benchmem -count=3 ./internal/jemalloc

# Machine-readable benchmark snapshots: the malloc/free comparison and the
# post-sweep release path, 5 runs each, medians computed by cmd/benchjson.
# These are the files EXPERIMENTS.md medians are transcribed from.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkMallocFree64' -benchtime=300000x -count=5 . \
		| $(GO) run ./cmd/benchjson > BENCH_free.json
	$(GO) test -run '^$$' -bench 'BenchmarkSweepRelease' -count=5 ./internal/core \
		| $(GO) run ./cmd/benchjson > BENCH_sweep.json
	$(GO) test -run '^$$' -bench 'BenchmarkFleet64Tenants' -benchtime=50x -count=5 ./internal/fleet \
		| $(GO) run ./cmd/benchjson > BENCH_fleet.json

# Benchmark regression gate: re-run the malloc/free comparison at the recorded
# protocol and fail if any benchmark's fresh median exceeds its committed
# BENCH_free.json median by more than BENCH_GATE_RATIO. The default envelope
# is wide (1.5x) because the committed medians are window-scoped: on this
# shared-tenancy 1-CPU host, identical binaries drift ±25-30% between
# windows (EXPERIMENTS.md "Per-thread quarantine rings" records the
# measurement), so a 1.10 gate would flag weather, not regressions. On a
# quiet dedicated host tighten it: make bench-gate BENCH_GATE_RATIO=1.10.
BENCH_GATE_RATIO ?= 1.5
bench-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkMallocFree64' -benchtime=300000x -count=5 . \
		| $(GO) run ./cmd/benchjson -baseline BENCH_free.json -match MallocFree64 -max-ratio $(BENCH_GATE_RATIO)
	$(GO) test -run '^$$' -bench 'BenchmarkSweepRelease' -count=5 ./internal/core \
		| $(GO) run ./cmd/benchjson -baseline BENCH_sweep.json -match SweepRelease -max-ratio $(BENCH_GATE_RATIO)
	$(GO) test -run '^$$' -bench 'BenchmarkFleet64Tenants' -benchtime=50x -count=5 ./internal/fleet \
		| $(GO) run ./cmd/benchjson -baseline BENCH_fleet.json -match Fleet64Tenants -max-ratio $(BENCH_GATE_RATIO)

# Telemetry-overhead gate: interleaved fixed-iteration rounds of the 64-byte
# malloc/free pair with and without the telemetry registry attached; fails if
# attaching costs more than 3% on the minimum round. The two configurations
# differ only by Config.Telemetry, so the ratio isolates the per-op sampling
# decision. See telemetry_overhead_test.go for why the rounds interleave
# rather than comparing two separate -bench entries.
telemetry-overhead:
	MS_TELEMETRY_GATE=1 $(GO) test -run '^TestTelemetryOverheadGate$$' -count=1 -v .

# Events-overhead gate: same interleaved protocol, asking what the flight
# recorder adds on top of an already-telemetered process (its sampled
# alloc/free events ride telemetry's 1-in-N countdown; the unsampled fast
# path only gains an atomic pointer load and branch on amortised checks).
events-overhead:
	MS_EVENTS_GATE=1 $(GO) test -run '^TestEventsOverheadGate$$' -count=1 -v .

# Governor-overhead gate: the governed malloc/free pair (budget far above any
# pressure, so the plane is attached but idle) must stay within 3% of the
# ungoverned run. Same interleaved-chunk protocol as telemetry-overhead —
# knobs are read at sweep boundaries and the amortised trigger check only,
# so this measures that the hot path stayed untouched.
governor-overhead:
	MS_GOVERNOR_OVERHEAD_GATE=1 $(GO) test -run '^TestGovernorOverheadGate$$' -count=1 -v .

# Governor budget gate: measure the pressure ramp's unbounded peak RSS, hand
# the AIMD governor 75% of it, and require the governed peak to stay within
# 10% of the budget. The acceptance experiment for the control plane.
governor-gate:
	MS_GOVERNOR_GATE=1 $(GO) test -run '^TestGovernorBudgetBound$$' -count=1 -v ./internal/workload

# Pause-tail gate: run the multi-threaded pressure ramp under the pipelined
# mostly-concurrent sweep with a real stop-the-world and require the p99.9
# pause from the exact stw histogram to stay under MS_PAUSE_BOUND_NS. The
# default bound, 2^19 ns, is a histogram bucket boundary (buckets are powers
# of two and a quantile reports its bucket's upper edge), so a pass proves
# the p99.9 pause is under 0.53 ms. The acceptance experiment for the
# pipelined sweep.
MS_PAUSE_BOUND_NS ?= 524288
pause-gate:
	MS_PAUSE_GATE=1 MS_PAUSE_BOUND_NS=$(MS_PAUSE_BOUND_NS) $(GO) test -run '^TestPauseTailBound$$' -count=1 -v ./internal/workload

# Fleet acceptance gate: run a 256-tenant fleet twice — unbounded to
# calibrate its natural peak footprint, then under 75% of that peak — and
# require the governed host peak RSS to stay within budget+10% while every
# tenant keeps its guaranteed floor and no priority-0 tenant's p99.9 pause
# leaves the pause-gate envelope (2^19 ns). The acceptance experiment for
# the federated (host + tenant) governor.
fleet-gate:
	MS_FLEET_GATE=1 $(GO) test -run '^TestFleetGate$$' -count=1 -v -timeout 600s ./internal/fleet

# Flight-recorder smoke: run the pressure ramp under a budget tight enough to
# drive the governor critical, require an anomaly-triggered dump (not the
# end-of-run fallback capture), then require msstat to parse the dump,
# validate its span nesting, render the timeline, and convert it to a Chrome
# trace that json.tool accepts. The end-to-end acceptance for the events
# pipeline: emit -> trip -> MSEV encode -> decode -> export.
FLIGHTREC_TMP ?= /tmp/ms-flightrec-smoke
flightrec-smoke:
	$(GO) run ./cmd/msrun -bench pressure -scheme minesweeper -scale 8 -budget 8M \
		-events-dump $(FLIGHTREC_TMP).msev | tee $(FLIGHTREC_TMP).out
	grep -Eq 'events: [1-9][0-9]* anomaly' $(FLIGHTREC_TMP).out
	$(GO) run ./cmd/msstat -events $(FLIGHTREC_TMP).msev -chrome $(FLIGHTREC_TMP)-trace.json \
		> $(FLIGHTREC_TMP)-timeline.txt
	grep -q 'flight dump: cause=' $(FLIGHTREC_TMP)-timeline.txt
	python3 -m json.tool $(FLIGHTREC_TMP)-trace.json > /dev/null
	@echo "flightrec-smoke: OK ($$(wc -c < $(FLIGHTREC_TMP).msev) byte dump, timeline + chrome trace render)"

# One testing.B target per paper figure plus the API micro-benchmarks.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure at full scale (the artifact's do_all.sh analogue).
figures:
	$(GO) run ./cmd/msbench -fig all -reps 3 -out experiments_raw.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/uafexploit
	$(GO) run ./examples/webcache
	$(GO) run ./examples/tracereplay
	$(GO) run ./examples/fdpoison
	$(GO) run ./examples/telemetry
	$(GO) run ./examples/governor
	$(GO) run ./examples/flightrec
	$(GO) run ./examples/fleet

clean:
	$(GO) clean ./...
