package mem

import (
	"runtime"
	"sync/atomic"
)

// Per-page state bits, packed into an atomic uint32 per page.
const (
	pageResident uint32 = 1 << 0 // physical backing is committed
	pageRead     uint32 = 1 << 1 // loads permitted
	pageWrite    uint32 = 1 << 2 // stores permitted
	pageDirty    uint32 = 1 << 3 // soft-dirty: written since last ClearSoftDirty
	pageBusy     uint32 = 1 << 4 // page lock: bulk zeroing or scanning in progress
	// pageKnownZero records that every word of the page was zero the last
	// time a bulk zeroing completed and no store has completed since: the
	// page is zero by construction. Set by full-page zeroRange, fresh
	// committed mappings and backing drops; cleared by the same post-store
	// CAS that sets the dirty bit, so dirty and known-zero are never set
	// together. The sweeper skips known-zero pages without reading a word,
	// and zeroRange skips re-zeroing them.
	pageKnownZero uint32 = 1 << 5
)

func protBits(p Prot) uint32 {
	var b uint32
	if p&ProtRead != 0 {
		b |= pageRead
	}
	if p&ProtWrite != 0 {
		b |= pageWrite
	}
	return b
}

// Region is a contiguous mapping in the simulated address space, the analogue
// of one mmap'd range. Allocators map one region per extent or pool; mutator
// stacks and the globals segment are regions too.
//
// Word data is stored in a []uint64 and accessed atomically, so a concurrent
// sweeper reading every word of the region is race-free with respect to
// mutator stores — the simulated counterpart of the paper's concurrent sweep
// of live process memory.
type Region struct {
	space *AddressSpace
	base  uint64
	size  uint64 // bytes; always page-aligned
	kind  Kind

	// words is the physical backing (len == size/WordSize). It is dropped
	// when every page of the region is decommitted — the simulated
	// equivalent of the OS actually releasing physical frames — so that
	// unmapped quarantined extents and purged dirty extents cost no host
	// memory, just as they cost no physical memory in the real system.
	// Accessors load the pointer once; a stale slice held across a
	// concurrent drop reads the old (zeroed) frames, like a TLB straggler.
	words    atomic.Pointer[[]uint64]
	resident atomic.Int32    // number of resident pages
	pages    []atomic.Uint32 // per-page state bits

	// dirtySum is a conservative one-bit-per-page summary of the soft-dirty
	// state (bit i%64 of word i/64 covers page i). store() sets a page's
	// summary bit right after its dirty bit, so a set dirty bit always has a
	// set summary bit once the writer's operation completes; the reverse does
	// not hold — bulk state rewrites (commit, decommit, protect) and
	// TestClearPageDirty leave stale summary bits behind, which readers
	// tolerate by re-checking the per-page bit. The summary is what lets the
	// pipelined sweep's dirty passes and page counts run in O(pages/64) +
	// O(dirty) instead of walking every page's state word — the stop-the-world
	// re-scan must scale with the mutators' write rate, not heap size.
	dirtySum []atomic.Uint64

	// zeroSum is a one-bit-per-page hint mirroring dirtySum's geometry for
	// the known-zero state (bit i%64 of word i/64 covers page i). Unlike
	// dirtySum it is a pure hint in BOTH directions: a set bit means the
	// page MAY be known-zero (re-check PageKnownZero, the truth), a clear
	// bit means a skip is probably not available — scanning a page whose
	// stale-clear hint hid its known-zero bit is merely slower, never
	// wrong. Zeroers set the page bit before the summary bit; the store()
	// CAS winner that clears a page's known-zero bit clears its summary
	// bit after, so hints track the truth closely without any ordering
	// obligation on readers. The summary is what lets the sweeper probe 64
	// pages' zero-skip eligibility with one load before touching any page
	// state word.
	zeroSum []atomic.Uint64

	// dirtyListed records that the region is on the space's dirtied-region
	// list for the current soft-dirty window, so the first store to dirty a
	// region lists it exactly once. Cleared (before the summary and page
	// bits) by clearSoftDirty when the window closes.
	dirtyListed atomic.Bool

	// Aliases: an alias region exposes a window of another region's
	// physical backing under its own virtual addresses and protections —
	// the mremap-style virtual aliasing Oscar builds on (paper §6.3).
	// Aliases contribute no RSS of their own; the parent's frames are the
	// physical memory.
	parent    *Region
	parentOff uint64 // byte offset of the alias window within parent
}

// IsAlias reports whether the region is a virtual alias of another region's
// physical memory.
func (r *Region) IsAlias() bool { return r.parent != nil }

// Parent returns the aliased region (nil for ordinary regions).
func (r *Region) Parent() *Region { return r.parent }

// Base returns the region's first virtual address.
func (r *Region) Base() uint64 { return r.base }

// Size returns the region's length in bytes.
func (r *Region) Size() uint64 { return r.size }

// End returns one past the region's last byte.
func (r *Region) End() uint64 { return r.base + r.size }

// Kind returns what the region is used for.
func (r *Region) Kind() Kind { return r.kind }

// PageCount returns the number of pages in the region.
func (r *Region) PageCount() int { return len(r.pages) }

// Contains reports whether addr lies inside the region.
func (r *Region) Contains(addr uint64) bool { return addr >= r.base && addr < r.base+r.size }

// pageIndexOf returns the index of the page containing addr, which must lie
// within the region.
func (r *Region) pageIndexOf(addr uint64) int { return int((addr - r.base) >> PageShift) }

// PageIndex returns the index of the page containing addr, which must lie
// within the region.
func (r *Region) PageIndex(addr uint64) int { return r.pageIndexOf(addr) }

// PageResident reports whether page i has committed physical backing.
func (r *Region) PageResident(i int) bool { return r.pages[i].Load()&pageResident != 0 }

// PageReadable reports whether page i is resident and permits loads. This is
// the sweeper's filter: only readable resident pages are swept.
func (r *Region) PageReadable(i int) bool {
	s := r.pages[i].Load()
	return s&(pageResident|pageRead) == pageResident|pageRead
}

// PageDirty reports whether page i has been written since the last
// ClearSoftDirty, the analogue of the Linux soft-dirty PTE bit the paper uses
// for its mostly-concurrent mode.
func (r *Region) PageDirty(i int) bool { return r.pages[i].Load()&pageDirty != 0 }

// PageAddr returns the virtual address of page i.
func (r *Region) PageAddr(i int) uint64 { return r.base + uint64(i)<<PageShift }

// WordCount returns the number of 64-bit words in the region.
func (r *Region) WordCount() int { return int(r.size / WordSize) }

// wordSlice returns the current backing, or nil when fully decommitted.
// Aliases resolve through their parent's backing.
func (r *Region) wordSlice() []uint64 {
	if r.parent != nil {
		w := r.parent.wordSlice()
		if w == nil {
			return nil
		}
		off := r.parentOff / WordSize
		return w[off : off+r.size/WordSize]
	}
	p := r.words.Load()
	if p == nil {
		return nil
	}
	return *p
}

// ensureBacking installs zeroed backing if none is present, returning the
// current backing. Aliases never own backing; they borrow the parent's.
func (r *Region) ensureBacking() []uint64 {
	if r.parent != nil {
		return r.wordSlice()
	}
	if w := r.wordSlice(); w != nil {
		return w
	}
	fresh := r.space.getBacking(int(r.size / WordSize))
	if r.words.CompareAndSwap(nil, &fresh) {
		return fresh
	}
	r.space.putBacking(fresh)
	return r.wordSlice()
}

// WordAt atomically loads word index i without access checks. It is the
// sweeper's read primitive; callers must have checked PageReadable for the
// containing page.
func (r *Region) WordAt(i int) uint64 {
	w := r.wordSlice()
	if w == nil {
		return 0
	}
	return atomic.LoadUint64(&w[i])
}

// Load64 performs a checked, atomic load of the word at addr, which must lie
// within the region. It is the fast path for callers (mutator threads) that
// cache the region of their last access.
func (r *Region) Load64(addr uint64) (uint64, error) {
	v, err := r.load(addr)
	if err != nil {
		r.space.faults.Add(1)
	}
	return v, err
}

// Store64 performs a checked, atomic store at addr, which must lie within
// the region; the region-cache counterpart of AddressSpace.Store64.
func (r *Region) Store64(addr, v uint64) error {
	err := r.store(addr, v)
	if err != nil {
		r.space.faults.Add(1)
	}
	return err
}

// load atomically loads the word at addr after checking protections.
func (r *Region) load(addr uint64) (uint64, error) {
	if !WordAligned(addr) {
		return 0, &Fault{Addr: addr, Cause: CauseMisaligned}
	}
	s := r.pages[r.pageIndexOf(addr)].Load()
	if s&pageResident == 0 {
		return 0, &Fault{Addr: addr, Cause: CauseNotResident}
	}
	if s&pageRead == 0 {
		return 0, &Fault{Addr: addr, Cause: CauseProtection}
	}
	w := r.wordSlice()
	if w == nil {
		return 0, &Fault{Addr: addr, Cause: CauseNotResident}
	}
	return atomic.LoadUint64(&w[(addr-r.base)>>3]), nil
}

// store atomically stores v at addr after checking protections, setting the
// page's soft-dirty bit.
//
// Ordering contract (the concurrent sweeper depends on it): the dirty bit is
// set AFTER the word store. A sweeper that clears the bit (clearSoftDirty,
// TestClearPageDirty) and then scans the page is guaranteed to observe every
// store whose dirty-set it consumed: for a store to be missed, the writer's
// Or(dirty) would have to precede the sweeper's clear while the word store
// followed the sweeper's scan — impossible, since the store precedes the Or
// in the writer's program order (both are sequentially consistent atomics).
// Setting the bit first (as this code originally did) loses exactly that
// interleaving: Or < Clear < Scan < Store leaves the page clean with an
// unscanned word. TestDirtySetVsClearOrdering holds this contract under
// -race.
//
// The dirty check must use the page state as of AFTER the word store, not the
// protection-check load from before it: a cleaner may consume the dirty bit
// between that stale load and the store, and skipping the set on stale
// evidence would leave this store both unflagged and unscanned. Re-loading
// closes the window: either the fresh load still sees the bit set — then the
// next consumer's clear-then-scan happens after this store and observes it —
// or it sees the bit clear and this writer re-flags the page (and its summary
// word) itself.
func (r *Region) store(addr, v uint64) error {
	if !WordAligned(addr) {
		return &Fault{Addr: addr, Write: true, Cause: CauseMisaligned}
	}
	pi := r.pageIndexOf(addr)
	s := r.pages[pi].Load()
	if s&pageResident == 0 {
		return &Fault{Addr: addr, Write: true, Cause: CauseNotResident}
	}
	if s&pageWrite == 0 {
		return &Fault{Addr: addr, Write: true, Cause: CauseProtection}
	}
	w := r.wordSlice()
	if w == nil {
		return &Fault{Addr: addr, Write: true, Cause: CauseNotResident}
	}
	atomic.StoreUint64(&w[(addr-r.base)>>3], v)
	for {
		old := r.pages[pi].Load()
		if old&(pageDirty|pageKnownZero) == pageDirty {
			// Already flagged and not known-zero: whoever clears the dirty
			// bit scans the page after the clear, and the clear comes after
			// this load, which comes after our word store — so the scan
			// observes it.
			break
		}
		if r.pages[pi].CompareAndSwap(old, (old|pageDirty)&^pageKnownZero) {
			// Exactly one writer wins the clean→dirty transition (CAS, not
			// Or), keeping the space's dirty-page count exact. The summary
			// bit and the region listing follow the page bit, so a consumer
			// that took them sees the page bit set (or the page was already
			// consumed by an earlier pass that scanned our store).
			//
			// The same CAS retires the page's known-zero bit: it happens
			// after the word store, so a sweeper that observed the bit set
			// and skipped the page behaved exactly as if it had scanned the
			// page just before this store landed — and the dirty bit set
			// here hands the page to the stop-the-world re-scan, which
			// never consults the known-zero map.
			if old&pageDirty == 0 {
				r.space.dirtyPages.Add(1)
				r.dirtySum[pi>>6].Or(1 << uint(pi&63))
				if !r.dirtyListed.Load() && r.dirtyListed.CompareAndSwap(false, true) {
					r.space.addDirtyRegion(r)
				}
			}
			if old&pageKnownZero != 0 {
				r.zeroSum[pi>>6].And(^(uint64(1) << uint(pi&63)))
			}
			break
		}
	}
	if r.parent != nil {
		// An alias store lands in the parent's physical frames: the
		// parent's known-zero claim for that page no longer holds. The
		// alias's own page bits never carry known-zero, so only the parent
		// needs invalidating.
		r.parent.clearKnownZeroPage(int((r.parentOff + (addr - r.base)) >> PageShift))
	}
	return nil
}

// clearKnownZeroPage retires page i's known-zero bit (and its summary hint)
// if set. The CAS keeps the dirty-transition accounting untouched.
func (r *Region) clearKnownZeroPage(i int) {
	for {
		old := r.pages[i].Load()
		if old&pageKnownZero == 0 {
			return
		}
		if r.pages[i].CompareAndSwap(old, old&^pageKnownZero) {
			r.zeroSum[i>>6].And(^(uint64(1) << uint(i&63)))
			return
		}
	}
}

// markKnownZero publishes page i as known-zero after a completed full-page
// zeroing. It must only be attempted from a state with the dirty bit clear:
// a concurrent writer's post-store CAS sets dirty and clears known-zero
// together, so refusing to set the bit over a dirty state (and letting a
// racing dirty-set simply abandon the attempt) guarantees a page is never
// simultaneously known-zero and holding an unscanned store. See zeroRange
// for the full ordering argument.
func (r *Region) markKnownZero(i int) {
	for {
		old := r.pages[i].Load()
		if old&(pageDirty|pageKnownZero) != 0 {
			return
		}
		if r.pages[i].CompareAndSwap(old, old|pageKnownZero) {
			r.zeroSum[i>>6].Or(1 << uint(i&63))
			return
		}
	}
}

// LockPage acquires page i's busy bit. It orders bulk plain-memory
// operations (zeroing) against bulk readers (sweeps, marking): both sides
// hold the lock for their page-granular critical section, so zeroing can run
// at memset speed with plain stores while remaining race-free with scanners.
// Mutator word accesses stay lock-free: they are per-word atomic, which is
// race-free against the scanners' atomic reads, and a correct program never
// touches memory that is being zeroed (it was freed).
func (r *Region) LockPage(i int) {
	spins := 0
	for {
		old := r.pages[i].Load()
		if old&pageBusy == 0 && r.pages[i].CompareAndSwap(old, old|pageBusy) {
			return
		}
		spins++
		if spins%64 == 0 {
			runtime.Gosched()
		}
	}
}

// UnlockPage releases page i's busy bit.
func (r *Region) UnlockPage(i int) {
	for {
		old := r.pages[i].Load()
		if r.pages[i].CompareAndSwap(old, old&^pageBusy) {
			return
		}
	}
}

// zeroRange zeroes [addr, addr+n) without protection checks. It is used by
// the allocator layers (zero-on-free, commit/decommit fill) which operate on
// memory they own regardless of current protections. addr and n must be
// word-aligned. Each page segment is cleared with plain stores under the
// page lock (see LockPage) — the simulated memset.
//
// The known-zero map is both consumed and produced here. A segment on a
// known-zero page is skipped outright: the bit certifies every completed
// store preceding this call was itself overwritten by a later full-page
// zeroing, so the words are already zero (an in-flight racing store would
// have to target memory being zeroed — freed memory — which the LockPage
// contract already excludes). A segment covering its whole page publishes
// the bit on completion, in three ordered steps under the page lock: consume
// the dirty bit first (with exact transition accounting — zeroing the page
// discharges the scan obligation the bit carried, since any store it
// flagged is wiped by the clear below and a re-scan would only read zeros),
// then clear the words, then set known-zero ONLY from a still-clean state.
// A writer racing the last step either lands its dirty CAS first — the set
// is abandoned and the page stays a normal dirty page — or lands it after,
// clearing the bit again; no interleaving leaves known-zero set over an
// unscanned store. Partial-page segments publish nothing: the rest of the
// page is not proven zero.
func (r *Region) zeroRange(addr, n uint64) {
	for n > 0 {
		pi := r.pageIndexOf(addr)
		segEnd := r.PageAddr(pi) + PageSize
		if segEnd > addr+n {
			segEnd = addr + n
		}
		if r.pages[pi].Load()&pageKnownZero != 0 {
			r.space.zeroElided.Add(segEnd - addr)
			n -= segEnd - addr
			addr = segEnd
			continue
		}
		ws := (addr - r.base) >> 3
		we := (segEnd - r.base) >> 3
		full := addr == r.PageAddr(pi) && segEnd == r.PageAddr(pi)+PageSize
		r.LockPage(pi)
		if full {
			for {
				old := r.pages[pi].Load()
				if old&pageDirty == 0 {
					break
				}
				if r.pages[pi].CompareAndSwap(old, old&^pageDirty) {
					r.space.dirtyPages.Add(-1)
					break
				}
			}
		}
		if w := r.wordSlice(); w != nil {
			clear(w[ws:we])
		}
		if full && r.parent == nil {
			r.markKnownZero(pi)
		}
		r.UnlockPage(pi)
		n -= segEnd - addr
		addr = segEnd
	}
}

// ScanPageWords invokes fn with page p's backing words while holding the
// page lock, returning whether the page was readable. It is the sweeper's
// bulk-read primitive: one lock acquisition and one backing lookup cover the
// whole page, so the inner loop iterates a plain []uint64 instead of paying
// WordAt's pointer chase per word. fn must load words with
// sync/atomic.LoadUint64 (mutator stores are per-word atomic and do not take
// the page lock) and must not retain the slice past its return. If the
// backing was dropped by a concurrent decommit, fn receives an empty slice —
// the page reads as all zeros, exactly as WordAt would report it.
func (r *Region) ScanPageWords(p int, fn func(words []uint64)) bool {
	if !r.PageReadable(p) {
		return false
	}
	r.LockPage(p)
	var ws []uint64
	if w := r.wordSlice(); w != nil {
		ws = w[p*WordsPerPage : (p+1)*WordsPerPage]
	}
	fn(ws)
	r.UnlockPage(p)
	return true
}

// ScanRange calls fn for every word of [addr, addr+n) that lies on a
// readable resident page, taking the page lock per page segment. It is the
// safe bulk-read primitive for markers that walk object contents (MarkUs).
func (r *Region) ScanRange(addr, n uint64, fn func(v uint64)) {
	for n > 0 {
		pi := r.pageIndexOf(addr)
		segEnd := r.PageAddr(pi) + PageSize
		if segEnd > addr+n {
			segEnd = addr + n
		}
		if r.PageReadable(pi) {
			ws := (addr - r.base) >> 3
			we := (segEnd - r.base) >> 3
			r.LockPage(pi)
			if w := r.wordSlice(); w != nil {
				for i := ws; i < we; i++ {
					fn(atomic.LoadUint64(&w[i]))
				}
			}
			r.UnlockPage(pi)
		}
		n -= segEnd - addr
		addr = segEnd
	}
}

// commit marks pages [addr, addr+n) resident with protection prot, zeroing
// their contents (fresh pages from the OS are zero-filled). Returns the
// number of pages that transitioned from non-resident to resident.
//
// The known-zero bit survives the state rewrite: a page that was known-zero
// while non-resident (its words untouched since nothing writes non-resident
// pages, or its backing dropped and replaced by a zeroed one) is still zero
// after commit, so the zero-fill for newly resident known-zero pages is
// elided — this is where the purge path stops paying to re-zero memory the
// decommit already discarded.
func (r *Region) commit(addr, n uint64, prot Prot) int {
	r.ensureBacking()
	first := r.pageIndexOf(addr)
	last := r.pageIndexOf(addr + n - 1)
	newly := 0
	var wipedDirty int64
	bits := pageResident | protBits(prot)
	for i := first; i <= last; i++ {
		var old uint32
		for {
			old = r.pages[i].Load()
			if r.pages[i].CompareAndSwap(old, old&(pageBusy|pageKnownZero)|bits) {
				break
			}
		}
		if old&pageDirty != 0 {
			wipedDirty++
		}
		if old&pageResident == 0 {
			newly++
			if r.parent == nil {
				if old&pageKnownZero != 0 {
					r.space.zeroElided.Add(PageSize)
				} else {
					r.zeroRange(r.PageAddr(i), PageSize)
				}
			}
		}
	}
	if wipedDirty != 0 {
		r.space.dirtyPages.Add(-wipedDirty)
	}
	r.resident.Add(int32(newly))
	return newly
}

// decommit releases the physical backing of pages [addr, addr+n). Contents
// are not touched — like madvise(DONTNEED), the frames simply cease to exist;
// commit zero-fills on re-residency, so a decommitted-then-recommitted page
// still reads as zero. When the whole region goes non-resident its backing is
// dropped to the pool. Returns the number of pages that were resident.
// The known-zero bit is preserved across decommit: nothing writes a
// non-resident page, so words that were zero stay zero in the (retained)
// backing, and commit's re-zero elision depends on the bit surviving. When
// the whole region's backing is dropped, every page becomes known-zero —
// the next ensureBacking installs zeroed frames — which is what makes an
// unmap/remap or full purge/recommit cycle cost no zeroing at all.
func (r *Region) decommit(addr, n uint64) int {
	first := r.pageIndexOf(addr)
	last := r.pageIndexOf(addr + n - 1)
	released := 0
	var wipedDirty int64
	for i := first; i <= last; i++ {
		var old uint32
		for {
			old = r.pages[i].Load()
			if r.pages[i].CompareAndSwap(old, old&(pageBusy|pageKnownZero)) {
				break
			}
		}
		if old&pageDirty != 0 {
			wipedDirty++
		}
		if old&pageResident != 0 {
			released++
		}
	}
	if wipedDirty != 0 {
		r.space.dirtyPages.Add(-wipedDirty)
	}
	if released > 0 && r.resident.Add(int32(-released)) == 0 && r.parent == nil {
		if old := r.words.Swap(nil); old != nil {
			r.space.putBacking(*old)
			r.setAllKnownZero()
		}
	}
	return released
}

// setAllKnownZero publishes every page as known-zero after the region's
// backing is dropped: the stale frames are gone and the replacement arrives
// zeroed from the pool. The region is fully non-resident here (that is the
// drop condition) and owner-serialised against recommit, so no store or
// zeroing can race the publication; the loop still refuses to cover a dirty
// page, preserving the never-dirty-and-known-zero invariant.
func (r *Region) setAllKnownZero() {
	for i := range r.pages {
		r.markKnownZero(i)
	}
}

// protect changes the protection of pages [addr, addr+n) without touching
// residency or contents.
func (r *Region) protect(addr, n uint64, prot Prot) {
	first := r.pageIndexOf(addr)
	last := r.pageIndexOf(addr + n - 1)
	bits := protBits(prot)
	for i := first; i <= last; i++ {
		for {
			old := r.pages[i].Load()
			nw := old&^(pageRead|pageWrite) | bits
			if r.pages[i].CompareAndSwap(old, nw) {
				break
			}
		}
	}
}

// clearSoftDirty clears every page's soft-dirty bit and the summary bitmap.
//
// Interleaving with concurrent writers: store() sets the dirty bit after its
// word store (see the contract on store), so a writer racing this clear either
// loses its dirty bit — in which case its word store already happened and the
// caller's subsequent scan of the page observes it — or re-dirties the page
// after the clear, and the next dirty pass picks it up. Either way no store
// is both unscanned and unflagged.
//
// The summary words are zeroed BEFORE the per-page bits. A writer sets the
// page bit first and the summary bit second, so a page bit that survives (or
// is set after) our per-page clears was set after the summary wipe — and the
// writer's later summary Or necessarily lands after it too, keeping the
// invariant that a dirty page's summary bit is set once its writer completes.
// Clearing in the opposite order loses exactly the interleaving where the
// writer's page-set lands after our page clear but its summary Or before our
// summary wipe, leaving a dirty page invisible to the summary readers.
//
// Note the page-state rewrites in commit and decommit also wipe the dirty bit
// (and decrement the space's dirty-page count). That is correct for the
// sweeper's purposes: commit zero-fills (nothing to scan) and decommit drops
// the page (reads as zero). The summary bit those wipes strand is harmless:
// summary readers re-check the per-page bit.
//
// The listed flag is cleared before anything else: a writer checks it AFTER
// setting its page and summary bits, so a writer that skips re-listing on a
// still-set flag dirtied its page before our per-page clears below — its
// store is covered by the caller's full scan — while one that sees the flag
// already cleared re-lists the region for the new window.
func (r *Region) clearSoftDirty() {
	r.dirtyListed.Store(false)
	for i := range r.dirtySum {
		r.dirtySum[i].Store(0)
	}
	var cleared int64
	for i := range r.pages {
		for {
			old := r.pages[i].Load()
			if old&pageDirty == 0 {
				break
			}
			if r.pages[i].CompareAndSwap(old, old&^pageDirty) {
				cleared++
				break
			}
		}
	}
	if cleared != 0 {
		r.space.dirtyPages.Add(-cleared)
	}
}

// DirtySummaryWords returns the length of the dirty summary bitmap: one
// uint64 per 64 pages, rounded up.
func (r *Region) DirtySummaryWords() int { return len(r.dirtySum) }

// DirtySummaryWord loads summary word w — a conservative view: a set bit
// means the page MAY be dirty (re-check PageDirty), a clear bit means no
// completed store has dirtied it since the word was last cleared.
func (r *Region) DirtySummaryWord(w int) uint64 { return r.dirtySum[w].Load() }

// TakeDirtySummaryWord atomically takes summary word w, clearing it — the
// word-granular test-and-clear behind the concurrent pre-clean rounds. The
// caller must TestClearPageDirty-and-scan every page whose bit it took:
// writers set the page bit before the summary bit, so a page dirtied
// concurrently either had its bit taken here (and is consumed by the caller's
// per-page test-and-clear) or re-sets the summary word after this take and is
// picked up by the next dirty pass.
func (r *Region) TakeDirtySummaryWord(w int) uint64 { return r.dirtySum[w].Swap(0) }

// TestClearPageDirty atomically clears page i's soft-dirty bit and reports
// whether it was set — the test-and-clear primitive behind the concurrent
// pre-clean rounds of the pipelined sweep. The caller must scan the page
// after a true return; the store() ordering contract then guarantees every
// write whose dirty-set this consumed is observed by that scan.
//
// Implemented as a CAS loop rather than atomic.Uint32.And: the And intrinsic
// is miscompiled on this toolchain (go1.24.0) when its returned old value is
// consumed, corrupting live registers in the inlined caller.
func (r *Region) TestClearPageDirty(i int) bool {
	for {
		old := r.pages[i].Load()
		if old&pageDirty == 0 {
			return false
		}
		if r.pages[i].CompareAndSwap(old, old&^pageDirty) {
			r.space.dirtyPages.Add(-1)
			return true
		}
	}
}

// PageKnownZero reports whether page i is known-zero: every word is zero by
// construction (zeroed, purged, or freshly committed) and no store has
// completed since. A true return licenses a scanner to treat the page as a
// run of zeros without reading it; a store completing concurrently with the
// check retires the bit only after its word lands, so acting on a stale
// true is indistinguishable from having scanned the page just before that
// store (whose dirty bit then routes it to any re-scan pass).
func (r *Region) PageKnownZero(i int) bool {
	return r.pages[i].Load()&pageKnownZero != 0
}

// KnownZeroSummaryWords returns the length of the known-zero summary
// bitmap: one uint64 per 64 pages, rounded up (same geometry as the dirty
// summary).
func (r *Region) KnownZeroSummaryWords() int { return len(r.zeroSum) }

// KnownZeroSummaryWord loads known-zero summary word w. Both polarities are
// hints — a set bit means the page is probably known-zero (confirm with
// PageKnownZero before skipping), a clear bit means probably not (scanning
// anyway is always correct) — so readers carry no ordering obligations.
func (r *Region) KnownZeroSummaryWord(w int) uint64 { return r.zeroSum[w].Load() }
