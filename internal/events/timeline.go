package events

import (
	"fmt"
	"io"
	"sort"
	"time"

	"minesweeper/internal/metrics"
)

// timelineRow is one merged line of the text timeline: an instant, or a
// span with its resolved duration.
type timelineRow struct {
	nanos  uint64
	thread string
	depth  int
	name   string
	dur    int64 // -1 for instants and unclosed spans
	detail string
}

// detailFor renders an event's payload for the timeline's detail column.
func detailFor(e Event) string {
	switch e.Kind {
	case KindSweepBegin:
		return fmt.Sprintf("trigger=%d locked=%d", e.Arg0, e.Arg1)
	case KindSweepEnd, KindRecycleEnd:
		return fmt.Sprintf("released=%d retained=%d", e.Arg0, e.Arg1)
	case KindMarkEnd:
		return fmt.Sprintf("pages=%d %s", e.Arg0, metrics.FmtMiB(e.Arg1))
	case KindPrecleanEnd:
		return fmt.Sprintf("pages=%d round=%d", e.Arg0, e.Arg1)
	case KindStwBegin, KindStwEnd:
		return fmt.Sprintf("dirty-pg=%d", e.Arg0)
	case KindStwAbort:
		return fmt.Sprintf("dirty-pg=%d budget=%d", e.Arg0, e.Arg1)
	case KindPauseBegin:
		return fmt.Sprintf("trigger=%d", e.Arg0)
	case KindPauseEnd:
		return fmt.Sprintf("stall=%s", time.Duration(e.Arg0))
	case KindDrain:
		return fmt.Sprintf("entries=%d took=%s", e.Arg0, time.Duration(e.Arg1))
	case KindZeroScrub:
		return fmt.Sprintf("runs=%d %s", e.Arg0, metrics.FmtMiB(e.Arg1))
	case KindAlloc, KindFree:
		return fmt.Sprintf("size=%d lat=%s", e.Arg0, time.Duration(e.Arg1))
	case KindGovDecision:
		return fmt.Sprintf("level %d -> %d", e.Arg1, e.Arg0)
	case KindTrip:
		return "cause=" + TripCause(e.Arg0).String()
	}
	return ""
}

// WriteTimeline renders the dump as one merged, time-ordered aligned-text
// timeline: span rows carry their duration (resolved from the matching End
// event), nested spans are indented, instants print inline. The msstat
// -events rendering.
func WriteTimeline(w io.Writer, d *Dump) error {
	var rows []timelineRow
	for _, t := range d.Threads {
		type open struct {
			row   int
			kind  Kind
			nanos uint64
		}
		var stack []open
		for _, e := range t.Events {
			switch {
			case spanOpen(e.Kind) != 0:
				rows = append(rows, timelineRow{
					nanos:  e.Nanos,
					thread: t.Name,
					depth:  len(stack),
					name:   spanName(e.Kind),
					dur:    -1,
					detail: detailFor(e),
				})
				stack = append(stack, open{row: len(rows) - 1, kind: e.Kind, nanos: e.Nanos})
			case isEnd(e.Kind):
				if n := len(stack); n > 0 && spanOpen(stack[n-1].kind) == e.Kind {
					r := &rows[stack[n-1].row]
					r.dur = int64(e.Nanos - stack[n-1].nanos)
					if det := detailFor(e); det != "" {
						if r.detail != "" {
							r.detail += " "
						}
						r.detail += det
					}
					stack = stack[:n-1]
				}
				// An End with no Begin in the window is dropped: its span
				// row fell outside the capture.
			default:
				rows = append(rows, timelineRow{
					nanos:  e.Nanos,
					thread: t.Name,
					depth:  len(stack),
					name:   e.Kind.String(),
					dur:    -1,
					detail: detailFor(e),
				})
			}
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].nanos < rows[j].nanos })

	if _, err := fmt.Fprintf(w, "flight dump: cause=%s window=[%s, %s] events=%d rings=%d\n",
		d.Cause,
		time.Duration(d.SinceNanos).Round(time.Microsecond),
		time.Duration(d.TakenNanos).Round(time.Microsecond),
		d.Len(), len(d.Threads)); err != nil {
		return err
	}
	tb := metrics.NewTable("t", "thread", "event", "dur", "detail")
	for _, r := range rows {
		indent := ""
		for i := 0; i < r.depth; i++ {
			indent += "  "
		}
		dur := "-"
		if r.dur >= 0 {
			dur = time.Duration(r.dur).Round(100 * time.Nanosecond).String()
		}
		tb.AddRow(
			fmt.Sprintf("%.3fms", float64(r.nanos)/1e6),
			r.thread,
			indent+r.name,
			dur,
			r.detail,
		)
	}
	_, err := io.WriteString(w, tb.String())
	return err
}
