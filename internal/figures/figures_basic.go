package figures

import (
	"fmt"
	"io"

	"minesweeper/internal/mem"
	"minesweeper/internal/metrics"
	"minesweeper/internal/schemes"
	"minesweeper/internal/sim"
	"minesweeper/internal/uaf"
	"minesweeper/internal/workload"
)

// Fig01CVETrends renders Figure 1: reported use-after-free / double-free
// vulnerabilities by year (transcribed NVD dataset).
func Fig01CVETrends(w io.Writer) error {
	fprintf(w, "Figure 1a: use-after-frees in the National Vulnerability Database\n\n")
	tb := metrics.NewTable("year", "total", "proportion of all CVEs")
	for _, y := range metrics.PaperCVETrends {
		tb.AddRow(fmt.Sprint(y.Year), fmt.Sprint(y.Total), fmt.Sprintf("%.1f%%", y.Proportion*100))
	}
	fprintf(w, "%s\n", tb)
	fprintf(w, "Figure 1b: use-after-free vulnerabilities in the Linux kernel\n\n")
	tb = metrics.NewTable("year", "total", "proportion of all kernel CVEs")
	for _, y := range metrics.PaperCVELinux {
		tb.AddRow(fmt.Sprint(y.Year), fmt.Sprint(y.Total), fmt.Sprintf("%.1f%%", y.Proportion*100))
	}
	fprintf(w, "%s", tb)
	return nil
}

// Fig02Exploit runs the Listing 1 / Figure 2 exploit against every scheme
// and reports the outcome — the security result that motivates everything
// else.
func Fig02Exploit(w io.Writer) error {
	fprintf(w, "Figure 2 / Listing 1: use-after-free exploit attempt per scheme\n\n")
	tb := metrics.NewTable("scheme", "outcome", "spray hits", "vtable read")
	for _, kind := range []schemes.Kind{
		schemes.Baseline, schemes.MineSweeper, schemes.MarkUs, schemes.FFMalloc,
		schemes.Scudo, schemes.Oscar, schemes.DangSan, schemes.PSweeper, schemes.CRCount,
	} {
		res, err := runExploit(kind)
		if err != nil {
			return fmt.Errorf("fig2 %s: %w", kind, err)
		}
		tb.AddRow(kind.String(), res.Outcome.String(), fmt.Sprint(res.SprayHits),
			fmt.Sprintf("%#x", res.ReadVtable))
	}
	fprintf(w, "%s\n", tb)
	fprintf(w, "Expected: EXPLOITED only under the unprotected baseline.\n")
	return nil
}

func runExploit(kind schemes.Kind) (uaf.Result, error) {
	space := mem.NewAddressSpace()
	heap, err := schemes.New(kind).Build(space, nil)
	if err != nil {
		return uaf.Result{}, err
	}
	defer heap.Shutdown()
	prog, err := sim.NewProgram(space, heap, nil)
	if err != nil {
		return uaf.Result{}, err
	}
	victim, err := prog.NewThread(1)
	if err != nil {
		return uaf.Result{}, err
	}
	defer victim.Close()
	return uaf.Run(prog, victim, victim, uaf.DefaultScenario())
}

// Fig08Sphinx3RSS renders Figure 8: memory usage over time for sphinx3 under
// the baseline, FFMalloc and MineSweeper. FFMalloc's trace grows steadily
// (fragmentation); the others stay roughly flat.
func Fig08Sphinx3RSS(w io.Writer, r *Runner) error {
	prof, _ := workload.FindProfile("sphinx3")
	fprintf(w, "Figure 8: memory usage over time for sphinx3 (MiB at normalised time)\n\n")
	const buckets = 20
	series := make(map[string][]float64)
	order := []schemes.Kind{schemes.Baseline, schemes.FFMalloc, schemes.MineSweeper}
	for _, kind := range order {
		res, err := r.result(prof, schemes.New(kind))
		if err != nil {
			return err
		}
		series[kind.String()] = bucketTrace(res.Trace, buckets)
	}
	tb := metrics.NewTable("time", "baseline", "ffmalloc", "minesweeper")
	for b := 0; b < buckets; b++ {
		row := []string{fmt.Sprintf("%3.0f%%", float64(b+1)/buckets*100)}
		for _, kind := range order {
			row = append(row, fmt.Sprintf("%.1f", series[kind.String()][b]))
		}
		tb.AddRow(row...)
	}
	fprintf(w, "%s\n", tb)
	fprintf(w, "Paper shape: FFMalloc grows monotonically; baseline and MineSweeper stay flat.\n")
	return nil
}

// bucketTrace averages a sampled trace into n equal time buckets (MiB).
func bucketTrace(trace []metrics.Sample, n int) []float64 {
	out := make([]float64, n)
	if len(trace) == 0 {
		return out
	}
	end := trace[len(trace)-1].At
	if end == 0 {
		end = 1
	}
	counts := make([]int, n)
	for _, s := range trace {
		b := int(int64(s.At) * int64(n) / int64(end+1))
		if b >= n {
			b = n - 1
		}
		out[b] += float64(s.RSS) / (1 << 20)
		counts[b]++
	}
	last := 0.0
	for i := range out {
		if counts[i] > 0 {
			out[i] /= float64(counts[i])
			last = out[i]
		} else {
			out[i] = last
		}
	}
	return out
}
