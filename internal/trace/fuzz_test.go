package trace

import (
	"bytes"
	"testing"
)

// FuzzRead exercises the trace parser with arbitrary bytes: it must never
// panic, and anything it accepts must re-serialise to an equal trace.
func FuzzRead(f *testing.F) {
	// Seed corpus: a valid trace and a few near-misses.
	valid := &Trace{Threads: 1, Events: []Event{
		{Kind: KindMalloc, ID: 1, Size: 64},
		{Kind: KindFree, ID: 1},
	}}
	var buf bytes.Buffer
	if err := valid.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("MSTR"))
	f.Add([]byte("MSTR\x01\x00\x00\x00\x01\x00\x00\x00M\x00\x01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := tr.Write(&out); err != nil {
			t.Fatalf("accepted trace failed to serialise: %v", err)
		}
		back, err := Read(&out)
		if err != nil {
			t.Fatalf("round trip of accepted trace failed: %v", err)
		}
		if len(back.Events) != len(tr.Events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(tr.Events), len(back.Events))
		}
	})
}
