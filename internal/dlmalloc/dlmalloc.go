// Package dlmalloc implements a GNU-malloc-style allocator with IN-BAND
// metadata: chunk headers live in the heap one word before each allocation,
// and free chunks carry their free-list linkage (fd pointer) in their own
// first word — in simulated memory, where application bugs can reach them.
//
// It exists to make the paper's §2 footnote executable: "In non-secure
// allocators that store metadata in-place (e.g. GNU malloc), [use-after-free
// writes] may corrupt allocator metadata. JeMalloc, which MineSweeper is
// built upon, already stores metadata separately to avoid this." With this
// substrate, a single dangling-pointer write really does corrupt a free
// list and redirect a future malloc to an attacker-chosen address (the
// classic fd-poisoning primitive); under MineSweeper on the same substrate,
// the chunk never reaches a free list while the dangling pointer exists, so
// the primitive dies.
//
// Design (simplified glibc):
//
//   - chunks: [header | payload], header = payloadSize | flagInUse;
//   - segregated free lists per size class; free pushes the chunk with
//     chunk.fd written into payload word 0; malloc pops by READING fd from
//     heap memory (this trust in heap-resident metadata is the point);
//   - wilderness bump allocation from sbrk-style arena regions;
//   - no coalescing (keeps chunks stable; glibc fastbins behave similarly).
//
// A Go-side registry of live allocations supports Lookup/UsableSize for the
// drop-in layers; it mirrors, but is never trusted by, the in-band state —
// exactly how MineSweeper keeps its own out-of-line metadata regardless of
// substrate (§6.6).
package dlmalloc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"minesweeper/internal/alloc"
	"minesweeper/internal/jemalloc"
	"minesweeper/internal/mem"
)

const (
	// headerSize is the in-band chunk header before each payload.
	headerSize = mem.WordSize
	// flagInUse marks an allocated chunk in its header word.
	flagInUse uint64 = 1
	// arenaBytes is the sbrk extension unit.
	arenaBytes = 4 << 20
)

// Heap is the dlmalloc-style allocator.
type Heap struct {
	space *mem.AddressSpace

	mu     sync.Mutex
	region *mem.Region
	brk    uint64   // wilderness bump pointer within region
	bins   []uint64 // head chunk payload address per class, 0 = empty

	// live mirrors in-band state out of line for Lookup (the drop-in
	// layers' bookkeeping; never consulted by malloc/free fast paths).
	liveMu sync.RWMutex
	live   map[uint64]uint64 // payload base -> usable size

	allocated atomic.Int64
	mallocs   atomic.Uint64
	frees     atomic.Uint64
}

var _ alloc.Substrate = (*Heap)(nil)

// New returns a dlmalloc-style heap over space.
func New(space *mem.AddressSpace) *Heap {
	return &Heap{
		space: space,
		bins:  make([]uint64, jemalloc.NumClasses()),
		live:  make(map[uint64]uint64),
	}
}

// String returns the scheme name.
func (h *Heap) String() string { return "dlmalloc" }

// RegisterThread implements alloc.Allocator (single arena, no tcache —
// glibc's classic configuration).
func (h *Heap) RegisterThread() alloc.ThreadID { return 0 }

// UnregisterThread implements alloc.Allocator.
func (h *Heap) UnregisterThread(alloc.ThreadID) {}

// classFor returns the bin class for a payload size.
func classFor(size uint64) (int, uint64) {
	if size == 0 {
		size = 1
	}
	size++ // end-pointer pad, matching the other substrates
	if size > jemalloc.SmallMax {
		// Large chunks round to page-quantised sizes but still live in
		// the same arena with in-band headers.
		return -1, jemalloc.LargeAllocSize(size)
	}
	c := jemalloc.SizeToClass(size)
	return c, jemalloc.ClassSize(c)
}

// Malloc implements alloc.Allocator. The returned payload follows an in-band
// header; reuse pops the class's free list BY READING the fd word from heap
// memory.
func (h *Heap) Malloc(_ alloc.ThreadID, size uint64) (uint64, error) {
	class, csize := classFor(size)

	h.mu.Lock()
	var payload uint64
	if class >= 0 && h.bins[class] != 0 {
		payload = h.bins[class]
		// Trusting heap-resident metadata: the next head is whatever
		// the chunk's fd word says — corrupted or not.
		fd, err := h.space.Load64(payload)
		if err != nil {
			fd = 0 // unreadable fd: treat the list as exhausted
		}
		h.bins[class] = fd
		// Mark in use (in-band).
		_ = h.space.Store64(payload-headerSize, csize|flagInUse)
	} else {
		var err error
		payload, err = h.bump(csize)
		if err != nil {
			h.mu.Unlock()
			return 0, err
		}
	}
	h.mu.Unlock()

	h.liveMu.Lock()
	h.live[payload] = csize
	h.liveMu.Unlock()
	h.allocated.Add(int64(csize))
	h.mallocs.Add(1)
	return payload, nil
}

// bump carves a fresh chunk from the wilderness. Caller holds h.mu.
func (h *Heap) bump(csize uint64) (uint64, error) {
	need := headerSize + csize
	if h.region == nil || h.brk+need > h.region.End() {
		size := uint64(arenaBytes)
		if need > size {
			size = mem.PageCeil(need)
		}
		r, err := h.space.Map(mem.KindHeap, size, true)
		if err != nil {
			return 0, fmt.Errorf("%w: %v", alloc.ErrOutOfMemory, err)
		}
		h.region = r
		h.brk = r.Base()
	}
	payload := h.brk + headerSize
	if err := h.space.Store64(h.brk, csize|flagInUse); err != nil {
		return 0, err
	}
	h.brk += need
	return payload, nil
}

// Free implements alloc.Allocator: validate the in-band header, clear the
// in-use flag, and push the chunk onto its class free list with fd written
// into the (freed) payload.
func (h *Heap) Free(_ alloc.ThreadID, addr uint64) error {
	hdr, err := h.space.Load64(addr - headerSize)
	if err != nil {
		return fmt.Errorf("%w: %#x", alloc.ErrInvalidFree, addr)
	}
	if hdr&flagInUse == 0 {
		return fmt.Errorf("%w: %#x", alloc.ErrDoubleFree, addr)
	}
	csize := hdr &^ flagInUse
	if csize == 0 || csize > 1<<32 {
		return fmt.Errorf("%w: %#x (corrupt header %#x)", alloc.ErrInvalidFree, addr, hdr)
	}
	class := -1
	if csize <= jemalloc.SmallMax {
		class = jemalloc.SizeToClass(csize)
	}

	h.mu.Lock()
	_ = h.space.Store64(addr-headerSize, csize) // clear in-use
	if class >= 0 {
		// fd = old head, written INTO the freed payload.
		_ = h.space.Store64(addr, h.bins[class])
		h.bins[class] = addr
	}
	// Large chunks are leaked back to the wilderness region only when the
	// whole region dies; classic dlmalloc keeps them via coalescing, which
	// we deliberately omit.
	h.mu.Unlock()

	h.liveMu.Lock()
	delete(h.live, addr)
	h.liveMu.Unlock()
	h.allocated.Add(-int64(csize))
	h.frees.Add(1)
	return nil
}

// Lookup implements alloc.Substrate from the out-of-line mirror.
func (h *Heap) Lookup(addr uint64) (alloc.Allocation, bool) {
	h.liveMu.RLock()
	size, ok := h.live[addr]
	h.liveMu.RUnlock()
	if !ok {
		return alloc.Allocation{}, false
	}
	return alloc.Allocation{Base: addr, Size: size}, true
}

// Resolve implements alloc.Substrate. dlmalloc keeps its bookkeeping in-band
// (the chunk header precedes the payload), so there is no out-of-line
// container to hand back as a ref; Free re-reads the header either way.
func (h *Heap) Resolve(addr uint64) (alloc.Allocation, alloc.Ref, bool) {
	a, ok := h.Lookup(addr)
	return a, nil, ok
}

// FreeResolved implements alloc.Substrate by forwarding to Free: with in-band
// metadata the address is the reference.
func (h *Heap) FreeResolved(tid alloc.ThreadID, _ alloc.Ref, addr uint64) error {
	return h.Free(tid, addr)
}

// FreeBatch implements alloc.Substrate per-item: every free re-reads an
// in-band header, so there is no shared structure to amortise across the
// batch.
func (h *Heap) FreeBatch(tid alloc.ThreadID, refs []alloc.Ref, addrs []uint64, errs []error) {
	alloc.FreeBatchSerial(h, tid, refs, addrs, errs)
}

// AllocBatch implements alloc.Substrate per-item: dlmalloc's boundary-tag
// carving has no run-refill structure to amortise, so the serial fallback is
// the whole implementation.
func (h *Heap) AllocBatch(tid alloc.ThreadID, size uint64, out []uint64) (int, error) {
	return alloc.AllocBatchSerial(h, tid, size, out)
}

// DecommitExtent implements alloc.Substrate: in-band chunks share pages with
// neighbours, so page release is unavailable (the drop-in layer copes, as
// with any allocator lacking the extension).
func (h *Heap) DecommitExtent(base uint64) error {
	return fmt.Errorf("%w: dlmalloc cannot release chunk pages", alloc.ErrInvalidFree)
}

// PurgeAll implements alloc.Substrate (no-op: no extent cache).
func (h *Heap) PurgeAll() {}

// AllocatedBytes implements alloc.Substrate.
func (h *Heap) AllocatedBytes() uint64 {
	v := h.allocated.Load()
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// UsableSize implements alloc.Allocator.
func (h *Heap) UsableSize(addr uint64) uint64 {
	a, ok := h.Lookup(addr)
	if !ok {
		return 0
	}
	return a.Size
}

// Tick implements alloc.Allocator.
func (h *Heap) Tick(uint64) {}

// BinHead returns the current free-list head for the class serving size
// (tests and the corruption demo).
func (h *Heap) BinHead(size uint64) uint64 {
	class, _ := classFor(size)
	if class < 0 {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bins[class]
}

// Stats implements alloc.Allocator.
func (h *Heap) Stats() alloc.Stats {
	h.liveMu.RLock()
	n := len(h.live)
	h.liveMu.RUnlock()
	return alloc.Stats{
		Allocated: h.AllocatedBytes(),
		Active:    h.space.RSS(),
		MetaBytes: uint64(n) * 24, // the out-of-line mirror only
		Mallocs:   h.mallocs.Load(),
		Frees:     h.frees.Load(),
	}
}

// Shutdown implements alloc.Allocator.
func (h *Heap) Shutdown() {}
