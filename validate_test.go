package minesweeper

import (
	"errors"
	"strings"
	"testing"
)

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring expected in the error
	}{
		{"sweep threshold negative", Config{Scheme: SchemeMineSweeper, SweepThreshold: -0.1}, "SweepThreshold"},
		{"sweep threshold above one", Config{Scheme: SchemeMineSweeper, SweepThreshold: 1.5}, "SweepThreshold"},
		{"sweep threshold huge", Config{Scheme: SchemeMineSweeper, SweepThreshold: 1e18}, "SweepThreshold"},
		{"negative helpers", Config{Scheme: SchemeMineSweeper, Helpers: -1}, "Helpers"},
		{"negative buffer cap", Config{Scheme: SchemeMineSweeper, BufferCap: -8}, "BufferCap"},
		{"unmapped factor below one", Config{Scheme: SchemeMineSweeper, UnmappedFactor: 0.5}, "UnmappedFactor"},
		{"unmapped factor negative", Config{Scheme: SchemeMineSweeper, UnmappedFactor: -9}, "UnmappedFactor"},
		{"budget on sweepless scheme", Config{Scheme: SchemeBaseline, MemoryBudget: 1 << 30}, "MemoryBudget"},
		{"budget on markus", Config{Scheme: SchemeMarkUs, MemoryBudget: 1 << 30}, "MemoryBudget"},
		{"budget on ffmalloc", Config{Scheme: SchemeFFMalloc, MemoryBudget: 1 << 30}, "MemoryBudget"},
		{"controller on sweepless scheme", Config{Scheme: SchemeBaseline, Controller: AIMDPolicy()}, "Controller"},
		{"deferred zeroing with zeroing disabled", Config{Scheme: SchemeMineSweeper, ZeroMode: ZeroDeferred, DisableZeroing: true}, "ZeroDeferred"},
		{"unknown zero mode", Config{Scheme: SchemeMineSweeper, ZeroMode: ZeroMode(7)}, "ZeroMode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.cfg)
			}
			if !errors.Is(err, ErrBadConfig) {
				t.Fatalf("error %v does not wrap ErrBadConfig", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the bad field %q", err, tc.want)
			}
			// New must refuse the same configs.
			if _, err := NewProcess(tc.cfg); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("NewProcess error %v does not wrap ErrBadConfig", err)
			}
		})
	}
}

func TestValidateAcceptsDefaultsAndSaneConfigs(t *testing.T) {
	cases := []Config{
		{},
		{Scheme: SchemeMineSweeper},
		{Scheme: SchemeMineSweeper, SweepThreshold: 0.25, Helpers: 2, BufferCap: 64, UnmappedFactor: 4},
		{Scheme: SchemeMineSweeper, SweepThreshold: 1},      // manual-sweep idiom
		{Scheme: SchemeMineSweeper, PauseThreshold: -1},     // documented: disables pausing
		{Scheme: SchemeMineSweeper, MemoryBudget: 64 << 20}, // nil controller -> AIMD
		{Scheme: SchemeMineSweeper, MemoryBudget: 64 << 20, Controller: StaticPolicy()},
		{Scheme: SchemeMineSweeperMostlyConcurrent, MemoryBudget: 64 << 20},
		{Scheme: SchemeScudoMineSweeper, MemoryBudget: 64 << 20},
		{Scheme: SchemeMineSweeperDlmalloc, MemoryBudget: 64 << 20},
		{Scheme: SchemeMineSweeper, Controller: AIMDPolicy()}, // controller without budget: age signal only
		{Scheme: SchemeMineSweeper, ZeroMode: ZeroDeferred},
		{Scheme: SchemeMineSweeper, ZeroMode: ZeroDeferred, MemoryBudget: 64 << 20},
		{Scheme: SchemeMineSweeper, ZeroMode: ZeroImmediate, DisableZeroing: true}, // immediate + no zeroing = plain ablation
		{Scheme: SchemeMarkUs, SweepThreshold: 0.25},
	}
	for _, cfg := range cases {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate rejected sane config %+v: %v", cfg, err)
		}
	}
}

func TestGovernedProcessExposesGovernor(t *testing.T) {
	p, err := NewProcess(Config{Scheme: SchemeMineSweeper, MemoryBudget: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	g := p.Governor()
	if g == nil {
		t.Fatal("governed process returned nil Governor")
	}
	if g.Policy != "aimd" {
		t.Fatalf("default governed policy %q, want aimd (nil Controller with a budget)", g.Policy)
	}
	if g.Budget != 256<<20 {
		t.Fatalf("governor budget %d, want %d", g.Budget, 256<<20)
	}
	if g.Knobs != g.Base {
		t.Fatalf("fresh governor knobs %+v differ from base %+v", g.Knobs, g.Base)
	}

	u, err := NewProcess(Config{Scheme: SchemeMineSweeper})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	if u.Governor() != nil {
		t.Fatal("ungoverned process returned a Governor")
	}
}
