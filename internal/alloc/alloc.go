// Package alloc defines the allocator interface shared by every memory
// manager in this repository: the JeMalloc-style baseline, MineSweeper's
// drop-in layer, and the MarkUs and FFMalloc comparators. Mutators (package
// sim) program against this interface, so any workload can run under any
// scheme — the simulated equivalent of swapping LD_PRELOADed allocators under
// an unmodified SPEC binary.
package alloc

import "errors"

// ThreadID identifies a registered mutator thread. Allocators use it to find
// the thread's cache (jemalloc tcache, MineSweeper's thread-local quarantine
// buffer).
type ThreadID int32

// Allocation errors.
var (
	// ErrOutOfMemory reports virtual-address-space or configured-limit
	// exhaustion.
	ErrOutOfMemory = errors.New("alloc: out of memory")
	// ErrInvalidFree reports a free of an address that is not the base of
	// a live allocation.
	ErrInvalidFree = errors.New("alloc: invalid free")
	// ErrDoubleFree reports a second free of the same allocation. Schemes
	// with quarantines absorb double frees idempotently instead of
	// returning this (the paper: calls to free() while a dangling pointer
	// exists are "idempotent from each other").
	ErrDoubleFree = errors.New("alloc: double free")
)

// Stats is a cross-scheme statistics snapshot. Fields not applicable to a
// scheme are zero.
type Stats struct {
	// Allocated is live application bytes (malloc'd, not yet freed by the
	// program). Quarantined bytes are not included.
	Allocated uint64
	// Quarantined is bytes the program has freed that the scheme has not
	// yet released to the allocator.
	Quarantined uint64
	// QuarantinedUnmapped is the portion of Quarantined whose physical
	// pages have been released (MineSweeper §4.2).
	QuarantinedUnmapped uint64
	// Active is bytes in slabs/extents currently backing allocations,
	// including internal fragmentation.
	Active uint64
	// MetaBytes estimates allocator metadata overhead (out-of-line
	// structures, shadow maps).
	MetaBytes uint64
	// DirtyBytes is committed bytes sitting on the allocator's dirty/free
	// lists, awaiting reuse or purge (jemalloc's "dirty" pages).
	DirtyBytes uint64
	// Mallocs and Frees count API calls that succeeded.
	Mallocs uint64
	Frees   uint64
	// Sweeps counts completed sweep/mark passes.
	Sweeps uint64
	// FailedFrees counts quarantined allocations that a sweep could not
	// release because a (possible) dangling pointer was found.
	FailedFrees uint64
	// ReleasedFrees counts quarantined allocations released by sweeps.
	ReleasedFrees uint64
	// DoubleFrees counts de-duplicated double frees.
	DoubleFrees uint64
	// SweeperCycles is virtual CPU time consumed by background sweeper
	// threads (the paper's "additional threaded CPU usage").
	SweeperCycles uint64
	// STWCycles is virtual time mutators spent stopped for stop-the-world
	// re-scans (mostly-concurrent mode only).
	STWCycles uint64
	// PauseNanos is wall-clock nanoseconds mutators spent paused in Malloc
	// because the quarantine overwhelmed the sweeper (§5.7).
	PauseNanos uint64
	// BytesSwept is total bytes examined by marking passes.
	BytesSwept uint64
	// Purges counts allocator cleanup passes (decay or post-sweep).
	Purges uint64
}

// Allocation describes a live allocation found by a substrate lookup.
type Allocation struct {
	// Base is the allocation's base address.
	Base uint64
	// Size is the usable size in bytes.
	Size uint64
	// Large reports an extent-backed (page-granular) allocation, eligible
	// for quarantine page unmapping.
	Large bool
}

// Ref is an opaque substrate-internal reference to the container backing an
// allocation (a jemalloc extent, a Scudo chunk header). Resolve returns one;
// FreeResolved accepts it back so the substrate can skip the address→container
// lookup it already performed. A Ref stays valid for as long as the resolved
// allocation remains live at the substrate — exactly the guarantee a
// quarantine provides, since the quarantine owns the allocation until it
// releases it. A nil Ref is always legal and simply means "re-resolve".
type Ref any

// Substrate is the allocator-side interface MineSweeper's drop-in layer
// hooks into. The paper integrates with jemalloc's public API plus small
// extensions (§3.2) and notes the approach ports to other allocators (§7's
// Scudo implementation); any allocator providing these operations can sit
// under the quarantine.
type Substrate interface {
	Allocator
	// Lookup returns the live allocation containing addr (for slab-style
	// substrates) or exactly based at addr.
	Lookup(addr uint64) (Allocation, bool)
	// Resolve is Lookup plus an opaque reference that FreeResolved can use
	// to deallocate without repeating the address→container resolution —
	// the free() fast path performs exactly one page-map lookup per call.
	Resolve(addr uint64) (Allocation, Ref, bool)
	// FreeResolved frees the allocation based at addr using a Ref obtained
	// from Resolve while the allocation was live. Substrates fall back to
	// a plain Free when ref is nil.
	FreeResolved(tid ThreadID, ref Ref, addr uint64) error
	// FreeBatch frees a batch of resolved allocations: refs[i] and addrs[i]
	// describe one free exactly as a FreeResolved call would, and errs[i]
	// (which must have len(addrs) slots) receives that item's verdict — nil
	// on success, or the error the equivalent FreeResolved would have
	// returned, so per-item double-free detection survives batching.
	// Substrates with lock-protected internal structure amortise their
	// locks across the batch (jemalloc groups the batch by arena shard and
	// size class); others may simply loop, via FreeBatchSerial. The batch
	// is a performance contract only: the end state must be what the same
	// frees performed one at a time would have produced.
	FreeBatch(tid ThreadID, refs []Ref, addrs []uint64, errs []error)
	// AllocBatch allocates len(out) allocations of size bytes each, writing
	// their base addresses to out in order, and returns how many succeeded
	// (short only on error, with the error that stopped it). Like FreeBatch
	// it is a performance contract only: the end state — returned addresses,
	// cache contents, double-free tracking bits, statistics — must be
	// exactly what len(out) serial Malloc calls would have produced.
	// Substrates with batchable refill paths amortise their locks (jemalloc
	// refills a whole tcache run under one bin-lock acquisition); others
	// loop, via AllocBatchSerial.
	AllocBatch(tid ThreadID, size uint64, out []uint64) (int, error)
	// DecommitExtent releases the physical pages of a live large
	// allocation, leaving it allocated (§4.2).
	DecommitExtent(base uint64) error
	// PurgeAll returns all dirty physical memory to the OS now (§4.5).
	PurgeAll()
	// AllocatedBytes returns live usable bytes.
	AllocatedBytes() uint64
}

// Allocator is the interface every memory-management scheme implements.
type Allocator interface {
	// RegisterThread creates per-thread allocator state and returns the
	// thread's ID. Every mutator registers before its first Malloc.
	RegisterThread() ThreadID
	// UnregisterThread flushes and retires the thread's caches.
	UnregisterThread(tid ThreadID)
	// Malloc allocates size bytes and returns the base address. The
	// returned memory's contents are unspecified (as with C malloc).
	Malloc(tid ThreadID, size uint64) (uint64, error)
	// Free deallocates the allocation whose base address is addr. Under
	// quarantining schemes the memory is retained until proven safe.
	Free(tid ThreadID, addr uint64) error
	// UsableSize returns the usable size of the live allocation at base
	// addr, or 0 if addr is not a live allocation base.
	UsableSize(addr uint64) uint64
	// Tick advances the allocator's notion of virtual time (decay-based
	// purging, background housekeeping). now is in virtual cycles.
	Tick(now uint64)
	// Stats returns a statistics snapshot.
	Stats() Stats
	// Shutdown stops background machinery (sweeper threads) and performs
	// final housekeeping. The allocator must not be used afterwards.
	Shutdown()
}

// FreeBatchSerial implements the FreeBatch contract by looping FreeResolved —
// the straightforward fallback for substrates whose free path has no batchable
// shared structure (dlmalloc's in-band headers, Scudo's per-chunk registry).
func FreeBatchSerial(s Substrate, tid ThreadID, refs []Ref, addrs []uint64, errs []error) {
	for i, addr := range addrs {
		var ref Ref
		if i < len(refs) {
			ref = refs[i]
		}
		errs[i] = s.FreeResolved(tid, ref, addr)
	}
}

// AllocBatchSerial implements the AllocBatch contract by looping Malloc — the
// fallback for substrates with no batchable refill structure. On error the
// addresses already produced remain allocated (exactly as the equivalent
// serial calls would leave them) and their count is returned.
func AllocBatchSerial(s Substrate, tid ThreadID, size uint64, out []uint64) (int, error) {
	for i := range out {
		a, err := s.Malloc(tid, size)
		if err != nil {
			return i, err
		}
		out[i] = a
	}
	return len(out), nil
}

// Name returns a short human-readable scheme name for an allocator, used in
// reports. Allocators implement fmt.Stringer for this.
type Name interface{ String() string }

// PointerObserver is optionally implemented by schemes that track pointer
// stores (the paper's pointer-nullification and reference-counting systems:
// DangSan, pSweeper, CRCount — §6.4, §6.6). When a scheme implements it, the
// simulator invokes NoteStore after every successful mutator store, passing
// the overwritten and stored values. This models the compiler
// instrumentation those systems add to every pointer write — and, exactly as
// in the real systems, the cost of the callback lands on the mutator.
type PointerObserver interface {
	NoteStore(tid ThreadID, addr, old, new uint64)
}
