package jemalloc

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"minesweeper/internal/alloc"
	"minesweeper/internal/mem"
)

// oracleWorkload drives two identically configured heaps through the same
// allocation sequence and returns the live addresses (identical on both, by
// determinism) plus a deterministic rng state for the free phase.
func oracleWorkload(t *testing.T, a, b *Heap, tids []alloc.ThreadID, seed uint64) []uint64 {
	t.Helper()
	rng := seed
	var live []uint64
	for i := 0; i < 800; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		size := rng % 20000 // mix of small classes and large extents
		if size == 0 {
			size = 1
		}
		tid := tids[rng%uint64(len(tids))]
		aa, err := a.Malloc(tid, size)
		if err != nil {
			t.Fatalf("heap A Malloc: %v", err)
		}
		ba, err := b.Malloc(tid, size)
		if err != nil {
			t.Fatalf("heap B Malloc: %v", err)
		}
		if aa != ba {
			t.Fatalf("heaps diverged before any free: %#x vs %#x", aa, ba)
		}
		live = append(live, aa)
	}
	return live
}

// TestFreeBatchOracle proves the batched release path is a pure performance
// transform: FreeBatch must leave the substrate in exactly the state the same
// frees performed one at a time produce — same per-item verdicts, same
// stats, same slab occupancy, same dirty lists — on randomized workloads that
// mix size classes, shards, large extents, and double frees.
func TestFreeBatchOracle(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 12345} {
		cfg := DefaultConfig()
		cfg.TcacheEnabled = false // direct-to-bin on both paths
		cfg.Arenas = 2
		ha := New(mem.NewAddressSpace(), cfg)
		hb := New(mem.NewAddressSpace(), cfg)
		var tids []alloc.ThreadID
		for i := 0; i < 3; i++ {
			ta := ha.RegisterThread()
			tb := hb.RegisterThread()
			if ta != tb {
				t.Fatal("thread registration diverged")
			}
			tids = append(tids, ta)
		}
		live := oracleWorkload(t, ha, hb, tids, seed)

		// Free a random ~2/3 subset, plus in-batch duplicates (double
		// frees) every 16th pick.
		rng := seed ^ 0x5DEECE66D
		var addrs []uint64
		picked := make(map[uint64]bool)
		for i, a := range live {
			rng = rng*6364136223846793005 + 1442695040888963407
			if rng%3 == 0 {
				continue
			}
			addrs = append(addrs, a)
			picked[a] = true
			if i%16 == 0 {
				addrs = append(addrs, a) // duplicate in the same batch
			}
		}

		// Resolve on each heap (identical extent geometry, separate refs).
		refsA := make([]alloc.Ref, len(addrs))
		refsB := make([]alloc.Ref, len(addrs))
		for i, addr := range addrs {
			_, ra, _ := ha.Resolve(addr)
			_, rb, _ := hb.Resolve(addr)
			refsA[i], refsB[i] = ra, rb
		}

		// Heap A: per-item replay. Heap B: one batch.
		errsA := make([]error, len(addrs))
		for i, addr := range addrs {
			errsA[i] = ha.FreeResolved(tids[0], refsA[i], addr)
		}
		errsB := make([]error, len(addrs))
		hb.FreeBatch(tids[0], refsB, addrs, errsB)

		for i := range addrs {
			if (errsA[i] == nil) != (errsB[i] == nil) {
				t.Fatalf("seed %d item %d (%#x): per-item err %v, batch err %v",
					seed, i, addrs[i], errsA[i], errsB[i])
			}
			if errsA[i] != nil && !sameErrClass(errsA[i], errsB[i]) {
				t.Fatalf("seed %d item %d (%#x): verdict class differs: %v vs %v",
					seed, i, addrs[i], errsA[i], errsB[i])
			}
		}

		if sa, sb := ha.Stats(), hb.Stats(); sa != sb {
			t.Fatalf("seed %d: Stats diverged:\nper-item: %+v\nbatch:    %+v", seed, sa, sb)
		}
		da, db := ha.DetailedStats(), hb.DetailedStats()
		if !reflect.DeepEqual(da, db) {
			t.Fatalf("seed %d: DetailedStats diverged:\nper-item: %+v\nbatch:    %+v", seed, da, db)
		}
		dba, na := ha.dirtyStats()
		dbb, nb := hb.dirtyStats()
		if dba != dbb || na != nb {
			t.Fatalf("seed %d: dirty lists diverged: (%d bytes, %d) vs (%d bytes, %d)",
				seed, dba, na, dbb, nb)
		}
		// Liveness must agree address by address.
		for _, a := range live {
			la, oka := ha.Lookup(a)
			lb, okb := hb.Lookup(a)
			if oka != okb || la != lb {
				t.Fatalf("seed %d: Lookup(%#x) diverged: (%+v,%v) vs (%+v,%v)", seed, a, la, oka, lb, okb)
			}
			if picked[a] && oka {
				t.Fatalf("seed %d: freed address %#x still live", seed, a)
			}
		}
	}
}

func sameErrClass(a, b error) bool {
	for _, class := range []error{alloc.ErrDoubleFree, alloc.ErrInvalidFree, alloc.ErrOutOfMemory} {
		if errors.Is(a, class) {
			return errors.Is(b, class)
		}
	}
	return false
}

// TestFreeBatchCachedRegionIsDoubleFree: a region sitting in some thread's
// tcache reached the batch path only via program UB (its first free cached
// it); the batch must report the duplicate, not free the region under the
// cache's feet.
func TestFreeBatchCachedRegionIsDoubleFree(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Arenas = 2
	h := New(mem.NewAddressSpace(), cfg)
	tid := h.RegisterThread()
	addr, err := h.Malloc(tid, 48)
	if err != nil {
		t.Fatal(err)
	}
	_, ref, ok := h.Resolve(addr)
	if !ok {
		t.Fatal("Resolve failed")
	}
	if err := h.Free(tid, addr); err != nil { // now tcache-resident
		t.Fatal(err)
	}
	errs := make([]error, 1)
	h.FreeBatch(tid, []alloc.Ref{ref}, []uint64{addr}, errs)
	if !errors.Is(errs[0], alloc.ErrDoubleFree) {
		t.Fatalf("batch free of cached region = %v, want ErrDoubleFree", errs[0])
	}
}

// TestFreeBatchNilRefs: nil refs fall back to the page map, as FreeResolved
// does.
func TestFreeBatchNilRefs(t *testing.T) {
	h := New(mem.NewAddressSpace(), DefaultConfig())
	tid := h.RegisterThread()
	a1, _ := h.Malloc(tid, 64)
	a2, _ := h.Malloc(tid, 1<<20)
	errs := make([]error, 3)
	h.FreeBatch(tid, nil, []uint64{a1, a2, mem.HeapBase + 555}, errs)
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("batch free with nil refs: %v, %v", errs[0], errs[1])
	}
	if !errors.Is(errs[2], alloc.ErrInvalidFree) {
		t.Fatalf("batch free of unmapped address = %v, want ErrInvalidFree", errs[2])
	}
	if got := h.AllocatedBytes(); got != 0 {
		t.Fatalf("AllocatedBytes = %d after batch free, want 0", got)
	}
}

// TestFreeBatchLargeDuplicate: duplicate frees of one large allocation inside
// a single batch release it exactly once.
func TestFreeBatchLargeDuplicate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TcacheEnabled = false
	h := New(mem.NewAddressSpace(), cfg)
	tid := h.RegisterThread()
	addr, _ := h.Malloc(tid, 1<<20)
	_, ref, _ := h.Resolve(addr)
	errs := make([]error, 2)
	h.FreeBatch(tid, []alloc.Ref{ref, ref}, []uint64{addr, addr}, errs)
	if errs[0] != nil {
		t.Fatalf("first free = %v, want nil", errs[0])
	}
	if !errors.Is(errs[1], alloc.ErrInvalidFree) {
		t.Fatalf("duplicate large free = %v, want ErrInvalidFree", errs[1])
	}
	if _, n := h.dirtyStats(); n != 1 {
		t.Fatalf("dirty extents = %d, want 1 (released exactly once)", n)
	}
	if got := h.Stats().Frees; got != 1 {
		t.Fatalf("Frees = %d, want 1", got)
	}
}

// TestNonfullIndexMaintenance stresses the O(1) nonfull bookkeeping: many
// slabs cycling between full, non-full, and empty, with releases from the
// middle of the list (the swap-remove path).
func TestNonfullIndexMaintenance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TcacheEnabled = false
	cfg.Arenas = 1
	h := New(mem.NewAddressSpace(), cfg)
	tid := h.RegisterThread()
	class := SizeToClass(48)
	regs := SlabRegions(class)
	const slabs = 6
	addrs := make([][]uint64, slabs)
	total := 0
	for s := 0; s < slabs; s++ {
		for r := 0; r < regs; r++ {
			a, err := h.Malloc(tid, 40) // class 48 after pad
			if err != nil {
				t.Fatal(err)
			}
			addrs[s] = append(addrs[s], a)
			total++
		}
	}
	// Make every slab non-full (free one region each), then empty them in
	// an order that forces swap-removes from the middle of nonfull.
	for s := 0; s < slabs; s++ {
		if err := h.Free(tid, addrs[s][0]); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range []int{2, 4, 0, 5, 1, 3} {
		for _, a := range addrs[s][1:] {
			if err := h.Free(tid, a); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := h.AllocatedBytes(); got != 0 {
		t.Fatalf("AllocatedBytes = %d, want 0", got)
	}
	d := h.DetailedStats()
	for _, b := range d.Bins {
		if b.Class == class && b.CurRegs != 0 {
			t.Fatalf("class %d CurRegs = %d after freeing everything", class, b.CurRegs)
		}
	}
	// Everything must be reallocatable (freemaps and nonfull lists intact).
	for i := 0; i < total; i++ {
		if _, err := h.Malloc(tid, 40); err != nil {
			t.Fatalf("realloc %d: %v", i, err)
		}
	}
}

// gateHooks blocks the first Decommit until released, modelling a slow
// user-supplied extent hook.
type gateHooks struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateHooks) Commit(space *mem.AddressSpace, base, size uint64) error {
	return DefaultHooks{}.Commit(space, base, size)
}

func (g *gateHooks) Decommit(space *mem.AddressSpace, base, size uint64) error {
	g.once.Do(func() {
		close(g.entered)
		<-g.release
	})
	return DefaultHooks{}.Decommit(space, base, size)
}

// TestSlowDecommitDoesNotBlockAlloc: PurgeAll calls the (possibly
// user-supplied) decommit hook outside the arena critical section, so a slow
// hook must not stall a concurrent allocation slow path on the same shard.
func TestSlowDecommitDoesNotBlockAlloc(t *testing.T) {
	g := &gateHooks{entered: make(chan struct{}), release: make(chan struct{})}
	cfg := DefaultConfig()
	cfg.Hooks = g
	cfg.TcacheEnabled = false
	cfg.Arenas = 1 // every thread shares the single arena under purge
	h := New(mem.NewAddressSpace(), cfg)
	tid := h.RegisterThread()
	addr, err := h.Malloc(tid, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(tid, addr); err != nil {
		t.Fatal(err)
	}
	purgeDone := make(chan struct{})
	go func() {
		h.PurgeAll()
		close(purgeDone)
	}()
	<-g.entered // the hook is now asleep inside the purge

	allocDone := make(chan error, 1)
	go func() {
		_, err := h.Malloc(tid, 4096)
		allocDone <- err
	}()
	select {
	case err := <-allocDone:
		if err != nil {
			t.Fatalf("Malloc during purge: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("allocExtent blocked behind a slow Decommit hook")
	}
	close(g.release)
	<-purgeDone
	if d, _ := h.dirtyStats(); d != 0 {
		t.Fatalf("committed dirty bytes after purge = %d, want 0", d)
	}
}

// TestSlowDecommitDoesNotBlockTick is the same guarantee for decay purging.
func TestSlowDecommitDoesNotBlockTick(t *testing.T) {
	g := &gateHooks{entered: make(chan struct{}), release: make(chan struct{})}
	cfg := DefaultConfig()
	cfg.Hooks = g
	cfg.TcacheEnabled = false
	cfg.DecayCycles = 10
	cfg.Arenas = 1
	h := New(mem.NewAddressSpace(), cfg)
	tid := h.RegisterThread()
	addr, _ := h.Malloc(tid, 1<<20)
	if err := h.Free(tid, addr); err != nil {
		t.Fatal(err)
	}
	tickDone := make(chan struct{})
	go func() {
		h.Tick(1000) // past the decay deadline: purges the dirty extent
		close(tickDone)
	}()
	<-g.entered
	allocDone := make(chan error, 1)
	go func() {
		_, err := h.Malloc(tid, 4096)
		allocDone <- err
	}()
	select {
	case err := <-allocDone:
		if err != nil {
			t.Fatalf("Malloc during Tick purge: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("allocExtent blocked behind a slow Decommit hook in Tick")
	}
	close(g.release)
	<-tickDone
}

// TestShardedConcurrentMallocFree is the cross-shard stress: 8 threads over 4
// shards, every thread freeing memory it did not allocate about half the
// time (ownership transfer between goroutines), so frees constantly route to
// foreign shards' bins. Run under -race via make race-hot.
func TestShardedConcurrentMallocFree(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Arenas = 4
	h := New(mem.NewAddressSpace(), cfg)
	const threads = 8
	const iters = 2000
	// Cross-thread handoff: each goroutine pushes half its allocations to a
	// shared channel and frees addresses popped from it.
	handoff := make(chan uint64, 1024)
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		tid := h.RegisterThread()
		wg.Add(1)
		go func(tid alloc.ThreadID, seed uint64) {
			defer wg.Done()
			rng := seed
			var live []uint64
			for i := 0; i < iters; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				a, err := h.Malloc(tid, rng%2048+1)
				if err != nil {
					t.Errorf("Malloc: %v", err)
					return
				}
				if rng%2 == 0 {
					select {
					case handoff <- a:
					default:
						live = append(live, a)
					}
				} else {
					live = append(live, a)
				}
				if rng%3 == 0 {
					select {
					case x := <-handoff:
						if err := h.Free(tid, x); err != nil {
							t.Errorf("foreign Free: %v", err)
							return
						}
					default:
					}
				}
				if len(live) > 64 {
					if err := h.Free(tid, live[len(live)-1]); err != nil {
						t.Errorf("Free: %v", err)
						return
					}
					live = live[:len(live)-1]
				}
			}
			for _, a := range live {
				if err := h.Free(tid, a); err != nil {
					t.Errorf("final Free: %v", err)
					return
				}
			}
		}(tid, uint64(g)*2654435761+1)
	}
	wg.Wait()
	close(handoff)
	tid := h.RegisterThread()
	for a := range handoff {
		if err := h.Free(tid, a); err != nil {
			t.Fatalf("drain Free: %v", err)
		}
	}
	if got := h.AllocatedBytes(); got != 0 {
		t.Fatalf("AllocatedBytes after all frees = %d, want 0", got)
	}
	if h.NumArenas() != 4 {
		t.Fatalf("NumArenas = %d, want 4", h.NumArenas())
	}
}

// TestStatsExactUnderShards: the footprint and stats invariants hold with
// maximal sharding — counters are heap-global, per-shard figures are summed.
func TestStatsExactUnderShards(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TcacheEnabled = false
	cfg.Arenas = 4
	h := New(mem.NewAddressSpace(), cfg)
	var tids []alloc.ThreadID
	for i := 0; i < 4; i++ {
		tids = append(tids, h.RegisterThread())
	}
	type al struct {
		tid  alloc.ThreadID
		addr uint64
		size uint64
	}
	var allocs []al
	var sum uint64
	for i := 0; i < 400; i++ {
		tid := tids[i%len(tids)]
		size := uint64(i%300)*97 + 1
		a, err := h.Malloc(tid, size)
		if err != nil {
			t.Fatal(err)
		}
		us := h.UsableSize(a)
		allocs = append(allocs, al{tid, a, us})
		sum += us
	}
	if got := h.AllocatedBytes(); got != sum {
		t.Fatalf("AllocatedBytes = %d, want %d", got, sum)
	}
	st := h.Stats()
	if st.Allocated != sum {
		t.Fatalf("Stats.Allocated = %d, want %d", st.Allocated, sum)
	}
	d := h.DetailedStats()
	if d.Allocated != sum {
		t.Fatalf("DetailedStats.Allocated = %d, want %d", d.Allocated, sum)
	}
	if d.SlabBytes+d.LargeBytes != st.Active {
		t.Fatalf("Active = %d, want slab %d + large %d", st.Active, d.SlabBytes, d.LargeBytes)
	}
	// Cross-shard frees: every allocation freed by a different thread.
	for _, a := range allocs {
		other := tids[(int(a.tid)+1)%len(tids)]
		if err := h.Free(other, a.addr); err != nil {
			t.Fatalf("cross-shard Free(%#x): %v", a.addr, err)
		}
	}
	if got := h.AllocatedBytes(); got != 0 {
		t.Fatalf("AllocatedBytes after frees = %d, want 0", got)
	}
	if got := h.Stats().Frees; got != uint64(len(allocs)) {
		t.Fatalf("Frees = %d, want %d", got, len(allocs))
	}
}
