package shadow

import (
	"sync"
	"testing"
	"testing/quick"

	"minesweeper/internal/mem"
)

func newTestBitmap(t testing.TB) *Bitmap {
	t.Helper()
	b, err := New(mem.HeapBase, mem.HeapLimit, 4) // 1 bit / 16 B, like MineSweeper
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(16, 8, 4); err == nil {
		t.Error("New with empty range succeeded")
	}
	if _, err := New(1, 1<<30, 4); err == nil {
		t.Error("New with misaligned base succeeded")
	}
	if _, err := New(0, 1<<30, 4); err != nil {
		t.Errorf("New aligned: %v", err)
	}
}

func TestMarkTest(t *testing.T) {
	b := newTestBitmap(t)
	addr := mem.HeapBase + 0x1230
	if b.Test(addr) {
		t.Fatal("fresh bitmap has bit set")
	}
	b.Mark(addr)
	if !b.Test(addr) {
		t.Fatal("marked bit not set")
	}
	// Same granule: offsets within the same 16 bytes share a bit.
	if !b.Test(addr + 15 - addr%16 - (addr % 16)) {
		// compute granule start explicitly below instead
		_ = addr
	}
	g := addr &^ 15
	for off := uint64(0); off < 16; off++ {
		if !b.Test(g + off) {
			t.Errorf("offset %d within granule not set", off)
		}
	}
	if b.Test(g + 16) {
		t.Error("next granule unexpectedly set")
	}
	if b.Test(g - 1) {
		t.Error("previous granule unexpectedly set")
	}
}

func TestMarkOutsideRangeIgnored(t *testing.T) {
	b := newTestBitmap(t)
	b.Mark(0x1000)              // below heap
	b.Mark(mem.HeapLimit)       // at limit
	b.Mark(mem.HeapLimit + 123) // above heap
	if b.PopCount() != 0 {
		t.Errorf("PopCount = %d, want 0", b.PopCount())
	}
	if b.Test(0x1000) {
		t.Error("Test outside range returned true")
	}
}

func TestAnyInRange(t *testing.T) {
	b := newTestBitmap(t)
	base := mem.HeapBase + 1<<20
	b.Mark(base + 160) // granule 10 of this block

	cases := []struct {
		lo, hi uint64
		want   bool
	}{
		{base, base + 160, false},       // ends exactly before the mark
		{base, base + 161, true},        // includes first byte of marked granule
		{base + 160, base + 176, true},  // exactly the marked granule
		{base + 175, base + 176, true},  // last byte of marked granule
		{base + 176, base + 512, false}, // after
		{base, base + 1<<16, true},      // large covering range
		{base + 200, base + 200, false}, // empty
		{base + 300, base + 200, false}, // inverted
	}
	for _, c := range cases {
		if got := b.AnyInRange(c.lo, c.hi); got != c.want {
			t.Errorf("AnyInRange(%#x, %#x) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

func TestAnyInRangeSkipsUnallocatedChunks(t *testing.T) {
	b := newTestBitmap(t)
	// Range spanning many chunks with a single mark near the end.
	lo := mem.HeapBase
	hi := mem.HeapBase + 64<<20 // 64 MiB, 16 chunks at 4 MiB coverage
	b.Mark(hi - 16)
	if !b.AnyInRange(lo, hi) {
		t.Error("mark near end of multi-chunk range not found")
	}
	if b.AnyInRange(lo, hi-16) {
		t.Error("found mark outside queried range")
	}
}

func TestClearRange(t *testing.T) {
	b := newTestBitmap(t)
	base := mem.HeapBase
	for i := uint64(0); i < 64; i++ {
		b.Mark(base + i*16)
	}
	b.ClearRange(base+160, base+320) // granules 10..19
	for i := uint64(0); i < 64; i++ {
		want := i < 10 || i >= 20
		if got := b.Test(base + i*16); got != want {
			t.Errorf("granule %d set = %v, want %v", i, got, want)
		}
	}
}

func TestClearAll(t *testing.T) {
	b := newTestBitmap(t)
	for i := uint64(0); i < 1000; i++ {
		b.Mark(mem.HeapBase + i*4096)
	}
	if b.PopCount() != 1000 {
		t.Fatalf("PopCount = %d, want 1000", b.PopCount())
	}
	if b.FootprintBytes() == 0 {
		t.Error("FootprintBytes = 0 with chunks allocated")
	}
	b.ClearAll()
	if b.PopCount() != 0 {
		t.Errorf("PopCount after ClearAll = %d, want 0", b.PopCount())
	}
	if b.FootprintBytes() != 0 {
		t.Errorf("FootprintBytes after ClearAll = %d, want 0", b.FootprintBytes())
	}
}

func TestPageGranularity(t *testing.T) {
	// The unmapped-pages bitmap uses page granularity (shift 12).
	b, err := New(mem.HeapBase, mem.HeapLimit, 12)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if b.GranuleSize() != 4096 {
		t.Fatalf("GranuleSize = %d, want 4096", b.GranuleSize())
	}
	b.Mark(mem.HeapBase + 4096)
	if !b.Test(mem.HeapBase + 4096 + 4095) {
		t.Error("page bit does not cover whole page")
	}
	if b.Test(mem.HeapBase) || b.Test(mem.HeapBase+8192) {
		t.Error("adjacent pages set")
	}
}

func TestConcurrentMark(t *testing.T) {
	b := newTestBitmap(t)
	const goroutines = 8
	const marks = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < marks; i++ {
				b.Mark(mem.HeapBase + uint64(g*marks+i)*16)
			}
		}(g)
	}
	wg.Wait()
	if got := b.PopCount(); got != goroutines*marks {
		t.Errorf("PopCount = %d, want %d", got, goroutines*marks)
	}
}

// Property: after marking an arbitrary set of addresses, AnyInRange(lo, hi)
// agrees with a naive per-granule Test scan.
func TestQuickAnyInRangeMatchesNaive(t *testing.T) {
	b := newTestBitmap(t)
	const window = 1 << 16
	f := func(markOffs []uint16, lo, hi uint16) bool {
		b.ClearRange(mem.HeapBase, mem.HeapBase+window)
		for _, m := range markOffs {
			b.Mark(mem.HeapBase + uint64(m))
		}
		loA := mem.HeapBase + uint64(lo)
		hiA := mem.HeapBase + uint64(hi)
		naive := false
		if hiA > loA {
			for g := loA &^ 15; g < hiA; g += 16 {
				if b.Test(g) {
					naive = true
					break
				}
			}
		}
		return b.AnyInRange(loA, hiA) == naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMark(b *testing.B) {
	bm := newTestBitmap(b)
	for i := 0; i < b.N; i++ {
		bm.Mark(mem.HeapBase + uint64(i%(1<<20))*16)
	}
}

func BenchmarkAnyInRangeMiss(b *testing.B) {
	bm := newTestBitmap(b)
	bm.Mark(mem.HeapBase + 1<<21)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bm.AnyInRange(mem.HeapBase, mem.HeapBase+1<<20) {
			b.Fatal("unexpected hit")
		}
	}
}
