package metrics

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestGeomean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 1, 1}, 1},
		{[]float64{2, 8}, 4},
		{[]float64{1.1}, 1.1},
		{nil, 0},
	}
	for _, c := range cases {
		if got := Geomean(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Geomean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Geomean([]float64{1, -1})) {
		t.Error("Geomean with nonpositive input should be NaN")
	}
}

func TestSampler(t *testing.T) {
	var v atomic.Uint64
	v.Store(100)
	s := NewSampler(v.Load, time.Millisecond)
	s.Start()
	time.Sleep(5 * time.Millisecond)
	v.Store(300)
	time.Sleep(5 * time.Millisecond)
	s.Stop()
	if n := len(s.Samples()); n < 3 {
		t.Fatalf("only %d samples", n)
	}
	if s.Peak() != 300 {
		t.Errorf("Peak = %d, want 300", s.Peak())
	}
	avg := s.Avg()
	if avg < 100 || avg > 300 {
		t.Errorf("Avg = %d, want within [100,300]", avg)
	}
	// Sample timestamps are monotonically nondecreasing.
	prev := time.Duration(-1)
	for _, smp := range s.Samples() {
		if smp.At < prev {
			t.Fatal("timestamps not monotonic")
		}
		prev = smp.At
	}
}

func TestSamplerStopWithoutStart(t *testing.T) {
	// Regression: Stop without Start used to close a nil channel and panic.
	s := NewSampler(func() uint64 { return 1 }, time.Millisecond)
	s.Stop()
	if n := len(s.Samples()); n != 0 {
		t.Errorf("Stop without Start recorded %d samples, want 0", n)
	}
	// Repeated Stop after a real Start/Stop cycle is also safe and must not
	// append extra final samples.
	s.Start()
	s.Stop()
	n := len(s.Samples())
	s.Stop()
	s.Stop()
	if got := len(s.Samples()); got != n {
		t.Errorf("repeated Stop grew samples from %d to %d", n, got)
	}
	// The sampler can start again after stopping.
	s.Start()
	s.Stop()
	if got := len(s.Samples()); got <= n {
		t.Errorf("restart recorded no samples (still %d)", got)
	}
}

func TestSamplerEmptyAvgPeak(t *testing.T) {
	s := NewSampler(func() uint64 { return 1 }, time.Hour)
	if s.Avg() != 0 || s.Peak() != 0 {
		t.Error("empty sampler Avg/Peak should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("bench", "slowdown")
	tb.AddRow("xalancbmk", "1.73")
	tb.AddRow("gcc", "1.17")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "bench") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.Contains(out, "xalancbmk  1.73") {
		t.Errorf("misaligned row:\n%s", out)
	}
}

func TestTableSortKeepsGeomeanLast(t *testing.T) {
	tb := NewTable("bench", "x")
	tb.AddRow("geomean", "1.05")
	tb.AddRow("zeta", "1")
	tb.AddRow("alpha", "2")
	tb.SortRows()
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.HasPrefix(lines[2], "alpha") || !strings.HasPrefix(lines[len(lines)-1], "geomean") {
		t.Errorf("sort order wrong:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if FmtRatio(1.0544) != "1.054" {
		t.Errorf("FmtRatio = %q", FmtRatio(1.0544))
	}
	if FmtPct(1.054) != "+5.4%" {
		t.Errorf("FmtPct = %q", FmtPct(1.054))
	}
	if FmtMiB(1<<20) != "1.0 MiB" {
		t.Errorf("FmtMiB = %q", FmtMiB(1<<20))
	}
}

func TestPaperDataSanity(t *testing.T) {
	if len(PaperSpec2006) != 19 {
		t.Errorf("PaperSpec2006 has %d benchmarks, want 19", len(PaperSpec2006))
	}
	for name, b := range PaperSpec2006 {
		if b.MSTime < 1 || b.MarkUsTime < 1 || b.FFTime < 0.99 {
			t.Errorf("%s: implausible slowdowns %+v", name, b)
		}
	}
	// Headline identities from the paper's text.
	if PaperHeadline.MSSlowdown != 1.054 || PaperHeadline.MSMemory != 1.111 {
		t.Error("headline MineSweeper numbers corrupted")
	}
	if PaperSpec2006["xalancbmk"].MSTime != 1.73 {
		t.Error("xalancbmk worst case corrupted")
	}
	if len(PaperCVETrends) != 8 {
		t.Error("CVE trend years wrong")
	}
}
