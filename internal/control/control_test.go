package control

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func baseKnobs() Knobs {
	return Knobs{SweepThreshold: 0.15, UnmappedFactor: 9, PauseThreshold: 3, Helpers: 6}
}

// press returns Inputs with the given budget-usage ratio against a 1 GiB
// budget.
func press(usage float64) Inputs {
	const budget = 1 << 30
	return Inputs{RSS: uint64(usage * budget), Budget: budget}
}

func TestHysteresisBands(t *testing.T) {
	b := DefaultBands()
	steps := []struct {
		usage float64
		want  Level
	}{
		{0.50, Nominal},
		{0.79, Nominal},  // below ElevatedEnter
		{0.81, Elevated}, // crossed enter
		{0.75, Elevated}, // inside the hysteresis band: stays Elevated
		{0.69, Nominal},  // below ElevatedExit: drops
		{0.96, Critical}, // straight to Critical from Nominal
		{0.90, Critical}, // above CriticalExit: stays
		{0.84, Elevated}, // below CriticalExit but above ElevatedEnter
		{0.10, Nominal},
	}
	lvl := Nominal
	for i, s := range steps {
		lvl = b.Next(lvl, press(s.usage))
		if lvl != s.want {
			t.Fatalf("step %d (usage %.2f): level %v, want %v", i, s.usage, lvl, s.want)
		}
	}
}

func TestHysteresisAgeSignal(t *testing.T) {
	b := DefaultBands()
	// No budget at all: pressure comes only from quarantine age.
	in := Inputs{AgeEpochs: b.AgeElevated}
	if got := b.Next(Nominal, in); got != Elevated {
		t.Fatalf("age %d epochs: level %v, want Elevated", in.AgeEpochs, got)
	}
	// Age never downgrades an already-critical level.
	if got := b.Next(Critical, Inputs{AgeEpochs: 99, RSS: 1 << 30, Budget: 1 << 30}); got != Critical {
		t.Fatalf("critical with old quarantine: level %v, want Critical", got)
	}
	if got := b.Next(Nominal, Inputs{AgeEpochs: b.AgeElevated - 1}); got != Nominal {
		t.Fatalf("age below the bar: level %v, want Nominal", got)
	}
}

func TestStaticPolicyFreezesKnobs(t *testing.T) {
	base := baseKnobs()
	p := NewPlane(Config{Base: base, Budget: 1 << 20})
	if p.PolicyName() != "static" {
		t.Fatalf("default policy %q, want static", p.PolicyName())
	}
	// Hammer it with every pressure level; knobs must never move.
	for _, in := range []Inputs{press(0.1), press(0.9), press(2.0), {AgeEpochs: 100}} {
		p.Observe(in)
		if got := p.Knobs(); got != base {
			t.Fatalf("static knobs drifted: %+v != %+v", got, base)
		}
	}
	// Level transitions are still recorded (observability), knob fields
	// identical before and after.
	for _, d := range p.Ring().Snapshot() {
		if d.Before != base || d.After != base {
			t.Fatalf("static decision changed knobs: %+v", d)
		}
	}
}

func TestAIMDTightenAndRelax(t *testing.T) {
	base := baseKnobs()
	rails := DefaultRails(base)
	pol := NewAIMD()

	// Critical tightens multiplicatively.
	k := pol.Decide(Critical, press(1.0), base, base, rails)
	if k.SweepThreshold >= base.SweepThreshold {
		t.Fatalf("critical did not tighten SweepThreshold: %v", k.SweepThreshold)
	}
	if k.Helpers <= base.Helpers {
		t.Fatalf("critical did not add helpers: %d", k.Helpers)
	}
	// Repeated critical decisions converge to the rails, never below.
	for i := 0; i < 50; i++ {
		k = pol.Decide(Critical, press(1.0), k, base, rails)
		if !rails.Contains(k) {
			t.Fatalf("iteration %d escaped rails: %+v vs %+v", i, k, rails)
		}
	}
	if k.SweepThreshold != rails.SweepThresholdMin {
		t.Fatalf("tightening floor %v, want %v", k.SweepThreshold, rails.SweepThresholdMin)
	}
	if k.Helpers != rails.HelpersMax {
		t.Fatalf("helpers ceiling %d, want %d", k.Helpers, rails.HelpersMax)
	}

	// Nominal relaxes additively back to base, never past it.
	for i := 0; i < 100; i++ {
		k = pol.Decide(Nominal, press(0.1), k, base, rails)
		if !rails.Contains(k) {
			t.Fatalf("relax iteration %d escaped rails: %+v", i, k)
		}
	}
	if k != base {
		t.Fatalf("relaxation did not converge to base: %+v != %+v", k, base)
	}
}

func TestAIMDRelaxIsGradual(t *testing.T) {
	base := baseKnobs()
	rails := DefaultRails(base)
	pol := NewAIMD()
	k := pol.Decide(Critical, press(1.0), base, base, rails)
	r1 := pol.Decide(Nominal, press(0.1), k, base, rails)
	if r1 == base {
		t.Fatal("one calm decision jumped straight back to base (additive increase should be gradual)")
	}
	if r1.SweepThreshold <= k.SweepThreshold {
		t.Fatalf("calm decision did not relax: %v -> %v", k.SweepThreshold, r1.SweepThreshold)
	}
}

func TestDefaultRailsDisabledKnobsStayDisabled(t *testing.T) {
	base := Knobs{SweepThreshold: 0.15, UnmappedFactor: 0, PauseThreshold: 0, Helpers: 0}
	rails := DefaultRails(base)
	k := NewAIMD().Decide(Critical, press(1.0), base, base, rails)
	if k.UnmappedFactor != 0 {
		t.Fatalf("governor enabled the disabled unmapped trigger: %v", k.UnmappedFactor)
	}
	if k.PauseThreshold != 0 {
		t.Fatalf("governor enabled the disabled pause brake: %v", k.PauseThreshold)
	}
}

func TestPlaneObserveRecordsOnlyChanges(t *testing.T) {
	base := baseKnobs()
	p := NewPlane(Config{Base: base, Budget: 1 << 30, Policy: NewAIMD()})
	// Calm observations at base knobs: nothing to adjust, nothing recorded.
	for i := 0; i < 5; i++ {
		if _, changed := p.Observe(press(0.1)); changed {
			t.Fatalf("calm observation %d at base knobs recorded a decision", i)
		}
	}
	if p.Ring().Total() != 0 {
		t.Fatalf("ring holds %d decisions after no-op observations", p.Ring().Total())
	}
	if p.Observations() != 5 {
		t.Fatalf("observations %d, want 5", p.Observations())
	}
	// Pressure: each observation tightens until the rails stop it.
	d, changed := p.Observe(press(1.0))
	if !changed {
		t.Fatal("pressured observation recorded nothing")
	}
	if d.Level != Critical {
		t.Fatalf("level %v, want Critical", d.Level)
	}
	if d.Before != base || d.After == base {
		t.Fatalf("decision before/after wrong: %+v", d)
	}
	if got := p.Knobs(); got != d.After {
		t.Fatalf("published knobs %+v != decision %+v", got, d.After)
	}
}

func TestPlaneConvergesUnderSustainedPressure(t *testing.T) {
	base := baseKnobs()
	p := NewPlane(Config{Base: base, Budget: 1 << 30, Policy: NewAIMD()})
	for i := 0; i < 100; i++ {
		p.Observe(press(1.2))
		if k := p.Knobs(); !p.Rails().Contains(k) {
			t.Fatalf("observation %d escaped rails: %+v", i, k)
		}
	}
	k := p.Knobs()
	if k.SweepThreshold != p.Rails().SweepThresholdMin || k.Helpers != p.Rails().HelpersMax {
		t.Fatalf("sustained pressure did not reach the rails: %+v vs %+v", k, p.Rails())
	}
	// Once fully tightened, further pressured observations are no-ops.
	before := p.Ring().Total()
	p.Observe(press(1.2))
	if p.Ring().Total() != before {
		t.Fatal("fully-tightened plane still records decisions")
	}
	// And sustained calm returns exactly to base.
	for i := 0; i < 100; i++ {
		p.Observe(press(0.1))
	}
	if got := p.Knobs(); got != base {
		t.Fatalf("calm recovery ended at %+v, want %+v", got, base)
	}
}

func TestDecisionRingWrapAndOrder(t *testing.T) {
	r := NewDecisionRing(8)
	for i := 0; i < 20; i++ {
		r.Push(Decision{Level: Level(i % 3)})
	}
	if r.Total() != 20 || r.Len() != 8 {
		t.Fatalf("total %d len %d, want 20/8", r.Total(), r.Len())
	}
	snap := r.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot length %d, want 8", len(snap))
	}
	for i, d := range snap {
		if d.Seq != uint64(13+i) {
			t.Fatalf("snapshot[%d].Seq = %d, want %d (oldest first)", i, d.Seq, 13+i)
		}
	}
}

func TestDecisionRingConcurrent(t *testing.T) {
	r := NewDecisionRing(64)
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				r.Push(Decision{Level: Level(w % 3), In: Inputs{RSS: uint64(i)}})
			}
		}(w)
	}
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot()
			for i := 1; i < len(snap); i++ {
				if snap[i].Seq <= snap[i-1].Seq {
					t.Errorf("snapshot out of order: %d after %d", snap[i].Seq, snap[i-1].Seq)
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()
	if r.Total() != 8000 {
		t.Fatalf("total %d, want 8000", r.Total())
	}
}

func TestStateJSONRoundTrip(t *testing.T) {
	p := NewPlane(Config{Base: baseKnobs(), Budget: 1 << 30, Policy: NewAIMD()})
	p.Observe(press(1.0))
	p.Observe(press(0.1))
	st := p.State()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
	var got State
	if err := json.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Policy != "aimd" || got.Level != st.Level || got.Knobs != st.Knobs || got.Budget != st.Budget {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, st)
	}
	if len(got.Decisions) != len(st.Decisions) {
		t.Fatalf("decisions %d, want %d", len(got.Decisions), len(st.Decisions))
	}
	for i := range got.Decisions {
		if got.Decisions[i] != st.Decisions[i] {
			t.Fatalf("decision %d mismatch", i)
		}
	}
}

func TestLevelJSON(t *testing.T) {
	b, err := json.Marshal(Critical)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"critical"` {
		t.Fatalf("marshal: %s", b)
	}
	var l Level
	if err := json.Unmarshal([]byte(`"elevated"`), &l); err != nil || l != Elevated {
		t.Fatalf("unmarshal name: %v %v", l, err)
	}
	if err := json.Unmarshal([]byte(`2`), &l); err != nil || l != Critical {
		t.Fatalf("unmarshal number: %v %v", l, err)
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &l); err == nil {
		t.Fatal("unmarshal bogus name succeeded")
	}
}
