package jemalloc

import (
	"reflect"
	"testing"

	"minesweeper/internal/alloc"
	"minesweeper/internal/mem"
)

// tcacheSnapshot captures one thread cache's observable end state per class:
// the cached addresses in stack order and, for each, whether the backing
// extent's cachemap bit is set. Extent pointers differ between heaps, so the
// comparison is by address and bit, not by identity.
type tcacheSnapshot struct {
	addrs  [][]uint64
	cached [][]bool
}

func snapshotTcache(tc *tcache) tcacheSnapshot {
	var s tcacheSnapshot
	s.addrs = make([][]uint64, NumClasses())
	s.cached = make([][]bool, NumClasses())
	for c := 0; c < NumClasses(); c++ {
		for _, it := range tc.bins[c].items {
			s.addrs[c] = append(s.addrs[c], it.addr)
			s.cached[c] = append(s.cached[c], it.ext.regionCached(int(it.reg)))
		}
	}
	return s
}

// TestAllocBatchOracle proves the batched refill path is a pure performance
// transform: AllocBatch must leave the heap in exactly the state the same
// number of serial Mallocs produce — same addresses in the same order, same
// stats, same slab occupancy, same tcache contents and cachemap bits — across
// warm, cold, and refill-spanning batch sizes, with and without a tcache.
func TestAllocBatchOracle(t *testing.T) {
	for _, tcEnabled := range []bool{true, false} {
		for _, seed := range []uint64{1, 7, 42, 12345} {
			cfg := DefaultConfig()
			cfg.TcacheEnabled = tcEnabled
			cfg.Arenas = 2
			ha := New(mem.NewAddressSpace(), cfg) // serial replay
			hb := New(mem.NewAddressSpace(), cfg) // batched
			var tids []alloc.ThreadID
			for i := 0; i < 3; i++ {
				ta := ha.RegisterThread()
				tb := hb.RegisterThread()
				if ta != tb {
					t.Fatal("thread registration diverged")
				}
				tids = append(tids, ta)
			}
			// Warm both heaps through an identical malloc/free mix so the
			// batch runs against partially filled tcaches, non-empty slabs,
			// and populated dirty lists (not just a cold heap).
			live := oracleWorkload(t, ha, hb, tids, seed)
			rng := seed ^ 0xA5A5A5A5
			for i, a := range live {
				rng = rng*6364136223846793005 + 1442695040888963407
				if rng%3 != 0 {
					continue
				}
				tid := tids[rng%uint64(len(tids))]
				if err := ha.Free(tid, a); err != nil {
					t.Fatalf("heap A Free: %v", err)
				}
				if err := hb.Free(tid, a); err != nil {
					t.Fatalf("heap B Free: %v", err)
				}
				live[i] = 0
			}

			// Batch sizes chosen to exercise: cache hit only, one refill,
			// several refills back to back, and the large serial fallback.
			for _, c := range []struct {
				size uint64
				n    int
			}{
				{48, 3},    // pops within one cached run
				{48, 40},   // spans multiple fillTarget refills
				{8, 100},   // high-capacity class, several runs
				{1800, 20}, // low-capacity class
				{9000, 4},  // beyond SmallMax: serial fallback path
				{48, 0},    // empty batch is a no-op
			} {
				tid := tids[int(seed)%len(tids)]
				want := make([]uint64, c.n)
				for i := range want {
					a, err := ha.Malloc(tid, c.size)
					if err != nil {
						t.Fatalf("serial Malloc(%d): %v", c.size, err)
					}
					want[i] = a
				}
				got := make([]uint64, c.n)
				n, err := hb.AllocBatch(tid, c.size, got)
				if err != nil || n != c.n {
					t.Fatalf("AllocBatch(%d, %d) = %d, %v", c.size, c.n, n, err)
				}
				if c.n > 0 && !reflect.DeepEqual(want, got) {
					t.Fatalf("seed %d tcache=%v size %d n=%d: addresses diverged\nserial: %#x\nbatch:  %#x",
						seed, tcEnabled, c.size, c.n, want, got)
				}
			}

			if sa, sb := ha.Stats(), hb.Stats(); sa != sb {
				t.Fatalf("seed %d tcache=%v: Stats diverged:\nserial: %+v\nbatch:  %+v",
					seed, tcEnabled, sa, sb)
			}
			da, db := ha.DetailedStats(), hb.DetailedStats()
			if !reflect.DeepEqual(da, db) {
				t.Fatalf("seed %d tcache=%v: DetailedStats diverged:\nserial: %+v\nbatch:  %+v",
					seed, tcEnabled, da, db)
			}
			dba, na := ha.dirtyStats()
			dbb, nb := hb.dirtyStats()
			if dba != dbb || na != nb {
				t.Fatalf("seed %d tcache=%v: dirty lists diverged: (%d bytes, %d) vs (%d bytes, %d)",
					seed, tcEnabled, dba, na, dbb, nb)
			}
			// Thread caches must hold the same addresses in the same stack
			// order with the same cachemap bits — refill order is part of
			// the contract, since it decides future Malloc results.
			for _, tid := range tids {
				tca, tcb := ha.tcacheFor(tid), hb.tcacheFor(tid)
				if (tca == nil) != (tcb == nil) {
					t.Fatalf("tcache presence diverged for tid %d", tid)
				}
				if tca == nil {
					continue
				}
				sa, sb := snapshotTcache(tca), snapshotTcache(tcb)
				if !reflect.DeepEqual(sa, sb) {
					t.Fatalf("seed %d: tcache state diverged for tid %d:\nserial: %+v\nbatch:  %+v",
						seed, tid, sa, sb)
				}
			}
		}
	}
}

// TestAllocBatchInterleavesWithFree: batches interleaved with frees and
// FreeBatch keep the two heaps in lockstep — the refill run must come off the
// same slabs a serial malloc sequence would use after the same frees.
func TestAllocBatchInterleavesWithFree(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Arenas = 2
	ha := New(mem.NewAddressSpace(), cfg)
	hb := New(mem.NewAddressSpace(), cfg)
	ta := ha.RegisterThread()
	tb := hb.RegisterThread()
	rng := uint64(99)
	var live []uint64
	for round := 0; round < 50; round++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		size := rng%1024 + 1
		n := int(rng%16) + 1
		want := make([]uint64, n)
		for i := range want {
			a, err := ha.Malloc(ta, size)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = a
		}
		got := make([]uint64, n)
		if m, err := hb.AllocBatch(tb, size, got); err != nil || m != n {
			t.Fatalf("round %d: AllocBatch = %d, %v", round, m, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("round %d: addresses diverged", round)
		}
		live = append(live, want...)
		// Free a prefix of the oldest survivors on both heaps.
		k := len(live) / 3
		for _, a := range live[:k] {
			if err := ha.Free(ta, a); err != nil {
				t.Fatal(err)
			}
			if err := hb.Free(tb, a); err != nil {
				t.Fatal(err)
			}
		}
		live = append(live[:0], live[k:]...)
	}
	if sa, sb := ha.Stats(), hb.Stats(); sa != sb {
		t.Fatalf("Stats diverged:\nserial: %+v\nbatch:  %+v", sa, sb)
	}
	if !reflect.DeepEqual(ha.DetailedStats(), hb.DetailedStats()) {
		t.Fatal("DetailedStats diverged")
	}
}
